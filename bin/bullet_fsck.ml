(* bullet_fsck: offline checker / repairer / compactor for Bullet drive
   images — the operational counterpart of the server's boot-time
   consistency scan and its "3 a.m." compaction.

     bullet_fsck IMG [IMG2]                    check only
     bullet_fsck IMG [IMG2] --repair           persist the scan's repairs
     bullet_fsck IMG [IMG2] --compact          also squeeze out the holes
     bullet_fsck IMG --reachable CAPS          list orphaned objects
     bullet_fsck IMG --reachable CAPS --gc     delete them too

   CAPS is a text file holding one capability per line (the
   [port:obj:rights:check] form of Capability.to_string) — the caps the
   naming layer can still reach; everything live on disk but absent from
   that set and from the server's pending-transaction table is an
   orphan, e.g. a 2PC participant's prepared object whose coordinator
   died and whose RAM pending table a reboot emptied. *)

module Layout = Bullet_core.Layout
module Inode_table = Bullet_core.Inode_table
module Server = Bullet_core.Server

let load_images paths =
  let clock = Amoeba_sim.Clock.create () in
  let load i path =
    match Amoeba_disk.Image.load ~id:(Printf.sprintf "drive%d" i) ~clock path with
    | Ok device -> device
    | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 1
  in
  (clock, Amoeba_disk.Mirror.create (List.mapi load paths))

let report_table table scan =
  let desc = Inode_table.descriptor table in
  Printf.printf "block size        %d bytes\n" desc.Layout.block_size;
  Printf.printf "inode table       %d blocks (%d inodes)\n" desc.Layout.control_size
    (Layout.max_inode desc);
  Printf.printf "file area         %d blocks\n" desc.Layout.data_size;
  Printf.printf "live files        %d\n" scan.Inode_table.files;
  let used = ref 0 in
  Inode_table.iter_live table (fun _ inode ->
      used := !used + ((inode.Layout.size_bytes + desc.Layout.block_size - 1) / desc.Layout.block_size));
  Printf.printf "blocks in use     %d (%.1f%%)\n" !used
    (100. *. float_of_int !used /. float_of_int desc.Layout.data_size);
  match scan.Inode_table.repaired with
  | [] -> Printf.printf "consistency       clean\n"
  | bad ->
    Printf.printf "consistency       %d inode(s) repaired: %s\n" (List.length bad)
      (String.concat ", " (List.map string_of_int bad))

let load_reachable path =
  let ic = open_in path in
  let caps = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" then
         match Amoeba_cap.Capability.of_string line with
         | cap -> caps := cap :: !caps
         | exception Invalid_argument _ ->
           Printf.eprintf "%s: malformed capability %S\n" path line;
           exit 2
     done
   with End_of_file -> close_in ic);
  List.rev !caps

let run paths repair compact reachable gc =
  if gc && reachable = None then begin
    prerr_endline "--gc needs --reachable";
    exit 2
  end;
  if paths = [] then begin
    prerr_endline "need at least one image";
    exit 2
  end;
  let clock, mirror = load_images paths in
  (match Inode_table.load mirror with
  | Error e ->
    Printf.eprintf "not a valid Bullet image: %s\n" e;
    exit 1
  | Ok (table, scan) ->
    report_table table scan;
    let dirty = scan.Inode_table.repaired <> [] in
    if dirty && not repair then
      Printf.printf "(run with --repair to persist the repairs)\n";
    if repair && dirty then begin
      Inode_table.flush_all table ~sync:(Amoeba_disk.Mirror.live_count mirror);
      Printf.printf "repairs written back\n"
    end);
  if compact || reachable <> None then begin
    match Server.start mirror with
    | Error e ->
      Printf.eprintf "cannot boot for checks: %s\n" e;
      exit 1
    | Ok (server, _) ->
      (match reachable with
      | None -> ()
      | Some caps_file ->
        let caps = load_reachable caps_file in
        let orphans = Bullet_core.Fsck.orphans server ~reachable:caps in
        (match orphans with
        | [] -> Printf.printf "orphans           none\n"
        | objs ->
          Printf.printf "orphans           %d object(s): %s\n" (List.length objs)
            (String.concat ", " (List.map string_of_int objs)));
        if gc then begin
          let removed = Bullet_core.Fsck.gc server ~reachable:caps in
          Printf.printf "gc                deleted %d object(s)\n" removed
        end
        else if orphans <> [] then Printf.printf "(run with --gc to delete them)\n");
      if compact then begin
        let frag_before = Server.disk_fragmentation server in
        let moved = Server.compact_disk server in
        Printf.printf "compaction        moved %d blocks (fragmentation %.3f -> %.3f)\n" moved
          frag_before (Server.disk_fragmentation server)
      end
  end;
  if repair || compact || gc then begin
    Amoeba_disk.Mirror.drain mirror;
    List.iteri
      (fun i path ->
        Amoeba_disk.Image.save (List.nth (Amoeba_disk.Mirror.drives mirror) i) path)
      paths;
    Printf.printf "images saved\n"
  end;
  ignore clock

open Cmdliner

let images = Arg.(value & pos_all file [] & info [] ~docv:"IMAGE")

let repair = Arg.(value & flag & info [ "repair" ] ~doc:"Write scan repairs back to the images.")

let compact =
  Arg.(value & flag & info [ "compact" ] ~doc:"Compact the file area (implies saving).")

let reachable =
  Arg.(
    value
    & opt (some file) None
    & info [ "reachable" ] ~docv:"CAPS"
        ~doc:
          "File of reachable capabilities (one per line); live objects absent from it and from \
           the pending-transaction table are reported as orphans.")

let gc =
  Arg.(
    value & flag
    & info [ "gc" ]
        ~doc:"Delete the orphans found via $(b,--reachable) (implies saving the images).")

let cmd =
  let doc = "check, repair and compact Bullet drive images" in
  Cmd.v (Cmd.info "bullet_fsck" ~doc) Term.(const run $ images $ repair $ compact $ reachable $ gc)

let () = exit (Cmd.eval cmd)
