(* bullet_fsck: offline checker / repairer / compactor for Bullet drive
   images — the operational counterpart of the server's boot-time
   consistency scan and its "3 a.m." compaction.

     bullet_fsck IMG [IMG2]                    check only
     bullet_fsck IMG [IMG2] --repair           persist the scan's repairs
     bullet_fsck IMG [IMG2] --compact          also squeeze out the holes
     bullet_fsck IMG --reachable CAPS          list orphaned objects
     bullet_fsck IMG --reachable CAPS --gc     delete them too
     bullet_fsck --cluster CHECKPOINT [--member name=img[,img]]...
                                               cross-check a cluster directory

   CAPS is a text file holding one capability per line (the
   [port:obj:rights:check] form of Capability.to_string) — the caps the
   naming layer can still reach; everything live on disk but absent from
   that set and from the server's pending-transaction table is an
   orphan, e.g. a 2PC participant's prepared object whose coordinator
   died and whose RAM pending table a reboot emptied. *)

module Layout = Bullet_core.Layout
module Inode_table = Bullet_core.Inode_table
module Server = Bullet_core.Server
module Cluster = Amoeba_cluster.Cluster

let load_images paths =
  let clock = Amoeba_sim.Clock.create () in
  let load i path =
    match Amoeba_disk.Image.load ~id:(Printf.sprintf "drive%d" i) ~clock path with
    | Ok device -> device
    | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 1
  in
  (clock, Amoeba_disk.Mirror.create (List.mapi load paths))

let report_table table scan =
  let desc = Inode_table.descriptor table in
  Printf.printf "block size        %d bytes\n" desc.Layout.block_size;
  Printf.printf "inode table       %d blocks (%d inodes)\n" desc.Layout.control_size
    (Layout.max_inode desc);
  Printf.printf "file area         %d blocks\n" desc.Layout.data_size;
  Printf.printf "live files        %d\n" scan.Inode_table.files;
  let used = ref 0 in
  Inode_table.iter_live table (fun _ inode ->
      used := !used + ((inode.Layout.size_bytes + desc.Layout.block_size - 1) / desc.Layout.block_size));
  Printf.printf "blocks in use     %d (%.1f%%)\n" !used
    (100. *. float_of_int !used /. float_of_int desc.Layout.data_size);
  match scan.Inode_table.repaired with
  | [] -> Printf.printf "consistency       clean\n"
  | bad ->
    Printf.printf "consistency       %d inode(s) repaired: %s\n" (List.length bad)
      (String.concat ", " (List.map string_of_int bad))

let load_reachable path =
  let ic = open_in path in
  let caps = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" then
         match Amoeba_cap.Capability.of_string line with
         | cap -> caps := cap :: !caps
         | exception Invalid_argument _ ->
           Printf.eprintf "%s: malformed capability %S\n" path line;
           exit 2
     done
   with End_of_file -> close_in ic);
  List.rev !caps

let run paths repair compact reachable gc =
  if gc && reachable = None then begin
    prerr_endline "--gc needs --reachable";
    exit 2
  end;
  if paths = [] then begin
    prerr_endline "need at least one image";
    exit 2
  end;
  let clock, mirror = load_images paths in
  (match Inode_table.load mirror with
  | Error e ->
    Printf.eprintf "not a valid Bullet image: %s\n" e;
    exit 1
  | Ok (table, scan) ->
    report_table table scan;
    let dirty = scan.Inode_table.repaired <> [] in
    if dirty && not repair then
      Printf.printf "(run with --repair to persist the repairs)\n";
    if repair && dirty then begin
      Inode_table.flush_all table ~sync:(Amoeba_disk.Mirror.live_count mirror);
      Printf.printf "repairs written back\n"
    end);
  if compact || reachable <> None then begin
    match Server.start mirror with
    | Error e ->
      Printf.eprintf "cannot boot for checks: %s\n" e;
      exit 1
    | Ok (server, _) ->
      (match reachable with
      | None -> ()
      | Some caps_file ->
        let caps = load_reachable caps_file in
        let orphans = Bullet_core.Fsck.orphans server ~reachable:caps in
        (match orphans with
        | [] -> Printf.printf "orphans           none\n"
        | objs ->
          Printf.printf "orphans           %d object(s): %s\n" (List.length objs)
            (String.concat ", " (List.map string_of_int objs)));
        if gc then begin
          let removed = Bullet_core.Fsck.gc server ~reachable:caps in
          Printf.printf "gc                deleted %d object(s)\n" removed
        end
        else if orphans <> [] then Printf.printf "(run with --gc to delete them)\n");
      if compact then begin
        let frag_before = Server.disk_fragmentation server in
        let moved = Server.compact_disk server in
        Printf.printf "compaction        moved %d blocks (fragmentation %.3f -> %.3f)\n" moved
          frag_before (Server.disk_fragmentation server)
      end
  end;
  if repair || compact || gc then begin
    Amoeba_disk.Mirror.drain mirror;
    List.iteri
      (fun i path ->
        Amoeba_disk.Image.save (List.nth (Amoeba_disk.Mirror.drives mirror) i) path)
      paths;
    Printf.printf "images saved\n"
  end;
  ignore clock

(* ---- cluster mode: cross-check inode tables vs a cluster directory ----

   The checkpoint says which servers hold which objects; the member
   images say what is actually on disk. A replica the directory claims
   but the disk cannot serve, or a key with fewer verified live copies
   than R, is an inconsistency — exit 1, the rebalancer (or an operator)
   has work to do. *)

let read_text path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_member spec =
  match String.index_opt spec '=' with
  | None | Some 0 ->
    Printf.eprintf "--member %s: expected name=img[,img]\n" spec;
    exit 2
  | Some i ->
    let name = String.sub spec 0 i in
    let paths =
      List.filter
        (fun p -> p <> "")
        (String.split_on_char ',' (String.sub spec (i + 1) (String.length spec - i - 1)))
    in
    if paths = [] then begin
      Printf.eprintf "--member %s: no images\n" spec;
      exit 2
    end;
    (name, paths)

let run_cluster ck_path member_specs =
  let info =
    match Cluster.parse_checkpoint (read_text ck_path) with
    | Ok info -> info
    | Error e ->
      Printf.eprintf "%s: %s\n" ck_path e;
      exit 1
  in
  let members = List.map parse_member member_specs in
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun (n, _, _) -> n = name) info.Cluster.ck_servers) then begin
        Printf.eprintf "--member %s: not a server of this checkpoint\n" name;
        exit 2
      end)
    members;
  let live = List.filter (fun (_, _, status) -> status <> "dead") info.Cluster.ck_servers in
  Printf.printf "cluster directory  %s\n" ck_path;
  Printf.printf "shards            %d\n" info.Cluster.ck_shards;
  Printf.printf "replicas          %d\n" info.Cluster.ck_replicas;
  Printf.printf "servers           %d (%d live)\n"
    (List.length info.Cluster.ck_servers)
    (List.length live);
  Printf.printf "objects           %d\n" (List.length info.Cluster.ck_objects);
  (* boot each provided member off its images with the seed the cluster
     used (FNV-1a over the name), so the directory's capabilities unseal *)
  let boot (name, paths) =
    let _clock, mirror = load_images paths in
    match Server.start ~seed:(Amoeba_sim.Prng.seed_of_string name) mirror with
    | Ok (server, _scan) -> (name, server)
    | Error e ->
      Printf.eprintf "--member %s: not a valid Bullet image set: %s\n" name e;
      exit 1
  in
  let booted = List.map boot members in
  let missing =
    List.concat_map
      (fun (key, holds) ->
        List.filter_map
          (fun (srv, cap) ->
            match List.assoc_opt srv booted with
            | None -> None
            | Some server -> (
              match Server.read server cap with
              | Ok _ -> None
              | Error _ -> Some (key, srv)))
          holds)
      info.Cluster.ck_objects
  in
  List.iter
    (fun (key, srv) -> Printf.printf "MISSING           %s: replica on %s not on disk\n" key srv)
    missing;
  if booted <> [] && missing = [] then
    Printf.printf "inode tables      %d member(s) back every claimed replica\n"
      (List.length booted);
  let want = min info.Cluster.ck_replicas (max (List.length live) 1) in
  let verified key holds =
    List.filter
      (fun (srv, _) ->
        List.exists (fun (n, _, _) -> n = srv) live
        && not (List.exists (fun (k, s) -> k = key && s = srv) missing))
      holds
  in
  let under =
    List.filter_map
      (fun (key, holds) ->
        let n = List.length (verified key holds) in
        if n < want then Some (key, n) else None)
      info.Cluster.ck_objects
  in
  (match under with
  | [] -> Printf.printf "replication       every object at %d live cop%s\n" want
            (if want = 1 then "y" else "ies")
  | _ ->
    List.iter
      (fun (key, n) ->
        Printf.printf "UNDER-REPLICATED  %s: %d live cop%s, want %d\n" key n
          (if n = 1 then "y" else "ies")
          want)
      under);
  if under <> [] || missing <> [] then exit 1

let main paths repair compact reachable gc cluster members =
  match cluster with
  | Some ck_path ->
    if repair || compact || gc || reachable <> None || paths <> [] then begin
      prerr_endline "--cluster takes only --member arguments";
      exit 2
    end;
    run_cluster ck_path members
  | None ->
    if members <> [] then begin
      prerr_endline "--member needs --cluster";
      exit 2
    end;
    run paths repair compact reachable gc

open Cmdliner

let images = Arg.(value & pos_all file [] & info [] ~docv:"IMAGE")

let repair = Arg.(value & flag & info [ "repair" ] ~doc:"Write scan repairs back to the images.")

let compact =
  Arg.(value & flag & info [ "compact" ] ~doc:"Compact the file area (implies saving).")

let reachable =
  Arg.(
    value
    & opt (some file) None
    & info [ "reachable" ] ~docv:"CAPS"
        ~doc:
          "File of reachable capabilities (one per line); live objects absent from it and from \
           the pending-transaction table are reported as orphans.")

let gc =
  Arg.(
    value & flag
    & info [ "gc" ]
        ~doc:"Delete the orphans found via $(b,--reachable) (implies saving the images).")

let cluster =
  Arg.(
    value
    & opt (some file) None
    & info [ "cluster" ] ~docv:"CHECKPOINT"
        ~doc:
          "Cross-check a cluster directory checkpoint instead of a drive image: report every \
           under-replicated object (and, with $(b,--member), every replica the directory claims \
           that the member's inode table cannot back). Exit 1 on any inconsistency.")

let members =
  Arg.(
    value & opt_all string []
    & info [ "member" ] ~docv:"NAME=IMG[,IMG]"
        ~doc:
          "A cluster member's drive images, for the $(b,--cluster) on-disk cross-check. \
           Repeatable.")

let cmd =
  let doc = "check, repair and compact Bullet drive images" in
  Cmd.v (Cmd.info "bullet_fsck" ~doc)
    Term.(const main $ images $ repair $ compact $ reachable $ gc $ cluster $ members)

let () = exit (Cmd.eval cmd)
