(* mkbullet: create formatted Bullet drive images.

     mkbullet drive1.img drive2.img --size-mb 64 --max-files 2048        *)

let run paths size_mb max_files =
  if paths = [] then begin
    prerr_endline "need at least one image path";
    exit 2
  end;
  let clock = Amoeba_sim.Clock.create () in
  let geometry = Amoeba_disk.Geometry.small ~sectors:(size_mb * 2048) in
  let drives =
    List.mapi
      (fun i _ -> Amoeba_disk.Block_device.create ~id:(Printf.sprintf "drive%d" i) ~geometry ~clock)
      paths
  in
  let mirror = Amoeba_disk.Mirror.create drives in
  Bullet_core.Server.format mirror ~max_files;
  List.iter2 (fun device path -> Amoeba_disk.Image.save device path) drives paths;
  let desc = Bullet_core.Layout.plan geometry ~max_files in
  Printf.printf "formatted %d image(s): %d MB, %d inodes, %d data blocks\n" (List.length paths)
    size_mb
    (Bullet_core.Layout.max_inode desc)
    desc.Bullet_core.Layout.data_size

open Cmdliner

let images = Arg.(value & pos_all string [] & info [] ~docv:"IMAGE")

let size_mb = Arg.(value & opt int 64 & info [ "size-mb" ] ~docv:"MB" ~doc:"Drive size.")

let max_files = Arg.(value & opt int 2048 & info [ "max-files" ] ~docv:"N" ~doc:"Inode count.")

let cmd =
  let doc = "create formatted Bullet drive images" in
  Cmd.v (Cmd.info "mkbullet" ~doc) Term.(const run $ images $ size_mb $ max_files)

let () = exit (Cmd.eval cmd)
