(* bulletd: the Bullet file server + directory service as a standalone
   daemon.

   The server logic, disk layout and capability protection are exactly
   the library's; the simulated mirrored drives persist in image files,
   and requests arrive as RPC frames over TCP instead of the simulated
   Ethernet. The directory service stores its directories as Bullet
   files and survives restarts through a checkpoint whose capability is
   kept beside the images. Try:

     dune exec bin/bulletd.exe -- --port 7654 --data /tmp/bullet &
     dune exec bin/bullet_ctl.exe -- store notes notes.txt --port 7654
     dune exec bin/bullet_ctl.exe -- ls --port 7654
     dune exec bin/bullet_ctl.exe -- fetch notes --port 7654             *)

module Server = Bullet_core.Server
module Dir = Amoeba_dir.Dir_server
module Message = Amoeba_rpc.Message
module Status = Amoeba_rpc.Status
module Port = Amoeba_cap.Port

let cmd_hello = 0

let run tcp_port data_dir size_mb max_files cache_mb fault_plan =
  if not (Sys.file_exists data_dir) then Unix.mkdir data_dir 0o755;
  let clock = Amoeba_sim.Clock.create () in
  let geometry = Amoeba_disk.Geometry.small ~sectors:(size_mb * 2048) in
  let open_drive name =
    match
      Amoeba_disk.Image.load_or_create ~id:name ~clock ~geometry
        (Filename.concat data_dir (name ^ ".img"))
    with
    | Ok (device, state) ->
      Printf.printf "drive %s: %s\n%!" name
        (match state with `Loaded -> "loaded from image" | `Created -> "created fresh");
      device
    | Error e ->
      Printf.eprintf "cannot open drive %s: %s\n" name e;
      exit 1
  in
  let drive1 = open_drive "drive1" in
  let drive2 = open_drive "drive2" in
  let mirror = Amoeba_disk.Mirror.create [ drive1; drive2 ] in
  (* mkfs only if the image is brand new *)
  let formatted =
    match Bullet_core.Inode_table.load mirror with Ok _ -> true | Error _ -> false
  in
  if not formatted then begin
    Printf.printf "formatting fresh images (max %d files)\n%!" max_files;
    Server.format mirror ~max_files
  end;
  let config = { Server.default_config with Server.cache_bytes = cache_mb * 1024 * 1024 } in
  let server, report =
    match Server.start ~config mirror with
    | Ok v -> v
    | Error e ->
      Printf.eprintf "cannot start server: %s\n" e;
      exit 1
  in
  Printf.printf "bullet server on port %s: %d files, scan repaired %d\n%!"
    (Port.to_string (Server.port server))
    report.Bullet_core.Inode_table.files
    (List.length report.Bullet_core.Inode_table.repaired);
  (* the directory service stores directories as Bullet files; its own
     traffic rides an in-process transport *)
  let local_transport = Amoeba_rpc.Transport.create ~clock in
  Bullet_core.Proto.serve server local_transport;
  let store = Bullet_core.Client.connect local_transport (Server.port server) in
  let dir_cap_path = Filename.concat data_dir "dir.cap" in
  let dirs =
    let restored =
      if Sys.file_exists dir_cap_path then begin
        let ic = open_in dir_cap_path in
        let line = input_line ic in
        close_in ic;
        match Dir.restore ~store (Amoeba_cap.Capability.of_string line) with
        | Ok dirs ->
          Printf.printf "directory service restored from checkpoint\n%!";
          Some dirs
        | Error e ->
          Printf.eprintf "checkpoint restore failed (%s); starting fresh\n%!"
            (Status.to_string e);
          None
      end
      else None
    in
    match restored with Some dirs -> dirs | None -> Dir.create ~store ()
  in
  Printf.printf "directory service on port %s\n%!" (Port.to_string (Dir.port dirs));
  let save_state () =
    (match Dir.checkpoint dirs with
    | Ok cap ->
      let oc = open_out dir_cap_path in
      output_string oc (Amoeba_cap.Capability.to_string cap);
      output_char oc '\n';
      close_out oc
    | Error e -> Printf.eprintf "checkpoint failed: %s\n%!" (Status.to_string e));
    Amoeba_disk.Mirror.drain mirror;
    Amoeba_disk.Image.save drive1 (Filename.concat data_dir "drive1.img");
    Amoeba_disk.Image.save drive2 (Filename.concat data_dir "drive2.img")
  in
  (* --fault-plan: the daemon consults a deterministic injector before
     each frame. Plan times count {e request frames}, not microseconds —
     the injector gets a dedicated clock advanced by 1 per incoming
     request, so "at 5 loss 0.5" means "from the 5th request on". Drive
     events apply to the daemon's own mirror. *)
  let fault_clock = Amoeba_sim.Clock.create () in
  let injector =
    match fault_plan with
    | None -> None
    | Some path -> (
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Amoeba_fault.Plan.parse text with
      | Error e ->
        Printf.eprintf "cannot parse fault plan %s: %s\n" path e;
        exit 1
      | Ok plan ->
        Printf.printf "fault plan loaded from %s (%d events)\n%!" path
          (List.length (Amoeba_fault.Plan.steps plan));
        Some (Amoeba_fault.Injector.attach ~mirror ~clock:fault_clock plan))
  in
  let requests = ref 0 in
  let hello_reply () =
    (* bullet port in the capability slot, directory port in the body *)
    let body = Bytes.create Port.wire_size in
    Port.write (Dir.port dirs) body 0;
    Message.reply ~status:Status.Ok
      ~cap:
        (Amoeba_cap.Capability.v ~port:(Server.port server) ~obj:0 ~rights:Amoeba_cap.Rights.none
           ~check:0L)
      ~body ()
  in
  let dispatch request =
    if request.Message.command = cmd_hello && Port.equal request.Message.port (Port.of_int64 0L)
    then hello_reply ()
    else if Port.equal request.Message.port (Dir.port dirs) then
      Amoeba_dir.Dir_proto.dispatch dirs request
    else Bullet_core.Proto.dispatch server request
  in
  let handler request =
    incr requests;
    let verdict =
      match injector with
      | None -> Amoeba_rpc.Transport.Deliver
      | Some inj ->
        Amoeba_sim.Clock.advance fault_clock 1;
        Amoeba_fault.Injector.verdict inj ~link:None request
    in
    let reply =
      match verdict with
      | Amoeba_rpc.Transport.Drop_request ->
        (* the request "never arrived": no execution, no reply *)
        None
      | Amoeba_rpc.Transport.Deliver -> Some (dispatch request)
      | Amoeba_rpc.Transport.Drop_reply | Amoeba_rpc.Transport.Corrupt_reply ->
        (* the server executes (side effects happen) but the client
           never hears back; a corrupted reply fails its checksum and
           is equally lost *)
        let (_ : Message.t) = dispatch request in
        None
      | Amoeba_rpc.Transport.Duplicate_request ->
        (* the frame arrives twice; xid dedup in the services absorbs
           the second execution of mutations *)
        let reply = dispatch request in
        let (_ : Message.t) = dispatch request in
        Some reply
    in
    if !requests mod 16 = 0 then save_state ();
    reply
  in
  let tcp = Amoeba_rpc.Tcp.listen ~port:tcp_port () in
  Printf.printf "listening on 127.0.0.1:%d (data in %s)\n%!" (Amoeba_rpc.Tcp.bound_port tcp)
    data_dir;
  let quit _signal =
    Printf.printf "saving state and exiting\n%!";
    save_state ();
    exit 0
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
  (try Amoeba_rpc.Tcp.serve_forever tcp ~handler with Unix.Unix_error _ -> ());
  save_state ()

open Cmdliner

let tcp_port =
  Arg.(value & opt int 7654 & info [ "port" ] ~docv:"PORT" ~doc:"TCP port to listen on.")

let data_dir =
  Arg.(
    value
    & opt string "./bullet-data"
    & info [ "data" ] ~docv:"DIR" ~doc:"Directory holding the drive images and checkpoint.")

let size_mb =
  Arg.(value & opt int 64 & info [ "size-mb" ] ~docv:"MB" ~doc:"Drive size for fresh images.")

let max_files =
  Arg.(value & opt int 2048 & info [ "max-files" ] ~docv:"N" ~doc:"Inode-table size for mkfs.")

let cache_mb =
  Arg.(value & opt int 12 & info [ "cache-mb" ] ~docv:"MB" ~doc:"RAM file cache size.")

let fault_plan =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-plan" ]
        ~docv:"FILE"
        ~doc:
          "Deterministic fault plan (see Amoeba_fault.Plan.parse). Plan times count request \
           frames: \"at 5 loss 0.5\" starts dropping from the 5th request. Dropped requests \
           and replies close the connection without answering.")

let cmd =
  let doc = "the Bullet file server daemon (contiguous immutable files, mirrored drives)" in
  Cmd.v
    (Cmd.info "bulletd" ~doc)
    Term.(const run $ tcp_port $ data_dir $ size_mb $ max_files $ cache_mb $ fault_plan)

let () = exit (Cmd.eval cmd)
