(* amoeba-vet: the determinism lint (Parsetree) plus the typedtree
   passes — protocol conformance, clock discipline, persisted-bytes
   taint — over this repo's own sources. See Amoeba_analysis.Vet and
   doc/ARCHITECTURE.md "Static analysis".

   Usage: amoeba_vet [--list-rules] [--passes lint,proto,clock,taint]
                     [--json] [--out FILE] [path ...]

   Paths default to "lib bin". The typedtree passes read the .cmt files
   under _build/default (run `dune build @check` first, or let the dune
   runtest gate do it). Exits 1 on any diagnostic; VET_SKIP=1 skips. *)

let () = exit (Amoeba_analysis.Vet_cli.main ~prog:"amoeba_vet" Sys.argv)
