(* Command-line driver for the determinism linter.

   Usage: amoeba_lint [--list-rules] [path ...]

   Paths default to "lib bin". Prints one "file:line rule-id message"
   per diagnostic and exits non-zero if there are any, so it can gate a
   build. A dune rule runs it over lib/ and bin/ during `dune runtest`;
   see doc/ARCHITECTURE.md "Determinism rules" for what it enforces. *)

let usage () =
  prerr_endline "usage: amoeba_lint [--list-rules] [path ...]   (default paths: lib bin)";
  exit 2

let list_rules () =
  List.iter
    (fun (id, description) -> Printf.printf "%-22s %s\n" id description)
    Amoeba_analysis.Lint.rules

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--help" args || List.mem "-h" args then usage ();
  if List.mem "--list-rules" args then list_rules ()
  else begin
    let paths = match args with [] -> [ "lib"; "bin" ] | paths -> paths in
    List.iter
      (fun path ->
        if not (Sys.file_exists path) then begin
          Printf.eprintf "amoeba_lint: no such path %S\n" path;
          exit 2
        end)
      paths;
    let diagnostics = Amoeba_analysis.Lint.lint_paths paths in
    List.iter (fun d -> print_endline (Amoeba_analysis.Lint.to_string d)) diagnostics;
    match diagnostics with
    | [] -> ()
    | _ :: _ ->
      Printf.eprintf "amoeba_lint: %d diagnostic(s)\n" (List.length diagnostics);
      exit 1
  end
