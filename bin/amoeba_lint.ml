(* Alias for amoeba_vet, kept so PR-2 muscle memory and scripts that
   call `dune exec bin/amoeba_lint.exe` keep working. Same passes, same
   flags; see bin/amoeba_vet.ml. *)

let () = exit (Amoeba_analysis.Vet_cli.main ~prog:"amoeba_lint" Sys.argv)
