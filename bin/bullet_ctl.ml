(* bullet_ctl: command-line client for a running bulletd.

     bullet_ctl info
     bullet_ctl put FILE [--p-factor N]     -> prints the capability
     bullet_ctl get CAPABILITY [-o FILE]
     bullet_ctl size CAPABILITY
     bullet_ctl append CAPABILITY FILE      -> prints the new capability
     bullet_ctl rm CAPABILITY
     bullet_ctl status [--text]             -> STD_STATUS live metrics snapshot
     bullet_ctl cluster CHECKPOINT          -> offline cluster-directory status table

   Capabilities print as port:obj:rights:check - keep them somewhere (a
   real Amoeba would use the directory server). *)

module Message = Amoeba_rpc.Message
module Status = Amoeba_rpc.Status
module Cap = Amoeba_cap.Capability
module Proto = Bullet_core.Proto

let cmd_hello = 0

let with_conn host port f =
  let conn = Amoeba_rpc.Tcp.connect ~host ~port () in
  Fun.protect ~finally:(fun () -> Amoeba_rpc.Tcp.close conn) (fun () -> f conn)

let checked conn request =
  let reply = Amoeba_rpc.Tcp.trans conn request in
  match reply.Message.status with
  | Status.Ok -> reply
  | err ->
    Printf.eprintf "error: %s\n" (Status.to_string err);
    exit 1

let null_port = Amoeba_cap.Port.of_int64 0L

(* hello returns (bullet port, directory port) *)
let service_ports conn =
  let reply = checked conn (Message.request ~port:null_port ~command:cmd_hello ()) in
  match reply.Message.cap with
  | Some cap when Bytes.length reply.Message.body >= Amoeba_cap.Port.wire_size ->
    (cap.Cap.port, Amoeba_cap.Port.read reply.Message.body 0)
  | Some _ | None ->
    prerr_endline "malformed hello reply";
    exit 1

let service_port conn = fst (service_ports conn)

let dir_root conn =
  let _bullet, dir_port = service_ports conn in
  let reply =
    checked conn (Message.request ~port:dir_port ~command:Amoeba_dir.Dir_proto.cmd_get_root ())
  in
  match reply.Message.cap with
  | Some root -> (dir_port, root)
  | None ->
    prerr_endline "no root directory";
    exit 1

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_cap s =
  try Cap.of_string s
  with Invalid_argument e ->
    Printf.eprintf "bad capability %S: %s\n" s e;
    exit 1

let show_info host port () =
  with_conn host port (fun conn ->
      Printf.printf "bullet service port: %s\n" (Amoeba_cap.Port.to_string (service_port conn)))

let put host port p_factor path () =
  with_conn host port (fun conn ->
      let data = Bytes.of_string (read_file path) in
      let port' = service_port conn in
      let reply =
        checked conn
          (Message.request ~port:port' ~command:Proto.cmd_create ~arg0:p_factor ~body:data ())
      in
      match reply.Message.cap with
      | Some cap -> print_endline (Cap.to_string cap)
      | None ->
        prerr_endline "no capability returned";
        exit 1)

let get host port cap_string output () =
  with_conn host port (fun conn ->
      let cap = parse_cap cap_string in
      let reply =
        checked conn (Message.request ~port:cap.Cap.port ~command:Proto.cmd_read ~cap ())
      in
      match output with
      | None -> print_string (Bytes.to_string reply.Message.body)
      | Some path ->
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_bytes oc reply.Message.body))

let size host port cap_string () =
  with_conn host port (fun conn ->
      let cap = parse_cap cap_string in
      let reply =
        checked conn (Message.request ~port:cap.Cap.port ~command:Proto.cmd_size ~cap ())
      in
      Printf.printf "%d\n" reply.Message.arg0)

let append host port cap_string path () =
  with_conn host port (fun conn ->
      let cap = parse_cap cap_string in
      let data = Bytes.of_string (read_file path) in
      let reply =
        checked conn
          (Message.request ~port:cap.Cap.port ~command:Proto.cmd_append ~cap ~arg0:2 ~body:data ())
      in
      match reply.Message.cap with
      | Some fresh -> print_endline (Cap.to_string fresh)
      | None ->
        prerr_endline "no capability returned";
        exit 1)

let rm host port cap_string () =
  with_conn host port (fun conn ->
      let cap = parse_cap cap_string in
      let (_ : Message.t) =
        checked conn (Message.request ~port:cap.Cap.port ~command:Proto.cmd_delete ~cap ())
      in
      ())

let status host port text () =
  with_conn host port (fun conn ->
      let bullet_port = service_port conn in
      if text then
        let reply =
          checked conn
            (Message.request ~port:bullet_port ~command:Proto.cmd_std_status ~arg0:1 ())
        in
        print_string (Bytes.to_string reply.Message.body)
      else
        let reply =
          checked conn (Message.request ~port:bullet_port ~command:Proto.cmd_std_status ())
        in
        match Proto.decode_status reply.Message.body with
        | Error e ->
          Printf.eprintf "malformed status reply: %s\n" e;
          exit 1
        | Ok snap ->
          let module M = Amoeba_metrics.Metrics in
          Printf.printf "live snapshot at %d us\n" snap.M.at_us;
          List.iter
            (fun { M.s_name; s_value } ->
              match s_value with
              | M.Counter n -> Printf.printf "  %-28s counter %12d\n" s_name n
              | M.Gauge n -> Printf.printf "  %-28s gauge   %12d\n" s_name n
              | M.Hist { count; sum; p50; p95; p99; max_value } ->
                Printf.printf
                  "  %-28s hist     count %d sum %d p50 %d p95 %d p99 %d max %d\n" s_name
                  count sum p50 p95 p99 max_value)
            snap.M.samples)

let stat host port () =
  with_conn host port (fun conn ->
      let bullet_port = service_port conn in
      let reply =
        checked conn (Message.request ~port:bullet_port ~command:Proto.cmd_stat ())
      in
      let s = Proto.decode_stat reply.Message.body in
      Printf.printf "live files      %d\n" s.Proto.live_files;
      Printf.printf "free blocks     %d / %d\n" s.Proto.free_blocks s.Proto.data_blocks;
      Printf.printf "cache used      %d / %d bytes\n" s.Proto.cache_used s.Proto.cache_capacity)

(* ---- name-based commands (directory service) ---- *)

let store host port p_factor name path () =
  with_conn host port (fun conn ->
      let data = Bytes.of_string (read_file path) in
      let bullet_port, _ = service_ports conn in
      let create_reply =
        checked conn
          (Message.request ~port:bullet_port ~command:Proto.cmd_create ~arg0:p_factor ~body:data ())
      in
      let file_cap =
        match create_reply.Message.cap with
        | Some cap -> cap
        | None ->
          prerr_endline "no capability returned";
          exit 1
      in
      let dir_port, root = dir_root conn in
      let (_ : Message.t) =
        checked conn
          (Message.request ~port:dir_port ~command:Amoeba_dir.Dir_proto.cmd_replace ~cap:root
             ~body:(Amoeba_dir.Dir_proto.encode_named_cap file_cap name)
             ())
      in
      Printf.printf "%s -> %s\n" name (Cap.to_string file_cap))

let lookup_name conn name =
  let dir_port, root = dir_root conn in
  let reply =
    checked conn
      (Message.request ~port:dir_port ~command:Amoeba_dir.Dir_proto.cmd_lookup ~cap:root
         ~body:(Bytes.of_string name) ())
  in
  match reply.Message.cap with
  | Some cap -> cap
  | None ->
    prerr_endline "no capability in lookup reply";
    exit 1

let fetch host port name output () =
  with_conn host port (fun conn ->
      let cap = lookup_name conn name in
      let reply =
        checked conn (Message.request ~port:cap.Cap.port ~command:Proto.cmd_read ~cap ())
      in
      match output with
      | None -> print_string (Bytes.to_string reply.Message.body)
      | Some path ->
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_bytes oc reply.Message.body))

let ls host port () =
  with_conn host port (fun conn ->
      let dir_port, root = dir_root conn in
      let reply =
        checked conn
          (Message.request ~port:dir_port ~command:Amoeba_dir.Dir_proto.cmd_list ~cap:root ())
      in
      let rows = Amoeba_dir.Dir_proto.decode_listing reply.Message.body in
      List.iter (fun (name, cap) -> Printf.printf "%-30s %s\n" name (Cap.to_string cap)) rows)

let del host port name () =
  with_conn host port (fun conn ->
      let dir_port, root = dir_root conn in
      (* collect every retained version, unbind, then delete the files *)
      let versions_reply =
        checked conn
          (Message.request ~port:dir_port ~command:Amoeba_dir.Dir_proto.cmd_versions ~cap:root
             ~body:(Bytes.of_string name) ())
      in
      let versions = Amoeba_dir.Dir_proto.decode_caps versions_reply.Message.body in
      let (_ : Message.t) =
        checked conn
          (Message.request ~port:dir_port ~command:Amoeba_dir.Dir_proto.cmd_remove_name ~cap:root
             ~body:(Bytes.of_string name) ())
      in
      let delete cap =
        let (_ : Message.t) =
          Amoeba_rpc.Tcp.trans conn
            (Message.request ~port:cap.Cap.port ~command:Proto.cmd_delete ~cap ())
        in
        ()
      in
      List.iter delete versions)

(* ---- cluster: offline status table over a directory checkpoint ---- *)

let cluster_status ck_path () =
  let module Cluster = Amoeba_cluster.Cluster in
  match Cluster.parse_checkpoint (read_file ck_path) with
  | Error e ->
    Printf.eprintf "%s: %s\n" ck_path e;
    exit 1
  | Ok info ->
    Printf.printf "cluster directory: shards %d, replicas %d\n" info.Cluster.ck_shards
      info.Cluster.ck_replicas;
    let live (_, _, status) = status <> "dead" in
    let replicas_on name =
      List.length
        (List.filter
           (fun (_, holds) -> List.exists (fun (srv, _) -> srv = name) holds)
           info.Cluster.ck_objects)
    in
    Printf.printf "  %-12s %-10s %-8s %s\n" "server" "region" "status" "replicas";
    List.iter
      (fun (name, region, status) ->
        Printf.printf "  %-12s %-10s %-8s %8d\n" name region status (replicas_on name))
      info.Cluster.ck_servers;
    let want = min info.Cluster.ck_replicas (max (List.length (List.filter live info.Cluster.ck_servers)) 1) in
    let under =
      List.filter_map
        (fun (key, holds) ->
          let n =
            List.length
              (List.filter
                 (fun (srv, _) ->
                   List.exists (fun (m, _, s) -> m = srv && s <> "dead") info.Cluster.ck_servers)
                 holds)
          in
          if n < want then Some key else None)
        info.Cluster.ck_objects
    in
    Printf.printf "objects %d, under-replicated %d%s\n"
      (List.length info.Cluster.ck_objects)
      (List.length under)
      (match under with [] -> "" | keys -> ": " ^ String.concat " " keys)

open Cmdliner

let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")

let port = Arg.(value & opt int 7654 & info [ "port" ] ~docv:"PORT" ~doc:"Server TCP port.")

let cap_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"CAPABILITY")

let name_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")

let file_arg n = Arg.(required & pos n (some file) None & info [] ~docv:"FILE")

let p_factor =
  Arg.(
    value & opt int 2
    & info [ "p-factor" ] ~docv:"N" ~doc:"Paranoia factor: disks that must hold the file first.")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write here.")

let unit_term = Term.const ()

let status_text =
  Arg.(
    value & flag
    & info [ "text" ] ~doc:"Print the text exposition instead of decoding the binary snapshot.")

let commands =
  [
    Cmd.v (Cmd.info "info" ~doc:"show the service port")
      Term.(const show_info $ host $ port $ unit_term);
    Cmd.v
      (Cmd.info "put" ~doc:"store a local file, print its capability")
      Term.(const put $ host $ port $ p_factor $ file_arg 0 $ unit_term);
    Cmd.v
      (Cmd.info "get" ~doc:"retrieve a file by capability")
      Term.(const get $ host $ port $ cap_arg $ output $ unit_term);
    Cmd.v (Cmd.info "size" ~doc:"file size") Term.(const size $ host $ port $ cap_arg $ unit_term);
    Cmd.v
      (Cmd.info "append" ~doc:"derive a new file = old ++ local file")
      Term.(const append $ host $ port $ cap_arg $ file_arg 1 $ unit_term);
    Cmd.v (Cmd.info "rm" ~doc:"delete a file") Term.(const rm $ host $ port $ cap_arg $ unit_term);
    Cmd.v
      (Cmd.info "store" ~doc:"store a local file under a name")
      Term.(const store $ host $ port $ p_factor $ name_arg $ file_arg 1 $ unit_term);
    Cmd.v
      (Cmd.info "fetch" ~doc:"retrieve a named file")
      Term.(const fetch $ host $ port $ name_arg $ output $ unit_term);
    Cmd.v (Cmd.info "ls" ~doc:"list named files") Term.(const ls $ host $ port $ unit_term);
    Cmd.v (Cmd.info "stat" ~doc:"server statistics") Term.(const stat $ host $ port $ unit_term);
    Cmd.v
      (Cmd.info "status" ~doc:"STD_STATUS: the server's live metrics snapshot")
      Term.(const status $ host $ port $ status_text $ unit_term);
    Cmd.v
      (Cmd.info "del" ~doc:"unbind a name and delete all its versions")
      Term.(const del $ host $ port $ name_arg $ unit_term);
    Cmd.v
      (Cmd.info "cluster" ~doc:"offline status table over a cluster-directory checkpoint")
      Term.(
        const cluster_status
        $ Arg.(required & pos 0 (some file) None & info [] ~docv:"CHECKPOINT")
        $ unit_term);
  ]

let () =
  let doc = "client for the Bullet file server daemon" in
  exit (Cmd.eval (Cmd.group (Cmd.info "bullet_ctl" ~doc) commands))
