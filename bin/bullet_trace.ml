(* bullet_trace: the trace toolchain's command-line consumer.

   By default it records a small deterministic scenario against a fresh
   simulated rig — a cold 1 MB READ that misses the cache and walks down
   to individual sector transfers, a hot READ served from RAM, and a
   CREATE+DELETE pair — then pretty-prints the span trees.  It can also
   load a JSONL dump produced earlier (or by another process) and render
   that instead.

     bullet_trace                       span trees of the recorded scenario
     bullet_trace --attrib              + per-trace and per-op attribution
     bullet_trace --size 65536          scenario file size in bytes
     bullet_trace --out trace.jsonl     also dump the spans as JSONL
     bullet_trace --load trace.jsonl    render an existing dump instead
     bullet_trace --chrome trace.json   Chrome about://tracing export
     bullet_trace --trace N             restrict output to one trace id
     bullet_trace --sched               trace the overloaded scheduler run
     bullet_trace --lease               trace the leased-station lease lifecycle

   Exit status 1 if any trace's per-layer attribution fails to sum
   exactly to its end-to-end duration — the invariant the attribution
   sweep guarantees by construction, checked here against real data.     *)

module Server = Bullet_core.Server
module Client = Bullet_core.Client
module Sink = Amoeba_trace.Sink
module Trace = Amoeba_trace.Trace
module Attrib = Amoeba_trace.Attrib

(* ---- recording ---- *)

(* A cache small enough that two filler files evict the target: the
   traced READ genuinely goes to disk. *)
let record size =
  let clock = Amoeba_sim.Clock.create () in
  let geometry = Amoeba_disk.Geometry.small ~sectors:131_072 in
  let d1 = Amoeba_disk.Block_device.create ~id:"bullet-1" ~geometry ~clock in
  let d2 = Amoeba_disk.Block_device.create ~id:"bullet-2" ~geometry ~clock in
  let mirror = Amoeba_disk.Mirror.create [ d1; d2 ] in
  Server.format mirror ~max_files:2048;
  let config = { Server.default_config with cache_bytes = 2 * 1024 * 1024 } in
  let server, _report = Result.get_ok (Server.start ~config mirror) in
  let transport = Amoeba_rpc.Transport.create ~clock in
  Bullet_core.Proto.serve server transport;
  let client = Client.connect transport (Server.port server) in
  (* Untraced setup: the target file, then enough filler traffic to push
     it out of the server cache. *)
  let cap = Client.create client ~p_factor:2 (Bytes.make size 'b') in
  let filler = Bytes.make (1024 * 1024) 'f' in
  let f1 = Client.create client ~p_factor:2 filler in
  let f2 = Client.create client ~p_factor:2 filler in
  ignore (Client.read_now client f1);
  ignore (Client.read_now client f2);
  let tracer = Trace.create ~clock () in
  Amoeba_rpc.Transport.set_tracer transport (Some tracer);
  Server.set_tracer server (Some tracer);
  (* Cold READ (cache miss, disk spans), hot SIZE+READ (cache hit),
     then a traced CREATE+DELETE pair. *)
  ignore (Client.read_now client cap);
  ignore (Client.read client cap);
  let cap2 = Client.create client ~p_factor:2 (Bytes.make size 'c') in
  Client.delete client cap2;
  Amoeba_rpc.Transport.set_tracer transport None;
  Server.set_tracer server None;
  Sink.spans (Trace.sink tracer)

(* ---- loading ---- *)

let load path =
  let ic = open_in path in
  let rec go n acc =
    match input_line ic with
    | exception End_of_file ->
      close_in ic;
      List.rev acc
    | "" -> go (n + 1) acc
    | line -> (
      match Sink.span_of_line line with
      | Ok span -> go (n + 1) (span :: acc)
      | Error e ->
        Printf.eprintf "%s:%d: %s\n" path n e;
        exit 2)
  in
  go 1 []

(* ---- rendering ---- *)

let pretty_bytes n =
  if n >= 1024 * 1024 && n mod (1024 * 1024) = 0 then Printf.sprintf "%d MB" (n / (1024 * 1024))
  else if n >= 1024 && n mod 1024 = 0 then Printf.sprintf "%d KB" (n / 1024)
  else Printf.sprintf "%d B" n

let attr_string attrs =
  String.concat " "
    (List.map
       (fun (k, v) ->
         match v with
         | Sink.I i -> Printf.sprintf "%s=%d" k i
         | Sink.S s -> Printf.sprintf "%s=%s" k s)
       attrs)

let print_tree spans =
  (* Parents begin no later than their children and carry smaller span
     ids, so (begin_us, span_id) order lists each subtree in call order. *)
  let ordered =
    List.sort
      (fun (a : Sink.span) (b : Sink.span) ->
        match Int.compare a.begin_us b.begin_us with
        | 0 -> Int.compare a.span_id b.span_id
        | c -> c)
      spans
  in
  List.iter
    (fun (s : Sink.span) ->
      let indent = String.make (2 * s.Sink.depth) ' ' in
      let label = Printf.sprintf "%s%s" indent s.Sink.name in
      if s.Sink.end_us = s.Sink.begin_us then
        Printf.printf "  [%-5s] %-36s @ %8d %s\n" (Sink.layer_name s.Sink.layer) label
          s.Sink.begin_us (attr_string s.Sink.attrs)
      else
        Printf.printf "  [%-5s] %-36s %8d .. %8d (%7d us) %s\n"
          (Sink.layer_name s.Sink.layer) label s.Sink.begin_us s.Sink.end_us
          (s.Sink.end_us - s.Sink.begin_us) (attr_string s.Sink.attrs))
    ordered

let print_attrib (t : Attrib.totals) =
  let pct part = if t.Attrib.total_us = 0 then 0. else 100. *. float_of_int part /. float_of_int t.Attrib.total_us in
  Printf.printf "    total %8d us | net %5.1f%% cpu %5.1f%% cache %5.1f%% disk %5.1f%% alloc %5.1f%% other %5.1f%%\n"
    t.Attrib.total_us (pct t.Attrib.net_us) (pct t.Attrib.cpu_us) (pct t.Attrib.cache_us)
    (pct t.Attrib.disk_us) (pct t.Attrib.alloc_us) (pct t.Attrib.other_us)

(* ---- Chrome trace_event export ---- *)

let chrome_json spans =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i (s : Sink.span) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":1,\"tid\":%d}"
           (String.escaped s.Sink.name)
           (Sink.layer_name s.Sink.layer) s.Sink.begin_us
           (s.Sink.end_us - s.Sink.begin_us) s.Sink.trace_id))
    spans;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* ---- main ---- *)

let run size attrib out load_path chrome only_trace sched lease =
  let spans =
    match (load_path, sched, lease) with
    | Some p, _, _ -> load p
    | None, _, true ->
      Printf.printf
        "lease scenario: grant, zero-RPC cache hits, expiry+renewal, revocation after a \
         replace, failed read after removal\n";
      Sink.spans (Experiments.lease_trace ())
    | None, true, _ ->
      let sink, report = Experiments.load_sched_trace () in
      Printf.printf
        "sched scenario: overloaded deterministic run - %d attempts offered, %d completed, %d \
         shed, %d deadline misses, %.1f req/s goodput\n"
        report.Amoeba_sched.Sched.offered report.Amoeba_sched.Sched.completed
        report.Amoeba_sched.Sched.shed_count report.Amoeba_sched.Sched.deadline_misses
        report.Amoeba_sched.Sched.throughput_per_sec;
      Sink.spans sink
    | None, false, false -> record size
  in
  (match out with
  | Some p ->
    write_file p
      (String.concat "" (List.map (fun s -> Sink.line_of_span s ^ "\n") spans));
    Printf.printf "wrote %d spans to %s\n" (List.length spans) p
  | None -> ());
  (match chrome with
  | Some p ->
    write_file p (chrome_json spans);
    Printf.printf "wrote Chrome trace to %s (open in about://tracing)\n" p
  | None -> ());
  let traces = Attrib.by_trace spans in
  let traces =
    match only_trace with
    | Some id -> List.filter (fun (tid, _) -> tid = id) traces
    | None -> traces
  in
  if load_path = None && (not sched) && not lease then
    Printf.printf "recorded scenario: cold READ / hot SIZE+READ / CREATE+DELETE of a %s file\n"
      (pretty_bytes size);
  let bad = ref 0 in
  List.iter
    (fun (tid, trace_spans) ->
      let t = Attrib.sweep trace_spans in
      let root_us = Attrib.root_duration_us trace_spans in
      Printf.printf "\ntrace %d: %s, %d spans, %d us end-to-end\n" tid
        (Attrib.op_class trace_spans) (List.length trace_spans) root_us;
      print_tree trace_spans;
      if attrib then print_attrib t;
      let parts =
        t.Attrib.net_us + t.Attrib.cpu_us + t.Attrib.cache_us + t.Attrib.disk_us
        + t.Attrib.alloc_us + t.Attrib.other_us
      in
      (* Retried sched attempts share a trace id and a late completion
         can overlap the next attempt, so the union of roots (what the
         sweep totals) may be shorter than their sum; the layer
         partition must still be exact. *)
      if parts <> t.Attrib.total_us || ((not sched) && t.Attrib.total_us <> root_us) then begin
        incr bad;
        Printf.printf "    ATTRIBUTION MISMATCH: layers sum to %d, total %d, roots %d\n" parts
          t.Attrib.total_us root_us
      end)
    traces;
  if attrib && List.length traces > 1 then begin
    (* RPC transactions per op class: the lease fast path's headline
       number — hot leased reads must show 0.0 here. *)
    let rpcs_of cls =
      List.fold_left
        (fun acc (_, ts) -> if String.equal (Attrib.op_class ts) cls then acc + Attrib.rpc_count ts else acc)
        0 traces
    in
    Printf.printf "\nby op class\n";
    List.iter
      (fun (cls, n, t) ->
        Printf.printf "  %-16s x%-3d  rpc/op %4.1f\n" cls n
          (float_of_int (rpcs_of cls) /. float_of_int n);
        print_attrib t)
      (Attrib.by_class (List.concat_map snd traces))
  end;
  if !bad > 0 then begin
    Printf.eprintf "\n%d trace(s) failed the attribution invariant\n" !bad;
    exit 1
  end

open Cmdliner

let size =
  Arg.(
    value
    & opt int (1024 * 1024)
    & info [ "size" ] ~docv:"BYTES" ~doc:"Scenario file size in bytes.")

let attrib =
  Arg.(value & flag & info [ "attrib" ] ~doc:"Print per-trace and per-op time attribution.")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Write the spans as JSONL to $(docv).")

let load_path =
  Arg.(
    value
    & opt (some file) None
    & info [ "load" ] ~docv:"FILE" ~doc:"Render a JSONL dump instead of recording.")

let chrome =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome" ] ~docv:"FILE" ~doc:"Export Chrome trace_event JSON to $(docv).")

let only_trace =
  Arg.(
    value
    & opt (some int) None
    & info [ "trace" ] ~docv:"ID" ~doc:"Restrict output to one trace id.")

let sched =
  Arg.(
    value & flag
    & info [ "sched" ]
        ~doc:"Trace the overloaded scheduler run instead of recording the file-server scenario.")

let lease =
  Arg.(
    value & flag
    & info [ "lease" ]
        ~doc:
          "Trace the leased-station scenario (grant, zero-RPC hits, renewal, revocation) instead \
           of recording the file-server scenario.")

let cmd =
  let doc = "record, dump and attribute Bullet request traces" in
  Cmd.v (Cmd.info "bullet_trace" ~doc)
    Term.(const run $ size $ attrib $ out $ load_path $ chrome $ only_trace $ sched $ lease)

(* Under AMOEBA_TIE_CHECK=1 (the CI determinism double-run jobs), turn a
   clean run into a failure if any scenario scheduled two same-(time,
   prio) events without pinning their relative order. *)
let check_ties code =
  let module Eq = Amoeba_sim.Event_queue in
  if code = 0 && Eq.tie_check_enabled () then (
    match Eq.ties () with
    | [] -> code
    | ties ->
      List.iter (fun t -> Printf.eprintf "%s\n" (Eq.tie_to_string t)) ties;
      Printf.eprintf "bullet_trace: %d event-queue tie(s) detected\n" (List.length ties);
      1)
  else code

let () = exit (check_ties (Cmd.eval cmd))
