(* bullet_top: a terminal dashboard over the metrics layer.

     bullet_top --replay            deterministic render of the METRICS
                                    experiment (CI double-runs and diffs it)
     bullet_top [--port N]          one STD_STATUS snapshot from a bulletd
     bullet_top --watch 2 [--port]  poll and redraw every 2 s

   The replay mode needs no server: it drives the scripted fault plans
   of the METRICS experiment (drive rejoin, overload storm, lease skew)
   plus the CLUSTER rebalance episode in-process and draws each
   scenario's time series, health transitions and SLO alert edges.
   Everything it prints derives from the virtual clock, so two runs are
   byte-identical. *)

module E = Experiments
module Metrics = Amoeba_metrics.Metrics
module Health = Amoeba_metrics.Health
module Message = Amoeba_rpc.Message
module Status = Amoeba_rpc.Status
module Proto = Bullet_core.Proto

(* ---- shared rendering ---- *)

let levels = ".:-=+*#%@"

let spark values =
  match (List.fold_left min max_int values, List.fold_left max min_int values) with
  | lo, hi when lo = hi -> String.make (List.length values) (if lo = 0 then '.' else '=')
  | lo, hi ->
    String.concat ""
      (List.map
         (fun v ->
           let i = (v - lo) * (String.length levels - 1) / (hi - lo) in
           String.make 1 levels.[i])
         values)

let state_char = function
  | Health.Healthy -> 'H'
  | Health.Degraded _ -> 'D'
  | Health.Overloaded _ -> 'O'
  | Health.Lease_churning -> 'L'
  | Health.Txn_stuck _ -> 'T'
  | Health.Rebalancing _ -> 'R'

(* State at time [at] given the transition edges (oldest first). *)
let state_at transitions at =
  List.fold_left
    (fun acc (t, st) -> if t <= at then st else acc)
    Health.Healthy transitions

let render_scenario (s : E.metrics_scenario) =
  Printf.printf "── %s  (scrape every %d ms, %d snapshots)\n" s.E.ms_name
    (s.E.ms_interval_us / 1000)
    (List.length s.E.ms_snapshots);
  let names =
    List.sort_uniq String.compare
      (List.concat_map
         (fun snap -> List.map (fun { Metrics.s_name; _ } -> s_name) snap.Metrics.samples)
         s.E.ms_snapshots)
  in
  let series name =
    List.map
      (fun snap ->
        match Metrics.find snap name with None -> 0 | Some v -> Metrics.value_int v)
      s.E.ms_snapshots
  in
  let health_line =
    String.concat ""
      (List.map
         (fun snap ->
           String.make 1 (state_char (state_at s.E.ms_transitions snap.Metrics.at_us)))
         s.E.ms_snapshots)
  in
  Printf.printf "  %-28s %s\n" "health" health_line;
  List.iter
    (fun name ->
      let vs = series name in
      let lo = List.fold_left min max_int vs and hi = List.fold_left max min_int vs in
      (* constant series carry no story on a dashboard *)
      if lo <> hi then Printf.printf "  %-28s %s  %d..%d\n" name (spark vs) lo hi)
    names;
  List.iter
    (fun (at, st) ->
      Printf.printf "  state  %-16s at %8.1f s\n" (Health.state_label st)
        (float_of_int at /. 1_000_000.))
    s.E.ms_transitions;
  List.iter
    (fun (at, name, firing) ->
      Printf.printf "  alert  %-16s %-5s at %8.1f s\n" name
        (if firing then "fire" else "clear")
        (float_of_int at /. 1_000_000.))
    s.E.ms_alerts;
  print_newline ()

let replay () =
  print_endline "bullet_top --replay: the METRICS experiment, rendered";
  print_newline ();
  let r = E.metrics_experiment () in
  List.iter render_scenario r.E.mx_scenarios;
  Printf.printf "STD_STATUS: %d metrics in %d bytes, codec roundtrip %s\n" r.E.mx_status_metrics
    r.E.mx_status_bytes
    (if r.E.mx_roundtrip_ok then "ok" else "BROKEN");
  print_newline ();
  let c = E.cluster_experiment () in
  render_scenario c.E.cl_scenario;
  Printf.printf
    "CLUSTER: %d objects on %d live servers, %d migrated, %d fallthrough (%d repaired), \
     under-replicated %d\n"
    c.E.cl_objects c.E.cl_live_servers c.E.cl_migrated c.E.cl_fallthroughs c.E.cl_read_repairs
    c.E.cl_under_final

(* ---- live mode: STD_STATUS over TCP ---- *)

let cmd_hello = 0

let null_port = Amoeba_cap.Port.of_int64 0L

let fetch_snapshot conn =
  let hello = Amoeba_rpc.Tcp.trans conn (Message.request ~port:null_port ~command:cmd_hello ()) in
  let bullet_port =
    match hello.Message.cap with
    | Some cap when hello.Message.status = Status.Ok -> cap.Amoeba_cap.Capability.port
    | Some _ | None ->
      prerr_endline "malformed hello reply";
      exit 1
  in
  let reply =
    Amoeba_rpc.Tcp.trans conn
      (Message.request ~port:bullet_port ~command:Proto.cmd_std_status ())
  in
  if reply.Message.status <> Status.Ok then begin
    Printf.eprintf "error: %s\n" (Status.to_string reply.Message.status);
    exit 1
  end;
  match Proto.decode_status reply.Message.body with
  | Ok snap -> snap
  | Error e ->
    Printf.eprintf "malformed status reply: %s\n" e;
    exit 1

let render_live ?prev snap =
  Printf.printf "bullet_top — server virtual clock %d us\n\n" snap.Metrics.at_us;
  Printf.printf "  %-28s %-8s %14s %10s\n" "metric" "kind" "value" "delta";
  let prev_int name =
    match prev with
    | None -> None
    | Some p -> Option.map Metrics.value_int (Metrics.find p name)
  in
  List.iter
    (fun { Metrics.s_name; s_value } ->
      let delta =
        match prev_int s_name with
        | None -> ""
        | Some before -> Printf.sprintf "%+d" (Metrics.value_int s_value - before)
      in
      match s_value with
      | Metrics.Counter n -> Printf.printf "  %-28s %-8s %14d %10s\n" s_name "counter" n delta
      | Metrics.Gauge n -> Printf.printf "  %-28s %-8s %14d %10s\n" s_name "gauge" n delta
      | Metrics.Hist { count; p50; p99; _ } ->
        Printf.printf "  %-28s %-8s %14d %10s  p50 %d p99 %d\n" s_name "hist" count delta p50
          p99)
    snap.Metrics.samples

let live host port watch =
  let poll () =
    let conn = Amoeba_rpc.Tcp.connect ~host ~port () in
    Fun.protect
      ~finally:(fun () -> Amoeba_rpc.Tcp.close conn)
      (fun () -> fetch_snapshot conn)
  in
  match watch with
  | None -> render_live (poll ())
  | Some secs ->
    let prev = ref None in
    while true do
      let snap = poll () in
      print_string "\027[2J\027[H";
      render_live ?prev:!prev snap;
      prev := Some snap;
      flush stdout;
      Unix.sleepf secs
    done

open Cmdliner

let replay_flag =
  Arg.(
    value & flag
    & info [ "replay" ]
        ~doc:"Render the deterministic METRICS experiment instead of polling a server.")

let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")

let port = Arg.(value & opt int 7654 & info [ "port" ] ~docv:"PORT" ~doc:"Server TCP port.")

let watch =
  Arg.(
    value
    & opt (some float) None
    & info [ "watch" ] ~docv:"SECS" ~doc:"Poll and redraw every $(docv) seconds.")

let main replay_mode host port watch =
  if replay_mode then replay () else live host port watch

let () =
  let doc = "dashboard over the Bullet server's live metrics" in
  let info = Cmd.info "bullet_top" ~doc in
  exit (Cmd.eval (Cmd.v info Term.(const main $ replay_flag $ host $ port $ watch)))
