(* The paper's answer to databases under whole-file immutability (§2):
   "Data bases can be subdivided over many smaller Bullet files, for
   example based on the identifying keys."

   This example builds a tiny key-value store: records are hashed into
   buckets, each bucket is one Bullet file, and an update rewrites only
   its bucket (via BULLET.MODIFY when the record fits in place, or a
   bucket re-create when it grows). Compare the cost against the naive
   one-big-file design.

   Run with:  dune exec examples/database_shards.exe *)

module Clock = Amoeba_sim.Clock
module Server = Bullet_core.Server
module Client = Bullet_core.Client

let bucket_count = 16

let record_bytes = 256

let records = 512

let make_bed () =
  let clock = Clock.create () in
  let geometry = Amoeba_disk.Geometry.small ~sectors:131_072 in
  let d1 = Amoeba_disk.Block_device.create ~id:"d1" ~geometry ~clock in
  let d2 = Amoeba_disk.Block_device.create ~id:"d2" ~geometry ~clock in
  let mirror = Amoeba_disk.Mirror.create [ d1; d2 ] in
  Server.format mirror ~max_files:1024;
  let server, _ = Result.get_ok (Server.start mirror) in
  let transport = Amoeba_rpc.Transport.create ~clock in
  Bullet_core.Proto.serve server transport;
  (clock, Client.connect transport (Server.port server))

let record key = Bytes.make record_bytes (Char.chr (Char.code 'a' + (key mod 26)))

let () =
  (* Sharded design: one file per bucket. *)
  let clock, client = make_bed () in
  let bucket_of key = key mod bucket_count in
  let slot_of key = key / bucket_count in
  let bucket_size = records / bucket_count * record_bytes in
  let buckets =
    Array.init bucket_count (fun _ -> Client.create client (Bytes.make bucket_size '\000'))
  in
  let insert key =
    let b = bucket_of key in
    buckets.(b) <-
      (let updated = Client.modify client buckets.(b) ~pos:(slot_of key * record_bytes) (record key) in
       Client.delete client buckets.(b);
       updated)
  in
  let load_start = Clock.now clock in
  for key = 0 to records - 1 do
    insert key
  done;
  let load_us = Clock.now clock - load_start in
  (* Point update: rewrite one record in one 8 KB bucket. *)
  let update_us =
    let _, us = Clock.elapsed clock (fun () -> insert 137) in
    us
  in
  (* Point lookup: read just the record's byte range from its bucket. *)
  let lookup_us =
    let _, us =
      Clock.elapsed clock (fun () ->
          ignore
            (Client.read_range client buckets.(bucket_of 137)
               ~pos:(slot_of 137 * record_bytes) ~len:record_bytes))
    in
    us
  in
  Printf.printf "sharded over %d buckets (%d B each):\n" bucket_count bucket_size;
  Printf.printf "  bulk load of %d records  %10.1f ms\n" records (Clock.to_ms load_us);
  Printf.printf "  point update             %10.2f ms\n" (Clock.to_ms update_us);
  Printf.printf "  point lookup             %10.2f ms\n" (Clock.to_ms lookup_us);

  (* Naive design: the whole database as one immutable file - every
     update copies the lot. *)
  let clock, client = make_bed () in
  let db = ref (Client.create client (Bytes.make (records * record_bytes) '\000')) in
  let insert key =
    let updated = Client.modify client !db ~pos:(key * record_bytes) (record key) in
    Client.delete client !db;
    db := updated
  in
  let update_us =
    insert 1;
    let _, us = Clock.elapsed clock (fun () -> insert 137) in
    us
  in
  Printf.printf "one %d KB file:\n" (records * record_bytes / 1024);
  Printf.printf "  point update             %10.2f ms  (whole-file copy on every write)\n"
    (Clock.to_ms update_us)
