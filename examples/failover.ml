(* Availability: kill the main disk under load and keep serving; then
   recover the paper's way — repair the drive and copy the whole disk.
   Finally demonstrate what P-FACTOR 0 risks on a server crash.

   Run with:  dune exec examples/failover.exe *)

module Clock = Amoeba_sim.Clock
module Server = Bullet_core.Server
module Client = Bullet_core.Client
module Dev = Amoeba_disk.Block_device
module Mirror = Amoeba_disk.Mirror

let () =
  let clock = Clock.create () in
  let geometry = Amoeba_disk.Geometry.small ~sectors:65_536 in
  let drive1 = Dev.create ~id:"main" ~geometry ~clock in
  let drive2 = Dev.create ~id:"replica" ~geometry ~clock in
  let mirror = Mirror.create [ drive1; drive2 ] in
  Server.format mirror ~max_files:1024;
  let config = { Server.default_config with Server.cache_bytes = 256 * 1024 } in
  let server, _ = Result.get_ok (Server.start ~config mirror) in
  let transport = Amoeba_rpc.Transport.create ~clock in
  Bullet_core.Proto.serve server transport;
  let client = Client.connect transport (Server.port server) in

  (* Store a batch of files, written through to both disks. *)
  let caps =
    List.init 20 (fun i -> Client.create client ~p_factor:2 (Bytes.make 50_000 (Char.chr (65 + i))))
  in
  Printf.printf "stored %d files on both disks\n" (List.length caps);

  (* Evict everything from the RAM cache by flooding it, so reads must
     touch the disk again. *)
  let flood = List.init 6 (fun _ -> Client.create client (Bytes.make 50_000 'x')) in
  List.iter (Client.delete client) flood;

  (* The main disk dies. "If the main disk fails, the file server can
     proceed uninterruptedly by using the other disk." *)
  Dev.fail drive1;
  Printf.printf "main disk FAILED; live drives: %d\n" (Mirror.live_count mirror);
  let check_all () =
    List.for_all
      (fun cap ->
        match Server.read server cap with Ok _ -> true | Error _ -> false)
      caps
  in
  Printf.printf "all files still readable: %b\n" (check_all ());

  (* Creates keep working too - on the surviving disk. *)
  let during_outage = Client.create client ~p_factor:1 (Bytes.of_string "written during outage") in
  Printf.printf "create during outage: ok\n";

  (* Recovery "is simply done by copying the complete disk". *)
  let _, recovery_us = Clock.elapsed clock (fun () -> Mirror.recover mirror) in
  Printf.printf "recovered main disk by whole-disk copy (%.1f ms)\n" (Clock.to_ms recovery_us);

  (* Now the replica dies; the recovered main disk serves everything,
     including the file created during the outage. *)
  Dev.fail drive2;
  Printf.printf "replica FAILED; outage-era file readable from recovered disk: %b\n"
    (match Server.read server during_outage with Ok _ -> true | Error _ -> false);
  Dev.repair drive2;

  (* P-FACTOR 0: the reply comes before any disk has the file. A server
     crash right after loses it - the paper's documented trade. *)
  let risky = Client.create client ~p_factor:0 (Bytes.of_string "speed over safety") in
  Server.crash server;
  let server2, report = Result.get_ok (Server.start ~config mirror) in
  Printf.printf "after crash+reboot: %d files survive; p=0 file readable: %b\n"
    report.Bullet_core.Inode_table.files
    (match Server.read server2 risky with Ok _ -> true | Error _ -> false)
