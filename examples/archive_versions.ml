(* Version archival to write-once optical storage (paper §2: the version
   mechanism "presents the possibility of keeping versions on write-once
   storage such as optical disks").

   A document accumulates versions on the Bullet server; the nightly
   archiver burns everything but the newest to a WORM platter, freeing
   mirrored magnetic space while keeping history forever. Any old
   version can be recalled later.

   Run with:  dune exec examples/archive_versions.exe *)

module Clock = Amoeba_sim.Clock
module Server = Bullet_core.Server
module Client = Bullet_core.Client
module Dir = Amoeba_dir.Dir_server
module Worm = Amoeba_worm.Worm_device
module Archiver = Amoeba_worm.Archiver

let () =
  let clock = Clock.create () in
  let geometry = Amoeba_disk.Geometry.small ~sectors:65_536 in
  let d1 = Amoeba_disk.Block_device.create ~id:"d1" ~geometry ~clock in
  let d2 = Amoeba_disk.Block_device.create ~id:"d2" ~geometry ~clock in
  let mirror = Amoeba_disk.Mirror.create [ d1; d2 ] in
  Server.format mirror ~max_files:1024;
  let server, _ = Result.get_ok (Server.start mirror) in
  let transport = Amoeba_rpc.Transport.create ~clock in
  Bullet_core.Proto.serve server transport;
  let bullet = Client.connect transport (Server.port server) in
  let dirs = Dir.create ~config:{ Dir.default_config with Dir.max_versions = 10 } ~store:bullet () in
  let root = Dir.root dirs in
  let ok = function Ok v -> v | Error e -> failwith (Amoeba_rpc.Status.to_string e) in

  (* a contract goes through five drafts *)
  let publish i =
    let text = Printf.sprintf "contract draft %d: the party of the first part...\n" i in
    let cap = Client.create bullet (Bytes.of_string (text ^ String.make 20_000 '.')) in
    ignore (ok (Dir.replace dirs root "contract" cap))
  in
  for i = 1 to 5 do
    publish i
  done;
  Printf.printf "5 drafts on magnetic storage: %d Bullet files, %d retained versions\n"
    (Server.live_files server)
    (List.length (ok (Dir.versions dirs root "contract")));

  (* the 3 a.m. job: burn history to optical, keep only the newest hot *)
  let platter = Worm.create ~capacity:10_000_000 ~clock in
  let archiver = Archiver.create ~store:bullet ~platter in
  let burned, archive_us =
    Clock.elapsed clock (fun () -> ok (Archiver.archive_name archiver ~dirs ~dir:root "contract"))
  in
  Printf.printf "archived %d versions to the WORM platter (%.1f ms, %d KB burned)\n" burned
    (Clock.to_ms archive_us) (Worm.used platter / 1024);
  Printf.printf "magnetic now holds %d Bullet files; binding has %d version\n"
    (Server.live_files server)
    (List.length (ok (Dir.versions dirs root "contract")));

  (* the newest draft still answers instantly from the Bullet server *)
  let newest = ok (Dir.lookup dirs root "contract") in
  let first_line data =
    match String.index_opt (Bytes.to_string data) '\n' with
    | Some i -> String.sub (Bytes.to_string data) 0 i
    | None -> Bytes.to_string data
  in
  Printf.printf "current: %s\n" (first_line (Client.read bullet newest));

  (* legal wants draft 2 back *)
  let history = Archiver.history archiver "contract" in
  Printf.printf "optical history: %d versions (sequences %s)\n" (List.length history)
    (String.concat ", "
       (List.map (fun a -> string_of_int a.Archiver.sequence) history));
  let draft2 = List.nth history 2 in
  let recalled, recall_us =
    Clock.elapsed clock (fun () -> ok (Archiver.recall archiver "contract" ~sequence:draft2.Archiver.sequence))
  in
  Printf.printf "recalled sequence %d from optical (%.1f ms): %s\n" draft2.Archiver.sequence
    (Clock.to_ms recall_us)
    (first_line (Client.read bullet recalled));

  (* and write-once really means write-once *)
  (try ignore (Worm.overwrite platter 0 (Bytes.of_string "rewrite history"))
   with Worm.Write_once_violation -> Printf.printf "rewriting optical history: refused\n")
