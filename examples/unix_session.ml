(* The UNIX emulation (paper §5): ordinary open/read/write/lseek/close
   code running unchanged on top of immutable Bullet files and the
   directory service. A tiny "shell session" builds a project tree,
   edits a file (new version on close), renames, and lists.

   Run with:  dune exec examples/unix_session.exe *)

module Clock = Amoeba_sim.Clock
module Server = Bullet_core.Server
module Client = Bullet_core.Client
module Dir = Amoeba_dir.Dir_server
module Dir_client = Amoeba_dir.Dir_client
module Fs = Unix_emu.Posix_fs

let () =
  let clock = Clock.create () in
  let geometry = Amoeba_disk.Geometry.small ~sectors:65_536 in
  let d1 = Amoeba_disk.Block_device.create ~id:"d1" ~geometry ~clock in
  let d2 = Amoeba_disk.Block_device.create ~id:"d2" ~geometry ~clock in
  let mirror = Amoeba_disk.Mirror.create [ d1; d2 ] in
  Server.format mirror ~max_files:1024;
  let server, _ = Result.get_ok (Server.start mirror) in
  let transport = Amoeba_rpc.Transport.create ~clock in
  Bullet_core.Proto.serve server transport;
  let bullet = Client.connect transport (Server.port server) in
  let dirs = Dir.create ~store:bullet () in
  Amoeba_dir.Dir_proto.serve dirs transport;
  let dclient = Dir_client.connect transport (Dir.port dirs) in
  let fs = Fs.mount ~bullet ~dirs:dclient ~root:(Dir_client.get_root dclient) in

  (* $ mkdir -p project/src; echo ... > files *)
  Fs.mkdir fs "project";
  Fs.mkdir fs "project/src";
  Fs.write_whole fs "project/README" "A file server reproduction.\n";
  Fs.write_whole fs "project/src/main.ml" "let () = print_endline \"hello\"\n";

  (* $ cat project/src/main.ml *)
  Printf.printf "$ cat project/src/main.ml\n%s" (Fs.read_whole fs "project/src/main.ml");

  (* $ edit: append a line via open/lseek/write/close *)
  let fd = Fs.openfile fs "project/src/main.ml" [ Fs.O_RDWR; Fs.O_APPEND ] in
  let (_ : int) = Fs.write fd (Bytes.of_string "let () = exit 0\n") in
  Fs.close fs fd;
  Printf.printf "$ cat project/src/main.ml   (after edit)\n%s" (Fs.read_whole fs "project/src/main.ml");

  (* every close published a new immutable version *)
  let info = Fs.stat fs "project/src/main.ml" in
  Printf.printf "versions retained of main.ml: %d\n" info.Fs.st_versions;

  (* $ mv project/README project/README.md ; ls project *)
  Fs.rename fs "project/README" "project/README.md";
  Printf.printf "$ ls project\n";
  List.iter (Printf.printf "  %s\n") (Fs.readdir fs "project");

  (* read with a window, like dd bs=16 count=1 skip=1 *)
  Fs.with_file fs "project/src/main.ml" [ Fs.O_RDONLY ] (fun fd ->
      let (_ : int) = Fs.lseek fd 16 `SET in
      let buf = Bytes.create 16 in
      let n = Fs.read fd buf 16 in
      Printf.printf "$ dd skip=16 bs=16: %S\n" (Bytes.sub_string buf 0 n));

  (* $ rm -r ... unlink reclaims every version from the Bullet server *)
  let files_before = Server.live_files server in
  Fs.unlink fs "project/src/main.ml";
  Printf.printf "unlink reclaimed %d Bullet files\n" (files_before - Server.live_files server);
  Printf.printf "total virtual time: %.2f ms\n" (Clock.to_ms (Clock.now clock))
