(* The log-file problem (paper §2): "Each append to a log file ... would
   require the whole file to be copied. ... For log files we have
   implemented a separate server."

   An application appends 200 records to a growing log three ways and
   prints what each costs. Also shows the durability seam: unsynced tail
   bytes die with the log server, sealed segments do not.

   Run with:  dune exec examples/log_append.exe *)

module Clock = Amoeba_sim.Clock
module Server = Bullet_core.Server
module Client = Bullet_core.Client
module Log = Log_server.Log_store

let make_bed () =
  let clock = Clock.create () in
  let geometry = Amoeba_disk.Geometry.small ~sectors:131_072 in
  let d1 = Amoeba_disk.Block_device.create ~id:"d1" ~geometry ~clock in
  let d2 = Amoeba_disk.Block_device.create ~id:"d2" ~geometry ~clock in
  let mirror = Amoeba_disk.Mirror.create [ d1; d2 ] in
  Server.format mirror ~max_files:2048;
  let server, _ = Result.get_ok (Server.start mirror) in
  let transport = Amoeba_rpc.Transport.create ~clock in
  Bullet_core.Proto.serve server transport;
  (clock, Client.connect transport (Server.port server))

let appends = 200

let entry i = Bytes.of_string (Printf.sprintf "%06d request handled in %d us\n" i (1000 + i))

let () =
  let ok = function Ok v -> v | Error e -> failwith (Amoeba_rpc.Status.to_string e) in

  (* 1: the log server - appends buffer in RAM, segments seal as
     immutable Bullet files. *)
  let clock, bullet = make_bed () in
  let log = Log.create ~store:bullet () in
  let cap = Log.create_log log in
  let _, log_us =
    Clock.elapsed clock (fun () ->
        for i = 1 to appends do
          ignore (ok (Log.append log cap (entry i)))
        done;
        ok (Log.sync log cap))
  in
  Printf.printf "log server:      %8.1f ms for %d appends (%d segments)\n" (Clock.to_ms log_us)
    appends
    (List.length (ok (Log.segments log cap)));

  (* durability: sealed segments survive a log-server crash, the
     unsynced tail does not *)
  ignore (ok (Log.append log cap (Bytes.of_string "lost on crash\n")));
  let before_crash = ok (Log.length log cap) in
  Log.crash log;
  Printf.printf "  crash: length %d -> %d (unsynced tail lost, segments intact)\n" before_crash
    (ok (Log.length log cap));

  (* 2: BULLET.MODIFY - server-side copy per append, only the record on
     the wire. *)
  let clock, bullet = make_bed () in
  let file = ref (Client.create bullet (Bytes.create 0)) in
  let _, modify_us =
    Clock.elapsed clock (fun () ->
        for i = 1 to appends do
          let fresh = Client.append bullet !file (entry i) in
          Client.delete bullet !file;
          file := fresh
        done)
  in
  Printf.printf "BULLET.MODIFY:   %8.1f ms (server-side whole-file copy per append)\n"
    (Clock.to_ms modify_us);

  (* 3: naive - the client reads the whole log, appends, re-creates. *)
  let clock, bullet = make_bed () in
  let file = ref (Client.create bullet (Bytes.create 0)) in
  let _, naive_us =
    Clock.elapsed clock (fun () ->
        for i = 1 to appends do
          let contents = Client.read bullet !file in
          let fresh = Client.create bullet (Bytes.cat contents (entry i)) in
          Client.delete bullet !file;
          file := fresh
        done)
  in
  Printf.printf "naive re-create: %8.1f ms (whole log over the wire, twice, per append)\n"
    (Clock.to_ms naive_us)
