(* Quickstart: boot a Bullet server on two mirrored drives, store a
   file, read it back, derive a new version, and watch the virtual clock.

   Run with:  dune exec examples/quickstart.exe *)

module Clock = Amoeba_sim.Clock
module Server = Bullet_core.Server
module Client = Bullet_core.Client

let () =
  (* One virtual clock drives the whole simulated testbed. *)
  let clock = Clock.create () in
  let geometry = Amoeba_disk.Geometry.small ~sectors:65_536 (* 32 MB drives *) in
  let drive1 = Amoeba_disk.Block_device.create ~id:"drive1" ~geometry ~clock in
  let drive2 = Amoeba_disk.Block_device.create ~id:"drive2" ~geometry ~clock in
  let mirror = Amoeba_disk.Mirror.create [ drive1; drive2 ] in

  (* mkfs + boot. The server reads the whole inode table into RAM. *)
  Server.format mirror ~max_files:1024;
  let server, report = Result.get_ok (Server.start mirror) in
  Printf.printf "server up on port %s (%d files on disk, boot scan repaired %d)\n"
    (Amoeba_cap.Port.to_string (Server.port server))
    report.Bullet_core.Inode_table.files
    (List.length report.Bullet_core.Inode_table.repaired);

  (* Clients talk Amoeba RPC over a simulated 10 Mbit/s Ethernet. *)
  let transport = Amoeba_rpc.Transport.create ~clock in
  Bullet_core.Proto.serve server transport;
  let client = Client.connect transport (Server.port server) in

  (* BULLET.CREATE: whole file in one RPC, write-through to both disks. *)
  let data = Bytes.of_string "The quick brown fox jumps over the lazy dog.\n" in
  let cap, create_us = Clock.elapsed clock (fun () -> Client.create client ~p_factor:2 data) in
  Printf.printf "created %s  (%.2f ms)\n" (Amoeba_cap.Capability.to_string cap) (Clock.to_ms create_us);

  (* BULLET.SIZE + BULLET.READ: served from the RAM cache. *)
  let contents, read_us = Clock.elapsed clock (fun () -> Client.read client cap) in
  Printf.printf "read %d bytes back (%.2f ms): %s" (Bytes.length contents) (Clock.to_ms read_us)
    (Bytes.to_string contents);

  (* Files are immutable: an update creates a NEW file. *)
  let v2 = Client.modify client cap ~pos:4 (Bytes.of_string "slow ") in
  Printf.printf "v2 : %s" (Bytes.to_string (Client.read client v2));
  Printf.printf "v1 : %s" (Bytes.to_string (Client.read client cap));

  (* Capabilities carry rights; hand out a read-only one. *)
  let read_only = Client.restrict client cap Amoeba_cap.Rights.read in
  (try Client.delete client read_only
   with Amoeba_rpc.Status.Error e ->
     Printf.printf "delete with read-only capability refused: %s\n" (Amoeba_rpc.Status.to_string e));

  Client.delete client cap;
  Client.delete client v2;
  Printf.printf "total virtual time: %.2f ms\n" (Clock.to_ms (Clock.now clock))
