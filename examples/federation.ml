(* "One single large file service that crosses international borders"
   (paper §2.1): four sites in three countries, one global name space,
   nearest-replica reads over modelled 1989 links.

   Run with:  dune exec examples/federation.exe *)

module Fed = Amoeba_wan.Federation
module Link = Amoeba_wan.Link
module Clock = Amoeba_sim.Clock

let () =
  let fed = Fed.create ~home_region:"nl" () in
  Fed.add_site fed ~name:"cwi" ~region:"nl";
  Fed.add_site fed ~name:"tromso" ~region:"no";
  Fed.add_site fed ~name:"berlin" ~region:"de";
  Printf.printf "federation: %s (home=%s)\n" (String.concat ", " (Fed.sites fed)) (Fed.home fed);

  List.iter
    (fun (a, b) ->
      Printf.printf "  link %-8s -> %-8s %s\n" a b (Link.to_string (Fed.link_between fed a b)))
    [ ("home", "cwi"); ("home", "tromso"); ("tromso", "berlin") ];

  let clock = Fed.clock fed in
  let report = Bytes.make 65_536 'r' in

  (* publish from Amsterdam with a replica in Norway *)
  let _, publish_us =
    Clock.elapsed clock (fun () ->
        ignore (Fed.publish fed ~from:"home" ~name:"annual-report" ~replicate_to:[ "tromso" ] report))
  in
  Printf.printf "published 64 KB with a Norwegian replica (%.1f ms)\n" (Clock.to_ms publish_us);
  Printf.printf "replicas: %s\n" (String.concat ", " (Fed.replica_sites fed "annual-report"));

  (* readers everywhere resolve the same name; each is served by the
     closest replica *)
  let read_from site =
    let (_, served_by), us =
      Clock.elapsed clock (fun () -> Fed.fetch fed ~from:site "annual-report")
    in
    Printf.printf "  read from %-8s served by %-8s %10.1f ms\n" site served_by (Clock.to_ms us)
  in
  List.iter read_from [ "home"; "cwi"; "tromso"; "berlin" ];

  (* what Norway would have paid without its replica *)
  let _, wide_us =
    Clock.elapsed clock (fun () ->
        ignore (Fed.fetch_from_replica fed ~from:"tromso" "annual-report" ~replica:"home"))
  in
  Printf.printf "Norway reading the Dutch copy instead: %.1f ms - replication pays for itself\n"
    (Clock.to_ms wide_us)
