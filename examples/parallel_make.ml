(* Parallel make on the processor pool (paper §2.1: "we have implemented
   a parallel make" — Amoeba's pool processors all hammer the file
   server at once, which is why file-server throughput matters).

   A 40-module project is compiled: every job reads its source from the
   file server, burns CPU, and writes the object file back. Job
   durations are measured on the virtual clock; the pool makespan comes
   from list-scheduling those durations onto N processors (the server is
   assumed unsaturated, as in the paper's configuration of one dedicated
   server machine).

   Run with:  dune exec examples/parallel_make.exe *)

module Clock = Amoeba_sim.Clock
module Server = Bullet_core.Server
module Client = Bullet_core.Client

let modules = 40

let compile_us_per_kb = 30_000 (* a 1989 C compiler: ~30 ms of CPU per KB of source *)

let source_bytes i = 4_096 + (i * 631 mod 20_000)

(* schedule measured durations onto [lanes] processors (longest first) *)
let makespan lanes durations =
  let lane_finish = Array.make lanes 0 in
  let sorted = List.sort (fun a b -> compare b a) durations in
  List.iter
    (fun d ->
      let best = ref 0 in
      Array.iteri (fun i f -> if f < lane_finish.(!best) then best := i) lane_finish;
      lane_finish.(!best) <- lane_finish.(!best) + d)
    sorted;
  Array.fold_left max 0 lane_finish

let () =
  let clock = Clock.create () in
  let geometry = Amoeba_disk.Geometry.small ~sectors:131_072 in
  let d1 = Amoeba_disk.Block_device.create ~id:"d1" ~geometry ~clock in
  let d2 = Amoeba_disk.Block_device.create ~id:"d2" ~geometry ~clock in
  let mirror = Amoeba_disk.Mirror.create [ d1; d2 ] in
  Server.format mirror ~max_files:1024;
  let server, _ = Result.get_ok (Server.start mirror) in
  let transport = Amoeba_rpc.Transport.create ~clock in
  Bullet_core.Proto.serve server transport;
  let bullet = Client.connect transport (Server.port server) in

  (* check the sources in *)
  let sources =
    List.init modules (fun i -> Client.create bullet (Bytes.make (source_bytes i) ';'))
  in
  Printf.printf "%d source modules on the Bullet server\n" modules;

  (* compile each module once, measuring its wall time on the pool
     processor: read source + compile CPU + write object *)
  let compile cap =
    let _, us =
      Clock.elapsed clock (fun () ->
          let source = Client.read bullet cap in
          let kb = (Bytes.length source + 1023) / 1024 in
          Clock.advance clock (kb * compile_us_per_kb);
          let obj = Bytes.make (Bytes.length source / 2) 'o' in
          ignore (Client.create bullet ~p_factor:1 obj))
    in
    us
  in
  let durations = List.map compile sources in
  let sequential = List.fold_left ( + ) 0 durations in
  Printf.printf "sequential build: %.1f s (file I/O + compilation)\n"
    (float_of_int sequential /. 1e6);
  List.iter
    (fun lanes ->
      let span = makespan lanes durations in
      Printf.printf "  %2d pool processors: %6.1f s  (speedup %.2fx)\n" lanes
        (float_of_int span /. 1e6)
        (float_of_int sequential /. float_of_int span))
    [ 1; 2; 4; 8; 16 ];

  (* the file-server share of one compile: why a 3x faster server moves
     a whole build *)
  let io_only cap =
    let _, us = Clock.elapsed clock (fun () -> ignore (Client.read bullet cap)) in
    us
  in
  let io_sample =
    match sources with
    | first :: _ -> io_only first
    | [] -> 0
  in
  Printf.printf "file-server time per compile is ~%.0f%% of the job\n"
    (100.
    *. float_of_int (2 * io_sample)
    /. float_of_int (sequential / modules))
