(* Versioned document store: the paper's §5 story. A document is edited
   through immutable versions; the directory service gives each name a
   version stack, lookup/compare makes client caching trivially
   consistent, and old versions stay readable until trimmed.

   Run with:  dune exec examples/versioned_store.exe *)

module Clock = Amoeba_sim.Clock
module Server = Bullet_core.Server
module Client = Bullet_core.Client
module Dir = Amoeba_dir.Dir_server
module Cap = Amoeba_cap.Capability

let () =
  let clock = Clock.create () in
  let geometry = Amoeba_disk.Geometry.small ~sectors:65_536 in
  let d1 = Amoeba_disk.Block_device.create ~id:"d1" ~geometry ~clock in
  let d2 = Amoeba_disk.Block_device.create ~id:"d2" ~geometry ~clock in
  let mirror = Amoeba_disk.Mirror.create [ d1; d2 ] in
  Server.format mirror ~max_files:1024;
  let server, _ = Result.get_ok (Server.start mirror) in
  let transport = Amoeba_rpc.Transport.create ~clock in
  Bullet_core.Proto.serve server transport;
  let bullet = Client.connect transport (Server.port server) in

  (* Directory server: keeps the last 3 versions of every binding and
     deletes trimmed ones from the Bullet server. *)
  let dirs = Dir.create ~store:bullet () in
  let root = Dir.root dirs in
  let ok = function Ok v -> v | Error e -> failwith (Amoeba_rpc.Status.to_string e) in

  (* Publish four drafts of the same document. *)
  let publish text =
    let file = Client.create bullet (Bytes.of_string text) in
    ignore (ok (Dir.replace dirs root "paper.txt" file))
  in
  publish "draft 1: block-based file servers considered\n";
  publish "draft 2: contiguous files, immutable\n";
  publish "draft 3: add the NFS comparison\n";
  publish "camera ready: The Design of a High-Performance File Server\n";

  (* The newest version answers lookups... *)
  let current = ok (Dir.lookup dirs root "paper.txt") in
  Printf.printf "current : %s" (Bytes.to_string (Client.read bullet current));

  (* ...and the retained history is still readable (immutability). *)
  let versions = ok (Dir.versions dirs root "paper.txt") in
  Printf.printf "%d versions retained (max 3):\n" (List.length versions);
  List.iteri
    (fun i cap -> Printf.printf "  [%d] %s" i (Bytes.to_string (Client.read bullet cap)))
    versions;

  (* Client caching of immutable files: a cached copy is current iff its
     capability still equals the directory's answer. *)
  let my_cached_copy = current in
  let still_current = Cap.equal my_cached_copy (ok (Dir.lookup dirs root "paper.txt")) in
  Printf.printf "cached copy current? %b\n" still_current;
  publish "errata: fix table 2\n";
  let still_current = Cap.equal my_cached_copy (ok (Dir.lookup dirs root "paper.txt")) in
  Printf.printf "after a new version lands: cached copy current? %b\n" still_current;

  (* Draft 1 was trimmed from the stack AND deleted from the Bullet
     server - storage is reclaimed automatically. *)
  Printf.printf "live Bullet files: %d (directory files + 3 retained versions)\n"
    (Server.live_files server);
  Printf.printf "total virtual time: %.2f ms\n" (Clock.to_ms (Clock.now clock))
