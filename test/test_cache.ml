(* Tests for the Bullet RAM cache (rnodes, LRU, compaction). *)

open Helpers
module Cache = Bullet_core.Cache

let make ?(capacity = 1000) ?(max_rnodes = 8) () =
  let evicted = ref [] in
  let cache =
    Cache.create ~capacity ~max_rnodes ~on_evict:(fun ~inode ~rnode:_ -> evicted := inode :: !evicted)
  in
  (cache, evicted)

let test_insert_get_roundtrip () =
  let cache, _ = make () in
  let rnode = Option.get (Cache.insert cache ~inode:1 (payload 100)) in
  check_bytes "roundtrip" (payload 100) (Cache.get cache ~rnode);
  check_int "inode" 1 (Cache.inode_of cache ~rnode);
  check_int "length" 100 (Cache.length_of cache ~rnode)

let test_rnode_indices_one_based () =
  let cache, _ = make () in
  let rnode = Option.get (Cache.insert cache ~inode:1 (payload 10)) in
  check_bool "index 0 means not-cached" true (rnode >= 1)

let test_used_accounting () =
  let cache, _ = make () in
  let r1 = Option.get (Cache.insert cache ~inode:1 (payload 100)) in
  let _r2 = Option.get (Cache.insert cache ~inode:2 (payload 200)) in
  check_int "used" 300 (Cache.used_bytes cache);
  check_int "files" 2 (Cache.resident_files cache);
  Cache.remove cache ~rnode:r1;
  check_int "after remove" 200 (Cache.used_bytes cache);
  check_int "one file" 1 (Cache.resident_files cache)

let test_lru_eviction_order () =
  let cache, evicted = make ~capacity:300 () in
  let r1 = Option.get (Cache.insert cache ~inode:1 (payload 100)) in
  let _r2 = Option.get (Cache.insert cache ~inode:2 (payload 100)) in
  let _r3 = Option.get (Cache.insert cache ~inode:3 (payload 100)) in
  (* touch inode 1 so inode 2 becomes the LRU *)
  let (_ : bytes) = Cache.get cache ~rnode:r1 in
  let _r4 = Option.get (Cache.insert cache ~inode:4 (payload 100)) in
  check_bool "inode 2 evicted first" true (!evicted = [ 2 ])

let test_eviction_frees_enough () =
  let cache, evicted = make ~capacity:300 () in
  let _ = Option.get (Cache.insert cache ~inode:1 (payload 100)) in
  let _ = Option.get (Cache.insert cache ~inode:2 (payload 100)) in
  let _ = Option.get (Cache.insert cache ~inode:3 (payload 100)) in
  (* inserting 250 bytes must evict several *)
  let r = Cache.insert cache ~inode:4 (payload 250) in
  check_bool "fits after evictions" true (r <> None);
  check_bool "multiple evictions" true (List.length !evicted >= 2)

let test_file_larger_than_capacity_rejected () =
  let cache, _ = make ~capacity:100 () in
  check_bool "too large" true (Cache.insert cache ~inode:1 (payload 101) = None);
  check_bool "exactly capacity fits" true (Cache.insert cache ~inode:2 (payload 100) <> None)

let test_rnode_exhaustion_evicts () =
  let cache, evicted = make ~capacity:10_000 ~max_rnodes:2 () in
  let _ = Option.get (Cache.insert cache ~inode:1 (payload 10)) in
  let _ = Option.get (Cache.insert cache ~inode:2 (payload 10)) in
  let _ = Option.get (Cache.insert cache ~inode:3 (payload 10)) in
  check_int "rnode pressure evicts LRU" 1 (List.length !evicted);
  check_int "still two resident" 2 (Cache.resident_files cache)

let test_zero_length_file () =
  let cache, _ = make () in
  let rnode = Option.get (Cache.insert cache ~inode:1 (Bytes.create 0)) in
  check_int "empty" 0 (Bytes.length (Cache.get cache ~rnode));
  check_int "no memory used" 0 (Cache.used_bytes cache)

let test_get_of_free_rnode_rejected () =
  let cache, _ = make () in
  (try
     ignore (Cache.get cache ~rnode:1);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_sub_range () =
  let cache, _ = make () in
  let rnode = Option.get (Cache.insert cache ~inode:1 (Bytes.of_string "hello world")) in
  check_string "slice" "world" (Bytes.to_string (Cache.sub cache ~rnode ~pos:6 ~len:5))

let test_sub_out_of_range () =
  let cache, _ = make () in
  let rnode = Option.get (Cache.insert cache ~inode:1 (payload 10)) in
  (try
     ignore (Cache.sub cache ~rnode ~pos:5 ~len:10);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_reserve_and_blit () =
  let cache, _ = make () in
  let rnode = Option.get (Cache.reserve cache ~inode:1 11) in
  Cache.blit_in cache ~rnode ~pos:0 (Bytes.of_string "hello");
  Cache.blit_in cache ~rnode ~pos:5 (Bytes.of_string " world");
  check_string "assembled" "hello world" (Bytes.to_string (Cache.get cache ~rnode))

let test_compaction_preserves_contents () =
  let cache, _ = make ~capacity:500 () in
  let r1 = Option.get (Cache.insert cache ~inode:1 (payload 100)) in
  let r2 = Option.get (Cache.insert cache ~inode:2 (payload 100)) in
  let r3 = Option.get (Cache.insert cache ~inode:3 (payload 100)) in
  Cache.remove cache ~rnode:r2;
  let moved = Cache.compact cache in
  check_bool "something moved" true (moved > 0);
  check_bytes "r1 intact" (payload 100) (Cache.get cache ~rnode:r1);
  check_bytes "r3 intact" (payload 100) (Cache.get cache ~rnode:r3);
  (* after compaction a 300-byte file fits (2 holes of 150 would not) *)
  check_bool "hole consolidated" true (Cache.insert cache ~inode:4 (payload 300) <> None)

let test_compaction_of_empty_cache () =
  let cache, _ = make () in
  check_int "nothing to move" 0 (Cache.compact cache)

let test_touch_protects_from_eviction () =
  let cache, evicted = make ~capacity:200 () in
  let r1 = Option.get (Cache.insert cache ~inode:1 (payload 100)) in
  let _r2 = Option.get (Cache.insert cache ~inode:2 (payload 100)) in
  Cache.touch cache ~rnode:r1;
  let _r3 = Option.get (Cache.insert cache ~inode:3 (payload 100)) in
  check_bool "touched survives" true (!evicted = [ 2 ])

(* Model-based: random insert/remove/get against a reference map. *)
let prop_model =
  qtest "cache behaves like a map with eviction" ~count:200 QCheck.(pair int64 (small_list (int_range 0 60)))
    (fun (seed, sizes) ->
      ignore seed;
      let evicted = ref [] in
      let cache =
        Cache.create ~capacity:200 ~max_rnodes:8 ~on_evict:(fun ~inode ~rnode:_ ->
            evicted := inode :: !evicted)
      in
      let model = Hashtbl.create 16 in
      (* inode -> (rnode, contents) *)
      let ok = ref true in
      let next_inode = ref 0 in
      let step size =
        incr next_inode;
        let inode = !next_inode in
        let data = Bytes.init size (fun i -> Char.chr ((i + inode) land 0xff)) in
        (match Cache.insert cache ~inode data with
        | Some rnode -> Hashtbl.replace model inode (rnode, data)
        | None -> if size <= 200 then ok := false);
        (* evictions remove from the model *)
        List.iter (Hashtbl.remove model) !evicted;
        evicted := [];
        (* verify every modelled file still reads back *)
        Hashtbl.iter
          (fun _inode (rnode, data) -> if not (Bytes.equal (Cache.get cache ~rnode) data) then ok := false)
          model
      in
      List.iter step sizes;
      !ok)

let suite =
  ( "cache",
    [
      Alcotest.test_case "insert/get roundtrip" `Quick test_insert_get_roundtrip;
      Alcotest.test_case "rnode indices are 1-based" `Quick test_rnode_indices_one_based;
      Alcotest.test_case "used-bytes accounting" `Quick test_used_accounting;
      Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
      Alcotest.test_case "eviction frees enough space" `Quick test_eviction_frees_enough;
      Alcotest.test_case "file larger than capacity rejected" `Quick
        test_file_larger_than_capacity_rejected;
      Alcotest.test_case "rnode exhaustion evicts" `Quick test_rnode_exhaustion_evicts;
      Alcotest.test_case "zero-length file" `Quick test_zero_length_file;
      Alcotest.test_case "get of free rnode rejected" `Quick test_get_of_free_rnode_rejected;
      Alcotest.test_case "sub range" `Quick test_sub_range;
      Alcotest.test_case "sub out of range rejected" `Quick test_sub_out_of_range;
      Alcotest.test_case "reserve and blit_in" `Quick test_reserve_and_blit;
      Alcotest.test_case "compaction preserves contents" `Quick test_compaction_preserves_contents;
      Alcotest.test_case "compaction of empty cache" `Quick test_compaction_of_empty_cache;
      Alcotest.test_case "touch protects from eviction" `Quick test_touch_protects_from_eviction;
      prop_model;
    ] )
