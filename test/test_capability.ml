(* Tests for ports, rights, XTEA, capabilities and the sealer. *)

open Helpers
module Port = Amoeba_cap.Port
module Rights = Amoeba_cap.Rights
module Crypto = Amoeba_cap.Crypto
module Cap = Amoeba_cap.Capability
module Sealer = Amoeba_cap.Sealer
module Prng = Amoeba_sim.Prng

let test_port_roundtrip_string () =
  let p = Port.of_int64 0x123456789ABCL in
  check_string "hex" "123456789abc" (Port.to_string p);
  check_bool "roundtrip" true (Port.equal p (Port.of_string (Port.to_string p)))

let test_port_truncates_to_48_bits () =
  let p = Port.of_int64 0xFFFF_1234_5678_9ABCL in
  check_bool "masked" true (Port.equal p (Port.of_int64 0x1234_5678_9ABCL))

let test_port_wire_roundtrip () =
  let p = Port.of_int64 0xDEADBEEF42L in
  let buf = Bytes.create 10 in
  Port.write p buf 2;
  check_bool "wire roundtrip" true (Port.equal p (Port.read buf 2))

let test_port_of_string_rejects () =
  (try
     ignore (Port.of_string "xyz");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_rights_algebra () =
  let rw = Rights.(union read modify) in
  check_bool "read in rw" true (Rights.mem Rights.read rw);
  check_bool "delete not in rw" false (Rights.mem Rights.delete rw);
  check_bool "subset" true (Rights.subset Rights.read rw);
  check_bool "not subset" false (Rights.subset Rights.all rw);
  check_bool "none subset of anything" true (Rights.subset Rights.none Rights.none);
  check_int "inter" (Rights.to_int Rights.read) (Rights.to_int (Rights.inter rw Rights.read))

let test_rights_of_int_masks () = check_int "8 bits" 0xAB (Rights.to_int (Rights.of_int 0x1AB))

let prop_xtea_roundtrip =
  qtest "XTEA decrypt inverts encrypt" QCheck.(pair string int64) (fun (key_src, block) ->
      let key = Crypto.key_of_string key_src in
      Int64.equal block (Crypto.decrypt key (Crypto.encrypt key block)))

let test_xtea_key_sensitivity () =
  let k1 = Crypto.key_of_string "alpha" and k2 = Crypto.key_of_string "beta" in
  check_bool "different keys, different ciphertext" false
    (Int64.equal (Crypto.encrypt k1 42L) (Crypto.encrypt k2 42L))

let test_xtea_not_identity () =
  let k = Crypto.key_of_string "k" in
  check_bool "encryption changes the block" false (Int64.equal 42L (Crypto.encrypt k 42L))

let test_one_way_deterministic () =
  check_bool "stable" true (Int64.equal (Crypto.one_way 99L) (Crypto.one_way 99L));
  check_bool "distinct inputs" false (Int64.equal (Crypto.one_way 1L) (Crypto.one_way 2L))

let prop_capability_wire_roundtrip =
  qtest "capability wire roundtrip"
    QCheck.(quad int64 (int_range 0 0xFFFFFF) (int_range 0 255) int64)
    (fun (port, obj, rights, check) ->
      let cap =
        Cap.v ~port:(Port.of_int64 port) ~obj ~rights:(Rights.of_int rights) ~check
      in
      Cap.equal cap (Cap.of_bytes (Cap.to_bytes cap)))

let prop_capability_string_roundtrip =
  qtest "capability string roundtrip"
    QCheck.(quad int64 (int_range 0 0xFFFFFF) (int_range 0 255) int64)
    (fun (port, obj, rights, check) ->
      let cap = Cap.v ~port:(Port.of_int64 port) ~obj ~rights:(Rights.of_int rights) ~check in
      Cap.equal cap (Cap.of_string (Cap.to_string cap)))

let make_sealed () =
  let sealer = Sealer.of_passphrase "secret" in
  let prng = Prng.create ~seed:11L in
  let random = Sealer.fresh_random sealer prng in
  let rights = Rights.(union read delete) in
  let check = Sealer.seal sealer ~random ~rights in
  let cap = Cap.v ~port:(Port.of_int64 77L) ~obj:5 ~rights ~check in
  (sealer, random, cap)

let test_sealer_verifies_genuine () =
  let sealer, random, cap = make_sealed () in
  check_bool "genuine" true (Sealer.verify sealer ~random ~cap)

let test_sealer_rejects_widened_rights () =
  let sealer, random, cap = make_sealed () in
  let forged = { cap with Cap.rights = Rights.all } in
  check_bool "widened rights rejected" false (Sealer.verify sealer ~random ~cap:forged)

let test_sealer_rejects_tampered_check () =
  let sealer, random, cap = make_sealed () in
  let forged = { cap with Cap.check = Int64.add cap.Cap.check 1L } in
  check_bool "tampered check rejected" false (Sealer.verify sealer ~random ~cap:forged)

let test_sealer_rejects_wrong_random () =
  let sealer, random, cap = make_sealed () in
  ignore random;
  check_bool "wrong object random" false (Sealer.verify sealer ~random:999L ~cap)

let test_sealer_rejects_other_servers_seal () =
  let _sealer, random, cap = make_sealed () in
  let other = Sealer.of_passphrase "different" in
  check_bool "foreign seal rejected" false (Sealer.verify other ~random ~cap)

let test_restrict_narrows () =
  let sealer, random, cap = make_sealed () in
  match Sealer.restrict sealer ~random ~cap ~rights:Rights.read with
  | None -> Alcotest.fail "restrict of genuine cap failed"
  | Some narrowed ->
    check_bool "narrowed verifies" true (Sealer.verify sealer ~random ~cap:narrowed);
    check_int "only read left" (Rights.to_int Rights.read) (Rights.to_int narrowed.Cap.rights)

let test_restrict_of_forgery_fails () =
  let sealer, random, cap = make_sealed () in
  let forged = { cap with Cap.rights = Rights.all } in
  check_bool "forgery not re-sealable" true
    (Sealer.restrict sealer ~random ~cap:forged ~rights:Rights.read = None)

let prop_seal_verify =
  qtest "seal/verify for arbitrary rights" QCheck.(pair int64 (int_range 0 255))
    (fun (random, rights_bits) ->
      let sealer = Sealer.of_passphrase "prop" in
      let rights = Rights.of_int rights_bits in
      let check = Sealer.seal sealer ~random ~rights in
      let cap = Cap.v ~port:(Port.of_int64 1L) ~obj:1 ~rights ~check in
      Sealer.verify sealer ~random:(Int64.logand random 0xFFFF_FFFF_FFFFL) ~cap
      |> fun genuine ->
      (* sealing uses only the low 48 bits of the random *)
      genuine)

let suite =
  ( "capability",
    [
      Alcotest.test_case "port string roundtrip" `Quick test_port_roundtrip_string;
      Alcotest.test_case "port truncates to 48 bits" `Quick test_port_truncates_to_48_bits;
      Alcotest.test_case "port wire roundtrip" `Quick test_port_wire_roundtrip;
      Alcotest.test_case "port rejects malformed string" `Quick test_port_of_string_rejects;
      Alcotest.test_case "rights algebra" `Quick test_rights_algebra;
      Alcotest.test_case "rights of_int masks to 8 bits" `Quick test_rights_of_int_masks;
      prop_xtea_roundtrip;
      Alcotest.test_case "xtea key sensitivity" `Quick test_xtea_key_sensitivity;
      Alcotest.test_case "xtea is not identity" `Quick test_xtea_not_identity;
      Alcotest.test_case "one-way function deterministic" `Quick test_one_way_deterministic;
      prop_capability_wire_roundtrip;
      prop_capability_string_roundtrip;
      Alcotest.test_case "sealer verifies genuine cap" `Quick test_sealer_verifies_genuine;
      Alcotest.test_case "sealer rejects widened rights" `Quick test_sealer_rejects_widened_rights;
      Alcotest.test_case "sealer rejects tampered check" `Quick test_sealer_rejects_tampered_check;
      Alcotest.test_case "sealer rejects wrong random" `Quick test_sealer_rejects_wrong_random;
      Alcotest.test_case "sealer rejects foreign seal" `Quick test_sealer_rejects_other_servers_seal;
      Alcotest.test_case "restrict narrows rights" `Quick test_restrict_narrows;
      Alcotest.test_case "restrict refuses forgeries" `Quick test_restrict_of_forgery_fails;
      prop_seal_verify;
    ] )
