(* Tests for the sharded cluster: consistent-hash ring placement,
   dirty-shard tracking, rebalance determinism, and the fall-through /
   read-repair path a migration leaves behind. *)

open Helpers
module Ring = Amoeba_cluster.Ring
module Shard_map = Amoeba_cluster.Shard_map
module Cluster = Amoeba_cluster.Cluster

(* ---- ring ---- *)

(* The circle positions are pure functions of the name; pinning exact
   values pins placement (and therefore every checkpoint downstream)
   across machines and compiler versions. *)
let test_ring_positions_pinned () =
  Alcotest.(check int64) "shard-000" 4931216648381342459L (Ring.position_of "shard-000");
  Alcotest.(check int64) "shard-001" (-4987368217445684183L) (Ring.position_of "shard-001");
  Alcotest.(check int64) "obj-007" 923434638028122605L (Ring.position_of "obj-007");
  (* trailing-byte avalanche: consecutive names must not land a fixed
     stride apart (raw FNV-1a does exactly that) *)
  let d a b = Int64.sub (Ring.position_of a) (Ring.position_of b) in
  check_bool "no fixed stride" false (d "shard-001" "shard-000" = d "shard-002" "shard-001")

let five_ring () =
  List.fold_left Ring.add (Ring.create ~vnodes:64 ()) [ "a"; "b"; "c"; "d"; "e" ]

let keys200 = List.init 200 (fun i -> Printf.sprintf "key-%03d" i)

let test_ring_membership () =
  let r = five_ring () in
  check_bool "members sorted" true (Ring.members r = [ "a"; "b"; "c"; "d"; "e" ]);
  check_int "size" 5 (Ring.size r);
  check_bool "mem" true (Ring.mem r "c");
  let r' = Ring.remove r "c" in
  check_bool "removed" false (Ring.mem r' "c");
  check_bool "original untouched" true (Ring.mem r "c");
  (try
     ignore (Ring.add r "a");
     Alcotest.fail "duplicate member accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Ring.remove r "zz");
     Alcotest.fail "unknown member removed"
   with Invalid_argument _ -> ())

let test_ring_owners () =
  let r = five_ring () in
  List.iter
    (fun key ->
      let g = Ring.owners r ~r:2 key in
      check_int "group size" 2 (List.length g);
      check_bool "distinct" true (List.sort_uniq String.compare g = List.sort String.compare g))
    keys200;
  (* r larger than the ring degrades to every member, once *)
  let solo = Ring.add (Ring.create ()) "only" in
  check_bool "solo" true (Ring.owners solo ~r:3 "k" = [ "only" ]);
  check_bool "empty ring" true (Ring.owners (Ring.create ()) ~r:2 "k" = [])

(* Adding one server to five moves ~R/N of the keys' groups and leaves
   the rest byte-identical — the whole point of consistent hashing.
   The count is pinned exactly: placement is deterministic. *)
let test_ring_join_moves_a_fraction () =
  let before = five_ring () in
  let after = Ring.add before "f" in
  let moved = Ring.moved ~before ~after ~r:2 keys200 in
  check_int "exactly 65 of 200 keys move (~ R/N)" 65 (List.length moved);
  check_bool "key-000 group change pinned" true
    (Ring.owners before ~r:2 "key-000" = [ "d"; "a" ]
    && Ring.owners after ~r:2 "key-000" = [ "d"; "f" ]);
  List.iter
    (fun key ->
      let changed = Ring.owners before ~r:2 key <> Ring.owners after ~r:2 key in
      check_bool "moved iff group changed" changed (List.mem key moved))
    keys200;
  (* a single join can never evict BOTH old owners: the survivor is what
     lets mid-migration reads keep hitting a desired replica *)
  List.iter
    (fun key ->
      let old_g = Ring.owners before ~r:2 key and new_g = Ring.owners after ~r:2 key in
      check_bool "one old owner survives" true
        (List.exists (fun m -> List.mem m new_g) old_g))
    keys200

(* ---- shard map ---- *)

let test_shard_map () =
  let m = Shard_map.create ~shards:8 in
  check_int "all clean" 0 (Shard_map.remaining m);
  check_bool "no next" true (Shard_map.next m = None);
  Shard_map.mark m 2;
  Shard_map.mark m 5;
  Shard_map.mark m 5;
  check_int "idempotent mark" 2 (Shard_map.remaining m);
  check_bool "next scans up" true (Shard_map.next m = Some 2);
  (* not cleared: an interrupted drain must resume on the same shard *)
  check_bool "uncleared repeats" true (Shard_map.next m = Some 2);
  Shard_map.clear m 2;
  check_bool "then the next one" true (Shard_map.next m = Some 5);
  Shard_map.clear m 5;
  check_bool "drained" true (Shard_map.next m = None);
  (* the cursor wraps: a shard below the cursor is still found *)
  Shard_map.mark m 1;
  check_bool "circular scan" true (Shard_map.next m = Some 1);
  (try
     Shard_map.mark m 8;
     Alcotest.fail "out-of-range mark accepted"
   with Invalid_argument _ -> ())

(* ---- cluster ---- *)

let cluster_keys n = List.init n (fun i -> Printf.sprintf "key-%03d" i)

let boot_cluster ?(names = [ ("ant", "west"); ("bee", "west"); ("cow", "east") ]) n =
  let c = Cluster.create () in
  List.iter (fun (name, region) -> Cluster.add_server c ~name ~region) names;
  ignore (Cluster.rebalance c);
  List.iter
    (fun (i, key) -> Cluster.put c ~from:"west" ~key (payload (256 + (i * 64))))
    (List.mapi (fun i k -> (i, k)) (cluster_keys n));
  c

let test_cluster_placement_and_spread () =
  let c = boot_cluster 24 in
  List.iter
    (fun key ->
      let holders = Cluster.holders c key in
      check_int "R copies" 2 (List.length holders);
      check_bool "holders are the desired group" true
        (List.sort String.compare (Cluster.desired c key) = holders))
    (cluster_keys 24);
  check_int "objects_total" 24 (Cluster.objects_total c);
  check_bool "nothing under-replicated" true (Cluster.under_replicated c = [])

(* The same build twice must leave byte-identical checkpoints: every
   capability, holder list and server line. *)
let test_cluster_determinism () =
  let episode () =
    let c = boot_cluster 24 in
    Cluster.add_server c ~name:"dog" ~region:"east";
    ignore (Cluster.rebalance c);
    Cluster.kill_server c "bee";
    ignore (Cluster.rebalance c);
    Cluster.checkpoint c
  in
  let a = episode () and b = episode () in
  check_string "double run byte-identical" a b;
  match Cluster.parse_checkpoint a with
  | Error e -> Alcotest.failf "checkpoint does not parse: %s" e
  | Ok info ->
    check_int "servers" 4 (List.length info.Cluster.ck_servers);
    check_int "objects" 24 (List.length info.Cluster.ck_objects);
    check_bool "bee recorded dead" true
      (List.mem ("bee", "west", "dead") info.Cluster.ck_servers)

(* A membership change marks exactly the ring-delta shards. *)
let test_cluster_join_marks_ring_delta () =
  let c = boot_cluster 24 in
  let cfg = Cluster.config c in
  let before = Cluster.ring c in
  Cluster.add_server c ~name:"dog" ~region:"east";
  let after = Cluster.ring c in
  let expected =
    List.length
      (List.filter
         (fun i ->
           let k = Cluster.shard_key i in
           Ring.owners before ~r:cfg.Cluster.replicas k
           <> Ring.owners after ~r:cfg.Cluster.replicas k)
         (List.init cfg.Cluster.shards Fun.id))
  in
  check_int "delta marked exactly" expected (Cluster.shards_remaining c);
  check_bool "a strict subset" true (expected > 0 && expected < cfg.Cluster.shards)

(* Two joins can replace BOTH members of a group (one join never can);
   a read of such an orphaned key must fall through to an old holder and
   read-repair a desired copy — without waiting for the rebalancer. *)
let test_cluster_read_through_migration_repairs () =
  let c = boot_cluster 32 in
  Cluster.add_server c ~name:"dog" ~region:"east";
  Cluster.add_server c ~name:"emu" ~region:"west";
  let orphans =
    List.filter
      (fun key ->
        let holders = Cluster.holders c key and group = Cluster.desired c key in
        List.for_all (fun srv -> not (List.mem srv group)) holders)
      (cluster_keys 32)
  in
  check_bool "the double join orphaned some group" true (orphans <> []);
  let key = List.hd orphans in
  let st = Cluster.stats c in
  let f0 = Amoeba_sim.Stats.count st "fallthroughs" in
  let r0 = Amoeba_sim.Stats.count st "read_repairs" in
  let data = Cluster.get c ~from:"east" key in
  check_bool "right bytes" true (Bytes.length data > 0);
  check_int "fell through" (f0 + 1) (Amoeba_sim.Stats.count st "fallthroughs");
  check_int "repaired" (r0 + 1) (Amoeba_sim.Stats.count st "read_repairs");
  check_bool "a desired replica now holds it" true
    (List.exists (fun srv -> List.mem srv (Cluster.desired c key)) (Cluster.holders c key));
  (* a second read routes to the repaired desired copy: no new fallthrough *)
  let (_ : bytes) = Cluster.get c ~from:"east" key in
  check_int "no second fallthrough" (f0 + 1) (Amoeba_sim.Stats.count st "fallthroughs")

(* A kill drops replicas; the drain restores R copies on the survivors. *)
let test_cluster_kill_heals () =
  let c = boot_cluster 24 in
  Cluster.kill_server c "bee";
  check_bool "under-replicated after the kill" true (Cluster.under_replicated c <> []);
  ignore (Cluster.rebalance c);
  check_bool "healed" true (Cluster.under_replicated c = []);
  List.iter
    (fun key ->
      let holders = Cluster.holders c key in
      check_int "R copies" 2 (List.length holders);
      check_bool "none on the corpse" false (List.mem "bee" holders))
    (cluster_keys 24);
  (* every byte still readable *)
  List.iter (fun key -> ignore (Cluster.get c ~from:"east" key)) (cluster_keys 24)

let test_cluster_checkpoint_parse_errors () =
  (match Cluster.parse_checkpoint "shards 64\nreplicas nope\n" with
  | Ok _ -> Alcotest.fail "bad replica count accepted"
  | Error e -> check_string "line pinned" "checkpoint line 2: bad replica count \"nope\"" e);
  match Cluster.parse_checkpoint "object k broken\n" with
  | Ok _ -> Alcotest.fail "bad holder accepted"
  | Error e -> check_string "holder pinned" "checkpoint line 1: malformed holder \"broken\"" e

let suite =
  ( "cluster",
    [
      Alcotest.test_case "ring positions are pinned" `Quick test_ring_positions_pinned;
      Alcotest.test_case "ring membership" `Quick test_ring_membership;
      Alcotest.test_case "ring owner groups" `Quick test_ring_owners;
      Alcotest.test_case "a join moves ~R/N keys, pinned exactly" `Quick
        test_ring_join_moves_a_fraction;
      Alcotest.test_case "shard map marks, scans and resumes" `Quick test_shard_map;
      Alcotest.test_case "placement puts R copies on the desired group" `Quick
        test_cluster_placement_and_spread;
      Alcotest.test_case "rebalance is byte-deterministic" `Quick test_cluster_determinism;
      Alcotest.test_case "a join marks exactly the ring delta" `Quick
        test_cluster_join_marks_ring_delta;
      Alcotest.test_case "reads through a migration fall through and repair" `Quick
        test_cluster_read_through_migration_repairs;
      Alcotest.test_case "a kill heals back to R copies" `Quick test_cluster_kill_heals;
      Alcotest.test_case "checkpoint parse errors carry the line" `Quick
        test_cluster_checkpoint_parse_errors;
    ] )
