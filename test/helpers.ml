(* Shared fixtures for the test suites. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

let check_bytes msg a b = Alcotest.(check string) msg (Bytes.to_string a) (Bytes.to_string b)

(* A small rig: clock + two mirrored 8 MB drives. *)
type rig = {
  clock : Amoeba_sim.Clock.t;
  drive1 : Amoeba_disk.Block_device.t;
  drive2 : Amoeba_disk.Block_device.t;
  mirror : Amoeba_disk.Mirror.t;
}

let make_rig ?(sectors = 16_384) () =
  let clock = Amoeba_sim.Clock.create () in
  let geometry = Amoeba_disk.Geometry.small ~sectors in
  let drive1 = Amoeba_disk.Block_device.create ~id:"d1" ~geometry ~clock in
  let drive2 = Amoeba_disk.Block_device.create ~id:"d2" ~geometry ~clock in
  { clock; drive1; drive2; mirror = Amoeba_disk.Mirror.create [ drive1; drive2 ] }

(* A booted Bullet server with a small cache, plus transport and client. *)
type bullet_rig = {
  rig : rig;
  server : Bullet_core.Server.t;
  transport : Amoeba_rpc.Transport.t;
  client : Bullet_core.Client.t;
}

let small_bullet_config =
  {
    Bullet_core.Server.default_config with
    Bullet_core.Server.cache_bytes = 512 * 1024;
    max_cached_files = 64;
  }

let make_bullet ?(config = small_bullet_config) ?(sectors = 16_384) ?(max_files = 256) () =
  let rig = make_rig ~sectors () in
  Bullet_core.Server.format rig.mirror ~max_files;
  let server, _report = Result.get_ok (Bullet_core.Server.start ~config rig.mirror) in
  let transport = Amoeba_rpc.Transport.create ~clock:rig.clock in
  Bullet_core.Proto.serve server transport;
  let client = Bullet_core.Client.connect transport (Bullet_core.Server.port server) in
  { rig; server; transport; client }

let payload n = Bytes.init n (fun i -> Char.chr ((i * 7) land 0xff))

let ok_exn = function
  | Ok v -> v
  | Error status -> Alcotest.failf "unexpected error: %s" (Amoeba_rpc.Status.to_string status)

let expect_error expected = function
  | Ok _ -> Alcotest.failf "expected %s, got Ok" (Amoeba_rpc.Status.to_string expected)
  | Error status ->
    Alcotest.(check string)
      "status" (Amoeba_rpc.Status.to_string expected) (Amoeba_rpc.Status.to_string status)

let qtest name ?(count = 200) arbitrary prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arbitrary prop)

let elapsed_ms clock f =
  let result, us = Amoeba_sim.Clock.elapsed clock f in
  (result, Amoeba_sim.Clock.to_ms us)
