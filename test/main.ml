(* The whole test binary runs with the event-queue tie-race sanitizer
   enabled: any simulation that schedules two same-(time, priority)
   events without pinning their relative order is recorded, and the
   final [tie-check] suite fails on a non-empty accumulator. *)
let () = Amoeba_sim.Event_queue.set_tie_check true

let () =
  Alcotest.run "bullet"
    [
      Test_sim.suite;
      Test_disk.suite;
      Test_capability.suite;
      Test_rpc.suite;
      Test_extent_alloc.suite;
      Test_cache.suite;
      Test_layout.suite;
      Test_server.suite;
      Test_proto.suite;
      Test_nfs.suite;
      Test_directory.suite;
      Test_logsrv.suite;
      Test_unix_emu.suite;
      Test_workload.suite;
      Test_wire.suite;
      Test_wan.suite;
      Test_cluster.suite;
      Test_fuzz.suite;
      Test_dir_pair.suite;
      Test_worm.suite;
      Test_sparse.suite;
      Test_pool.suite;
      Test_sched.suite;
      Test_fault.suite;
      Test_lease.suite;
      Test_trace.suite;
      Test_metrics.suite;
      Test_txn.suite;
      Test_lint.suite;
      Test_vet.suite;
      Test_determinism.suite;
      Test_tools.suite;
      Test_claims.suite;
      Test_vet.global_ties;
    ]
