(* Tests for the WORM device and the version archiver. *)

open Helpers
module Worm = Amoeba_worm.Worm_device
module Archiver = Amoeba_worm.Archiver
module Dir = Amoeba_dir.Dir_server
module Client = Bullet_core.Client
module Server = Bullet_core.Server
module Status = Amoeba_rpc.Status
module Clock = Amoeba_sim.Clock

let make_platter ?(capacity = 1_000_000) () =
  let clock = Clock.create () in
  (clock, Worm.create ~capacity ~clock)

let test_append_read_roundtrip () =
  let _clock, platter = make_platter () in
  let s1 = Worm.append platter (payload 100) in
  let s2 = Worm.append platter (Bytes.of_string "second") in
  check_bytes "first record" (payload 100) (Worm.read platter s1);
  check_string "second record" "second" (Bytes.to_string (Worm.read platter s2));
  check_int "two records" 2 (Worm.records platter);
  check_int "bytes used" 106 (Worm.used platter)

let test_write_once () =
  let _clock, platter = make_platter () in
  let slot = Worm.append platter (payload 10) in
  (try
     ignore (Worm.overwrite platter slot (payload 10));
     Alcotest.fail "expected Write_once_violation"
   with Worm.Write_once_violation -> ())

let test_platter_full () =
  let _clock, platter = make_platter ~capacity:100 () in
  let (_ : Worm.slot) = Worm.append platter (payload 80) in
  (try
     ignore (Worm.append platter (payload 30));
     Alcotest.fail "expected Platter_full"
   with Worm.Platter_full -> ());
  check_int "failed burn leaves no record" 1 (Worm.records platter)

let test_optical_slower_than_magnetic () =
  let clock, platter = make_platter () in
  let _, burn_us = Clock.elapsed clock (fun () -> ignore (Worm.append platter (payload 65_536))) in
  (* the same write on a magnetic drive *)
  let geometry = Amoeba_disk.Geometry.small ~sectors:1024 in
  let dev = Amoeba_disk.Block_device.create ~id:"mag" ~geometry ~clock in
  let _, disk_us =
    Clock.elapsed clock (fun () -> Amoeba_disk.Block_device.write dev ~sector:0 (payload 65_536))
  in
  check_bool "optical write slower" true (burn_us > disk_us)

let test_unknown_slot () =
  let _clock, platter = make_platter () in
  (try
     ignore (Worm.read platter 0);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ---- archiver ---- *)

type rig = {
  bullet : bullet_rig;
  dirs : Dir.t;
  root : Amoeba_cap.Capability.t;
  platter : Worm.t;
  archiver : Archiver.t;
}

let make () =
  let bullet = make_bullet () in
  let dirs = Dir.create ~store:bullet.client () in
  let platter = Worm.create ~capacity:2_000_000 ~clock:bullet.rig.clock in
  let archiver = Archiver.create ~store:bullet.client ~platter in
  { bullet; dirs; root = Dir.root dirs; platter; archiver }

let publish rig name contents =
  let cap = Client.create rig.bullet.client (Bytes.of_string contents) in
  ignore (ok_exn (Dir.replace rig.dirs rig.root name cap))

let test_archive_name_moves_old_versions () =
  let rig = make () in
  publish rig "doc" "v1";
  publish rig "doc" "v2";
  publish rig "doc" "v3";
  let live_before = Server.live_files rig.bullet.server in
  let archived = ok_exn (Archiver.archive_name rig.archiver ~dirs:rig.dirs ~dir:rig.root "doc") in
  check_int "two versions burned" 2 archived;
  check_int "records on platter" 2 (Worm.records rig.platter);
  (* bullet space freed: v1 and v2 deleted, one directory rewrite net
     zero *)
  check_bool "magnetic space freed" true (Server.live_files rig.bullet.server < live_before);
  (* binding still answers with the newest version *)
  let newest = ok_exn (Dir.lookup rig.dirs rig.root "doc") in
  check_string "newest stays magnetic" "v3" (Bytes.to_string (Client.read rig.bullet.client newest));
  check_int "binding shrunk to one version" 1
    (List.length (ok_exn (Dir.versions rig.dirs rig.root "doc")))

let test_history_and_recall () =
  let rig = make () in
  publish rig "doc" "ancient";
  publish rig "doc" "middle";
  publish rig "doc" "current";
  let (_ : int) = ok_exn (Archiver.archive_name rig.archiver ~dirs:rig.dirs ~dir:rig.root "doc") in
  let history = Archiver.history rig.archiver "doc" in
  check_int "two archived" 2 (List.length history);
  (* newest-first: head is "middle", tail is "ancient" *)
  let oldest = List.nth history 1 in
  let cap = ok_exn (Archiver.recall rig.archiver "doc" ~sequence:oldest.Archiver.sequence) in
  check_string "recalled from optical" "ancient" (Bytes.to_string (Client.read rig.bullet.client cap))

let test_archive_single_version_noop () =
  let rig = make () in
  publish rig "only" "just one";
  check_int "nothing to archive" 0
    (ok_exn (Archiver.archive_name rig.archiver ~dirs:rig.dirs ~dir:rig.root "only"))

let test_archive_missing_name () =
  let rig = make () in
  expect_error Status.Not_found (Archiver.archive_name rig.archiver ~dirs:rig.dirs ~dir:rig.root "ghost")

let test_recall_unknown_sequence () =
  let rig = make () in
  expect_error Status.Not_found (Archiver.recall rig.archiver "doc" ~sequence:99)

let test_catalog_checkpoint_restore () =
  let rig = make () in
  publish rig "a" "a1";
  publish rig "a" "a2";
  publish rig "b" "b1";
  publish rig "b" "b2";
  let (_ : int) = ok_exn (Archiver.archive_name rig.archiver ~dirs:rig.dirs ~dir:rig.root "a") in
  let (_ : int) = ok_exn (Archiver.archive_name rig.archiver ~dirs:rig.dirs ~dir:rig.root "b") in
  let checkpoint = ok_exn (Archiver.checkpoint rig.archiver) in
  let revived =
    Result.get_ok (Archiver.restore ~store:rig.bullet.client ~platter:rig.platter checkpoint)
  in
  check_bool "names survive" true (Archiver.catalog_names revived = [ "a"; "b" ]);
  let entry = List.nth (Archiver.history revived "a") 0 in
  let cap = ok_exn (Archiver.recall revived "a" ~sequence:entry.Archiver.sequence) in
  check_string "recall after restore" "a1" (Bytes.to_string (Client.read rig.bullet.client cap))

let suite =
  ( "worm",
    [
      Alcotest.test_case "append/read roundtrip" `Quick test_append_read_roundtrip;
      Alcotest.test_case "write-once enforced" `Quick test_write_once;
      Alcotest.test_case "platter full" `Quick test_platter_full;
      Alcotest.test_case "optical slower than magnetic" `Quick test_optical_slower_than_magnetic;
      Alcotest.test_case "unknown slot rejected" `Quick test_unknown_slot;
      Alcotest.test_case "archive moves old versions to optical" `Quick
        test_archive_name_moves_old_versions;
      Alcotest.test_case "history and recall" `Quick test_history_and_recall;
      Alcotest.test_case "single version is a no-op" `Quick test_archive_single_version_noop;
      Alcotest.test_case "archiving a missing name" `Quick test_archive_missing_name;
      Alcotest.test_case "recall of unknown sequence" `Quick test_recall_unknown_sequence;
      Alcotest.test_case "catalog checkpoint/restore" `Quick test_catalog_checkpoint_restore;
    ] )
