(* Tests for the workload generators. *)

open Helpers
module Sizes = Workload.Sizes
module Trace = Workload.Trace
module Prng = Amoeba_sim.Prng

let test_paper_sweep () =
  check_bool "six sizes, 1 B to 1 MB" true
    (Sizes.paper_sweep = [ 1; 16; 256; 4096; 65536; 1048576 ])

let test_describe () =
  check_string "bytes" "16 B" (Sizes.describe 16);
  check_string "kilobytes" "64 KB" (Sizes.describe 65536);
  check_string "megabytes" "1 MB" (Sizes.describe 1048576)

let sample_many n =
  let prng = Prng.create ~seed:123L in
  let rec go i acc = if i = 0 then acc else go (i - 1) (Sizes.sample prng :: acc) in
  go n []

let test_distribution_median_about_1kb () =
  let samples = List.sort compare (sample_many 10_001) in
  let median = List.nth samples 5_000 in
  check_bool (Printf.sprintf "median %d in [512, 2048]" median) true
    (median >= 512 && median <= 2048)

let test_distribution_99th_under_64kb () =
  let samples = sample_many 10_000 in
  let under = List.length (List.filter (fun s -> s < 65_536) samples) in
  (* 99% of files are under 64 KB (give the sampler ±1%) *)
  check_bool (Printf.sprintf "under-64KB fraction %d/10000" under) true (under >= 9_800)

let test_distribution_bounds () =
  List.iter
    (fun s -> check_bool "within [1, 1MB]" true (s >= 1 && s <= 1_048_576))
    (sample_many 5_000)

let test_trace_deterministic () =
  let prng1 = Prng.create ~seed:5L and prng2 = Prng.create ~seed:5L in
  let t1 = Trace.generate ~prng:prng1 ~warmup_files:10 ~ops:100 () in
  let t2 = Trace.generate ~prng:prng2 ~warmup_files:10 ~ops:100 () in
  check_bool "same seed, same trace" true (t1 = t2)

let test_trace_shape () =
  let prng = Prng.create ~seed:9L in
  let trace = Trace.generate ~prng ~warmup_files:20 ~ops:500 () in
  check_int "warmup + ops" 520 (List.length trace);
  let is_create = function Trace.Create _ -> true | _ -> false in
  let rec first_n n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: first_n (n - 1) rest
  in
  check_bool "warmup is creates" true (List.for_all is_create (first_n 20 trace))

let test_trace_victims_valid () =
  (* replay the trace against a growing/shrinking set and check indices *)
  let prng = Prng.create ~seed:77L in
  let trace = Trace.generate ~prng ~warmup_files:5 ~ops:2_000 () in
  let live = ref 0 in
  let ok = ref true in
  let step = function
    | Trace.Create _ -> incr live
    | Trace.Read_whole { victim }
    | Trace.Read_part { victim; _ }
    | Trace.Rewrite { victim; _ }
    | Trace.Update { victim; _ } ->
      if victim < 0 || victim >= !live then ok := false
    | Trace.Delete { victim } ->
      if victim < 0 || victim >= !live then ok := false;
      decr live
  in
  List.iter step trace;
  check_bool "victims always in range" true !ok

let test_trace_read_dominated () =
  let prng = Prng.create ~seed:31L in
  let trace = Trace.generate ~prng ~warmup_files:50 ~ops:5_000 () in
  let reads =
    List.length
      (List.filter (function Trace.Read_whole _ | Trace.Read_part _ -> true | _ -> false) trace)
  in
  (* the BSD mix: ~75% of post-warmup ops are reads *)
  check_bool (Printf.sprintf "reads %d/5000" reads) true (reads > 3_300 && reads < 4_200)

let suite =
  ( "workload",
    [
      Alcotest.test_case "paper sweep" `Quick test_paper_sweep;
      Alcotest.test_case "describe sizes" `Quick test_describe;
      Alcotest.test_case "median ≈ 1 KB" `Quick test_distribution_median_about_1kb;
      Alcotest.test_case "99% under 64 KB" `Quick test_distribution_99th_under_64kb;
      Alcotest.test_case "samples within bounds" `Quick test_distribution_bounds;
      Alcotest.test_case "trace deterministic" `Quick test_trace_deterministic;
      Alcotest.test_case "trace shape" `Quick test_trace_shape;
      Alcotest.test_case "trace victims valid" `Quick test_trace_victims_valid;
      Alcotest.test_case "trace is read-dominated" `Quick test_trace_read_dominated;
    ] )
