(* Tests for the replicated directory service: duplexed mutations,
   failover, healing, convergence. *)

open Helpers
module Pair = Amoeba_dir.Dir_pair
module Dir_client = Amoeba_dir.Dir_client
module Client = Bullet_core.Client
module Cap = Amoeba_cap.Capability
module Status = Amoeba_rpc.Status

type rig = {
  bullet : bullet_rig;  (** shared transport + primary's Bullet store *)
  pair : Pair.t;
  dclient : Dir_client.t;
}

(* two independent Bullet servers on one transport, one per replica *)
let make () =
  let bullet = make_bullet () in
  let clock = bullet.rig.clock in
  let geometry = Amoeba_disk.Geometry.small ~sectors:16_384 in
  let b1 = Amoeba_disk.Block_device.create ~id:"bk1" ~geometry ~clock in
  let b2 = Amoeba_disk.Block_device.create ~id:"bk2" ~geometry ~clock in
  let backup_mirror = Amoeba_disk.Mirror.create [ b1; b2 ] in
  Bullet_core.Server.format backup_mirror ~max_files:256;
  let backup_server, _ =
    Result.get_ok (Bullet_core.Server.start ~config:small_bullet_config ~seed:77L backup_mirror)
  in
  Bullet_core.Proto.serve backup_server bullet.transport;
  let backup_store = Client.connect bullet.transport (Bullet_core.Server.port backup_server) in
  let pair = Pair.create ~primary_store:bullet.client ~backup_store () in
  Pair.serve pair bullet.transport;
  let dclient = Dir_client.connect bullet.transport (Pair.port pair) in
  { bullet; pair; dclient }

let file rig contents = Client.create rig.bullet.client (Bytes.of_string contents)

let test_basic_ops_via_pair () =
  let rig = make () in
  let root = Dir_client.get_root rig.dclient in
  Dir_client.enter rig.dclient root "x" (file rig "1");
  let found = Dir_client.lookup rig.dclient root "x" in
  check_string "readable" "1" (Bytes.to_string (Client.read rig.bullet.client found));
  check_bool "replicas agree" true (Pair.divergence rig.pair = None)

let test_failover_preserves_namespace () =
  let rig = make () in
  let root = Dir_client.get_root rig.dclient in
  let f = file rig "precious" in
  Dir_client.enter rig.dclient root "keep" f;
  let sub = Dir_client.make_dir rig.dclient in
  Dir_client.enter rig.dclient root "sub" sub;
  Dir_client.enter rig.dclient sub "inner" (file rig "deep");
  (* primary dies; every capability keeps working *)
  Pair.fail_primary rig.pair;
  check_bool "primary down" false (Pair.primary_alive rig.pair);
  let found = Dir_client.lookup rig.dclient root "keep" in
  check_bool "same capability" true (Cap.equal f found);
  let inner = Dir_client.lookup rig.dclient (Dir_client.lookup rig.dclient root "sub") "inner" in
  check_string "nested survives" "deep" (Bytes.to_string (Client.read rig.bullet.client inner))

let test_mutations_during_outage_then_heal () =
  let rig = make () in
  let root = Dir_client.get_root rig.dclient in
  Dir_client.enter rig.dclient root "before" (file rig "b");
  Pair.fail_primary rig.pair;
  (* service keeps accepting mutations on the backup alone *)
  Dir_client.enter rig.dclient root "during" (file rig "d");
  let fresh_dir = Dir_client.make_dir rig.dclient in
  Dir_client.enter rig.dclient root "newdir" fresh_dir;
  (* heal: the primary is rebuilt from the backup's state *)
  Pair.heal_primary rig.pair;
  check_bool "primary back" true (Pair.primary_alive rig.pair);
  check_bool "replicas converged" true (Pair.divergence rig.pair = None);
  (* and both serve the outage-era bindings *)
  let d = Dir_client.lookup rig.dclient root "during" in
  check_string "outage binding" "d" (Bytes.to_string (Client.read rig.bullet.client d));
  (* post-heal mutations stay in lockstep, including fresh directories *)
  Dir_client.enter rig.dclient root "after" (file rig "a");
  let another = Dir_client.make_dir rig.dclient in
  Dir_client.enter rig.dclient root "post" another;
  check_bool "still converged" true (Pair.divergence rig.pair = None)

let test_new_dirs_after_heal_agree () =
  (* capabilities minted by the two replicas after a heal must be equal;
     this is what the deterministic (seed, obj) randoms buy *)
  let rig = make () in
  Pair.fail_primary rig.pair;
  let d1 = Dir_client.make_dir rig.dclient in
  Pair.heal_primary rig.pair;
  let d2 = Dir_client.make_dir rig.dclient in
  (* use both: enter entries through the pair, then verify divergence *)
  let root = Dir_client.get_root rig.dclient in
  Dir_client.enter rig.dclient root "d1" d1;
  Dir_client.enter rig.dclient root "d2" d2;
  Dir_client.enter rig.dclient d2 "leaf" (file rig "x");
  check_bool "converged" true (Pair.divergence rig.pair = None)

let test_divergence_detector () =
  let rig = make () in
  let root = Dir_client.get_root rig.dclient in
  Dir_client.enter rig.dclient root "x" (file rig "1");
  check_bool "agree" true (Pair.divergence rig.pair = None);
  (* inject a lost update: mutate the backup's state behind the pair's
     back (simulates a dropped replication message) *)
  Pair.fail_primary rig.pair;
  Dir_client.enter rig.dclient root "sneaky" (file rig "2");
  (* the replicas' states now differ, and the auditor sees it *)
  check_bool "divergence detected" true (Pair.divergence rig.pair <> None);
  Pair.heal_primary rig.pair;
  check_bool "heal repairs the divergence" true (Pair.divergence rig.pair = None)

let test_reads_cheap_mutations_duplexed () =
  let rig = make () in
  let root = Dir_client.get_root rig.dclient in
  let stats = Bullet_core.Server.stats rig.bullet.server in
  let creates_before = Amoeba_sim.Stats.count stats "creates" in
  Dir_client.enter rig.dclient root "x" (file rig "1");
  (* the entry file + the primary replica's directory rewrite hit the
     primary store *)
  check_bool "primary store written" true (Amoeba_sim.Stats.count stats "creates" > creates_before);
  let creates_mid = Amoeba_sim.Stats.count stats "creates" in
  let (_ : Cap.t) = Dir_client.lookup rig.dclient root "x" in
  check_int "reads do not write" creates_mid (Amoeba_sim.Stats.count stats "creates")

let test_replica_dumps_canonical () =
  let rig = make () in
  let root = Dir_client.get_root rig.dclient in
  Dir_client.enter rig.dclient root "x" (file rig "1");
  let sub = Dir_client.make_dir rig.dclient in
  Dir_client.enter rig.dclient root "sub" sub;
  Dir_client.enter rig.dclient sub "leaf" (file rig "2");
  let a, b = Pair.replica_dumps rig.pair in
  check_string "converged replicas dump identically" a b;
  check_bool "the dump is not empty" true (String.length a > 0);
  (* a lost update makes the dumps visibly differ *)
  Pair.fail_primary rig.pair;
  Dir_client.enter rig.dclient root "sneaky" (file rig "3");
  let a, b = Pair.replica_dumps rig.pair in
  check_bool "diverged replicas dump differently" true (a <> b);
  Pair.heal_primary rig.pair;
  let a, b = Pair.replica_dumps rig.pair in
  check_string "heal restores byte-identical state" a b

let test_plan_driven_crash_mid_stream () =
  (* The crash arrives from a fault plan in the middle of a mutation
     stream, not at a hand-picked quiet point: every mutation must land,
     the survivor serves alone during the outage, and after the heal the
     replicas are byte-identical. *)
  let rig = make () in
  let clock = rig.bullet.rig.clock in
  let root = Dir_client.get_root rig.dclient in
  let crash_at = Amoeba_sim.Clock.now clock + 200_000 in
  let heal_at = crash_at + 400_000 in
  let plan =
    Amoeba_fault.Plan.create ~seed:0xD1BL
    |> fun p -> Amoeba_fault.Plan.at p ~us:crash_at Amoeba_fault.Plan.Server_crash
    |> fun p -> Amoeba_fault.Plan.at p ~us:heal_at Amoeba_fault.Plan.Server_reboot
  in
  let injector =
    Amoeba_fault.Injector.attach
      ~on_crash:(fun () -> Pair.fail_primary rig.pair)
      ~on_reboot:(fun () -> Pair.heal_primary rig.pair)
      ~clock plan
  in
  let outage_ops = ref 0 in
  for i = 0 to 19 do
    Dir_client.enter rig.dclient root (Printf.sprintf "entry-%02d" i) (file rig (string_of_int i));
    if not (Pair.primary_alive rig.pair) then incr outage_ops;
    Amoeba_sim.Clock.advance clock 40_000;
    Amoeba_fault.Injector.poll injector
  done;
  Amoeba_fault.Injector.detach injector;
  check_int "crash fired" 1
    (Amoeba_sim.Stats.count (Amoeba_fault.Injector.stats injector) "server_crashes");
  check_bool "some ops rode the outage" true (!outage_ops > 0);
  check_bool "primary healed" true (Pair.primary_alive rig.pair);
  check_bool "no divergence" true (Pair.divergence rig.pair = None);
  let a, b = Pair.replica_dumps rig.pair in
  check_string "byte-identical after heal" a b;
  (* every binding from before, during and after the outage resolves *)
  for i = 0 to 19 do
    let cap = Dir_client.lookup rig.dclient root (Printf.sprintf "entry-%02d" i) in
    check_string
      (Printf.sprintf "entry %d intact" i)
      (string_of_int i)
      (Bytes.to_string (Client.read rig.bullet.client cap))
  done

let suite =
  ( "dir_pair",
    [
      Alcotest.test_case "basic ops through the pair" `Quick test_basic_ops_via_pair;
      Alcotest.test_case "failover preserves the namespace" `Quick test_failover_preserves_namespace;
      Alcotest.test_case "mutations during outage, then heal" `Quick
        test_mutations_during_outage_then_heal;
      Alcotest.test_case "post-heal capabilities agree" `Quick test_new_dirs_after_heal_agree;
      Alcotest.test_case "divergence detector and repair" `Quick test_divergence_detector;
      Alcotest.test_case "reads cheap, mutations duplexed" `Quick test_reads_cheap_mutations_duplexed;
      Alcotest.test_case "replica dumps are canonical" `Quick test_replica_dumps_canonical;
      Alcotest.test_case "plan-driven crash mid-stream" `Quick test_plan_driven_crash_mid_stream;
    ] )
