(* Integration tests for the command-line tools (mkbullet, bullet_fsck),
   run as real subprocesses against image files. *)

open Helpers

let run command =
  let ic = Unix.open_process_in (command ^ " 2>&1") in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let in_temp_dir f =
  let dir = Filename.temp_file "bullet_tools" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let keep = Sys.getcwd () in
  Sys.chdir dir;
  Fun.protect
    ~finally:(fun () ->
      Sys.chdir keep;
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    f

(* the test binary runs in _build/default/test; the tools are siblings *)
let tool name = Filename.concat (Filename.dirname Sys.executable_name) ("../bin/" ^ name ^ ".exe")

let mkbullet args = run (Filename.quote (tool "mkbullet") ^ " " ^ args)

let fsck args = run (Filename.quote (tool "bullet_fsck") ^ " " ^ args)

let test_mkbullet_and_clean_fsck () =
  in_temp_dir (fun () ->
      let status, out = mkbullet "d1.img d2.img --size-mb 4 --max-files 63" in
      check_bool "mkbullet ok" true (status = Unix.WEXITED 0);
      check_bool "reports geometry" true (contains out "63 inodes");
      let status, out = fsck "d1.img d2.img" in
      check_bool "fsck ok" true (status = Unix.WEXITED 0);
      check_bool "clean" true (contains out "consistency       clean");
      check_bool "no files" true (contains out "live files        0"))

let corrupt_inode_block path =
  (* image header is 32 bytes; inode block 1 starts at 32 + 512 *)
  let oc = open_out_gen [ Open_binary; Open_wronly ] 0o644 path in
  seek_out oc (32 + 512);
  output_bytes oc (payload 512);
  close_out oc

let test_fsck_repairs_corruption () =
  in_temp_dir (fun () ->
      let (_ : Unix.process_status * string) =
        mkbullet "d1.img d2.img --size-mb 4 --max-files 63"
      in
      corrupt_inode_block "d1.img";
      corrupt_inode_block "d2.img";
      let status, out = fsck "d1.img d2.img --repair" in
      check_bool "repair run ok" true (status = Unix.WEXITED 0);
      check_bool "repairs reported" true (contains out "repaired");
      check_bool "written back" true (contains out "repairs written back");
      let _, out = fsck "d1.img d2.img" in
      check_bool "clean afterwards" true (contains out "consistency       clean"))

let test_fsck_rejects_garbage_file () =
  in_temp_dir (fun () ->
      let oc = open_out "junk.img" in
      output_string oc "not an image";
      close_out oc;
      let status, out = fsck "junk.img" in
      check_bool "nonzero exit" true (status <> Unix.WEXITED 0);
      check_bool "explains" true (contains out "junk.img"))

let test_fsck_compact () =
  in_temp_dir (fun () ->
      let (_ : Unix.process_status * string) =
        mkbullet "d1.img d2.img --size-mb 4 --max-files 63"
      in
      let status, out = fsck "d1.img d2.img --compact" in
      check_bool "compact ok" true (status = Unix.WEXITED 0);
      check_bool "reports move" true (contains out "compaction");
      check_bool "saved" true (contains out "images saved"))

let test_fsck_clean_after_crash_reboot () =
  (* A server crashes mid-workload under a fault plan and reboots off the
     surviving disks; the image that survives must be one fsck calls
     clean — the crash may lose unsynced files, never consistency. *)
  in_temp_dir (fun () ->
      let b = make_bullet () in
      let module Server = Bullet_core.Server in
      let module Client = Bullet_core.Client in
      let module Plan = Amoeba_fault.Plan in
      let port = Server.port b.server in
      let server = ref b.server in
      let client =
        Client.connect ~attempts:8 ~backoff_us:50_000 b.transport port
      in
      (* durable files, then one p=0 file the crash is allowed to lose *)
      let durable = List.init 5 (fun i -> Client.create client ~p_factor:2 (payload (500 + i))) in
      let (_ : Amoeba_cap.Capability.t) = Client.create client ~p_factor:0 (payload 9) in
      let crash_at = Amoeba_sim.Clock.now b.rig.clock + 1_000 in
      let plan =
        Plan.create ~seed:0xF5CL
        |> fun p -> Plan.at p ~us:crash_at Plan.Server_crash
        |> fun p -> Plan.at p ~us:(crash_at + 200_000) Plan.Server_reboot
      in
      let on_crash () =
        Amoeba_rpc.Transport.unregister b.transport port;
        Server.crash !server
      in
      let on_reboot () =
        let booted, _ = Result.get_ok (Server.start ~config:small_bullet_config b.rig.mirror) in
        server := booted;
        Bullet_core.Proto.serve booted b.transport
      in
      let injector =
        Amoeba_fault.Injector.attach ~transport:b.transport ~mirror:b.rig.mirror ~on_crash
          ~on_reboot ~clock:b.rig.clock plan
      in
      Amoeba_sim.Clock.advance b.rig.clock 1_000;
      (* reads ride out the outage on retries *)
      List.iteri
        (fun i cap -> check_bytes "survives the crash" (payload (500 + i)) (Client.read client cap))
        durable;
      Amoeba_fault.Injector.detach injector;
      Amoeba_disk.Image.save b.rig.drive1 "d1.img";
      Amoeba_disk.Image.save b.rig.drive2 "d2.img";
      let status, out = fsck "d1.img d2.img" in
      check_bool "fsck ok" true (status = Unix.WEXITED 0);
      check_bool "image is clean after crash+reboot" true (contains out "consistency       clean");
      check_bool "durable files all present" true (contains out "live files        5"))

(* ---- the daemon, end to end over real TCP ---- *)

let wait_for_port port =
  let rec go attempts =
    if attempts = 0 then false
    else
      match Amoeba_rpc.Tcp.connect ~port () with
      | conn ->
        Amoeba_rpc.Tcp.close conn;
        true
      | exception Unix.Unix_error _ ->
        Unix.sleepf 0.1;
        go (attempts - 1)
  in
  go 50

let with_daemon data_dir port f =
  let command =
    Printf.sprintf "%s --port %d --data %s --size-mb 8 --max-files 128 > bulletd.log 2>&1"
      (Filename.quote (tool "bulletd")) port (Filename.quote data_dir)
  in
  let pid =
    Unix.create_process "/bin/sh" [| "/bin/sh"; "-c"; command |] Unix.stdin Unix.stdout Unix.stderr
  in
  Fun.protect
    ~finally:(fun () ->
      Unix.kill pid Sys.sigterm;
      ignore (Unix.waitpid [] pid))
    (fun () ->
      check_bool "daemon came up" true (wait_for_port port);
      f ())

let ctl port args =
  run (Printf.sprintf "%s %s --port %d" (Filename.quote (tool "bullet_ctl")) args port)

let test_daemon_end_to_end () =
  in_temp_dir (fun () ->
      let port = 17_000 + (Unix.getpid () mod 2_000) in
      let oc = open_out "hello.txt" in
      output_string oc "hello daemon";
      close_out oc;
      with_daemon "data" port (fun () ->
          let status, out = ctl port "store greeting hello.txt" in
          check_bool "store ok" true (status = Unix.WEXITED 0);
          check_bool "prints capability" true (contains out "greeting -> ");
          let _, out = ctl port "fetch greeting" in
          check_bool "fetch returns contents" true (contains out "hello daemon");
          let _, out = ctl port "ls" in
          check_bool "listed" true (contains out "greeting");
          let _, out = ctl port "stat" in
          check_bool "stat shows files" true (contains out "live files"));
      (* restart on the same images: the name space survives *)
      with_daemon "data" port (fun () ->
          let status, out = ctl port "fetch greeting" in
          check_bool "fetch after restart" true (status = Unix.WEXITED 0);
          check_bool "contents survive restart" true (contains out "hello daemon");
          let _, _ = ctl port "del greeting" in
          let status, _ = ctl port "fetch greeting" in
          check_bool "deleted" true (status <> Unix.WEXITED 0)))

let test_daemon_fault_plan () =
  (* the daemon consults a deterministic plan per request frame: with
     "at 3 loss 1.0" the first two requests work and every later one is
     dropped on the real TCP carrier (connection closed, no reply) *)
  in_temp_dir (fun () ->
      let port = 19_000 + (Unix.getpid () mod 2_000) in
      let oc = open_out "plan.txt" in
      output_string oc "# drop everything from the third request frame on\nseed 7\nat 3 loss 1.0\n";
      close_out oc;
      let command =
        Printf.sprintf
          "%s --port %d --data data --size-mb 8 --max-files 128 --fault-plan plan.txt > \
           bulletd.log 2>&1"
          (Filename.quote (tool "bulletd")) port
      in
      let pid =
        Unix.create_process "/bin/sh" [| "/bin/sh"; "-c"; command |] Unix.stdin Unix.stdout
          Unix.stderr
      in
      Fun.protect
        ~finally:(fun () ->
          Unix.kill pid Sys.sigterm;
          ignore (Unix.waitpid [] pid))
        (fun () ->
          check_bool "daemon came up" true (wait_for_port port);
          (* frames 1-2: hello + stat, delivered *)
          let status, out = ctl port "stat" in
          check_bool "first two frames delivered" true (status = Unix.WEXITED 0);
          check_bool "stat answered" true (contains out "live files");
          (* frame 3 onward: the hello of the next invocation is dropped *)
          let status, _ = ctl port "stat" in
          check_bool "third frame dropped on the wire" true (status <> Unix.WEXITED 0);
          let log = In_channel.with_open_text "bulletd.log" In_channel.input_all in
          check_bool "daemon announced the plan" true (contains log "fault plan loaded")))

let test_daemon_rejects_bad_plan () =
  in_temp_dir (fun () ->
      let oc = open_out "plan.txt" in
      output_string oc "at ten drive_fail 0\n";
      close_out oc;
      let status, out =
        run
          (Printf.sprintf "%s --port 0 --data data --size-mb 4 --max-files 63 --fault-plan plan.txt"
             (Filename.quote (tool "bulletd")))
      in
      check_bool "refuses to start" true (status <> Unix.WEXITED 0);
      check_bool "says why" true (contains out "plan"))

(* ---- cluster-aware fsck: checkpoint vs inode tables ---- *)

module Cluster = Amoeba_cluster.Cluster

let write_text path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let save_member c name =
  let mirror = Cluster.server_mirror c name in
  Amoeba_disk.Mirror.drain mirror;
  List.iteri
    (fun i d -> Amoeba_disk.Image.save d (Printf.sprintf "%s-%d.img" name (i + 1)))
    (Amoeba_disk.Mirror.drives mirror)

let ctl_cluster args = run (Filename.quote (tool "bullet_ctl") ^ " cluster " ^ args)

let test_fsck_cluster_crosscheck () =
  in_temp_dir (fun () ->
      let c = Cluster.create () in
      List.iter
        (fun (name, region) -> Cluster.add_server c ~name ~region)
        [ ("ant", "west"); ("bee", "west"); ("cow", "east") ];
      ignore (Cluster.rebalance c);
      let keys = List.init 8 (fun i -> Printf.sprintf "k-%d" i) in
      List.iteri (fun i key -> Cluster.put c ~from:"west" ~key (payload (300 + i))) keys;
      write_text "clean.ck" (Cluster.checkpoint c);
      save_member c "ant";
      (* healthy cluster, on-disk replicas all backed: exit 0 *)
      let status, out = fsck "--cluster clean.ck --member ant=ant-1.img,ant-2.img" in
      check_bool "clean crosscheck ok" true (status = Unix.WEXITED 0);
      check_bool "replication fine" true (contains out "every object at 2 live copies");
      check_bool "inode tables back the directory" true
        (contains out "1 member(s) back every claimed replica");
      (* the offline status table agrees *)
      let status, out = ctl_cluster "clean.ck" in
      check_bool "ctl cluster ok" true (status = Unix.WEXITED 0);
      check_bool "table lists servers" true (contains out "ant");
      check_bool "nothing under-replicated" true (contains out "under-replicated 0");
      (* hand-seed under-replication: a kill recorded before the heal *)
      Cluster.kill_server c "bee";
      write_text "under.ck" (Cluster.checkpoint c);
      let status, out = fsck "--cluster under.ck" in
      check_bool "under-replication is exit 1" true (status = Unix.WEXITED 1);
      check_bool "reported per key" true (contains out "UNDER-REPLICATED");
      (* hand-seed a replica the directory claims but the disk lost:
         delete one of ant's objects behind the directory's back *)
      ignore (Cluster.rebalance c);
      write_text "healed.ck" (Cluster.checkpoint c);
      let info =
        match Cluster.parse_checkpoint (Cluster.checkpoint c) with
        | Ok info -> info
        | Error e -> Alcotest.failf "checkpoint does not parse: %s" e
      in
      let victim_cap =
        match
          List.find_map
            (fun (_key, holds) -> List.assoc_opt "ant" holds)
            info.Cluster.ck_objects
        with
        | Some cap -> cap
        | None -> Alcotest.fail "ant holds nothing"
      in
      (match Bullet_core.Server.delete (Cluster.server c "ant") victim_cap with
      | Ok () -> ()
      | Error st -> Alcotest.failf "delete failed: %s" (Amoeba_rpc.Status.to_string st));
      save_member c "ant";
      let status, out = fsck "--cluster healed.ck --member ant=ant-1.img,ant-2.img" in
      check_bool "lost replica is exit 1" true (status = Unix.WEXITED 1);
      check_bool "missing replica named" true (contains out "MISSING");
      check_bool "and the key under-replicated" true (contains out "UNDER-REPLICATED"))

let test_fsck_cluster_rejects_garbage () =
  in_temp_dir (fun () ->
      write_text "bad.ck" "shards 64\nreplicas 2\nfrobnicate\n";
      let status, out = fsck "--cluster bad.ck" in
      check_bool "nonzero exit" true (status = Unix.WEXITED 1);
      check_bool "line pinned" true (contains out "checkpoint line 3"))

let suite =
  ( "tools",
    [
      Alcotest.test_case "mkbullet then clean fsck" `Quick test_mkbullet_and_clean_fsck;
      Alcotest.test_case "fsck repairs corruption" `Quick test_fsck_repairs_corruption;
      Alcotest.test_case "fsck rejects garbage" `Quick test_fsck_rejects_garbage_file;
      Alcotest.test_case "fsck --compact" `Quick test_fsck_compact;
      Alcotest.test_case "fsck clean after crash+reboot" `Quick test_fsck_clean_after_crash_reboot;
      Alcotest.test_case "fsck --cluster cross-checks the directory" `Quick
        test_fsck_cluster_crosscheck;
      Alcotest.test_case "fsck --cluster rejects a malformed checkpoint" `Quick
        test_fsck_cluster_rejects_garbage;
      Alcotest.test_case "bulletd end to end over TCP" `Slow test_daemon_end_to_end;
      Alcotest.test_case "bulletd --fault-plan drops frames on TCP" `Slow test_daemon_fault_plan;
      Alcotest.test_case "bulletd rejects a malformed plan" `Quick test_daemon_rejects_bad_plan;
    ] )
