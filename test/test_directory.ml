(* Tests for the directory server: naming, versioning, persistence via
   Bullet files, checkpoint/restore. *)

open Helpers
module Dir = Amoeba_dir.Dir_server
module Dir_client = Amoeba_dir.Dir_client
module Dir_proto = Amoeba_dir.Dir_proto
module Client = Bullet_core.Client
module Server = Bullet_core.Server
module Cap = Amoeba_cap.Capability
module Rights = Amoeba_cap.Rights
module Status = Amoeba_rpc.Status

type dir_rig = {
  bullet : bullet_rig;
  dirs : Dir.t;
  dclient : Dir_client.t;
  root : Cap.t;
}

let make ?(config = Dir.default_config) () =
  let bullet = make_bullet () in
  let dirs = Dir.create ~config ~store:bullet.client () in
  Amoeba_dir.Dir_proto.serve dirs bullet.transport;
  let dclient = Dir_client.connect bullet.transport (Dir.port dirs) in
  { bullet; dirs; dclient; root = Dir.root dirs }

let file rig contents = Client.create rig.bullet.client (Bytes.of_string contents)

let test_enter_lookup () =
  let rig = make () in
  let f = file rig "hello" in
  ok_exn (Dir.enter rig.dirs rig.root "greeting" f);
  let found = ok_exn (Dir.lookup rig.dirs rig.root "greeting") in
  check_bool "same capability" true (Cap.equal f found);
  check_string "readable through the name" "hello"
    (Bytes.to_string (Client.read rig.bullet.client found))

let test_lookup_missing () =
  let rig = make () in
  expect_error Status.Not_found (Dir.lookup rig.dirs rig.root "ghost")

let test_enter_duplicate_rejected () =
  let rig = make () in
  ok_exn (Dir.enter rig.dirs rig.root "x" (file rig "1"));
  expect_error Status.Exists (Dir.enter rig.dirs rig.root "x" (file rig "2"))

let test_empty_name_rejected () =
  let rig = make () in
  expect_error Status.Bad_request (Dir.enter rig.dirs rig.root "" (file rig "1"))

let test_replace_versions () =
  let rig = make () in
  let v1 = file rig "v1" in
  let v2 = file rig "v2" in
  check_bool "no previous" true (ok_exn (Dir.replace rig.dirs rig.root "doc" v1) = None);
  let displaced = ok_exn (Dir.replace rig.dirs rig.root "doc" v2) in
  check_bool "v1 displaced" true (match displaced with Some c -> Cap.equal c v1 | None -> false);
  (* lookup returns the newest, versions lists both *)
  check_bool "newest" true (Cap.equal v2 (ok_exn (Dir.lookup rig.dirs rig.root "doc")));
  let vs = ok_exn (Dir.versions rig.dirs rig.root "doc") in
  check_int "two versions" 2 (List.length vs);
  (* the old version is still retrievable: immutability *)
  check_string "old readable" "v1" (Bytes.to_string (Client.read rig.bullet.client v1))

let test_version_trimming_deletes_old_files () =
  let config = { Dir.default_config with Dir.max_versions = 2 } in
  let rig = make ~config () in
  let v1 = file rig "v1" in
  let v2 = file rig "v2" in
  let v3 = file rig "v3" in
  ignore (ok_exn (Dir.replace rig.dirs rig.root "doc" v1));
  ignore (ok_exn (Dir.replace rig.dirs rig.root "doc" v2));
  ignore (ok_exn (Dir.replace rig.dirs rig.root "doc" v3));
  check_int "two retained" 2 (List.length (ok_exn (Dir.versions rig.dirs rig.root "doc")));
  (* v1 was trimmed and deleted from the Bullet server *)
  (try
     ignore (Client.read rig.bullet.client v1);
     Alcotest.fail "expected stale capability"
   with Status.Error _ -> ())

let test_remove_name () =
  let rig = make () in
  ok_exn (Dir.enter rig.dirs rig.root "x" (file rig "1"));
  ok_exn (Dir.remove_name rig.dirs rig.root "x");
  expect_error Status.Not_found (Dir.lookup rig.dirs rig.root "x");
  expect_error Status.Not_found (Dir.remove_name rig.dirs rig.root "x")

let test_list_sorted () =
  let rig = make () in
  ok_exn (Dir.enter rig.dirs rig.root "zeta" (file rig "z"));
  ok_exn (Dir.enter rig.dirs rig.root "alpha" (file rig "a"));
  ok_exn (Dir.enter rig.dirs rig.root "mid" (file rig "m"));
  check_bool "sorted names" true
    (List.map fst (ok_exn (Dir.list rig.dirs rig.root)) = [ "alpha"; "mid"; "zeta" ])

let test_nested_directories () =
  let rig = make () in
  let sub = Dir.make_dir rig.dirs in
  ok_exn (Dir.enter rig.dirs rig.root "sub" sub);
  ok_exn (Dir.enter rig.dirs sub "inner" (file rig "deep"));
  let found = ok_exn (Dir.lookup rig.dirs (ok_exn (Dir.lookup rig.dirs rig.root "sub")) "inner") in
  check_string "nested lookup" "deep" (Bytes.to_string (Client.read rig.bullet.client found))

let test_delete_dir_rules () =
  let rig = make () in
  let sub = Dir.make_dir rig.dirs in
  ok_exn (Dir.enter rig.dirs sub "x" (file rig "1"));
  expect_error Status.Bad_request (Dir.delete_dir rig.dirs sub);
  ok_exn (Dir.remove_name rig.dirs sub "x");
  ok_exn (Dir.delete_dir rig.dirs sub);
  expect_error Status.No_such_object (Dir.lookup rig.dirs sub "x");
  expect_error Status.Bad_request (Dir.delete_dir rig.dirs rig.root)

let test_rights_enforced () =
  let rig = make () in
  ok_exn (Dir.enter rig.dirs rig.root "x" (file rig "1"));
  let read_only = ok_exn (Dir.restrict rig.dirs rig.root Rights.read) in
  let (_ : Cap.t) = ok_exn (Dir.lookup rig.dirs read_only "x") in
  expect_error Status.Bad_capability (Dir.enter rig.dirs read_only "y" (file rig "2"));
  let forged = { read_only with Cap.rights = Rights.all } in
  expect_error Status.Bad_capability (Dir.enter rig.dirs forged "y" (file rig "2"))

let test_directory_persisted_as_bullet_file () =
  let rig = make () in
  let files_before = Server.live_files rig.bullet.server in
  ok_exn (Dir.enter rig.dirs rig.root "x" (file rig "1"));
  (* the directory rewrote itself as a fresh Bullet file and deleted the
     old one, so net growth is exactly the entry's own file *)
  check_int "immutable rewrite, old version deleted" (files_before + 1)
    (Server.live_files rig.bullet.server)

let test_checkpoint_restore () =
  let rig = make () in
  let f = file rig "persistent" in
  ok_exn (Dir.enter rig.dirs rig.root "keep" f);
  let sub = Dir.make_dir rig.dirs in
  ok_exn (Dir.enter rig.dirs rig.root "sub" sub);
  ok_exn (Dir.enter rig.dirs sub "inner" (file rig "nested"));
  let checkpoint = ok_exn (Dir.checkpoint rig.dirs) in
  (* "restart": rebuild a server from the checkpoint *)
  let revived = Result.get_ok (Dir.restore ~store:rig.bullet.client checkpoint) in
  check_bool "same port" true
    (Amoeba_cap.Port.equal (Dir.port rig.dirs) (Dir.port revived));
  let found = ok_exn (Dir.lookup revived (Dir.root revived) "keep") in
  check_string "binding survived" "persistent" (Bytes.to_string (Client.read rig.bullet.client found));
  let sub' = ok_exn (Dir.lookup revived (Dir.root revived) "sub") in
  let inner = ok_exn (Dir.lookup revived sub' "inner") in
  check_string "nested survived" "nested" (Bytes.to_string (Client.read rig.bullet.client inner));
  (* old capabilities still verify after restore (same sealing key) *)
  let (_ : Cap.t) = ok_exn (Dir.lookup revived rig.root "keep") in
  ()

(* ---- via RPC client ---- *)

let test_client_roundtrip () =
  let rig = make () in
  let root = Dir_client.get_root rig.dclient in
  let f = file rig "via-rpc" in
  Dir_client.enter rig.dclient root "x" f;
  check_bool "lookup" true (Cap.equal f (Dir_client.lookup rig.dclient root "x"));
  check_int "list" 1 (List.length (Dir_client.list rig.dclient root));
  check_int "versions" 1 (List.length (Dir_client.versions rig.dclient root "x"));
  Dir_client.remove_name rig.dclient root "x";
  (try
     ignore (Dir_client.lookup rig.dclient root "x");
     Alcotest.fail "expected Not_found"
   with Status.Error Status.Not_found -> ())

let test_server_side_resolve () =
  let rig = make () in
  let sub = Dir.make_dir rig.dirs in
  let subsub = Dir.make_dir rig.dirs in
  ok_exn (Dir.enter rig.dirs rig.root "a" sub);
  ok_exn (Dir.enter rig.dirs sub "b" subsub);
  ok_exn (Dir.enter rig.dirs subsub "leaf" (file rig "found"));
  let cap = ok_exn (Dir.resolve rig.dirs rig.root "a/b/leaf") in
  check_string "resolved in one call" "found" (Bytes.to_string (Client.read rig.bullet.client cap));
  expect_error Status.Not_found (Dir.resolve rig.dirs rig.root "a/zz/leaf");
  (* resolving through a non-directory component fails cleanly *)
  expect_error Status.No_such_object (Dir.resolve rig.dirs rig.root "a/b/leaf/deeper")

let test_resolve_one_rpc () =
  let rig = make () in
  let root = Dir_client.get_root rig.dclient in
  let leaf_dir = Dir_client.mkdir_path rig.dclient root "x/y/z" in
  Dir_client.enter rig.dclient leaf_dir "f" (file rig "deep");
  let stats = Amoeba_rpc.Transport.stats rig.bullet.transport in
  let before = Amoeba_sim.Stats.count stats "transactions" in
  let (_ : Cap.t) = Dir_client.resolve rig.dclient root "x/y/z/f" in
  check_int "one transaction" (before + 1) (Amoeba_sim.Stats.count stats "transactions");
  let before = Amoeba_sim.Stats.count stats "transactions" in
  let (_ : Cap.t) = Dir_client.resolve_stepwise rig.dclient root "x/y/z/f" in
  check_int "four transactions stepwise" (before + 4) (Amoeba_sim.Stats.count stats "transactions")

let test_client_resolve_and_mkdir_path () =
  let rig = make () in
  let root = Dir_client.get_root rig.dclient in
  let leaf_dir = Dir_client.mkdir_path rig.dclient root "a/b/c" in
  Dir_client.enter rig.dclient leaf_dir "f" (file rig "deep");
  let found = Dir_client.lookup rig.dclient (Dir_client.resolve rig.dclient root "a/b/c") "f" in
  check_string "resolved" "deep" (Bytes.to_string (Client.read rig.bullet.client found));
  (* mkdir_path reuses existing directories *)
  let again = Dir_client.mkdir_path rig.dclient root "a/b/c" in
  check_bool "idempotent" true (Cap.equal leaf_dir again)

let test_client_replace_returns_old () =
  let rig = make () in
  let root = Dir_client.get_root rig.dclient in
  let v1 = file rig "1" and v2 = file rig "2" in
  check_bool "none" true (Dir_client.replace rig.dclient root "d" v1 = None);
  match Dir_client.replace rig.dclient root "d" v2 with
  | Some old -> check_bool "old returned" true (Cap.equal old v1)
  | None -> Alcotest.fail "expected old version"

let suite =
  ( "directory",
    [
      Alcotest.test_case "enter and lookup" `Quick test_enter_lookup;
      Alcotest.test_case "lookup missing" `Quick test_lookup_missing;
      Alcotest.test_case "duplicate enter rejected" `Quick test_enter_duplicate_rejected;
      Alcotest.test_case "empty name rejected" `Quick test_empty_name_rejected;
      Alcotest.test_case "replace stacks versions" `Quick test_replace_versions;
      Alcotest.test_case "version trimming deletes old Bullet files" `Quick
        test_version_trimming_deletes_old_files;
      Alcotest.test_case "remove_name" `Quick test_remove_name;
      Alcotest.test_case "list is name-sorted" `Quick test_list_sorted;
      Alcotest.test_case "nested directories" `Quick test_nested_directories;
      Alcotest.test_case "delete_dir rules" `Quick test_delete_dir_rules;
      Alcotest.test_case "rights enforced" `Quick test_rights_enforced;
      Alcotest.test_case "directory persisted as Bullet file" `Quick
        test_directory_persisted_as_bullet_file;
      Alcotest.test_case "checkpoint and restore" `Quick test_checkpoint_restore;
      Alcotest.test_case "client roundtrip over RPC" `Quick test_client_roundtrip;
      Alcotest.test_case "server-side resolve" `Quick test_server_side_resolve;
      Alcotest.test_case "resolve is one RPC" `Quick test_resolve_one_rpc;
      Alcotest.test_case "client resolve and mkdir_path" `Quick test_client_resolve_and_mkdir_path;
      Alcotest.test_case "client replace returns old version" `Quick test_client_replace_returns_old;
    ] )
