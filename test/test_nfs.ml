(* Tests for the block-based baseline server (UFS layout, buffer cache,
   NFS-style operations). *)

open Helpers
module L = Nfs_baseline.Ufs_layout
module Bcache = Nfs_baseline.Buffer_cache
module Nfs = Nfs_baseline.Nfs_server
module Nfs_client = Nfs_baseline.Nfs_client
module Nfs_proto = Nfs_baseline.Nfs_proto
module Dev = Amoeba_disk.Block_device
module Clock = Amoeba_sim.Clock
module Stats = Amoeba_sim.Stats
module Status = Amoeba_rpc.Status

let geometry = Amoeba_disk.Geometry.small ~sectors:131_072 (* 64 MB *)

let make_server () =
  let clock = Clock.create () in
  let dev = Dev.create ~id:"nfsdev" ~geometry ~clock in
  Nfs.format dev ~max_files:256;
  let server = Result.get_ok (Nfs.mount dev) in
  (clock, dev, server)

let make_full () =
  let clock, dev, server = make_server () in
  let transport = Amoeba_rpc.Transport.create ~clock in
  Nfs_proto.serve server transport;
  let client = Nfs_client.connect transport (Nfs.port server) in
  (clock, dev, server, client)

(* ---- layout ---- *)

let prop_ufs_inode_roundtrip =
  qtest "ufs inode roundtrip"
    QCheck.(
      quad (int_range 0 0xFFFF) (int_range 0 0xFFFFFF) (small_list (int_range 0 0xFFFF))
        (pair (int_range 0 0xFFFF) (int_range 0 0xFFFF)))
    (fun (gen, size, directs, (ind, dbl)) ->
      let direct = Array.make L.direct_pointers 0 in
      List.iteri (fun i v -> if i < L.direct_pointers then direct.(i) <- v) directs;
      let inode =
        { L.used = true; gen; size_bytes = size; direct; indirect = ind; double = dbl; inline = None }
      in
      let buf = Bytes.make L.inode_bytes '\000' in
      L.encode_inode inode buf 0;
      L.decode_inode buf 0 = inode)

let test_superblock_roundtrip () =
  let sb = { L.total_blocks = 8192; inode_blocks = 4; bitmap_blocks = 1 } in
  let buf = Bytes.make L.fs_block_bytes '\000' in
  L.encode_superblock sb buf 0;
  check_bool "roundtrip" true (L.decode_superblock buf 0 = Ok sb)

let test_superblock_rejects_garbage () =
  check_bool "garbage" true (Result.is_error (L.decode_superblock (Bytes.make 16 'z') 0))

(* ---- buffer cache ---- *)

let make_cache capacity_blocks =
  let clock = Clock.create () in
  let dev = Dev.create ~id:"bc" ~geometry ~clock in
  (clock, dev, Bcache.create ~capacity_bytes:(capacity_blocks * L.fs_block_bytes) ~device:dev)

let test_bcache_miss_then_hit () =
  let _clock, _dev, cache = make_cache 4 in
  let (_ : bytes) = Bcache.read cache 10 in
  let (_ : bytes) = Bcache.read cache 10 in
  check_int "one miss" 1 (Stats.count (Bcache.stats cache) "misses");
  check_int "one hit" 1 (Stats.count (Bcache.stats cache) "hits")

let test_bcache_hit_costs_no_disk_time () =
  let clock, _dev, cache = make_cache 4 in
  let (_ : bytes) = Bcache.read cache 10 in
  let _, t = Clock.elapsed clock (fun () -> ignore (Bcache.read cache 10)) in
  check_int "free hit" 0 t

let test_bcache_write_through_persists () =
  let _clock, dev, cache = make_cache 4 in
  let block = Bytes.make L.fs_block_bytes 'q' in
  Bcache.write_through cache 7 block;
  let sectors = L.fs_block_bytes / 512 in
  check_bytes "on disk" block (Dev.peek dev ~sector:(7 * sectors) ~count:sectors)

let test_bcache_lru_eviction () =
  let _clock, _dev, cache = make_cache 2 in
  let (_ : bytes) = Bcache.read cache 1 in
  let (_ : bytes) = Bcache.read cache 2 in
  let (_ : bytes) = Bcache.read cache 1 in
  (* block 2 is now the LRU; loading block 3 evicts it *)
  let (_ : bytes) = Bcache.read cache 3 in
  let hits_before = Stats.count (Bcache.stats cache) "hits" in
  let (_ : bytes) = Bcache.read cache 1 in
  check_int "1 still cached" (hits_before + 1) (Stats.count (Bcache.stats cache) "hits");
  let misses_before = Stats.count (Bcache.stats cache) "misses" in
  let (_ : bytes) = Bcache.read cache 2 in
  check_int "2 was evicted" (misses_before + 1) (Stats.count (Bcache.stats cache) "misses")

let test_bcache_invalidate () =
  let _clock, _dev, cache = make_cache 4 in
  let (_ : bytes) = Bcache.read cache 5 in
  Bcache.invalidate cache 5;
  let misses = Stats.count (Bcache.stats cache) "misses" in
  let (_ : bytes) = Bcache.read cache 5 in
  check_int "re-read from disk" (misses + 1) (Stats.count (Bcache.stats cache) "misses")

(* ---- server operations ---- *)

let test_write_read_roundtrip_sizes () =
  let _clock, _dev, server = make_server () in
  let sizes = [ 1; 100; 8192; 8193; 100_000; 200_000 ] in
  let check_size n =
    let fh = ok_exn (Nfs.create server) in
    let data = payload n in
    let rec put off =
      if off < n then begin
        let chunk = min 8192 (n - off) in
        ok_exn (Nfs.write server fh ~off (Bytes.sub data off chunk));
        put (off + chunk)
      end
    in
    put 0;
    check_bytes (Printf.sprintf "size %d" n) data (ok_exn (Nfs.read server fh ~off:0 ~len:n));
    ok_exn (Nfs.remove server fh)
  in
  List.iter check_size sizes

let test_indirect_file () =
  (* beyond 12 direct blocks = 96 KB: exercises the single-indirect path *)
  let _clock, _dev, server = make_server () in
  let fh = ok_exn (Nfs.create server) in
  let n = 120_000 in
  let data = payload n in
  let rec put off =
    if off < n then begin
      let chunk = min 8192 (n - off) in
      ok_exn (Nfs.write server fh ~off (Bytes.sub data off chunk));
      put (off + chunk)
    end
  in
  put 0;
  check_bytes "indirect roundtrip" data (ok_exn (Nfs.read server fh ~off:0 ~len:n))

let test_double_indirect_sparse () =
  (* a write past 12 + 2048 blocks (≈16.1 MB) lands in the double-indirect
     tree; the hole below it reads as zeros *)
  let _clock, _dev, server = make_server () in
  let fh = ok_exn (Nfs.create server) in
  let far = (L.direct_pointers + L.pointers_per_block + 5) * L.fs_block_bytes in
  ok_exn (Nfs.write server fh ~off:far (Bytes.of_string "way out here"));
  let back = ok_exn (Nfs.read server fh ~off:far ~len:12) in
  check_string "far write" "way out here" (Bytes.to_string back);
  let hole = ok_exn (Nfs.read server fh ~off:4096 ~len:10) in
  check_bytes "hole reads zeros" (Bytes.make 10 '\000') hole

let test_short_read_at_eof () =
  let _clock, _dev, server = make_server () in
  let fh = ok_exn (Nfs.create server) in
  ok_exn (Nfs.write server fh ~off:0 (Bytes.of_string "short"));
  check_int "short read" 5 (Bytes.length (ok_exn (Nfs.read server fh ~off:0 ~len:100)));
  check_int "read past eof" 0 (Bytes.length (ok_exn (Nfs.read server fh ~off:10 ~len:5)))

let test_getattr () =
  let _clock, _dev, server = make_server () in
  let fh = ok_exn (Nfs.create server) in
  ok_exn (Nfs.write server fh ~off:0 (payload 5000));
  let attr = ok_exn (Nfs.getattr server fh) in
  check_int "size" 5000 attr.Nfs.size;
  check_int "blocks" 1 attr.Nfs.blocks

let test_stale_handle () =
  let _clock, _dev, server = make_server () in
  let fh = ok_exn (Nfs.create server) in
  ok_exn (Nfs.write server fh ~off:0 (payload 10));
  ok_exn (Nfs.remove server fh);
  expect_error Status.No_such_object (Nfs.read server fh ~off:0 ~len:10);
  (* a recreated file reuses the inode but with a new generation *)
  let fh2 = ok_exn (Nfs.create server) in
  check_int "ino reused" fh.Nfs.ino fh2.Nfs.ino;
  check_bool "gen differs" true (fh.Nfs.gen <> fh2.Nfs.gen);
  expect_error Status.No_such_object (Nfs.getattr server fh)

let test_remove_frees_blocks () =
  let _clock, _dev, server = make_server () in
  let free0 = Nfs.free_blocks server in
  let fh = ok_exn (Nfs.create server) in
  let n = 120_000 in
  let rec put off =
    if off < n then begin
      ok_exn (Nfs.write server fh ~off (Bytes.create (min 8192 (n - off))));
      put (off + 8192)
    end
  in
  put 0;
  check_bool "blocks consumed" true (Nfs.free_blocks server < free0);
  ok_exn (Nfs.remove server fh);
  check_int "all blocks reclaimed (incl. indirect)" free0 (Nfs.free_blocks server)

let test_scattered_allocation () =
  (* the aged-disk model: consecutive file blocks are not adjacent, so
     reading block n+1 after block n still seeks *)
  let _clock, dev, server = make_server () in
  let fh = ok_exn (Nfs.create server) in
  ok_exn (Nfs.write server fh ~off:0 (Bytes.create 8192));
  ok_exn (Nfs.write server fh ~off:8192 (Bytes.create 8192));
  Nfs.age_cache server;
  let (_ : bytes) = ok_exn (Nfs.read server fh ~off:0 ~len:8192) in
  let seeks_mid = Stats.count (Dev.stats dev) "seeks" in
  let (_ : bytes) = ok_exn (Nfs.read server fh ~off:8192 ~len:8192) in
  check_bool "second block also seeks" true (Stats.count (Dev.stats dev) "seeks" > seeks_mid)

let test_persistence_across_mounts () =
  let _clock, dev, server = make_server () in
  let fh = ok_exn (Nfs.create server) in
  ok_exn (Nfs.write server fh ~off:0 (payload 20_000));
  let server2 = Result.get_ok (Nfs.mount dev) in
  check_bytes "visible after remount" (payload 20_000) (ok_exn (Nfs.read server2 fh ~off:0 ~len:20_000));
  check_int "one live file" 1 (Nfs.live_files server2)

let test_mount_rejects_unformatted () =
  let clock = Clock.create () in
  let dev = Dev.create ~id:"blank" ~geometry ~clock in
  check_bool "unformatted" true (Result.is_error (Nfs.mount dev))

let test_age_cache_causes_disk_reads () =
  let clock, dev, server = make_server () in
  ignore clock;
  let fh = ok_exn (Nfs.create server) in
  ok_exn (Nfs.write server fh ~off:0 (payload 8192));
  let reads0 = Stats.count (Dev.stats dev) "reads" in
  let (_ : bytes) = ok_exn (Nfs.read server fh ~off:0 ~len:8192) in
  check_int "cached: no disk read" reads0 (Stats.count (Dev.stats dev) "reads");
  Nfs.age_cache server;
  let (_ : bytes) = ok_exn (Nfs.read server fh ~off:0 ~len:8192) in
  check_bool "aged: disk read" true (Stats.count (Dev.stats dev) "reads" > reads0)

(* ---- immediate files (reference [1], ablation ABL3) ---- *)

let make_immediate_server () =
  let clock = Clock.create () in
  let dev = Dev.create ~id:"imm" ~geometry ~clock in
  Nfs.format dev ~max_files:256;
  let config = { Nfs.default_config with Nfs.immediate_files = true } in
  (clock, dev, Result.get_ok (Nfs.mount ~config dev))

let test_immediate_roundtrip () =
  let _clock, _dev, server = make_immediate_server () in
  let fh = ok_exn (Nfs.create server) in
  ok_exn (Nfs.write server fh ~off:0 (Bytes.of_string "tiny file"));
  check_string "roundtrip" "tiny file" (Bytes.to_string (ok_exn (Nfs.read server fh ~off:0 ~len:100)));
  check_int "no data blocks consumed" 1 (Stats.count (Nfs.stats server) "immediate_writes");
  check_int "served inline" 1 (Stats.count (Nfs.stats server) "immediate_reads")

let test_immediate_uses_no_data_blocks () =
  let _clock, _dev, server = make_immediate_server () in
  let free0 = Nfs.free_blocks server in
  let fh = ok_exn (Nfs.create server) in
  ok_exn (Nfs.write server fh ~off:0 (Bytes.make 60 'i'));
  check_int "zero blocks allocated" free0 (Nfs.free_blocks server)

let test_immediate_spills_when_growing () =
  let _clock, _dev, server = make_immediate_server () in
  let fh = ok_exn (Nfs.create server) in
  ok_exn (Nfs.write server fh ~off:0 (Bytes.of_string "starts small"));
  (* growing past the inline capacity migrates the data to a block *)
  ok_exn (Nfs.write server fh ~off:12 (payload 500));
  let contents = ok_exn (Nfs.read server fh ~off:0 ~len:512) in
  check_string "prefix preserved" "starts small" (Bytes.sub_string contents 0 12);
  check_bytes "suffix" (payload 500) (Bytes.sub contents 12 500);
  let attr = ok_exn (Nfs.getattr server fh) in
  check_int "size" 512 attr.Nfs.size

let test_immediate_persists_across_mounts () =
  let _clock, dev, server = make_immediate_server () in
  let fh = ok_exn (Nfs.create server) in
  ok_exn (Nfs.write server fh ~off:0 (Bytes.of_string "durable inline"));
  let config = { Nfs.default_config with Nfs.immediate_files = true } in
  let server2 = Result.get_ok (Nfs.mount ~config dev) in
  check_string "after remount" "durable inline"
    (Bytes.to_string (ok_exn (Nfs.read server2 fh ~off:0 ~len:100)))

let test_immediate_faster_small_ops () =
  (* the point of reference [1]: small-file ops touch only the inode *)
  let clock_p, _dev_p, plain = make_server () in
  let clock_i, _dev_i, immediate = make_immediate_server () in
  let measure clock server =
    let fh = ok_exn (Nfs.create server) in
    let _, w = Clock.elapsed clock (fun () -> ok_exn (Nfs.write server fh ~off:0 (Bytes.make 60 'x'))) in
    Nfs.age_cache server;
    let _, r = Clock.elapsed clock (fun () -> ignore (ok_exn (Nfs.read server fh ~off:0 ~len:60))) in
    (w, r)
  in
  let plain_w, plain_r = measure clock_p plain in
  let imm_w, imm_r = measure clock_i immediate in
  check_bool "immediate write cheaper" true (imm_w < plain_w);
  check_bool "immediate read cheaper" true (imm_r < plain_r)

(* ---- client over RPC ---- *)

let test_client_roundtrip () =
  let _clock, _dev, _server, client = make_full () in
  let fh = Nfs_client.create client in
  Nfs_client.write_file client fh (payload 50_000);
  check_int "getattr size" 50_000 (Nfs_client.getattr_size client fh);
  check_bytes "read_file" (payload 50_000) (Nfs_client.read_file client fh ~size:50_000);
  Nfs_client.remove client fh

let test_client_block_rpc_count () =
  (* 50 KB = 7 blocks: one RPC per block, unlike Bullet's whole-file
     transfer *)
  let _clock, _dev, server, client = make_full () in
  let stats = Nfs.stats server in
  let fh = Nfs_client.create client in
  Nfs_client.write_file client fh (payload 50_000);
  check_int "7 write RPCs" 7 (Stats.count stats "writes");
  let (_ : bytes) = Nfs_client.read_file client fh ~size:50_000 in
  check_int "7 read RPCs" 7 (Stats.count stats "reads")

let test_write_at_rejects_oversize () =
  let _clock, _dev, _server, client = make_full () in
  let fh = Nfs_client.create client in
  (try
     Nfs_client.write_at client fh ~off:0 (Bytes.create 9000);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let suite =
  ( "nfs",
    [
      prop_ufs_inode_roundtrip;
      Alcotest.test_case "superblock roundtrip" `Quick test_superblock_roundtrip;
      Alcotest.test_case "superblock rejects garbage" `Quick test_superblock_rejects_garbage;
      Alcotest.test_case "buffer cache miss then hit" `Quick test_bcache_miss_then_hit;
      Alcotest.test_case "buffer cache hit is free" `Quick test_bcache_hit_costs_no_disk_time;
      Alcotest.test_case "buffer cache write-through persists" `Quick test_bcache_write_through_persists;
      Alcotest.test_case "buffer cache LRU eviction" `Quick test_bcache_lru_eviction;
      Alcotest.test_case "buffer cache invalidate" `Quick test_bcache_invalidate;
      Alcotest.test_case "write/read roundtrip across sizes" `Quick test_write_read_roundtrip_sizes;
      Alcotest.test_case "single-indirect file" `Quick test_indirect_file;
      Alcotest.test_case "double-indirect sparse file" `Quick test_double_indirect_sparse;
      Alcotest.test_case "short read at EOF" `Quick test_short_read_at_eof;
      Alcotest.test_case "getattr" `Quick test_getattr;
      Alcotest.test_case "stale handle detected" `Quick test_stale_handle;
      Alcotest.test_case "remove frees all blocks" `Quick test_remove_frees_blocks;
      Alcotest.test_case "scattered allocation seeks" `Quick test_scattered_allocation;
      Alcotest.test_case "persistence across mounts" `Quick test_persistence_across_mounts;
      Alcotest.test_case "mount rejects unformatted" `Quick test_mount_rejects_unformatted;
      Alcotest.test_case "aged cache causes disk reads" `Quick test_age_cache_causes_disk_reads;
      Alcotest.test_case "immediate file roundtrip" `Quick test_immediate_roundtrip;
      Alcotest.test_case "immediate file uses no data blocks" `Quick
        test_immediate_uses_no_data_blocks;
      Alcotest.test_case "immediate file spills when growing" `Quick
        test_immediate_spills_when_growing;
      Alcotest.test_case "immediate file persists across mounts" `Quick
        test_immediate_persists_across_mounts;
      Alcotest.test_case "immediate files faster for small ops" `Quick
        test_immediate_faster_small_ops;
      Alcotest.test_case "client roundtrip over RPC" `Quick test_client_roundtrip;
      Alcotest.test_case "client splits files into block RPCs" `Quick test_client_block_rpc_count;
      Alcotest.test_case "client write_at size limit" `Quick test_write_at_rejects_oversize;
    ] )
