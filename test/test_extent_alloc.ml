(* Tests for the contiguous-extent allocator. *)

open Helpers
module A = Bullet_core.Extent_alloc

let make ?(policy = A.First_fit) ?(start = 0) ?(length = 100) () =
  A.create ~policy ~start ~length ()

let test_fresh_all_free () =
  let a = make () in
  check_int "free" 100 (A.free_total a);
  check_int "used" 0 (A.used_total a);
  check_int "largest" 100 (A.largest_free a);
  check_int "one extent" 1 (A.fragment_count a)

let test_alloc_first_fit_position () =
  let a = make () in
  check_bool "starts at 0" true (A.alloc a 10 = Some 0);
  check_bool "continues at 10" true (A.alloc a 10 = Some 10)

let test_alloc_exhaustion () =
  let a = make () in
  check_bool "whole range" true (A.alloc a 100 = Some 0);
  check_bool "nothing left" true (A.alloc a 1 = None)

let test_alloc_too_large () =
  let a = make () in
  check_bool "oversized" true (A.alloc a 101 = None);
  check_int "free unchanged" 100 (A.free_total a)

let test_alloc_zero_rejected () =
  let a = make () in
  (try
     ignore (A.alloc a 0);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_free_coalesces_both_sides () =
  let a = make () in
  let s1 = Option.get (A.alloc a 30) in
  let s2 = Option.get (A.alloc a 30) in
  let s3 = Option.get (A.alloc a 30) in
  A.free a ~start:s1 ~length:30;
  A.free a ~start:s3 ~length:30;
  (* the s3 hole coalesces with the tail: holes at 0 and 60..100 *)
  check_int "two extents" 2 (A.fragment_count a);
  A.free a ~start:s2 ~length:30;
  check_int "coalesced to one" 1 (A.fragment_count a);
  check_int "all free" 100 (A.free_total a)

let test_first_fit_reuses_first_hole () =
  let a = make () in
  let s1 = Option.get (A.alloc a 20) in
  let _s2 = Option.get (A.alloc a 20) in
  let s3 = Option.get (A.alloc a 20) in
  A.free a ~start:s1 ~length:20;
  A.free a ~start:s3 ~length:20;
  (* first-fit picks the earlier hole even though the later one is just
     as good *)
  check_bool "first hole" true (A.alloc a 10 = Some s1)

let test_best_fit_picks_tightest () =
  let a = make ~policy:A.Best_fit () in
  let s1 = Option.get (A.alloc a 30) in
  let _gap = Option.get (A.alloc a 10) in
  let s2 = Option.get (A.alloc a 15) in
  let _gap2 = Option.get (A.alloc a 10) in
  A.free a ~start:s1 ~length:30;
  A.free a ~start:s2 ~length:15;
  (* holes: 30 at s1, 15 at s2, 35 tail; best fit for 12 is the 15-hole *)
  check_bool "tightest hole" true (A.alloc a 12 = Some s2)

let test_double_free_detected () =
  let a = make () in
  let s = Option.get (A.alloc a 10) in
  A.free a ~start:s ~length:10;
  (try
     A.free a ~start:s ~length:10;
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_free_outside_range_rejected () =
  let a = make ~start:50 ~length:10 () in
  (try
     A.free a ~start:0 ~length:5;
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_reserve () =
  let a = make () in
  A.reserve a ~start:20 ~length:10;
  check_int "free reduced" 90 (A.free_total a);
  (* allocation skips the reserved region *)
  check_bool "first fit before hole" true (A.alloc a 20 = Some 0);
  check_bool "next skips reserved" true (A.alloc a 20 = Some 30)

let test_reserve_conflict_rejected () =
  let a = make () in
  A.reserve a ~start:20 ~length:10;
  (try
     A.reserve a ~start:25 ~length:10;
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_fragmentation_metric () =
  let a = make () in
  Alcotest.(check (float 1e-9)) "single hole" 0.0 (A.fragmentation a);
  let s1 = Option.get (A.alloc a 40) in
  let _ = Option.get (A.alloc a 20) in
  A.free a ~start:s1 ~length:40;
  (* holes: 40 and 40 -> largest/total = 0.5 *)
  Alcotest.(check (float 1e-9)) "two equal holes" 0.5 (A.fragmentation a)

let test_iter_free_in_order () =
  let a = make () in
  let s1 = Option.get (A.alloc a 10) in
  let _ = Option.get (A.alloc a 10) in
  A.free a ~start:s1 ~length:10;
  let seen = ref [] in
  A.iter_free a (fun ~start ~length -> seen := (start, length) :: !seen);
  check_bool "address order" true (List.rev !seen = [ (0, 10); (20, 80) ])

(* Model-based property: replay random alloc/free sequences and check the
   allocator against a reference set of allocated extents. *)
let prop_model =
  let gen = QCheck.(pair int64 (small_list (int_range 1 20))) in
  qtest "random alloc/free keeps invariants" ~count:300 gen (fun (seed, sizes) ->
      let prng = Amoeba_sim.Prng.create ~seed in
      let a = make ~length:200 () in
      let live = ref [] in
      let step size =
        if Amoeba_sim.Prng.bool prng || !live = [] then (
          match A.alloc a size with
          | Some start ->
            (* no overlap with any live extent *)
            let overlaps (s, n) = start < s + n && s < start + size in
            if List.exists overlaps !live then raise Exit;
            live := (start, size) :: !live
          | None -> ())
        else begin
          let idx = Amoeba_sim.Prng.int prng (List.length !live) in
          let (s, n) = List.nth !live idx in
          live := List.filteri (fun i _ -> i <> idx) !live;
          A.free a ~start:s ~length:n
        end
      in
      match List.iter step sizes with
      | () ->
        let used = List.fold_left (fun acc (_, n) -> acc + n) 0 !live in
        A.used_total a = used && A.free_total a = 200 - used
      | exception Exit -> false)

let suite =
  ( "extent_alloc",
    [
      Alcotest.test_case "fresh allocator all free" `Quick test_fresh_all_free;
      Alcotest.test_case "first-fit allocates from the front" `Quick test_alloc_first_fit_position;
      Alcotest.test_case "exhaustion" `Quick test_alloc_exhaustion;
      Alcotest.test_case "oversized request" `Quick test_alloc_too_large;
      Alcotest.test_case "zero-size alloc rejected" `Quick test_alloc_zero_rejected;
      Alcotest.test_case "free coalesces" `Quick test_free_coalesces_both_sides;
      Alcotest.test_case "first-fit reuses first hole" `Quick test_first_fit_reuses_first_hole;
      Alcotest.test_case "best-fit picks tightest hole" `Quick test_best_fit_picks_tightest;
      Alcotest.test_case "double free detected" `Quick test_double_free_detected;
      Alcotest.test_case "free outside range rejected" `Quick test_free_outside_range_rejected;
      Alcotest.test_case "reserve carves free space" `Quick test_reserve;
      Alcotest.test_case "conflicting reserve rejected" `Quick test_reserve_conflict_rejected;
      Alcotest.test_case "fragmentation metric" `Quick test_fragmentation_metric;
      Alcotest.test_case "iter_free address order" `Quick test_iter_free_in_order;
      prop_model;
    ] )
