(* Tests for the determinism linter (Amoeba_analysis.Lint): each rule
   fires on a minimal offending source, respects its path allowlist, and
   honours suppression comments. The whole shipped tree is linted for
   real by the root dune rule during `dune runtest`. *)

open Helpers
module Lint = Amoeba_analysis.Lint

let rules_of diags = List.map (fun d -> d.Lint.rule) diags

let lines_of diags = List.map (fun d -> d.Lint.line) diags

let check_rules msg expected source =
  Alcotest.(check (list string)) msg expected (rules_of (Lint.lint_source ~path:"lib/x/x.ml" source))

(* ---- rule 1: wall clock, OS entropy, Marshal ---- *)

let test_no_os_entropy () =
  (* the acceptance-criteria case: Random.self_init in lib/bullet/server.ml *)
  let diags =
    Lint.lint_source ~path:"lib/bullet/server.ml" "let boot () = Random.self_init ()"
  in
  Alcotest.(check (list string)) "rule" [ "no-os-entropy" ] (rules_of diags);
  Alcotest.(check (list int)) "line" [ 1 ] (lines_of diags);
  check_rules "Random.int" [ "no-os-entropy" ] "let n = Random.int 6"

let test_no_wallclock () =
  check_rules "Sys.time" [ "no-wallclock" ] "let t = Sys.time ()";
  check_rules "Unix.gettimeofday" [ "no-wallclock" ] "let t = Unix.gettimeofday ()";
  check_rules "sim clock ok" [] "let t clock = Amoeba_sim.Clock.now clock"

let test_no_marshal () =
  check_rules "Marshal.to_bytes" [ "no-marshal" ] "let b x = Marshal.to_bytes x []"

let test_carrier_allowlist_retired () =
  (* PR 2 exempted tcp.ml + bin/ from the OS rules wholesale; the PR 7
     typedtree audit proved the exemption unused, so it is gone — the
     carrier is held to the same rules as everything else *)
  let source = "let t = Unix.gettimeofday () +. float_of_int (Random.int 6)" in
  Alcotest.(check (list string))
    "tcp carrier no longer exempt"
    [ "no-os-entropy"; "no-wallclock" ]
    (List.sort String.compare (rules_of (Lint.lint_source ~path:"lib/rpc/tcp.ml" source)));
  Alcotest.(check (list string))
    "bin no longer exempt"
    [ "no-os-entropy"; "no-wallclock" ]
    (List.sort String.compare (rules_of (Lint.lint_source ~path:"bin/bulletd.ml" source)));
  (* an inline, justified allow is the sanctioned replacement *)
  Alcotest.(check (list string))
    "inline allow still works" []
    (rules_of
       (Lint.lint_source ~path:"lib/rpc/tcp.ml"
          "(* lint: allow no-wallclock socket timeout needs the host clock *)\n\
           let t = Unix.gettimeofday ()"))

(* ---- trace-no-wallclock: the trace/sim core may not touch the OS ---- *)

let test_trace_no_wallclock () =
  let rules_at path source = rules_of (Lint.lint_source ~path source) in
  Alcotest.(check (list string))
    "any Unix call in lib/trace"
    [ "trace-no-wallclock" ]
    (rules_at "lib/trace/sink.ml" "let now () = Unix.getpid ()");
  Alcotest.(check (list string))
    "Sys.time in lib/sim fires both clock rules"
    [ "no-wallclock"; "trace-no-wallclock" ]
    (List.sort String.compare (rules_at "lib/sim/clock.ml" "let t = Sys.time ()"));
  Alcotest.(check (list string))
    "other lib code is only held to no-wallclock" []
    (rules_at "lib/bullet/server.ml" "let pid = Unix.getpid ()");
  Alcotest.(check (list string))
    "simulated clock is the sanctioned source" []
    (rules_at "lib/trace/trace.ml" "let now clock = Amoeba_sim.Clock.now clock")

(* ---- rule 2: unstable hashes and polymorphic comparison ---- *)

let test_no_unstable_hash () =
  check_rules "Hashtbl.hash" [ "no-unstable-hash" ] "let seed name = Hashtbl.hash name";
  check_rules "bare compare" [ "no-unstable-hash" ] "let s l = List.sort compare l";
  check_rules "first-class (=)" [ "no-unstable-hash" ] "let f a l = List.filter ((=) a) l";
  check_rules "typed compare ok" [] "let s l = List.sort String.compare l";
  check_rules "applied (=) ok" [] "let f a b = a = b";
  (* the rule is lib-hygiene: a path outside lib/ is not held to it *)
  Alcotest.(check (list string))
    "outside lib" []
    (rules_of (Lint.lint_source ~path:"bench/main.ml" "let s l = List.sort compare l"))

(* ---- rule 3: hash-table iteration in clock-coupled modules ---- *)

let clocked_iter = "type t = { clock : Amoeba_sim.Clock.t }\nlet f h = Hashtbl.iter ignore h"

let test_hashtbl_iteration () =
  let diags = Lint.lint_source ~path:"lib/x/x.ml" clocked_iter in
  Alcotest.(check (list string)) "clock-coupled" [ "no-hashtbl-iteration" ] (rules_of diags);
  Alcotest.(check (list int)) "line" [ 2 ] (lines_of diags);
  check_rules "no clock, no rule" [] "let f h = Hashtbl.iter ignore h";
  check_rules "clock + sorted helper ok"
    []
    "type t = { clock : Amoeba_sim.Clock.t }\nlet f h = Amoeba_sim.Tbl.sorted_iter Int.compare (fun _ _ -> ()) h"

(* ---- rule 7: wire symmetry ---- *)

let test_wire_symmetry () =
  check_rules "unpaired encoder" [ "wire-symmetry" ] "let encode_stat s = s";
  check_rules "unpaired decoder" [ "wire-symmetry" ] "let decode_stat b = b";
  check_rules "paired" [] "let encode_stat s = s\nlet decode_stat b = b";
  check_rules "bare encode/decode pair" [] "let encode m = m\nlet decode p = p";
  (* a local helper inside a function is not part of the wire vocabulary *)
  check_rules "local binding ignored" [] "let persist t = let encode_name n = n in encode_name t"

(* ---- rule 8: silent catch-alls in dispatch/decode matches ---- *)

let test_no_silent_catchall () =
  check_rules "swallowing catch-all in dispatch"
    [ "no-silent-catchall" ]
    "let dispatch m = match m with 1 -> `A | 2 -> `B | _ -> `A";
  check_rules "catch-all on a command scrutinee"
    [ "no-silent-catchall" ]
    "let serve command = match command with c when c = 1 -> `A | _ -> `A";
  check_rules "error construct is loud enough" []
    "let dispatch m = match m with 1 -> Ok `A | _ -> Error `Bad_request";
  check_rules "raising is loud enough" []
    "let dispatch m = match m with 1 -> `A | _ -> invalid_arg \"dispatch\"";
  check_rules "None is an explicit failure" []
    "let encode_frame x = x\nlet decode_frame b = match b with 1 -> Some `A | _ -> None";
  check_rules "non-dispatch matches are out of scope" []
    "let encode_kind k = k\nlet decode_kind c = match c with 'a' -> `A | _ -> `Other";
  check_rules "other functions are out of scope" []
    "let classify m = match m with 1 -> `A | _ -> `B";
  let diags =
    Lint.lint_source ~path:"lib/x/x.ml" "let dispatch m =\n  match m with\n  | 1 -> `A\n  | _ -> `A"
  in
  Alcotest.(check (list int)) "line points at the arm" [ 4 ] (lines_of diags)

(* ---- suppression comments ---- *)

let test_suppression () =
  check_rules "same line"
    []
    "let seed name = Hashtbl.hash name (* lint: allow no-unstable-hash pinned by tests *)";
  check_rules "line above"
    []
    "(* lint: allow no-os-entropy calibration only *)\nlet n = Random.int 6";
  check_rules "wrong rule id does not silence"
    [ "no-os-entropy" ]
    "(* lint: allow no-wallclock *)\nlet n = Random.int 6";
  check_rules "too far away"
    [ "no-os-entropy" ]
    "(* lint: allow no-os-entropy *)\n\n\nlet n = Random.int 6"

(* ---- lib/sched is in scope: the scheduler underpins every report ---- *)

let test_sched_in_scope () =
  let rules_at path source = rules_of (Lint.lint_source ~path source) in
  Alcotest.(check (list string))
    "wallclock in lib/sched"
    [ "no-wallclock" ]
    (rules_at "lib/sched/sched.ml" "let t = Unix.gettimeofday ()");
  Alcotest.(check (list string))
    "entropy in lib/sched"
    [ "no-os-entropy" ]
    (rules_at "lib/sched/sched.ml" "let quantum = Random.int 6");
  Alcotest.(check (list string))
    "bare compare in lib/sched"
    [ "no-unstable-hash" ]
    (rules_at "lib/sched/sched.ml" "let s l = List.sort compare l")

(* ---- parse errors ---- *)

let test_parse_error () =
  check_rules "syntax error" [ "parse-error" ] "let let let"

let test_rule_listing () =
  (* every rule the scanner can emit is documented in Lint.rules *)
  let documented = List.map fst Lint.rules in
  List.iter
    (fun rule -> check_bool (rule ^ " documented") true (List.mem rule documented))
    [
      "no-wallclock";
      "no-os-entropy";
      "no-marshal";
      "no-unstable-hash";
      "no-hashtbl-iteration";
      "trace-no-wallclock";
      "mli-coverage";
      "wire-symmetry";
      "no-silent-catchall";
      "parse-error";
    ]

let test_diagnostic_format () =
  let d = { Lint.file = "lib/x.ml"; line = 7; rule = "no-wallclock"; message = "msg" } in
  check_string "file:line rule message" "lib/x.ml:7 no-wallclock msg" (Lint.to_string d)

let suite =
  ( "lint",
    [
      Alcotest.test_case "no-os-entropy fires on Random.self_init" `Quick test_no_os_entropy;
      Alcotest.test_case "no-wallclock" `Quick test_no_wallclock;
      Alcotest.test_case "no-marshal" `Quick test_no_marshal;
      Alcotest.test_case "carrier allowlist retired" `Quick test_carrier_allowlist_retired;
      Alcotest.test_case "no-unstable-hash" `Quick test_no_unstable_hash;
      Alcotest.test_case "no-hashtbl-iteration needs a clock" `Quick test_hashtbl_iteration;
      Alcotest.test_case "trace-no-wallclock scopes to lib/trace + lib/sim" `Quick
        test_trace_no_wallclock;
      Alcotest.test_case "wire-symmetry" `Quick test_wire_symmetry;
      Alcotest.test_case "no-silent-catchall" `Quick test_no_silent_catchall;
      Alcotest.test_case "suppression comments" `Quick test_suppression;
      Alcotest.test_case "lib/sched is in scope" `Quick test_sched_in_scope;
      Alcotest.test_case "parse errors are diagnostics" `Quick test_parse_error;
      Alcotest.test_case "every rule is documented" `Quick test_rule_listing;
      Alcotest.test_case "diagnostic format" `Quick test_diagnostic_format;
    ] )
