(* Tests for amoeba-vet's typedtree passes and the tie-race sanitizer.

   The typed passes run over test/fixtures — deliberately-broken modules
   compiled as the [vet_fixtures] library — and every seeded bug must be
   reported at its exact file:line. The sanitizer tests drive
   Amoeba_sim.Event_queue directly; main.ml enables the check for the
   whole test binary and the final [global_ties] suite asserts the real
   simulations ran tie-free, so tests here that provoke ties on purpose
   clear the accumulator before returning. *)

open Helpers
module Vet = Amoeba_analysis.Vet
module Lint = Amoeba_analysis.Lint
module Eq = Amoeba_sim.Event_queue

(* ---- fixture plumbing: the test binary runs from _build/default/test,
   so the fixture cmts sit under fixtures/ and the cmt-recorded source
   paths (test/fixtures/...) resolve one directory up ---- *)

let fixture_cmt_dir = "fixtures/.vet_fixtures.objs/byte"

let fixture_cmts () =
  match Sys.readdir fixture_cmt_dir with
  | exception Sys_error _ ->
    Alcotest.fail ("fixture cmts missing at " ^ fixture_cmt_dir ^ " — build the vet_fixtures library")
  | names ->
    Array.to_list names
    |> List.filter (fun n -> Filename.check_suffix n ".cmt")
    |> List.sort String.compare
    |> List.map (Filename.concat fixture_cmt_dir)

let read_source file =
  let read path =
    if Sys.file_exists path then Some (In_channel.with_open_bin path In_channel.input_all)
    else None
  in
  match read file with Some s -> Some s | None -> read (Filename.concat ".." file)

let analyze passes =
  match Vet.analyze ~read_source ~passes (fixture_cmts ()) with
  | Ok report -> report
  | Error e -> Alcotest.fail e

let contains_sub hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let located report =
  Vet.order_diagnostics report.Vet.diagnostics
  |> List.map (fun d -> (Filename.basename d.Lint.file, d.Lint.line, d.Lint.rule))

let loc = Alcotest.(list (triple string int string))

(* ---- each pass catches its seeded fixture bug at the exact line ---- *)

let test_fixture_proto () =
  Alcotest.check loc "proto diagnostics"
    [
      ("fixture_metrics.ml", 13, "vet-proto-duplicate-metric");
      ("fixture_proto.ml", 7, "vet-proto-unhandled-cmd");
      ("fixture_proto.ml", 8, "vet-proto-duplicate-cmd");
      ("fixture_proto.ml", 8, "vet-proto-unhandled-cmd");
      ("fixture_proto.ml", 9, "vet-proto-orphan-codec");
    ]
    (located (analyze [ Vet.Proto ]))

let test_fixture_clock () =
  (* only the innermost offender: charged_read reaches the same effects
     but advances the clock, so it must stay clean *)
  Alcotest.check loc "clock diagnostics"
    [ ("fixture_clock.ml", 7, "vet-clock-free-work") ]
    (located (analyze [ Vet.Clock ]))

let test_fixture_taint () =
  (* persist_sorted (line 13) carries a justified source-site allow and
     must not appear *)
  let report = analyze [ Vet.Taint ] in
  Alcotest.check loc "taint diagnostics"
    [ ("fixture_taint.ml", 9, "vet-taint-persist"); ("fixture_taint.ml", 11, "vet-taint-persist") ]
    (located report);
  let interprocedural =
    List.exists
      (fun d -> d.Lint.line = 9 && contains_sub d.Lint.message "snapshot")
      report.Vet.diagnostics
  in
  check_bool "witness chain names the helper" true interprocedural

let test_fixture_inventory () =
  let inv = (analyze [ Vet.Proto ]).Vet.inventory in
  Alcotest.(check (list (triple string string int)))
    "cmd inventory"
    [
      ("Vet_fixtures.Fixture_proto", "cmd_echo", 2);
      ("Vet_fixtures.Fixture_proto", "cmd_ping", 1);
      ("Vet_fixtures.Fixture_proto", "cmd_pong", 2);
    ]
    inv.Vet.inv_cmds;
  Alcotest.(check (list (pair string string)))
    "codec inventory"
    [ ("Vet_fixtures.Fixture_proto", "encode_frame") ]
    inv.Vet.inv_codecs;
  Alcotest.(check (list (pair string string)))
    "metric inventory"
    [
      ("Vet_fixtures.Fixture_metrics", "fixture.depth");
      ("Vet_fixtures.Fixture_metrics", "fixture.requests");
    ]
    inv.Vet.inv_metrics

(* ---- the JSON report is byte-identical across double runs ---- *)

let test_json_double_run () =
  let run () =
    let report = analyze [ Vet.Proto; Vet.Clock; Vet.Taint ] in
    Vet.to_json ~passes:[ "proto"; "clock"; "taint" ]
      ~diagnostics:(Vet.order_diagnostics report.Vet.diagnostics)
      report.Vet.inventory
  in
  let first = run () and second = run () in
  check_string "byte-identical JSON" first second;
  check_bool "non-empty" true (String.length first > 0);
  check_bool "trailing newline" true (first.[String.length first - 1] = '\n')

(* ---- tie-race sanitizer ---- *)

let with_clean_ties f =
  (* main.ml enables the check globally; isolate this test's ties from
     the end-of-run zero-ties assertion *)
  Eq.clear_ties ();
  Fun.protect ~finally:Eq.clear_ties f

let test_tie_unpinned () =
  with_clean_ties (fun () ->
      let q = Eq.create () in
      Eq.push q ~site:"a" ~time:5 ();
      Eq.push q ~site:"b" ~time:5 ();
      match Eq.ties () with
      | [ t ] ->
        check_int "time" 5 t.Eq.tie_at;
        check_int "prio" 0 t.Eq.tie_prio;
        check_string "first site" "a" t.Eq.tie_first;
        check_string "second site" "b" t.Eq.tie_second;
        check_bool "reason mentions pin" true (contains_sub t.Eq.tie_reason "~pin")
      | ties -> Alcotest.failf "expected exactly one tie, got %d" (List.length ties))

let test_tie_unpinned_anonymous () =
  with_clean_ties (fun () ->
      let q = Eq.create () in
      Eq.push q ~time:5 ();
      Eq.push q ~time:5 ();
      match Eq.ties () with
      | [ t ] -> check_string "anonymous site" "<unpinned>" t.Eq.tie_first
      | ties -> Alcotest.failf "expected exactly one tie, got %d" (List.length ties))

let test_tie_pinned_monotone () =
  with_clean_ties (fun () ->
      let q = Eq.create () in
      Eq.push q ~pin:1 ~time:5 ();
      Eq.push q ~pin:2 ~time:5 ();
      Eq.push q ~pin:7 ~time:5 ();
      check_int "monotone pins are race-free" 0 (List.length (Eq.ties ())))

let test_tie_pinned_contradiction () =
  with_clean_ties (fun () ->
      let q = Eq.create () in
      Eq.push q ~pin:2 ~site:"late" ~time:5 ();
      Eq.push q ~pin:1 ~site:"early" ~time:5 ();
      match Eq.ties () with
      | [ t ] -> check_bool "reason names the pins" true (contains_sub t.Eq.tie_reason "pins 2 then 1")
      | ties -> Alcotest.failf "expected exactly one tie, got %d" (List.length ties))

let test_tie_scoped_to_time_and_prio () =
  with_clean_ties (fun () ->
      let q = Eq.create () in
      Eq.push q ~time:5 ();
      Eq.push q ~time:6 ();
      Eq.push q ~prio:1 ~time:5 ();
      check_int "different (time, prio) never ties" 0 (List.length (Eq.ties ())))

let test_tie_cleared_by_pop () =
  with_clean_ties (fun () ->
      let q = Eq.create () in
      Eq.push q ~time:5 ();
      check_bool "popped" true (Eq.pop q <> None);
      Eq.push q ~time:5 ();
      check_int "popped events no longer collide" 0 (List.length (Eq.ties ())))

let test_tie_ordering_unchanged () =
  (* the sanitizer is observational: pop order is (time, prio, seq)
     whether or not pins are supplied, and regardless of the mode *)
  with_clean_ties (fun () ->
      let q = Eq.create () in
      Eq.push q ~pin:5 ~time:5 "first";
      Eq.push q ~pin:9 ~time:5 "second";
      Eq.push q ~prio:(-1) ~time:5 "urgent";
      let pops = List.init 3 (fun _ -> Option.map snd (Eq.pop q)) in
      check_bool "prio then insertion order" true
        (pops = [ Some "urgent"; Some "first"; Some "second" ]);
      ignore (Eq.ties ()))

let suite =
  ( "vet",
    [
      Alcotest.test_case "proto fixture bugs at exact lines" `Quick test_fixture_proto;
      Alcotest.test_case "clock fixture bug at exact line" `Quick test_fixture_clock;
      Alcotest.test_case "taint fixture bugs at exact lines" `Quick test_fixture_taint;
      Alcotest.test_case "fixture inventory" `Quick test_fixture_inventory;
      Alcotest.test_case "JSON double run is byte-identical" `Quick test_json_double_run;
      Alcotest.test_case "tie: unpinned collision" `Quick test_tie_unpinned;
      Alcotest.test_case "tie: anonymous sites" `Quick test_tie_unpinned_anonymous;
      Alcotest.test_case "tie: monotone pins pass" `Quick test_tie_pinned_monotone;
      Alcotest.test_case "tie: contradictory pins" `Quick test_tie_pinned_contradiction;
      Alcotest.test_case "tie: scoped to (time, prio)" `Quick test_tie_scoped_to_time_and_prio;
      Alcotest.test_case "tie: pop clears the collision set" `Quick test_tie_cleared_by_pop;
      Alcotest.test_case "tie: ordering is unchanged by the mode" `Quick test_tie_ordering_unchanged;
    ] )

(* Run last (main.ml places it at the end): every simulation exercised by
   the suites above ran with the sanitizer enabled, and none may have
   scheduled two same-(time, prio) events without pinning their order. *)
let global_ties =
  ( "tie-check",
    [
      Alcotest.test_case "no unpinned ties anywhere in the test run" `Quick (fun () ->
          match Eq.ties () with
          | [] -> ()
          | ties ->
            Alcotest.failf "%d tie(s):\n%s" (List.length ties)
              (String.concat "\n" (List.map Eq.tie_to_string ties)));
    ] )
