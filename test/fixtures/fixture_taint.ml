(* Seeded persisted-bytes taint: [checkpoint] persists bytes that reach
   an unordered Hashtbl.fold through a helper, and [persist_ratio]
   formats a float directly. [persist_sorted] carries a justified
   source-site suppression and must stay clean. test/test_vet.ml asserts
   the exact lines below. *)

let snapshot tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

let checkpoint tbl = List.length (snapshot tbl)

let persist_ratio r = String.length (string_of_float r)

let persist_sorted tbl =
  (* lint: allow vet-taint-persist fixture: the fold feeds List.sort, so hash order is unobservable *)
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare
