(* Seeded metric-registry bug: two instruments registered under the same
   literal name in one module. Nothing here runs at link time — the
   registrations live inside a function nobody calls — but the vet proto
   pass must still flag the second site, because calling [wire] against
   any registry raises Duplicate_metric. test/test_vet.ml asserts the
   exact line below — keep it in sync when editing. *)

module M = Amoeba_metrics.Metrics

let wire reg =
  ignore (M.counter reg "fixture.requests");
  M.gauge reg "fixture.depth" (fun () -> 0);
  M.gauge reg "fixture.requests" (fun () -> 0)
