(* Seeded clock-discipline bug: [free_read] observes the virtual clock
   and schedules queue work but never charges simulated time.
   [charged_read] reaches the same effects through [free_read] yet also
   advances the clock, so only the innermost offender is reported.
   test/test_vet.ml asserts the exact lines below. *)

let free_read clock q =
  let t = Amoeba_sim.Clock.now clock in
  Amoeba_sim.Event_queue.push q ~time:t ();
  t

let charged_read clock q =
  let t = free_read clock q in
  Amoeba_sim.Clock.advance clock 10;
  t
