(* Seeded protocol-conformance bugs: a duplicate wire value, two command
   constants no dispatch arm ever references, and an encoder with no
   decoder. test/test_vet.ml asserts the exact lines below — keep them
   in sync when editing. *)

let cmd_ping = 1
let cmd_pong = 2
let cmd_echo = 2
let encode_frame (x : int) = x
let dispatch command = if command = cmd_ping then 1 else 0
