(* Tests for the tracing subsystem (Amoeba_trace): span mechanics, trace
   id interning, JSONL round-trips, the ring buffer, the attribution
   sweep's exactness on a live rig, and the determinism and zero-cost
   guarantees the observability layer is sold on. *)

open Helpers
module Sink = Amoeba_trace.Sink
module Trace = Amoeba_trace.Trace
module Attrib = Amoeba_trace.Attrib
module Clock = Amoeba_sim.Clock
module Client = Bullet_core.Client
module Server = Bullet_core.Server

let names spans = List.map (fun (s : Sink.span) -> s.Sink.name) spans

(* ---- span mechanics ---- *)

let test_nesting () =
  let clock = Clock.create () in
  let ctx = Trace.create ~clock () in
  Trace.begin_root ctx ~xid:7 ~layer:Sink.Net ~name:"rpc";
  Clock.advance clock 10;
  Trace.begin_span ctx ~layer:Sink.Disk ~name:"disk.read";
  Clock.advance clock 5;
  Trace.end_span ctx;
  Clock.advance clock 3;
  Trace.end_span ctx;
  match Sink.spans (Trace.sink ctx) with
  | [ child; root ] ->
    (* children close (and emit) before their parents *)
    check_string "child name" "disk.read" child.Sink.name;
    check_int "child depth" 1 child.Sink.depth;
    check_int "child parent" root.Sink.span_id child.Sink.parent_id;
    check_int "child begin" 10 child.Sink.begin_us;
    check_int "child end" 15 child.Sink.end_us;
    check_string "root name" "rpc" root.Sink.name;
    check_int "root depth" 0 root.Sink.depth;
    check_int "root parent" 0 root.Sink.parent_id;
    check_int "root end" 18 root.Sink.end_us;
    check_int "same trace" child.Sink.trace_id root.Sink.trace_id
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_end_without_begin () =
  let ctx = Trace.create ~clock:(Clock.create ()) () in
  check_int "stack empty" 0 (Trace.open_spans ctx);
  Alcotest.check_raises "end on empty stack"
    (Invalid_argument "Trace.end_span: no open span") (fun () -> Trace.end_span ctx)

let test_in_span_exception_safe () =
  let ctx = Trace.create ~clock:(Clock.create ()) () in
  (try Trace.in_span ctx ~layer:Sink.Server ~name:"boom" (fun () -> raise Exit)
   with Exit -> ());
  check_int "stack unwound" 0 (Trace.open_spans ctx);
  match Sink.spans (Trace.sink ctx) with
  | [ s ] ->
    check_string "span closed" "boom" s.Sink.name;
    check_bool "raised attr" true (List.mem_assoc "raised" s.Sink.attrs)
  | _ -> Alcotest.fail "expected exactly one span"

(* ---- trace id interning ---- *)

let test_xid_interning () =
  let ctx = Trace.create ~clock:(Clock.create ()) () in
  let root xid =
    Trace.begin_root ctx ~xid ~layer:Sink.Net ~name:"rpc";
    Trace.end_span ctx
  in
  (* first-seen order mints 1, 2, ...; a retried xid rejoins its trace;
     xid-less roots count down from -1 *)
  List.iter root [ 99; 42; 99; 0; 0 ];
  Alcotest.(check (list int))
    "interned ids" [ 1; 2; 1; -1; -2 ]
    (List.map (fun (s : Sink.span) -> s.Sink.trace_id) (Sink.spans (Trace.sink ctx)))

let test_nested_root_joins_enclosing_trace () =
  let ctx = Trace.create ~clock:(Clock.create ()) () in
  Trace.begin_root ctx ~xid:5 ~layer:Sink.Net ~name:"rpc";
  (* a nested RPC (e.g. server calling another server) must not start a
     fresh trace: the tree stays connected *)
  Trace.begin_root ctx ~xid:6 ~layer:Sink.Net ~name:"rpc";
  Trace.end_span ctx;
  Trace.end_span ctx;
  match Sink.spans (Trace.sink ctx) with
  | [ inner; outer ] ->
    check_int "joined" outer.Sink.trace_id inner.Sink.trace_id;
    check_int "child of outer" outer.Sink.span_id inner.Sink.parent_id
  | _ -> Alcotest.fail "expected two spans"

(* ---- ring buffer ---- *)

let test_ring_overflow () =
  let ctx = Trace.create ~capacity:4 ~clock:(Clock.create ()) () in
  for i = 1 to 6 do
    Trace.event ctx ~layer:Sink.Net ~name:(Printf.sprintf "e%d" i) []
  done;
  let sink = Trace.sink ctx in
  check_int "capacity" 4 (Sink.capacity sink);
  check_int "length" 4 (Sink.length sink);
  check_int "dropped" 2 (Sink.dropped sink);
  Alcotest.(check (list string)) "oldest evicted first" [ "e3"; "e4"; "e5"; "e6" ]
    (names (Sink.spans sink))

(* ---- JSONL round-trip ---- *)

let test_jsonl_roundtrip () =
  let span =
    {
      Sink.trace_id = -3;
      span_id = 17;
      parent_id = 4;
      depth = 2;
      layer = Sink.Disk;
      name = "disk.xfer";
      begin_us = 1_234;
      end_us = 5_678;
      attrs =
        [ ("bytes", Sink.I 4096); ("drive", Sink.S "bullet-1"); ("odd", Sink.S "a\"b\\c\nd") ];
    }
  in
  match Sink.span_of_line (Sink.line_of_span span) with
  | Ok parsed -> check_bool "identical" true (parsed = span)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_jsonl_rejects_garbage () =
  List.iter
    (fun line ->
      match Sink.span_of_line line with
      | Ok _ -> Alcotest.failf "accepted %S" line
      | Error _ -> ())
    [ ""; "{"; "nonsense"; "{\"t\":1}" ]

(* ---- the live rig: one READ down to sector transfers ---- *)

(* A bullet rig wearing a tracer: the 512 KB test cache means a second
   create evicts the first file, so the traced READ genuinely hits disk. *)
let traced_scenario () =
  let b = make_bullet () in
  let cap = Client.create b.client ~p_factor:2 (payload (256 * 1024)) in
  let filler = Client.create b.client ~p_factor:2 (payload (512 * 1024)) in
  ignore (Client.read_now b.client filler);
  let ctx = Trace.create ~clock:b.rig.clock () in
  Amoeba_rpc.Transport.set_tracer b.transport (Some ctx);
  Server.set_tracer b.server (Some ctx);
  ignore (Client.read_now b.client cap) (* cold: cache miss, disk *);
  ignore (Client.read_now b.client cap) (* hot: cache hit, no disk *);
  let cap2 = Client.create b.client ~p_factor:2 (payload 4096) in
  Client.delete b.client cap2;
  Amoeba_rpc.Transport.set_tracer b.transport None;
  Server.set_tracer b.server None;
  Sink.spans (Trace.sink ctx)

let test_cold_read_reaches_sectors () =
  let spans = traced_scenario () in
  match Attrib.by_trace spans with
  | (_, cold) :: _ ->
    check_string "cold read class" "serve.read" (Attrib.op_class cold);
    List.iter
      (fun name -> check_bool (name ^ " present") true (List.mem name (names cold)))
      [ "rpc"; "net.send"; "serve.read"; "cpu.request"; "cache.miss"; "mirror.read";
        "disk.read"; "disk.seek"; "disk.rotate"; "disk.xfer"; "net.recv" ]
  | [] -> Alcotest.fail "no traces recorded"

let test_attribution_exact () =
  let spans = traced_scenario () in
  check_bool "several traces" true (List.length (Attrib.by_trace spans) >= 4);
  List.iter
    (fun (tid, trace) ->
      let t = Attrib.sweep trace in
      let parts =
        t.Attrib.net_us + t.Attrib.cpu_us + t.Attrib.cache_us + t.Attrib.disk_us
        + t.Attrib.alloc_us + t.Attrib.other_us
      in
      check_int (Printf.sprintf "trace %d: layers partition the total" tid) t.Attrib.total_us
        parts;
      check_int
        (Printf.sprintf "trace %d: total is the end-to-end duration" tid)
        (Attrib.root_duration_us trace) t.Attrib.total_us)
    (Attrib.by_trace spans)

let test_cached_read_is_net_plus_cpu () =
  let spans = traced_scenario () in
  match Attrib.by_trace spans with
  | _ :: (_, hot) :: _ ->
    check_string "hot read class" "serve.read" (Attrib.op_class hot);
    check_bool "cache hit" true (List.mem "cache.hit" (names hot));
    let t = Attrib.sweep hot in
    check_int "no disk time" 0 t.Attrib.disk_us;
    check_int "no unattributed time" 0 t.Attrib.other_us;
    check_int "net + cpu is everything" t.Attrib.total_us (t.Attrib.net_us + t.Attrib.cpu_us)
  | _ -> Alcotest.fail "expected at least two traces"

(* ---- determinism: two fresh rigs, byte-identical dumps ---- *)

let test_double_run_byte_identical () =
  let dump () =
    String.concat "\n" (List.map Sink.line_of_span (traced_scenario ()))
  in
  check_string "same scenario, same bytes" (dump ()) (dump ())

(* ---- zero-cost when off ---- *)

(* The discipline: instrumented modules match on [tracer] before building
   any name, attr or closure, so a rig whose tracer was removed allocates
   exactly what a never-traced rig does.  Allocation in this runtime is
   deterministic; any drift here means a hidden tracer-path allocation. *)
let test_tracer_off_allocates_nothing_extra () =
  let hot_read_words b cap =
    ignore (Client.read_now b.client cap) (* warm the cache and the path *);
    let before = Gc.minor_words () in
    for _ = 1 to 32 do
      ignore (Client.read_now b.client cap)
    done;
    Gc.minor_words () -. before
  in
  let baseline =
    let b = make_bullet () in
    let cap = Client.create b.client ~p_factor:2 (payload 4096) in
    hot_read_words b cap
  in
  let after_tracing =
    let b = make_bullet () in
    let cap = Client.create b.client ~p_factor:2 (payload 4096) in
    let ctx = Trace.create ~clock:b.rig.clock () in
    Amoeba_rpc.Transport.set_tracer b.transport (Some ctx);
    Server.set_tracer b.server (Some ctx);
    ignore (Client.read_now b.client cap);
    Amoeba_rpc.Transport.set_tracer b.transport None;
    Server.set_tracer b.server None;
    hot_read_words b cap
  in
  Alcotest.(check (float 0.0)) "words per batch" baseline after_tracing

let suite =
  ( "trace",
    [
      Alcotest.test_case "span nesting and timestamps" `Quick test_nesting;
      Alcotest.test_case "end_span without begin raises" `Quick test_end_without_begin;
      Alcotest.test_case "in_span closes on raise" `Quick test_in_span_exception_safe;
      Alcotest.test_case "xid interning mints stable trace ids" `Quick test_xid_interning;
      Alcotest.test_case "nested root joins the enclosing trace" `Quick
        test_nested_root_joins_enclosing_trace;
      Alcotest.test_case "ring buffer overwrites oldest" `Quick test_ring_overflow;
      Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
      Alcotest.test_case "jsonl rejects garbage" `Quick test_jsonl_rejects_garbage;
      Alcotest.test_case "cold read reaches sector transfers" `Quick
        test_cold_read_reaches_sectors;
      Alcotest.test_case "attribution partitions the duration exactly" `Quick
        test_attribution_exact;
      Alcotest.test_case "cached read is net + cpu only" `Quick test_cached_read_is_net_plus_cpu;
      Alcotest.test_case "double run, byte-identical dump" `Quick test_double_run_byte_identical;
      Alcotest.test_case "tracer off allocates nothing extra" `Quick
        test_tracer_off_allocates_nothing_extra;
    ] )
