(* Tests for the wide-area federation: gateways, replica placement,
   nearest-replica reads. *)

open Helpers
module Fed = Amoeba_wan.Federation
module Link = Amoeba_wan.Link
module Clock = Amoeba_sim.Clock

let make () =
  let fed = Fed.create ~home_region:"nl" () in
  Fed.add_site fed ~name:"cwi" ~region:"nl";
  Fed.add_site fed ~name:"tromso" ~region:"no";
  Fed.add_site fed ~name:"berlin" ~region:"de";
  fed

let test_sites () =
  let fed = make () in
  check_bool "all sites" true (Fed.sites fed = [ "berlin"; "cwi"; "home"; "tromso" ]);
  check_string "home" "home" (Fed.home fed)

let test_link_classification () =
  let fed = make () in
  check_string "same site" "local" (Link.to_string (Fed.link_between fed "cwi" "cwi"));
  check_string "same region" "regional" (Link.to_string (Fed.link_between fed "home" "cwi"));
  check_string "abroad" "wide-area" (Link.to_string (Fed.link_between fed "home" "tromso"))

let test_wide_link_slowest () =
  let local = Link.model Link.Local and regional = Link.model Link.Regional in
  let wide = Link.model Link.Wide in
  let cost m = Amoeba_rpc.Net_model.transaction_us m ~request_bytes:1000 ~reply_bytes:1000 in
  check_bool "local < regional" true (cost local < cost regional);
  check_bool "regional < wide" true (cost regional < cost wide)

let test_publish_fetch_roundtrip () =
  let fed = make () in
  let data = payload 5_000 in
  let (_ : Amoeba_cap.Capability.t) = Fed.publish fed ~from:"cwi" ~name:"doc" data in
  let contents, served_by = Fed.fetch fed ~from:"cwi" "doc" in
  check_bytes "roundtrip" data contents;
  check_string "served locally" "cwi" served_by

let test_unknown_site_rejected () =
  let fed = make () in
  (try
     ignore (Fed.publish fed ~from:"atlantis" ~name:"x" (payload 1));
     Alcotest.fail "expected Unknown_site"
   with Fed.Unknown_site "atlantis" -> ())

let test_replication_and_nearest_read () =
  let fed = make () in
  let data = payload 20_000 in
  let (_ : Amoeba_cap.Capability.t) =
    Fed.publish fed ~from:"home" ~name:"shared" ~replicate_to:[ "tromso" ] data
  in
  check_bool "two replicas" true
    (List.sort compare (Fed.replica_sites fed "shared") = [ "home"; "tromso" ]);
  (* a reader in Norway is served by the Norwegian replica, not across
     the international line *)
  let contents, served_by = Fed.fetch fed ~from:"tromso" "shared" in
  check_bytes "replica content identical" data contents;
  check_string "nearest replica wins" "tromso" served_by;
  (* a reader in Amsterdam is served at home *)
  let _, served_by = Fed.fetch fed ~from:"cwi" "shared" in
  check_string "regional beats wide" "home" served_by

let test_replica_read_faster_than_remote () =
  let fed = make () in
  let data = payload 65_536 in
  let (_ : Amoeba_cap.Capability.t) =
    Fed.publish fed ~from:"home" ~name:"big" ~replicate_to:[ "tromso" ] data
  in
  let clock = Fed.clock fed in
  let _, t_near =
    Clock.elapsed clock (fun () -> ignore (Fed.fetch_from_replica fed ~from:"tromso" "big" ~replica:"tromso"))
  in
  let _, t_far =
    Clock.elapsed clock (fun () -> ignore (Fed.fetch_from_replica fed ~from:"tromso" "big" ~replica:"home"))
  in
  check_bool "local replica much faster" true (t_near * 10 < t_far)

let test_replication_costs_publish_time () =
  let fed = make () in
  let data = payload 30_000 in
  let clock = Fed.clock fed in
  let _, t_plain =
    Clock.elapsed clock (fun () -> ignore (Fed.publish fed ~from:"home" ~name:"a" data))
  in
  let _, t_replicated =
    Clock.elapsed clock (fun () ->
        ignore (Fed.publish fed ~from:"home" ~name:"b" ~replicate_to:[ "berlin" ] data))
  in
  check_bool "shipping a replica abroad is paid at publish time" true
    (t_replicated > 2 * t_plain)

let test_rebind_name () =
  let fed = make () in
  let (_ : Amoeba_cap.Capability.t) = Fed.publish fed ~from:"home" ~name:"n" (payload 10) in
  let (_ : Amoeba_cap.Capability.t) = Fed.publish fed ~from:"home" ~name:"n" (payload 99) in
  let contents, _ = Fed.fetch fed ~from:"home" "n" in
  check_int "newest bound" 99 (Bytes.length contents)

let test_unpublish () =
  let fed = make () in
  let (_ : Amoeba_cap.Capability.t) =
    Fed.publish fed ~from:"home" ~name:"gone" ~replicate_to:[ "tromso" ] (payload 10)
  in
  Fed.unpublish fed "gone";
  (try
     ignore (Fed.fetch fed ~from:"home" "gone");
     Alcotest.fail "expected Not_found"
   with Amoeba_rpc.Status.Error Amoeba_rpc.Status.Not_found -> ())

let test_partition_kills_wide_spares_local () =
  (* partition the international line: cross-border fetches fail even
     with retries, same-site fetches are untouched — and consume no
     random draws, so their timing is bit-identical to a quiet run *)
  let fed = Fed.create ~home_region:"nl" ~attempts:2 ~backoff_us:10_000 () in
  Fed.add_site fed ~name:"tokyo" ~region:"jp";
  let clock = Fed.clock fed in
  let (_ : Amoeba_cap.Capability.t) =
    Fed.publish fed ~from:"home" ~name:"doc" ~replicate_to:[ "tokyo" ] (payload 4_096)
  in
  ignore (Fed.fetch_from_replica fed ~from:"home" "doc" ~replica:"home");
  let quiet =
    let _, us =
      Clock.elapsed clock (fun () ->
          ignore (Fed.fetch_from_replica fed ~from:"home" "doc" ~replica:"home"))
    in
    us
  in
  let plan =
    Amoeba_fault.Plan.create ~seed:9L
    |> fun p ->
    Amoeba_fault.Plan.at p ~us:(Clock.now clock)
      (Amoeba_fault.Plan.Link_partition Amoeba_rpc.Link.Wide)
  in
  let injector = Amoeba_fault.Injector.attach ~transport:(Fed.transport fed) ~clock plan in
  Amoeba_fault.Injector.poll injector;
  (try
     ignore (Fed.fetch_from_replica fed ~from:"home" "doc" ~replica:"tokyo");
     Alcotest.fail "expected the wide fetch to time out"
   with Amoeba_rpc.Status.Error Amoeba_rpc.Status.Timeout -> ());
  check_bool "partition drops counted" true
    (Amoeba_sim.Stats.count (Amoeba_fault.Injector.stats injector) "link_partition_drops" > 0);
  let faulted =
    let _, us =
      Clock.elapsed clock (fun () ->
          ignore (Fed.fetch_from_replica fed ~from:"home" "doc" ~replica:"home"))
    in
    us
  in
  check_int "local fetch timing untouched by the partition" quiet faulted;
  Amoeba_fault.Injector.detach injector

let test_link_heal_restores_wide () =
  let fed = Fed.create ~home_region:"nl" ~attempts:2 ~backoff_us:10_000 () in
  Fed.add_site fed ~name:"tokyo" ~region:"jp";
  let clock = Fed.clock fed in
  let data = payload 2_048 in
  let (_ : Amoeba_cap.Capability.t) =
    Fed.publish fed ~from:"home" ~name:"doc" ~replicate_to:[ "tokyo" ] data
  in
  (* far beyond anything the retried fetch can reach: a fully-retried
     wide op still only runs the clock forward by tens of virtual
     seconds, so the heal must not land inside the retry window *)
  let heal_at = Clock.now clock + 600_000_000 in
  let plan =
    Amoeba_fault.Plan.create ~seed:10L
    |> fun p ->
    Amoeba_fault.Plan.at p ~us:(Clock.now clock)
      (Amoeba_fault.Plan.Link_partition Amoeba_rpc.Link.Wide)
    |> fun p -> Amoeba_fault.Plan.at p ~us:heal_at (Amoeba_fault.Plan.Link_heal Amoeba_rpc.Link.Wide)
  in
  let injector = Amoeba_fault.Injector.attach ~transport:(Fed.transport fed) ~clock plan in
  Amoeba_fault.Injector.poll injector;
  (try
     ignore (Fed.fetch_from_replica fed ~from:"home" "doc" ~replica:"tokyo");
     Alcotest.fail "expected a timeout while partitioned"
   with Amoeba_rpc.Status.Error Amoeba_rpc.Status.Timeout -> ());
  Clock.advance_to clock heal_at;
  Amoeba_fault.Injector.poll injector;
  check_bytes "wide fetch works after the scripted heal" data
    (Fed.fetch_from_replica fed ~from:"home" "doc" ~replica:"tokyo");
  Amoeba_fault.Injector.detach injector

let suite =
  ( "wan",
    [
      Alcotest.test_case "sites" `Quick test_sites;
      Alcotest.test_case "link classification" `Quick test_link_classification;
      Alcotest.test_case "wide link slowest" `Quick test_wide_link_slowest;
      Alcotest.test_case "publish/fetch roundtrip" `Quick test_publish_fetch_roundtrip;
      Alcotest.test_case "unknown site rejected" `Quick test_unknown_site_rejected;
      Alcotest.test_case "replication and nearest read" `Quick test_replication_and_nearest_read;
      Alcotest.test_case "local replica faster than remote" `Quick
        test_replica_read_faster_than_remote;
      Alcotest.test_case "replication paid at publish time" `Quick
        test_replication_costs_publish_time;
      Alcotest.test_case "rebind name" `Quick test_rebind_name;
      Alcotest.test_case "unpublish deletes replicas" `Quick test_unpublish;
      Alcotest.test_case "partition kills wide, spares local" `Quick
        test_partition_kills_wide_spares_local;
      Alcotest.test_case "scripted link heal restores wide" `Quick test_link_heal_restores_wide;
    ] )
