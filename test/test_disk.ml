(* Tests for the disk substrate: Geometry, Block_device, Mirror. *)

open Helpers
module Geometry = Amoeba_disk.Geometry
module Dev = Amoeba_disk.Block_device
module Mirror = Amoeba_disk.Mirror
module Clock = Amoeba_sim.Clock
module Stats = Amoeba_sim.Stats

let geometry = Geometry.small ~sectors:1024

let make_dev ?(id = "t") () =
  let clock = Clock.create () in
  (clock, Dev.create ~id ~geometry ~clock)

(* ---- geometry ---- *)

let test_capacity () = check_int "capacity" (1024 * 512) (Geometry.capacity_bytes geometry)

let test_sectors_for () =
  check_int "0 bytes" 0 (Geometry.sectors_for geometry 0);
  check_int "1 byte" 1 (Geometry.sectors_for geometry 1);
  check_int "512" 1 (Geometry.sectors_for geometry 512);
  check_int "513" 2 (Geometry.sectors_for geometry 513)

let test_sequential_cheaper () =
  let seq = Geometry.access_us geometry ~sequential:true ~write:false 8192 in
  let rand = Geometry.access_us geometry ~sequential:false ~write:false 8192 in
  check_bool "sequential beats random" true (seq < rand);
  check_int "difference is positioning" (geometry.Geometry.avg_seek_us + (geometry.Geometry.rotation_us / 2))
    (rand - seq)

let test_write_penalty () =
  let r = Geometry.access_us geometry ~sequential:false ~write:false 512 in
  let w = Geometry.access_us geometry ~sequential:false ~write:true 512 in
  check_int "write adds half a rotation" (geometry.Geometry.rotation_us / 2) (w - r)

let test_transfer_linear () =
  let t1 = Geometry.transfer_us geometry 100_000 in
  let t2 = Geometry.transfer_us geometry 200_000 in
  check_int "linear in bytes" (2 * t1) t2

(* ---- block device ---- *)

let test_rw_roundtrip () =
  let _clock, dev = make_dev () in
  let data = payload 1024 in
  Dev.write dev ~sector:10 data;
  check_bytes "roundtrip" data (Dev.read dev ~sector:10 ~count:2)

let test_fresh_device_zeroed () =
  let _clock, dev = make_dev () in
  check_bytes "zeros" (Bytes.make 512 '\000') (Dev.read dev ~sector:0 ~count:1)

let test_write_requires_sector_multiple () =
  let _clock, dev = make_dev () in
  Alcotest.check_raises "odd size"
    (Invalid_argument "Block_device.write: data must be a positive multiple of the sector size")
    (fun () -> Dev.write dev ~sector:0 (Bytes.create 100))

let test_out_of_range_rejected () =
  let _clock, dev = make_dev () in
  let boom () = ignore (Dev.read dev ~sector:1023 ~count:2) in
  (try boom (); Alcotest.fail "expected Invalid_argument" with Invalid_argument _ -> ())

let test_read_charges_time () =
  let clock, dev = make_dev () in
  let before = Clock.now clock in
  let (_ : bytes) = Dev.read dev ~sector:100 ~count:16 in
  check_bool "time advanced" true (Clock.now clock > before)

let test_sequential_read_cheaper_on_device () =
  let clock, dev = make_dev () in
  let (_ : bytes) = Dev.read dev ~sector:0 ~count:8 in
  let _, seq_time = Clock.elapsed clock (fun () -> ignore (Dev.read dev ~sector:8 ~count:8)) in
  let _, rand_time = Clock.elapsed clock (fun () -> ignore (Dev.read dev ~sector:500 ~count:8)) in
  check_bool "head position matters" true (seq_time < rand_time)

let test_seek_stats () =
  let _clock, dev = make_dev () in
  let (_ : bytes) = Dev.read dev ~sector:100 ~count:1 in
  let (_ : bytes) = Dev.read dev ~sector:101 ~count:1 in
  let (_ : bytes) = Dev.read dev ~sector:500 ~count:1 in
  check_int "two seeks (initial + jump)" 2 (Stats.count (Dev.stats dev) "seeks");
  check_int "three reads" 3 (Stats.count (Dev.stats dev) "reads");
  check_int "three sectors" 3 (Stats.count (Dev.stats dev) "sectors_read")

let test_fail_and_repair () =
  let _clock, dev = make_dev () in
  Dev.fail dev;
  check_bool "failed" true (Dev.is_failed dev);
  (try
     ignore (Dev.read dev ~sector:0 ~count:1);
     Alcotest.fail "expected failure"
   with Dev.Failure _ -> ());
  Dev.repair dev;
  check_bool "repaired" false (Dev.is_failed dev);
  ignore (Dev.read dev ~sector:0 ~count:1)

let test_bad_sector () =
  let _clock, dev = make_dev () in
  Dev.set_bad_sector dev 5;
  ignore (Dev.read dev ~sector:4 ~count:1);
  (try
     ignore (Dev.read dev ~sector:4 ~count:2);
     Alcotest.fail "expected bad-sector failure"
   with Dev.Failure _ -> ());
  Dev.clear_bad_sector dev 5;
  ignore (Dev.read dev ~sector:4 ~count:2)

let test_copy_from () =
  let clock = Clock.create () in
  let a = Dev.create ~id:"a" ~geometry ~clock in
  let b = Dev.create ~id:"b" ~geometry ~clock in
  Dev.poke a ~sector:37 (payload 512);
  Dev.copy_from ~src:a ~dst:b;
  check_bytes "copied" (payload 512) (Dev.peek b ~sector:37 ~count:1)

let test_peek_poke_free () =
  let clock, dev = make_dev () in
  Dev.poke dev ~sector:3 (payload 512);
  let (_ : bytes) = Dev.peek dev ~sector:3 ~count:1 in
  check_int "no time charged" 0 (Clock.now clock)

(* ---- mirror ---- *)

let make_mirror () =
  let rig = make_rig ~sectors:1024 () in
  (rig.clock, rig.drive1, rig.drive2, rig.mirror)

let test_mirror_writes_both () =
  let _clock, d1, d2, m = make_mirror () in
  Mirror.write m ~sync:2 ~sector:9 (payload 512);
  check_bytes "drive1" (payload 512) (Dev.peek d1 ~sector:9 ~count:1);
  check_bytes "drive2" (payload 512) (Dev.peek d2 ~sector:9 ~count:1)

let test_mirror_sync_parallel_equals_one () =
  (* Identical drives written in parallel: sync=2 costs the same as
     sync=1 once pending writes are excluded. *)
  let clock1, _, _, m1 = make_mirror () in
  let _, t1 = Clock.elapsed clock1 (fun () -> Mirror.write m1 ~sync:1 ~sector:9 (payload 512)) in
  let clock2, _, _, m2 = make_mirror () in
  let _, t2 = Clock.elapsed clock2 (fun () -> Mirror.write m2 ~sync:2 ~sector:9 (payload 512)) in
  check_int "parallel mirror write" t1 t2

let test_mirror_sync_zero_costs_nothing () =
  let clock, _, _, m = make_mirror () in
  let _, t = Clock.elapsed clock (fun () -> Mirror.write m ~sync:0 ~sector:9 (payload 512)) in
  check_int "p-factor 0 write is free" 0 t;
  check_int "pending" 2 (Mirror.pending_count m)

let test_mirror_pending_drains_before_read () =
  let _clock, d1, _, m = make_mirror () in
  Mirror.write m ~sync:0 ~sector:9 (payload 512);
  check_bytes "drain before read" (payload 512) (Mirror.read m ~sector:9 ~count:1);
  check_int "queue empty" 0 (Mirror.pending_count m);
  check_bytes "applied to drive" (payload 512) (Dev.peek d1 ~sector:9 ~count:1)

let test_mirror_crash_discards_pending () =
  let _clock, d1, d2, m = make_mirror () in
  Mirror.write m ~sync:0 ~sector:9 (payload 512);
  Mirror.crash m;
  check_bytes "drive1 untouched" (Bytes.make 512 '\000') (Dev.peek d1 ~sector:9 ~count:1);
  check_bytes "drive2 untouched" (Bytes.make 512 '\000') (Dev.peek d2 ~sector:9 ~count:1)

let test_mirror_sync_one_survives_crash_on_primary () =
  let _clock, d1, d2, m = make_mirror () in
  Mirror.write m ~sync:1 ~sector:9 (payload 512);
  Mirror.crash m;
  check_bytes "primary has data" (payload 512) (Dev.peek d1 ~sector:9 ~count:1);
  check_bytes "replica lost it" (Bytes.make 512 '\000') (Dev.peek d2 ~sector:9 ~count:1)

let test_mirror_read_failover () =
  let _clock, d1, _, m = make_mirror () in
  Mirror.write m ~sync:2 ~sector:9 (payload 512);
  Dev.fail d1;
  check_bytes "served from replica" (payload 512) (Mirror.read m ~sector:9 ~count:1);
  check_int "one live drive" 1 (Mirror.live_count m)

let test_mirror_no_live_drive () =
  let _clock, d1, d2, m = make_mirror () in
  Dev.fail d1;
  Dev.fail d2;
  (try
     ignore (Mirror.read m ~sector:0 ~count:1);
     Alcotest.fail "expected No_live_drive"
   with Mirror.No_live_drive -> ())

let test_mirror_sync_clamped () =
  (* asking for more synchronous replicas than exist just means "all" *)
  let _clock, d1, d2, m = make_mirror () in
  Mirror.write m ~sync:99 ~sector:3 (payload 512);
  check_int "no pending writes" 0 (Mirror.pending_count m);
  check_bytes "both written" (payload 512) (Dev.peek d1 ~sector:3 ~count:1);
  check_bytes "both written" (payload 512) (Dev.peek d2 ~sector:3 ~count:1)

let test_mirror_recover () =
  let _clock, d1, d2, m = make_mirror () in
  Mirror.write m ~sync:2 ~sector:9 (payload 512);
  Dev.fail d2;
  Mirror.write m ~sync:1 ~sector:10 (payload 512);
  Mirror.recover m;
  check_bool "replica live again" false (Dev.is_failed d2);
  check_bytes "replica caught up" (payload 512) (Dev.peek d2 ~sector:10 ~count:1);
  ignore d1

let test_mirror_write_skips_failed_drive () =
  let _clock, d1, d2, m = make_mirror () in
  Dev.fail d1;
  Mirror.write m ~sync:2 ~sector:4 (payload 512);
  check_bytes "live replica written" (payload 512) (Dev.peek d2 ~sector:4 ~count:1);
  check_bytes "failed drive untouched" (Bytes.make 512 '\000') (Dev.peek d1 ~sector:4 ~count:1)

let test_mirror_degraded_stats () =
  let _clock, d1, _, m = make_mirror () in
  Mirror.write m ~sync:2 ~sector:9 (payload 512);
  check_int "no degraded reads yet" 0 (Amoeba_sim.Stats.count (Mirror.stats m) "degraded_reads");
  Dev.fail d1;
  ignore (Mirror.read m ~sector:9 ~count:1);
  ignore (Mirror.read m ~sector:9 ~count:1);
  check_int "degraded reads counted" 2 (Amoeba_sim.Stats.count (Mirror.stats m) "degraded_reads");
  Mirror.recover m;
  check_int "resync counted" 1 (Amoeba_sim.Stats.count (Mirror.stats m) "resyncs");
  ignore (Mirror.read m ~sector:9 ~count:1);
  check_int "healthy again" 2 (Amoeba_sim.Stats.count (Mirror.stats m) "degraded_reads")

let test_mirror_failover_on_transient_error () =
  (* The primary is live but its read fails mid-flight (soft media
     error); the next drive serves the data and the failover is
     visible in the mirror's stats. *)
  let _clock, d1, _, m = make_mirror () in
  Mirror.write m ~sync:2 ~sector:9 (payload 512);
  let once = ref true in
  Dev.set_fault_hook d1
    (Some
       (fun ~sector:_ ~count:_ ~write ->
         if write || not !once then false
         else begin
           once := false;
           true
         end));
  check_bytes "replica served the read" (payload 512) (Mirror.read m ~sector:9 ~count:1);
  check_int "failover counted" 1 (Amoeba_sim.Stats.count (Mirror.stats m) "read_failovers");
  check_int "primary logged the soft error" 1
    (Amoeba_sim.Stats.count (Dev.stats d1) "transient_errors");
  check_bytes "primary recovered" (payload 512) (Mirror.read m ~sector:9 ~count:1);
  check_int "no second failover" 1 (Amoeba_sim.Stats.count (Mirror.stats m) "read_failovers")

let test_device_fault_hook_removable () =
  let clock = Clock.create () in
  let d = Dev.create ~id:"hook" ~geometry:(Geometry.small ~sectors:64) ~clock in
  Dev.set_fault_hook d (Some (fun ~sector:_ ~count:_ ~write:_ -> true));
  (try
     ignore (Dev.read d ~sector:0 ~count:1);
     Alcotest.fail "expected transient Failure"
   with Dev.Failure _ -> ());
  Dev.set_fault_hook d None;
  ignore (Dev.read d ~sector:0 ~count:1)

let test_mirror_pending_to_failed_drive_dropped () =
  let _clock, _, d2, m = make_mirror () in
  Mirror.write m ~sync:1 ~sector:4 (payload 512);
  Dev.fail d2;
  Mirror.drain m;
  Dev.repair d2;
  check_bytes "write to failed drive dropped" (Bytes.make 512 '\000') (Dev.peek d2 ~sector:4 ~count:1)

(* ---- dirty-sector tracking ---- *)

module Dirty = Amoeba_disk.Dirty

let test_dirty_mark_clear () =
  let d = Dirty.create ~sectors:64 in
  check_int "starts clean" 0 (Dirty.remaining d);
  Dirty.mark d ~sector:10 ~count:4;
  check_int "four dirty" 4 (Dirty.remaining d);
  Dirty.mark d ~sector:12 ~count:4;
  check_int "overlap is idempotent" 6 (Dirty.remaining d);
  check_bool "range dirty" true (Dirty.is_dirty d ~sector:8 ~count:4);
  check_bool "disjoint range clean" false (Dirty.is_dirty d ~sector:0 ~count:8);
  Dirty.clear d ~sector:10 ~count:3;
  check_int "partial clear" 3 (Dirty.remaining d);
  Dirty.clear d ~sector:0 ~count:64;
  check_int "all clean" 0 (Dirty.remaining d);
  check_bool "nothing left" false (Dirty.is_dirty d ~sector:0 ~count:64)

let test_dirty_mark_all () =
  let d = Dirty.create ~sectors:128 in
  Dirty.mark_all d;
  check_int "everything dirty" 128 (Dirty.remaining d);
  check_bool "any range dirty" true (Dirty.is_dirty d ~sector:77 ~count:1)

let test_dirty_next_run () =
  let d = Dirty.create ~sectors:64 in
  check_bool "clean map has no run" true (Dirty.next_run d ~limit:16 = None);
  Dirty.mark d ~sector:4 ~count:10;
  (match Dirty.next_run d ~limit:8 with
  | Some (s, c) ->
    check_int "run start" 4 s;
    check_int "run bounded by limit" 8 c
  | None -> Alcotest.fail "expected a run");
  (* the run was not cleared: the same call repeats until the caller clears *)
  (match Dirty.next_run d ~limit:8 with
  | Some (s, _) -> check_bool "cursor advanced past the first run" true (s > 4)
  | None -> Alcotest.fail "expected the remainder");
  Dirty.clear d ~sector:4 ~count:10;
  check_bool "cleared map has no run" true (Dirty.next_run d ~limit:8 = None)

let test_dirty_next_run_wraps () =
  let d = Dirty.create ~sectors:32 in
  Dirty.mark d ~sector:0 ~count:2;
  Dirty.mark d ~sector:28 ~count:4;
  (* scan from the start: low run, then high run, advancing the cursor *)
  (match Dirty.next_run d ~limit:16 with
  | Some (s, c) ->
    check_int "low run first" 0 s;
    check_int "low run length" 2 c;
    Dirty.clear d ~sector:s ~count:c
  | None -> Alcotest.fail "expected the low run");
  (match Dirty.next_run d ~limit:16 with
  | Some (s, c) ->
    check_int "high run next" 28 s;
    check_int "stops at the end" 4 c;
    Dirty.clear d ~sector:s ~count:c
  | None -> Alcotest.fail "expected the high run");
  (* the cursor sits at the end of the map: a fresh mark at the bottom
     is only reachable by wrapping around *)
  Dirty.mark d ~sector:1 ~count:1;
  match Dirty.next_run d ~limit:16 with
  | Some (s, c) ->
    check_int "wrapped to the low mark" 1 s;
    check_int "single sector" 1 c
  | None -> Alcotest.fail "expected the wrapped run"

(* ---- online resync ---- *)

let state_label m = Mirror.sync_state_label m

let test_mirror_sync_state_transitions () =
  let _clock, _, d2, m = make_mirror () in
  check_string "starts clean" "clean" (state_label m);
  Dev.fail d2;
  check_string "offline drive = degraded" "degraded" (state_label m);
  Mirror.rejoin m;
  check_string "rejoined fully dirty" "resyncing:1024" (state_label m);
  let rec drain () = if Mirror.resync_step ~batch:256 m > 0 then drain () in
  drain ();
  check_string "drained back to clean" "clean" (state_label m);
  check_int "one rejoin" 1 (Stats.count (Mirror.stats m) "rejoins");
  check_int "one resync completed" 1 (Stats.count (Mirror.stats m) "resyncs_completed")

let test_mirror_resync_step_bounded () =
  let clock, _, d2, m = make_mirror () in
  Dev.fail d2;
  Mirror.rejoin m;
  let before = Clock.now clock in
  let copied = Mirror.resync_step ~batch:64 m in
  check_int "one bounded batch" 64 copied;
  check_bool "step charged on the clock" true (Clock.now clock > before);
  (match Mirror.sync_state m with
  | Mirror.Resyncing { sectors_remaining } -> check_int "backlog shrank by one batch" (1024 - 64) sectors_remaining
  | _ -> Alcotest.fail "expected Resyncing");
  check_int "sectors counted" 64 (Stats.count (Mirror.stats m) "resync_sectors")

let test_mirror_resync_converges_bytes () =
  let _clock, d1, d2, m = make_mirror () in
  Mirror.write m ~sync:2 ~sector:100 (payload 1024);
  Dev.fail d2;
  (* writes landing during the outage exist only on the survivor *)
  Mirror.write m ~sync:1 ~sector:200 (payload 512);
  Mirror.rejoin m;
  let rec drain () = if Mirror.resync_step ~batch:128 m > 0 then drain () in
  drain ();
  check_string "clean" "clean" (state_label m);
  for sector = 0 to 1023 do
    check_bytes
      (Printf.sprintf "sector %d identical" sector)
      (Dev.peek d1 ~sector ~count:1) (Dev.peek d2 ~sector ~count:1)
  done

let test_mirror_read_repair () =
  (* Fail the READ PRIMARY: after the rejoin it is first in read order
     but fully dirty, so a foreground read must skip it, serve the
     survivor, and write the bytes back. *)
  let _clock, d1, _, m = make_mirror () in
  Mirror.write m ~sync:2 ~sector:500 (payload 512);
  Dev.fail d1;
  Mirror.write m ~sync:1 ~sector:500 (payload 1024);
  Mirror.rejoin m;
  check_bytes "read serves current bytes" (payload 1024) (Mirror.read m ~sector:500 ~count:2);
  check_int "fall-through counted" 1 (Stats.count (Mirror.stats m) "resync_fallthroughs");
  check_int "read-repair counted" 1 (Stats.count (Mirror.stats m) "read_repairs");
  check_bytes "repair landed on the rejoined drive" (payload 1024) (Dev.peek d1 ~sector:500 ~count:2);
  (* the repaired region is clean now: the same read no longer falls through *)
  ignore (Mirror.read m ~sector:500 ~count:2);
  check_int "no second fall-through" 1 (Stats.count (Mirror.stats m) "resync_fallthroughs")

let test_mirror_foreground_write_clears_dirty () =
  let _clock, _, d2, m = make_mirror () in
  Dev.fail d2;
  Mirror.rejoin m;
  Mirror.write m ~sync:2 ~sector:40 (payload 1024);
  (match Mirror.sync_state m with
  | Mirror.Resyncing { sectors_remaining } ->
    check_int "foreground write shrank the backlog" (1024 - 2) sectors_remaining
  | _ -> Alcotest.fail "expected Resyncing");
  check_bytes "write landed on the resyncing drive" (payload 1024) (Dev.peek d2 ~sector:40 ~count:2)

let test_mirror_resync_fsck_at_checkpoints () =
  (* At every point of a paced resync the file system the mirror carries
     must pass its own audit: reads fall through to clean copies, so the
     inode scan never sees stale bytes. *)
  let rig = make_rig ~sectors:2048 () in
  let m = rig.mirror in
  Bullet_core.Server.format m ~max_files:64;
  let server, _ = Result.get_ok (Bullet_core.Server.start m) in
  let transport = Amoeba_rpc.Transport.create ~clock:rig.clock in
  Bullet_core.Proto.serve server transport;
  let client = Bullet_core.Client.connect transport (Bullet_core.Server.port server) in
  let caps =
    List.init 8 (fun i -> Bullet_core.Client.create client ~p_factor:2 (payload (4096 + (512 * i))))
  in
  Dev.fail rig.drive1;
  (* churn during the outage so the rejoined drive is genuinely stale *)
  let (_ : Amoeba_cap.Capability.t) =
    Bullet_core.Client.create client ~p_factor:2 (payload 8192)
  in
  Mirror.rejoin m;
  let audit () =
    match Bullet_core.Inode_table.load m with
    | Ok (_, report) -> check_int "no repairs needed" 0 (List.length report.Bullet_core.Inode_table.repaired)
    | Error e -> Alcotest.failf "fsck failed mid-resync: %s" e
  in
  audit ();
  let steps = ref 0 in
  while Mirror.resync_step ~batch:128 m > 0 do
    incr steps;
    audit ()
  done;
  check_bool "resync made progress" true (!steps > 0);
  check_string "clean at the end" "clean" (state_label m);
  (* every pre-outage file still reads back *)
  List.iteri
    (fun i cap ->
      check_bytes
        (Printf.sprintf "file %d intact" i)
        (payload (4096 + (512 * i)))
        (Bullet_core.Client.read client cap))
    caps

let suite =
  ( "disk",
    [
      Alcotest.test_case "geometry capacity" `Quick test_capacity;
      Alcotest.test_case "geometry sectors_for rounds up" `Quick test_sectors_for;
      Alcotest.test_case "geometry sequential cheaper" `Quick test_sequential_cheaper;
      Alcotest.test_case "geometry write penalty" `Quick test_write_penalty;
      Alcotest.test_case "geometry transfer linear" `Quick test_transfer_linear;
      Alcotest.test_case "device read/write roundtrip" `Quick test_rw_roundtrip;
      Alcotest.test_case "device starts zeroed" `Quick test_fresh_device_zeroed;
      Alcotest.test_case "device write wants whole sectors" `Quick test_write_requires_sector_multiple;
      Alcotest.test_case "device range check" `Quick test_out_of_range_rejected;
      Alcotest.test_case "device read charges time" `Quick test_read_charges_time;
      Alcotest.test_case "device sequential cheaper" `Quick test_sequential_read_cheaper_on_device;
      Alcotest.test_case "device seek statistics" `Quick test_seek_stats;
      Alcotest.test_case "device fail and repair" `Quick test_fail_and_repair;
      Alcotest.test_case "device bad sector" `Quick test_bad_sector;
      Alcotest.test_case "device whole-disk copy" `Quick test_copy_from;
      Alcotest.test_case "device peek/poke untimed" `Quick test_peek_poke_free;
      Alcotest.test_case "mirror writes all drives" `Quick test_mirror_writes_both;
      Alcotest.test_case "mirror parallel sync writes" `Quick test_mirror_sync_parallel_equals_one;
      Alcotest.test_case "mirror sync=0 is free" `Quick test_mirror_sync_zero_costs_nothing;
      Alcotest.test_case "mirror drains pending before read" `Quick test_mirror_pending_drains_before_read;
      Alcotest.test_case "mirror crash discards pending" `Quick test_mirror_crash_discards_pending;
      Alcotest.test_case "mirror sync=1 survives crash on primary" `Quick
        test_mirror_sync_one_survives_crash_on_primary;
      Alcotest.test_case "mirror read failover" `Quick test_mirror_read_failover;
      Alcotest.test_case "mirror no live drive" `Quick test_mirror_no_live_drive;
      Alcotest.test_case "mirror sync clamped to live drives" `Quick test_mirror_sync_clamped;
      Alcotest.test_case "mirror recover copies disk" `Quick test_mirror_recover;
      Alcotest.test_case "mirror write skips failed drive" `Quick test_mirror_write_skips_failed_drive;
      Alcotest.test_case "mirror pending to failed drive dropped" `Quick
        test_mirror_pending_to_failed_drive_dropped;
      Alcotest.test_case "mirror degraded-read and resync stats" `Quick test_mirror_degraded_stats;
      Alcotest.test_case "mirror failover on transient error" `Quick
        test_mirror_failover_on_transient_error;
      Alcotest.test_case "device fault hook install/remove" `Quick test_device_fault_hook_removable;
      Alcotest.test_case "dirty mark/clear/remaining" `Quick test_dirty_mark_clear;
      Alcotest.test_case "dirty mark_all" `Quick test_dirty_mark_all;
      Alcotest.test_case "dirty next_run bounded, not clearing" `Quick test_dirty_next_run;
      Alcotest.test_case "dirty next_run wraps around" `Quick test_dirty_next_run_wraps;
      Alcotest.test_case "mirror sync-state transitions" `Quick test_mirror_sync_state_transitions;
      Alcotest.test_case "mirror resync step is bounded and timed" `Quick
        test_mirror_resync_step_bounded;
      Alcotest.test_case "mirror resync converges byte for byte" `Quick
        test_mirror_resync_converges_bytes;
      Alcotest.test_case "mirror read-repair during resync" `Quick test_mirror_read_repair;
      Alcotest.test_case "mirror foreground write clears dirty" `Quick
        test_mirror_foreground_write_clears_dirty;
      Alcotest.test_case "mirror fsck passes at every resync checkpoint" `Quick
        test_mirror_resync_fsck_at_checkpoints;
    ] )
