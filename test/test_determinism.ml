(* The repo's core invariant, asserted directly: running the FAULTS
   bench scenario twice in one process — same plans, same seeds — must
   produce byte-identical stats dumps. CI diffs two separate processes;
   this test catches in-process leaks (global mutable state, hash-order
   dependence) that a fresh-process diff can hide. *)

open Helpers
module E = Experiments

let dump_availability (a : E.availability_report) =
  Printf.sprintf "avail ops=%d failed=%d p99=%.6f/%.6f degraded=%d resync=%.6f" a.E.avail_ops
    a.E.avail_failed a.E.normal_p99_ms a.E.degraded_p99_ms a.E.degraded_reads a.E.resync_ms

let dump_resync (points : E.resync_point list) =
  String.concat ";"
    (List.map (fun (p : E.resync_point) -> Printf.sprintf "%dMB=%.6f" p.E.disk_mb p.E.resync_ms) points)

let dump_reboot (points : E.reboot_point list) =
  String.concat ";"
    (List.map
       (fun (p : E.reboot_point) -> Printf.sprintf "%d=%.6f" p.E.table_files p.E.reboot_ms)
       points)

let dump_loss (points : E.loss_point list) =
  String.concat ";"
    (List.map
       (fun (p : E.loss_point) ->
         Printf.sprintf
           "loss=%.2f ops=%d done=%d retries=%d timeouts=%d dups=%d goodput=%.6f \
            p50=%.6f p95=%.6f p99=%.6f"
           p.E.loss_pct p.E.loss_ops p.E.loss_completed p.E.loss_retries p.E.loss_timeouts
           p.E.duplicate_executions p.E.goodput_kbs p.E.loss_p50_ms p.E.loss_p95_ms p.E.loss_p99_ms)
       points)

let dump_crash (c : E.crash_report) =
  Printf.sprintf "crash ops=%d failed=%d outage=%.6f reboot=%.6f retries=%d precrash=%b"
    c.E.crash_ops c.E.crash_failed c.E.outage_ms c.E.crash_reboot_ms c.E.crash_retries
    c.E.pre_crash_file_ok

(* One pass over the faults scenario, sweeps trimmed to keep the double
   run quick; every record field lands in the dump. *)
let faults_dump () =
  String.concat "\n"
    [
      dump_availability (E.fault_availability ());
      dump_resync (E.resync_sweep ~sector_counts:[ 16_384; 32_768 ] ());
      dump_reboot (E.reboot_sweep ~max_files_list:[ 1_024; 8_192 ] ());
      dump_loss (E.loss_sweep ~loss_rates:[ 0.02; 0.05 ] ());
      dump_crash (E.crash_recovery ());
    ]

let test_faults_double_run () =
  let first = faults_dump () in
  let second = faults_dump () in
  check_string "same plan, same bytes" first second

(* The RESYNC scenario exercises the online resync scheduler, the WAN
   link faults and the directory-pair crash; its windowed percentiles
   and canonical replica dumps must likewise be a pure function of the
   plans. *)
let dump_resync_windows (r : E.resync_report) =
  String.concat "\n"
    (Printf.sprintf
       "resync ops=%d failed=%d repairs=%d fallthroughs=%d steps=%d sectors=%d \
        online=%.6f step=%.6f normal=%.6f max=%.6f clean=%b"
       r.E.rw_ops r.E.rw_failed r.E.rw_read_repairs r.E.rw_fallthroughs r.E.rw_resync_steps
       r.E.rw_resync_sectors r.E.rw_online_resync_ms r.E.rw_step_cost_ms r.E.rw_normal_max_ms
       r.E.rw_max_op_ms r.E.rw_clean_at_end
    :: List.map
         (fun (w : E.resync_window) ->
           Printf.sprintf "w%d %s rem=%d ops=%d p50=%.6f p95=%.6f p99=%.6f" w.E.w_start_ms
             w.E.w_state w.E.w_remaining w.E.w_ops w.E.w_p50_ms w.E.w_p95_ms w.E.w_p99_ms)
         r.E.rw_windows)

let dump_wan (w : E.wan_fault_report) =
  Printf.sprintf
    "wan wide=%d/%d part=%d/%d healed=%b local=%d/%d drops=%d/%d/%d retries=%d quiet=%d faulted=%d"
    w.E.wf_wide_failed w.E.wf_wide_ops w.E.wf_partition_failed w.E.wf_partition_ops w.E.wf_healed_ok
    w.E.wf_local_failed w.E.wf_local_ops w.E.wf_link_request_drops w.E.wf_link_reply_drops
    w.E.wf_partition_drops w.E.wf_retries w.E.wf_quiet_local_us w.E.wf_faulted_local_us

let dump_pair (p : E.pair_report) =
  Printf.sprintf "pair ops=%d failed=%d outage=%d diverged=%s match=%b healed=%b" p.E.pr_ops
    p.E.pr_failed p.E.pr_outage_ops
    (match p.E.pr_diverged with None -> "none" | Some path -> path)
    p.E.pr_state_match p.E.pr_healed

let resync_dump () =
  String.concat "\n"
    [
      dump_resync_windows (E.resync_experiment ());
      dump_wan (E.wan_fault_experiment ());
      dump_pair (E.dir_pair_recovery ());
    ]

let test_resync_double_run () =
  let first = resync_dump () in
  let second = resync_dump () in
  check_string "same plan, same bytes" first second

let suite =
  ( "determinism",
    [
      Alcotest.test_case "faults scenario twice, byte-identical" `Slow test_faults_double_run;
      Alcotest.test_case "resync scenario twice, byte-identical" `Slow test_resync_double_run;
    ] )
