(* The repo's core invariant, asserted directly: running the FAULTS
   bench scenario twice in one process — same plans, same seeds — must
   produce byte-identical stats dumps. CI diffs two separate processes;
   this test catches in-process leaks (global mutable state, hash-order
   dependence) that a fresh-process diff can hide. *)

open Helpers
module E = Experiments

let dump_availability (a : E.availability_report) =
  Printf.sprintf "avail ops=%d failed=%d p99=%.6f/%.6f degraded=%d resync=%.6f" a.E.avail_ops
    a.E.avail_failed a.E.normal_p99_ms a.E.degraded_p99_ms a.E.degraded_reads a.E.resync_ms

let dump_resync (points : E.resync_point list) =
  String.concat ";"
    (List.map (fun (p : E.resync_point) -> Printf.sprintf "%dMB=%.6f" p.E.disk_mb p.E.resync_ms) points)

let dump_reboot (points : E.reboot_point list) =
  String.concat ";"
    (List.map
       (fun (p : E.reboot_point) -> Printf.sprintf "%d=%.6f" p.E.table_files p.E.reboot_ms)
       points)

let dump_loss (points : E.loss_point list) =
  String.concat ";"
    (List.map
       (fun (p : E.loss_point) ->
         Printf.sprintf
           "loss=%.2f ops=%d done=%d retries=%d timeouts=%d dups=%d goodput=%.6f \
            p50=%.6f p95=%.6f p99=%.6f"
           p.E.loss_pct p.E.loss_ops p.E.loss_completed p.E.loss_retries p.E.loss_timeouts
           p.E.duplicate_executions p.E.goodput_kbs p.E.loss_p50_ms p.E.loss_p95_ms p.E.loss_p99_ms)
       points)

let dump_crash (c : E.crash_report) =
  Printf.sprintf "crash ops=%d failed=%d outage=%.6f reboot=%.6f retries=%d precrash=%b"
    c.E.crash_ops c.E.crash_failed c.E.outage_ms c.E.crash_reboot_ms c.E.crash_retries
    c.E.pre_crash_file_ok

(* One pass over the faults scenario, sweeps trimmed to keep the double
   run quick; every record field lands in the dump. *)
let faults_dump () =
  String.concat "\n"
    [
      dump_availability (E.fault_availability ());
      dump_resync (E.resync_sweep ~sector_counts:[ 16_384; 32_768 ] ());
      dump_reboot (E.reboot_sweep ~max_files_list:[ 1_024; 8_192 ] ());
      dump_loss (E.loss_sweep ~loss_rates:[ 0.02; 0.05 ] ());
      dump_crash (E.crash_recovery ());
    ]

let test_faults_double_run () =
  let first = faults_dump () in
  let second = faults_dump () in
  check_string "same plan, same bytes" first second

let suite =
  ( "determinism",
    [ Alcotest.test_case "faults scenario twice, byte-identical" `Slow test_faults_double_run ] )
