(* The two-phase commit layer: WAL codec fuzz, the directory
   participant's intent locking and idempotent decisions, the orphan
   fsck, and the full TXN experiment's byte-determinism. *)

open Helpers
module Cap = Amoeba_cap.Capability
module Port = Amoeba_cap.Port
module Rights = Amoeba_cap.Rights
module Prng = Amoeba_sim.Prng
module Wal = Amoeba_txn.Wal
module Txn = Amoeba_txn.Txn
module Dir = Amoeba_dir.Dir_server
module Client = Bullet_core.Client
module Server = Bullet_core.Server
module Fsck = Bullet_core.Fsck
module Status = Amoeba_rpc.Status

(* ---- WAL codec ---- *)

let random_cap prng =
  Cap.v
    ~port:(Port.of_int64 (Prng.next_int64 prng))
    ~obj:(Prng.int prng 100_000)
    ~rights:(Rights.of_int (Prng.int prng 256))
    ~check:(Prng.next_int64 prng)

let random_name prng = Bytes.to_string (Prng.bytes prng (Prng.int prng 40))

let random_record prng =
  let txn = Prng.int prng 1_000_000 in
  match Prng.int prng 4 with
  | 0 -> Wal.Begin txn
  | 1 ->
    let action =
      match Prng.int prng 3 with
      | 0 -> Wal.Bullet_create (random_cap prng)
      | 1 -> Wal.Bullet_delete (random_cap prng)
      | _ ->
        let op =
          match Prng.int prng 3 with
          | 0 -> Dir.Txn_enter (random_cap prng)
          | 1 -> Dir.Txn_replace (random_cap prng)
          | _ -> Dir.Txn_remove
        in
        Wal.Dir_intent { dir = random_cap prng; name = random_name prng; op }
    in
    Wal.Prepared (txn, action)
  | 2 -> Wal.Commit txn
  | _ -> Wal.Done txn

(* 1k SplitMix64-driven records through encode -> decode: every intent
   record shape, every tag, names of every length the codec allows. *)
let test_wal_codec_roundtrip () =
  let prng = Prng.create ~seed:0x7E57C0DEL in
  for i = 1 to 1_000 do
    let record = random_record prng in
    match Wal.decode_record (Wal.encode_record record) with
    | Ok decoded ->
      if decoded <> record then Alcotest.failf "roundtrip mismatch at record %d" i
    | Error e -> Alcotest.failf "record %d failed to decode: %s" i e
  done

let sample_record =
  Wal.Prepared
    ( 7,
      Wal.Dir_intent
        {
          dir = Cap.v ~port:(Port.of_int64 42L) ~obj:3 ~rights:Rights.all ~check:99L;
          name = "victim";
          op = Dir.Txn_enter (Cap.v ~port:(Port.of_int64 8L) ~obj:5 ~rights:Rights.all ~check:1L);
        } )

let test_wal_decode_rejects () =
  let encoded = Wal.encode_record sample_record in
  for len = 0 to Bytes.length encoded - 1 do
    match Wal.decode_record (Bytes.sub encoded 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d bytes decoded" len
  done;
  (match Wal.decode_record (Bytes.cat encoded (Bytes.of_string "x")) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing byte accepted");
  let bad_tag = Bytes.copy encoded in
  Bytes.set bad_tag 0 '\009';
  match Wal.decode_record bad_tag with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown record tag accepted"

let test_wal_log_order () =
  let wal = Wal.create () in
  let records =
    [ Wal.Begin 1; sample_record; Wal.Commit 7; Wal.Done 7; Wal.Begin 2 ]
  in
  List.iter (Wal.append wal) records;
  check_int "length" 5 (Wal.length wal);
  match Wal.records wal with
  | Ok decoded -> if decoded <> records then Alcotest.fail "decode order differs from append order"
  | Error e -> Alcotest.failf "log failed to decode: %s" e

(* ---- the directory participant ---- *)

type dir_rig = { bullet : bullet_rig; dirs : Dir.t; root : Cap.t }

let make_dir () =
  let bullet = make_bullet () in
  let dirs = Dir.create ~store:bullet.client () in
  { bullet; dirs; root = Dir.root dirs }

let file rig contents = Client.create rig.bullet.client (Bytes.of_string contents)

let test_prepare_locks_binding () =
  let rig = make_dir () in
  let bound = file rig "bound" in
  ok_exn (Dir.enter rig.dirs rig.root "held" bound);
  let fresh = file rig "fresh" in
  ok_exn (Dir.txn_prepare rig.dirs ~txn:1 rig.root "held" (Dir.Txn_replace fresh));
  (* the intent is a lock: every conflicting path refuses with Exists *)
  expect_error Status.Exists (Dir.enter rig.dirs rig.root "held" fresh);
  expect_error Status.Exists (Dir.replace rig.dirs rig.root "held" fresh);
  expect_error Status.Exists (Dir.remove_name rig.dirs rig.root "held");
  expect_error Status.Exists (Dir.txn_prepare rig.dirs ~txn:2 rig.root "held" Dir.Txn_remove);
  check_int "one pending intent" 1 (Dir.txn_pending_count rig.dirs);
  (* abort releases it; aborting again is the presumed-abort Ok *)
  ok_exn (Dir.txn_abort rig.dirs ~txn:1);
  ok_exn (Dir.txn_abort rig.dirs ~txn:1);
  check_int "no pending intents" 0 (Dir.txn_pending_count rig.dirs);
  ok_exn (Dir.replace rig.dirs rig.root "held" fresh |> Result.map ignore)

let test_prepare_votes_no () =
  let rig = make_dir () in
  let cap = file rig "x" in
  ok_exn (Dir.enter rig.dirs rig.root "taken" cap);
  expect_error Status.Exists (Dir.txn_prepare rig.dirs ~txn:1 rig.root "taken" (Dir.Txn_enter cap));
  expect_error Status.Not_found (Dir.txn_prepare rig.dirs ~txn:1 rig.root "ghost" Dir.Txn_remove)

let test_commit_idempotent_and_amnesiac () =
  let rig = make_dir () in
  let cap = file rig "payload" in
  ok_exn (Dir.txn_prepare rig.dirs ~txn:9 rig.root "n" (Dir.Txn_enter cap));
  ok_exn (Dir.txn_commit rig.dirs ~txn:9 rig.root "n" (Dir.Txn_enter cap));
  (* a replayed decision answers Ok without mutating *)
  ok_exn (Dir.txn_commit rig.dirs ~txn:9 rig.root "n" (Dir.Txn_enter cap));
  check_bool "bound once" true (Cap.equal cap (ok_exn (Dir.lookup rig.dirs rig.root "n")));
  (* an amnesiac participant (no prepare ever seen) still complies,
     because the decision carries the full intent *)
  let cap2 = file rig "other" in
  ok_exn (Dir.txn_commit rig.dirs ~txn:10 rig.root "m" (Dir.Txn_enter cap2));
  check_bool "amnesiac commit applied" true
    (Cap.equal cap2 (ok_exn (Dir.lookup rig.dirs rig.root "m")));
  ok_exn (Dir.txn_commit rig.dirs ~txn:11 rig.root "m" Dir.Txn_remove);
  ok_exn (Dir.txn_commit rig.dirs ~txn:11 rig.root "m" Dir.Txn_remove);
  expect_error Status.Not_found (Dir.lookup rig.dirs rig.root "m")

let test_checkpoint_carries_intents () =
  let rig = make_dir () in
  let cap = file rig "locked" in
  ok_exn (Dir.txn_prepare rig.dirs ~txn:3 rig.root "pending" (Dir.Txn_enter cap));
  let checkpoint = ok_exn (Dir.checkpoint rig.dirs) in
  let healed = ok_exn (Dir.restore ~store:rig.bullet.client checkpoint) in
  check_int "intent survives the heal" 1 (Dir.txn_pending_count healed);
  expect_error Status.Exists (Dir.enter healed (Dir.root healed) "pending" cap);
  ok_exn (Dir.txn_abort healed ~txn:3);
  check_int "abort clears the restored intent" 0 (Dir.txn_pending_count healed)

(* ---- orphan fsck ---- *)

let test_fsck_finds_seeded_orphan () =
  let b = make_bullet () in
  let kept1 = Client.create b.client (payload 512) in
  let kept2 = Client.create b.client (payload 1_024) in
  let orphan = Client.create b.client (payload 256) in
  let reachable = [ kept1; kept2 ] in
  (match Fsck.orphans b.server ~reachable with
  | [ obj ] -> check_int "the seeded orphan" orphan.Cap.obj obj
  | objs -> Alcotest.failf "expected one orphan, got %d" (List.length objs));
  check_int "gc collects it" 1 (Fsck.gc b.server ~reachable);
  check_bool "nothing left to collect" true (Fsck.orphans b.server ~reachable = []);
  (match Client.read b.client orphan with
  | (_ : bytes) -> Alcotest.fail "orphan still readable after gc"
  | exception Status.Error _ -> ());
  check_bytes "kept objects untouched" (payload 512) (Client.read b.client kept1)

let test_fsck_spares_pending () =
  let b = make_bullet () in
  let kept = Client.create b.client (payload 512) in
  let prepared = ok_exn (Server.txn_prepare_create b.server ~txn:5 (payload 128)) in
  (* in-flight prepares are the coordinator's to decide, not fsck's *)
  check_bool "pending object spared" true (Fsck.orphans b.server ~reachable:[ kept ] = []);
  ok_exn (Server.txn_abort_all b.server ~txn:5);
  check_bool "aborted prepare leaves nothing" true
    (Fsck.orphans b.server ~reachable:[ kept ] = []);
  ignore prepared

(* ---- the experiment, twice ---- *)

let test_txn_experiment_deterministic () =
  let first = Experiments.txn_dump (Experiments.txn_experiment ()) in
  let second = Experiments.txn_dump (Experiments.txn_experiment ()) in
  check_string "double run is byte-identical" first second

let suite =
  ( "txn",
    [
      Alcotest.test_case "wal codec round-trips 1k fuzzed records" `Quick
        test_wal_codec_roundtrip;
      Alcotest.test_case "wal decode rejects damage" `Quick test_wal_decode_rejects;
      Alcotest.test_case "wal decodes in append order" `Quick test_wal_log_order;
      Alcotest.test_case "prepare locks the binding" `Quick test_prepare_locks_binding;
      Alcotest.test_case "prepare votes no on conflicts" `Quick test_prepare_votes_no;
      Alcotest.test_case "commit is idempotent, even amnesiac" `Quick
        test_commit_idempotent_and_amnesiac;
      Alcotest.test_case "checkpoint carries intents through a heal" `Quick
        test_checkpoint_carries_intents;
      Alcotest.test_case "fsck finds a hand-seeded orphan" `Quick test_fsck_finds_seeded_orphan;
      Alcotest.test_case "fsck spares in-flight prepares" `Quick test_fsck_spares_pending;
      Alcotest.test_case "TXN experiment is byte-deterministic" `Slow
        test_txn_experiment_deterministic;
    ] )
