(* Tests for the Bullet wire protocol and client stubs. *)

open Helpers
module Client = Bullet_core.Client
module Proto = Bullet_core.Proto
module Server = Bullet_core.Server
module Message = Amoeba_rpc.Message
module Status = Amoeba_rpc.Status
module Clock = Amoeba_sim.Clock

let test_client_roundtrip () =
  let b = make_bullet () in
  let cap = Client.create b.client (payload 500) in
  check_int "size" 500 (Client.size b.client cap);
  check_bytes "read" (payload 500) (Client.read b.client cap);
  Client.delete b.client cap;
  (try
     ignore (Client.read b.client cap);
     Alcotest.fail "expected error"
   with Status.Error Status.No_such_object -> ())

let test_client_read_is_two_transactions () =
  (* the paper: SIZE first, then READ *)
  let b = make_bullet () in
  let cap = Client.create b.client (payload 10) in
  let stats = Amoeba_rpc.Transport.stats b.transport in
  let before = Amoeba_sim.Stats.count stats "transactions" in
  let (_ : bytes) = Client.read b.client cap in
  check_int "two RPCs" (before + 2) (Amoeba_sim.Stats.count stats "transactions");
  let before = Amoeba_sim.Stats.count stats "transactions" in
  let (_ : bytes) = Client.read_now b.client cap in
  check_int "one RPC when size known" (before + 1) (Amoeba_sim.Stats.count stats "transactions")

let test_client_modify_append_truncate () =
  let b = make_bullet () in
  let cap = Client.create b.client (Bytes.of_string "base") in
  let v2 = Client.append b.client cap (Bytes.of_string "+more") in
  check_string "append" "base+more" (Bytes.to_string (Client.read b.client v2));
  let v3 = Client.modify b.client v2 ~pos:0 (Bytes.of_string "BASE") in
  check_string "modify" "BASE+more" (Bytes.to_string (Client.read b.client v3));
  let v4 = Client.truncate b.client v3 4 in
  check_string "truncate" "BASE" (Bytes.to_string (Client.read b.client v4));
  check_string "original untouched" "base" (Bytes.to_string (Client.read b.client cap))

let test_client_read_range () =
  let b = make_bullet () in
  let cap = Client.create b.client (Bytes.of_string "hello world") in
  check_string "range" "lo wo" (Bytes.to_string (Client.read_range b.client cap ~pos:3 ~len:5))

let test_client_restrict () =
  let b = make_bullet () in
  let cap = Client.create b.client (payload 10) in
  let narrowed = Client.restrict b.client cap Amoeba_cap.Rights.read in
  check_bytes "read with narrowed" (payload 10) (Client.read b.client narrowed);
  (try
     Client.delete b.client narrowed;
     Alcotest.fail "expected Bad_capability"
   with Status.Error Status.Bad_capability -> ())

let test_unknown_command () =
  let b = make_bullet () in
  let reply =
    Amoeba_rpc.Transport.trans b.transport ~model:Amoeba_rpc.Net_model.amoeba
      (Message.request ~port:(Server.port b.server) ~command:999 ())
  in
  check_bool "bad request" true (reply.Message.status = Status.Bad_request)

let test_missing_capability () =
  let b = make_bullet () in
  let reply =
    Amoeba_rpc.Transport.trans b.transport ~model:Amoeba_rpc.Net_model.amoeba
      (Message.request ~port:(Server.port b.server) ~command:Proto.cmd_read ())
  in
  check_bool "bad request" true (reply.Message.status = Status.Bad_request)

let test_rpc_charges_more_for_bigger_files () =
  let b = make_bullet () in
  let small = Client.create b.client (payload 16) in
  let large = Client.create b.client (payload 200_000) in
  let _, t_small = Clock.elapsed b.rig.clock (fun () -> Client.read b.client small) in
  let _, t_large = Clock.elapsed b.rig.clock (fun () -> Client.read b.client large) in
  check_bool "wire time scales" true (t_large > 2 * t_small)

let test_whole_file_in_one_reply () =
  (* whole-file transfer: a 100 KB read is exactly two transactions (SIZE
     + READ), not dozens of block RPCs *)
  let b = make_bullet () in
  let cap = Client.create b.client (payload 100_000) in
  let stats = Amoeba_rpc.Transport.stats b.transport in
  let before = Amoeba_sim.Stats.count stats "transactions" in
  let (_ : bytes) = Client.read b.client cap in
  check_int "two transactions regardless of size" (before + 2)
    (Amoeba_sim.Stats.count stats "transactions")

let suite =
  ( "proto",
    [
      Alcotest.test_case "client roundtrip over RPC" `Quick test_client_roundtrip;
      Alcotest.test_case "read = SIZE + READ" `Quick test_client_read_is_two_transactions;
      Alcotest.test_case "client modify/append/truncate" `Quick test_client_modify_append_truncate;
      Alcotest.test_case "client read_range" `Quick test_client_read_range;
      Alcotest.test_case "client restrict" `Quick test_client_restrict;
      Alcotest.test_case "unknown command" `Quick test_unknown_command;
      Alcotest.test_case "missing capability" `Quick test_missing_capability;
      Alcotest.test_case "wire time scales with file size" `Quick test_rpc_charges_more_for_bigger_files;
      Alcotest.test_case "whole file in one reply" `Quick test_whole_file_in_one_reply;
    ] )
