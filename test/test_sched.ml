(* The multi-station scheduler: validation, station disciplines, the
   admission policies, and the LOAD experiment's acceptance invariants.
   Every run here is on the virtual clock, so expected times are exact. *)

open Helpers
module Sched = Amoeba_sched.Sched
module Sink = Amoeba_trace.Sink
module Backoff = Amoeba_fault.Backoff

let fifo name = Sched.station name Sched.Fifo

let config ?(stations = [ fifo "s" ]) ?(segments = [ (0, 100) ]) ?(clients = 1) ?(think_us = 0)
    ?(requests = 1) ?(overload = Sched.no_overload) () =
  {
    Sched.stations;
    profiles = [ { Sched.pr_name = "op"; pr_segments = segments } ];
    clients;
    think_us;
    requests_per_client = requests;
    overload;
  }

let expect_invalid name cfg =
  match Sched.run cfg with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let test_validation () =
  expect_invalid "zero clients" (config ~clients:0 ());
  expect_invalid "zero requests" (config ~requests:0 ());
  expect_invalid "negative think" (config ~think_us:(-1) ());
  expect_invalid "no stations" { (config ()) with Sched.stations = [] };
  expect_invalid "no profiles" { (config ()) with Sched.profiles = [] };
  expect_invalid "bad quantum" (config ~stations:[ Sched.station "s" (Sched.Round_robin 0) ] ());
  expect_invalid "station out of range" (config ~segments:[ (1, 100) ] ());
  expect_invalid "negative segment" (config ~segments:[ (0, -5) ] ());
  expect_invalid "negative deadline"
    (config ~overload:{ Sched.accept_limit = 1; policy = Sched.Deadline (-1); retry = None } ());
  expect_invalid "zero retry timeout"
    (config
       ~overload:
         {
           Sched.accept_limit = 0;
           policy = Sched.Block;
           retry = Some { Backoff.attempts = 2; timeout_us = 0; backoff_us = 10 };
         }
       ())

(* One client, one FIFO station: submit at [think], serve 100 µs, think,
   repeat.  Three requests span exactly 330 µs of which 300 are busy. *)
let test_fifo_serial_timing () =
  let r = Sched.run (config ~think_us:10 ~requests:3 ()) in
  check_int "completed" 3 r.Sched.completed;
  check_int "simulated" 330 r.Sched.simulated_us;
  check_int "offered" 3 r.Sched.offered;
  let s = List.hd r.Sched.station_reports in
  check_int "busy" 300 s.Sched.busy_us;
  check_int "no waiting behind a single client" 0 s.Sched.max_queue;
  Alcotest.(check (float 1e-9)) "mean response" 0.1 r.Sched.mean_response_ms

(* Two FIFO stations in series, two clients: the second request's station-0
   service overlaps the first request's station-1 service, so measured
   throughput beats the serial (one-request-at-a-time) bound. *)
let test_pipeline_beats_serial () =
  let cfg =
    config
      ~stations:[ fifo "a"; fifo "b" ]
      ~segments:[ (0, 100); (1, 100) ]
      ~clients:2 ~requests:20 ()
  in
  let r = Sched.run cfg in
  check_int "completed" 40 r.Sched.completed;
  check_bool "concurrent throughput beats the serial bound" true
    (r.Sched.throughput_per_sec > Sched.serial_throughput_per_sec cfg);
  (* station demands and the analytic bounds for this symmetric config *)
  Alcotest.(check (float 1e-9)) "serial response" 200. (Sched.serial_response_us cfg);
  Alcotest.(check (float 1e-9)) "bottleneck demand" 100. (Sched.bottleneck_demand_us cfg);
  Alcotest.(check (float 1e-9)) "knee" 2. (Sched.saturation_clients cfg)

(* A Delay station is an infinite server: four jobs elapse concurrently,
   yet busy time still accounts every job's occupancy. *)
let test_delay_overlaps () =
  let r =
    Sched.run
      (config ~stations:[ Sched.station "wire" Sched.Delay ] ~segments:[ (0, 1000) ] ~clients:4 ())
  in
  check_int "completed" 4 r.Sched.completed;
  (* client c starts at (c mod 7); the last finishes at 1003, not 4000 *)
  check_int "span shows overlap" 1003 r.Sched.simulated_us;
  let s = List.hd r.Sched.station_reports in
  check_int "occupancy counts all four" 4000 s.Sched.busy_us

(* Round-robin slices preserve total work and complete everything. *)
let test_round_robin_conserves_work () =
  let r =
    Sched.run
      (config
         ~stations:[ Sched.station "cpu" (Sched.Round_robin 10) ]
         ~segments:[ (0, 30) ] ~clients:2 ())
  in
  check_int "completed" 2 r.Sched.completed;
  let s = List.hd r.Sched.station_reports in
  check_int "busy equals total demand" 60 s.Sched.busy_us;
  (* interleaved slices delay the first job past its FIFO finish *)
  check_bool "slicing stretches responses" true (r.Sched.mean_response_ms > 0.0445)

let test_shed_rejects_when_full () =
  let r =
    Sched.run
      (config ~clients:3
         ~overload:{ Sched.accept_limit = 1; policy = Sched.Shed; retry = None }
         ())
  in
  check_int "one admitted" 1 r.Sched.completed;
  check_int "two shed" 2 r.Sched.shed_count;
  check_int "sheds without retry fail" 2 r.Sched.failed

let test_block_queues_everything () =
  let r =
    Sched.run
      (config ~clients:3
         ~overload:{ Sched.accept_limit = 1; policy = Sched.Block; retry = None }
         ())
  in
  check_int "all served" 3 r.Sched.completed;
  check_int "none failed" 0 r.Sched.failed;
  check_int "accept queue high-water" 2 r.Sched.max_accept_queue

let test_deadline_drops_stale () =
  let r =
    Sched.run
      (config ~clients:3
         ~overload:{ Sched.accept_limit = 1; policy = Sched.Deadline 50; retry = None }
         ())
  in
  (* clients 1 and 2 queue at t=1,2 and are only dispatched when client 0
     finishes at t=100 — both have then waited past the 50 µs deadline *)
  check_int "one admitted" 1 r.Sched.completed;
  check_int "two missed" 2 r.Sched.deadline_misses;
  check_int "misses without retry fail" 2 r.Sched.failed

(* Shed + retry: the second client is shed at t=1, backs off 10 µs, is
   shed again at t=11 (the first still holds the only slot) and has then
   burnt its two attempts. *)
let test_shed_retry_backoff () =
  let retry = Backoff.policy ~attempts:2 ~timeout_us:1000 ~backoff_us:10 in
  let r =
    Sched.run
      (config ~clients:2
         ~overload:{ Sched.accept_limit = 1; policy = Sched.Shed; retry = Some retry }
         ())
  in
  check_int "first client completes" 1 r.Sched.completed;
  check_int "second fails" 1 r.Sched.failed;
  check_int "shed twice" 2 r.Sched.shed_count;
  check_int "one retry" 1 r.Sched.retried

(* Timeouts under Block: the 100 µs service exceeds the 50 µs patience,
   so every client abandons, yet the server still grinds through the
   abandoned work — all of it late, goodput zero. *)
let test_block_timeout_wastes_work () =
  let retry = Backoff.policy ~attempts:1 ~timeout_us:50 ~backoff_us:10 in
  let r =
    Sched.run
      (config ~clients:2
         ~overload:{ Sched.accept_limit = 1; policy = Sched.Block; retry = Some retry }
         ())
  in
  check_int "nothing completes in time" 0 r.Sched.completed;
  check_int "both abandoned" 2 r.Sched.abandoned;
  check_int "both served late" 2 r.Sched.late;
  check_int "both failed" 2 r.Sched.failed;
  let s = List.hd r.Sched.station_reports in
  check_int "server worked the full 200 anyway" 200 s.Sched.busy_us

(* Client c's k-th request runs profile (c + k - 1) mod n, so a single
   client alternates through the whole mix. *)
let test_profile_cycling () =
  let cfg =
    {
      (config ~requests:4 ()) with
      Sched.profiles =
        [
          { Sched.pr_name = "fast"; pr_segments = [ (0, 100) ] };
          { Sched.pr_name = "slow"; pr_segments = [ (0, 200) ] };
        ];
    }
  in
  let r = Sched.run cfg in
  check_int "completed" 4 r.Sched.completed;
  let s = List.hd r.Sched.station_reports in
  check_int "two of each profile" 600 s.Sched.busy_us

(* Identical configurations give byte-identical reports and traces. *)
let test_double_run_identity () =
  let sink1, r1 = Experiments.load_sched_trace () in
  let sink2, r2 = Experiments.load_sched_trace () in
  check_bool "reports identical" true (r1 = r2);
  check_string "traces byte-identical" (Sink.to_jsonl sink1) (Sink.to_jsonl sink2);
  check_bool "trace is non-trivial" true (Sink.length sink1 > 50)

(* Sched traces flow through the span toolchain: roots are sched.attempt,
   serve spans carry station layers, and attribution balances. *)
let test_sched_trace_attributes () =
  let sink, r = Experiments.load_sched_trace () in
  let spans = Sink.spans sink in
  let roots = List.filter (fun (s : Sink.span) -> s.Sink.parent_id = 0) spans in
  check_bool "every root is an attempt" true
    (List.for_all (fun (s : Sink.span) -> s.Sink.name = "sched.attempt") roots);
  check_int "one root per offered attempt" r.Sched.offered (List.length roots);
  let att = Amoeba_trace.Attrib.of_spans spans in
  check_bool "attribution sums" true
    (att.Amoeba_trace.Attrib.total_us
    = att.Amoeba_trace.Attrib.net_us + att.Amoeba_trace.Attrib.cpu_us
      + att.Amoeba_trace.Attrib.cache_us + att.Amoeba_trace.Attrib.disk_us
      + att.Amoeba_trace.Attrib.alloc_us + att.Amoeba_trace.Attrib.other_us)

(* The full LOAD experiment: demand profiles measured from the real
   servers, the concurrency sweep, and the overload comparison.  The
   experiment itself raises if an acceptance invariant fails; the checks
   here restate the headline claims against the returned report. *)
let test_load_experiment () =
  let r = Experiments.load_experiment () in
  let bullet = r.Experiments.lr_bullet in
  (* demand profiles partition the traced time exactly *)
  List.iter
    (fun (p : Experiments.load_profile) ->
      let sum = List.fold_left (fun a (_, us) -> a + us) 0 p.Experiments.lpr_segments in
      check_int (p.Experiments.lpr_class ^ " segments sum to traced time")
        p.Experiments.lpr_traced_us sum)
    (bullet.Experiments.sl_profiles @ r.Experiments.lr_nfs.Experiments.sl_profiles);
  (* (a) concurrency pays: knee throughput beats the serial bound *)
  check_bool "knee throughput beats serial cap" true
    (bullet.Experiments.sl_knee_throughput > bullet.Experiments.sl_serial_cap_per_sec);
  (* (b) overload: shedding holds goodput near peak, blocking collapses *)
  let find name =
    List.find (fun o -> o.Experiments.ov_policy = name) r.Experiments.lr_overload
  in
  let peak = r.Experiments.lr_peak_goodput in
  check_bool "shed holds goodput" true ((find "shed").Experiments.ov_goodput >= 0.9 *. peak);
  check_bool "deadline holds goodput" true
    ((find "deadline").Experiments.ov_goodput >= 0.9 *. peak);
  check_bool "block collapses" true ((find "block").Experiments.ov_goodput < 0.9 *. peak);
  check_bool "block wastes work on late replies" true ((find "block").Experiments.ov_late > 0)

let suite =
  ( "sched",
    [
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "fifo serial timing" `Quick test_fifo_serial_timing;
      Alcotest.test_case "pipelining beats serial bound" `Quick test_pipeline_beats_serial;
      Alcotest.test_case "delay station overlaps" `Quick test_delay_overlaps;
      Alcotest.test_case "round robin conserves work" `Quick test_round_robin_conserves_work;
      Alcotest.test_case "shed rejects when full" `Quick test_shed_rejects_when_full;
      Alcotest.test_case "block queues everything" `Quick test_block_queues_everything;
      Alcotest.test_case "deadline drops stale" `Quick test_deadline_drops_stale;
      Alcotest.test_case "shed retry backoff" `Quick test_shed_retry_backoff;
      Alcotest.test_case "block timeout wastes work" `Quick test_block_timeout_wastes_work;
      Alcotest.test_case "profile cycling" `Quick test_profile_cycling;
      Alcotest.test_case "double run identity" `Quick test_double_run_identity;
      Alcotest.test_case "sched trace attributes" `Quick test_sched_trace_attributes;
      Alcotest.test_case "load experiment invariants" `Slow test_load_experiment;
    ] )
