(* Tests for the Bullet on-disk format and the RAM inode table. *)

open Helpers
module Layout = Bullet_core.Layout
module Inode_table = Bullet_core.Inode_table
module Geometry = Amoeba_disk.Geometry
module Dev = Amoeba_disk.Block_device
module Mirror = Amoeba_disk.Mirror

let prop_inode_roundtrip =
  qtest "inode encode/decode roundtrip"
    QCheck.(quad int64 (int_range 0 0xFFFF) (int_range 0 0xFFFFFF) (int_range 0 0xFFFFFF))
    (fun (random, index, first_block, size_bytes) ->
      let inode =
        { Layout.random = Int64.logand random 0xFFFF_FFFF_FFFFL; index; first_block; size_bytes }
      in
      let buf = Bytes.create Layout.inode_bytes in
      Layout.encode_inode inode buf 0;
      Layout.decode_inode buf 0 = inode)

let test_free_inode_is_zero () =
  let buf = Bytes.make Layout.inode_bytes '\000' in
  check_bool "all-zero decodes free" true (Layout.is_free (Layout.decode_inode buf 0))

let test_descriptor_roundtrip () =
  let d = { Layout.block_size = 512; control_size = 16; data_size = 1000 } in
  let buf = Bytes.create 16 in
  Layout.encode_descriptor d buf 0;
  match Layout.decode_descriptor buf 0 with
  | Ok d' -> check_bool "roundtrip" true (d = d')
  | Error e -> Alcotest.fail e

let test_descriptor_rejects_garbage () =
  let buf = Bytes.make 16 'x' in
  check_bool "bad magic" true (Result.is_error (Layout.decode_descriptor buf 0))

let test_plan () =
  let g = Geometry.small ~sectors:1024 in
  let d = Layout.plan g ~max_files:100 in
  check_bool "enough inodes" true (Layout.max_inode d >= 100);
  check_int "partitions the disk" 1024 (d.Layout.control_size + d.Layout.data_size);
  check_int "data starts after control" d.Layout.control_size (Layout.data_start d)

let prop_plan_partitions =
  Helpers.qtest "plan always partitions the drive"
    QCheck.(pair (int_range 64 100_000) (int_range 1 5_000))
    (fun (sectors, max_files) ->
      QCheck.assume (sectors > (max_files / 32) + 8);
      let g = Geometry.small ~sectors in
      match Layout.plan g ~max_files with
      | d ->
        d.Layout.control_size + d.Layout.data_size = sectors
        && Layout.max_inode d >= max_files
        && Layout.data_start d = d.Layout.control_size
      | exception Invalid_argument _ -> true)

let test_inode_block () =
  let g = Geometry.small ~sectors:1024 in
  let d = Layout.plan g ~max_files:100 in
  check_int "inode 0 in sector 0" 0 (Layout.inode_block d 0);
  check_int "inode 31 in sector 0" 0 (Layout.inode_block d 31);
  check_int "inode 32 in sector 1" 1 (Layout.inode_block d 32)

(* ---- inode table ---- *)

let make_table () =
  let rig = make_rig ~sectors:1024 () in
  let (_ : Layout.descriptor) = Inode_table.format rig.mirror ~max_files:63 in
  let table, report = Result.get_ok (Inode_table.load rig.mirror) in
  (rig, table, report)

let test_fresh_table_empty () =
  let _rig, table, report = make_table () in
  check_int "no files" 0 report.Inode_table.files;
  check_int "no repairs" 0 (List.length report.Inode_table.repaired);
  check_int "no live inodes" 0 (Inode_table.live_count table);
  check_bool "free inodes available" true (Inode_table.free_count table > 0)

let test_load_rejects_unformatted () =
  let rig = make_rig ~sectors:1024 () in
  check_bool "unformatted rejected" true (Result.is_error (Inode_table.load rig.mirror))

let sample_inode ~block ~size =
  { Layout.random = 0xAAAAL; index = 0; first_block = block; size_bytes = size }

let test_alloc_set_flush_persists () =
  let rig, table, _ = make_table () in
  let i = Option.get (Inode_table.alloc table) in
  let desc = Inode_table.descriptor table in
  Inode_table.set table i (sample_inode ~block:(Layout.data_start desc) ~size:1000);
  Inode_table.flush table ~sync:2 i;
  (* reload from disk: the inode must be there (index cleared) *)
  let table', report = Result.get_ok (Inode_table.load rig.mirror) in
  check_int "one file" 1 report.Inode_table.files;
  let inode = Inode_table.get table' i in
  check_int "size persisted" 1000 inode.Layout.size_bytes;
  check_int "index cleared on load" 0 inode.Layout.index

let test_free_returns_inode () =
  let _rig, table, _ = make_table () in
  let i = Option.get (Inode_table.alloc table) in
  let before = Inode_table.free_count table in
  Inode_table.free table i;
  check_int "freed" (before + 1) (Inode_table.free_count table);
  check_bool "content zeroed" true (Layout.is_free (Inode_table.get table i))

let test_alloc_exhaustion () =
  let _rig, table, _ = make_table () in
  let rec drain n = match Inode_table.alloc table with Some _ -> drain (n + 1) | None -> n in
  check_int "exactly max_inode allocations" (Inode_table.max_inode table) (drain 0)

let test_scan_repairs_out_of_range () =
  let rig, table, _ = make_table () in
  let i = Option.get (Inode_table.alloc table) in
  (* file pointing outside the data area *)
  Inode_table.set table i (sample_inode ~block:0 ~size:1000);
  Inode_table.flush table ~sync:2 i;
  let _table', report = Result.get_ok (Inode_table.load rig.mirror) in
  check_bool "repaired" true (List.mem i report.Inode_table.repaired);
  check_int "no live files" 0 report.Inode_table.files

let test_scan_repairs_overlap () =
  let rig, table, _ = make_table () in
  let desc = Inode_table.descriptor table in
  let base = Layout.data_start desc in
  let i1 = Option.get (Inode_table.alloc table) in
  let i2 = Option.get (Inode_table.alloc table) in
  (* two files overlapping on disk: the scan keeps the first, zeroes the
     second *)
  Inode_table.set table i1 (sample_inode ~block:base ~size:(4 * 512));
  Inode_table.set table i2 (sample_inode ~block:(base + 2) ~size:512);
  Inode_table.flush table ~sync:2 i1;
  Inode_table.flush table ~sync:2 i2;
  let _table', report = Result.get_ok (Inode_table.load rig.mirror) in
  check_bool "overlap repaired" true (List.mem i2 report.Inode_table.repaired);
  check_int "one survivor" 1 report.Inode_table.files

let test_load_reads_from_replica_when_primary_dead () =
  let rig, table, _ = make_table () in
  let i = Option.get (Inode_table.alloc table) in
  let desc = Inode_table.descriptor table in
  Inode_table.set table i (sample_inode ~block:(Layout.data_start desc) ~size:77);
  Inode_table.flush table ~sync:2 i;
  Dev.fail rig.drive1;
  let _table', report = Result.get_ok (Inode_table.load rig.mirror) in
  check_int "file visible via replica" 1 report.Inode_table.files

let suite =
  ( "layout",
    [
      prop_inode_roundtrip;
      Alcotest.test_case "free inode is all zeros" `Quick test_free_inode_is_zero;
      Alcotest.test_case "descriptor roundtrip" `Quick test_descriptor_roundtrip;
      Alcotest.test_case "descriptor rejects garbage" `Quick test_descriptor_rejects_garbage;
      Alcotest.test_case "plan partitions the disk" `Quick test_plan;
      prop_plan_partitions;
      Alcotest.test_case "inode-to-block mapping" `Quick test_inode_block;
      Alcotest.test_case "fresh table is empty" `Quick test_fresh_table_empty;
      Alcotest.test_case "load rejects unformatted drive" `Quick test_load_rejects_unformatted;
      Alcotest.test_case "alloc/set/flush persists" `Quick test_alloc_set_flush_persists;
      Alcotest.test_case "free returns inode" `Quick test_free_returns_inode;
      Alcotest.test_case "alloc exhaustion" `Quick test_alloc_exhaustion;
      Alcotest.test_case "scan repairs out-of-range file" `Quick test_scan_repairs_out_of_range;
      Alcotest.test_case "scan repairs overlapping files" `Quick test_scan_repairs_overlap;
      Alcotest.test_case "load fails over to replica" `Quick test_load_reads_from_replica_when_primary_dead;
    ] )
