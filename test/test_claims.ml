(* Integration tests asserting the paper's quantitative claims (§4) on
   the actual experiment drivers — the same code the benchmark harness
   runs. Reproduction targets (DESIGN.md §3):

   C1  Bullet read 3–6x faster than NFS at every size.
   C2  Bullet write bandwidth ~10x NFS's for large files.
   C3  For files > 64 KB Bullet create+delete bandwidth exceeds NFS read
       bandwidth.
   C4  NFS bandwidth at 1 MB is lower than at 64 KB; Bullet's is monotone.
   C5  P-FACTOR 0 creates are much faster than P-FACTOR >= 1. *)

open Helpers
module E = Experiments

let sizes = [ 1; 256; 4096; 65536; 1048576 ]

let comparisons = lazy (E.compare_servers ~sizes ())

let find size rows = List.find (fun c -> c.E.size = size) rows

let test_c1_read_ratio_band () =
  let rows = Lazy.force comparisons in
  let check_row c =
    check_bool
      (Printf.sprintf "size %d: read ratio %.2f in [3, 6.5]" c.E.size c.E.read_ratio)
      true
      (c.E.read_ratio >= 3.0 && c.E.read_ratio <= 6.5)
  in
  List.iter check_row rows

let test_c2_write_bandwidth_factor_at_1mb () =
  let c = find 1048576 (Lazy.force comparisons) in
  check_bool (Printf.sprintf "write ratio %.1f ~ 10x" c.E.write_ratio) true
    (c.E.write_ratio >= 7.0 && c.E.write_ratio <= 13.0)

let test_c3_bullet_write_beats_nfs_read_above_64kb () =
  let rows = Lazy.force comparisons in
  let check_size size =
    let c = find size rows in
    check_bool
      (Printf.sprintf "size %d: bullet write %.0f KB/s > nfs read %.0f KB/s" size
         c.E.bullet_write_kbs c.E.nfs_read_kbs)
      true
      (c.E.bullet_write_kbs > c.E.nfs_read_kbs)
  in
  List.iter check_size [ 65536; 1048576 ]

let test_c4_nfs_bandwidth_dips_at_1mb () =
  let rows = Lazy.force comparisons in
  let at64 = find 65536 rows and at1m = find 1048576 rows in
  check_bool "NFS write bandwidth lower at 1 MB than at 64 KB" true
    (at1m.E.nfs_write_kbs < at64.E.nfs_write_kbs);
  check_bool "NFS read bandwidth lower at 1 MB than at 64 KB" true
    (at1m.E.nfs_read_kbs < at64.E.nfs_read_kbs)

let test_c4_bullet_bandwidth_monotone () =
  let rows = E.fig2_bullet ~sizes () in
  let rec check = function
    | (a : E.row) :: (b :: _ as rest) ->
      check_bool
        (Printf.sprintf "bullet read bandwidth rises %d -> %d" a.E.size b.E.size)
        true
        (E.bandwidth_kbs ~size:b.E.size ~us:b.E.read_us
        >= E.bandwidth_kbs ~size:a.E.size ~us:a.E.read_us);
      check rest
    | _ -> ()
  in
  check rows

let test_c5_pfactor () =
  let sweep = E.pfactor_sweep () in
  let at p = List.assoc p sweep in
  check_bool "p=0 at least 1.5x faster than p=1" true (at 1 > at 0 * 3 / 2);
  (* identical mirrored drives written in parallel: p=2 ~ p=1 *)
  check_bool "p=2 close to p=1" true (at 2 < at 1 * 11 / 10)

let test_bullet_absolute_calibration () =
  (* sanity-anchor against the published Amoeba numbers: ~680 KB/s for
     1 MB reads, ~8 ms small reads *)
  let rows = E.fig2_bullet ~sizes:[ 1; 1048576 ] () in
  let small = List.find (fun (r : E.row) -> r.E.size = 1) rows in
  let big = List.find (fun (r : E.row) -> r.E.size = 1048576) rows in
  let big_bw = E.bandwidth_kbs ~size:big.E.size ~us:big.E.read_us in
  check_bool (Printf.sprintf "1 B read %.1f ms in [5, 12]" (float_of_int small.E.read_us /. 1000.))
    true
    (small.E.read_us >= 5_000 && small.E.read_us <= 12_000);
  check_bool (Printf.sprintf "1 MB read %.0f KB/s in [600, 750]" big_bw) true
    (big_bw >= 600. && big_bw <= 750.)

let test_fragmentation_experiment () =
  let report = E.fragmentation_experiment ~churn_ops:600 () in
  check_bool "churn wrote files" true (report.E.files_written > 50);
  check_bool "churn fragments the disk" true (report.E.fragmentation_before > 0.05);
  check_bool "compaction moved data" true (report.E.compaction_moved_blocks > 0);
  Alcotest.(check (float 1e-9)) "compaction leaves one hole" 0.0 report.E.fragmentation_after;
  check_bool "compaction costs disk time" true (report.E.compaction_us > 0)

let test_cache_experiment () =
  let report = E.cache_experiment () in
  check_bool "hit faster than miss" true (report.E.hit_us < report.E.miss_us);
  check_bool "cold no slower than miss by much" true
    (report.E.cold_us <= report.E.miss_us * 2);
  check_bool
    (Printf.sprintf "working set hits %.2f" report.E.hit_rate_working_set)
    true
    (report.E.hit_rate_working_set > 0.9);
  check_bool (Printf.sprintf "thrash hits %.2f" report.E.hit_rate_thrash) true
    (report.E.hit_rate_thrash < 0.5)

let test_trace_replay () =
  let report = E.trace_replay ~ops:120 () in
  check_bool
    (Printf.sprintf "end-to-end speedup %.1fx > 2.5x" report.E.speedup)
    true (report.E.speedup > 2.5)

let test_append_ablation () =
  let report = E.append_ablation ~appends:20 () in
  check_bool "log server beats MODIFY" true (report.E.log_server_us < report.E.modify_us);
  check_bool "MODIFY beats naive re-create" true (report.E.modify_us < report.E.naive_us)

let test_geo_experiment () =
  let r = E.geo_experiment () in
  check_bool "local < regional" true (r.E.local_read_us < r.E.regional_read_us);
  check_bool "regional < wide" true (r.E.regional_read_us < r.E.wide_read_us);
  check_string "nearest replica chosen" "tromso" r.E.nearest_pick;
  check_bool "replication paid at publish" true
    (r.E.publish_replicated_us > r.E.publish_local_us)

let test_cache_size_sweep_knee () =
  let points = E.cache_size_sweep ~working_set_mb:4 ~cache_mbs:[ 2; 8 ] () in
  match points with
  | [ small; large ] ->
    check_bool "small cache thrashes" true (small.E.hit_rate < 0.5);
    check_bool "large cache covers the set" true (large.E.hit_rate > 0.9);
    check_bool "latency follows" true (large.E.mean_read_ms < small.E.mean_read_ms)
  | _ -> Alcotest.fail "expected two points"

let test_naming_experiment () =
  let r = E.naming_experiment () in
  check_bool "resolve beats stepwise locally" true (r.E.local_resolve_us < r.E.local_stepwise_us);
  (* across the wide link the gap approaches the component count *)
  let ratio = float_of_int r.E.wide_stepwise_us /. float_of_int r.E.wide_resolve_us in
  check_bool
    (Printf.sprintf "wide-area ratio %.1f near depth %d" ratio r.E.depth)
    true
    (ratio > float_of_int r.E.depth *. 0.6)

let test_mix_sweep_monotone_decline () =
  let points = E.mix_sweep ~ops:150 () in
  match (points, List.rev points) with
  | (_, first) :: _, (_, last) :: _ ->
    check_bool
      (Printf.sprintf "speedup declines with update share (%.2f -> %.2f)" first last)
      true (last < first)
  | _ -> Alcotest.fail "empty sweep"

let test_allocation_ablation_runs () =
  let report = E.allocation_ablation ~churn_ops:400 () in
  check_bool "no create failures under mild churn" true
    (report.E.first_fit_failures = 0 && report.E.best_fit_failures = 0);
  check_bool "fragmentation measured" true
    (report.E.first_fit_frag >= 0. && report.E.best_fit_frag >= 0.)

let suite =
  ( "claims",
    [
      Alcotest.test_case "C1: reads 3-6x faster at every size" `Slow test_c1_read_ratio_band;
      Alcotest.test_case "C2: ~10x write bandwidth at 1 MB" `Slow test_c2_write_bandwidth_factor_at_1mb;
      Alcotest.test_case "C3: bullet writes beat NFS reads above 64 KB" `Slow
        test_c3_bullet_write_beats_nfs_read_above_64kb;
      Alcotest.test_case "C4: NFS bandwidth dips at 1 MB" `Slow test_c4_nfs_bandwidth_dips_at_1mb;
      Alcotest.test_case "C4: bullet bandwidth monotone" `Slow test_c4_bullet_bandwidth_monotone;
      Alcotest.test_case "C5: P-FACTOR ordering" `Slow test_c5_pfactor;
      Alcotest.test_case "calibration anchors (677 KB/s, 8 ms)" `Slow test_bullet_absolute_calibration;
      Alcotest.test_case "fragmentation and 3 a.m. compaction" `Slow test_fragmentation_experiment;
      Alcotest.test_case "cache hit/miss/cold and LRU rates" `Slow test_cache_experiment;
      Alcotest.test_case "trace replay end-to-end" `Slow test_trace_replay;
      Alcotest.test_case "append ablation ordering" `Slow test_append_ablation;
      Alcotest.test_case "allocation ablation runs" `Slow test_allocation_ablation_runs;
      Alcotest.test_case "geographic scalability ordering" `Slow test_geo_experiment;
      Alcotest.test_case "cache-size sweep knee" `Slow test_cache_size_sweep_knee;
      Alcotest.test_case "naming: resolve beats stepwise" `Slow test_naming_experiment;
      Alcotest.test_case "mix sweep: speedup declines with updates" `Slow
        test_mix_sweep_monotone_decline;
    ] )
