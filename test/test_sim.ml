(* Tests for the simulation substrate: Clock, Prng, Stats. *)

open Helpers
module Clock = Amoeba_sim.Clock
module Prng = Amoeba_sim.Prng
module Stats = Amoeba_sim.Stats

let test_clock_starts_at_zero () =
  let clock = Clock.create () in
  check_int "fresh clock" 0 (Clock.now clock)

let test_clock_advance () =
  let clock = Clock.create () in
  Clock.advance clock 100;
  Clock.advance clock 50;
  check_int "accumulates" 150 (Clock.now clock)

let test_clock_advance_negative_rejected () =
  let clock = Clock.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Clock.advance: negative duration") (fun () ->
      Clock.advance clock (-1))

let test_clock_advance_to () =
  let clock = Clock.create () in
  Clock.advance clock 100;
  Clock.advance_to clock 80;
  check_int "never moves back" 100 (Clock.now clock);
  Clock.advance_to clock 120;
  check_int "moves forward" 120 (Clock.now clock)

let test_clock_reset () =
  let clock = Clock.create () in
  Clock.advance clock 42;
  Clock.reset clock;
  check_int "reset" 0 (Clock.now clock)

let test_clock_parallel_takes_max () =
  let clock = Clock.create () in
  Clock.advance clock 10;
  let results =
    Clock.parallel clock
      [ (fun () -> Clock.advance clock 100; `A); (fun () -> Clock.advance clock 300; `B) ]
  in
  check_int "max of branches" 310 (Clock.now clock);
  check_bool "results in order" true (results = [ `A; `B ])

let test_clock_parallel_empty () =
  let clock = Clock.create () in
  Clock.advance clock 5;
  let results = Clock.parallel clock [] in
  check_bool "no thunks" true (results = []);
  check_int "time unchanged" 5 (Clock.now clock)

let test_clock_unobserved () =
  let clock = Clock.create () in
  Clock.advance clock 7;
  let v = Clock.unobserved clock (fun () -> Clock.advance clock 1000; 99) in
  check_int "result" 99 v;
  check_int "time restored" 7 (Clock.now clock)

let test_clock_unobserved_restores_on_raise () =
  let clock = Clock.create () in
  (try Clock.unobserved clock (fun () -> Clock.advance clock 1000; failwith "boom")
   with Stdlib.Failure _ -> ());
  check_int "time restored" 0 (Clock.now clock)

let test_clock_elapsed () =
  let clock = Clock.create () in
  Clock.advance clock 3;
  let v, dt = Clock.elapsed clock (fun () -> Clock.advance clock 500; "x") in
  check_string "value" "x" v;
  check_int "elapsed" 500 dt

let test_clock_to_ms () =
  Alcotest.(check (float 0.0001)) "us to ms" 12.345 (Clock.to_ms 12_345)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1L and b = Prng.create ~seed:2L in
  check_bool "different seeds differ" false (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_split_independent () =
  (* Advancing the parent after the split must not change the child's
     stream. *)
  let rec take g n = if n = 0 then [] else let v = Prng.next_int64 g in v :: take g (n - 1) in
  let a = Prng.create ~seed:7L in
  let b = Prng.split a in
  let undisturbed = take b 3 in
  let a' = Prng.create ~seed:7L in
  let b' = Prng.split a' in
  let (_ : int64 list) = take a' 5 in
  check_bool "split stream unaffected" true (undisturbed = take b' 3)

let test_prng_int_zero_bound_rejected () =
  let p = Prng.create ~seed:1L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int p 0))

let test_prng_bytes_length () =
  let p = Prng.create ~seed:9L in
  check_int "bytes length" 33 (Bytes.length (Prng.bytes p 33))

let prop_int_in_bounds =
  qtest "Prng.int stays in [0, bound)" QCheck.(pair int64 (int_range 1 10_000)) (fun (seed, bound) ->
      let p = Prng.create ~seed in
      let v = Prng.int p bound in
      v >= 0 && v < bound)

let prop_int_in_range =
  qtest "Prng.int_in stays in [lo, hi]"
    QCheck.(triple int64 (int_range (-500) 500) (int_range 0 1000))
    (fun (seed, lo, span) ->
      let p = Prng.create ~seed in
      let v = Prng.int_in p lo (lo + span) in
      v >= lo && v <= lo + span)

let prop_float_in_bounds =
  qtest "Prng.float stays in [0, bound)" QCheck.(pair int64 (float_range 0.001 1e6))
    (fun (seed, bound) ->
      let p = Prng.create ~seed in
      let v = Prng.float p bound in
      v >= 0. && v < bound)

let test_stats_counters () =
  let s = Stats.create "test" in
  Stats.incr s "a";
  Stats.incr s "a";
  Stats.add s "b" 5;
  check_int "a" 2 (Stats.count s "a");
  check_int "b" 5 (Stats.count s "b");
  check_int "missing" 0 (Stats.count s "zzz")

let test_stats_counters_sorted () =
  let s = Stats.create "test" in
  Stats.incr s "zeta";
  Stats.incr s "alpha";
  check_bool "sorted" true (List.map fst (Stats.counters s) = [ "alpha"; "zeta" ])

let test_stats_summary () =
  let s = Stats.create "test" in
  Stats.observe s "lat" 1.0;
  Stats.observe s "lat" 3.0;
  Stats.observe s "lat" 2.0;
  let sum = Stats.summary s "lat" in
  check_int "count" 3 sum.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 2.0 sum.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 sum.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 3.0 sum.Stats.max

let test_stats_empty_summary () =
  let s = Stats.create "test" in
  let sum = Stats.summary s "never" in
  check_int "count" 0 sum.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 0.0 sum.Stats.mean

(* The per-site seeds minted from names must never move between compiler
   versions (the Hashtbl.hash bug class): pin the FNV-1a values. *)
let test_seed_of_string_pinned () =
  let check_seed name expected =
    Alcotest.(check int64) name expected (Prng.seed_of_string name)
  in
  check_seed "" 0xCBF29CE484222325L (* the FNV offset basis *);
  check_seed "home" 0x402D1BCC7E6F9D6EL;
  check_seed "paris" 0xBF595A7A1AAEC80L;
  check_seed "tokyo" 0x2680B27D5079F639L

let test_of_name_matches_seed () =
  let a = Prng.of_name "home" and b = Prng.create ~seed:(Prng.seed_of_string "home") in
  for _ = 1 to 16 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 b) (Prng.next_int64 a)
  done

let test_stats_reset () =
  let s = Stats.create "test" in
  Stats.incr s "a";
  Stats.observe s "x" 1.0;
  Stats.reset s;
  check_int "counter gone" 0 (Stats.count s "a");
  check_int "series gone" 0 (Stats.summary s "x").Stats.count

(* Reservoir replacement is driven by a private xorshift; with the same
   seed, two collections fed the same over-capacity series must retain
   the same samples and so report the same percentiles. *)
let test_stats_seed_determinism () =
  let feed seed =
    let s = Stats.create ~seed "test" in
    for i = 1 to 80_000 do
      Stats.observe s "lat" (float_of_int ((i * 2_654_435_761) land 0xFFFFF))
    done;
    s
  in
  let a = feed 42 and b = feed 42 in
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "q=%.2f" q)
        (Stats.percentile a "lat" q) (Stats.percentile b "lat" q))
    [ 0.0; 0.5; 0.95; 0.99; 1.0 ];
  (* and a different seed is allowed to retain a different reservoir *)
  let c = feed 7 in
  check_bool "different seed may differ" true
    (List.exists
       (fun q -> Stats.percentile a "lat" q <> Stats.percentile c "lat" q)
       [ 0.5; 0.95; 0.99 ])

let test_percentile_edges () =
  let s = Stats.create "test" in
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Stats.percentile s "lat" 0.5);
  Stats.observe s "lat" 7.0;
  Alcotest.(check (float 1e-9)) "single q=0" 7.0 (Stats.percentile s "lat" 0.0);
  Alcotest.(check (float 1e-9)) "single q=1" 7.0 (Stats.percentile s "lat" 1.0);
  List.iter (fun v -> Stats.observe s "lat" v) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check (float 1e-9)) "q=0 is the min" 1.0 (Stats.percentile s "lat" 0.0);
  Alcotest.(check (float 1e-9)) "q=1 is the max" 7.0 (Stats.percentile s "lat" 1.0)

(* ---- the log2 histogram behind the latency columns ---- *)

let test_hist_basics () =
  let h = Stats.Hist.create () in
  check_int "empty count" 0 (Stats.Hist.count h);
  check_int "empty percentile" 0 (Stats.Hist.percentile h 0.5);
  List.iter (fun v -> Stats.Hist.record h v) [ 3; 5; 100; 1000; 0 ];
  check_int "count" 5 (Stats.Hist.count h);
  check_int "sum" 1108 (Stats.Hist.sum h);
  check_int "min" 0 (Stats.Hist.min_value h);
  check_int "max" 1000 (Stats.Hist.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 221.6 (Stats.Hist.mean h);
  check_int "q=0 exact min" 0 (Stats.Hist.percentile h 0.0);
  check_int "q=1 exact max" 1000 (Stats.Hist.percentile h 1.0);
  (* mid-quantiles land on a bucket upper bound: the true median 5 sits
     in [4, 8), so the reported p50 is 7 — within 2x of the truth *)
  check_int "p50 is its bucket's upper bound" 7 (Stats.Hist.percentile h 0.5)

let test_hist_merge_exact () =
  let all = Stats.Hist.create () in
  let parts = [ Stats.Hist.create (); Stats.Hist.create () ] in
  for i = 1 to 1_000 do
    let v = (i * 37) land 0xFFFF in
    Stats.Hist.record all v;
    Stats.Hist.record (List.nth parts (i land 1)) v
  done;
  let merged = Stats.Hist.create () in
  List.iter (fun p -> Stats.Hist.merge ~into:merged p) parts;
  check_int "count" (Stats.Hist.count all) (Stats.Hist.count merged);
  check_int "sum" (Stats.Hist.sum all) (Stats.Hist.sum merged);
  check_int "min" (Stats.Hist.min_value all) (Stats.Hist.min_value merged);
  check_int "max" (Stats.Hist.max_value all) (Stats.Hist.max_value merged);
  check_bool "buckets identical" true (Stats.Hist.buckets all = Stats.Hist.buckets merged);
  List.iter
    (fun q ->
      check_int
        (Printf.sprintf "q=%.2f" q)
        (Stats.Hist.percentile all q) (Stats.Hist.percentile merged q))
    [ 0.0; 0.5; 0.95; 0.99; 1.0 ]

let test_hist_via_stats () =
  let s = Stats.create "test" in
  Stats.record s "trans_us" 10;
  Stats.record s "trans_us" 20;
  let h = Stats.hist s "trans_us" in
  check_int "shared handle" 2 (Stats.Hist.count h);
  check_bool "listed" true (List.map fst (Stats.hists s) = [ "trans_us" ]);
  Stats.reset s;
  check_int "reset clears" 0 (Stats.Hist.count (Stats.hist s "trans_us"))

let suite =
  ( "sim",
    [
      Alcotest.test_case "clock starts at zero" `Quick test_clock_starts_at_zero;
      Alcotest.test_case "clock advance accumulates" `Quick test_clock_advance;
      Alcotest.test_case "clock rejects negative advance" `Quick test_clock_advance_negative_rejected;
      Alcotest.test_case "clock advance_to is monotone" `Quick test_clock_advance_to;
      Alcotest.test_case "clock reset" `Quick test_clock_reset;
      Alcotest.test_case "clock parallel takes max" `Quick test_clock_parallel_takes_max;
      Alcotest.test_case "clock parallel of nothing" `Quick test_clock_parallel_empty;
      Alcotest.test_case "clock unobserved restores time" `Quick test_clock_unobserved;
      Alcotest.test_case "clock unobserved restores on raise" `Quick
        test_clock_unobserved_restores_on_raise;
      Alcotest.test_case "clock elapsed measures" `Quick test_clock_elapsed;
      Alcotest.test_case "clock to_ms" `Quick test_clock_to_ms;
      Alcotest.test_case "prng deterministic per seed" `Quick test_prng_deterministic;
      Alcotest.test_case "prng seed sensitivity" `Quick test_prng_seed_sensitivity;
      Alcotest.test_case "prng split independence" `Quick test_prng_split_independent;
      Alcotest.test_case "prng rejects zero bound" `Quick test_prng_int_zero_bound_rejected;
      Alcotest.test_case "prng bytes length" `Quick test_prng_bytes_length;
      Alcotest.test_case "prng seed_of_string pinned (FNV-1a)" `Quick test_seed_of_string_pinned;
      Alcotest.test_case "prng of_name matches seed_of_string" `Quick test_of_name_matches_seed;
      prop_int_in_bounds;
      prop_int_in_range;
      prop_float_in_bounds;
      Alcotest.test_case "stats counters" `Quick test_stats_counters;
      Alcotest.test_case "stats counters sorted" `Quick test_stats_counters_sorted;
      Alcotest.test_case "stats summary" `Quick test_stats_summary;
      Alcotest.test_case "stats empty summary" `Quick test_stats_empty_summary;
      Alcotest.test_case "stats reset" `Quick test_stats_reset;
      Alcotest.test_case "stats reservoir seed determinism" `Quick test_stats_seed_determinism;
      Alcotest.test_case "stats percentile edges" `Quick test_percentile_edges;
      Alcotest.test_case "hist record and percentile bounds" `Quick test_hist_basics;
      Alcotest.test_case "hist merge is exact" `Quick test_hist_merge_exact;
      Alcotest.test_case "hist via stats table" `Quick test_hist_via_stats;
    ] )
