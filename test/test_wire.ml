(* Tests for the binary frame codec, the TCP transport (real loopback
   sockets) and drive-image persistence. *)

open Helpers
module Message = Amoeba_rpc.Message
module Status = Amoeba_rpc.Status
module Wire = Amoeba_rpc.Wire
module Tcp = Amoeba_rpc.Tcp
module Cap = Amoeba_cap.Capability
module Port = Amoeba_cap.Port

let sample_cap =
  Cap.v ~port:(Port.of_int64 0xABCDEFL) ~obj:42 ~rights:(Amoeba_cap.Rights.of_int 0x81)
    ~check:0x1122334455667788L

let strip_prefix frame = Bytes.sub frame 4 (Bytes.length frame - 4)

let roundtrip m = Wire.decode (strip_prefix (Wire.encode m))

let messages_equal a b =
  Port.equal a.Message.port b.Message.port
  && a.Message.command = b.Message.command
  && a.Message.status = b.Message.status
  && (match (a.Message.cap, b.Message.cap) with
     | Some x, Some y -> Cap.equal x y
     | None, None -> true
     | _ -> false)
  && a.Message.arg0 = b.Message.arg0 && a.Message.arg1 = b.Message.arg1
  && a.Message.xid = b.Message.xid
  && Bytes.equal a.Message.body b.Message.body

let test_wire_roundtrip_request () =
  let m =
    Message.request ~port:(Port.of_int64 77L) ~command:3 ~cap:sample_cap ~arg0:123 ~arg1:(-4)
      ~body:(payload 100) ()
  in
  match roundtrip m with
  | Ok m' -> check_bool "roundtrip" true (messages_equal m m')
  | Error e -> Alcotest.fail e

let test_wire_roundtrip_reply_no_cap () =
  let m = Message.reply ~status:Status.No_space ~arg0:7 () in
  match roundtrip m with
  | Ok m' -> check_bool "roundtrip" true (messages_equal m m')
  | Error e -> Alcotest.fail e

let test_wire_roundtrip_empty_body () =
  let m = Message.request ~port:(Port.of_int64 1L) ~command:1 () in
  match roundtrip m with
  | Ok m' ->
    check_int "no body" 0 (Bytes.length m'.Message.body);
    check_bool "roundtrip" true (messages_equal m m')
  | Error e -> Alcotest.fail e

let test_wire_rejects_short_frame () =
  check_bool "short" true (Result.is_error (Wire.decode (Bytes.create 10)))

let prop_wire_roundtrip =
  qtest "wire roundtrip for arbitrary messages"
    QCheck.(
      pair
        (quad int64 (int_range 0 100) (int_range 0 1000) (int_range 0 1000))
        (pair bool (string_of_size (QCheck.Gen.int_range 0 500))))
    (fun ((port, command, arg0, arg1), (with_cap, body)) ->
      let m =
        Message.request ~port:(Port.of_int64 port) ~command
          ?cap:(if with_cap then Some sample_cap else None)
          ~arg0 ~arg1 ~body:(Bytes.of_string body) ()
      in
      match roundtrip m with Ok m' -> messages_equal m m' | Error _ -> false)

(* SplitMix64-driven fuzz: the same seed generates the same 1000
   messages on every run, covering every field of Message.t — including
   xid, which the qcheck property above predates. *)
module Prng = Amoeba_sim.Prng

let random_message prng =
  let cap =
    if Prng.bool prng then
      Some
        (Cap.v
           ~port:(Port.of_int64 (Prng.next_int64 prng))
           ~obj:(Prng.int prng 1_000_000)
           ~rights:(Amoeba_cap.Rights.of_int (Prng.int prng 0x10000))
           ~check:(Prng.next_int64 prng))
    else None
  in
  {
    Message.port = Port.of_int64 (Prng.next_int64 prng);
    command = Prng.int prng 0x1000;
    status = Status.of_int (Prng.int prng 9);
    cap;
    arg0 = Int64.to_int (Prng.next_int64 prng);
    arg1 = Int64.to_int (Prng.next_int64 prng);
    xid = Prng.int prng 1_000_000;
    body = Prng.bytes prng (Prng.int prng 600);
  }

let test_wire_roundtrip_fuzz_1k () =
  let prng = Prng.create ~seed:0xB0117EDL in
  for i = 1 to 1000 do
    let m = random_message prng in
    match roundtrip m with
    | Ok m' ->
      if not (messages_equal m m') then
        Alcotest.failf "message %d did not survive encode/decode (xid %d)" i m.Message.xid
    | Error e -> Alcotest.failf "message %d failed to decode: %s" i e
  done

(* ---- TCP over loopback, echo server in a thread ---- *)

let test_tcp_echo () =
  let server = Tcp.listen ~port:0 () in
  let handler request =
    Some
      (Message.reply ~status:Status.Ok ~arg0:(request.Message.arg0 * 2)
         ~body:request.Message.body ())
  in
  let server_thread = Thread.create (fun () -> Tcp.serve_connections server ~handler 1) () in
  let conn = Tcp.connect ~port:(Tcp.bound_port server) () in
  let reply =
    Tcp.trans conn (Message.request ~port:(Port.of_int64 9L) ~command:1 ~arg0:21 ~body:(payload 64) ())
  in
  check_int "doubled" 42 reply.Message.arg0;
  check_bytes "body echoed" (payload 64) reply.Message.body;
  (* several transactions on one connection *)
  let reply2 = Tcp.trans conn (Message.request ~port:(Port.of_int64 9L) ~command:1 ~arg0:5 ()) in
  check_int "second exchange" 10 reply2.Message.arg0;
  Tcp.close conn;
  Thread.join server_thread;
  Tcp.shutdown server

let test_tcp_handler_exception () =
  let server = Tcp.listen ~port:0 () in
  let handler _ : Message.t option = failwith "boom" in
  let server_thread = Thread.create (fun () -> Tcp.serve_connections server ~handler 1) () in
  let conn = Tcp.connect ~port:(Tcp.bound_port server) () in
  let reply = Tcp.trans conn (Message.request ~port:(Port.of_int64 9L) ~command:1 ()) in
  check_bool "failure reply" true (reply.Message.status = Status.Server_failure);
  Tcp.close conn;
  Thread.join server_thread;
  Tcp.shutdown server

let test_tcp_full_bullet_service () =
  (* the daemon configuration: a real Bullet server behind real sockets *)
  let b = make_bullet () in
  let server = Tcp.listen ~port:0 () in
  let handler request = Some (Bullet_core.Proto.dispatch b.server request) in
  let server_thread = Thread.create (fun () -> Tcp.serve_connections server ~handler 1) () in
  let conn = Tcp.connect ~port:(Tcp.bound_port server) () in
  let create_reply =
    Tcp.trans conn
      (Message.request ~port:(Bullet_core.Server.port b.server) ~command:Bullet_core.Proto.cmd_create
         ~arg0:2 ~body:(payload 5000) ())
  in
  check_bool "created" true (create_reply.Message.status = Status.Ok);
  let cap = Option.get create_reply.Message.cap in
  let read_reply =
    Tcp.trans conn
      (Message.request ~port:cap.Cap.port ~command:Bullet_core.Proto.cmd_read ~cap ())
  in
  check_bytes "read over TCP" (payload 5000) read_reply.Message.body;
  Tcp.close conn;
  Thread.join server_thread;
  Tcp.shutdown server

let test_tcp_concurrent_connections () =
  (* serve_forever threads connections; two clients interleave requests *)
  let server = Tcp.listen ~port:0 () in
  let handler request = Some (Message.reply ~status:Status.Ok ~arg0:(request.Message.arg0 + 1) ()) in
  let server_thread = Thread.create (fun () -> try Tcp.serve_forever server ~handler with _ -> ()) () in
  let c1 = Tcp.connect ~port:(Tcp.bound_port server) () in
  let c2 = Tcp.connect ~port:(Tcp.bound_port server) () in
  let r1 = Tcp.trans c1 (Message.request ~port:(Port.of_int64 1L) ~command:1 ~arg0:10 ()) in
  let r2 = Tcp.trans c2 (Message.request ~port:(Port.of_int64 1L) ~command:1 ~arg0:20 ()) in
  let r1' = Tcp.trans c1 (Message.request ~port:(Port.of_int64 1L) ~command:1 ~arg0:30 ()) in
  check_int "c1 first" 11 r1.Message.arg0;
  check_int "c2 interleaved" 21 r2.Message.arg0;
  check_int "c1 again" 31 r1'.Message.arg0;
  Tcp.close c1;
  Tcp.close c2;
  Tcp.shutdown server;
  (* closing a listening socket does not reliably wake a thread blocked
     in accept(2); leave the acceptor to die with the process *)
  ignore server_thread

let test_tcp_survives_garbage_bytes () =
  (* a client that speaks gibberish gets dropped; the server keeps
     serving the next connection *)
  let server = Tcp.listen ~port:0 () in
  let handler _ = Some (Message.reply ~status:Status.Ok ~arg0:7 ()) in
  let server_thread = Thread.create (fun () -> Tcp.serve_connections server ~handler 2) () in
  (* connection 1: a plausible length prefix followed by junk *)
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, Tcp.bound_port server));
  let junk = Bytes.of_string "\000\000\000\060this is definitely not an RPC frame, not even close.." in
  let (_ : int) = Unix.write sock junk 0 (Bytes.length junk) in
  (* the server replies Bad_request (junk decodes as a frame of garbage)
     or closes; either way it must not die *)
  Unix.close sock;
  (* connection 2: a real client still gets service *)
  let conn = Tcp.connect ~port:(Tcp.bound_port server) () in
  let reply = Tcp.trans conn (Message.request ~port:(Port.of_int64 1L) ~command:1 ()) in
  check_int "server survived the junk" 7 reply.Message.arg0;
  Tcp.close conn;
  Thread.join server_thread;
  Tcp.shutdown server

(* ---- image persistence ---- *)

let test_image_save_load () =
  let clock = Amoeba_sim.Clock.create () in
  let geometry = Amoeba_disk.Geometry.small ~sectors:256 in
  let device = Amoeba_disk.Block_device.create ~id:"img" ~geometry ~clock in
  Amoeba_disk.Block_device.poke device ~sector:7 (payload 512);
  let path = Filename.temp_file "bullet" ".img" in
  Amoeba_disk.Image.save device path;
  (match Amoeba_disk.Image.load ~id:"img2" ~clock path with
  | Ok device2 ->
    check_bytes "contents survive" (payload 512)
      (Amoeba_disk.Block_device.peek device2 ~sector:7 ~count:1);
    check_bool "geometry survives" true (Amoeba_disk.Block_device.geometry device2 = geometry)
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_image_rejects_garbage () =
  let clock = Amoeba_sim.Clock.create () in
  let path = Filename.temp_file "bullet" ".img" in
  let oc = open_out_bin path in
  output_string oc "not an image at all";
  close_out oc;
  check_bool "garbage rejected" true (Result.is_error (Amoeba_disk.Image.load ~id:"x" ~clock path));
  Sys.remove path

let test_image_load_or_create () =
  let clock = Amoeba_sim.Clock.create () in
  let geometry = Amoeba_disk.Geometry.small ~sectors:64 in
  let path = Filename.temp_file "bullet" ".img" in
  Sys.remove path;
  (match Amoeba_disk.Image.load_or_create ~id:"a" ~clock ~geometry path with
  | Ok (_, `Created) -> ()
  | Ok (_, `Loaded) -> Alcotest.fail "expected Created"
  | Error e -> Alcotest.fail e);
  let device = Amoeba_disk.Block_device.create ~id:"b" ~geometry ~clock in
  Amoeba_disk.Image.save device path;
  (match Amoeba_disk.Image.load_or_create ~id:"c" ~clock ~geometry path with
  | Ok (_, `Loaded) -> ()
  | Ok (_, `Created) -> Alcotest.fail "expected Loaded"
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_image_roundtrips_bullet_state () =
  (* store a file, image both drives, rebuild the world, read it back *)
  let b = make_bullet () in
  let cap = Bullet_core.Client.create b.client (payload 3000) in
  Amoeba_disk.Mirror.drain b.rig.mirror;
  let p1 = Filename.temp_file "d1" ".img" and p2 = Filename.temp_file "d2" ".img" in
  Amoeba_disk.Image.save b.rig.drive1 p1;
  Amoeba_disk.Image.save b.rig.drive2 p2;
  let clock = Amoeba_sim.Clock.create () in
  let d1 = Result.get_ok (Amoeba_disk.Image.load ~id:"r1" ~clock p1) in
  let d2 = Result.get_ok (Amoeba_disk.Image.load ~id:"r2" ~clock p2) in
  let mirror = Amoeba_disk.Mirror.create [ d1; d2 ] in
  let server, _ =
    Result.get_ok (Bullet_core.Server.start ~config:small_bullet_config mirror)
  in
  check_bytes "file survives re-imaging" (payload 3000) (ok_exn (Bullet_core.Server.read server cap));
  Sys.remove p1;
  Sys.remove p2

let suite =
  ( "wire",
    [
      Alcotest.test_case "frame roundtrip (request)" `Quick test_wire_roundtrip_request;
      Alcotest.test_case "frame roundtrip (reply, no cap)" `Quick test_wire_roundtrip_reply_no_cap;
      Alcotest.test_case "frame roundtrip (empty body)" `Quick test_wire_roundtrip_empty_body;
      Alcotest.test_case "short frame rejected" `Quick test_wire_rejects_short_frame;
      prop_wire_roundtrip;
      Alcotest.test_case "frame roundtrip fuzz, 1k messages (SplitMix64)" `Quick
        test_wire_roundtrip_fuzz_1k;
      Alcotest.test_case "tcp echo over loopback" `Quick test_tcp_echo;
      Alcotest.test_case "tcp handler exception" `Quick test_tcp_handler_exception;
      Alcotest.test_case "tcp full bullet service" `Quick test_tcp_full_bullet_service;
      Alcotest.test_case "tcp concurrent connections" `Quick test_tcp_concurrent_connections;
      Alcotest.test_case "tcp survives garbage bytes" `Quick test_tcp_survives_garbage_bytes;
      Alcotest.test_case "image save/load" `Quick test_image_save_load;
      Alcotest.test_case "image rejects garbage" `Quick test_image_rejects_garbage;
      Alcotest.test_case "image load_or_create" `Quick test_image_load_or_create;
      Alcotest.test_case "image roundtrips bullet state" `Quick test_image_roundtrips_bullet_state;
    ] )
