(* The metrics registry, scrape loop, health evaluator and SLO alerts,
   plus the cross-checks that keep the observability layer honest: a
   counter must agree with the trace events of the same run, and two
   runs of a scenario must scrape byte-identical snapshots. *)

open Helpers
module Clock = Amoeba_sim.Clock
module Stats = Amoeba_sim.Stats
module Metrics = Amoeba_metrics.Metrics
module Health = Amoeba_metrics.Health

(* ---- registry + scrape ---- *)

let test_registry_scrape () =
  let reg = Metrics.create "t" in
  let c = Metrics.counter reg "requests" in
  Metrics.Counter.add c 7;
  let cell = ref 3 in
  Metrics.gauge reg "depth" (fun () -> !cell);
  let h = Metrics.hist reg "lat_us" in
  Stats.Hist.record h 100;
  Stats.Hist.record h 200;
  let snap = Metrics.scrape reg ~at_us:42 in
  check_int "snapshot time" 42 snap.Metrics.at_us;
  check_int "three metrics" 3 (List.length snap.Metrics.samples);
  (* sorted by name: depth, lat_us, requests *)
  check_string "sorted names" "depth,lat_us,requests"
    (String.concat "," (List.map (fun s -> s.Metrics.s_name) snap.Metrics.samples));
  check_int "counter read" 7
    (Metrics.value_int (Option.get (Metrics.find snap "requests")));
  check_int "gauge read" 3 (Metrics.value_int (Option.get (Metrics.find snap "depth")));
  cell := 9;
  let snap2 = Metrics.scrape reg ~at_us:43 in
  check_int "gauge is live" 9 (Metrics.value_int (Option.get (Metrics.find snap2 "depth")));
  (match Metrics.find snap "lat_us" with
  | Some (Metrics.Hist { count; sum; _ }) ->
    check_int "hist count" 2 count;
    check_int "hist sum" 300 sum
  | _ -> Alcotest.fail "lat_us should scrape as a histogram");
  check_bool "missing metric" true (Metrics.find snap "nope" = None)

let test_duplicate_name_raises () =
  let reg = Metrics.create "dup" in
  ignore (Metrics.counter reg "n");
  Alcotest.check_raises "duplicate counter" (Metrics.Duplicate_metric "n") (fun () ->
      Metrics.gauge reg "n" (fun () -> 0));
  let reg2 = Metrics.create "dup2" in
  Metrics.gauge reg2 "g" (fun () -> 0);
  Alcotest.check_raises "duplicate hist" (Metrics.Duplicate_metric "g") (fun () ->
      ignore (Metrics.hist reg2 "g"))

let test_stats_source_expansion () =
  let reg = Metrics.create "src" in
  let stats = Stats.create "server" in
  Stats.incr stats "reads";
  Stats.add stats "bytes" 512;
  Metrics.stats_source reg ~prefix:"server" stats;
  let snap = Metrics.scrape reg ~at_us:0 in
  check_int "expanded counter" 512
    (Metrics.value_int (Option.get (Metrics.find snap "server.bytes")));
  check_int "expanded counter 2" 1
    (Metrics.value_int (Option.get (Metrics.find snap "server.reads")));
  (* the source is live: counters bumped after registration show up *)
  Stats.incr stats "reads";
  let snap2 = Metrics.scrape reg ~at_us:1 in
  check_int "live expansion" 2
    (Metrics.value_int (Option.get (Metrics.find snap2 "server.reads")))

(* ---- wire codec ---- *)

let test_codec_roundtrip () =
  let reg = Metrics.create "wire" in
  Metrics.Counter.add (Metrics.counter reg "c") 123456789;
  Metrics.gauge reg "g" (fun () -> -5);
  let h = Metrics.hist reg "h" in
  List.iter (Stats.Hist.record h) [ 10; 20; 30; 40; 5000 ];
  let snap = Metrics.scrape reg ~at_us:987_654_321 in
  let bytes = Metrics.encode_snapshot snap in
  (match Metrics.decode_snapshot bytes with
  | Error e -> Alcotest.fail ("decode failed: " ^ e)
  | Ok snap' ->
    check_int "time survives" snap.Metrics.at_us snap'.Metrics.at_us;
    check_bool "samples survive" true (snap.Metrics.samples = snap'.Metrics.samples);
    check_bytes "re-encode is identical" bytes (Metrics.encode_snapshot snap'));
  (* corruption must be loud, not lossy *)
  check_bool "truncation rejected" true
    (Result.is_error (Metrics.decode_snapshot (Bytes.sub bytes 0 (Bytes.length bytes - 1))));
  let trailing = Bytes.cat bytes (Bytes.make 1 '\000') in
  check_bool "trailing bytes rejected" true
    (Result.is_error (Metrics.decode_snapshot trailing));
  check_bool "empty body rejected" true
    (Result.is_error (Metrics.decode_snapshot Bytes.empty))

(* ---- ring + scraper ---- *)

let test_ring_bounds () =
  let ring = Metrics.Ring.create ~capacity:3 in
  let snap at = { Metrics.at_us = at; samples = [] } in
  List.iter (fun at -> Metrics.Ring.push ring (snap at)) [ 1; 2; 3; 4; 5 ];
  check_int "bounded" 3 (Metrics.Ring.length ring);
  check_string "oldest dropped" "3,4,5"
    (String.concat ","
       (List.map
          (fun s -> string_of_int s.Metrics.at_us)
          (Metrics.Ring.snapshots ring)));
  check_int "latest" 5 (Option.get (Metrics.Ring.latest ring)).Metrics.at_us

let test_scraper_interval () =
  let clock = Clock.create () in
  let reg = Metrics.create "scrape" in
  let c = Metrics.counter reg "ticks" in
  let scraper = Metrics.Scraper.create ~registry:reg ~clock ~interval_us:1_000 ~capacity:8 in
  (* due immediately at creation time *)
  check_bool "first poll scrapes" true (Metrics.Scraper.poll scraper <> None);
  Metrics.Counter.incr c;
  check_bool "not due again" true (Metrics.Scraper.poll scraper = None);
  Clock.advance clock 999;
  check_bool "still not due" true (Metrics.Scraper.poll scraper = None);
  Clock.advance clock 1;
  (match Metrics.Scraper.poll scraper with
  | None -> Alcotest.fail "scrape due after a full interval"
  | Some snap ->
    check_int "scraped at virtual now" 1_000 snap.Metrics.at_us;
    check_int "sees the counter" 1
      (Metrics.value_int (Option.get (Metrics.find snap "ticks"))));
  let forced = Metrics.Scraper.force scraper in
  check_int "force scrapes now" 1_000 forced.Metrics.at_us;
  check_int "ring keeps all three" 3 (Metrics.Ring.length (Metrics.Scraper.ring scraper))

(* ---- health state machine ---- *)

let snap_of at fields =
  {
    Metrics.at_us = at;
    samples =
      List.map
        (fun (name, v) -> { Metrics.s_name = name; s_value = Metrics.Counter v })
        (List.sort (fun (a, _) (b, _) -> String.compare a b) fields);
  }

let test_health_degraded_hysteresis () =
  let h = Health.create () in
  let obs at sync backlog =
    Health.observe h
      (snap_of at [ ("mirror.sync_state", sync); ("mirror.sectors_remaining", backlog) ])
  in
  check_bool "baseline healthy" true (obs 0 0 0 = Health.Healthy);
  (* entering a bad state is immediate *)
  check_bool "degraded at once" true
    (obs 100 1 512 = Health.Degraded { resync_backlog = 512 });
  (* same kind, different payload: the entry payload stands *)
  check_bool "entry payload kept" true
    (obs 200 2 8_192 = Health.Degraded { resync_backlog = 512 });
  (* one clean snapshot is not recovery (exit_after = 2) *)
  check_bool "one clean interval stays degraded" true
    (obs 300 0 0 = Health.Degraded { resync_backlog = 512 });
  check_bool "second clean interval recovers" true (obs 400 0 0 = Health.Healthy);
  check_string "transition labels" "healthy,degraded:512,healthy"
    (String.concat ","
       (List.map (fun (_, st) -> Health.state_label st) (Health.transitions h)))

let test_health_flap_resets_streak () =
  let h = Health.create () in
  let obs at sync = Health.observe h (snap_of at [ ("mirror.sync_state", sync) ]) in
  ignore (obs 0 0);
  ignore (obs 1 1);
  ignore (obs 2 0);
  (* the dirty snapshot resets the clean streak: still not recovered *)
  ignore (obs 3 1);
  ignore (obs 4 0);
  check_bool "flapping never recovers" true
    (match Health.state h with Health.Degraded _ -> true | _ -> false);
  ignore (obs 5 0);
  check_bool "two consecutive clean recover" true (Health.state h = Health.Healthy)

let test_health_overload_precedence () =
  let h = Health.create () in
  let base = [ ("sched.sheds", 0); ("sched.offered", 0); ("mirror.sync_state", 0) ] in
  ignore (Health.observe h (snap_of 0 base));
  (* both degraded and overloaded conditions hold; overloaded wins *)
  let st =
    Health.observe h
      (snap_of 100
         [ ("sched.sheds", 50); ("sched.offered", 100); ("mirror.sync_state", 1) ])
  in
  check_bool "overloaded wins" true (st = Health.Overloaded { shed_rate = 50 })

let test_health_churn_threshold () =
  let config = Health.default_config in
  let h = Health.create () in
  let obs at churn = Health.observe h (snap_of at [ ("lease.churn", churn) ]) in
  ignore (obs 0 0);
  (* delta below the threshold stays healthy *)
  check_bool "below threshold" true (obs 1 (config.Health.churn_per_interval - 1) = Health.Healthy);
  (* exactly at the threshold enters churn *)
  check_bool "at threshold" true
    (obs 2 (config.Health.churn_per_interval - 1 + config.Health.churn_per_interval)
    = Health.Lease_churning)

let test_slo_burn_hysteresis () =
  let slo =
    Health.Slo.create
      [
        {
          Health.Slo.al_name = "p99";
          objective = Health.Slo.P99_below { metric = "lat"; limit = 100 };
          window = 4;
          enter_pct = 50;
          exit_pct = 25;
        };
      ]
  in
  let obs at v = Health.Slo.observe slo (snap_of at [ ("lat", v) ]) in
  obs 0 50;
  obs 1 150;
  check_bool "1/2 violations is 50%: fires" true (Health.Slo.firing slo = [ "p99" ]);
  obs 2 50;
  (* 1/3 = 33% — above exit_pct, still firing *)
  check_bool "hysteresis holds" true (Health.Slo.firing slo = [ "p99" ]);
  obs 3 50;
  (* 1/4 = 25% — at exit_pct, clears *)
  check_bool "clears at exit" true (Health.Slo.firing slo = []);
  check_string "edges" "1:p99:fire,3:p99:clear"
    (String.concat ","
       (List.map
          (fun (at, n, f) -> Printf.sprintf "%d:%s:%s" at n (if f then "fire" else "clear"))
          (Health.Slo.transitions slo)))

let test_slo_delta_baseline () =
  let slo =
    Health.Slo.create
      [
        {
          Health.Slo.al_name = "goodput";
          objective = Health.Slo.Delta_at_least { metric = "done"; floor = 10 };
          window = 2;
          enter_pct = 50;
          exit_pct = 0;
        };
      ]
  in
  let obs at v = Health.Slo.observe slo (snap_of at [ ("done", v) ]) in
  (* first snapshot is a baseline, not a violation *)
  obs 0 0;
  check_bool "baseline never fires" true (Health.Slo.firing slo = []);
  obs 1 20;
  check_bool "good interval quiet" true (Health.Slo.firing slo = []);
  obs 2 21;
  check_bool "starved interval fires" true (Health.Slo.firing slo = [ "goodput" ])

let test_slo_validation () =
  let alert name =
    {
      Health.Slo.al_name = name;
      objective = Health.Slo.P99_below { metric = "m"; limit = 1 };
      window = 2;
      enter_pct = 50;
      exit_pct = 10;
    }
  in
  check_bool "duplicate names rejected" true
    (try
       ignore (Health.Slo.create [ alert "a"; alert "a" ]);
       false
     with Invalid_argument _ -> true);
  check_bool "exit above enter rejected" true
    (try
       ignore
         (Health.Slo.create [ { (alert "a") with Health.Slo.enter_pct = 10; exit_pct = 50 } ]);
       false
     with Invalid_argument _ -> true)

(* ---- trace <-> metrics self-consistency ---- *)

let test_trace_metrics_agree () =
  (* drive the client file cache under pressure with the tracer on: the
     registry's eviction counter, the stats counter and the trace's
     cache.client_evict events must all tell the same story *)
  let module File_cache = Amoeba_lease.File_cache in
  let clock = Clock.create () in
  let tracer = Amoeba_trace.Trace.create ~clock () in
  let sink = Amoeba_trace.Trace.sink tracer in
  let cache = File_cache.create ~capacity_bytes:8_192 in
  File_cache.set_tracer cache (Some tracer);
  let reg = Metrics.create "xcheck" in
  File_cache.register_metrics cache ~prefix:"client_cache" reg;
  let cap n =
    Amoeba_cap.Capability.v
      ~port:(Amoeba_cap.Port.of_int64 0x77L)
      ~obj:n ~rights:Amoeba_cap.Rights.all
      ~check:(Int64.of_int (n * 131))
  in
  for i = 1 to 6 do
    File_cache.insert cache (cap i) (Bytes.make 4_096 'x')
  done;
  let snap = Metrics.scrape reg ~at_us:(Clock.now clock) in
  let evictions =
    Metrics.value_int (Option.get (Metrics.find snap "client_cache.evictions"))
  in
  let evicted_bytes =
    Metrics.value_int (Option.get (Metrics.find snap "client_cache.bytes_evicted"))
  in
  let traced =
    List.length
      (List.filter
         (fun sp -> String.equal sp.Amoeba_trace.Sink.name "cache.client_evict")
         (Amoeba_trace.Sink.spans sink))
  in
  check_int "four evictions" 4 evictions;
  check_int "trace events match the counter" evictions traced;
  check_int "bytes follow" (4 * 4_096) evicted_bytes;
  check_int "stats and registry agree" evictions
    (Stats.count (File_cache.stats cache) "evictions")

(* ---- double-run determinism of a full scenario ---- *)

let test_storm_scenario_deterministic () =
  let scenario1, report1 = Experiments.metrics_overload_storm () in
  let scenario2, report2 = Experiments.metrics_overload_storm () in
  let wire s =
    String.concat ""
      (List.map
         (fun snap -> Bytes.to_string (Metrics.encode_snapshot snap))
         s.Experiments.ms_snapshots)
  in
  check_bool "snapshots byte-identical across runs" true
    (String.equal (wire scenario1) (wire scenario2));
  check_bool "transitions identical" true
    (scenario1.Experiments.ms_transitions = scenario2.Experiments.ms_transitions);
  check_bool "alert edges identical" true
    (scenario1.Experiments.ms_alerts = scenario2.Experiments.ms_alerts);
  check_bool "sched reports identical" true (report1 = report2);
  (* the transition shape is the storm signature *)
  (match List.map snd scenario1.Experiments.ms_transitions with
  | Health.Healthy :: Health.Overloaded { shed_rate } :: _ ->
    check_bool "shed rate positive" true (shed_rate > 0)
  | _ -> Alcotest.fail "storm must enter Overloaded from Healthy");
  (* the registry instruments ARE the report tallies *)
  match List.rev scenario1.Experiments.ms_snapshots with
  | [] -> Alcotest.fail "no snapshots scraped"
  | final :: _ ->
    check_int "offered tally matches the final scrape"
      report1.Amoeba_sched.Sched.offered
      (Metrics.value_int (Option.get (Metrics.find final "sched.offered")))

let suite =
  ( "metrics",
    [
      Alcotest.test_case "registry scrape" `Quick test_registry_scrape;
      Alcotest.test_case "duplicate names raise" `Quick test_duplicate_name_raises;
      Alcotest.test_case "stats source expansion" `Quick test_stats_source_expansion;
      Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
      Alcotest.test_case "ring bounds" `Quick test_ring_bounds;
      Alcotest.test_case "scraper interval" `Quick test_scraper_interval;
      Alcotest.test_case "health degraded hysteresis" `Quick test_health_degraded_hysteresis;
      Alcotest.test_case "health flap resets streak" `Quick test_health_flap_resets_streak;
      Alcotest.test_case "health overload precedence" `Quick test_health_overload_precedence;
      Alcotest.test_case "health churn threshold" `Quick test_health_churn_threshold;
      Alcotest.test_case "slo burn hysteresis" `Quick test_slo_burn_hysteresis;
      Alcotest.test_case "slo delta baseline" `Quick test_slo_delta_baseline;
      Alcotest.test_case "slo validation" `Quick test_slo_validation;
      Alcotest.test_case "trace and metrics agree" `Quick test_trace_metrics_agree;
      Alcotest.test_case "storm scenario deterministic" `Quick
        test_storm_scenario_deterministic;
    ] )
