(* Tests for the UNIX emulation layer. *)

open Helpers
module Fs = Unix_emu.Posix_fs
module Dir = Amoeba_dir.Dir_server
module Dir_client = Amoeba_dir.Dir_client
module Server = Bullet_core.Server

let make () =
  let bullet = make_bullet () in
  let dirs = Dir.create ~store:bullet.client () in
  Amoeba_dir.Dir_proto.serve dirs bullet.transport;
  let dclient = Dir_client.connect bullet.transport (Dir.port dirs) in
  let fs = Fs.mount ~bullet:bullet.client ~dirs:dclient ~root:(Dir_client.get_root dclient) in
  (bullet, fs)

let test_write_read_whole () =
  let _bullet, fs = make () in
  Fs.write_whole fs "hello.txt" "hello world";
  check_string "roundtrip" "hello world" (Fs.read_whole fs "hello.txt")

let test_open_missing_fails () =
  let _bullet, fs = make () in
  (try
     ignore (Fs.openfile fs "ghost" [ Fs.O_RDONLY ]);
     Alcotest.fail "expected ENOENT"
   with Fs.Unix_error ("open", _) -> ())

let test_creat_semantics () =
  let _bullet, fs = make () in
  let fd = Fs.openfile fs "new" [ Fs.O_WRONLY; Fs.O_CREAT ] in
  let (_ : int) = Fs.write fd (Bytes.of_string "data") in
  Fs.close fs fd;
  check_string "created" "data" (Fs.read_whole fs "new")

let test_lseek_read () =
  let _bullet, fs = make () in
  Fs.write_whole fs "f" "0123456789";
  Fs.with_file fs "f" [ Fs.O_RDONLY ] (fun fd ->
      check_int "seek set" 4 (Fs.lseek fd 4 `SET);
      let buf = Bytes.create 3 in
      check_int "read 3" 3 (Fs.read fd buf 3);
      check_string "window" "456" (Bytes.to_string buf);
      check_int "seek cur" 8 (Fs.lseek fd 1 `CUR);
      check_int "seek end" 10 (Fs.lseek fd 0 `END);
      check_int "eof" 0 (Fs.read fd buf 3))

let test_negative_seek_rejected () =
  let _bullet, fs = make () in
  Fs.write_whole fs "f" "abc";
  Fs.with_file fs "f" [ Fs.O_RDONLY ] (fun fd ->
      try
        ignore (Fs.lseek fd (-1) `SET);
        Alcotest.fail "expected EINVAL"
      with Fs.Unix_error ("lseek", _) -> ())

let test_sparse_write_via_seek () =
  let _bullet, fs = make () in
  Fs.with_file fs "sparse" [ Fs.O_WRONLY; Fs.O_CREAT ] (fun fd ->
      let (_ : int) = Fs.lseek fd 5 `SET in
      ignore (Fs.write fd (Bytes.of_string "end")));
  check_string "zero filled" "\000\000\000\000\000end" (Fs.read_whole fs "sparse")

let test_append_flag () =
  let _bullet, fs = make () in
  Fs.write_whole fs "log" "start";
  Fs.with_file fs "log" [ Fs.O_WRONLY; Fs.O_APPEND ] (fun fd ->
      ignore (Fs.write fd (Bytes.of_string "+more")));
  check_string "appended" "start+more" (Fs.read_whole fs "log")

let test_trunc_flag () =
  let _bullet, fs = make () in
  Fs.write_whole fs "f" "long old contents";
  Fs.with_file fs "f" [ Fs.O_WRONLY; Fs.O_TRUNC ] (fun fd -> ignore (Fs.write fd (Bytes.of_string "new")));
  check_string "truncated" "new" (Fs.read_whole fs "f")

let test_write_on_readonly_fd_rejected () =
  let _bullet, fs = make () in
  Fs.write_whole fs "f" "x";
  Fs.with_file fs "f" [ Fs.O_RDONLY ] (fun fd ->
      try
        ignore (Fs.write fd (Bytes.of_string "no"));
        Alcotest.fail "expected EBADF"
      with Fs.Unix_error ("write", _) -> ())

let test_close_to_open_consistency () =
  (* a written file becomes visible to others only at close *)
  let _bullet, fs = make () in
  Fs.write_whole fs "doc" "old";
  let fd = Fs.openfile fs "doc" [ Fs.O_WRONLY; Fs.O_TRUNC ] in
  let (_ : int) = Fs.write fd (Bytes.of_string "new") in
  check_string "still old before close" "old" (Fs.read_whole fs "doc");
  Fs.close fs fd;
  check_string "new after close" "new" (Fs.read_whole fs "doc")

let test_rewrite_keeps_versions () =
  let _bullet, fs = make () in
  Fs.write_whole fs "doc" "v1";
  Fs.write_whole fs "doc" "v2";
  Fs.write_whole fs "doc" "v3";
  let info = Fs.stat fs "doc" in
  check_int "current size" 2 info.Fs.st_size;
  check_bool "old versions retained" true (info.Fs.st_versions > 1)

let test_double_close_rejected () =
  let _bullet, fs = make () in
  Fs.write_whole fs "f" "x";
  let fd = Fs.openfile fs "f" [ Fs.O_RDONLY ] in
  Fs.close fs fd;
  (try
     Fs.close fs fd;
     Alcotest.fail "expected EBADF"
   with Fs.Unix_error ("close", _) -> ())

let test_mkdir_readdir () =
  let _bullet, fs = make () in
  Fs.mkdir fs "sub";
  Fs.write_whole fs "sub/a" "1";
  Fs.write_whole fs "sub/b" "2";
  check_bool "listing" true (Fs.readdir fs "sub" = [ "a"; "b" ]);
  check_bool "root has sub" true (List.mem "sub" (Fs.readdir fs ""));
  (try
     Fs.mkdir fs "sub";
     Alcotest.fail "expected EEXIST"
   with Fs.Unix_error ("mkdir", _) -> ())

let test_nested_paths () =
  let _bullet, fs = make () in
  Fs.mkdir fs "a";
  Fs.mkdir fs "a/b";
  Fs.write_whole fs "a/b/deep.txt" "treasure";
  check_string "deep" "treasure" (Fs.read_whole fs "a/b/deep.txt");
  let info = Fs.stat fs "a/b" in
  check_bool "directory" true info.Fs.st_is_dir

let test_unlink_deletes_versions () =
  let bullet, fs = make () in
  Fs.write_whole fs "f" "v1";
  Fs.write_whole fs "f" "v2";
  let live_with_file = Server.live_files bullet.server in
  Fs.unlink fs "f";
  (try
     ignore (Fs.read_whole fs "f");
     Alcotest.fail "expected ENOENT"
   with Fs.Unix_error _ -> ());
  check_bool "bullet files reclaimed" true (Server.live_files bullet.server < live_with_file)

let test_rename () =
  let _bullet, fs = make () in
  Fs.write_whole fs "old" "stuff";
  Fs.mkdir fs "dir";
  Fs.rename fs "old" "dir/new";
  check_string "moved" "stuff" (Fs.read_whole fs "dir/new");
  (try
     ignore (Fs.read_whole fs "old");
     Alcotest.fail "expected ENOENT"
   with Fs.Unix_error _ -> ())

let test_stat_missing () =
  let _bullet, fs = make () in
  (try
     ignore (Fs.stat fs "ghost");
     Alcotest.fail "expected ENOENT"
   with Fs.Unix_error ("stat", _) -> ())

let test_open_directory_rejected () =
  let _bullet, fs = make () in
  Fs.mkdir fs "d";
  let attempt flags =
    try
      ignore (Fs.openfile fs "d" flags);
      Alcotest.fail "expected EISDIR"
    with Fs.Unix_error ("open", _) -> ()
  in
  attempt [ Fs.O_RDONLY ];
  (* O_TRUNC must not clobber a directory binding either *)
  attempt [ Fs.O_WRONLY; Fs.O_TRUNC ]

let test_large_file_through_emulation () =
  let _bullet, fs = make () in
  let big = String.init 100_000 (fun i -> Char.chr ((i * 13) land 0xff)) in
  Fs.write_whole fs "big" big;
  check_string "big roundtrip" big (Fs.read_whole fs "big")

let suite =
  ( "unix_emu",
    [
      Alcotest.test_case "write/read whole file" `Quick test_write_read_whole;
      Alcotest.test_case "open missing fails" `Quick test_open_missing_fails;
      Alcotest.test_case "creat semantics" `Quick test_creat_semantics;
      Alcotest.test_case "lseek and read" `Quick test_lseek_read;
      Alcotest.test_case "negative seek rejected" `Quick test_negative_seek_rejected;
      Alcotest.test_case "sparse write via seek" `Quick test_sparse_write_via_seek;
      Alcotest.test_case "O_APPEND" `Quick test_append_flag;
      Alcotest.test_case "O_TRUNC" `Quick test_trunc_flag;
      Alcotest.test_case "write on read-only fd rejected" `Quick test_write_on_readonly_fd_rejected;
      Alcotest.test_case "close-to-open consistency" `Quick test_close_to_open_consistency;
      Alcotest.test_case "rewrite keeps versions" `Quick test_rewrite_keeps_versions;
      Alcotest.test_case "double close rejected" `Quick test_double_close_rejected;
      Alcotest.test_case "mkdir and readdir" `Quick test_mkdir_readdir;
      Alcotest.test_case "nested paths" `Quick test_nested_paths;
      Alcotest.test_case "unlink deletes versions" `Quick test_unlink_deletes_versions;
      Alcotest.test_case "rename" `Quick test_rename;
      Alcotest.test_case "stat missing" `Quick test_stat_missing;
      Alcotest.test_case "opening a directory rejected" `Quick test_open_directory_rejected;
      Alcotest.test_case "large file through emulation" `Quick test_large_file_through_emulation;
    ] )
