(* Tests for the Bullet server: the paper's interface, protection,
   caching, write-through, P-FACTOR, crash recovery and compaction. *)

open Helpers
module Server = Bullet_core.Server
module Cap = Amoeba_cap.Capability
module Rights = Amoeba_cap.Rights
module Status = Amoeba_rpc.Status
module Clock = Amoeba_sim.Clock
module Stats = Amoeba_sim.Stats
module Mirror = Amoeba_disk.Mirror
module Dev = Amoeba_disk.Block_device

let make () =
  let b = make_bullet () in
  (b.rig, b.server)

let test_create_read_roundtrip () =
  let _rig, server = make () in
  let cap = ok_exn (Server.create server (payload 1000)) in
  check_bytes "roundtrip" (payload 1000) (ok_exn (Server.read server cap));
  check_int "size" 1000 (ok_exn (Server.size server cap))

let test_empty_file () =
  let _rig, server = make () in
  let cap = ok_exn (Server.create server (Bytes.create 0)) in
  check_int "size 0" 0 (ok_exn (Server.size server cap));
  check_int "empty read" 0 (Bytes.length (ok_exn (Server.read server cap)))

let test_delete_removes () =
  let _rig, server = make () in
  let cap = ok_exn (Server.create server (payload 10)) in
  ok_exn (Server.delete server cap);
  expect_error Status.No_such_object (Server.read server cap);
  check_int "no live files" 0 (Server.live_files server)

let test_files_are_immutable_distinct_objects () =
  let _rig, server = make () in
  let cap1 = ok_exn (Server.create server (Bytes.of_string "v1")) in
  let cap2 = ok_exn (Server.modify server cap1 ~pos:0 (Bytes.of_string "v2")) in
  check_bool "new object" false (Cap.equal cap1 cap2);
  check_string "old version untouched" "v1" (Bytes.to_string (ok_exn (Server.read server cap1)));
  check_string "new version" "v2" (Bytes.to_string (ok_exn (Server.read server cap2)))

let test_modify_splice_and_extend () =
  let _rig, server = make () in
  let cap = ok_exn (Server.create server (Bytes.of_string "hello world")) in
  let spliced = ok_exn (Server.modify server cap ~pos:6 (Bytes.of_string "there")) in
  check_string "splice" "hello there" (Bytes.to_string (ok_exn (Server.read server spliced)));
  let extended = ok_exn (Server.modify server cap ~pos:11 (Bytes.of_string "!!")) in
  check_string "extend" "hello world!!" (Bytes.to_string (ok_exn (Server.read server extended)))

let test_modify_past_end_rejected () =
  let _rig, server = make () in
  let cap = ok_exn (Server.create server (Bytes.of_string "abc")) in
  expect_error Status.Bad_request (Server.modify server cap ~pos:4 (Bytes.of_string "x"))

let test_append_truncate () =
  let _rig, server = make () in
  let cap = ok_exn (Server.create server (Bytes.of_string "abc")) in
  let appended = ok_exn (Server.append server cap (Bytes.of_string "def")) in
  check_string "append" "abcdef" (Bytes.to_string (ok_exn (Server.read server appended)));
  let truncated = ok_exn (Server.truncate server appended 2) in
  check_string "truncate" "ab" (Bytes.to_string (ok_exn (Server.read server truncated)));
  expect_error Status.Bad_request (Server.truncate server truncated 5)

let test_read_range () =
  let _rig, server = make () in
  let cap = ok_exn (Server.create server (Bytes.of_string "hello world")) in
  check_string "range" "world" (Bytes.to_string (ok_exn (Server.read_range server cap ~pos:6 ~len:5)));
  expect_error Status.Bad_request (Server.read_range server cap ~pos:6 ~len:6)

(* ---- protection ---- *)

let test_forged_check_rejected () =
  let _rig, server = make () in
  let cap = ok_exn (Server.create server (payload 10)) in
  let forged = { cap with Cap.check = Int64.add cap.Cap.check 1L } in
  expect_error Status.Bad_capability (Server.read server forged)

let test_widened_rights_rejected () =
  let _rig, server = make () in
  let cap = ok_exn (Server.create server (payload 10)) in
  let read_only = ok_exn (Server.restrict server cap Rights.read) in
  (* reading with the narrowed cap works *)
  check_bytes "read ok" (payload 10) (ok_exn (Server.read server read_only));
  (* deleting does not *)
  expect_error Status.Bad_capability (Server.delete server read_only);
  (* and manually widening the bits is detected *)
  let forged = { read_only with Cap.rights = Rights.all } in
  expect_error Status.Bad_capability (Server.delete server forged)

let test_unknown_object_rejected () =
  let _rig, server = make () in
  let cap = ok_exn (Server.create server (payload 10)) in
  let stranger = { cap with Cap.obj = cap.Cap.obj + 1 } in
  expect_error Status.No_such_object (Server.read server stranger)

let test_wrong_port_rejected () =
  let _rig, server = make () in
  let cap = ok_exn (Server.create server (payload 10)) in
  let foreign = { cap with Cap.port = Amoeba_cap.Port.of_int64 1L } in
  expect_error Status.No_such_object (Server.read server foreign)

let test_stale_capability_after_delete_and_reuse () =
  let _rig, server = make () in
  let cap = ok_exn (Server.create server (payload 10)) in
  ok_exn (Server.delete server cap);
  (* the inode number is reused, but with a fresh random: the old
     capability must not open the new file *)
  let cap2 = ok_exn (Server.create server (payload 20)) in
  check_int "inode reused" cap.Cap.obj cap2.Cap.obj;
  expect_error Status.Bad_capability (Server.read server cap)

(* ---- caching ---- *)

let test_cache_hit_avoids_disk () =
  let rig, server = make () in
  let cap = ok_exn (Server.create server (payload 4096)) in
  let reads_before = Stats.count (Dev.stats rig.drive1) "reads" in
  let (_ : bytes) = ok_exn (Server.read server cap) in
  check_int "no disk read on hit" reads_before (Stats.count (Dev.stats rig.drive1) "reads");
  check_int "hit counted" 1 (Stats.count (Server.stats server) "cache_hits")

let test_cache_miss_loads_from_disk () =
  let rig, server = make () in
  (* fill the 512 KB test cache so the first file gets evicted *)
  let first = ok_exn (Server.create server (payload 100_000)) in
  let rec flood n caps =
    if n = 0 then caps else flood (n - 1) (ok_exn (Server.create server (payload 100_000)) :: caps)
  in
  let _others = flood 5 [] in
  let reads_before = Stats.count (Dev.stats rig.drive1) "reads" in
  check_bytes "reload from disk" (payload 100_000) (ok_exn (Server.read server first));
  check_bool "disk was read" true (Stats.count (Dev.stats rig.drive1) "reads" > reads_before);
  check_bool "miss counted" true (Stats.count (Server.stats server) "cache_misses" >= 1);
  (* second read is a hit again *)
  let reads_now = Stats.count (Dev.stats rig.drive1) "reads" in
  let (_ : bytes) = ok_exn (Server.read server first) in
  check_int "back in cache" reads_now (Stats.count (Dev.stats rig.drive1) "reads")

let test_file_larger_than_cache_rejected () =
  let _rig, server = make () in
  (* test cache is 512 KB *)
  expect_error Status.No_space (Server.create server (Bytes.create (600 * 1024)))

let test_cache_hit_faster_than_miss () =
  let rig, server = make () in
  let first = ok_exn (Server.create server (payload 100_000)) in
  let rec flood n = if n > 0 then (ignore (ok_exn (Server.create server (payload 100_000))); flood (n - 1)) in
  flood 5;
  let _, miss_time = Clock.elapsed rig.clock (fun () -> ok_exn (Server.read server first)) in
  let _, hit_time = Clock.elapsed rig.clock (fun () -> ok_exn (Server.read server first)) in
  check_bool "hit beats miss" true (hit_time < miss_time)

(* ---- write-through and P-FACTOR ---- *)

let test_create_writes_both_disks () =
  let rig, server = make () in
  let cap = ok_exn (Server.create server ~p_factor:2 (payload 4096)) in
  Mirror.drain rig.mirror;
  Dev.fail rig.drive1;
  (* replica alone can serve after a cache flush: force a miss by
     restarting the server *)
  Server.crash server;
  let server2, _ = Result.get_ok (Server.start ~config:small_bullet_config rig.mirror) in
  ignore (Server.port server2);
  (* the old capability still works: same seed, same sealing key *)
  check_bytes "replica serves" (payload 4096) (ok_exn (Server.read server2 cap))

let test_p_factor_zero_faster_than_one () =
  let rig, server = make () in
  let _, t0 = Clock.elapsed rig.clock (fun () -> ok_exn (Server.create server ~p_factor:0 (payload 65536))) in
  let _, t1 = Clock.elapsed rig.clock (fun () -> ok_exn (Server.create server ~p_factor:1 (payload 65536))) in
  check_bool "p=0 beats p=1" true (t0 < t1)

let test_p_factor_above_drive_count_rejected () =
  let _rig, server = make () in
  expect_error Status.Bad_request (Server.create server ~p_factor:3 (payload 10))

let test_p0_create_lost_on_crash () =
  let rig, server = make () in
  let cap = ok_exn (Server.create server ~p_factor:0 (payload 1000)) in
  Server.crash server;
  let server2, report = Result.get_ok (Server.start ~config:small_bullet_config rig.mirror) in
  check_int "file lost" 0 report.Bullet_core.Inode_table.files;
  expect_error Status.No_such_object (Server.read server2 cap)

let test_p1_create_survives_crash () =
  let rig, server = make () in
  let cap = ok_exn (Server.create server ~p_factor:1 (payload 1000)) in
  Server.crash server;
  let server2, report = Result.get_ok (Server.start ~config:small_bullet_config rig.mirror) in
  check_int "file survived" 1 report.Bullet_core.Inode_table.files;
  check_bytes "contents intact" (payload 1000) (ok_exn (Server.read server2 cap))

let test_dead_server_refuses () =
  let _rig, server = make () in
  Server.crash server;
  expect_error Status.Server_failure (Server.create server (payload 1))

let test_bad_sector_failover () =
  (* a media error on the primary mid-read: the mirror falls through to
     the replica and the client never notices *)
  let rig, server = make () in
  let cap = ok_exn (Server.create server ~p_factor:2 (payload 4096)) in
  Mirror.drain rig.mirror;
  (* evict from cache so the next read hits the disk *)
  Server.crash server;
  let server2, _ = Result.get_ok (Server.start ~config:small_bullet_config rig.mirror) in
  let inode_raw = Bullet_core.Inode_table.load rig.mirror in
  let first_block =
    match inode_raw with
    | Ok (table, _) ->
      let found = ref 0 in
      Bullet_core.Inode_table.iter_live table (fun _ inode ->
          found := inode.Bullet_core.Layout.first_block);
      !found
    | Error e -> Alcotest.fail e
  in
  Dev.set_bad_sector rig.drive1 first_block;
  check_bytes "replica serves around the bad sector" (payload 4096)
    (ok_exn (Server.read server2 cap))

let test_degraded_read_after_drive_failure () =
  (* the primary drive dies between requests: reads keep succeeding off
     the replica and the mirror records that it is running degraded *)
  let rig, server = make () in
  let cap = ok_exn (Server.create server ~p_factor:2 (payload 8192)) in
  Server.crash server;
  let server2, _ = Result.get_ok (Server.start ~config:small_bullet_config rig.mirror) in
  Dev.fail rig.drive1;
  check_bytes "replica serves the READ" (payload 8192) (ok_exn (Server.read server2 cap));
  check_bool "reads flagged degraded" true
    (Stats.count (Mirror.stats rig.mirror) "degraded_reads" > 0);
  Mirror.recover rig.mirror;
  check_int "resync recorded" 1 (Stats.count (Mirror.stats rig.mirror) "resyncs");
  check_bytes "healthy read still fine" (payload 8192) (ok_exn (Server.read server2 cap))

let test_transient_error_failover_during_read () =
  (* the primary is live but throws a soft media error mid-READ: the
     next drive serves the block and the failover shows in the stats *)
  let rig, server = make () in
  let cap = ok_exn (Server.create server ~p_factor:2 (payload 8192)) in
  Server.crash server;
  let server2, _ = Result.get_ok (Server.start ~config:small_bullet_config rig.mirror) in
  let armed = ref false in
  Dev.set_fault_hook rig.drive1
    (Some
       (fun ~sector:_ ~count:_ ~write ->
         if write || not !armed then false
         else begin
           armed := false;
           true
         end));
  armed := true;
  check_bytes "client never notices" (payload 8192) (ok_exn (Server.read server2 cap));
  check_int "failover counted" 1 (Stats.count (Mirror.stats rig.mirror) "read_failovers");
  Dev.set_fault_hook rig.drive1 None

let test_recovery_by_disk_copy () =
  let rig, server = make () in
  let cap = ok_exn (Server.create server ~p_factor:1 (payload 3000)) in
  (* replica dies before its background write lands *)
  Dev.fail rig.drive2;
  Mirror.drain rig.mirror;
  (* paper recovery: repair + whole-disk copy *)
  Mirror.recover rig.mirror;
  Dev.fail rig.drive1;
  Server.crash server;
  let server2, _ = Result.get_ok (Server.start ~config:small_bullet_config rig.mirror) in
  check_bytes "recovered replica serves" (payload 3000) (ok_exn (Server.read server2 cap))

(* ---- allocation and compaction ---- *)

let test_disk_space_reclaimed () =
  let _rig, server = make () in
  let free0 = Server.free_blocks server in
  let cap = ok_exn (Server.create server (payload 10_000)) in
  check_bool "space consumed" true (Server.free_blocks server < free0);
  ok_exn (Server.delete server cap);
  check_int "space reclaimed" free0 (Server.free_blocks server)

let test_restart_rebuilds_free_list () =
  let rig, server = make () in
  let keep = ok_exn (Server.create server (payload 5000)) in
  let doomed = ok_exn (Server.create server (payload 5000)) in
  ok_exn (Server.delete server doomed);
  let free_before = Server.free_blocks server in
  Server.crash server;
  let server2, _ = Result.get_ok (Server.start ~config:small_bullet_config rig.mirror) in
  check_int "free list rebuilt" free_before (Server.free_blocks server2);
  check_bytes "survivor intact" (payload 5000) (ok_exn (Server.read server2 keep))

let test_compaction_consolidates_holes () =
  let _rig, server = make () in
  (* fragment the disk: lay files down contiguously, then delete every
     other one (interleaved create/delete would let first-fit reuse the
     hole immediately) *)
  let rec build n acc =
    if n = 0 then acc else build (n - 1) (ok_exn (Server.create server (payload 8192)) :: acc)
  in
  let files = build 16 [] in
  let rec alternate keep = function
    | [] -> []
    | cap :: rest ->
      if keep then cap :: alternate false rest
      else begin
        ok_exn (Server.delete server cap);
        alternate true rest
      end
  in
  let keeps = alternate true files in
  check_bool "fragmented" true (Server.disk_fragmentation server > 0.);
  let moved = Server.compact_disk server in
  check_bool "blocks moved" true (moved > 0);
  Alcotest.(check (float 1e-9)) "one hole afterwards" 0.0 (Server.disk_fragmentation server);
  (* every kept file still reads correctly after relocation *)
  List.iter (fun cap -> check_bytes "intact" (payload 8192) (ok_exn (Server.read server cap))) keeps

let test_compaction_survives_restart () =
  let rig, server = make () in
  let keep = ok_exn (Server.create server (payload 8192)) in
  let doomed = ok_exn (Server.create server (payload 8192)) in
  let keep2 = ok_exn (Server.create server (payload 8192)) in
  ok_exn (Server.delete server doomed);
  let (_ : int) = Server.compact_disk server in
  Server.crash server;
  let server2, report = Result.get_ok (Server.start ~config:small_bullet_config rig.mirror) in
  check_int "both files" 2 report.Bullet_core.Inode_table.files;
  check_bytes "keep" (payload 8192) (ok_exn (Server.read server2 keep));
  check_bytes "keep2" (payload 8192) (ok_exn (Server.read server2 keep2))

let test_inode_exhaustion () =
  let b = make_bullet ~max_files:31 () in
  let server = b.server in
  let rec fill n = match Server.create server (payload 16) with Ok _ -> fill (n + 1) | Error e -> (n, e) in
  let made, err = fill 0 in
  check_int "all inodes used" 31 made;
  check_bool "then no space" true (err = Status.No_space)

let test_disk_exhaustion_frees_inode () =
  let b = make_bullet ~sectors:1536 () in
  let server = b.server in
  (* data area ~ 1527 sectors: room for one 500 KB file but not two *)
  let big = Bytes.create 500_000 in
  let cap = ok_exn (Server.create server big) in
  let inodes_free = Server.free_inodes server in
  (* no room for another 500 KB on disk *)
  expect_error Status.No_space (Server.create server big);
  check_int "inode not leaked" inodes_free (Server.free_inodes server);
  ok_exn (Server.delete server cap);
  let (_ : Cap.t) = ok_exn (Server.create server big) in
  ()

(* model-based: random create/read/delete against a reference map *)
let prop_server_model =
  qtest "server behaves like an immutable object store" ~count:60
    QCheck.(pair int64 (small_list (int_range 0 5000)))
    (fun (seed, sizes) ->
      let b = make_bullet () in
      let server = b.server in
      let prng = Amoeba_sim.Prng.create ~seed in
      let live = ref [] in
      let ok = ref true in
      let step size =
        match Amoeba_sim.Prng.int prng 3 with
        | 0 ->
          let data = Bytes.init size (fun i -> Char.chr ((i * 3 + size) land 0xff)) in
          (match Server.create server data with
          | Ok cap -> live := (cap, data) :: !live
          | Error _ -> ok := false)
        | 1 when !live <> [] ->
          let idx = Amoeba_sim.Prng.int prng (List.length !live) in
          let cap, data = List.nth !live idx in
          (match Server.read server cap with
          | Ok contents -> if not (Bytes.equal contents data) then ok := false
          | Error _ -> ok := false)
        | 2 when !live <> [] ->
          let idx = Amoeba_sim.Prng.int prng (List.length !live) in
          let cap, _ = List.nth !live idx in
          live := List.filteri (fun i _ -> i <> idx) !live;
          (match Server.delete server cap with Ok () -> () | Error _ -> ok := false)
        | _ -> ()
      in
      List.iter step sizes;
      (* finally everything still live must read back *)
      List.iter
        (fun (cap, data) ->
          match Server.read server cap with
          | Ok contents -> if not (Bytes.equal contents data) then ok := false
          | Error _ -> ok := false)
        !live;
      !ok)

let suite =
  ( "server",
    [
      Alcotest.test_case "create/read roundtrip" `Quick test_create_read_roundtrip;
      Alcotest.test_case "empty file" `Quick test_empty_file;
      Alcotest.test_case "delete removes" `Quick test_delete_removes;
      Alcotest.test_case "files are immutable" `Quick test_files_are_immutable_distinct_objects;
      Alcotest.test_case "modify splices and extends" `Quick test_modify_splice_and_extend;
      Alcotest.test_case "modify past end rejected" `Quick test_modify_past_end_rejected;
      Alcotest.test_case "append and truncate" `Quick test_append_truncate;
      Alcotest.test_case "read_range" `Quick test_read_range;
      Alcotest.test_case "forged check rejected" `Quick test_forged_check_rejected;
      Alcotest.test_case "widened rights rejected" `Quick test_widened_rights_rejected;
      Alcotest.test_case "unknown object rejected" `Quick test_unknown_object_rejected;
      Alcotest.test_case "wrong port rejected" `Quick test_wrong_port_rejected;
      Alcotest.test_case "stale cap after inode reuse rejected" `Quick
        test_stale_capability_after_delete_and_reuse;
      Alcotest.test_case "cache hit avoids disk" `Quick test_cache_hit_avoids_disk;
      Alcotest.test_case "cache miss loads from disk" `Quick test_cache_miss_loads_from_disk;
      Alcotest.test_case "file larger than cache rejected" `Quick test_file_larger_than_cache_rejected;
      Alcotest.test_case "cache hit faster than miss" `Quick test_cache_hit_faster_than_miss;
      Alcotest.test_case "create writes both disks" `Quick test_create_writes_both_disks;
      Alcotest.test_case "p=0 faster than p=1" `Quick test_p_factor_zero_faster_than_one;
      Alcotest.test_case "p-factor above drive count rejected" `Quick
        test_p_factor_above_drive_count_rejected;
      Alcotest.test_case "p=0 create lost on crash" `Quick test_p0_create_lost_on_crash;
      Alcotest.test_case "p=1 create survives crash" `Quick test_p1_create_survives_crash;
      Alcotest.test_case "dead server refuses requests" `Quick test_dead_server_refuses;
      Alcotest.test_case "bad sector fails over to replica" `Quick test_bad_sector_failover;
      Alcotest.test_case "recovery by whole-disk copy" `Quick test_recovery_by_disk_copy;
      Alcotest.test_case "degraded read after drive failure" `Quick
        test_degraded_read_after_drive_failure;
      Alcotest.test_case "transient error fails over mid-read" `Quick
        test_transient_error_failover_during_read;
      Alcotest.test_case "disk space reclaimed on delete" `Quick test_disk_space_reclaimed;
      Alcotest.test_case "restart rebuilds free list" `Quick test_restart_rebuilds_free_list;
      Alcotest.test_case "compaction consolidates holes" `Quick test_compaction_consolidates_holes;
      Alcotest.test_case "compaction survives restart" `Quick test_compaction_survives_restart;
      Alcotest.test_case "inode exhaustion" `Quick test_inode_exhaustion;
      Alcotest.test_case "disk exhaustion frees the inode" `Quick test_disk_exhaustion_frees_inode;
      prop_server_model;
    ] )
