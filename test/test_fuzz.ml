(* Fuzz / robustness properties: malformed and random inputs must never
   crash a server — they produce error replies or repairs. *)

open Helpers
module Message = Amoeba_rpc.Message
module Status = Amoeba_rpc.Status
module Cap = Amoeba_cap.Capability
module Port = Amoeba_cap.Port
module Prng = Amoeba_sim.Prng

(* random messages aimed at a dispatcher *)
let arbitrary_message =
  QCheck.make
    ~print:(fun (command, obj, rights, check, arg0, arg1, body) ->
      Printf.sprintf "cmd=%d obj=%d rights=%d check=%Ld arg0=%d arg1=%d body=%d" command obj rights
        check arg0 arg1 (String.length body))
    QCheck.Gen.(
      tup7 (int_range 0 15) (int_range 0 300) (int_range 0 255) (map Int64.of_int int)
        (int_range (-100) 1_000_000) (int_range (-100) 1_000_000) (string_size (int_range 0 200)))

let fuzz_service name make_dispatch =
  qtest name ~count:300 arbitrary_message (fun (command, obj, rights, check, arg0, arg1, body) ->
      let dispatch, port = make_dispatch () in
      let cap = Cap.v ~port ~obj ~rights:(Amoeba_cap.Rights.of_int rights) ~check in
      let request =
        Message.request ~port ~command ~cap ~arg0 ~arg1 ~body:(Bytes.of_string body) ()
      in
      match dispatch request with
      | (_ : Message.t) -> true
      | exception _ -> false)

(* share one rig across iterations: fuzzing must not corrupt it either *)
let bullet_rig = lazy (make_bullet ())

let fuzz_bullet =
  fuzz_service "bullet dispatcher survives random requests" (fun () ->
      let b = Lazy.force bullet_rig in
      (Bullet_core.Proto.dispatch b.server, Bullet_core.Server.port b.server))

let nfs_rig =
  lazy
    (let clock = Amoeba_sim.Clock.create () in
     let geometry = Amoeba_disk.Geometry.small ~sectors:16_384 in
     let dev = Amoeba_disk.Block_device.create ~id:"fz" ~geometry ~clock in
     Nfs_baseline.Nfs_server.format dev ~max_files:64;
     Result.get_ok (Nfs_baseline.Nfs_server.mount dev))

let fuzz_nfs =
  fuzz_service "nfs dispatcher survives random requests" (fun () ->
      let server = Lazy.force nfs_rig in
      (Nfs_baseline.Nfs_proto.dispatch server, Nfs_baseline.Nfs_server.port server))

let dir_rig =
  lazy
    (let b = make_bullet () in
     Amoeba_dir.Dir_server.create ~store:b.client ())

let fuzz_dir =
  fuzz_service "directory dispatcher survives random requests" (fun () ->
      let dirs = Lazy.force dir_rig in
      (Amoeba_dir.Dir_proto.dispatch dirs, Amoeba_dir.Dir_server.port dirs))

(* the bullet rig still works after the beating *)
let test_bullet_survives_fuzzing () =
  let b = Lazy.force bullet_rig in
  let cap = Bullet_core.Client.create b.client (payload 100) in
  check_bytes "still serving" (payload 100) (Bullet_core.Client.read b.client cap)

(* the printable capability form must round-trip exactly — leased client
   caches key on it, so a collision or a lossy field would alias files *)
let test_cap_string_roundtrip () =
  let prng = Prng.create ~seed:0xCA9AB171E5L in
  for _ = 1 to 1_000 do
    let cap =
      Cap.v ~port:(Port.random prng)
        ~obj:(Prng.int prng 0x4000_0000)
        ~rights:(Amoeba_cap.Rights.of_int (Prng.int prng 0x1_0000))
        ~check:(Prng.next_int64 prng)
    in
    let back = Cap.of_string (Cap.to_string cap) in
    if not (Cap.equal cap back) then Alcotest.failf "round trip broke: %s" (Cap.to_string cap)
  done

(* wire decoding of arbitrary bytes *)
let fuzz_wire_decode =
  qtest "wire decode never raises" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 300))
    (fun s ->
      match Amoeba_rpc.Wire.decode (Bytes.of_string s) with Ok _ | Error _ -> true)

(* a disk full of garbage must load with repairs or a clean error *)
let fuzz_garbage_disk =
  qtest "boot scan survives a corrupted inode table" ~count:60 QCheck.int64 (fun seed ->
      let rig = make_rig ~sectors:1024 () in
      let (_ : Bullet_core.Layout.descriptor) =
        Bullet_core.Inode_table.format rig.mirror ~max_files:63
      in
      (* splatter random bytes over the inode table (sectors 1..1), keep
         the descriptor intact *)
      let prng = Prng.create ~seed in
      let garbage = Prng.bytes prng 512 in
      Amoeba_disk.Block_device.poke rig.drive1 ~sector:1 garbage;
      Amoeba_disk.Block_device.poke rig.drive2 ~sector:1 garbage;
      match Bullet_core.Inode_table.load rig.mirror with
      | Error _ -> true
      | Ok (table, _report) ->
        (* whatever survived the scan must be internally consistent:
           no overlapping live files, all within the data area *)
        let desc = Bullet_core.Inode_table.descriptor table in
        let lo = Bullet_core.Layout.data_start desc in
        let hi = lo + desc.Bullet_core.Layout.data_size in
        let extents = ref [] in
        let ok = ref true in
        Bullet_core.Inode_table.iter_live table (fun _ inode ->
            let blocks = (inode.Bullet_core.Layout.size_bytes + 511) / 512 in
            let start = inode.Bullet_core.Layout.first_block in
            if start < lo || start + blocks > hi then ok := false;
            if blocks > 0 then extents := (start, blocks) :: !extents);
        let sorted = List.sort compare !extents in
        let rec no_overlap = function
          | (s1, n1) :: ((s2, _) :: _ as rest) -> s1 + n1 <= s2 && no_overlap rest
          | _ -> true
        in
        !ok && no_overlap sorted)

(* a server booted from a garbage disk still serves new files *)
let test_server_boots_from_repaired_disk () =
  let rig = make_rig ~sectors:1024 () in
  Bullet_core.Server.format rig.mirror ~max_files:63;
  let prng = Prng.create ~seed:0xBADL in
  Amoeba_disk.Block_device.poke rig.drive1 ~sector:1 (Prng.bytes prng 512);
  Amoeba_disk.Block_device.poke rig.drive2 ~sector:1 (Prng.bytes prng 512);
  match Bullet_core.Server.start ~config:small_bullet_config rig.mirror with
  | Error e -> Alcotest.failf "boot failed: %s" e
  | Ok (server, _report) ->
    let cap = ok_exn (Bullet_core.Server.create server (payload 700)) in
    check_bytes "serves after repair" (payload 700) (ok_exn (Bullet_core.Server.read server cap))

(* the UNIX emulation against an in-memory reference file system *)
let fuzz_unix_emu_model =
  qtest "unix emulation matches a reference model" ~count:40
    QCheck.(pair int64 (small_list (int_range 0 5)))
    (fun (seed, ops) ->
      let b = make_bullet () in
      let dirs = Amoeba_dir.Dir_server.create ~store:b.client () in
      Amoeba_dir.Dir_proto.serve dirs b.transport;
      let dclient = Amoeba_dir.Dir_client.connect b.transport (Amoeba_dir.Dir_server.port dirs) in
      let fs =
        Unix_emu.Posix_fs.mount ~bullet:b.client ~dirs:dclient
          ~root:(Amoeba_dir.Dir_client.get_root dclient)
      in
      let reference : (string, string) Hashtbl.t = Hashtbl.create 8 in
      let prng = Prng.create ~seed in
      let names = [| "a"; "b"; "c"; "d" |] in
      let pick () = names.(Prng.int prng (Array.length names)) in
      let ok = ref true in
      let apply op =
        match op with
        | 0 | 1 ->
          (* write random contents *)
          let name = pick () in
          let contents = Bytes.to_string (Prng.bytes prng (Prng.int prng 2000)) in
          Unix_emu.Posix_fs.write_whole fs name contents;
          Hashtbl.replace reference name contents
        | 2 ->
          (* read and compare *)
          let name = pick () in
          let expected = Hashtbl.find_opt reference name in
          let actual =
            match Unix_emu.Posix_fs.read_whole fs name with
            | contents -> Some contents
            | exception Unix_emu.Posix_fs.Unix_error _ -> None
          in
          if expected <> actual then ok := false
        | 3 ->
          (* unlink *)
          let name = pick () in
          (match Unix_emu.Posix_fs.unlink fs name with
          | () -> if not (Hashtbl.mem reference name) then ok := false
          | exception Unix_emu.Posix_fs.Unix_error _ ->
            if Hashtbl.mem reference name then ok := false);
          Hashtbl.remove reference name
        | 4 ->
          (* rename *)
          let from_name = pick () and to_name = pick () in
          (match Unix_emu.Posix_fs.rename fs from_name to_name with
          | () -> (
            if from_name <> to_name then
              match Hashtbl.find_opt reference from_name with
              | Some contents ->
                Hashtbl.remove reference from_name;
                Hashtbl.replace reference to_name contents
              | None -> ok := false)
          | exception Unix_emu.Posix_fs.Unix_error _ ->
            if Hashtbl.mem reference from_name then ok := false)
        | _ ->
          (* listing matches *)
          let listed = List.sort compare (Unix_emu.Posix_fs.readdir fs "") in
          let expected =
            List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) reference [])
          in
          if listed <> expected then ok := false
      in
      List.iter apply ops;
      (* final sweep: every reference file reads back identically *)
      Hashtbl.iter
        (fun name contents ->
          match Unix_emu.Posix_fs.read_whole fs name with
          | actual -> if actual <> contents then ok := false
          | exception Unix_emu.Posix_fs.Unix_error _ -> ok := false)
        reference;
      !ok)

(* durability contract under random workloads with crashes: a file
   created with P-FACTOR >= 1 and never deleted must survive every
   crash+reboot with its exact contents; a P-FACTOR 0 file may vanish,
   but if it is still readable it must be intact *)
let prop_durability_across_crashes =
  qtest "p>=1 files survive crashes intact" ~count:25
    QCheck.(pair int64 (small_list (int_range 0 3000)))
    (fun (seed, sizes) ->
      let rig = make_rig () in
      Bullet_core.Server.format rig.mirror ~max_files:256;
      let boot () =
        match Bullet_core.Server.start ~config:small_bullet_config rig.mirror with
        | Ok (server, _) -> server
        | Error e -> Alcotest.failf "boot failed: %s" e
      in
      let server = ref (boot ()) in
      let prng = Prng.create ~seed in
      let durable = ref [] in
      let volatile = ref [] in
      let ok = ref true in
      let step size =
        match Prng.int prng 5 with
        | 0 | 1 ->
          let data = Bytes.init size (fun i -> Char.chr ((i + size) land 0xff)) in
          let p = Prng.int_in prng 1 2 in
          (match Bullet_core.Server.create !server ~p_factor:p data with
          | Ok cap -> durable := (cap, data) :: !durable
          | Error _ -> ok := false)
        | 2 ->
          let data = Bytes.init size (fun i -> Char.chr (i land 0x7f)) in
          (match Bullet_core.Server.create !server ~p_factor:0 data with
          | Ok cap -> volatile := (cap, data) :: !volatile
          | Error _ -> ok := false)
        | 3 when !durable <> [] ->
          let idx = Prng.int prng (List.length !durable) in
          let cap, _ = List.nth !durable idx in
          durable := List.filteri (fun i _ -> i <> idx) !durable;
          (match Bullet_core.Server.delete !server cap with Ok () -> () | Error _ -> ok := false)
        | _ ->
          (* crash and reboot *)
          Bullet_core.Server.crash !server;
          server := boot ();
          (* p=0 survivors must still be intact; the lost ones are
             forgotten *)
          volatile :=
            List.filter
              (fun (cap, data) ->
                match Bullet_core.Server.read !server cap with
                | Ok contents ->
                  if not (Bytes.equal contents data) then ok := false;
                  true
                | Error _ -> false)
              !volatile
      in
      List.iter step sizes;
      (* final audit: every durable file reads back exactly *)
      Bullet_core.Server.crash !server;
      server := boot ();
      List.iter
        (fun (cap, data) ->
          match Bullet_core.Server.read !server cap with
          | Ok contents -> if not (Bytes.equal contents data) then ok := false
          | Error _ -> ok := false)
        !durable;
      !ok)

let suite =
  ( "fuzz",
    [
      fuzz_bullet;
      fuzz_nfs;
      fuzz_dir;
      Alcotest.test_case "bullet survives fuzzing" `Quick test_bullet_survives_fuzzing;
      Alcotest.test_case "capability string form round-trips" `Quick test_cap_string_roundtrip;
      fuzz_wire_decode;
      fuzz_garbage_disk;
      Alcotest.test_case "server boots from repaired disk" `Quick
        test_server_boots_from_repaired_disk;
      fuzz_unix_emu_model;
      prop_durability_across_crashes;
    ] )
