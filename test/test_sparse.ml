(* Tests for the sparse-capability scheme (paper reference [12]) and the
   mapped-file client path (paper §2.2), plus the stat RPC. *)

open Helpers
module Sparse = Amoeba_cap.Sparse
module Cap = Amoeba_cap.Capability
module Rights = Amoeba_cap.Rights
module Port = Amoeba_cap.Port
module Mapped = Bullet_core.Mapped
module Client = Bullet_core.Client

let scheme = Sparse.create ()

let random = 0x1234_5678_9ABCL

let owner =
  Cap.v ~port:(Port.of_int64 5L) ~obj:9 ~rights:Sparse.owner_rights
    ~check:(Sparse.owner_check ~random)

let test_owner_verifies () = check_bool "owner ok" true (Sparse.verify scheme ~random ~cap:owner)

let test_offline_restriction_verifies () =
  let read_only = Sparse.restrict_offline scheme ~owner ~rights:Rights.read in
  check_bool "derived without the server" true (Sparse.verify scheme ~random ~cap:read_only);
  check_int "rights narrowed" (Rights.to_int Rights.read) (Rights.to_int read_only.Cap.rights)

let test_cannot_widen_restricted () =
  let read_only = Sparse.restrict_offline scheme ~owner ~rights:Rights.read in
  (* flipping the rights bits without recomputing the check fails *)
  let forged = { read_only with Cap.rights = Rights.(union read delete) } in
  check_bool "widened forgery rejected" false (Sparse.verify scheme ~random ~cap:forged);
  (* and pretending to be the owner with a restricted check fails too:
     the owner check is the random itself, which F hides *)
  let fake_owner = { read_only with Cap.rights = Sparse.owner_rights } in
  check_bool "fake owner rejected" false (Sparse.verify scheme ~random ~cap:fake_owner)

let test_restriction_requires_owner () =
  let read_only = Sparse.restrict_offline scheme ~owner ~rights:Rights.read in
  (try
     ignore (Sparse.restrict_offline scheme ~owner:read_only ~rights:Rights.none);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_distinct_rights_distinct_checks () =
  let a = Sparse.restrict_offline scheme ~owner ~rights:Rights.read in
  let b = Sparse.restrict_offline scheme ~owner ~rights:Rights.delete in
  check_bool "different rights, different checks" false (Int64.equal a.Cap.check b.Cap.check)

let prop_sparse_roundtrip =
  qtest "sparse verify accepts every honest restriction" QCheck.(pair int64 (int_range 0 254))
    (fun (obj_random, rights_bits) ->
      let rights = Rights.of_int rights_bits in
      let owner =
        Cap.v ~port:(Port.of_int64 1L) ~obj:1 ~rights:Sparse.owner_rights
          ~check:(Sparse.owner_check ~random:obj_random)
      in
      let derived = Sparse.restrict_offline scheme ~owner ~rights in
      Sparse.verify scheme ~random:obj_random ~cap:derived)

(* ---- mapped files ---- *)

let test_map_is_lazy () =
  let b = make_bullet () in
  let cap = Client.create b.client (payload 50_000) in
  let stats = Amoeba_rpc.Transport.stats b.transport in
  let before = Amoeba_sim.Stats.count stats "transactions" in
  let mapping = Mapped.map b.client cap in
  (* mapping costs exactly one SIZE transaction, no data *)
  check_int "one RPC to map" (before + 1) (Amoeba_sim.Stats.count stats "transactions");
  check_int "length known" 50_000 (Mapped.length mapping);
  check_bool "nothing resident" false (Mapped.is_resident mapping)

let test_first_touch_faults_whole_file () =
  let b = make_bullet () in
  let data = payload 50_000 in
  let cap = Client.create b.client data in
  let mapping = Mapped.map b.client cap in
  let stats = Amoeba_rpc.Transport.stats b.transport in
  let before = Amoeba_sim.Stats.count stats "transactions" in
  check_bool "byte matches" true (Mapped.get mapping 17 = Bytes.get data 17);
  check_int "one READ for the whole file" (before + 1) (Amoeba_sim.Stats.count stats "transactions");
  (* subsequent touches are free *)
  check_bytes "range" (Bytes.sub data 100 200) (Mapped.sub mapping ~pos:100 ~len:200);
  check_int "no more RPCs" (before + 1) (Amoeba_sim.Stats.count stats "transactions");
  check_bool "resident now" true (Mapped.is_resident mapping)

let test_unmap_refaults () =
  let b = make_bullet () in
  let cap = Client.create b.client (payload 1000) in
  let mapping = Mapped.map b.client cap in
  let (_ : char) = Mapped.get mapping 0 in
  Mapped.unmap mapping;
  check_bool "dropped" false (Mapped.is_resident mapping);
  let stats = Amoeba_rpc.Transport.stats b.transport in
  let before = Amoeba_sim.Stats.count stats "transactions" in
  let (_ : char) = Mapped.get mapping 0 in
  check_int "faulted in again" (before + 1) (Amoeba_sim.Stats.count stats "transactions")

let test_map_bounds () =
  let b = make_bullet () in
  let cap = Client.create b.client (payload 10) in
  let mapping = Mapped.map b.client cap in
  (try
     ignore (Mapped.get mapping 10);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ---- stat RPC ---- *)

let test_stat_rpc () =
  let b = make_bullet () in
  let before = Client.stat b.client in
  check_int "empty server" 0 before.Client.live_files;
  let cap = Client.create b.client (payload 10_000) in
  let after = Client.stat b.client in
  check_int "one file" 1 after.Client.live_files;
  check_bool "blocks consumed" true (after.Client.free_blocks < before.Client.free_blocks);
  check_bool "cache holds it" true (after.Client.cache_used >= 10_000);
  Client.delete b.client cap;
  let final = Client.stat b.client in
  check_int "reclaimed" before.Client.free_blocks final.Client.free_blocks

let suite =
  ( "sparse",
    [
      Alcotest.test_case "owner capability verifies" `Quick test_owner_verifies;
      Alcotest.test_case "offline restriction verifies" `Quick test_offline_restriction_verifies;
      Alcotest.test_case "cannot widen a restricted cap" `Quick test_cannot_widen_restricted;
      Alcotest.test_case "restriction requires the owner cap" `Quick test_restriction_requires_owner;
      Alcotest.test_case "distinct rights, distinct checks" `Quick
        test_distinct_rights_distinct_checks;
      prop_sparse_roundtrip;
      Alcotest.test_case "mapping is lazy" `Quick test_map_is_lazy;
      Alcotest.test_case "first touch faults whole file" `Quick test_first_touch_faults_whole_file;
      Alcotest.test_case "unmap refaults" `Quick test_unmap_refaults;
      Alcotest.test_case "mapping bounds" `Quick test_map_bounds;
      Alcotest.test_case "stat RPC" `Quick test_stat_rpc;
    ] )
