(* Tests for the fault-injection subsystem: plans, the injector, and the
   client-visible behaviour they produce (retry, dedup, recovery). *)

open Helpers
module Clock = Amoeba_sim.Clock
module Stats = Amoeba_sim.Stats
module Dev = Amoeba_disk.Block_device
module Mirror = Amoeba_disk.Mirror
module Transport = Amoeba_rpc.Transport
module Message = Amoeba_rpc.Message
module Status = Amoeba_rpc.Status
module Server = Bullet_core.Server
module Client = Bullet_core.Client
module Plan = Amoeba_fault.Plan
module Injector = Amoeba_fault.Injector

let test_plan_steps_in_order () =
  let plan =
    Plan.create ~seed:1L
    |> fun p -> Plan.at p ~us:50 (Plan.Drive_fail 0)
    |> fun p -> Plan.at p ~us:10 Plan.Server_crash
  in
  (match Plan.steps plan with
  | [ a; b ] ->
    check_int "insertion order kept" 50 a.Plan.at_us;
    check_int "insertion order kept" 10 b.Plan.at_us
  | _ -> Alcotest.fail "expected two steps");
  check_bool "negative time rejected" true
    (try
       ignore (Plan.at plan ~us:(-1) Plan.Server_crash);
       false
     with Invalid_argument _ -> true)

let test_scripted_drive_failure_fires_on_poll () =
  let rig = make_rig () in
  let plan = Plan.create ~seed:2L |> fun p -> Plan.at p ~us:100 (Plan.Drive_fail 0) in
  let injector = Injector.attach ~mirror:rig.mirror ~clock:rig.clock plan in
  check_bool "not yet due" false (Dev.is_failed rig.drive1);
  check_int "one event pending" 1 (Injector.pending injector);
  Clock.advance rig.clock 100;
  Injector.poll injector;
  check_bool "fired at its time" true (Dev.is_failed rig.drive1);
  check_int "queue drained" 0 (Injector.pending injector);
  check_int "counted" 1 (Stats.count (Injector.stats injector) "drive_failures")

let test_same_time_events_fire_in_plan_order () =
  (* fail-then-recover at the same instant: if the order were not the
     plan's, the recover would no-op and the drive would stay dead *)
  let rig = make_rig () in
  let plan =
    Plan.create ~seed:3L
    |> fun p -> Plan.at p ~us:10 (Plan.Drive_fail 1)
    |> fun p -> Plan.at p ~us:10 Plan.Drive_recover
  in
  let injector = Injector.attach ~mirror:rig.mirror ~clock:rig.clock plan in
  Clock.advance rig.clock 10;
  Injector.poll injector;
  check_bool "failed then recovered" false (Dev.is_failed rig.drive2);
  check_int "resync happened" 1 (Stats.count (Mirror.stats rig.mirror) "resyncs")

let test_recovery_runs_off_the_measured_path () =
  let rig = make_rig () in
  let plan =
    Plan.create ~seed:4L
    |> fun p -> Plan.at p ~us:0 (Plan.Drive_fail 1)
    |> fun p -> Plan.at p ~us:5 Plan.Drive_recover
  in
  let injector = Injector.attach ~mirror:rig.mirror ~clock:rig.clock plan in
  Clock.advance rig.clock 5;
  let before = Clock.now rig.clock in
  Injector.poll injector;
  check_int "whole-disk copy charged no observed time" before (Clock.now rig.clock);
  let resync = Stats.summary (Injector.stats injector) "resync_us" in
  check_bool "but its duration was recorded" true (resync.Stats.mean > 0.)

let test_sector_error_rates_switch_on_and_off () =
  let rig = make_rig () in
  Mirror.write rig.mirror ~sync:2 ~sector:0 (payload 512);
  let off_at = Clock.now rig.clock + 1_000 in
  let plan =
    Plan.create ~seed:5L
    |> fun p -> Plan.at p ~us:0 (Plan.Sector_errors 1.0)
    |> fun p -> Plan.at p ~us:off_at (Plan.Sector_errors 0.0)
  in
  let injector = Injector.attach ~mirror:rig.mirror ~clock:rig.clock plan in
  (* rate 1.0: every drive's read throws, so the mirror runs out of
     replicas to fail over to *)
  (try
     ignore (Mirror.read rig.mirror ~sector:0 ~count:1);
     Alcotest.fail "expected No_live_drive"
   with Mirror.No_live_drive -> ());
  check_bool "failover was attempted first" true
    (Stats.count (Mirror.stats rig.mirror) "read_failovers" > 0);
  Clock.advance rig.clock 1_000;
  Injector.poll injector;
  check_bytes "rate back to zero, reads recover" (payload 512)
    (Mirror.read rig.mirror ~sector:0 ~count:1);
  Injector.detach injector

let test_message_loss_recovered_by_retry () =
  let b = make_bullet () in
  let retrying =
    Client.connect ~attempts:10 ~backoff_us:10_000 b.transport (Server.port b.server)
  in
  let plan = Plan.create ~seed:0x5EEDL |> fun p -> Plan.at p ~us:0 (Plan.Message_loss 0.2) in
  let injector = Injector.attach ~transport:b.transport ~mirror:b.rig.mirror ~clock:b.rig.clock plan in
  let caps = Array.init 12 (fun i -> Client.create retrying (payload (100 + i))) in
  Array.iteri (fun i cap -> check_bytes "readback" (payload (100 + i)) (Client.read retrying cap)) caps;
  check_bool "losses actually happened" true (Stats.count (Client.stats retrying) "timeouts" > 0);
  check_bool "retries recovered them" true (Stats.count (Client.stats retrying) "retries" > 0);
  check_int "no create ran twice" 12 (Stats.count (Server.stats b.server) "creates");
  Injector.detach injector

let drop_first_reply transport =
  (* a one-shot reply loss, scripted by hand: the first matching message
     loses its reply, everything after is delivered *)
  let dropped = ref false in
  Transport.set_fault_hook transport
    (Some
       (fun ~link:_ _ ->
         if !dropped then Transport.Deliver
         else begin
           dropped := true;
           Transport.Drop_reply
         end))

let test_create_dedup_on_lost_reply () =
  let b = make_bullet () in
  let retrying = Client.connect ~attempts:3 ~backoff_us:10_000 b.transport (Server.port b.server) in
  drop_first_reply b.transport;
  let cap = Client.create retrying (payload 4_000) in
  Transport.set_fault_hook b.transport None;
  (* the first CREATE executed, its reply was lost, the retry got the
     cached reply: one file, one server-side execution *)
  check_int "one retry" 1 (Stats.count (Client.stats retrying) "retries");
  check_int "executed once" 1 (Stats.count (Server.stats b.server) "creates");
  check_int "one live file" 1 (Server.live_files b.server);
  check_bytes "the capability works" (payload 4_000) (Client.read retrying cap)

let test_delete_dedup_on_lost_reply () =
  let b = make_bullet () in
  let retrying = Client.connect ~attempts:3 ~backoff_us:10_000 b.transport (Server.port b.server) in
  let cap = Client.create retrying (payload 100) in
  drop_first_reply b.transport;
  (* without dedup the retried DELETE would hit a dead object and raise *)
  Client.delete retrying cap;
  Transport.set_fault_hook b.transport None;
  check_int "file gone" 0 (Server.live_files b.server)

let test_retry_exhaustion_surfaces_timeout () =
  let b = make_bullet () in
  let retrying = Client.connect ~attempts:2 ~backoff_us:1_000 b.transport (Server.port b.server) in
  Transport.set_fault_hook b.transport (Some (fun ~link:_ _ -> Transport.Drop_request));
  (try
     ignore (Client.create retrying (payload 10));
     Alcotest.fail "expected timeout"
   with Status.Error Status.Timeout -> ());
  Transport.set_fault_hook b.transport None;
  check_int "both attempts timed out" 2 (Stats.count (Client.stats retrying) "timeouts");
  check_int "gave up after the bound" 1 (Stats.count (Client.stats retrying) "exhausted")

let test_crash_reboot_spanned_by_retries () =
  let b = make_bullet () in
  let port = Server.port b.server in
  let server = ref b.server in
  let retrying = Client.connect ~attempts:8 ~backoff_us:50_000 b.transport port in
  let pre_crash = Client.create retrying (payload 2_048) in
  let timeout = Amoeba_rpc.Net_model.amoeba.Amoeba_rpc.Net_model.timeout_us in
  let crash_at = Clock.now b.rig.clock + 1_000 in
  let reboot_at = crash_at + (3 * timeout) in
  let plan =
    Plan.create ~seed:0xC0FFEEL
    |> fun p -> Plan.at p ~us:crash_at Plan.Server_crash
    |> fun p -> Plan.at p ~us:reboot_at Plan.Server_reboot
  in
  let on_crash () =
    Transport.unregister b.transport port;
    Server.crash !server
  in
  let on_reboot () =
    let booted, _ = Result.get_ok (Server.start ~config:small_bullet_config b.rig.mirror) in
    server := booted;
    Bullet_core.Proto.serve booted b.transport
  in
  let injector =
    Injector.attach ~transport:b.transport ~mirror:b.rig.mirror ~on_crash ~on_reboot
      ~clock:b.rig.clock plan
  in
  Clock.advance b.rig.clock 1_000;
  (* this read starts inside the outage: it times out, backs off, and a
     later attempt lands after the reboot has re-registered the port *)
  check_bytes "op spans the outage" (payload 2_048) (Client.read retrying pre_crash);
  check_bool "it took retries" true (Stats.count (Client.stats retrying) "retries" > 0);
  check_int "crash fired" 1 (Stats.count (Injector.stats injector) "server_crashes");
  check_int "reboot fired" 1 (Stats.count (Injector.stats injector) "server_reboots");
  check_bytes "pre-crash capability valid after reboot" (payload 2_048)
    (Client.read retrying pre_crash);
  Injector.detach injector

let run_loss_workload () =
  let b = make_bullet () in
  let retrying = Client.connect ~attempts:10 ~backoff_us:10_000 b.transport (Server.port b.server) in
  let plan = Plan.create ~seed:0xD13EL |> fun p -> Plan.at p ~us:0 (Plan.Message_loss 0.1) in
  let injector = Injector.attach ~transport:b.transport ~mirror:b.rig.mirror ~clock:b.rig.clock plan in
  for i = 1 to 10 do
    let cap = Client.create retrying (payload (200 + i)) in
    ignore (Client.read retrying cap)
  done;
  Injector.detach injector;
  (Clock.now b.rig.clock, Stats.count (Client.stats retrying) "retries")

let test_same_seed_same_run () =
  let t1, r1 = run_loss_workload () in
  let t2, r2 = run_loss_workload () in
  check_int "identical virtual end time" t1 t2;
  check_int "identical retry count" r1 r2;
  check_bool "faults did occur" true (r1 > 0)

(* ---- the plan line DSL ---- *)

let test_plan_parse () =
  let text =
    "# a full tour of the grammar\n\
     seed 42\n\
     at 1000 drive_fail 0\n\
     at 2000 drive_rejoin 128\n\
     \n\
     at 3000 loss 0.25\n\
     at 4000 link_loss wide 0.5\n\
     at 5000 link_partition wide\n\
     at 6000 link_heal wide\n\
     at 7000 server_crash\n"
  in
  match Plan.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan ->
    check_int "seven steps" 7 (List.length (Plan.steps plan));
    (match Plan.steps plan with
    | { Plan.at_us = 1000; event = Plan.Drive_fail 0 }
      :: { Plan.at_us = 2000; event = Plan.Drive_rejoin 128 }
      :: _ -> ()
    | _ -> Alcotest.fail "first steps mis-parsed");
    check_bool "link event parsed" true
      (List.exists
         (fun s -> s.Plan.event = Plan.Link_loss (Amoeba_rpc.Link.Wide, 0.5))
         (Plan.steps plan))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let test_plan_parse_errors_carry_line () =
  let pinned text expected =
    match Plan.parse text with
    | Ok _ -> Alcotest.failf "expected a parse error for %S" text
    | Error e -> Alcotest.(check string) "exact error" expected e
  in
  (* line, 1-based column of the offending token, and the token itself *)
  pinned "at 10 drive_fail 0\nat nonsense here\n"
    "plan line 2, col 4: bad time: \"nonsense\"";
  pinned "at 10 link_loss marsnet 0.5\n"
    "plan line 1, col 17: unknown link class: \"marsnet\"";
  pinned "seed 42\nat 10 drive_fial 0\n"
    "plan line 2, col 7: unknown event: \"drive_fial\"";
  pinned "at 10 loss\n" "plan line 1, col 11: missing operand after \"loss\"";
  pinned "at 5000\n" "plan line 1, col 8: missing event after \"at <us>\"";
  pinned "at 10 txn_crash coord_between\n"
    "plan line 1, col 17: unknown txn crash edge: \"coord_between\"";
  pinned "at 10 txn_drop sideways 1\n"
    "plan line 1, col 16: unknown txn leg: \"sideways\"";
  pinned "frob 1\n" "plan line 1, col 1: unknown directive: \"frob\"";
  pinned "at 10 shard_kill\n" "plan line 1, col 17: missing operand after \"shard_kill\"";
  pinned "seed 3\nat 10 shard_kill bee cow\n"
    "plan line 2, col 18: extra operand after \"shard_kill\": \"bee\""

let test_plan_parse_shard_kill () =
  match Plan.parse "seed 7\nat 4000000 shard_kill bee\nat 9000000 shard_kill emu\n" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan ->
    check_int "two steps" 2 (List.length (Plan.steps plan));
    (match Plan.steps plan with
    | { Plan.at_us = 4_000_000; event = Plan.Shard_kill "bee" }
      :: { Plan.at_us = 9_000_000; event = Plan.Shard_kill "emu" }
      :: [] -> ()
    | _ -> Alcotest.fail "shard_kill steps mis-parsed");
    check_bool "describes the victim" true
      (contains
         (Format.asprintf "%a" Plan.pp_event (Plan.Shard_kill "bee"))
         "bee")

(* The injector hands Shard_kill names to the harness action and counts
   them; a plan without a cluster attached is simply ignored. *)
let test_shard_kill_reaches_hook () =
  let clock = Amoeba_sim.Clock.create () in
  let plan =
    match Plan.parse "at 1000 shard_kill bee\n" with Ok p -> p | Error e -> failwith e
  in
  let killed = ref [] in
  let injector =
    Injector.attach ~on_shard_kill:(fun name -> killed := name :: !killed) ~clock plan
  in
  check_bool "not yet" true (!killed = []);
  Amoeba_sim.Clock.advance clock 1_000;
  Injector.poll injector;
  check_bool "hook got the name" true (!killed = [ "bee" ]);
  check_int "counted" 1 (Amoeba_sim.Stats.count (Injector.stats injector) "shard_kills");
  Injector.detach injector

let test_plan_parse_txn_directives () =
  let text =
    "seed 9\n\
     at 100 txn_crash coord_before_prepare\n\
     at 200 txn_crash coord_after_prepare\n\
     at 300 txn_crash coord_after_commit\n\
     at 400 txn_crash coord_mid_decision\n\
     at 500 txn_crash participant_after_prepare\n\
     at 600 txn_drop prepare_req 2\n\
     at 700 txn_drop decision_reply 1\n\
     at 800 txn_dup decision_req\n"
  in
  match Plan.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan ->
    check_int "eight steps" 8 (List.length (Plan.steps plan));
    check_bool "edges round-trip" true
      (List.exists
         (fun s -> s.Plan.event = Plan.Txn_crash Plan.Coord_after_commit_record)
         (Plan.steps plan));
    check_bool "drop leg and count" true
      (List.exists
         (fun s -> s.Plan.event = Plan.Txn_drop (Plan.Prepare_request, 2))
         (Plan.steps plan));
    check_bool "dup leg" true
      (List.exists
         (fun s -> s.Plan.event = Plan.Txn_dup (Plan.Decision_request))
         (Plan.steps plan))

let test_drive_rejoin_via_plan () =
  let rig = make_rig ~sectors:1024 () in
  Mirror.write rig.mirror ~sync:2 ~sector:10 (payload 512);
  let fail_at = Clock.now rig.clock + 100 in
  let plan =
    Plan.create ~seed:6L
    |> fun p -> Plan.at p ~us:fail_at (Plan.Drive_fail 1)
    |> fun p -> Plan.at p ~us:(fail_at + 100) (Plan.Drive_rejoin 256)
  in
  let injector = Injector.attach ~mirror:rig.mirror ~clock:rig.clock plan in
  Clock.advance rig.clock 100;
  Injector.poll injector;
  check_bool "drive down" true (Dev.is_failed rig.drive2);
  Mirror.write rig.mirror ~sync:1 ~sector:20 (payload 512);
  Clock.advance rig.clock 100;
  (* the rejoin fires AND the same poll runs the first resync step *)
  Injector.poll injector;
  check_bool "drive back" false (Dev.is_failed rig.drive2);
  check_int "rejoin counted" 1 (Stats.count (Injector.stats injector) "drive_rejoins");
  (match Mirror.sync_state rig.mirror with
  | Mirror.Resyncing { sectors_remaining } ->
    check_int "first batch already drained" (1024 - 256) sectors_remaining
  | _ -> Alcotest.fail "expected Resyncing");
  (* keep polling: the injector paces the resync to completion *)
  let rec pump n =
    if n > 0 && Mirror.sync_state rig.mirror <> Mirror.Clean then begin
      Clock.advance rig.clock 10;
      Injector.poll injector;
      pump (n - 1)
    end
  in
  pump 10;
  check_bool "clean after a few polls" true (Mirror.sync_state rig.mirror = Mirror.Clean);
  check_int "whole resync observed" 1 (Stats.count (Injector.stats injector) "online_resyncs");
  check_bytes "outage write made it to the rejoined drive" (payload 512)
    (Dev.peek rig.drive2 ~sector:20 ~count:1);
  Injector.detach injector

let test_link_faults_scope_to_tagged_traffic () =
  let rig = make_rig () in
  let plan =
    Plan.create ~seed:7L |> fun p -> Plan.at p ~us:0 (Plan.Link_partition Amoeba_rpc.Link.Wide)
  in
  let injector = Injector.attach ~clock:rig.clock plan in
  let msg = Message.request ~port:(Amoeba_cap.Port.of_int64 9L) ~command:1 () in
  Injector.poll injector;
  (match Injector.verdict injector ~link:(Some Amoeba_rpc.Link.Wide) msg with
  | Transport.Drop_request -> ()
  | _ -> Alcotest.fail "partitioned link must drop");
  (match Injector.verdict injector ~link:None msg with
  | Transport.Deliver -> ()
  | _ -> Alcotest.fail "untagged traffic unaffected");
  (match Injector.verdict injector ~link:(Some Amoeba_rpc.Link.Local) msg with
  | Transport.Deliver -> ()
  | _ -> Alcotest.fail "other links unaffected");
  check_int "drops counted" 1 (Stats.count (Injector.stats injector) "link_partition_drops");
  Injector.detach injector

let run_resync_workload () =
  (* a fail + rejoin riding a live read workload, twice: the scheduler's
     interleaving must be a pure function of plan + workload *)
  let b = make_bullet () in
  let retrying = Client.connect ~attempts:4 ~backoff_us:25_000 b.transport (Server.port b.server) in
  let caps = Array.init 8 (fun i -> Client.create retrying ~p_factor:2 (payload (8_192 + i))) in
  let plan =
    Plan.create ~seed:0x5E5CL
    |> fun p -> Plan.at p ~us:(Clock.now b.rig.clock + 50_000) (Plan.Drive_fail 0)
    |> fun p -> Plan.at p ~us:(Clock.now b.rig.clock + 400_000) (Plan.Drive_rejoin 512)
  in
  let injector = Injector.attach ~transport:b.transport ~mirror:b.rig.mirror ~clock:b.rig.clock plan in
  for i = 0 to 63 do
    ignore (Client.read retrying caps.(i mod 8));
    Clock.advance b.rig.clock 5_000;
    Injector.poll injector
  done;
  let m = Mirror.stats b.rig.mirror in
  Injector.detach injector;
  ( Clock.now b.rig.clock,
    Stats.count m "resync_steps",
    Stats.count m "resync_sectors",
    Mirror.sync_state_label b.rig.mirror )

let test_online_resync_deterministic () =
  let t1, steps1, sectors1, state1 = run_resync_workload () in
  let t2, steps2, sectors2, state2 = run_resync_workload () in
  check_int "identical end time" t1 t2;
  check_int "identical step count" steps1 steps2;
  check_int "identical sectors copied" sectors1 sectors2;
  check_string "identical final state" state1 state2;
  check_bool "the resync actually ran" true (steps1 > 0)

let suite =
  ( "fault",
    [
      Alcotest.test_case "plan keeps insertion order" `Quick test_plan_steps_in_order;
      Alcotest.test_case "scripted drive failure fires on poll" `Quick
        test_scripted_drive_failure_fires_on_poll;
      Alcotest.test_case "same-time events fire in plan order" `Quick
        test_same_time_events_fire_in_plan_order;
      Alcotest.test_case "recovery runs off the measured path" `Quick
        test_recovery_runs_off_the_measured_path;
      Alcotest.test_case "sector error rates switch on and off" `Quick
        test_sector_error_rates_switch_on_and_off;
      Alcotest.test_case "message loss recovered by retry" `Quick
        test_message_loss_recovered_by_retry;
      Alcotest.test_case "create dedup on lost reply" `Quick test_create_dedup_on_lost_reply;
      Alcotest.test_case "delete dedup on lost reply" `Quick test_delete_dedup_on_lost_reply;
      Alcotest.test_case "retry exhaustion surfaces timeout" `Quick
        test_retry_exhaustion_surfaces_timeout;
      Alcotest.test_case "crash and reboot spanned by retries" `Quick
        test_crash_reboot_spanned_by_retries;
      Alcotest.test_case "same seed, same run" `Quick test_same_seed_same_run;
      Alcotest.test_case "plan text parses" `Quick test_plan_parse;
      Alcotest.test_case "plan parse errors carry line, col and token" `Quick
        test_plan_parse_errors_carry_line;
      Alcotest.test_case "txn directives parse" `Quick test_plan_parse_txn_directives;
      Alcotest.test_case "shard_kill directives parse" `Quick test_plan_parse_shard_kill;
      Alcotest.test_case "shard_kill reaches the harness hook" `Quick
        test_shard_kill_reaches_hook;
      Alcotest.test_case "drive rejoin via plan, injector paces resync" `Quick
        test_drive_rejoin_via_plan;
      Alcotest.test_case "link faults scope to tagged traffic" `Quick
        test_link_faults_scope_to_tagged_traffic;
      Alcotest.test_case "online resync is deterministic" `Quick
        test_online_resync_deterministic;
    ] )
