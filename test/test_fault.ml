(* Tests for the fault-injection subsystem: plans, the injector, and the
   client-visible behaviour they produce (retry, dedup, recovery). *)

open Helpers
module Clock = Amoeba_sim.Clock
module Stats = Amoeba_sim.Stats
module Dev = Amoeba_disk.Block_device
module Mirror = Amoeba_disk.Mirror
module Transport = Amoeba_rpc.Transport
module Message = Amoeba_rpc.Message
module Status = Amoeba_rpc.Status
module Server = Bullet_core.Server
module Client = Bullet_core.Client
module Plan = Amoeba_fault.Plan
module Injector = Amoeba_fault.Injector

let test_plan_steps_in_order () =
  let plan =
    Plan.create ~seed:1L
    |> fun p -> Plan.at p ~us:50 (Plan.Drive_fail 0)
    |> fun p -> Plan.at p ~us:10 Plan.Server_crash
  in
  (match Plan.steps plan with
  | [ a; b ] ->
    check_int "insertion order kept" 50 a.Plan.at_us;
    check_int "insertion order kept" 10 b.Plan.at_us
  | _ -> Alcotest.fail "expected two steps");
  check_bool "negative time rejected" true
    (try
       ignore (Plan.at plan ~us:(-1) Plan.Server_crash);
       false
     with Invalid_argument _ -> true)

let test_scripted_drive_failure_fires_on_poll () =
  let rig = make_rig () in
  let plan = Plan.create ~seed:2L |> fun p -> Plan.at p ~us:100 (Plan.Drive_fail 0) in
  let injector = Injector.attach ~mirror:rig.mirror ~clock:rig.clock plan in
  check_bool "not yet due" false (Dev.is_failed rig.drive1);
  check_int "one event pending" 1 (Injector.pending injector);
  Clock.advance rig.clock 100;
  Injector.poll injector;
  check_bool "fired at its time" true (Dev.is_failed rig.drive1);
  check_int "queue drained" 0 (Injector.pending injector);
  check_int "counted" 1 (Stats.count (Injector.stats injector) "drive_failures")

let test_same_time_events_fire_in_plan_order () =
  (* fail-then-recover at the same instant: if the order were not the
     plan's, the recover would no-op and the drive would stay dead *)
  let rig = make_rig () in
  let plan =
    Plan.create ~seed:3L
    |> fun p -> Plan.at p ~us:10 (Plan.Drive_fail 1)
    |> fun p -> Plan.at p ~us:10 Plan.Drive_recover
  in
  let injector = Injector.attach ~mirror:rig.mirror ~clock:rig.clock plan in
  Clock.advance rig.clock 10;
  Injector.poll injector;
  check_bool "failed then recovered" false (Dev.is_failed rig.drive2);
  check_int "resync happened" 1 (Stats.count (Mirror.stats rig.mirror) "resyncs")

let test_recovery_runs_off_the_measured_path () =
  let rig = make_rig () in
  let plan =
    Plan.create ~seed:4L
    |> fun p -> Plan.at p ~us:0 (Plan.Drive_fail 1)
    |> fun p -> Plan.at p ~us:5 Plan.Drive_recover
  in
  let injector = Injector.attach ~mirror:rig.mirror ~clock:rig.clock plan in
  Clock.advance rig.clock 5;
  let before = Clock.now rig.clock in
  Injector.poll injector;
  check_int "whole-disk copy charged no observed time" before (Clock.now rig.clock);
  let resync = Stats.summary (Injector.stats injector) "resync_us" in
  check_bool "but its duration was recorded" true (resync.Stats.mean > 0.)

let test_sector_error_rates_switch_on_and_off () =
  let rig = make_rig () in
  Mirror.write rig.mirror ~sync:2 ~sector:0 (payload 512);
  let off_at = Clock.now rig.clock + 1_000 in
  let plan =
    Plan.create ~seed:5L
    |> fun p -> Plan.at p ~us:0 (Plan.Sector_errors 1.0)
    |> fun p -> Plan.at p ~us:off_at (Plan.Sector_errors 0.0)
  in
  let injector = Injector.attach ~mirror:rig.mirror ~clock:rig.clock plan in
  (* rate 1.0: every drive's read throws, so the mirror runs out of
     replicas to fail over to *)
  (try
     ignore (Mirror.read rig.mirror ~sector:0 ~count:1);
     Alcotest.fail "expected No_live_drive"
   with Mirror.No_live_drive -> ());
  check_bool "failover was attempted first" true
    (Stats.count (Mirror.stats rig.mirror) "read_failovers" > 0);
  Clock.advance rig.clock 1_000;
  Injector.poll injector;
  check_bytes "rate back to zero, reads recover" (payload 512)
    (Mirror.read rig.mirror ~sector:0 ~count:1);
  Injector.detach injector

let test_message_loss_recovered_by_retry () =
  let b = make_bullet () in
  let retrying =
    Client.connect ~attempts:10 ~backoff_us:10_000 b.transport (Server.port b.server)
  in
  let plan = Plan.create ~seed:0x5EEDL |> fun p -> Plan.at p ~us:0 (Plan.Message_loss 0.2) in
  let injector = Injector.attach ~transport:b.transport ~mirror:b.rig.mirror ~clock:b.rig.clock plan in
  let caps = Array.init 12 (fun i -> Client.create retrying (payload (100 + i))) in
  Array.iteri (fun i cap -> check_bytes "readback" (payload (100 + i)) (Client.read retrying cap)) caps;
  check_bool "losses actually happened" true (Stats.count (Client.stats retrying) "timeouts" > 0);
  check_bool "retries recovered them" true (Stats.count (Client.stats retrying) "retries" > 0);
  check_int "no create ran twice" 12 (Stats.count (Server.stats b.server) "creates");
  Injector.detach injector

let drop_first_reply transport =
  (* a one-shot reply loss, scripted by hand: the first matching message
     loses its reply, everything after is delivered *)
  let dropped = ref false in
  Transport.set_fault_hook transport
    (Some
       (fun _ ->
         if !dropped then Transport.Deliver
         else begin
           dropped := true;
           Transport.Drop_reply
         end))

let test_create_dedup_on_lost_reply () =
  let b = make_bullet () in
  let retrying = Client.connect ~attempts:3 ~backoff_us:10_000 b.transport (Server.port b.server) in
  drop_first_reply b.transport;
  let cap = Client.create retrying (payload 4_000) in
  Transport.set_fault_hook b.transport None;
  (* the first CREATE executed, its reply was lost, the retry got the
     cached reply: one file, one server-side execution *)
  check_int "one retry" 1 (Stats.count (Client.stats retrying) "retries");
  check_int "executed once" 1 (Stats.count (Server.stats b.server) "creates");
  check_int "one live file" 1 (Server.live_files b.server);
  check_bytes "the capability works" (payload 4_000) (Client.read retrying cap)

let test_delete_dedup_on_lost_reply () =
  let b = make_bullet () in
  let retrying = Client.connect ~attempts:3 ~backoff_us:10_000 b.transport (Server.port b.server) in
  let cap = Client.create retrying (payload 100) in
  drop_first_reply b.transport;
  (* without dedup the retried DELETE would hit a dead object and raise *)
  Client.delete retrying cap;
  Transport.set_fault_hook b.transport None;
  check_int "file gone" 0 (Server.live_files b.server)

let test_retry_exhaustion_surfaces_timeout () =
  let b = make_bullet () in
  let retrying = Client.connect ~attempts:2 ~backoff_us:1_000 b.transport (Server.port b.server) in
  Transport.set_fault_hook b.transport (Some (fun _ -> Transport.Drop_request));
  (try
     ignore (Client.create retrying (payload 10));
     Alcotest.fail "expected timeout"
   with Status.Error Status.Timeout -> ());
  Transport.set_fault_hook b.transport None;
  check_int "both attempts timed out" 2 (Stats.count (Client.stats retrying) "timeouts");
  check_int "gave up after the bound" 1 (Stats.count (Client.stats retrying) "exhausted")

let test_crash_reboot_spanned_by_retries () =
  let b = make_bullet () in
  let port = Server.port b.server in
  let server = ref b.server in
  let retrying = Client.connect ~attempts:8 ~backoff_us:50_000 b.transport port in
  let pre_crash = Client.create retrying (payload 2_048) in
  let timeout = Amoeba_rpc.Net_model.amoeba.Amoeba_rpc.Net_model.timeout_us in
  let crash_at = Clock.now b.rig.clock + 1_000 in
  let reboot_at = crash_at + (3 * timeout) in
  let plan =
    Plan.create ~seed:0xC0FFEEL
    |> fun p -> Plan.at p ~us:crash_at Plan.Server_crash
    |> fun p -> Plan.at p ~us:reboot_at Plan.Server_reboot
  in
  let on_crash () =
    Transport.unregister b.transport port;
    Server.crash !server
  in
  let on_reboot () =
    let booted, _ = Result.get_ok (Server.start ~config:small_bullet_config b.rig.mirror) in
    server := booted;
    Bullet_core.Proto.serve booted b.transport
  in
  let injector =
    Injector.attach ~transport:b.transport ~mirror:b.rig.mirror ~on_crash ~on_reboot
      ~clock:b.rig.clock plan
  in
  Clock.advance b.rig.clock 1_000;
  (* this read starts inside the outage: it times out, backs off, and a
     later attempt lands after the reboot has re-registered the port *)
  check_bytes "op spans the outage" (payload 2_048) (Client.read retrying pre_crash);
  check_bool "it took retries" true (Stats.count (Client.stats retrying) "retries" > 0);
  check_int "crash fired" 1 (Stats.count (Injector.stats injector) "server_crashes");
  check_int "reboot fired" 1 (Stats.count (Injector.stats injector) "server_reboots");
  check_bytes "pre-crash capability valid after reboot" (payload 2_048)
    (Client.read retrying pre_crash);
  Injector.detach injector

let run_loss_workload () =
  let b = make_bullet () in
  let retrying = Client.connect ~attempts:10 ~backoff_us:10_000 b.transport (Server.port b.server) in
  let plan = Plan.create ~seed:0xD13EL |> fun p -> Plan.at p ~us:0 (Plan.Message_loss 0.1) in
  let injector = Injector.attach ~transport:b.transport ~mirror:b.rig.mirror ~clock:b.rig.clock plan in
  for i = 1 to 10 do
    let cap = Client.create retrying (payload (200 + i)) in
    ignore (Client.read retrying cap)
  done;
  Injector.detach injector;
  (Clock.now b.rig.clock, Stats.count (Client.stats retrying) "retries")

let test_same_seed_same_run () =
  let t1, r1 = run_loss_workload () in
  let t2, r2 = run_loss_workload () in
  check_int "identical virtual end time" t1 t2;
  check_int "identical retry count" r1 r2;
  check_bool "faults did occur" true (r1 > 0)

let suite =
  ( "fault",
    [
      Alcotest.test_case "plan keeps insertion order" `Quick test_plan_steps_in_order;
      Alcotest.test_case "scripted drive failure fires on poll" `Quick
        test_scripted_drive_failure_fires_on_poll;
      Alcotest.test_case "same-time events fire in plan order" `Quick
        test_same_time_events_fire_in_plan_order;
      Alcotest.test_case "recovery runs off the measured path" `Quick
        test_recovery_runs_off_the_measured_path;
      Alcotest.test_case "sector error rates switch on and off" `Quick
        test_sector_error_rates_switch_on_and_off;
      Alcotest.test_case "message loss recovered by retry" `Quick
        test_message_loss_recovered_by_retry;
      Alcotest.test_case "create dedup on lost reply" `Quick test_create_dedup_on_lost_reply;
      Alcotest.test_case "delete dedup on lost reply" `Quick test_delete_dedup_on_lost_reply;
      Alcotest.test_case "retry exhaustion surfaces timeout" `Quick
        test_retry_exhaustion_surfaces_timeout;
      Alcotest.test_case "crash and reboot spanned by retries" `Quick
        test_crash_reboot_spanned_by_retries;
      Alcotest.test_case "same seed, same run" `Quick test_same_seed_same_run;
    ] )
