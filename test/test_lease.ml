(* The zero-RPC read fast path: client-side capability verification,
   the whole-file client cache, and leases over directory bindings. *)

open Helpers
module Cap = Amoeba_cap.Capability
module Port = Amoeba_cap.Port
module Rights = Amoeba_cap.Rights
module Sealer = Amoeba_cap.Sealer
module Clock = Amoeba_sim.Clock
module Stats = Amoeba_sim.Stats
module Status = Amoeba_rpc.Status
module Dir_server = Amoeba_dir.Dir_server
module Dir_proto = Amoeba_dir.Dir_proto
module Dir_client = Amoeba_dir.Dir_client
module Pair = Amoeba_dir.Dir_pair
module Plan = Amoeba_fault.Plan
module Injector = Amoeba_fault.Injector
module File_cache = Amoeba_lease.File_cache
module Station = Amoeba_lease.Station

(* ---- the client file cache ---- *)

let dummy_cap n =
  Cap.v
    ~port:(Port.of_int64 0x1234L)
    ~obj:n ~rights:(Rights.of_int 0xff)
    ~check:(Int64.of_int (n * 7919))

let test_cache_lru_eviction () =
  let cache = File_cache.create ~capacity_bytes:8_192 in
  let a = dummy_cap 1 and b = dummy_cap 2 and c = dummy_cap 3 in
  File_cache.insert cache a (Bytes.make 4_096 'a');
  File_cache.insert cache b (Bytes.make 4_096 'b');
  (* touch [a] so [b] is the LRU victim *)
  check_bool "a cached" true (File_cache.find cache a <> None);
  File_cache.insert cache c (Bytes.make 4_096 'c');
  check_bool "b evicted" true (File_cache.find cache b = None);
  check_bool "a survives" true (File_cache.find cache a <> None);
  check_bool "c cached" true (File_cache.find cache c <> None);
  check_int "one eviction" 1 (Stats.count (File_cache.stats cache) "evictions");
  check_int "evicted bytes counted" 4_096 (File_cache.bytes_evicted cache);
  check_int "used" 8_192 (File_cache.used_bytes cache);
  check_int "resident" 2 (File_cache.resident_files cache)

let test_cache_oversize_and_remove () =
  let cache = File_cache.create ~capacity_bytes:1_000 in
  let big = dummy_cap 9 in
  File_cache.insert cache big (Bytes.make 2_000 'x');
  check_bool "oversize not cached" true (File_cache.find cache big = None);
  check_int "oversize rejected" 1 (Stats.count (File_cache.stats cache) "oversize_rejects");
  let small = dummy_cap 10 in
  File_cache.insert cache small (Bytes.make 100 'y');
  File_cache.remove cache small;
  check_bool "removed" true (File_cache.find cache small = None);
  check_int "empty again" 0 (File_cache.used_bytes cache);
  (* removing an absent key is fine *)
  File_cache.remove cache small

(* a re-bound name carries a new capability, which can never alias the
   old entry: keys include the sealed check field *)
let test_cache_keyed_by_capability () =
  let cache = File_cache.create ~capacity_bytes:10_000 in
  let v1 = dummy_cap 5 in
  let v2 = Cap.v ~port:v1.Cap.port ~obj:v1.Cap.obj ~rights:v1.Cap.rights ~check:99L in
  File_cache.insert cache v1 (Bytes.of_string "old");
  check_bool "new version misses" true (File_cache.find cache v2 = None);
  File_cache.insert cache v2 (Bytes.of_string "new");
  check_bytes "old version intact" (Bytes.of_string "old")
    (Option.get (File_cache.find cache v1));
  check_bytes "new version intact" (Bytes.of_string "new")
    (Option.get (File_cache.find cache v2))

(* ---- local capability verification ---- *)

let test_verify_local () =
  let b = make_bullet () in
  let sealer = Bullet_core.Server.sealer b.server in
  let cap = Bullet_core.Client.create b.client (payload 64) in
  check_bool "genuine cap verifies" true (Sealer.verify_local sealer ~cap);
  let forged_check =
    Cap.v ~port:cap.Cap.port ~obj:cap.Cap.obj ~rights:cap.Cap.rights
      ~check:(Int64.add cap.Cap.check 1L)
  in
  check_bool "tampered check rejected" false (Sealer.verify_local sealer ~cap:forged_check);
  (* a created cap carries full rights, so tamper by narrowing: any
     rights field that disagrees with the sealed one must fail *)
  let tampered_rights =
    Cap.v ~port:cap.Cap.port ~obj:cap.Cap.obj ~rights:(Rights.of_int 1) ~check:cap.Cap.check
  in
  check_bool "tampered rights rejected" false (Sealer.verify_local sealer ~cap:tampered_rights)

(* ---- the leased station ---- *)

type lease_rig = {
  b : bullet_rig;
  dirs : Dir_server.t;
  dclient : Dir_client.t;
  root : Cap.t;
}

let lease_us = 100_000

let make_lease_rig () =
  let b = make_bullet () in
  let config = { Dir_server.default_config with Dir_server.lease_us } in
  let dirs = Dir_server.create ~config ~store:b.client () in
  Dir_proto.serve dirs b.transport;
  let dclient = Dir_client.connect b.transport (Dir_server.port dirs) in
  { b; dirs; dclient; root = Dir_client.get_root dclient }

let station ?config ?(trusted = true) rig =
  if trusted then
    Station.create ?config
      ~sealer:(Bullet_core.Server.sealer rig.b.server)
      ~store:rig.b.client ~dirs:rig.dclient ()
  else Station.create ?config ~store:rig.b.client ~dirs:rig.dclient ()

let transactions rig = Stats.count (Amoeba_rpc.Transport.stats rig.b.transport) "transactions"

let enter rig name data =
  let cap = Bullet_core.Client.create rig.b.client data in
  Dir_client.enter rig.dclient rig.root name cap;
  cap

let test_warm_read_zero_rpcs () =
  let rig = make_lease_rig () in
  let st = station rig in
  let data = payload 4_096 in
  ignore (enter rig "hot" data);
  check_bytes "cold read" data (Station.read st ~dir:rig.root "hot");
  let before = transactions rig in
  let t0 = Clock.now rig.b.rig.clock in
  for _ = 1 to 5 do
    check_bytes "warm read" data (Station.read st ~dir:rig.root "hot")
  done;
  check_int "zero RPCs across five warm reads" 0 (transactions rig - before);
  check_bool "no network time: five warm reads under 5 ms" true
    (Clock.now rig.b.rig.clock - t0 < 5_000);
  check_int "all served from cache" 5 (Stats.count (Station.stats st) "leased_reads")

let test_untrusted_warm_read_one_rpc () =
  let rig = make_lease_rig () in
  let st = station ~trusted:false rig in
  let data = payload 2_048 in
  ignore (enter rig "hot" data);
  ignore (Station.read st ~dir:rig.root "hot");
  let before = transactions rig in
  check_bytes "warm read" data (Station.read st ~dir:rig.root "hot");
  check_int "exactly one verification RPC" 1 (transactions rig - before);
  check_bool "station knows it is untrusted" false (Station.trusted st);
  (* the cold read was a fetch, not a verified cache hit *)
  check_int "remote verifies counted" 1 (Stats.count (Station.stats st) "remote_verifies")

let test_expiry_revalidates_with_one_rpc () =
  let rig = make_lease_rig () in
  let st = station rig in
  let data = payload 1_024 in
  ignore (enter rig "f" data);
  ignore (Station.read st ~dir:rig.root "f");
  Clock.advance rig.b.rig.clock (2 * lease_us);
  let before = transactions rig in
  check_bytes "still correct" data (Station.read st ~dir:rig.root "f");
  check_int "one renewal RPC" 1 (transactions rig - before);
  check_int "expiry counted" 1 (Stats.count (Station.stats st) "lease_expiries");
  check_int "renewal counted" 1 (Stats.count (Station.stats st) "lease_renewals")

let test_replace_bumps_epoch_and_revokes () =
  let rig = make_lease_rig () in
  let st = station rig in
  let old_data = Bytes.make 512 'o' and new_data = Bytes.make 512 'n' in
  ignore (enter rig "f" old_data);
  check_bytes "old served" old_data (Station.read st ~dir:rig.root "f");
  let epoch0 = ok_exn (Dir_server.epoch rig.dirs rig.root) in
  (* replace waits out the station's lease before bumping the epoch, so
     once it returns the station can never serve the old bytes again *)
  let new_cap = Bullet_core.Client.create rig.b.client new_data in
  ignore (Dir_client.replace rig.dclient rig.root "f" new_cap);
  check_int "epoch bumped" (epoch0 + 1) (ok_exn (Dir_server.epoch rig.dirs rig.root));
  check_bool "write waited out the lease" true
    (Stats.count (Dir_server.stats rig.dirs) "lease_waits" >= 1);
  check_bytes "new bytes after replace" new_data (Station.read st ~dir:rig.root "f");
  check_int "lease revoked" 1 (Stats.count (Station.stats st) "lease_revokes")

let test_delete_never_serves_stale () =
  let rig = make_lease_rig () in
  let st = station rig in
  ignore (enter rig "f" (payload 256));
  ignore (Station.read st ~dir:rig.root "f");
  Dir_client.remove_name rig.dclient rig.root "f";
  (* the removal waited the lease out; every later read must fail *)
  for _ = 1 to 3 do
    (match Station.read st ~dir:rig.root "f" with
    | (_ : bytes) -> Alcotest.fail "served a deleted binding"
    | exception Status.Error Status.Not_found -> ());
    Clock.advance rig.b.rig.clock 30_000
  done

(* A station with a skewed lease clock (the Lease_clock_skew fault,
   scripted through the plan DSL) may lose liveness but must never serve
   a stale read after a DELETE completes. The backward step is the
   dangerous direction — it would stretch lease deadlines past the
   server's write-wait horizon — so it must drop every held lease. *)
let test_skewed_station_never_stale_after_delete () =
  let rig = make_lease_rig () in
  let st = station rig in
  let data = payload 512 in
  ignore (enter rig "f" data);
  ignore (Station.read st ~dir:rig.root "f");
  let now = Clock.now rig.b.rig.clock in
  let plan_text =
    Printf.sprintf "seed 9\nat %d lease_skew 80000\nat %d lease_skew -40000\n" (now + 10_000)
      (now + 50_000)
  in
  let plan =
    match Plan.parse plan_text with Ok p -> p | Error e -> Alcotest.failf "parse: %s" e
  in
  let injector =
    Injector.attach ~transport:rig.b.transport ~on_lease_skew:(Station.set_skew st)
      ~clock:rig.b.rig.clock plan
  in
  let deleted = ref false in
  let stale = ref 0 in
  for i = 1 to 8 do
    Injector.poll injector;
    if i = 5 then begin
      Dir_client.remove_name rig.dclient rig.root "f";
      deleted := true
    end;
    (match Station.read st ~dir:rig.root "f" with
    | (_ : bytes) -> if !deleted then incr stale
    | exception Status.Error Status.Not_found -> ());
    Clock.advance rig.b.rig.clock 20_000
  done;
  Injector.detach injector;
  check_int "no stale read after delete" 0 !stale;
  check_bool "backward step dropped the leases" true
    (Stats.count (Station.stats st) "lease_clock_steps_back" >= 1);
  check_int "injector fired both skews" 2
    (Stats.count (Injector.stats injector) "lease_skews")

(* ---- leases through the replicated pair ---- *)

let make_pair_rig () =
  let b = make_bullet () in
  let clock = b.rig.clock in
  let geometry = Amoeba_disk.Geometry.small ~sectors:16_384 in
  let b1 = Amoeba_disk.Block_device.create ~id:"bk1" ~geometry ~clock in
  let b2 = Amoeba_disk.Block_device.create ~id:"bk2" ~geometry ~clock in
  let backup_mirror = Amoeba_disk.Mirror.create [ b1; b2 ] in
  Bullet_core.Server.format backup_mirror ~max_files:256;
  let backup_server, _ =
    Result.get_ok (Bullet_core.Server.start ~config:small_bullet_config ~seed:77L backup_mirror)
  in
  Bullet_core.Proto.serve backup_server b.transport;
  let backup_store = Bullet_core.Client.connect b.transport (Bullet_core.Server.port backup_server) in
  let config = { Dir_server.default_config with Dir_server.lease_us } in
  let pair = Pair.create ~config ~primary_store:b.client ~backup_store () in
  Pair.serve pair b.transport;
  let dclient = Dir_client.connect b.transport (Pair.port pair) in
  (b, pair, dclient)

let test_pair_replicates_leases_and_epochs () =
  let b, pair, dclient = make_pair_rig () in
  let root = Dir_client.get_root dclient in
  let cap = Bullet_core.Client.create b.client (payload 128) in
  Dir_client.enter dclient root "x" cap;
  (* a leased lookup must be recorded by BOTH replicas: after a
     fail-over the backup must still wait the promise out *)
  let found, epoch, granted_us = Dir_client.lookup_lease dclient root "x" in
  check_bool "leased lookup finds the cap" true (Cap.equal cap found);
  check_int "grant carries the lease term" lease_us granted_us;
  check_int "primary granted" 1 (Stats.count (Dir_server.stats (Pair.primary pair)) "leases_granted");
  check_int "backup granted" 1 (Stats.count (Dir_server.stats (Pair.backup pair)) "leases_granted");
  (* an epoch bump through the pair lands on both replicas... *)
  let cap2 = Bullet_core.Client.create b.client (payload 129) in
  ignore (Dir_client.replace dclient root "x" cap2);
  let ep p = ok_exn (Dir_server.epoch p (Dir_server.root p)) in
  check_int "epochs agree" (ep (Pair.primary pair)) (ep (Pair.backup pair));
  check_bool "epoch moved" true (ep (Pair.primary pair) > epoch);
  (* ...and lease state never leaks into the checkpoint comparison *)
  check_bool "replicas byte-identical" true (Pair.divergence pair = None);
  (* the epoch survives a fail-over and heal (checkpoint copy) *)
  Pair.fail_primary pair;
  ignore (Dir_client.lookup dclient root "x");
  Pair.heal_primary pair;
  check_int "epoch survives heal" (ep (Pair.backup pair)) (ep (Pair.primary pair));
  check_bool "healed consistent" true (Pair.divergence pair = None)

(* ---- the plan grammar ---- *)

let test_plan_lease_skew_grammar () =
  (match Plan.parse "seed 3\nat 100 lease_skew 5000\nat 200 lease_skew -7500\n" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan -> (
    match Plan.steps plan with
    | [ s1; s2 ] ->
      check_int "first at" 100 s1.Plan.at_us;
      check_bool "first offset" true (s1.Plan.event = Plan.Lease_clock_skew 5_000);
      check_bool "second offset negative" true (s2.Plan.event = Plan.Lease_clock_skew (-7_500))
    | steps -> Alcotest.failf "expected 2 steps, got %d" (List.length steps)));
  match Plan.parse "at 100 lease_skew fast\n" with
  | Ok _ -> Alcotest.fail "accepted a malformed offset"
  | Error e -> check_bool "error names the line" true (String.length e > 0)

let suite =
  ( "lease",
    [
      Alcotest.test_case "cache LRU eviction and evicted-bytes" `Quick test_cache_lru_eviction;
      Alcotest.test_case "cache oversize and remove" `Quick test_cache_oversize_and_remove;
      Alcotest.test_case "cache keyed by capability" `Quick test_cache_keyed_by_capability;
      Alcotest.test_case "local capability verification" `Quick test_verify_local;
      Alcotest.test_case "warm read issues zero RPCs" `Quick test_warm_read_zero_rpcs;
      Alcotest.test_case "untrusted warm read pays one RPC" `Quick
        test_untrusted_warm_read_one_rpc;
      Alcotest.test_case "expiry revalidates with one RPC" `Quick
        test_expiry_revalidates_with_one_rpc;
      Alcotest.test_case "replace bumps epoch and revokes" `Quick
        test_replace_bumps_epoch_and_revokes;
      Alcotest.test_case "delete never serves stale" `Quick test_delete_never_serves_stale;
      Alcotest.test_case "skewed station never stale after delete" `Quick
        test_skewed_station_never_stale_after_delete;
      Alcotest.test_case "pair replicates leases and epochs" `Quick
        test_pair_replicates_leases_and_epochs;
      Alcotest.test_case "plan grammar: lease_skew" `Quick test_plan_lease_skew_grammar;
    ] )
