(* Tests for the discrete-event substrate and the closed-loop scalability
   model. *)

open Helpers
module Eq = Amoeba_pool.Event_queue
module Loop = Amoeba_pool.Closed_loop

let test_eq_orders_by_time () =
  let q = Eq.create () in
  Eq.push q ~time:30 "c";
  Eq.push q ~time:10 "a";
  Eq.push q ~time:20 "b";
  let pops = List.init 3 (fun _ -> Eq.pop q) in
  check_bool "time order" true
    (pops = [ Some (10, "a"); Some (20, "b"); Some (30, "c") ]);
  check_bool "drained" true (Eq.pop q = None)

let test_eq_ties_fifo () =
  let q = Eq.create () in
  Eq.push q ~time:5 "first";
  Eq.push q ~time:5 "second";
  Eq.push q ~time:5 "third";
  check_bool "insertion order on ties" true
    (List.init 3 (fun _ -> Option.map snd (Eq.pop q)) = [ Some "first"; Some "second"; Some "third" ]);
  (* this test exercises the unpinned fallback on purpose; keep its ties
     out of the end-of-run tie-check suite *)
  Amoeba_sim.Event_queue.clear_ties ()

let test_eq_interleaved_push_pop () =
  let q = Eq.create () in
  Eq.push q ~time:10 1;
  Eq.push q ~time:5 2;
  check_bool "pop min" true (Eq.pop q = Some (5, 2));
  Eq.push q ~time:1 3;
  check_bool "new min" true (Eq.pop q = Some (1, 3));
  check_bool "rest" true (Eq.pop q = Some (10, 1))

let test_eq_grows () =
  let q = Eq.create () in
  for i = 999 downto 0 do
    Eq.push q ~time:i i
  done;
  check_int "size" 1000 (Eq.size q);
  let sorted = ref true in
  let last = ref (-1) in
  for _ = 1 to 1000 do
    match Eq.pop q with
    | Some (t, _) ->
      if t < !last then sorted := false;
      last := t
    | None -> sorted := false
  done;
  check_bool "heap order over 1000 events" true !sorted

let test_eq_rejects_negative_time () =
  let q = Eq.create () in
  (try
     Eq.push q ~time:(-1) ();
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let prop_eq_sorts =
  qtest "event queue pops any multiset sorted" QCheck.(small_list (int_range 0 10_000))
    (fun times ->
      let q = Eq.create () in
      List.iter (fun t -> Eq.push q ~time:t t) times;
      let rec drain acc = match Eq.pop q with Some (t, _) -> drain (t :: acc) | None -> List.rev acc in
      let sorted = drain [] = List.sort compare times in
      (* random multisets collide on purpose; drop the resulting ties *)
      Amoeba_sim.Event_queue.clear_ties ();
      sorted)

(* Fuzz the heap against a sorted-list reference model.  The model keeps
   (time, seq) pairs sorted stably, so it pins not just time ordering but
   the FIFO tie-break; interleaving pushes and pops (including pops on
   empty) exercises sift-up and sift-down around every heap shape a
   deterministic SplitMix64 stream can reach. *)
let test_eq_fuzz_vs_reference () =
  List.iter
    (fun seed ->
      let prng = Amoeba_sim.Prng.create ~seed in
      let q = Eq.create () in
      let model = ref [] in
      (* model: (time, seq, payload) sorted by (time, seq) ascending *)
      let next_seq = ref 0 in
      let insert entry =
        let time_of (t, _, _) = t and seq_of (_, s, _) = s in
        let rec go = function
          | [] -> [ entry ]
          | e :: rest ->
            if
              time_of e > time_of entry
              || (time_of e = time_of entry && seq_of e > seq_of entry)
            then entry :: e :: rest
            else e :: go rest
        in
        model := go !model
      in
      for step = 0 to 1_999 do
        if Amoeba_sim.Prng.int prng 3 < 2 then begin
          (* push twice as often as pop so the heap grows *)
          let time = Amoeba_sim.Prng.int prng 100 in
          Eq.push q ~time step;
          insert (time, !next_seq, step);
          incr next_seq
        end
        else begin
          let expected =
            match !model with
            | [] -> None
            | (t, _, payload) :: rest ->
              model := rest;
              Some (t, payload)
          in
          let got = Eq.pop q in
          if got <> expected then
            Alcotest.failf "seed %Ld step %d: heap disagrees with reference model" seed step
        end;
        if Eq.size q <> List.length !model then
          Alcotest.failf "seed %Ld step %d: size %d, model %d" seed step (Eq.size q)
            (List.length !model)
      done;
      (* drain both and compare the tail, then pop-on-empty *)
      List.iter
        (fun (t, _, payload) ->
          if Eq.pop q <> Some (t, payload) then
            Alcotest.failf "seed %Ld: drain order diverged" seed)
        !model;
      check_bool "pop on empty" true (Eq.pop q = None);
      check_bool "empty after drain" true (Eq.is_empty q))
    [ 1L; 0xDEADBEEFL; 42L; 0x5EEDL ];
  (* the fuzz deliberately floods same-time unpinned pushes *)
  Amoeba_sim.Event_queue.clear_ties ()

(* ---- closed loop ---- *)

let base =
  {
    Loop.clients = 1;
    think_us = 100_000;
    server_us = 2_000;
    wire_us = 10_000;
    requests_per_client = 50;
  }

let test_single_client_cycle_time () =
  let r = Loop.run base in
  check_int "all completed" 50 r.Loop.completed;
  (* one client: no queueing, response = service + wire *)
  Alcotest.(check (float 0.1)) "response = service + wire" 12.0 r.Loop.mean_response_ms;
  (* throughput ~ 1 / (think + response) *)
  let expected = 1e6 /. float_of_int (100_000 + 12_000) in
  check_bool "throughput near the cycle rate" true
    (Float.abs (r.Loop.throughput_per_sec -. expected) /. expected < 0.05)

let test_throughput_scales_then_saturates () =
  let at n = Loop.run { base with Loop.clients = n } in
  let t2 = (at 2).Loop.throughput_per_sec in
  let t4 = (at 4).Loop.throughput_per_sec in
  check_bool "doubling clients doubles throughput below the knee" true
    (t4 > 1.8 *. t2);
  (* far beyond the knee the server caps throughput at 1/service *)
  let cap = 1e6 /. float_of_int base.Loop.server_us in
  let t_sat = (at 200).Loop.throughput_per_sec in
  check_bool "saturated at 1/service" true (t_sat < cap *. 1.02 && t_sat > cap *. 0.85)

let test_response_grows_past_knee () =
  let knee =
    Loop.saturation_clients ~server_us:base.Loop.server_us ~think_us:base.Loop.think_us
      ~wire_us:base.Loop.wire_us
  in
  let below = Loop.run { base with Loop.clients = max 1 (int_of_float knee / 2) } in
  let above = Loop.run { base with Loop.clients = int_of_float knee * 4 } in
  check_bool "queueing shows past the knee" true
    (above.Loop.mean_response_ms > 3. *. below.Loop.mean_response_ms)

let test_utilisation_bounded () =
  let r = Loop.run { base with Loop.clients = 500 } in
  check_bool "utilisation <= 1" true (r.Loop.server_utilisation <= 1.0);
  check_bool "saturated server is busy" true (r.Loop.server_utilisation > 0.95)

let test_deterministic () =
  let a = Loop.run { base with Loop.clients = 17 } in
  let b = Loop.run { base with Loop.clients = 17 } in
  check_bool "same run, same numbers" true (a = b)

(* [run] now delegates to the scheduler's degenerate single-station
   configuration; the original implementation is kept as
   [run_reference].  The two must agree to the bit — structural equality
   on the report compares the floats exactly. *)
let test_run_matches_reference () =
  let knee =
    Loop.saturation_clients ~server_us:base.Loop.server_us ~think_us:base.Loop.think_us
      ~wire_us:base.Loop.wire_us
  in
  let fixtures =
    [ base ]
    @ List.map
        (fun n -> { base with Loop.clients = n })
        [ 2; 4; 17; 200; 500; max 1 (int_of_float knee / 2); int_of_float knee * 4 ]
    @ [
        { base with Loop.wire_us = 0 };
        { base with Loop.think_us = 0; requests_per_client = 7 };
        { Loop.clients = 13; think_us = 1; server_us = 1; wire_us = 1; requests_per_client = 3 };
      ]
  in
  List.iteri
    (fun i config ->
      let delegated = Loop.run config in
      let reference = Loop.run_reference config in
      if delegated <> reference then Alcotest.failf "fixture %d: delegated run differs" i)
    fixtures

let test_scale_experiment_shape () =
  let r = Experiments.scale_experiment ~client_counts:[ 1; 64 ] () in
  check_bool "bullet demand below nfs demand" true
    (r.Experiments.bullet_service_us < r.Experiments.nfs_service_us);
  check_bool "bullet knee much higher" true
    (r.Experiments.bullet_knee > 5. *. r.Experiments.nfs_knee);
  match (r.Experiments.bullet_points, r.Experiments.nfs_points) with
  | [ _; b64 ], [ _; n64 ] ->
    check_bool "at 64 clients bullet outruns nfs" true
      (b64.Experiments.throughput_per_sec > 5. *. n64.Experiments.throughput_per_sec)
  | _ -> Alcotest.fail "expected two points each"

let suite =
  ( "pool",
    [
      Alcotest.test_case "event queue orders by time" `Quick test_eq_orders_by_time;
      Alcotest.test_case "event queue ties are FIFO" `Quick test_eq_ties_fifo;
      Alcotest.test_case "event queue interleaved ops" `Quick test_eq_interleaved_push_pop;
      Alcotest.test_case "event queue grows" `Quick test_eq_grows;
      Alcotest.test_case "event queue rejects negative time" `Quick test_eq_rejects_negative_time;
      prop_eq_sorts;
      Alcotest.test_case "event queue fuzz vs reference model" `Quick test_eq_fuzz_vs_reference;
      Alcotest.test_case "single client cycle time" `Quick test_single_client_cycle_time;
      Alcotest.test_case "throughput scales then saturates" `Quick
        test_throughput_scales_then_saturates;
      Alcotest.test_case "response grows past the knee" `Quick test_response_grows_past_knee;
      Alcotest.test_case "utilisation bounded" `Quick test_utilisation_bounded;
      Alcotest.test_case "deterministic" `Quick test_deterministic;
      Alcotest.test_case "delegated run matches reference exactly" `Quick
        test_run_matches_reference;
      Alcotest.test_case "scale experiment shape" `Slow test_scale_experiment_shape;
    ] )
