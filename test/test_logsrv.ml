(* Tests for the log server: cheap appends over immutable segments. *)

open Helpers
module Log = Log_server.Log_store
module Client = Bullet_core.Client
module Server = Bullet_core.Server
module Status = Amoeba_rpc.Status
module Cap = Amoeba_cap.Capability
module Rights = Amoeba_cap.Rights
module Clock = Amoeba_sim.Clock

let make ?(config = Log.default_config) () =
  let bullet = make_bullet () in
  let log = Log.create ~config ~store:bullet.client () in
  (bullet, log)

let b s = Bytes.of_string s

let test_append_read_roundtrip () =
  let _bullet, log = make () in
  let cap = Log.create_log log in
  check_int "len" 5 (ok_exn (Log.append log cap (b "hello")));
  check_int "len" 11 (ok_exn (Log.append log cap (b " world")));
  check_string "contents" "hello world" (Bytes.to_string (ok_exn (Log.read_log log cap)))

let test_segment_sealing_at_threshold () =
  let config = { Log.default_config with Log.segment_bytes = 100 } in
  let _bullet, log = make ~config () in
  let cap = Log.create_log log in
  ignore (ok_exn (Log.append log cap (payload 60)));
  check_int "tail only" 0 (List.length (ok_exn (Log.segments log cap)));
  ignore (ok_exn (Log.append log cap (payload 60)));
  check_int "sealed one segment" 1 (List.length (ok_exn (Log.segments log cap)));
  check_int "durable" 120 (ok_exn (Log.durable_length log cap));
  check_int "total" 120 (ok_exn (Log.length log cap))

let test_sync_seals_tail () =
  let _bullet, log = make () in
  let cap = Log.create_log log in
  ignore (ok_exn (Log.append log cap (b "tail")));
  check_int "not durable yet" 0 (ok_exn (Log.durable_length log cap));
  ok_exn (Log.sync log cap);
  check_int "durable after sync" 4 (ok_exn (Log.durable_length log cap));
  check_int "segments" 1 (List.length (ok_exn (Log.segments log cap)))

let test_crash_loses_only_tail () =
  let _bullet, log = make () in
  let cap = Log.create_log log in
  ignore (ok_exn (Log.append log cap (b "durable.")));
  ok_exn (Log.sync log cap);
  ignore (ok_exn (Log.append log cap (b "volatile")));
  Log.crash log;
  check_string "tail lost, segments kept" "durable." (Bytes.to_string (ok_exn (Log.read_log log cap)))

let test_append_cost_independent_of_log_size () =
  (* the reason the log server exists: appending to a big log must not
     cost O(log) *)
  let bullet, log = make () in
  let cap = Log.create_log log in
  (* build up ~200 KB of sealed history *)
  let rec grow n = if n > 0 then (ignore (ok_exn (Log.append log cap (payload 10_000))); grow (n - 1)) in
  grow 20;
  ok_exn (Log.sync log cap);
  let _, t_small_append =
    Clock.elapsed bullet.rig.clock (fun () -> ignore (ok_exn (Log.append log cap (b "x"))))
  in
  (* compare with the naive alternative: whole-file copy via MODIFY *)
  let naive = Client.create bullet.client (payload 200_000) in
  let _, t_naive =
    Clock.elapsed bullet.rig.clock (fun () -> ignore (Client.append bullet.client naive (b "x")))
  in
  check_bool "log append ≪ whole-file append" true (t_small_append * 10 < t_naive)

let test_compact_log_merges_segments () =
  let config = { Log.default_config with Log.segment_bytes = 50 } in
  let bullet, log = make ~config () in
  let cap = Log.create_log log in
  let rec grow n = if n > 0 then (ignore (ok_exn (Log.append log cap (payload 60))); grow (n - 1)) in
  grow 4;
  check_bool "several segments" true (List.length (ok_exn (Log.segments log cap)) > 1);
  let before = ok_exn (Log.read_log log cap) in
  ok_exn (Log.compact_log log cap);
  check_int "one segment" 1 (List.length (ok_exn (Log.segments log cap)));
  check_bytes "contents preserved" before (ok_exn (Log.read_log log cap));
  ignore bullet

let test_delete_log_frees_bullet_files () =
  let bullet, log = make () in
  let files_before = Server.live_files bullet.server in
  let cap = Log.create_log log in
  ignore (ok_exn (Log.append log cap (payload 100)));
  ok_exn (Log.sync log cap);
  check_bool "segment file exists" true (Server.live_files bullet.server > files_before);
  ok_exn (Log.delete_log log cap);
  check_int "files reclaimed" files_before (Server.live_files bullet.server);
  expect_error Status.No_such_object (Log.length log cap)

let test_rights_enforced () =
  let _bullet, log = make () in
  let cap = Log.create_log log in
  let forged = { cap with Cap.check = Int64.add cap.Cap.check 1L } in
  expect_error Status.Bad_capability (Log.append log forged (b "no"));
  let read_only = { cap with Cap.rights = Rights.read } in
  (* narrowing without re-sealing fails verification *)
  expect_error Status.Bad_capability (Log.append log read_only (b "no"))

let test_multiple_logs_independent () =
  let _bullet, log = make () in
  let l1 = Log.create_log log in
  let l2 = Log.create_log log in
  ignore (ok_exn (Log.append log l1 (b "one")));
  ignore (ok_exn (Log.append log l2 (b "two")));
  check_string "l1" "one" (Bytes.to_string (ok_exn (Log.read_log log l1)));
  check_string "l2" "two" (Bytes.to_string (ok_exn (Log.read_log log l2)))

let test_empty_log () =
  let _bullet, log = make () in
  let cap = Log.create_log log in
  check_int "empty" 0 (ok_exn (Log.length log cap));
  check_int "no contents" 0 (Bytes.length (ok_exn (Log.read_log log cap)));
  ok_exn (Log.sync log cap);
  check_int "sync of empty tail seals nothing" 0 (List.length (ok_exn (Log.segments log cap)))

(* ---- via RPC ---- *)

let test_client_over_rpc () =
  let bullet, log = make () in
  Log_server.Log_proto.serve log bullet.transport;
  let client = Log_server.Log_proto.connect bullet.transport (Log.port log) in
  let cap = Log_server.Log_proto.create_log client in
  check_int "append" 5 (Log_server.Log_proto.append client cap (b "hello"));
  check_int "append more" 11 (Log_server.Log_proto.append client cap (b " world"));
  check_int "not yet durable" 0 (Log_server.Log_proto.durable_length client cap);
  Log_server.Log_proto.sync client cap;
  check_int "durable" 11 (Log_server.Log_proto.durable_length client cap);
  check_string "read back" "hello world" (Bytes.to_string (Log_server.Log_proto.read_log client cap));
  Log_server.Log_proto.compact_log client cap;
  check_int "length preserved" 11 (Log_server.Log_proto.length client cap);
  Log_server.Log_proto.delete_log client cap;
  (try
     ignore (Log_server.Log_proto.length client cap);
     Alcotest.fail "expected error"
   with Status.Error Status.No_such_object -> ())

let test_rpc_append_ships_only_the_record () =
  let bullet, log = make () in
  Log_server.Log_proto.serve log bullet.transport;
  let client = Log_server.Log_proto.connect bullet.transport (Log.port log) in
  let cap = Log_server.Log_proto.create_log client in
  (* grow a large log, then check a tiny append's wire cost is tiny *)
  ignore (Log_server.Log_proto.append client cap (payload 200_000));
  let stats = Amoeba_rpc.Transport.stats bullet.transport in
  let sent_before = Amoeba_sim.Stats.count stats "bytes_sent" in
  ignore (Log_server.Log_proto.append client cap (b "x"));
  let sent = Amoeba_sim.Stats.count stats "bytes_sent" - sent_before in
  check_bool "append wire cost is O(record)" true (sent < 200)

let suite =
  ( "logsrv",
    [
      Alcotest.test_case "append/read roundtrip" `Quick test_append_read_roundtrip;
      Alcotest.test_case "segment seals at threshold" `Quick test_segment_sealing_at_threshold;
      Alcotest.test_case "sync seals the tail" `Quick test_sync_seals_tail;
      Alcotest.test_case "crash loses only the tail" `Quick test_crash_loses_only_tail;
      Alcotest.test_case "append cost independent of log size" `Quick
        test_append_cost_independent_of_log_size;
      Alcotest.test_case "compact_log merges segments" `Quick test_compact_log_merges_segments;
      Alcotest.test_case "delete_log frees Bullet files" `Quick test_delete_log_frees_bullet_files;
      Alcotest.test_case "rights enforced" `Quick test_rights_enforced;
      Alcotest.test_case "multiple logs independent" `Quick test_multiple_logs_independent;
      Alcotest.test_case "empty log" `Quick test_empty_log;
      Alcotest.test_case "client over RPC" `Quick test_client_over_rpc;
      Alcotest.test_case "RPC append ships only the record" `Quick
        test_rpc_append_ships_only_the_record;
    ] )
