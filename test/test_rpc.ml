(* Tests for the RPC layer: net model, messages, transport. *)

open Helpers
module Net = Amoeba_rpc.Net_model
module Message = Amoeba_rpc.Message
module Status = Amoeba_rpc.Status
module Transport = Amoeba_rpc.Transport
module Clock = Amoeba_sim.Clock
module Port = Amoeba_cap.Port

let test_transmit_zero () = check_int "nothing to send" 0 (Net.transmit_us Net.amoeba 0)

let test_transmit_monotone () =
  check_bool "more bytes, more time" true
    (Net.transmit_us Net.amoeba 100_000 > Net.transmit_us Net.amoeba 10_000)

let test_transaction_includes_latency () =
  let t = Net.transaction_us Net.amoeba ~request_bytes:0 ~reply_bytes:0 in
  check_int "null transaction = fixed latency" Net.amoeba.Net.latency_us t

let test_sunos_slower_than_amoeba () =
  let a = Net.transaction_us Net.amoeba ~request_bytes:50 ~reply_bytes:50 in
  let s = Net.transaction_us Net.sunos_nfs ~request_bytes:50 ~reply_bytes:50 in
  check_bool "SunOS RPC heavier" true (s > a)

let test_status_roundtrip () =
  let all =
    [
      Status.Ok; Status.Bad_capability; Status.No_such_object; Status.No_space; Status.Not_found;
      Status.Bad_request; Status.Exists; Status.Server_failure; Status.Timeout;
    ]
  in
  List.iter (fun s -> check_bool (Status.to_string s) true (Status.of_int (Status.to_int s) = s)) all

let test_status_check () =
  Status.check Status.Ok;
  (try
     Status.check Status.No_space;
     Alcotest.fail "expected raise"
   with Status.Error Status.No_space -> ())

let test_message_wire_bytes () =
  let m = Message.request ~port:(Port.of_int64 1L) ~command:1 ~body:(Bytes.create 100) () in
  check_int "header + body" (Message.header_bytes + 100) (Message.wire_bytes m)

let make_transport () =
  let clock = Clock.create () in
  (clock, Transport.create ~clock)

let echo_port = Port.of_int64 0xEC40L

let register_echo transport =
  Transport.register transport echo_port (fun request ->
      Message.reply ~status:Status.Ok ~arg0:request.Message.arg0 ~body:request.Message.body ())

let test_transport_roundtrip () =
  let _clock, transport = make_transport () in
  register_echo transport;
  let reply =
    Transport.trans transport ~model:Net.amoeba
      (Message.request ~port:echo_port ~command:1 ~arg0:42 ~body:(payload 10) ())
  in
  check_bool "ok" true (reply.Message.status = Status.Ok);
  check_int "arg echoed" 42 reply.Message.arg0;
  check_bytes "body echoed" (payload 10) reply.Message.body

let test_transport_charges_time () =
  let clock, transport = make_transport () in
  register_echo transport;
  let _, t_small =
    Clock.elapsed clock (fun () ->
        Transport.trans transport ~model:Net.amoeba
          (Message.request ~port:echo_port ~command:1 ()))
  in
  let _, t_large =
    Clock.elapsed clock (fun () ->
        Transport.trans transport ~model:Net.amoeba
          (Message.request ~port:echo_port ~command:1 ~body:(Bytes.create 100_000) ()))
  in
  check_bool "payload costs wire time" true (t_large > t_small);
  check_bool "even null RPC costs latency" true (t_small >= Net.amoeba.Net.latency_us)

let test_transport_unbound_port () =
  let clock, transport = make_transport () in
  let reply, us =
    Clock.elapsed clock (fun () ->
        Transport.trans transport ~model:Net.amoeba
          (Message.request ~port:(Port.of_int64 999L) ~command:1 ()))
  in
  check_bool "times out" true (reply.Message.status = Status.Timeout);
  check_int "costs the full timeout interval" Net.amoeba.Net.timeout_us us

let test_transport_handler_exception_becomes_failure () =
  let _clock, transport = make_transport () in
  let crash_port = Port.of_int64 666L in
  Transport.register transport crash_port (fun _ -> failwith "handler bug");
  let reply =
    Transport.trans transport ~model:Net.amoeba (Message.request ~port:crash_port ~command:1 ())
  in
  check_bool "mapped to failure" true (reply.Message.status = Status.Server_failure)

let test_transport_double_register_rejected () =
  let _clock, transport = make_transport () in
  register_echo transport;
  (try
     register_echo transport;
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_transport_unregister () =
  let _clock, transport = make_transport () in
  register_echo transport;
  Transport.unregister transport echo_port;
  let reply =
    Transport.trans transport ~model:Net.amoeba (Message.request ~port:echo_port ~command:1 ())
  in
  check_bool "gone" true (reply.Message.status = Status.Timeout)

let test_fault_hook_drop_request () =
  let clock, transport = make_transport () in
  register_echo transport;
  Transport.set_fault_hook transport (Some (fun ~link:_ _ -> Transport.Drop_request));
  let reply, us =
    Clock.elapsed clock (fun () ->
        Transport.trans transport ~model:Net.amoeba (Message.request ~port:echo_port ~command:1 ()))
  in
  check_bool "lost request times out" true (reply.Message.status = Status.Timeout);
  check_int "after the timeout interval" Net.amoeba.Net.timeout_us us;
  Transport.set_fault_hook transport None;
  let reply =
    Transport.trans transport ~model:Net.amoeba (Message.request ~port:echo_port ~command:1 ())
  in
  check_bool "hook removed" true (reply.Message.status = Status.Ok)

let test_fault_hook_drop_reply_executes () =
  let _clock, transport = make_transport () in
  let hits = ref 0 in
  let port = Port.of_int64 0xD0D0L in
  Transport.register transport port (fun _ ->
      incr hits;
      Message.reply ~status:Status.Ok ());
  Transport.set_fault_hook transport (Some (fun ~link:_ _ -> Transport.Drop_reply));
  let reply = Transport.trans transport ~model:Net.amoeba (Message.request ~port ~command:1 ()) in
  check_bool "reply lost" true (reply.Message.status = Status.Timeout);
  check_int "but the server executed" 1 !hits

let test_fault_hook_duplicate () =
  let _clock, transport = make_transport () in
  let hits = ref 0 in
  let port = Port.of_int64 0xD1D1L in
  Transport.register transport port (fun _ ->
      incr hits;
      Message.reply ~status:Status.Ok ());
  Transport.set_fault_hook transport (Some (fun ~link:_ _ -> Transport.Duplicate_request));
  let reply = Transport.trans transport ~model:Net.amoeba (Message.request ~port ~command:1 ()) in
  check_bool "client still gets its reply" true (reply.Message.status = Status.Ok);
  check_int "server ran twice" 2 !hits

let test_transport_stats () =
  let _clock, transport = make_transport () in
  register_echo transport;
  let (_ : Message.t) =
    Transport.trans transport ~model:Net.amoeba (Message.request ~port:echo_port ~command:1 ())
  in
  check_int "transactions" 1 (Amoeba_sim.Stats.count (Transport.stats transport) "transactions")

let suite =
  ( "rpc",
    [
      Alcotest.test_case "transmit of zero bytes" `Quick test_transmit_zero;
      Alcotest.test_case "transmit monotone in size" `Quick test_transmit_monotone;
      Alcotest.test_case "null transaction costs latency" `Quick test_transaction_includes_latency;
      Alcotest.test_case "sunos model heavier than amoeba" `Quick test_sunos_slower_than_amoeba;
      Alcotest.test_case "status int roundtrip" `Quick test_status_roundtrip;
      Alcotest.test_case "status check raises" `Quick test_status_check;
      Alcotest.test_case "message wire size" `Quick test_message_wire_bytes;
      Alcotest.test_case "transport roundtrip" `Quick test_transport_roundtrip;
      Alcotest.test_case "transport charges wire time" `Quick test_transport_charges_time;
      Alcotest.test_case "transport unbound port" `Quick test_transport_unbound_port;
      Alcotest.test_case "handler exception becomes failure reply" `Quick
        test_transport_handler_exception_becomes_failure;
      Alcotest.test_case "double register rejected" `Quick test_transport_double_register_rejected;
      Alcotest.test_case "unregister removes service" `Quick test_transport_unregister;
      Alcotest.test_case "transport statistics" `Quick test_transport_stats;
      Alcotest.test_case "fault hook drops a request" `Quick test_fault_hook_drop_request;
      Alcotest.test_case "dropped reply still executes" `Quick test_fault_hook_drop_reply_executes;
      Alcotest.test_case "duplicated request runs twice" `Quick test_fault_hook_duplicate;
    ] )
