type server = { socket : Unix.file_descr; port : int }

let listen ?(backlog = 16) ~port () =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt socket Unix.SO_REUSEADDR true;
  Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen socket backlog;
  let port =
    match Unix.getsockname socket with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  { socket; port }

let bound_port t = t.port

let handle_connection fd ~handler =
  let rec loop () =
    match Wire.read_frame fd with
    | Error _ -> ()
    | Ok payload -> (
      let reply =
        match Wire.decode payload with
        | Error _ -> Some (Message.error Status.Bad_request)
        | Ok request -> (
          try handler request with _ -> Some (Message.error Status.Server_failure))
      in
      (* [None] models a lost message on the real wire: no reply ever
         comes, the connection is dropped, and the client surfaces a
         failure it can retry — the closest a stream carrier gets to a
         datagram silently vanishing. *)
      match reply with
      | None -> ()
      | Some reply ->
        Wire.write_frame fd reply;
        loop ())
  in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) loop

let serve_connections t ~handler n =
  for _ = 1 to n do
    let fd, _peer = Unix.accept t.socket in
    handle_connection fd ~handler
  done

let serve_forever t ~handler =
  (* one request at a time, as on the paper's dedicated server machine *)
  let lock = Mutex.create () in
  let serialised request =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> handler request)
  in
  while true do
    let fd, _peer = Unix.accept t.socket in
    let (_ : Thread.t) = Thread.create (fun () -> handle_connection fd ~handler:serialised) () in
    ()
  done

let shutdown t = try Unix.close t.socket with Unix.Unix_error _ -> ()

type conn = { fd : Unix.file_descr }

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let address =
    try Unix.inet_addr_of_string host
    with Stdlib.Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> failwith ("cannot resolve " ^ host)
      | entry -> entry.Unix.h_addr_list.(0))
  in
  Unix.connect fd (Unix.ADDR_INET (address, port));
  { fd }

let trans conn request =
  Wire.write_frame conn.fd request;
  match Wire.read_frame conn.fd with
  | Error e -> failwith ("rpc: " ^ e)
  | Ok payload -> (
    match Wire.decode payload with
    | Error e -> failwith ("rpc: " ^ e)
    | Ok reply -> reply)

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()
