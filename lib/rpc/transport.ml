type service = Message.t -> Message.t

module Port_table = Hashtbl.Make (struct
  type t = Amoeba_cap.Port.t

  let equal = Amoeba_cap.Port.equal

  let hash = Amoeba_cap.Port.hash
end)

type t = {
  clock : Amoeba_sim.Clock.t;
  services : service Port_table.t;
  stats : Amoeba_sim.Stats.t;
}

let create ~clock =
  { clock; services = Port_table.create 16; stats = Amoeba_sim.Stats.create "transport" }

let clock t = t.clock

let register t port service =
  if Port_table.mem t.services port then
    invalid_arg
      (Printf.sprintf "Transport.register: port %s already bound" (Amoeba_cap.Port.to_string port));
  Port_table.replace t.services port service

let unregister t port = Port_table.remove t.services port

let lookup t port = Port_table.find_opt t.services port

let log_src = Logs.Src.create "amoeba.rpc" ~doc:"Amoeba RPC transport"

module Log = (val Logs.src_log log_src)

let trans t ~model request =
  Amoeba_sim.Stats.incr t.stats "transactions";
  let request_bytes = Message.wire_bytes request in
  Amoeba_sim.Stats.add t.stats "bytes_sent" request_bytes;
  (* Fixed transaction latency plus the request payload on the wire. *)
  Amoeba_sim.Clock.advance t.clock model.Net_model.latency_us;
  Amoeba_sim.Clock.advance t.clock (Net_model.transmit_us model request_bytes);
  let reply =
    match Port_table.find_opt t.services request.Message.port with
    | None ->
      Amoeba_sim.Stats.incr t.stats "unbound_port";
      Message.error Status.Server_failure
    | Some service -> (
      try service request
      with e ->
        Log.warn (fun m -> m "service on %a raised %s" Amoeba_cap.Port.pp request.Message.port (Printexc.to_string e));
        Message.error Status.Server_failure)
  in
  let reply_bytes = Message.wire_bytes reply in
  Amoeba_sim.Stats.add t.stats "bytes_received" reply_bytes;
  Amoeba_sim.Clock.advance t.clock (Net_model.transmit_us model reply_bytes);
  reply

let stats t = t.stats
