type service = Message.t -> Message.t

type delivery = Deliver | Drop_request | Drop_reply | Duplicate_request | Corrupt_reply

type fault_hook = link:Link.t option -> Message.t -> delivery

module Port_table = Hashtbl.Make (struct
  type t = Amoeba_cap.Port.t

  let equal = Amoeba_cap.Port.equal

  let hash = Amoeba_cap.Port.hash
end)

type t = {
  clock : Amoeba_sim.Clock.t;
  services : service Port_table.t;
  stats : Amoeba_sim.Stats.t;
  mutable fault_hook : fault_hook option;
  mutable tracer : Amoeba_trace.Trace.ctx option;
}

let create ~clock =
  {
    clock;
    services = Port_table.create 16;
    stats = Amoeba_sim.Stats.create "transport";
    fault_hook = None;
    tracer = None;
  }

let clock t = t.clock

let register t port service =
  if Port_table.mem t.services port then
    invalid_arg
      (Printf.sprintf "Transport.register: port %s already bound" (Amoeba_cap.Port.to_string port));
  Port_table.replace t.services port service

let unregister t port = Port_table.remove t.services port

let lookup t port = Port_table.find_opt t.services port

let set_fault_hook t hook = t.fault_hook <- hook

let set_tracer t tracer = t.tracer <- tracer

let tracer t = t.tracer

let log_src = Logs.Src.create "amoeba.rpc" ~doc:"Amoeba RPC transport"

module Log = (val Logs.src_log log_src)

let delivery_name = function
  | Deliver -> "deliver"
  | Drop_request -> "drop_request"
  | Drop_reply -> "drop_reply"
  | Duplicate_request -> "duplicate_request"
  | Corrupt_reply -> "corrupt_reply"

(* The client stub sent a request and no reply arrived: it learns nothing
   until its timer fires, so the transaction costs the full timeout
   interval from the moment of the send, whatever already happened on the
   wire. *)
let timed_out t ~model ~start reason =
  Amoeba_sim.Stats.incr t.stats reason;
  Amoeba_sim.Stats.incr t.stats "timeouts";
  (match t.tracer with
  | None -> Amoeba_sim.Clock.advance_to t.clock (start + model.Net_model.timeout_us)
  | Some tr ->
    Amoeba_trace.Trace.begin_span tr ~layer:Amoeba_trace.Sink.Net ~name:"net.timeout";
    Amoeba_sim.Clock.advance_to t.clock (start + model.Net_model.timeout_us);
    Amoeba_trace.Trace.end_span_attrs tr [ ("reason", Amoeba_trace.Sink.S reason) ]);
  Message.error Status.Timeout

(* Close the transaction's root span on every exit path with the reply
   status.  Top-level (not a closure inside [trans]) so the untraced hot
   path allocates nothing. *)
let finish t reply =
  (match t.tracer with
  | None -> ()
  | Some tr ->
    Amoeba_trace.Trace.end_span_attrs tr
      [ ("status", Amoeba_trace.Sink.S (Status.to_string reply.Message.status)) ]);
  reply

let trans ?link t ~model request =
  let start = Amoeba_sim.Clock.now t.clock in
  Amoeba_sim.Stats.incr t.stats "transactions";
  (match t.tracer with
  | None -> ()
  | Some tr ->
    Amoeba_trace.Trace.begin_root tr ~xid:request.Message.xid
      ~layer:Amoeba_trace.Sink.Net ~name:"rpc";
    (* No raw xid here: xids come from a process-global counter, and the
       interned trace id already names the transaction — raw values would
       make otherwise-identical dumps differ between runs in one process. *)
    Amoeba_trace.Trace.event tr ~layer:Amoeba_trace.Sink.Client ~name:"rpc.request"
      [ ("cmd", Amoeba_trace.Sink.I request.Message.command) ]);
  (* Consult the fault plan before delivery: the hook may also fire
     scheduled events (crash, reboot, drive failure) that are due now. *)
  let verdict = match t.fault_hook with None -> Deliver | Some hook -> hook ~link request in
  (match t.tracer with
  | None -> ()
  | Some tr ->
    if verdict <> Deliver then
      Amoeba_trace.Trace.event tr ~layer:Amoeba_trace.Sink.Net ~name:"net.fault"
        [ ("verdict", Amoeba_trace.Sink.S (delivery_name verdict)) ]);
  let request_bytes = Message.wire_bytes request in
  Amoeba_sim.Stats.add t.stats "bytes_sent" request_bytes;
  (match t.tracer with
  | None ->
    Amoeba_sim.Clock.advance t.clock model.Net_model.latency_us;
    Amoeba_sim.Clock.advance t.clock (Net_model.transmit_us model request_bytes)
  | Some tr ->
    Amoeba_trace.Trace.begin_span tr ~layer:Amoeba_trace.Sink.Net ~name:"net.send";
    Amoeba_sim.Clock.advance t.clock model.Net_model.latency_us;
    Amoeba_sim.Clock.advance t.clock (Net_model.transmit_us model request_bytes);
    Amoeba_trace.Trace.end_span_attrs tr [ ("bytes", Amoeba_trace.Sink.I request_bytes) ]);
  if verdict = Drop_request then finish t (timed_out t ~model ~start "dropped_requests")
  else
    match Port_table.find_opt t.services request.Message.port with
    | None ->
      (* Unbound (or crashed) port: nothing answers, so the client pays
         its timeout interval, not one network latency. *)
      Amoeba_sim.Stats.incr t.stats "unbound_port";
      finish t (timed_out t ~model ~start "unbound_timeouts")
    | Some service ->
      let run () =
        try service request
        with e ->
          Log.warn (fun m ->
              m "service on %a raised %s" Amoeba_cap.Port.pp request.Message.port
                (Printexc.to_string e));
          Message.error Status.Server_failure
      in
      let reply = run () in
      (* A duplicated request reaches the server twice; the second
         execution happens off the client's critical path (the client
         only waits for the first reply). Dedup, if any, is the
         service's business. *)
      if verdict = Duplicate_request then begin
        Amoeba_sim.Stats.incr t.stats "duplicated_requests";
        ignore (Amoeba_sim.Clock.unobserved t.clock run)
      end;
      (match verdict with
      | Drop_reply -> finish t (timed_out t ~model ~start "dropped_replies")
      | Corrupt_reply ->
        (* Per-packet checksums catch the damage; a corrupted reply is
           discarded by the client's RPC stub and surfaces as a loss. *)
        finish t (timed_out t ~model ~start "corrupted_replies")
      | Deliver | Duplicate_request | Drop_request ->
        let reply_bytes = Message.wire_bytes reply in
        Amoeba_sim.Stats.add t.stats "bytes_received" reply_bytes;
        (match t.tracer with
        | None -> Amoeba_sim.Clock.advance t.clock (Net_model.transmit_us model reply_bytes)
        | Some tr ->
          Amoeba_trace.Trace.begin_span tr ~layer:Amoeba_trace.Sink.Net ~name:"net.recv";
          Amoeba_sim.Clock.advance t.clock (Net_model.transmit_us model reply_bytes);
          Amoeba_trace.Trace.end_span_attrs tr
            [ ("bytes", Amoeba_trace.Sink.I reply_bytes) ]);
        finish t reply)

let stats t = t.stats

let register_metrics t reg =
  let module M = Amoeba_metrics.Metrics in
  M.gauge reg "rpc.registered_ports" (fun () -> Port_table.length t.services);
  M.stats_source reg ~prefix:"rpc" t.stats
