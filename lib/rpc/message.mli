(** RPC request and reply messages.

    Amoeba's RPC carries a small fixed header (addressed port, command or
    status, a capability, two integer arguments) plus an opaque buffer.
    Whole-file transfer means the buffer is the entire file for Bullet
    operations; block servers put one block in it. *)

type t = {
  port : Amoeba_cap.Port.t;  (** service the request is addressed to *)
  command : int;  (** operation code (requests) *)
  status : Status.t;  (** outcome (replies; [Ok] in requests) *)
  cap : Amoeba_cap.Capability.t option;  (** object operated on / returned *)
  arg0 : int;  (** small argument: size, offset, p-factor … *)
  arg1 : int;  (** second small argument *)
  xid : int;
      (** client transaction id, 0 = none. A client stamps a fresh id on
          each {e logical} mutating operation and reuses it across
          timeout retries; servers deduplicate on it, giving mutations
          at-most-once semantics over a lossy network. Idempotent
          operations (READ, SIZE) go out with [xid = 0] and are simply
          re-executed. *)
  body : bytes;  (** bulk data *)
}

val request :
  port:Amoeba_cap.Port.t ->
  command:int ->
  ?cap:Amoeba_cap.Capability.t ->
  ?arg0:int ->
  ?arg1:int ->
  ?xid:int ->
  ?body:bytes ->
  unit ->
  t

val reply :
  status:Status.t -> ?cap:Amoeba_cap.Capability.t -> ?arg0:int -> ?arg1:int -> ?body:bytes -> unit -> t
(** A reply is addressed back over the open transaction, so it needs no
    port; the null port is used. *)

val error : Status.t -> t
(** Shorthand for an empty-bodied error reply. *)

val header_bytes : int
(** Wire size of the fixed header, for the network cost model. *)

val wire_bytes : t -> int
(** Header plus body size. *)
