type t = {
  port : Amoeba_cap.Port.t;
  command : int;
  status : Status.t;
  cap : Amoeba_cap.Capability.t option;
  arg0 : int;
  arg1 : int;
  xid : int;
  body : bytes;
}

let null_port = Amoeba_cap.Port.of_int64 0L

let empty_body = Bytes.create 0

let request ~port ~command ?cap ?(arg0 = 0) ?(arg1 = 0) ?(xid = 0) ?(body = empty_body) () =
  { port; command; status = Status.Ok; cap; arg0; arg1; xid; body }

let reply ~status ?cap ?(arg0 = 0) ?(arg1 = 0) ?(body = empty_body) () =
  { port = null_port; command = 0; status; cap; arg0; arg1; xid = 0; body }

let error status = reply ~status ()

(* port 6 + command/status 4 + capability 20 + two args 8 + size 4; the
   transaction id rides in the header's matching field, which this
   per-message cost already counts (real Amoeba RPC matches replies to
   open transactions the same way). *)
let header_bytes = 42

let wire_bytes t = header_bytes + Bytes.length t.body
