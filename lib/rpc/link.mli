(** Wide-area link classes.

    Amoeba in 1989 ran "in four different countries (The Netherlands,
    England, Norway, and Germany)" behind gateways (paper §2.1, the
    MANDIS project). RPC cost depends on where the two parties sit:
    same Ethernet, same region (two LANs bridged by a gateway), or an
    international leased line.

    The type lives here, in the RPC layer, because transactions can be
    tagged with the link they ride ({!Transport.trans}'s [?link]) so a
    fault plan can target one link class — losing messages on the
    international line must not touch local traffic. [Amoeba_wan.Link]
    re-exports it for the federation code. *)

type t =
  | Local  (** same 10 Mbit/s Ethernet segment *)
  | Regional  (** LAN–gateway–LAN within a metro area (VU ↔ CWI) *)
  | Wide  (** international leased line, 64 kbit/s class *)

val model : t -> Net_model.t
(** The wire-cost model for one RPC across the link. [Local] is
    {!Net_model.amoeba}. *)

val classify : same_site:bool -> same_region:bool -> t

val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string}; also accepts ["wide"]. Used by the fault
    plan parser. *)
