(** A real transport: Amoeba RPC frames over TCP.

    This carries the same messages as the simulated {!Transport}, but
    across actual sockets, so the servers can be deployed as standalone
    daemons ([bin/bulletd.ml]) and driven from other processes
    ([bin/bullet_ctl.ml]). No virtual-time accounting happens here —
    wall-clock is real.

    [serve_forever] handles each connection in its own thread, but a
    mutex serialises request handling — matching the paper's server: one
    dedicated machine processing one request at a time, while many
    clients stay connected. *)

type server

val listen : ?backlog:int -> port:int -> unit -> server
(** Bind and listen on 127.0.0.1:[port]. Raises [Unix.Unix_error] on
    failure (e.g. port in use). *)

val bound_port : server -> int
(** The actual port (useful with [~port:0]). *)

val serve_forever : server -> handler:(Message.t -> Message.t option) -> unit
(** Accept loop: decode each frame, run the handler, reply. Each
    connection gets a thread; the handler itself runs under a mutex.
    Malformed frames get a [Bad_request] reply; handler exceptions
    become [Server_failure]. A handler returning [None] sends no reply
    and drops the connection — how a fault plan loses a message on a
    stream carrier; the client sees the connection close and may retry
    on a fresh one. Returns only if the server socket is closed (raises
    [Unix.Unix_error]). *)

val serve_connections : server -> handler:(Message.t -> Message.t option) -> int -> unit
(** Like {!serve_forever} but returns after serving [n] connections; for
    tests. *)

val shutdown : server -> unit

type conn
(** A client connection. *)

val connect : ?host:string -> port:int -> unit -> conn

val trans : conn -> Message.t -> Message.t
(** One request/reply exchange. Raises [Failure] on protocol errors and
    [Unix.Unix_error] on socket errors. *)

val close : conn -> unit
