type t =
  | Ok
  | Bad_capability
  | No_such_object
  | No_space
  | Not_found
  | Bad_request
  | Exists
  | Server_failure
  | Timeout

let to_int = function
  | Ok -> 0
  | Bad_capability -> 1
  | No_such_object -> 2
  | No_space -> 3
  | Not_found -> 4
  | Bad_request -> 5
  | Exists -> 6
  | Server_failure -> 7
  | Timeout -> 8

let of_int = function
  | 0 -> Ok
  | 1 -> Bad_capability
  | 2 -> No_such_object
  | 3 -> No_space
  | 4 -> Not_found
  | 5 -> Bad_request
  | 6 -> Exists
  | 8 -> Timeout
  | _ -> Server_failure

let to_string = function
  | Ok -> "ok"
  | Bad_capability -> "bad capability"
  | No_such_object -> "no such object"
  | No_space -> "no space"
  | Not_found -> "not found"
  | Bad_request -> "bad request"
  | Exists -> "already exists"
  | Server_failure -> "server failure"
  | Timeout -> "timeout"

let pp ppf t = Format.pp_print_string ppf (to_string t)

exception Error of t

let check = function Ok -> () | err -> raise (Error err)
