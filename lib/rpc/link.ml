type t = Local | Regional | Wide

let model = function
  | Local -> Net_model.amoeba
  | Regional ->
    (* two Ethernets joined by a store-and-forward gateway: extra hop
       latency, bandwidth throttled by the gateway's forwarding rate *)
    {
      Net_model.latency_us = 12_000;
      bytes_per_sec = 250_000;
      packet_bytes = 8_192;
      per_packet_us = 2_000;
      timeout_us = 1_000_000;
    }
  | Wide ->
    (* a 64 kbit/s international leased line (MANDIS class): ~8 KB/s
       with per-packet store-and-forward delays on both gateways *)
    {
      Net_model.latency_us = 120_000;
      bytes_per_sec = 8_000;
      packet_bytes = 1_024;
      per_packet_us = 15_000;
      timeout_us = 10_000_000;
    }

let classify ~same_site ~same_region =
  if same_site then Local else if same_region then Regional else Wide

let to_string = function Local -> "local" | Regional -> "regional" | Wide -> "wide-area"

let of_string = function
  | "local" -> Some Local
  | "regional" -> Some Regional
  | "wide" | "wide-area" -> Some Wide
  | _ -> None
