(** RPC reply status codes shared by all Amoeba services. *)

type t =
  | Ok
  | Bad_capability  (** check-field verification failed or rights missing *)
  | No_such_object  (** object number not in the server's table *)
  | No_space  (** allocation failed (disk, cache or inode table full) *)
  | Not_found  (** directory lookup miss *)
  | Bad_request  (** malformed arguments or unknown command *)
  | Exists  (** directory entry already present *)
  | Server_failure  (** internal error, e.g. all replica disks down *)
  | Timeout
      (** no reply within the transport's timeout interval: the request or
          reply was lost, or the destination port is not (currently)
          bound — e.g. the server crashed. Safe to retry idempotent
          operations; mutations carry a transaction id the server
          deduplicates (see {!Message.t.xid}). *)

val to_int : t -> int

val of_int : int -> t
(** Unknown codes decode as [Server_failure]. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

exception Error of t
(** Raised by client stubs on a non-[Ok] reply. *)

val check : t -> unit
(** [check s] raises [Error s] unless [s] is [Ok]. *)
