type t = {
  latency_us : int;
  bytes_per_sec : int;
  packet_bytes : int;
  per_packet_us : int;
  timeout_us : int;
}

let amoeba =
  {
    latency_us = 1_800;
    bytes_per_sec = 720_000;
    packet_bytes = 8_192;
    per_packet_us = 500;
    timeout_us = 100_000;
  }

let sunos_nfs =
  {
    latency_us = 7_000;
    bytes_per_sec = 720_000;
    packet_bytes = 1_480;
    per_packet_us = 300;
    timeout_us = 700_000;
  }

let transmit_us t bytes =
  if bytes <= 0 then 0
  else
    let packets = (bytes + t.packet_bytes - 1) / t.packet_bytes in
    (bytes * 1_000_000 / t.bytes_per_sec) + (packets * t.per_packet_us)

let transaction_us t ~request_bytes ~reply_bytes =
  t.latency_us + transmit_us t request_bytes + transmit_us t reply_bytes
