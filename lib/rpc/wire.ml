let max_frame_bytes = 64 * 1024 * 1024

let set_u32 buf off v =
  for i = 0 to 3 do
    Bytes.set buf (off + i) (Char.chr ((v lsr (8 * (3 - i))) land 0xff))
  done

let get_u32 buf off =
  let acc = ref 0 in
  for i = 0 to 3 do
    acc := (!acc lsl 8) lor Char.code (Bytes.get buf (off + i))
  done;
  !acc

let set_i64 buf off v =
  for i = 0 to 7 do
    Bytes.set buf (off + i) (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * (7 - i))) land 0xff))
  done

let get_i64 buf off =
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code (Bytes.get buf (off + i))))
  done;
  !acc

(* payload layout:
   port 6 | command 4 | status 4 | cap-flag 1 | cap 20 | arg0 8 | arg1 8 | xid 8 | body *)
let fixed_bytes = 6 + 4 + 4 + 1 + Amoeba_cap.Capability.wire_size + 8 + 8 + 8

let encode (m : Message.t) =
  let body_len = Bytes.length m.Message.body in
  let frame = Bytes.make (4 + fixed_bytes + body_len) '\000' in
  set_u32 frame 0 (fixed_bytes + body_len);
  Amoeba_cap.Port.write m.Message.port frame 4;
  set_u32 frame 10 m.Message.command;
  set_u32 frame 14 (Status.to_int m.Message.status);
  (match m.Message.cap with
  | Some cap ->
    Bytes.set frame 18 '\001';
    Amoeba_cap.Capability.write cap frame 19
  | None -> ());
  set_i64 frame (19 + Amoeba_cap.Capability.wire_size) (Int64.of_int m.Message.arg0);
  set_i64 frame (27 + Amoeba_cap.Capability.wire_size) (Int64.of_int m.Message.arg1);
  set_i64 frame (35 + Amoeba_cap.Capability.wire_size) (Int64.of_int m.Message.xid);
  Bytes.blit m.Message.body 0 frame (4 + fixed_bytes) body_len;
  frame

let decode payload =
  if Bytes.length payload < fixed_bytes then Error "frame too short"
  else begin
    let port = Amoeba_cap.Port.read payload 0 in
    let command = get_u32 payload 6 in
    let status = Status.of_int (get_u32 payload 10) in
    let cap =
      if Bytes.get payload 14 = '\001' then Some (Amoeba_cap.Capability.read payload 15) else None
    in
    let arg0 = Int64.to_int (get_i64 payload (15 + Amoeba_cap.Capability.wire_size)) in
    let arg1 = Int64.to_int (get_i64 payload (23 + Amoeba_cap.Capability.wire_size)) in
    let xid = Int64.to_int (get_i64 payload (31 + Amoeba_cap.Capability.wire_size)) in
    let body_off = fixed_bytes in
    let body = Bytes.sub payload body_off (Bytes.length payload - body_off) in
    Ok { Message.port; command; status; cap; arg0; arg1; xid; body }
  end

let really_read fd buf off len =
  let rec go off remaining =
    if remaining > 0 then begin
      let n = Unix.read fd buf off remaining in
      if n = 0 then raise End_of_file;
      go (off + n) (remaining - n)
    end
  in
  go off len

let read_frame fd =
  let header = Bytes.create 4 in
  match really_read fd header 0 4 with
  | exception End_of_file -> Error "connection closed"
  | () ->
    let len = get_u32 header 0 in
    if len < fixed_bytes || len > max_frame_bytes then Error "bad frame length"
    else begin
      let payload = Bytes.create len in
      match really_read fd payload 0 len with
      | exception End_of_file -> Error "connection closed mid-frame"
      | () -> Ok payload
    end

let write_frame fd m =
  let frame = encode m in
  let rec go off remaining =
    if remaining > 0 then begin
      let n = Unix.write fd frame off remaining in
      go (off + n) (remaining - n)
    end
  in
  go 0 (Bytes.length frame)
