(** Network cost model: a 10 Mbit/s Ethernet as seen through an RPC stack.

    The paper measured "on a normally loaded Ethernet from a 16 MHz
    processor"; the observable behaviour is that one RPC transaction costs
    a fixed overhead (stubs, kernel, interrupts, both directions) plus
    per-byte wire time plus per-fragment processing. Amoeba's stack is
    lean (~1.4 ms null RPC, ~677 KB/s bulk); SunOS 3.5's RPC/UDP path is
    several times heavier, which is part of why NFS loses even before the
    disk is involved. Both calibrations live here so the benchmarks share
    one wire. *)

type t = {
  latency_us : int;  (** fixed cost per transaction (request + reply) *)
  bytes_per_sec : int;  (** effective one-way data rate *)
  packet_bytes : int;  (** fragment size *)
  per_packet_us : int;  (** per-fragment processing cost *)
  timeout_us : int;
      (** how long the client-side RPC stub waits for a reply before
          declaring the transaction lost. Charged in full when the
          request or reply is dropped, or the destination port is
          unbound (crashed server) — the stub cannot tell these apart. *)
}

val amoeba : t
(** Amoeba 3.x RPC on 10 Mbit/s Ethernet between 16.7 MHz MC68020s;
    calibrated so a null transaction is ≈2.5 ms and a 1 MB transfer
    sustains ≈680 KB/s (the published Amoeba figures). The locate/retry
    timer is 100 ms — generous against the ~2.5 ms null RPC, as the real
    kernel's was. *)

val sunos_nfs : t
(** SunOS 3.5 UDP RPC between a SUN 3/50 and a 3/180; heavier per-call
    and per-fragment costs. Timeout is NFS's classic 700 ms initial
    [timeo]. *)

val transmit_us : t -> int -> int
(** [transmit_us model bytes] is the one-way time to move [bytes] of
    payload (excludes the fixed per-transaction latency). *)

val transaction_us : t -> request_bytes:int -> reply_bytes:int -> int
(** Full wire cost of one RPC: fixed latency + both payloads. *)
