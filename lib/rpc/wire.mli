(** Binary framing of RPC messages, for transports that cross a real
    byte stream (the TCP transport, image files). One frame is a 4-byte
    big-endian length followed by the encoded message. *)

val encode : Message.t -> bytes
(** The full frame, including the length prefix. *)

val decode : bytes -> (Message.t, string) result
(** Decode the payload of one frame (without the length prefix). *)

val max_frame_bytes : int
(** Upper bound accepted by {!decode} and the stream readers (64 MB —
    far above any whole-file transfer the servers allow). *)

val read_frame : Unix.file_descr -> (bytes, string) result
(** Read one complete frame payload from a stream socket; [Error] on EOF
    or malformed length. *)

val write_frame : Unix.file_descr -> Message.t -> unit
(** Write one complete frame. *)
