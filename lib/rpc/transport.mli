(** The simulated network: a registry of services and a transaction
    primitive.

    [trans] is Amoeba's combined send-request/await-reply call. The
    transport charges wire time for the request, hands the message to the
    service registered on the destination port (which charges its own CPU
    and disk time while handling it), then charges wire time for the
    reply. All of this advances the shared virtual clock, so an
    experiment's elapsed time is exactly the client-visible delay. *)

type t

type service = Message.t -> Message.t
(** A request handler. Exceptions escaping a handler become
    [Server_failure] replies. *)

val create : clock:Amoeba_sim.Clock.t -> t

val clock : t -> Amoeba_sim.Clock.t

val register : t -> Amoeba_cap.Port.t -> service -> unit
(** Publish a service on a port. Raises [Invalid_argument] if the port is
    already bound. *)

val unregister : t -> Amoeba_cap.Port.t -> unit
(** Remove a service, e.g. to simulate a crashed server. *)

val lookup : t -> Amoeba_cap.Port.t -> service option

val trans : t -> model:Net_model.t -> Message.t -> Message.t
(** One RPC transaction under the given wire-cost model. A request to an
    unbound port returns a [Server_failure] reply after the fixed network
    latency (the timeout path is not modelled further). *)

val stats : t -> Amoeba_sim.Stats.t
(** Counters: [transactions], [bytes_sent], [bytes_received],
    [unbound_port]. *)
