(** The simulated network: a registry of services and a transaction
    primitive.

    [trans] is Amoeba's combined send-request/await-reply call. The
    transport charges wire time for the request, hands the message to the
    service registered on the destination port (which charges its own CPU
    and disk time while handling it), then charges wire time for the
    reply. All of this advances the shared virtual clock, so an
    experiment's elapsed time is exactly the client-visible delay.

    The transport also owns the failure semantics of the wire: a request
    to an unbound port (a crashed or never-started server) costs the
    client the model's full timeout interval and returns a {!Status.Timeout}
    reply, and an installed {!fault_hook} can drop, duplicate or corrupt
    messages — the building blocks [Amoeba_fault.Injector] uses. *)

type t

type service = Message.t -> Message.t
(** A request handler. Exceptions escaping a handler become
    [Server_failure] replies. *)

type delivery =
  | Deliver  (** normal delivery, both directions *)
  | Drop_request  (** the request never arrives; client times out *)
  | Drop_reply
      (** the server executes (side effects happen!) but the reply is
          lost; client times out *)
  | Duplicate_request
      (** the request arrives twice; the second execution is off the
          client's critical path. Servers deduplicate mutations by
          {!Message.t.xid}. *)
  | Corrupt_reply
      (** the reply is damaged in flight; checksums catch it and the
          client stub discards it — observably a loss *)

type fault_hook = link:Link.t option -> Message.t -> delivery
(** Consulted once per transaction, before delivery. [link] is the link
    class the caller tagged the transaction with ({!trans}'s [?link]),
    [None] for untagged traffic — it lets a plan fault one link class
    (the international line) while local traffic is untouched. Installed
    by the fault injector; also its chance to fire scheduled fault
    events that have come due on the virtual clock. *)

val create : clock:Amoeba_sim.Clock.t -> t

val clock : t -> Amoeba_sim.Clock.t

val register : t -> Amoeba_cap.Port.t -> service -> unit
(** Publish a service on a port. Raises [Invalid_argument] if the port is
    already bound. *)

val unregister : t -> Amoeba_cap.Port.t -> unit
(** Remove a service, e.g. to simulate a crashed server. *)

val lookup : t -> Amoeba_cap.Port.t -> service option

val set_fault_hook : t -> fault_hook option -> unit
(** Install (or with [None] remove) the delivery fault hook. *)

val set_tracer : t -> Amoeba_trace.Trace.ctx option -> unit
(** Install (or with [None] remove) the tracer.  With a tracer installed,
    every [trans] opens a root span ([rpc], trace id derived from the
    request xid) with [net.send]/[net.recv]/[net.timeout] children and a
    [net.fault] event when the fault hook intervenes.  Services read the
    tracer via {!tracer} to nest their own spans inside the transaction.
    With [None] the hot path is the exact untraced code. *)

val tracer : t -> Amoeba_trace.Trace.ctx option

val trans : ?link:Link.t -> t -> model:Net_model.t -> Message.t -> Message.t
(** One RPC transaction under the given wire-cost model. [link] tags the
    transaction with the link class it rides (the federation passes the
    link it computed the model from) and is forwarded to the fault hook.
    A request to an unbound port, or one whose request or reply the
    fault hook loses, returns a [Timeout] reply after the model's
    [timeout_us] has elapsed from the start of the transaction — the
    client stub learns nothing sooner. Retry policy is the client's job
    (see [Bullet_core.Client]). *)

val stats : t -> Amoeba_sim.Stats.t
(** Counters: [transactions], [bytes_sent], [bytes_received],
    [unbound_port], [timeouts], and the fault breakdown
    [dropped_requests], [dropped_replies], [duplicated_requests],
    [corrupted_replies], [unbound_timeouts]. *)

val register_metrics : t -> Amoeba_metrics.Metrics.t -> unit
(** Register the wire's live surface: a [rpc.registered_ports] gauge and
    every {!stats} counter ([transactions], [timeouts], the fault
    breakdown, ...) under the [rpc.] prefix. *)
