(** A write-once optical disk.

    The paper (§2): the version mechanism "presents the possibility of
    keeping versions on write-once storage such as optical disks".
    An optical WORM drive of the era: slow to position (~80 ms), modest
    transfer (~300 KB/s write, ~600 KB/s read), and each block is
    writable exactly once — there is no delete, ever.

    The device is an append-only sequence of variable-size records; a
    record's index is its permanent address. *)

type t

type slot = int
(** Permanent record address on this platter. *)

exception Write_once_violation
(** Raised by {!overwrite} — kept in the API to document the physical
    contract; nothing in this library calls it. *)

exception Platter_full

val create : capacity:int -> clock:Amoeba_sim.Clock.t -> t
(** A blank platter of [capacity] bytes. *)

val capacity : t -> int

val used : t -> int

val records : t -> int

val append : t -> bytes -> slot
(** Burn one record; charges positioning + write transfer at optical
    speed. Raises {!Platter_full} when the data does not fit. *)

val read : t -> slot -> bytes
(** Read a record back; charges positioning + read transfer. Raises
    [Invalid_argument] on an unknown slot. *)

val overwrite : t -> slot -> bytes -> 'a
(** Always raises {!Write_once_violation}: that is the point. *)

val stats : t -> Amoeba_sim.Stats.t
