type slot = int

exception Write_once_violation

exception Platter_full

type t = {
  capacity : int;
  clock : Amoeba_sim.Clock.t;
  mutable burned : bytes list; (* newest first *)
  mutable count : int;
  mutable used : int;
  table : (int, bytes) Hashtbl.t;
  stats : Amoeba_sim.Stats.t;
}

let position_us = 80_000

let write_rate = 300_000 (* bytes/s *)

let read_rate = 600_000

let create ~capacity ~clock =
  {
    capacity;
    clock;
    burned = [];
    count = 0;
    used = 0;
    table = Hashtbl.create 64;
    stats = Amoeba_sim.Stats.create "worm";
  }

let capacity t = t.capacity

let used t = t.used

let records t = t.count

let append t data =
  let len = Bytes.length data in
  if t.used + len > t.capacity then raise Platter_full;
  Amoeba_sim.Clock.advance t.clock (position_us + (len * 1_000_000 / write_rate));
  let slot = t.count in
  Hashtbl.replace t.table slot (Bytes.copy data);
  t.burned <- data :: t.burned;
  t.count <- t.count + 1;
  t.used <- t.used + len;
  Amoeba_sim.Stats.incr t.stats "burns";
  Amoeba_sim.Stats.add t.stats "bytes_burned" len;
  slot

let read t slot =
  match Hashtbl.find_opt t.table slot with
  | None -> invalid_arg (Printf.sprintf "Worm_device.read: unknown slot %d" slot)
  | Some data ->
    Amoeba_sim.Clock.advance t.clock (position_us + (Bytes.length data * 1_000_000 / read_rate));
    Amoeba_sim.Stats.incr t.stats "reads";
    Bytes.copy data

let overwrite _t _slot _data = raise Write_once_violation

let stats t = t.stats
