module Status = Amoeba_rpc.Status
module Cap = Amoeba_cap.Capability
module Client = Bullet_core.Client

type archived = { slot : Worm_device.slot; size : int; sequence : int }

type t = {
  store : Client.t;
  platter : Worm_device.t;
  catalog : (string, archived list) Hashtbl.t; (* newest first *)
  mutable next_sequence : int;
}

let create ~store ~platter = { store; platter; catalog = Hashtbl.create 32; next_sequence = 1 }

let burn t ~name data =
  let slot = Worm_device.append t.platter data in
  let sequence = t.next_sequence in
  t.next_sequence <- sequence + 1;
  let entry = { slot; size = Bytes.length data; sequence } in
  let existing = Option.value (Hashtbl.find_opt t.catalog name) ~default:[] in
  Hashtbl.replace t.catalog name (entry :: existing);
  entry

let archive_file t ~name cap =
  match Client.read t.store cap with
  | exception Status.Error e -> Error e
  | data -> (
    match burn t ~name data with
    | exception Worm_device.Platter_full -> Error Status.No_space
    | entry ->
      (try Client.delete t.store cap with Status.Error _ -> ());
      Ok entry)

let archive_name t ~dirs ~dir name =
  match Amoeba_dir.Dir_server.versions dirs dir name with
  | Error e -> Error e
  | Ok [] | Ok [ _ ] -> Ok 0
  | Ok (newest :: older) ->
    (* burn oldest-first so catalog sequence reflects age *)
    let rec burn_all acc = function
      | [] -> Ok acc
      | cap :: rest -> (
        match archive_file t ~name cap with
        | Ok (_ : archived) -> burn_all (acc + 1) rest
        | Error e -> Error e)
    in
    let result = burn_all 0 (List.rev older) in
    (match result with
    | Ok n when n > 0 ->
      (* shrink the binding to just the newest version: remove and
         re-enter (the directory server has no truncate-versions op) *)
      (match Amoeba_dir.Dir_server.remove_name dirs dir name with
      | Ok () -> (
        match Amoeba_dir.Dir_server.enter dirs dir name newest with Ok () | Error _ -> ())
      | Error _ -> ())
    | _ -> ());
    result

let history t name = Option.value (Hashtbl.find_opt t.catalog name) ~default:[]

let recall t name ~sequence =
  match List.find_opt (fun a -> a.sequence = sequence) (history t name) with
  | None -> Error Status.Not_found
  | Some entry -> (
    let data = Worm_device.read t.platter entry.slot in
    match Client.create t.store data with
    | cap -> Ok cap
    | exception Status.Error e -> Error e)

let catalog_names t =
  Amoeba_sim.Tbl.sorted_keys String.compare t.catalog

(* ---- catalog persistence ---- *)

let add_u32 buf v =
  for i = 3 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

type reader = { data : bytes; mutable pos : int }

let read_u32 r =
  let v = ref 0 in
  for _ = 1 to 4 do
    v := (!v lsl 8) lor Char.code (Bytes.get r.data r.pos);
    r.pos <- r.pos + 1
  done;
  !v

let checkpoint t =
  let buf = Buffer.create 256 in
  add_u32 buf t.next_sequence;
  add_u32 buf (Hashtbl.length t.catalog);
  let encode_name name entries =
    add_u32 buf (String.length name);
    Buffer.add_string buf name;
    add_u32 buf (List.length entries);
    List.iter
      (fun e ->
        add_u32 buf e.slot;
        add_u32 buf e.size;
        add_u32 buf e.sequence)
      entries
  in
  (* Sorted so the persisted catalog bytes never depend on hash order. *)
  Amoeba_sim.Tbl.sorted_iter String.compare encode_name t.catalog;
  match Client.create t.store (Buffer.to_bytes buf) with
  | cap -> Ok cap
  | exception Status.Error e -> Error e

let restore ~store ~platter cap =
  match Client.read store cap with
  | exception Status.Error e -> Error e
  | data ->
    let r = { data; pos = 0 } in
    let next_sequence = read_u32 r in
    let names = read_u32 r in
    let t = { store; platter; catalog = Hashtbl.create 32; next_sequence } in
    for _ = 1 to names do
      let len = read_u32 r in
      let name = Bytes.sub_string r.data r.pos len in
      r.pos <- r.pos + len;
      let count = read_u32 r in
      let rec entries n =
        if n = 0 then []
        else begin
          let slot = read_u32 r in
          let size = read_u32 r in
          let sequence = read_u32 r in
          { slot; size; sequence } :: entries (n - 1)
        end
      in
      Hashtbl.replace t.catalog name (entries count)
    done;
    Ok t
