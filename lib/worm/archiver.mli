(** The version archiver: old versions migrate from magnetic to optical
    storage.

    A name's newest versions stay on the Bullet server (fast, mirrored,
    deletable); when {!archive_name} runs — think of it riding the 3 a.m.
    compaction — every retained version {e except the newest} is burned
    to the WORM platter and deleted from the Bullet server, freeing
    magnetic space while keeping history forever (write-once storage
    cannot lose it). {!recall} brings an archived version back as a
    fresh Bullet file.

    The catalog (name → burned versions) is checkpointable to a Bullet
    file like the directory service's table. *)

type t

type archived = {
  slot : Worm_device.slot;
  size : int;
  sequence : int;  (** version counter per name; higher = newer *)
}

val create : store:Bullet_core.Client.t -> platter:Worm_device.t -> t

val archive_name :
  t ->
  dirs:Amoeba_dir.Dir_server.t ->
  dir:Amoeba_cap.Capability.t ->
  string ->
  (int, Amoeba_rpc.Status.t) result
(** Burn every version of the binding except the newest, delete them from
    the Bullet server, and shrink the binding to just the newest version.
    Returns how many versions were archived. *)

val archive_file : t -> name:string -> Amoeba_cap.Capability.t -> (archived, Amoeba_rpc.Status.t) result
(** Burn one Bullet file under a catalog name and delete the original. *)

val history : t -> string -> archived list
(** Archived versions of a name, newest first. *)

val recall : t -> string -> sequence:int -> (Amoeba_cap.Capability.t, Amoeba_rpc.Status.t) result
(** Re-create one archived version as a fresh Bullet file. *)

val catalog_names : t -> string list

val checkpoint : t -> (Amoeba_cap.Capability.t, Amoeba_rpc.Status.t) result
(** Persist the catalog to a Bullet file. *)

val restore :
  store:Bullet_core.Client.t ->
  platter:Worm_device.t ->
  Amoeba_cap.Capability.t ->
  (t, Amoeba_rpc.Status.t) result
