(** The RAM copy of the inode table.

    "When the file server starts up, it reads the complete inode table
    into the RAM inode table and keeps it there permanently." Updates go
    to RAM and are written through by flushing the whole disk block
    containing the changed inode (the paper: "the whole disk block
    containing the inode has to be written"). Unused (all-zero) inodes are
    kept on a free list. The startup scan performs the paper's consistency
    checks — files must lie inside the data area and must not overlap —
    and zeroes offending inodes. *)

type t

type scan_report = {
  files : int;  (** live inodes found *)
  repaired : int list;  (** inodes zeroed by the consistency checks *)
}

val format : Amoeba_disk.Mirror.t -> max_files:int -> Layout.descriptor
(** Write a fresh empty Bullet image (descriptor + zeroed inode table) to
    every drive of the mirror. Untimed (mkfs happens offline). *)

val load : Amoeba_disk.Mirror.t -> (t * scan_report, string) result
(** Read the descriptor and the whole inode table from the primary drive
    (charging one sequential read), rebuild the free-inode list, clear
    stale cache indices and run the consistency checks. *)

val descriptor : t -> Layout.descriptor

val max_inode : t -> int

val get : t -> int -> Layout.inode
(** Raises [Invalid_argument] out of table range. *)

val set : t -> int -> Layout.inode -> unit
(** RAM-only update; call {!flush} to write through. Freeing or allocating
    via [set] keeps the free list consistent. *)

val flush : t -> sync:int -> int -> unit
(** [flush t ~sync i] writes the disk block containing inode [i] through
    the mirror with the given number of synchronous replicas. *)

val flush_all : t -> sync:int -> unit
(** Write the entire RAM table back through the mirror (one write per
    inode block); used by the offline fsck to persist scan repairs. *)

val alloc : t -> int option
(** Lowest free inode number, removed from the free list (its content is
    still {!Layout.free_inode} until [set]). *)

val free : t -> int -> unit
(** Zero inode [i] in RAM and return it to the free list (does not
    flush). *)

val free_count : t -> int

val live_count : t -> int

val iter_live : t -> (int -> Layout.inode -> unit) -> unit
(** Visit every non-free inode. *)
