type inode = { random : int64; index : int; first_block : int; size_bytes : int }

let free_inode = { random = 0L; index = 0; first_block = 0; size_bytes = 0 }

let is_free i = Int64.equal i.random 0L && i.index = 0 && i.first_block = 0 && i.size_bytes = 0

type descriptor = { block_size : int; control_size : int; data_size : int }

let inode_bytes = 16

let inodes_per_block block_size = block_size / inode_bytes

let magic = 0x42554C4C (* "BULL" *)

let set_u16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set buf (off + 1) (Char.chr (v land 0xff))

let get_u16 buf off = (Char.code (Bytes.get buf off) lsl 8) lor Char.code (Bytes.get buf (off + 1))

let set_u32 buf off v =
  for i = 0 to 3 do
    Bytes.set buf (off + i) (Char.chr ((v lsr (8 * (3 - i))) land 0xff))
  done

let get_u32 buf off =
  let acc = ref 0 in
  for i = 0 to 3 do
    acc := (!acc lsl 8) lor Char.code (Bytes.get buf (off + i))
  done;
  !acc

let set_u48 buf off v =
  for i = 0 to 5 do
    let shift = 8 * (5 - i) in
    Bytes.set buf (off + i) (Char.chr (Int64.to_int (Int64.shift_right_logical v shift) land 0xff))
  done

let get_u48 buf off =
  let acc = ref 0L in
  for i = 0 to 5 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code (Bytes.get buf (off + i))))
  done;
  !acc

let encode_inode i buf off =
  set_u48 buf off i.random;
  set_u16 buf (off + 6) i.index;
  set_u32 buf (off + 8) i.first_block;
  set_u32 buf (off + 12) i.size_bytes

let decode_inode buf off =
  {
    random = get_u48 buf off;
    index = get_u16 buf (off + 6);
    first_block = get_u32 buf (off + 8);
    size_bytes = get_u32 buf (off + 12);
  }

let encode_descriptor d buf off =
  set_u32 buf off magic;
  set_u32 buf (off + 4) d.block_size;
  set_u32 buf (off + 8) d.control_size;
  set_u32 buf (off + 12) d.data_size

let decode_descriptor buf off =
  if get_u32 buf off <> magic then Error "bad magic: not a Bullet image"
  else
    let d =
      {
        block_size = get_u32 buf (off + 4);
        control_size = get_u32 buf (off + 8);
        data_size = get_u32 buf (off + 12);
      }
    in
    if d.block_size <= 0 || d.block_size mod inode_bytes <> 0 then Error "bad block size"
    else if d.control_size <= 0 || d.data_size < 0 then Error "bad section sizes"
    else Ok d

let plan geometry ~max_files =
  let block_size = geometry.Amoeba_disk.Geometry.sector_bytes in
  let per_block = inodes_per_block block_size in
  (* +1 for the descriptor entry. *)
  let control_size = (max_files + 1 + per_block - 1) / per_block in
  let total = geometry.Amoeba_disk.Geometry.sector_count in
  if control_size >= total then invalid_arg "Layout.plan: drive too small for the inode table";
  { block_size; control_size; data_size = total - control_size }

let data_start d = d.control_size

let max_inode d = (d.control_size * inodes_per_block d.block_size) - 1

let inode_block d i =
  if i < 0 || i > max_inode d then invalid_arg (Printf.sprintf "Layout.inode_block: inode %d" i);
  i / inodes_per_block d.block_size
