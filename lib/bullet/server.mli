(** The Bullet file server.

    Implements the paper's architectural model: every file is immutable
    and stored contiguously on disk, in the server's RAM cache, and on the
    wire. The interface is the paper's four calls — {!create}, {!size},
    {!read}, {!delete} — plus the §5 extension that derives a new file
    from an existing one ({!modify}, {!append}, {!truncate},
    {!read_range}) so small updates need not transfer the whole file.

    [create]'s [p_factor] is the paper's Paranoia Factor: the number of
    disks that must hold the file before the reply; 0 replies straight
    from the RAM cache. Writes always go through to every replica disk
    (write-through), the P-FACTOR only chooses the reply point.

    All operations charge virtual time (server CPU, memory copies, disk
    accesses) to the simulation clock; the RPC layer adds wire time. *)

type t

type config = {
  cache_bytes : int;  (** RAM devoted to the file cache *)
  max_cached_files : int;  (** rnode table size *)
  cpu_request_us : int;  (** per-request server CPU cost *)
  copy_bytes_per_sec : int;  (** RAM-to-RAM copy rate of the server CPU *)
  alloc_policy : Extent_alloc.policy;  (** disk extent allocation policy *)
}

val default_config : config
(** The paper's server: a 16 MB machine leaves ~12 MB of cache; 1.2 ms of
    CPU per request; 8 MB/s copies (16.7 MHz MC68020); first-fit. *)

val format : Amoeba_disk.Mirror.t -> max_files:int -> unit
(** mkfs: write an empty Bullet image on every replica drive. *)

val start :
  ?config:config ->
  ?seed:int64 ->
  Amoeba_disk.Mirror.t ->
  (t * Inode_table.scan_report, string) result
(** Boot a server on a formatted replica set: reads the whole inode table
    into RAM (charging the sequential read), runs the consistency checks,
    builds the free lists, and picks a fresh service port. *)

val port : t -> Amoeba_cap.Port.t
(** The port clients address; stable for the life of this incarnation. *)

val clock : t -> Amoeba_sim.Clock.t

val crash : t -> unit
(** Kill the server: RAM cache and inode table are lost, pending
    write-behind is discarded, and every subsequent operation fails with
    [Server_failure]. Boot again with {!start} on the same mirror. *)

val set_tracer : t -> Amoeba_trace.Trace.ctx option -> unit
(** Install (or with [None] remove) the tracer on the server and
    everything below it: the cache ([cache.hit]/[cache.miss]/
    [cache.evict] events, [cache.memcpy] spans), the disk extent
    allocator ([alloc.take]/[alloc.free] events), and the mirror with its
    drives (mirror and seek/rotate/transfer spans).  Per-request CPU
    charges become [cpu.request] spans.  With [None] every hot path is
    the exact untraced code. *)

val tracer : t -> Amoeba_trace.Trace.ctx option

(** {1 The Bullet interface} *)

val create : t -> ?p_factor:int -> bytes -> (Amoeba_cap.Capability.t, Amoeba_rpc.Status.t) result
(** [BULLET.CREATE]. Returns a capability with all rights. Fails with
    [No_space] if the file exceeds the cache (files must fit in server
    memory), or disk/inode space is exhausted; [Bad_request] if [p_factor]
    exceeds the number of drives. Default [p_factor] is the drive count. *)

val size : t -> Amoeba_cap.Capability.t -> (int, Amoeba_rpc.Status.t) result
(** [BULLET.SIZE]; needs the read right. *)

val read : t -> Amoeba_cap.Capability.t -> (bytes, Amoeba_rpc.Status.t) result
(** [BULLET.READ]: the whole file; needs the read right. A cache hit
    touches no disk; a miss loads the file contiguously in one disk
    transfer, evicting LRU files as needed. *)

val delete : t -> Amoeba_cap.Capability.t -> (unit, Amoeba_rpc.Status.t) result
(** [BULLET.DELETE]; needs the delete right. Zeroes the inode on every
    disk and frees cache and disk space. *)

(** {1 §5 extensions} *)

val read_range :
  t -> Amoeba_cap.Capability.t -> pos:int -> len:int -> (bytes, Amoeba_rpc.Status.t) result
(** Partial read, for clients with small memories. The file is still
    cached whole on the server. *)

val modify :
  t ->
  ?p_factor:int ->
  Amoeba_cap.Capability.t ->
  pos:int ->
  bytes ->
  (Amoeba_cap.Capability.t, Amoeba_rpc.Status.t) result
(** [BULLET.MODIFY]: create a {e new} file whose contents are the old
    file with the given bytes spliced in at [pos] (extending it if the
    splice runs past the end). The old file is untouched — immutability
    is preserved; only the small delta crosses the wire. Needs read and
    modify rights. *)

val append :
  t ->
  ?p_factor:int ->
  Amoeba_cap.Capability.t ->
  bytes ->
  (Amoeba_cap.Capability.t, Amoeba_rpc.Status.t) result
(** Derive a new file = old ++ data. *)

val truncate :
  t ->
  ?p_factor:int ->
  Amoeba_cap.Capability.t ->
  int ->
  (Amoeba_cap.Capability.t, Amoeba_rpc.Status.t) result
(** Derive a new file = first [n] bytes of the old. *)

val restrict :
  t ->
  Amoeba_cap.Capability.t ->
  Amoeba_cap.Rights.t ->
  (Amoeba_cap.Capability.t, Amoeba_rpc.Status.t) result
(** Re-seal a capability with intersected rights. *)

(** {1 Two-phase commit participant}

    Prepare makes an outcome durable-capable without making it visible;
    commit and abort are idempotent and carry the capability, so a
    rebooted (amnesiac) server still resolves re-sent decisions
    correctly. The pending/condemned bookkeeping is RAM-only — a crash
    loses it, and the orphan sweep ({!Fsck}) plus the coordinator's
    presumed-abort recovery clean up what is left on disk. *)

type txn_kind = Txn_create | Txn_delete

val txn_prepare_create : t -> txn:int -> bytes -> (Amoeba_cap.Capability.t, Amoeba_rpc.Status.t) result
(** Create the object durably (data + inode on every live drive — a
    prepared vote gets no P-FACTOR discount) but keep it in the pending
    table: excluded from the fsck live set and unreachable until the
    commit binds its capability somewhere. *)

val txn_prepare_delete : t -> txn:int -> Amoeba_cap.Capability.t -> (unit, Amoeba_rpc.Status.t) result
(** Condemn the object: still readable, but ordinary [DELETE] and any
    other transaction's prepare are refused with [Exists] until this
    transaction resolves. Needs the delete right. *)

val txn_commit :
  t -> txn:int -> kind:txn_kind -> Amoeba_cap.Capability.t -> (unit, Amoeba_rpc.Status.t) result
(** Apply the decision: a committed create is simply promoted (it is
    already durable); a committed delete frees the object. Idempotent —
    an unknown or already-resolved object answers [Ok]. *)

val txn_abort :
  t -> txn:int -> kind:txn_kind -> Amoeba_cap.Capability.t -> (unit, Amoeba_rpc.Status.t) result
(** Roll back: an aborted create is deleted, an aborted delete is
    un-condemned. Idempotent like {!txn_commit}. *)

val txn_abort_all : t -> txn:int -> (unit, Amoeba_rpc.Status.t) result
(** Presumed abort by transaction id alone — what a recovering
    coordinator sends when its log has a begin record but no commit
    record (it may never have learned the prepared capabilities). Drops
    every pending create and condemnation of [txn]; unknown ids answer
    [Ok]. *)

val txn_pending_objs : t -> int list
(** Object numbers of prepared-but-undecided creates, for {!Fsck}'s
    orphan sweep to exclude. *)

val live_objs : t -> int list
(** Every live object number, ascending — the fsck walk. *)

val admin_delete_obj : t -> int -> bool
(** Free one object by number, bypassing capability checks — the fsck
    [--gc] primitive, for objects that by definition no capability
    reaches. Returns false if the object is not live. *)

val txn_pending_count : t -> int

val txn_condemned_count : t -> int

(** {1 Administration and introspection} *)

val compact_disk : t -> int
(** Slide files to the start of the data area (the paper's "compaction
    every morning at 3 am"); returns blocks moved. Charges disk time. *)

val compact_cache : t -> int
(** Compact the RAM cache; returns bytes moved. Charges copy time. *)

val live_files : t -> int

val free_inodes : t -> int

val data_blocks : t -> int
(** Size of the file area in blocks. *)

val free_blocks : t -> int

val largest_hole_blocks : t -> int

val disk_fragmentation : t -> float
(** [1 - largest_hole/free]; the FRAG experiment's metric. *)

val cache_used : t -> int

val cache_capacity : t -> int

val cache_stats : t -> Amoeba_sim.Stats.t
(** The RAM cache's own counters ([hits], [misses], [evictions], ...) —
    the server-side mirror of {!Amoeba_lease.File_cache.stats}, so
    benches can report eviction traffic on both ends of the lease
    protocol. *)

val cache_bytes_evicted : t -> int
(** The RAM cache's {!Cache.bytes_evicted} metrics cell. *)

val stats : t -> Amoeba_sim.Stats.t
(** Counters: [creates], [reads], [deletes], [modifies], [cache_hits],
    [cache_misses], [txn_prepares], [txn_commits], [txn_aborts]. *)

val metrics : t -> Amoeba_metrics.Metrics.t
(** The server's live metrics registry, populated at {!start}: inode and
    extent-allocator gauges ([server.*], [alloc.*]), a [server.read_us]
    latency histogram, the RAM cache under [cache.] (including the
    {!Cache.bytes_evicted} cell), and the mirror under [mirror.]
    ({!Amoeba_disk.Mirror.register_metrics}).  Scraped by the STD_STATUS
    protocol command and the [bulletd] text exposition; experiments can
    register further instruments of their own. *)

val mirror : t -> Amoeba_disk.Mirror.t

val sealer : t -> Amoeba_cap.Sealer.t
(** The server's sealer. Handing this to a client models the paper's
    trusted-station configuration: the station can verify check fields
    locally ({!Amoeba_cap.Sealer.verify_local}) without a round trip.
    Untrusted clients never see it. *)
