module Message = Amoeba_rpc.Message
module Status = Amoeba_rpc.Status

type t = {
  transport : Amoeba_rpc.Transport.t;
  model : Amoeba_rpc.Net_model.t;
  link : Amoeba_rpc.Link.t option;
  service : Amoeba_cap.Port.t;
  attempts : int;
  backoff_us : int;
  stats : Amoeba_sim.Stats.t;
  trans_hist : Amoeba_sim.Stats.Hist.t;
      (* held directly so recording per-transaction latency never does a
         by-name table lookup on the hot path *)
}

(* Transaction ids need only be unique per server dedup window; a
   process-wide counter keeps them unique across every client instance,
   and since clients issue operations in a deterministic order the ids
   themselves are deterministic. 0 is reserved for "no id". *)
let xid_counter = ref 0

let fresh_xid () =
  incr xid_counter;
  !xid_counter

let connect ?(model = Amoeba_rpc.Net_model.amoeba) ?link ?(attempts = 1) ?(backoff_us = 50_000)
    transport service =
  if attempts < 1 then invalid_arg "Client.connect: attempts must be at least 1";
  let stats = Amoeba_sim.Stats.create "bullet-client" in
  {
    transport;
    model;
    link;
    service;
    attempts;
    backoff_us;
    stats;
    trans_hist = Amoeba_sim.Stats.hist stats "trans_us";
  }

let port t = t.service

let transport t = t.transport

let stats t = t.stats

(* Retry only on Timeout: any other status is a definitive answer from
   the server. Idempotent requests carry xid = 0 and are simply
   re-executed; mutations carry a fresh xid, reused verbatim on each
   retry, which the server deduplicates. Waits double between attempts. *)
let trans t request =
  let clock = Amoeba_rpc.Transport.clock t.transport in
  let rec go attempt =
    let reply = Amoeba_rpc.Transport.trans ?link:t.link t.transport ~model:t.model request in
    if reply.Message.status <> Status.Timeout then reply
    else begin
      Amoeba_sim.Stats.incr t.stats "timeouts";
      if attempt >= t.attempts then begin
        Amoeba_sim.Stats.incr t.stats "exhausted";
        reply
      end
      else begin
        Amoeba_sim.Stats.incr t.stats "retries";
        let wait_us = Amoeba_fault.Backoff.doubling ~base_us:t.backoff_us ~attempt in
        (match Amoeba_rpc.Transport.tracer t.transport with
        | None -> Amoeba_sim.Clock.advance clock wait_us
        | Some tr ->
          Amoeba_trace.Trace.begin_root tr ~xid:request.Message.xid
            ~layer:Amoeba_trace.Sink.Client ~name:"rpc.backoff";
          Amoeba_sim.Clock.advance clock wait_us;
          Amoeba_trace.Trace.end_span_attrs tr [ ("attempt", Amoeba_trace.Sink.I attempt) ]);
        go (attempt + 1)
      end
    end
  in
  Amoeba_sim.Stats.incr t.stats "transactions";
  let start = Amoeba_sim.Clock.now clock in
  let reply = go 1 in
  Amoeba_sim.Stats.Hist.record t.trans_hist (Amoeba_sim.Clock.now clock - start);
  reply

let checked t request =
  let reply = trans t request in
  Status.check reply.Message.status;
  reply

let cap_of reply =
  match reply.Message.cap with
  | Some cap -> cap
  | None -> raise (Status.Error Status.Server_failure)

let create t ?(p_factor = 2) data =
  cap_of
    (checked t
       (Message.request ~port:t.service ~command:Proto.cmd_create ~arg0:p_factor
          ~xid:(fresh_xid ()) ~body:data ()))

let size t cap =
  let reply = checked t (Message.request ~port:t.service ~command:Proto.cmd_size ~cap ()) in
  reply.Message.arg0

let read_now t cap =
  let reply = checked t (Message.request ~port:t.service ~command:Proto.cmd_read ~cap ()) in
  reply.Message.body

let read t cap =
  let (_ : int) = size t cap in
  read_now t cap

let delete t cap =
  let (_ : Message.t) =
    checked t
      (Message.request ~port:t.service ~command:Proto.cmd_delete ~cap ~xid:(fresh_xid ()) ())
  in
  ()

let read_range t cap ~pos ~len =
  let reply =
    checked t
      (Message.request ~port:t.service ~command:Proto.cmd_read_range ~cap ~arg0:pos ~arg1:len ())
  in
  reply.Message.body

let modify t ?(p_factor = 2) cap ~pos data =
  cap_of
    (checked t
       (Message.request ~port:t.service ~command:Proto.cmd_modify ~cap ~arg0:p_factor ~arg1:pos
          ~xid:(fresh_xid ()) ~body:data ()))

let append t ?(p_factor = 2) cap data =
  cap_of
    (checked t
       (Message.request ~port:t.service ~command:Proto.cmd_append ~cap ~arg0:p_factor
          ~xid:(fresh_xid ()) ~body:data ()))

let truncate t ?(p_factor = 2) cap n =
  cap_of
    (checked t
       (Message.request ~port:t.service ~command:Proto.cmd_truncate ~cap ~arg0:p_factor ~arg1:n
          ~xid:(fresh_xid ()) ()))

let restrict t cap rights =
  cap_of
    (checked t
       (Message.request ~port:t.service ~command:Proto.cmd_restrict ~cap
          ~arg0:(Amoeba_cap.Rights.to_int rights) ()))

(* ---- two-phase commit legs ----

   Result-typed, not raising: a vote of no and a decision timeout are
   ordinary protocol outcomes the coordinator must branch on, not
   exceptions. Every leg is a mutation and carries a fresh xid (retries
   of one send reuse it; a coordinator {e re-send} after recovery is a
   new send with a new xid — participant idempotence, not the dedup
   cache, covers those). *)

let txn_unit_result reply =
  match reply.Message.status with Status.Ok -> Ok () | s -> Error s

let txn_prepare_create t ~txn data =
  let reply =
    trans t
      (Message.request ~port:t.service ~command:Proto.cmd_txn_prepare ~arg0:txn
         ~arg1:(Proto.encode_txn_kind Server.Txn_create)
         ~xid:(fresh_xid ()) ~body:data ())
  in
  match reply.Message.status with
  | Status.Ok -> (
    match reply.Message.cap with Some c -> Ok c | None -> Error Status.Server_failure)
  | s -> Error s

let txn_prepare_delete t ~txn cap =
  txn_unit_result
    (trans t
       (Message.request ~port:t.service ~command:Proto.cmd_txn_prepare ~arg0:txn
          ~arg1:(Proto.encode_txn_kind Server.Txn_delete)
          ~cap ~xid:(fresh_xid ()) ()))

let txn_commit t ~txn ~kind cap =
  txn_unit_result
    (trans t
       (Message.request ~port:t.service ~command:Proto.cmd_txn_commit ~arg0:txn
          ~arg1:(Proto.encode_txn_kind kind) ~cap ~xid:(fresh_xid ()) ()))

let txn_abort t ~txn ~kind cap =
  txn_unit_result
    (trans t
       (Message.request ~port:t.service ~command:Proto.cmd_txn_abort ~arg0:txn
          ~arg1:(Proto.encode_txn_kind kind) ~cap ~xid:(fresh_xid ()) ()))

let txn_abort_all t ~txn =
  txn_unit_result
    (trans t
       (Message.request ~port:t.service ~command:Proto.cmd_txn_abort ~arg0:txn
          ~xid:(fresh_xid ()) ()))

type stat_info = Proto.stat = {
  live_files : int;
  free_blocks : int;
  data_blocks : int;
  cache_used : int;
  cache_capacity : int;
}

let stat t =
  let reply = checked t (Message.request ~port:t.service ~command:Proto.cmd_stat ()) in
  Proto.decode_stat reply.Message.body
