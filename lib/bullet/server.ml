module Status = Amoeba_rpc.Status

type config = {
  cache_bytes : int;
  max_cached_files : int;
  cpu_request_us : int;
  copy_bytes_per_sec : int;
  alloc_policy : Extent_alloc.policy;
}

let default_config =
  {
    cache_bytes = 12 * 1024 * 1024;
    max_cached_files = 4096;
    cpu_request_us = 1_200;
    copy_bytes_per_sec = 8_000_000;
    alloc_policy = Extent_alloc.First_fit;
  }

type t = {
  config : config;
  mirror : Amoeba_disk.Mirror.t;
  clock : Amoeba_sim.Clock.t;
  table : Inode_table.t;
  disk_alloc : Extent_alloc.t;
  cache : Cache.t;
  sealer : Amoeba_cap.Sealer.t;
  prng : Amoeba_sim.Prng.t;
  service_port : Amoeba_cap.Port.t;
  stats : Amoeba_sim.Stats.t;
  metrics : Amoeba_metrics.Metrics.t;
  read_hist : Amoeba_sim.Stats.Hist.t;
  block_size : int;
  (* 2PC participant state, RAM only: a crash forgets both lists, which
     is exactly the failure the coordinator's recovery (and the fsck
     orphan sweep) must — and does — clean up after.  Plain assoc lists:
     a server holds at most a handful of in-flight transactions, and
     list order never reaches persisted bytes. *)
  mutable pending : (int * int) list; (* prepared creates: (txn, obj) *)
  mutable condemned : (int * int) list; (* prepared deletes: (txn, obj) *)
  mutable dead : bool;
  mutable tracer : Amoeba_trace.Trace.ctx option;
}

let format mirror ~max_files =
  let (_ : Layout.descriptor) = Inode_table.format mirror ~max_files in
  ()

let start ?(config = default_config) ?(seed = 0x42554C4C45545FL) mirror =
  match Inode_table.load mirror with
  | Error e -> Error e
  | Ok (table, report) ->
    let desc = Inode_table.descriptor table in
    let data_lo = Layout.data_start desc in
    let disk_alloc =
      Extent_alloc.create ~policy:config.alloc_policy ~start:data_lo
        ~length:desc.Layout.data_size ()
    in
    let block_size = desc.Layout.block_size in
    let blocks_of_bytes n = (n + block_size - 1) / block_size in
    (* Rebuild the disk free list by scanning the inodes (paper §3). *)
    Inode_table.iter_live table (fun _ inode ->
        let blocks = blocks_of_bytes inode.Layout.size_bytes in
        if blocks > 0 then
          Extent_alloc.reserve disk_alloc ~start:inode.Layout.first_block ~length:blocks);
    let prng = Amoeba_sim.Prng.create ~seed in
    let on_evict ~inode ~rnode:_ =
      (* Clear the index field in the inode when LRU replacement drops the
         cached copy; RAM-only, never flushed. *)
      let entry = Inode_table.get table inode in
      Inode_table.set table inode { entry with Layout.index = 0 }
    in
    let cache = Cache.create ~capacity:config.cache_bytes ~max_rnodes:config.max_cached_files ~on_evict in
    let server =
      {
        config;
        mirror;
        clock = Amoeba_disk.Block_device.clock (Amoeba_disk.Mirror.primary mirror);
        table;
        disk_alloc;
        cache;
        sealer = Amoeba_cap.Sealer.of_passphrase (Printf.sprintf "bullet-%Ld" seed);
        prng;
        service_port = Amoeba_cap.Port.random (Amoeba_sim.Prng.create ~seed:(Int64.add seed 1L));
        stats = Amoeba_sim.Stats.create "bullet";
        metrics = Amoeba_metrics.Metrics.create "bullet";
        read_hist = Amoeba_sim.Stats.Hist.create ();
        block_size;
        pending = [];
        condemned = [];
        dead = false;
        tracer = None;
      }
    in
    (* The server's live surface: every layer it owns registers into one
       registry, scraped by STD_STATUS and the bulletd exposition. *)
    let module M = Amoeba_metrics.Metrics in
    let reg = server.metrics in
    M.gauge reg "server.live_files" (fun () -> Inode_table.live_count table);
    M.gauge reg "server.free_inodes" (fun () -> Inode_table.free_count table);
    M.gauge reg "server.data_blocks" (fun () ->
        (Inode_table.descriptor table).Layout.data_size);
    M.gauge reg "alloc.free_blocks" (fun () -> Extent_alloc.free_total disk_alloc);
    M.gauge reg "alloc.largest_hole" (fun () -> Extent_alloc.largest_free disk_alloc);
    M.gauge reg "server.txn_pending" (fun () -> List.length server.pending);
    M.gauge reg "server.txn_condemned" (fun () -> List.length server.condemned);
    M.register_hist reg "server.read_us" server.read_hist;
    M.stats_source reg ~prefix:"server" server.stats;
    Cache.register_metrics cache ~prefix:"cache" reg;
    Amoeba_disk.Mirror.register_metrics mirror reg;
    Ok (server, report)

let port t = t.service_port

let clock t = t.clock

let mirror t = t.mirror

let sealer t = t.sealer

let stats t = t.stats

let metrics t = t.metrics

let set_tracer t tracer =
  t.tracer <- tracer;
  Cache.set_tracer t.cache tracer;
  Extent_alloc.set_tracer t.disk_alloc tracer;
  Amoeba_disk.Mirror.set_tracer t.mirror tracer

let tracer t = t.tracer

let crash t =
  t.dead <- true;
  (* volatile 2PC bookkeeping dies with the RAM; the prepared objects
     themselves are durable on disk and become the recovery's problem *)
  t.pending <- [];
  t.condemned <- [];
  Amoeba_disk.Mirror.crash t.mirror

(* ---- internal helpers ---- *)

let charge_cpu t =
  match t.tracer with
  | None -> Amoeba_sim.Clock.advance t.clock t.config.cpu_request_us
  | Some tr ->
    Amoeba_trace.Trace.begin_span tr ~layer:Amoeba_trace.Sink.Cpu ~name:"cpu.request";
    Amoeba_sim.Clock.advance t.clock t.config.cpu_request_us;
    Amoeba_trace.Trace.end_span tr

let charge_copy t bytes =
  if bytes > 0 then begin
    match t.tracer with
    | None -> Amoeba_sim.Clock.advance t.clock (bytes * 1_000_000 / t.config.copy_bytes_per_sec)
    | Some tr ->
      Amoeba_trace.Trace.begin_span tr ~layer:Amoeba_trace.Sink.Cache ~name:"cache.memcpy";
      Amoeba_sim.Clock.advance t.clock (bytes * 1_000_000 / t.config.copy_bytes_per_sec);
      Amoeba_trace.Trace.end_span_attrs tr [ ("bytes", Amoeba_trace.Sink.I bytes) ]
  end

let blocks_of t bytes = (bytes + t.block_size - 1) / t.block_size

let padded t bytes = blocks_of t bytes * t.block_size

let ( let* ) = Result.bind

let guard_alive t = if t.dead then Error Status.Server_failure else Ok ()

(* Capability validation: object number indexes the inode table; the check
   field must decrypt to (rights, inode random); the needed rights must be
   present. *)
let verify t cap ~need =
  let open Amoeba_cap in
  if not (Port.equal cap.Capability.port t.service_port) then Error Status.No_such_object
  else
    let obj = cap.Capability.obj in
    if obj < 1 || obj > Inode_table.max_inode t.table then Error Status.No_such_object
    else
      let inode = Inode_table.get t.table obj in
      if Layout.is_free inode then Error Status.No_such_object
      else if not (Sealer.verify t.sealer ~random:inode.Layout.random ~cap) then
        Error Status.Bad_capability
      else if not (Rights.subset need cap.Capability.rights) then Error Status.Bad_capability
      else Ok (obj, inode)

let default_p t = Amoeba_disk.Mirror.live_count t.mirror

let check_p t = function
  | None -> Ok (default_p t)
  | Some p ->
    if p < 0 || p > List.length (Amoeba_disk.Mirror.drives t.mirror) then Error Status.Bad_request
    else Ok p

(* Write a file's data area through the mirror, padded to whole blocks. *)
let write_file_data t ~sync ~first_block data =
  let len = Bytes.length data in
  if len > 0 then begin
    let buf = Bytes.make (padded t len) '\000' in
    Bytes.blit data 0 buf 0 len;
    Amoeba_disk.Mirror.write t.mirror ~sync ~sector:first_block buf
  end

let create_internal t ~p data =
  let size = Bytes.length data in
  if size > Cache.capacity t.cache then Error Status.No_space
  else
    let* obj = Option.to_result ~none:Status.No_space (Inode_table.alloc t.table) in
    let blocks = blocks_of t size in
    let release_inode () = Inode_table.free t.table obj in
    let* first_block =
      if blocks = 0 then Ok (Layout.data_start (Inode_table.descriptor t.table))
      else
        match Extent_alloc.alloc t.disk_alloc blocks with
        | Some start -> Ok start
        | None ->
          release_inode ();
          Error Status.No_space
    in
    (* The file goes into the RAM cache first; the client's data lands
       there straight off the wire (one copy). *)
    charge_copy t size;
    match Cache.insert t.cache ~inode:obj data with
    | None ->
      if blocks > 0 then Extent_alloc.free t.disk_alloc ~start:first_block ~length:blocks;
      release_inode ();
      Error Status.No_space
    | Some rnode ->
      let random = Amoeba_cap.Sealer.fresh_random t.sealer t.prng in
      let inode = { Layout.random; index = rnode; first_block; size_bytes = size } in
      Inode_table.set t.table obj inode;
      (* Write-through: file data, then the inode block, replied per the
         paranoia factor. *)
      write_file_data t ~sync:p ~first_block data;
      Inode_table.flush t.table ~sync:p obj;
      let rights = Amoeba_cap.Rights.all in
      let check = Amoeba_cap.Sealer.seal t.sealer ~random ~rights in
      Amoeba_sim.Stats.incr t.stats "creates";
      Ok (Amoeba_cap.Capability.v ~port:t.service_port ~obj ~rights ~check)

let create t ?p_factor data =
  let* () = guard_alive t in
  charge_cpu t;
  let* p = check_p t p_factor in
  create_internal t ~p data

let size t cap =
  let* () = guard_alive t in
  charge_cpu t;
  let* _obj, inode = verify t cap ~need:Amoeba_cap.Rights.read in
  Ok inode.Layout.size_bytes

(* Bring a file into the cache, returning its rnode. *)
let ensure_cached t obj inode =
  if inode.Layout.index <> 0 then begin
    Amoeba_sim.Stats.incr t.stats "cache_hits";
    (match t.tracer with
    | None -> ()
    | Some tr ->
      Amoeba_trace.Trace.event tr ~layer:Amoeba_trace.Sink.Cache ~name:"cache.hit"
        [ ("inode", Amoeba_trace.Sink.I obj) ]);
    Ok inode.Layout.index
  end
  else begin
    Amoeba_sim.Stats.incr t.stats "cache_misses";
    (match t.tracer with
    | None -> ()
    | Some tr ->
      Amoeba_trace.Trace.event tr ~layer:Amoeba_trace.Sink.Cache ~name:"cache.miss"
        [
          ("inode", Amoeba_trace.Sink.I obj);
          ("bytes", Amoeba_trace.Sink.I inode.Layout.size_bytes);
        ]);
    let size = inode.Layout.size_bytes in
    match Cache.reserve t.cache ~inode:obj size with
    | None -> Error Status.No_space
    | Some rnode ->
      if size > 0 then begin
        let blocks = blocks_of t size in
        let raw = Amoeba_disk.Mirror.read t.mirror ~sector:inode.Layout.first_block ~count:blocks in
        Cache.blit_in t.cache ~rnode ~pos:0 (Bytes.sub raw 0 size)
      end;
      Inode_table.set t.table obj { inode with Layout.index = rnode };
      Ok rnode
  end

let read t cap =
  let began = Amoeba_sim.Clock.now t.clock in
  let* () = guard_alive t in
  charge_cpu t;
  let* obj, inode = verify t cap ~need:Amoeba_cap.Rights.read in
  let* rnode = ensure_cached t obj inode in
  Amoeba_sim.Stats.incr t.stats "reads";
  let data = Cache.get t.cache ~rnode in
  Amoeba_sim.Stats.Hist.record t.read_hist (Amoeba_sim.Clock.now t.clock - began);
  Ok data

let read_range t cap ~pos ~len =
  let* () = guard_alive t in
  charge_cpu t;
  let* obj, inode = verify t cap ~need:Amoeba_cap.Rights.read in
  if pos < 0 || len < 0 || pos + len > inode.Layout.size_bytes then Error Status.Bad_request
  else
    let* rnode = ensure_cached t obj inode in
    Amoeba_sim.Stats.incr t.stats "reads";
    Ok (Cache.sub t.cache ~rnode ~pos ~len)

(* Free one object — cache, extent, inode — and zero the inode on every
   disk before the reply: "both creation and deletion involve requests
   to two disks". *)
let delete_obj t obj inode =
  if inode.Layout.index <> 0 then Cache.remove t.cache ~rnode:inode.Layout.index;
  let blocks = blocks_of t inode.Layout.size_bytes in
  if blocks > 0 then Extent_alloc.free t.disk_alloc ~start:inode.Layout.first_block ~length:blocks;
  Inode_table.free t.table obj;
  Inode_table.flush t.table ~sync:(Amoeba_disk.Mirror.live_count t.mirror) obj;
  Amoeba_sim.Stats.incr t.stats "deletes"

let is_condemned t obj = List.exists (fun (_, o) -> o = obj) t.condemned

let delete t cap =
  let* () = guard_alive t in
  charge_cpu t;
  let* obj, inode = verify t cap ~need:Amoeba_cap.Rights.delete in
  (* An object condemned by a prepared transaction is spoken for: its
     fate is the coordinator's decision, not an ordinary DELETE's. *)
  if is_condemned t obj then Error Status.Exists
  else begin
    delete_obj t obj inode;
    Ok ()
  end

(* §5: derive a new file from an existing one without shipping the whole
   contents over the wire. The server builds the new contents in RAM and
   runs the normal create path. *)
let derive t ?p_factor cap ~new_size ~build =
  let* () = guard_alive t in
  charge_cpu t;
  let* p = check_p t p_factor in
  let need = Amoeba_cap.Rights.(union read modify) in
  let* obj, inode = verify t cap ~need in
  if new_size > Cache.capacity t.cache then Error Status.No_space
  else
    let* rnode = ensure_cached t obj inode in
    let old_contents = Cache.get t.cache ~rnode in
    let contents = Bytes.make new_size '\000' in
    build ~old_contents ~contents;
    charge_copy t new_size;
    let* new_cap = create_internal t ~p contents in
    Amoeba_sim.Stats.incr t.stats "modifies";
    Ok new_cap

let modify t ?p_factor cap ~pos data =
  if pos < 0 then Error Status.Bad_request
  else
    let splice_len = Bytes.length data in
    let build ~old_contents ~contents =
      let old_len = Bytes.length old_contents in
      Bytes.blit old_contents 0 contents 0 (min old_len (Bytes.length contents));
      Bytes.blit data 0 contents pos splice_len
    in
    match size t cap with
    | Error e -> Error e
    | Ok old_size ->
      if pos > old_size then Error Status.Bad_request
      else derive t ?p_factor cap ~new_size:(max old_size (pos + splice_len)) ~build

let append t ?p_factor cap data =
  match size t cap with
  | Error e -> Error e
  | Ok old_size -> modify t ?p_factor cap ~pos:old_size data

let truncate t ?p_factor cap n =
  if n < 0 then Error Status.Bad_request
  else
    match size t cap with
    | Error e -> Error e
    | Ok old_size ->
      if n > old_size then Error Status.Bad_request
      else
        let build ~old_contents ~contents = Bytes.blit old_contents 0 contents 0 n in
        derive t ?p_factor cap ~new_size:n ~build

let restrict t cap rights =
  let* () = guard_alive t in
  charge_cpu t;
  let* _obj, inode = verify t cap ~need:Amoeba_cap.Rights.none in
  match Amoeba_cap.Sealer.restrict t.sealer ~random:inode.Layout.random ~cap ~rights with
  | None -> Error Status.Bad_capability
  | Some narrowed -> Ok narrowed

(* ---- two-phase commit participant ----

   Prepare makes the outcome durable-capable, not visible: a prepared
   create writes data and inode through to every disk (full sync — a
   prepared vote is a promise, so it gets no P-FACTOR discount) and is
   remembered in the RAM [pending] list; a prepared delete only marks
   the object condemned, still readable.  Commit and abort are
   idempotent and carry the capability, so a rebooted, amnesiac server
   can still act on a re-sent decision: the seal on the inode random
   proves the cap refers to the same incarnation of the object, and an
   already-resolved object simply answers Ok.  What a crash loses — the
   pending list — is exactly what the fsck orphan sweep reconstructs
   from reachability. *)

type txn_kind = Txn_create | Txn_delete

let txn_prepare_create t ~txn data =
  let* () = guard_alive t in
  charge_cpu t;
  (* full sync: every live drive holds the prepared object before the
     yes-vote leaves the server *)
  let* cap = create_internal t ~p:(default_p t) data in
  t.pending <- (txn, cap.Amoeba_cap.Capability.obj) :: t.pending;
  Amoeba_sim.Stats.incr t.stats "txn_prepares";
  Ok cap

let txn_prepare_delete t ~txn cap =
  let* () = guard_alive t in
  charge_cpu t;
  let* obj, _inode = verify t cap ~need:Amoeba_cap.Rights.delete in
  if is_condemned t obj then Error Status.Exists (* claimed by another transaction *)
  else begin
    t.condemned <- (txn, obj) :: t.condemned;
    Amoeba_sim.Stats.incr t.stats "txn_prepares";
    Ok ()
  end

let forget_pending t ~txn obj =
  t.pending <- List.filter (fun (x, o) -> not (x = txn && o = obj)) t.pending

let forget_condemned t ~txn obj =
  t.condemned <- List.filter (fun (x, o) -> not (x = txn && o = obj)) t.condemned

let txn_commit t ~txn ~kind cap =
  let* () = guard_alive t in
  charge_cpu t;
  Amoeba_sim.Stats.incr t.stats "txn_commits";
  let obj = cap.Amoeba_cap.Capability.obj in
  match kind with
  | Txn_create ->
    (* the object is already durable; commit just stops excluding it *)
    forget_pending t ~txn obj;
    Ok ()
  | Txn_delete -> (
    forget_condemned t ~txn obj;
    match verify t cap ~need:Amoeba_cap.Rights.delete with
    | Error _ -> Ok () (* already gone: a re-sent decision *)
    | Ok (obj, inode) ->
      delete_obj t obj inode;
      Ok ())

let txn_abort t ~txn ~kind cap =
  let* () = guard_alive t in
  charge_cpu t;
  Amoeba_sim.Stats.incr t.stats "txn_aborts";
  let obj = cap.Amoeba_cap.Capability.obj in
  match kind with
  | Txn_create -> (
    forget_pending t ~txn obj;
    match verify t cap ~need:Amoeba_cap.Rights.delete with
    | Error _ -> Ok () (* never prepared here, or already swept *)
    | Ok (obj, inode) ->
      delete_obj t obj inode;
      Ok ())
  | Txn_delete ->
    (* lift the condemnation; the object stays live *)
    forget_condemned t ~txn obj;
    Ok ()

let txn_abort_all t ~txn =
  (* presumed abort, addressed by transaction id alone: a recovering
     coordinator that never logged the prepared capabilities can still
     roll this server back.  Unknown transactions answer Ok — after a
     participant reboot the pending list is empty and the orphan sweep
     owns the leftovers. *)
  let* () = guard_alive t in
  charge_cpu t;
  Amoeba_sim.Stats.incr t.stats "txn_aborts";
  let mine = List.filter (fun (x, _) -> x = txn) t.pending in
  List.iter
    (fun (_, obj) ->
      let inode = Inode_table.get t.table obj in
      if not (Layout.is_free inode) then delete_obj t obj inode)
    mine;
  t.pending <- List.filter (fun (x, _) -> not (x = txn)) t.pending;
  t.condemned <- List.filter (fun (x, _) -> not (x = txn)) t.condemned;
  Ok ()

let txn_pending_objs t = List.map snd t.pending

let live_objs t =
  let objs = ref [] in
  Inode_table.iter_live t.table (fun obj _ -> objs := obj :: !objs);
  List.rev !objs

let admin_delete_obj t obj =
  if t.dead || obj < 1 || obj > Inode_table.max_inode t.table then false
  else
    let inode = Inode_table.get t.table obj in
    if Layout.is_free inode then false
    else begin
      delete_obj t obj inode;
      true
    end

let txn_pending_count t = List.length t.pending

let txn_condemned_count t = List.length t.condemned

(* ---- administration ---- *)

let compact_disk t =
  if t.dead then 0
  else begin
    let desc = Inode_table.descriptor t.table in
    let data_lo = Layout.data_start desc in
    let live = ref [] in
    Inode_table.iter_live t.table (fun obj inode ->
        if blocks_of t inode.Layout.size_bytes > 0 then live := (obj, inode) :: !live);
    let by_start =
      List.sort (fun (_, a) (_, b) -> Int.compare a.Layout.first_block b.Layout.first_block) !live
    in
    let moved = ref 0 in
    let next = ref data_lo in
    let relocate (obj, inode) =
      let blocks = blocks_of t inode.Layout.size_bytes in
      if inode.Layout.first_block <> !next then begin
        let data = Amoeba_disk.Mirror.read t.mirror ~sector:inode.Layout.first_block ~count:blocks in
        let sync = Amoeba_disk.Mirror.live_count t.mirror in
        Amoeba_disk.Mirror.write t.mirror ~sync ~sector:!next data;
        Extent_alloc.free t.disk_alloc ~start:inode.Layout.first_block ~length:blocks;
        Extent_alloc.reserve t.disk_alloc ~start:!next ~length:blocks;
        Inode_table.set t.table obj { inode with Layout.first_block = !next };
        Inode_table.flush t.table ~sync obj;
        moved := !moved + blocks
      end;
      next := !next + blocks
    in
    List.iter relocate by_start;
    Amoeba_sim.Stats.incr t.stats "disk_compactions";
    !moved
  end

let compact_cache t =
  if t.dead then 0
  else begin
    let moved = Cache.compact t.cache in
    charge_copy t moved;
    moved
  end

let live_files t = Inode_table.live_count t.table

let free_inodes t = Inode_table.free_count t.table

let data_blocks t = (Inode_table.descriptor t.table).Layout.data_size

let free_blocks t = Extent_alloc.free_total t.disk_alloc

let largest_hole_blocks t = Extent_alloc.largest_free t.disk_alloc

let disk_fragmentation t = Extent_alloc.fragmentation t.disk_alloc

let cache_used t = Cache.used_bytes t.cache

let cache_capacity t = Cache.capacity t.cache

let cache_stats t = Cache.stats t.cache

let cache_bytes_evicted t = Cache.bytes_evicted t.cache
