(** The Bullet server's on-disk format.

    The disk has two sections (paper, Fig. 1): the {e inode table} and the
    {e contiguous file area}. Inode entry 0 is the {e disk descriptor}
    holding the block size, the number of blocks in the inode table
    ("control size") and the number of blocks in the file area ("data
    size"). Every other inode is 16 bytes: a 6-byte random protection
    number, a 2-byte cache index (meaningless on disk), a 4-byte first
    block and a 4-byte byte size. An all-zero inode is free. *)

type inode = {
  random : int64;  (** 48-bit protection number; 0 on a free inode *)
  index : int;  (** rnode index + 1 when cached, 0 otherwise; RAM-only *)
  first_block : int;  (** absolute sector of the file's first block *)
  size_bytes : int;  (** exact file length in bytes *)
}

val free_inode : inode
(** The all-zero inode. *)

val is_free : inode -> bool

type descriptor = {
  block_size : int;  (** physical sector size the image was formatted with *)
  control_size : int;  (** blocks occupied by the inode table *)
  data_size : int;  (** blocks in the contiguous file area *)
}

val inode_bytes : int
(** 16. *)

val inodes_per_block : int -> int
(** [inodes_per_block block_size] — 32 for 512-byte sectors. *)

val encode_inode : inode -> bytes -> int -> unit

val decode_inode : bytes -> int -> inode

val encode_descriptor : descriptor -> bytes -> int -> unit
(** Includes a magic number so {!decode_descriptor} can reject foreign
    images. *)

val decode_descriptor : bytes -> int -> (descriptor, string) result

val plan : Amoeba_disk.Geometry.t -> max_files:int -> descriptor
(** Compute a descriptor for a fresh image on a drive of the given
    geometry: enough inode-table blocks for [max_files] inodes (plus the
    descriptor), all remaining space as file area. Raises
    [Invalid_argument] if the drive is too small. *)

val data_start : descriptor -> int
(** First sector of the file area ([control_size]). *)

val inode_block : descriptor -> int -> int
(** [inode_block d i] is the sector containing inode [i].
    Raises [Invalid_argument] if [i] is out of table range. *)

val max_inode : descriptor -> int
(** Largest valid inode number (inode 0 being the descriptor). *)
