type entry = { inode : int; mutable offset : int; length : int; mutable age : int }

type t = {
  storage : Bytes.t;
  alloc : Extent_alloc.t;
  rnodes : entry option array; (* slot 0 unused: rnode indices are 1-based *)
  free_rnodes : int Stack.t;
  on_evict : inode:int -> rnode:int -> unit;
  stats : Amoeba_sim.Stats.t;
  evicted_bytes : Amoeba_metrics.Metrics.Counter.t;
  mutable tick : int;
  mutable resident : int;
  mutable used : int;
  mutable tracer : Amoeba_trace.Trace.ctx option;
}

let create ~capacity ~max_rnodes ~on_evict =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  if max_rnodes <= 0 then invalid_arg "Cache.create: need at least one rnode";
  let free_rnodes = Stack.create () in
  for i = max_rnodes downto 1 do
    Stack.push i free_rnodes
  done;
  {
    storage = Bytes.make capacity '\000';
    alloc = Extent_alloc.create ~start:0 ~length:capacity ();
    rnodes = Array.make (max_rnodes + 1) None;
    free_rnodes;
    on_evict;
    stats = Amoeba_sim.Stats.create "cache";
    evicted_bytes = Amoeba_metrics.Metrics.Counter.create ();
    tick = 0;
    resident = 0;
    used = 0;
    tracer = None;
  }

let set_tracer t tracer = t.tracer <- tracer

let capacity t = Bytes.length t.storage

let used_bytes t = t.used

let resident_files t = t.resident

let next_age t =
  t.tick <- t.tick + 1;
  t.tick

let entry t rnode =
  if rnode < 1 || rnode >= Array.length t.rnodes then
    invalid_arg (Printf.sprintf "Cache: rnode %d out of range" rnode);
  match t.rnodes.(rnode) with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Cache: rnode %d is free" rnode)

let drop t rnode =
  let e = entry t rnode in
  if e.length > 0 then Extent_alloc.free t.alloc ~start:e.offset ~length:e.length;
  t.rnodes.(rnode) <- None;
  Stack.push rnode t.free_rnodes;
  t.resident <- t.resident - 1;
  t.used <- t.used - e.length

let lru t =
  let best = ref None in
  Array.iteri
    (fun i slot ->
      match (slot, !best) with
      | None, _ -> ()
      | Some e, None -> best := Some (i, e)
      | Some e, Some (_, b) -> if e.age < b.age then best := Some (i, e))
    t.rnodes;
  !best

let evict_one t =
  match lru t with
  | None -> false
  | Some (rnode, e) ->
    drop t rnode;
    t.on_evict ~inode:e.inode ~rnode;
    Amoeba_sim.Stats.incr t.stats "evictions";
    Amoeba_metrics.Metrics.Counter.add t.evicted_bytes e.length;
    (match t.tracer with
    | None -> ()
    | Some tr ->
      Amoeba_trace.Trace.event tr ~layer:Amoeba_trace.Sink.Cache ~name:"cache.evict"
        [ ("inode", Amoeba_trace.Sink.I e.inode); ("bytes", Amoeba_trace.Sink.I e.length) ]);
    true

(* Allocate [n] bytes and an rnode, evicting LRU files until both succeed
   or the cache is empty and still too small. *)
let make_room t ~inode n =
  let rec go () =
    if Stack.is_empty t.free_rnodes then if evict_one t then go () else None
    else if n = 0 then Some (-1)
    else
      match Extent_alloc.alloc t.alloc n with
      | Some offset -> Some offset
      | None -> if evict_one t then go () else None
  in
  match go () with
  | None -> None
  | Some offset ->
    let rnode = Stack.pop t.free_rnodes in
    let offset = if n = 0 then 0 else offset in
    t.rnodes.(rnode) <- Some { inode; offset; length = n; age = next_age t };
    t.resident <- t.resident + 1;
    t.used <- t.used + n;
    Amoeba_sim.Stats.incr t.stats "insertions";
    Some rnode

let reserve t ~inode n =
  if n < 0 then invalid_arg "Cache.reserve: negative size";
  if n > capacity t then None else make_room t ~inode n

let insert t ~inode data =
  match reserve t ~inode (Bytes.length data) with
  | None -> None
  | Some rnode ->
    let e = entry t rnode in
    Bytes.blit data 0 t.storage e.offset e.length;
    Some rnode

let get t ~rnode =
  let e = entry t rnode in
  e.age <- next_age t;
  Bytes.sub t.storage e.offset e.length

let sub t ~rnode ~pos ~len =
  let e = entry t rnode in
  if pos < 0 || len < 0 || pos + len > e.length then invalid_arg "Cache.sub: range out of bounds";
  e.age <- next_age t;
  Bytes.sub t.storage (e.offset + pos) len

let blit_in t ~rnode ~pos data =
  let e = entry t rnode in
  let len = Bytes.length data in
  if pos < 0 || pos + len > e.length then invalid_arg "Cache.blit_in: range out of bounds";
  Bytes.blit data 0 t.storage (e.offset + pos) len

let inode_of t ~rnode = (entry t rnode).inode

let length_of t ~rnode = (entry t rnode).length

let remove t ~rnode =
  let (_ : entry) = entry t rnode in
  drop t rnode

let touch t ~rnode = (entry t rnode).age <- next_age t

let compact t =
  (* Collect resident segments in address order and slide each down to the
     end of the previous one. *)
  let segments = ref [] in
  Array.iter
    (fun slot -> match slot with Some e when e.length > 0 -> segments := e :: !segments | _ -> ())
    t.rnodes;
  let ordered = List.sort (fun a b -> Int.compare a.offset b.offset) !segments in
  let moved = ref 0 in
  let next = ref 0 in
  let slide e =
    if e.offset <> !next then begin
      Bytes.blit t.storage e.offset t.storage !next e.length;
      Extent_alloc.free t.alloc ~start:e.offset ~length:e.length;
      Extent_alloc.reserve t.alloc ~start:!next ~length:e.length;
      e.offset <- !next;
      moved := !moved + e.length
    end;
    next := !next + e.length
  in
  List.iter slide ordered;
  Amoeba_sim.Stats.incr t.stats "compactions";
  Amoeba_sim.Stats.add t.stats "bytes_moved" !moved;
  !moved

let stats t = t.stats

let bytes_evicted t = Amoeba_metrics.Metrics.Counter.value t.evicted_bytes

let register_metrics t ~prefix reg =
  let module M = Amoeba_metrics.Metrics in
  M.register_counter reg (prefix ^ ".bytes_evicted") t.evicted_bytes;
  M.gauge reg (prefix ^ ".used_bytes") (fun () -> used_bytes t);
  M.gauge reg (prefix ^ ".capacity_bytes") (fun () -> capacity t);
  M.gauge reg (prefix ^ ".resident_files") (fun () -> resident_files t);
  M.stats_source reg ~prefix t.stats
