type policy = First_fit | Best_fit

type extent = { start : int; length : int }

type t = {
  pol : policy;
  range_start : int;
  range_length : int;
  mutable free_list : extent list; (* sorted by start, non-adjacent *)
  mutable tracer : Amoeba_trace.Trace.ctx option;
}

let create ?(policy = First_fit) ~start ~length () =
  if length < 0 then invalid_arg "Extent_alloc.create: negative length";
  {
    pol = policy;
    range_start = start;
    range_length = length;
    free_list = (if length = 0 then [] else [ { start; length } ]);
    tracer = None;
  }

let policy t = t.pol

let set_tracer t tracer = t.tracer <- tracer

let take_from t chosen n =
  let replace e =
    if e.start <> chosen.start then [ e ]
    else if e.length = n then []
    else [ { start = e.start + n; length = e.length - n } ]
  in
  t.free_list <- List.concat_map replace t.free_list;
  (match t.tracer with
  | None -> ()
  | Some tr ->
    Amoeba_trace.Trace.event tr ~layer:Amoeba_trace.Sink.Alloc ~name:"alloc.take"
      [ ("start", Amoeba_trace.Sink.I chosen.start); ("blocks", Amoeba_trace.Sink.I n) ]);
  Some chosen.start

let alloc t n =
  if n <= 0 then invalid_arg "Extent_alloc.alloc: size must be positive";
  let candidates = List.filter (fun e -> e.length >= n) t.free_list in
  match (t.pol, candidates) with
  | _, [] -> None
  | First_fit, first :: _ -> take_from t first n
  | Best_fit, first :: rest ->
    let tighter best e = if e.length < best.length then e else best in
    take_from t (List.fold_left tighter first rest) n

let in_range t ~start ~length =
  start >= t.range_start && start + length <= t.range_start + t.range_length

let overlaps a b = a.start < b.start + b.length && b.start < a.start + a.length

let insert_free t ex =
  let rec go = function
    | [] -> [ ex ]
    | e :: rest ->
      if overlaps ex e then invalid_arg "Extent_alloc: extent overlaps free space"
      else if ex.start + ex.length = e.start then { start = ex.start; length = ex.length + e.length } :: rest
      else if e.start + e.length = ex.start then go_merge e rest
      else if ex.start < e.start then ex :: e :: rest
      else e :: go rest
  and go_merge e rest =
    let merged = { start = e.start; length = e.length + ex.length } in
    match rest with
    | next :: tail when merged.start + merged.length = next.start ->
      { merged with length = merged.length + next.length } :: tail
    | _ -> merged :: rest
  in
  t.free_list <- go t.free_list

let free t ~start ~length =
  if length <= 0 then invalid_arg "Extent_alloc.free: size must be positive";
  if not (in_range t ~start ~length) then invalid_arg "Extent_alloc.free: outside managed range";
  (match t.tracer with
  | None -> ()
  | Some tr ->
    Amoeba_trace.Trace.event tr ~layer:Amoeba_trace.Sink.Alloc ~name:"alloc.free"
      [ ("start", Amoeba_trace.Sink.I start); ("blocks", Amoeba_trace.Sink.I length) ]);
  insert_free t { start; length }

let reserve t ~start ~length =
  if length <= 0 then invalid_arg "Extent_alloc.reserve: size must be positive";
  if not (in_range t ~start ~length) then invalid_arg "Extent_alloc.reserve: outside managed range";
  let target = { start; length } in
  let rec go = function
    | [] -> invalid_arg "Extent_alloc.reserve: extent not free"
    | e :: rest ->
      if e.start <= start && start + length <= e.start + e.length then begin
        let before =
          if start > e.start then [ { start = e.start; length = start - e.start } ] else []
        in
        let after_start = start + length in
        let after =
          if after_start < e.start + e.length then
            [ { start = after_start; length = e.start + e.length - after_start } ]
          else []
        in
        before @ after @ rest
      end
      else if overlaps target e then invalid_arg "Extent_alloc.reserve: extent partially allocated"
      else e :: go rest
  in
  t.free_list <- go t.free_list

let free_total t = List.fold_left (fun acc e -> acc + e.length) 0 t.free_list

let used_total t = t.range_length - free_total t

let largest_free t = List.fold_left (fun acc e -> max acc e.length) 0 t.free_list

let fragment_count t = List.length t.free_list

let fragmentation t =
  let total = free_total t in
  if total = 0 then 0. else 1. -. (float_of_int (largest_free t) /. float_of_int total)

let iter_free t f = List.iter (fun e -> f ~start:e.start ~length:e.length) t.free_list
