(** Client stubs for the Bullet service.

    These are what application code (the directory server, the UNIX
    emulation, the examples and the benchmarks) calls: each stub builds a
    request, runs one RPC transaction — paying the Amoeba wire costs — and
    decodes the reply. Stubs raise {!Amoeba_rpc.Status.Error} on any
    non-[Ok] reply.

    On a [Timeout] reply (lost message or crashed server) the stub
    retries, up to the [attempts] bound given at {!connect}, doubling a
    backoff wait between tries. Read-only operations are idempotent and
    simply re-execute; mutating operations are stamped with a fresh
    {!Amoeba_rpc.Message.t.xid} that is reused verbatim across the
    retries, and the server deduplicates on it — so a CREATE whose reply
    was lost does not create a second file on retry. *)

type t

val connect :
  ?model:Amoeba_rpc.Net_model.t ->
  ?link:Amoeba_rpc.Link.t ->
  ?attempts:int ->
  ?backoff_us:int ->
  Amoeba_rpc.Transport.t ->
  Amoeba_cap.Port.t ->
  t
(** A client of the Bullet service on the given port; [model] defaults to
    {!Amoeba_rpc.Net_model.amoeba}. [link] tags every transaction with a
    link class for link-scoped fault plans (the federation sets it to the
    link it derived [model] from). [attempts] (default 1, i.e. no
    retries) bounds the total number of sends per operation; after the
    [k]th timeout the stub waits [backoff_us * 2{^ k-1}] (default base
    50 ms) before resending. *)

val port : t -> Amoeba_cap.Port.t

val transport : t -> Amoeba_rpc.Transport.t

val stats : t -> Amoeba_sim.Stats.t
(** Counters: [transactions] (logical operations issued), [timeouts]
    (timed-out sends), [retries] (resends after a timeout), [exhausted]
    (operations that failed after the last allowed attempt).  The
    [trans_us] histogram records each transaction's client-visible
    latency in µs, retries and backoff included — the source of the
    p50/p95/p99 columns in the loss-sweep reports. *)

val create : t -> ?p_factor:int -> bytes -> Amoeba_cap.Capability.t
(** [BULLET.CREATE]; [p_factor] defaults to 2 (both disks, as in the
    paper's measurements). *)

val size : t -> Amoeba_cap.Capability.t -> int

val read : t -> Amoeba_cap.Capability.t -> bytes
(** [BULLET.SIZE] then [BULLET.READ], as the paper prescribes: "First
    BULLET.SIZE is called to get the size of the file ... Then
    BULLET.READ is invoked". Two transactions. *)

val read_now : t -> Amoeba_cap.Capability.t -> bytes
(** Just the [BULLET.READ] transaction, when the size is already known
    (the kernel mapped-file path). *)

val delete : t -> Amoeba_cap.Capability.t -> unit

val read_range : t -> Amoeba_cap.Capability.t -> pos:int -> len:int -> bytes

val modify :
  t -> ?p_factor:int -> Amoeba_cap.Capability.t -> pos:int -> bytes -> Amoeba_cap.Capability.t

val append : t -> ?p_factor:int -> Amoeba_cap.Capability.t -> bytes -> Amoeba_cap.Capability.t

val truncate : t -> ?p_factor:int -> Amoeba_cap.Capability.t -> int -> Amoeba_cap.Capability.t

val restrict : t -> Amoeba_cap.Capability.t -> Amoeba_cap.Rights.t -> Amoeba_cap.Capability.t

(** {1 Two-phase commit legs}

    Result-typed rather than raising: a no-vote and a decision-leg
    timeout are outcomes the coordinator branches on. Each call is one
    leg of the {!Amoeba_txn} protocol against this server; all carry
    fresh xids (one send's retries reuse the xid, a coordinator re-send
    after recovery is a new send resolved by participant idempotence). *)

val txn_prepare_create :
  t -> txn:int -> bytes -> (Amoeba_cap.Capability.t, Amoeba_rpc.Status.t) result

val txn_prepare_delete :
  t -> txn:int -> Amoeba_cap.Capability.t -> (unit, Amoeba_rpc.Status.t) result

val txn_commit :
  t -> txn:int -> kind:Server.txn_kind -> Amoeba_cap.Capability.t -> (unit, Amoeba_rpc.Status.t) result

val txn_abort :
  t -> txn:int -> kind:Server.txn_kind -> Amoeba_cap.Capability.t -> (unit, Amoeba_rpc.Status.t) result

val txn_abort_all : t -> txn:int -> (unit, Amoeba_rpc.Status.t) result

type stat_info = Proto.stat = {
  live_files : int;
  free_blocks : int;
  data_blocks : int;
  cache_used : int;
  cache_capacity : int;
}

val stat : t -> stat_info
(** Server statistics (administration). *)
