(* The orphan sweep.

   A Bullet object is an orphan when no directory holds a capability
   for it and no in-flight transaction is still deciding its fate.  The
   paper's split makes this the one leak its recovery story cannot see:
   a crash between "create file" and "bind name" leaves a live,
   perfectly consistent inode that nothing will ever read or delete.
   Reachability is therefore an input here, not something this module
   discovers: the caller walks its directories (and their persistence
   files) and hands over every capability they reference. *)

let reachable_objs server caps =
  let port = Server.port server in
  let set = Hashtbl.create 64 in
  List.iter
    (fun c ->
      if Amoeba_cap.Port.equal c.Amoeba_cap.Capability.port port then
        Hashtbl.replace set c.Amoeba_cap.Capability.obj ())
    caps;
  set

let orphans server ~reachable =
  let reach = reachable_objs server reachable in
  let pending = Hashtbl.create 8 in
  List.iter (fun o -> Hashtbl.replace pending o ()) (Server.txn_pending_objs server);
  List.filter
    (fun o -> not (Hashtbl.mem reach o) && not (Hashtbl.mem pending o))
    (Server.live_objs server)

let gc server ~reachable =
  let os = orphans server ~reachable in
  List.iter (fun o -> ignore (Server.admin_delete_obj server o : bool)) os;
  List.length os
