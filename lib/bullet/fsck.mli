(** Orphan-object fsck: find (and collect) Bullet objects reachable
    from no directory.

    The boot-time scan ({!Inode_table.load}) checks that every inode is
    internally consistent; what it cannot see is whether anything still
    {e references} an object. This module closes that gap given the
    reference roots: the caller walks its directories — and the
    directory servers' own persistence files — and passes every
    capability they hold. Objects of an in-flight transaction's pending
    table are spared (their fate is the coordinator's decision); after
    a server reboot that table is empty, which is exactly when orphaned
    prepared creates become collectable. Used by [bullet_fsck --gc]
    offline and by the transaction coordinator's recovery online. *)

val orphans : Server.t -> reachable:Amoeba_cap.Capability.t list -> int list
(** Live object numbers, ascending, that no capability in [reachable]
    names and no pending transaction claims. Capabilities for other
    servers' ports are ignored. *)

val gc : Server.t -> reachable:Amoeba_cap.Capability.t list -> int
(** Delete every orphan; returns how many were collected. *)
