(** Client-side mapped files.

    The paper (§2.2): "Alternatively a section of the virtual address
    space can be reserved, after which the file can be mapped into the
    virtual memory of the process. In that case the underlying kernel
    performs the BULLET.READ function."

    A mapping reserves the address space immediately (one SIZE RPC) but
    fetches the contents lazily: the first access faults the {e whole
    file} in with a single READ RPC — whole-file transfer is exactly
    what makes mapping this simple — and later accesses are plain
    memory. *)

type t

val map : Client.t -> Amoeba_cap.Capability.t -> t
(** Reserve a mapping for the file: one [BULLET.SIZE] transaction; no
    data moves yet. Raises {!Amoeba_rpc.Status.Error}. *)

val length : t -> int

val is_resident : t -> bool
(** Whether the contents have been faulted in. *)

val get : t -> int -> char
(** Read one byte, faulting the file in on first touch. Raises
    [Invalid_argument] out of bounds. *)

val sub : t -> pos:int -> len:int -> bytes
(** Read a range (faults in on first touch). *)

val contents : t -> bytes
(** The whole file (faults in on first touch); the returned buffer is
    the mapping itself — treat it as read-only, like a [PROT_READ]
    page. *)

val unmap : t -> unit
(** Drop the contents; a later access faults them in again. *)
