(** Contiguous-extent allocation.

    Both the disk file area and the RAM cache hand out contiguous runs;
    the paper uses first-fit on disk ("For this we use a first fit
    strategy"). The allocator keeps a sorted free list with coalescing so
    external fragmentation — the cost the paper consciously accepts — is
    observable: {!largest_free} against {!free_total} is exactly the
    fragmentation figure the FRAG experiment reports. *)

type policy =
  | First_fit  (** the paper's choice *)
  | Best_fit  (** ablation alternative *)

type t

val create : ?policy:policy -> start:int -> length:int -> unit -> t
(** An allocator over the half-open range [\[start, start+length)], all
    free. Units are whatever the caller means (sectors, bytes). *)

val policy : t -> policy

val set_tracer : t -> Amoeba_trace.Trace.ctx option -> unit
(** Install (or with [None] remove) the tracer; traced allocators emit
    zero-length [alloc.take]/[alloc.free] events (extent bookkeeping
    charges no simulated time). *)

val alloc : t -> int -> int option
(** [alloc t n] reserves [n] units and returns the extent start, or [None]
    if no free extent is large enough. [n] must be positive. *)

val free : t -> start:int -> length:int -> unit
(** Return an extent; coalesces with free neighbours. Raises
    [Invalid_argument] if the extent overlaps free space (double free) or
    leaves the managed range. *)

val reserve : t -> start:int -> length:int -> unit
(** Mark an extent allocated during load-time reconstruction. Raises
    [Invalid_argument] if any part is already allocated. *)

val free_total : t -> int

val used_total : t -> int

val largest_free : t -> int

val fragment_count : t -> int
(** Number of free extents. *)

val fragmentation : t -> float
(** [1 - largest_free/free_total]; 0 when free space is one hole (or there
    is none). *)

val iter_free : t -> (start:int -> length:int -> unit) -> unit
(** Visit free extents in address order. *)
