(** Bullet wire protocol: command numbers and the server-side dispatcher.

    Whole-file transfer keeps this trivially small — requests carry at
    most a capability, two integers and one buffer; replies carry a
    status, possibly a capability and possibly the file. *)

val cmd_create : int

val cmd_size : int

val cmd_read : int

val cmd_delete : int

val cmd_read_range : int

val cmd_modify : int

val cmd_append : int

val cmd_truncate : int

val cmd_restrict : int

val cmd_stat : int

val cmd_std_status : int
(** Amoeba's standard status request: the reply body is the server's
    metrics snapshot — binary ({!encode_status}) when the request's
    [arg0] is 0, the text exposition ({!Amoeba_metrics.Metrics.to_text})
    when [arg0] is 1. *)

val cmd_txn_prepare : int
(** 2PC prepare ([arg0] = txn id, [arg1] = {!Server.txn_kind} via
    {!encode_txn_kind}): kind create carries the contents in the body
    and replies with the pending object's capability; kind delete
    carries the victim capability and condemns it. The reply status is
    the participant's vote. Commands 20..22 (and the directory
    service's 25..27) are globally unique so the fault injector can
    classify 2PC legs by command number. *)

val cmd_txn_commit : int
(** 2PC commit ([arg0] = txn id, [arg1] = kind, cap = the object).
    Idempotent; carries the capability so an amnesiac (rebooted)
    participant can still resolve it. *)

val cmd_txn_abort : int
(** 2PC abort. With a capability: roll back that object ([arg1] =
    kind). Without: presumed abort of every prepared action of [arg0]'s
    transaction ({!Server.txn_abort_all}). *)

val command_name : int -> string
(** Human-readable name of a command number ("create", "read", ...);
    unknown numbers render as ["cmdN"].  Used to label trace spans. *)

val encode_txn_kind : Server.txn_kind -> int

val decode_txn_kind : int -> Server.txn_kind option

type stat = {
  live_files : int;
  free_blocks : int;
  data_blocks : int;
  cache_used : int;
  cache_capacity : int;
}
(** The STAT reply: server occupancy counters, five big-endian u32s on
    the wire. *)

val decode_stat : bytes -> stat
(** Decode a STAT reply body (the inverse of the dispatcher's encoder). *)

val status_snapshot : Server.t -> Amoeba_metrics.Metrics.snapshot
(** Scrape the server's registry now (virtual time). *)

val encode_status : Server.t -> bytes
(** The STD_STATUS binary reply body: {!status_snapshot} through
    {!Amoeba_metrics.Metrics.encode_snapshot}. *)

val decode_status : bytes -> (Amoeba_metrics.Metrics.snapshot, string) result
(** Decode a STD_STATUS binary reply body (client side). *)

val dispatch : Server.t -> Amoeba_rpc.Message.t -> Amoeba_rpc.Message.t
(** Decode one request, run it against the server, encode the reply.
    Unknown commands and missing capabilities yield [Bad_request]. *)

val serve : ?dedup_capacity:int -> Server.t -> Amoeba_rpc.Transport.t -> unit
(** Register the server's dispatcher on its port, wrapped in a bounded
    reply cache keyed by {!Amoeba_rpc.Message.t.xid} (default capacity
    1024, FIFO eviction). A retried mutation whose first execution's
    reply was lost gets the remembered reply rather than running twice —
    at-most-once semantics. Requests with [xid = 0] (all reads) bypass
    the cache. When the transport has a tracer installed, each dispatch
    runs inside a [serve.<op>] span and dedup cache hits emit a
    [serve.dedup_hit] event. The cache is created fresh per registration, so a server
    reboot forgets it. *)
