type t = {
  mirror : Amoeba_disk.Mirror.t;
  desc : Layout.descriptor;
  inodes : Layout.inode array; (* index 0 is the descriptor slot, never a file *)
  mutable free_inodes : int list; (* sorted ascending *)
}

type scan_report = { files : int; repaired : int list }

let format mirror ~max_files =
  let geometry = Amoeba_disk.Mirror.geometry mirror in
  let desc = Layout.plan geometry ~max_files in
  let block = Bytes.make desc.Layout.block_size '\000' in
  Layout.encode_descriptor desc block 0;
  let write_drive drive =
    Amoeba_disk.Block_device.poke drive ~sector:0 block;
    let zero_block = Bytes.make desc.Layout.block_size '\000' in
    for s = 1 to desc.Layout.control_size - 1 do
      Amoeba_disk.Block_device.poke drive ~sector:s zero_block
    done
  in
  List.iter write_drive (Amoeba_disk.Mirror.drives mirror);
  desc

let load mirror =
  let geometry = Amoeba_disk.Mirror.geometry mirror in
  let sector_bytes = geometry.Amoeba_disk.Geometry.sector_bytes in
  let first = Amoeba_disk.Mirror.read mirror ~sector:0 ~count:1 in
  match Layout.decode_descriptor first 0 with
  | Error e -> Error e
  | Ok desc ->
    if desc.Layout.block_size <> sector_bytes then Error "image block size mismatches drive"
    else if desc.Layout.control_size + desc.Layout.data_size > geometry.Amoeba_disk.Geometry.sector_count
    then Error "image larger than drive"
    else begin
      (* One sequential read of the remaining inode table. *)
      let table =
        if desc.Layout.control_size > 1 then
          Amoeba_disk.Mirror.read mirror ~sector:1 ~count:(desc.Layout.control_size - 1)
        else Bytes.create 0
      in
      let per_block = Layout.inodes_per_block desc.Layout.block_size in
      let count = desc.Layout.control_size * per_block in
      let inodes = Array.make count Layout.free_inode in
      for i = 1 to count - 1 do
        let byte_off = (i * Layout.inode_bytes) - sector_bytes in
        let raw =
          if byte_off < 0 then Layout.decode_inode first (i * Layout.inode_bytes)
          else Layout.decode_inode table byte_off
        in
        (* The cache index has no significance on disk: clear it. *)
        inodes.(i) <- { raw with Layout.index = 0 }
      done;
      (* Consistency checks: inside the data area, no overlaps. *)
      let data_lo = Layout.data_start desc in
      let data_hi = data_lo + desc.Layout.data_size in
      let blocks_of inode =
        (inode.Layout.size_bytes + sector_bytes - 1) / sector_bytes
      in
      let repaired = ref [] in
      let zap i =
        inodes.(i) <- Layout.free_inode;
        repaired := i :: !repaired
      in
      for i = 1 to count - 1 do
        let inode = inodes.(i) in
        if not (Layout.is_free inode) then begin
          let first_block = inode.Layout.first_block in
          let last = first_block + blocks_of inode in
          if first_block < data_lo || last > data_hi || inode.Layout.size_bytes < 0 then zap i
        end
      done;
      (* Overlap detection among files with a non-empty disk footprint:
         sort by first block and zero any inode starting inside its
         predecessor. *)
      let live = ref [] in
      for i = count - 1 downto 1 do
        if (not (Layout.is_free inodes.(i))) && blocks_of inodes.(i) > 0 then live := i :: !live
      done;
      let by_start =
        List.sort
          (fun a b -> Int.compare inodes.(a).Layout.first_block inodes.(b).Layout.first_block)
          !live
      in
      let rec check_overlaps = function
        | a :: b :: rest ->
          let ia = inodes.(a) in
          let a_end = ia.Layout.first_block + blocks_of ia in
          if inodes.(b).Layout.first_block < a_end then begin
            zap b;
            check_overlaps (a :: rest)
          end
          else check_overlaps (b :: rest)
        | [ _ ] | [] -> ()
      in
      check_overlaps by_start;
      let free_inodes = ref [] in
      let files = ref 0 in
      for i = count - 1 downto 1 do
        if Layout.is_free inodes.(i) then free_inodes := i :: !free_inodes else incr files
      done;
      Ok
        ( { mirror; desc; inodes; free_inodes = !free_inodes },
          { files = !files; repaired = List.rev !repaired } )
    end

let descriptor t = t.desc

let max_inode t = Array.length t.inodes - 1

let check_index t i =
  if i < 1 || i > max_inode t then invalid_arg (Printf.sprintf "Inode_table: inode %d" i)

let get t i =
  check_index t i;
  t.inodes.(i)

let set t i inode =
  check_index t i;
  t.inodes.(i) <- inode

let flush t ~sync i =
  check_index t i;
  let per_block = Layout.inodes_per_block t.desc.Layout.block_size in
  let sector = i / per_block in
  let block = Bytes.make t.desc.Layout.block_size '\000' in
  if sector = 0 then Layout.encode_descriptor t.desc block 0;
  let first = sector * per_block in
  for j = max 1 first to first + per_block - 1 do
    (* On-disk index field is irrelevant; write it as stored. *)
    Layout.encode_inode t.inodes.(j) block ((j - first) * Layout.inode_bytes)
  done;
  Amoeba_disk.Mirror.write t.mirror ~sync ~sector block

let flush_all t ~sync =
  let per_block = Layout.inodes_per_block t.desc.Layout.block_size in
  for sector = 0 to t.desc.Layout.control_size - 1 do
    flush t ~sync (max 1 (sector * per_block))
  done

let alloc t =
  match t.free_inodes with
  | [] -> None
  | i :: rest ->
    t.free_inodes <- rest;
    Some i

let free t i =
  check_index t i;
  t.inodes.(i) <- Layout.free_inode;
  t.free_inodes <- List.merge Int.compare [ i ] t.free_inodes

let free_count t = List.length t.free_inodes

let live_count t =
  let n = ref 0 in
  for i = 1 to max_inode t do
    if not (Layout.is_free t.inodes.(i)) then incr n
  done;
  !n

let iter_live t f =
  for i = 1 to max_inode t do
    if not (Layout.is_free t.inodes.(i)) then f i t.inodes.(i)
  done
