type t = {
  client : Client.t;
  cap : Amoeba_cap.Capability.t;
  length : int;
  mutable resident : bytes option;
}

let map client cap =
  let length = Client.size client cap in
  { client; cap; length; resident = None }

let length t = t.length

let is_resident t = t.resident <> None

(* the "page fault": one whole-file READ *)
let fault_in t =
  match t.resident with
  | Some data -> data
  | None ->
    let data = Client.read_now t.client t.cap in
    t.resident <- Some data;
    data

let get t i =
  if i < 0 || i >= t.length then invalid_arg "Mapped.get: out of bounds";
  Bytes.get (fault_in t) i

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.length then invalid_arg "Mapped.sub: out of bounds";
  Bytes.sub (fault_in t) pos len

let contents t = fault_in t

let unmap t = t.resident <- None
