(** The Bullet server's RAM file cache.

    "All of the server's remaining memory will be used for file caching."
    Files are kept {e contiguous} in cache memory. A separate table of
    {e rnodes} administers cached files: each rnode holds the inode index
    of the file, a pointer (offset) into cache memory, and an age field
    for LRU replacement. Free cache memory and free rnodes are kept on
    free lists; when space runs out the least-recently-used file is
    evicted (paper §3). Because files are contiguous, the cache can be
    compacted by sliding segments together. *)

type t

val create :
  capacity:int -> max_rnodes:int -> on_evict:(inode:int -> rnode:int -> unit) -> t
(** A cache of [capacity] bytes and at most [max_rnodes] resident files.
    [on_evict] is called when LRU replacement removes a file, so the owner
    can clear the inode's index field. Rnode indices are 1-based — index 0
    in an inode means "not cached". *)

val set_tracer : t -> Amoeba_trace.Trace.ctx option -> unit
(** Install (or with [None] remove) the tracer; traced caches emit a
    [cache.evict] event per LRU eviction.  The cache's internal RAM
    allocator stays untraced — [alloc.*] events mean disk extents. *)

val capacity : t -> int

val used_bytes : t -> int

val resident_files : t -> int

val insert : t -> inode:int -> bytes -> int option
(** [insert t ~inode data] places a copy of [data] contiguously in cache,
    evicting LRU files as needed, and returns the rnode index; [None] if
    [data] is larger than what eviction can ever free (i.e. cache capacity
    or the rnode table is exhausted even when empty). A zero-length file
    occupies an rnode but no memory. *)

val reserve : t -> inode:int -> int -> int option
(** [reserve t ~inode n] is {!insert} without supplying data: it allocates
    [n] bytes of zeroed cache space for the file (the caller then fills it
    with {!blit_in}); used when loading from disk. *)

val get : t -> rnode:int -> bytes
(** Copy of the cached file; refreshes its LRU age.
    Raises [Invalid_argument] on a free rnode. *)

val sub : t -> rnode:int -> pos:int -> len:int -> bytes
(** Copy of a byte range of the cached file; refreshes its age. *)

val blit_in : t -> rnode:int -> pos:int -> bytes -> unit
(** Overwrite a range of the cached file in place (used by load-from-disk
    and by the MODIFY path before write-through). *)

val inode_of : t -> rnode:int -> int
(** Which inode a resident rnode belongs to. *)

val length_of : t -> rnode:int -> int

val remove : t -> rnode:int -> unit
(** Drop a file from cache (delete path); does not call [on_evict]. *)

val compact : t -> int
(** Slide resident segments to the bottom of cache memory, leaving one
    free hole at the top; returns the number of bytes moved. Rnode
    indices are stable across compaction. *)

val touch : t -> rnode:int -> unit
(** Refresh a file's LRU age without reading it. *)

val stats : t -> Amoeba_sim.Stats.t
(** Counters: [insertions], [evictions], [compactions], [bytes_moved]. *)

val bytes_evicted : t -> int
(** Payload bytes dropped by LRU replacement so far.  Kept in a
    {!Amoeba_metrics.Metrics.Counter} cell rather than an ad-hoc stats
    counter so live scrapes and benches read the same instrument;
    mirrors the client cache's counter of the same name. *)

val register_metrics : t -> prefix:string -> Amoeba_metrics.Metrics.t -> unit
(** Register [<prefix>.bytes_evicted], [<prefix>.used_bytes],
    [<prefix>.capacity_bytes], [<prefix>.resident_files] and every
    {!stats} counter under the prefix. *)
