module Message = Amoeba_rpc.Message
module Status = Amoeba_rpc.Status

let cmd_create = 1

let cmd_size = 2

let cmd_read = 3

let cmd_delete = 4

let cmd_read_range = 5

let cmd_modify = 6

let cmd_append = 7

let cmd_truncate = 8

let cmd_restrict = 9

let cmd_stat = 10

let cmd_std_status = 11

(* Two-phase commit. 20..22 — and the directory service's 25..27 — are
   disjoint from every other command number in the system, so the fault
   injector can classify a message's 2PC leg (prepare vs decision) from
   the command alone. *)
let cmd_txn_prepare = 20

let cmd_txn_commit = 21

let cmd_txn_abort = 22

let command_name command =
  if command = cmd_create then "create"
  else if command = cmd_size then "size"
  else if command = cmd_read then "read"
  else if command = cmd_delete then "delete"
  else if command = cmd_read_range then "read_range"
  else if command = cmd_modify then "modify"
  else if command = cmd_append then "append"
  else if command = cmd_truncate then "truncate"
  else if command = cmd_restrict then "restrict"
  else if command = cmd_stat then "stat"
  else if command = cmd_std_status then "std_status"
  else if command = cmd_txn_prepare then "txn_prepare"
  else if command = cmd_txn_commit then "txn_commit"
  else if command = cmd_txn_abort then "txn_abort"
  else Printf.sprintf "cmd%d" command

(* txn_kind on the wire: arg1 of every txn command *)
let encode_txn_kind = function Server.Txn_create -> 0 | Server.Txn_delete -> 1

let decode_txn_kind = function
  | 0 -> Some Server.Txn_create
  | 1 -> Some Server.Txn_delete
  | _ -> None

type stat = {
  live_files : int;
  free_blocks : int;
  data_blocks : int;
  cache_used : int;
  cache_capacity : int;
}

(* stat reply body: five big-endian u32s *)
let encode_stat server =
  let buf = Bytes.create 20 in
  let set off v =
    for i = 0 to 3 do
      Bytes.set buf (off + i) (Char.chr ((v lsr (8 * (3 - i))) land 0xff))
    done
  in
  set 0 (Server.live_files server);
  set 4 (Server.free_blocks server);
  set 8 (Server.data_blocks server);
  set 12 (Server.cache_used server);
  set 16 (Server.cache_capacity server);
  buf

let decode_stat body =
  let get off =
    let v = ref 0 in
    for i = 0 to 3 do
      v := (!v lsl 8) lor Char.code (Bytes.get body (off + i))
    done;
    !v
  in
  {
    live_files = get 0;
    free_blocks = get 4;
    data_blocks = get 8;
    cache_used = get 12;
    cache_capacity = get 16;
  }

let status_snapshot server =
  Amoeba_metrics.Metrics.scrape (Server.metrics server)
    ~at_us:(Amoeba_sim.Clock.now (Server.clock server))

(* STD_STATUS reply body: the server's metrics snapshot, binary form.
   The request's arg0 selects the representation (0 binary, 1 the text
   exposition) so one command serves both the ctl tool and a curl-ish
   scrape over the daemon's TCP carrier. *)
let encode_status server = Amoeba_metrics.Metrics.encode_snapshot (status_snapshot server)

let decode_status body = Amoeba_metrics.Metrics.decode_snapshot body

let reply_of_result ~encode = function
  | Ok v -> encode v
  | Error status -> Message.error status

let reply_cap cap = Message.reply ~status:Status.Ok ~cap ()

let with_cap request k =
  match request.Message.cap with
  | None -> Message.error Status.Bad_request
  | Some cap -> k cap

let dispatch server request =
  let command = request.Message.command in
  if command = cmd_create then
    let p_factor = request.Message.arg0 in
    reply_of_result ~encode:reply_cap (Server.create server ~p_factor request.Message.body)
  else if command = cmd_size then
    with_cap request (fun cap ->
        reply_of_result
          ~encode:(fun n -> Message.reply ~status:Status.Ok ~arg0:n ())
          (Server.size server cap))
  else if command = cmd_read then
    with_cap request (fun cap ->
        reply_of_result
          ~encode:(fun body -> Message.reply ~status:Status.Ok ~body ())
          (Server.read server cap))
  else if command = cmd_delete then
    with_cap request (fun cap ->
        reply_of_result
          ~encode:(fun () -> Message.reply ~status:Status.Ok ())
          (Server.delete server cap))
  else if command = cmd_read_range then
    with_cap request (fun cap ->
        reply_of_result
          ~encode:(fun body -> Message.reply ~status:Status.Ok ~body ())
          (Server.read_range server cap ~pos:request.Message.arg0 ~len:request.Message.arg1))
  else if command = cmd_modify then
    with_cap request (fun cap ->
        reply_of_result ~encode:reply_cap
          (Server.modify server ~p_factor:request.Message.arg0 cap ~pos:request.Message.arg1 request.Message.body))
  else if command = cmd_append then
    with_cap request (fun cap ->
        reply_of_result ~encode:reply_cap
          (Server.append server ~p_factor:request.Message.arg0 cap request.Message.body))
  else if command = cmd_truncate then
    with_cap request (fun cap ->
        reply_of_result ~encode:reply_cap
          (Server.truncate server ~p_factor:request.Message.arg0 cap request.Message.arg1))
  else if command = cmd_restrict then
    with_cap request (fun cap ->
        reply_of_result ~encode:reply_cap
          (Server.restrict server cap (Amoeba_cap.Rights.of_int request.Message.arg0)))
  else if command = cmd_stat then
    Message.reply ~status:Status.Ok ~body:(encode_stat server) ()
  else if command = cmd_std_status then
    if request.Message.arg0 = 1 then
      Message.reply ~status:Status.Ok
        ~body:(Bytes.of_string (Amoeba_metrics.Metrics.to_text (status_snapshot server)))
        ()
    else Message.reply ~status:Status.Ok ~body:(encode_status server) ()
  else if command = cmd_txn_prepare then
    let txn = request.Message.arg0 in
    (match decode_txn_kind request.Message.arg1 with
    | Some Server.Txn_create ->
      reply_of_result ~encode:reply_cap (Server.txn_prepare_create server ~txn request.Message.body)
    | Some Server.Txn_delete ->
      with_cap request (fun cap ->
          reply_of_result
            ~encode:(fun () -> Message.reply ~status:Status.Ok ())
            (Server.txn_prepare_delete server ~txn cap))
    | None -> Message.error Status.Bad_request)
  else if command = cmd_txn_commit then
    let txn = request.Message.arg0 in
    (match decode_txn_kind request.Message.arg1 with
    | Some kind ->
      with_cap request (fun cap ->
          reply_of_result
            ~encode:(fun () -> Message.reply ~status:Status.Ok ())
            (Server.txn_commit server ~txn ~kind cap))
    | None -> Message.error Status.Bad_request)
  else if command = cmd_txn_abort then
    let txn = request.Message.arg0 in
    (match request.Message.cap with
    | None ->
      (* no capability: presumed abort of the whole transaction *)
      reply_of_result
        ~encode:(fun () -> Message.reply ~status:Status.Ok ())
        (Server.txn_abort_all server ~txn)
    | Some cap -> (
      match decode_txn_kind request.Message.arg1 with
      | Some kind ->
        reply_of_result
          ~encode:(fun () -> Message.reply ~status:Status.Ok ())
          (Server.txn_abort server ~txn ~kind cap)
      | None -> Message.error Status.Bad_request))
  else Message.error Status.Bad_request

(* At-most-once execution for mutations over a lossy wire: remember the
   reply to each xid-stamped request, bounded FIFO. A retry of a request
   whose reply was lost (or that arrived in duplicate) gets the cached
   reply instead of executing again. The cache lives with the
   registration, not the server state — a reboot forgets it, which is the
   honest at-most-once window of the real protocol. *)
let dedup ?on_hit ~capacity service =
  let replies : (int, Message.t) Hashtbl.t = Hashtbl.create capacity in
  let order = Queue.create () in
  fun request ->
    let xid = request.Message.xid in
    if xid = 0 then service request
    else
      match Hashtbl.find_opt replies xid with
      | Some reply ->
        (match on_hit with None -> () | Some f -> f request);
        reply
      | None ->
        let reply = service request in
        if Hashtbl.length replies >= capacity then Hashtbl.remove replies (Queue.pop order);
        Hashtbl.replace replies xid reply;
        Queue.add xid order;
        reply

let serve ?(dedup_capacity = 1024) server transport =
  let on_hit request =
    match Amoeba_rpc.Transport.tracer transport with
    | None -> ()
    | Some tr ->
      (* No raw xid (process-global counter): the enclosing trace id
         already identifies the deduplicated transaction. *)
      Amoeba_trace.Trace.event tr ~layer:Amoeba_trace.Sink.Server ~name:"serve.dedup_hit"
        [ ("cmd", Amoeba_trace.Sink.I request.Message.command) ]
  in
  let handler = dedup ~on_hit ~capacity:dedup_capacity (dispatch server) in
  let service request =
    match Amoeba_rpc.Transport.tracer transport with
    | None -> handler request
    | Some tr ->
      Amoeba_trace.Trace.in_span tr ~layer:Amoeba_trace.Sink.Server
        ~name:("serve." ^ command_name request.Message.command)
        (fun () -> handler request)
  in
  Amoeba_rpc.Transport.register transport (Server.port server) service
