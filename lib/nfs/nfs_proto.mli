(** Wire protocol of the baseline server.

    File handles travel in the capability slot of the message (an NFS
    handle is opaque bytes; here it is inode number + generation). Unlike
    Bullet, data moves one 8 KB block per transaction. *)

val cmd_create : int

val cmd_write : int

val cmd_read : int

val cmd_getattr : int

val cmd_remove : int

val fh_to_cap : Amoeba_cap.Port.t -> Nfs_server.fhandle -> Amoeba_cap.Capability.t

val fh_of_cap : Amoeba_cap.Capability.t -> Nfs_server.fhandle

val dispatch : Nfs_server.t -> Amoeba_rpc.Message.t -> Amoeba_rpc.Message.t

val serve : Nfs_server.t -> Amoeba_rpc.Transport.t -> unit
