module Message = Amoeba_rpc.Message
module Status = Amoeba_rpc.Status

type t = {
  transport : Amoeba_rpc.Transport.t;
  model : Amoeba_rpc.Net_model.t;
  service : Amoeba_cap.Port.t;
}

let connect ?(model = Amoeba_rpc.Net_model.sunos_nfs) transport service =
  { transport; model; service }

let block_bytes = Ufs_layout.fs_block_bytes

let checked t request =
  let reply = Amoeba_rpc.Transport.trans t.transport ~model:t.model request in
  Status.check reply.Message.status;
  reply

let create t =
  let reply = checked t (Message.request ~port:t.service ~command:Nfs_proto.cmd_create ()) in
  match reply.Message.cap with
  | Some cap -> Nfs_proto.fh_of_cap cap
  | None -> raise (Status.Error Status.Server_failure)

let fh_cap t fh = Nfs_proto.fh_to_cap t.service fh

let write_at t fh ~off data =
  if Bytes.length data > block_bytes then invalid_arg "Nfs_client.write_at: over one block";
  let (_ : Message.t) =
    checked t
      (Message.request ~port:t.service ~command:Nfs_proto.cmd_write ~cap:(fh_cap t fh) ~arg0:off
         ~body:data ())
  in
  ()

let read_at t fh ~off ~len =
  if len > block_bytes then invalid_arg "Nfs_client.read_at: over one block";
  let reply =
    checked t
      (Message.request ~port:t.service ~command:Nfs_proto.cmd_read ~cap:(fh_cap t fh) ~arg0:off
         ~arg1:len ())
  in
  reply.Message.body

let write_file t fh data =
  let len = Bytes.length data in
  let rec put off =
    if off < len then begin
      let chunk = min block_bytes (len - off) in
      write_at t fh ~off (Bytes.sub data off chunk);
      put (off + chunk)
    end
  in
  put 0

let read_file t fh ~size =
  let out = Bytes.make size '\000' in
  let rec get off =
    if off < size then begin
      let chunk = min block_bytes (size - off) in
      let piece = read_at t fh ~off ~len:chunk in
      Bytes.blit piece 0 out off (Bytes.length piece);
      get (off + chunk)
    end
  in
  get 0;
  out

let getattr_size t fh =
  let reply =
    checked t (Message.request ~port:t.service ~command:Nfs_proto.cmd_getattr ~cap:(fh_cap t fh) ())
  in
  reply.Message.arg0

let remove t fh =
  let (_ : Message.t) =
    checked t (Message.request ~port:t.service ~command:Nfs_proto.cmd_remove ~cap:(fh_cap t fh) ())
  in
  ()
