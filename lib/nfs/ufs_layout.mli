(** On-disk format of the block-based baseline server.

    This is the design the paper argues against: files split into fixed
    8 KB blocks scattered over the disk, reached through an inode holding
    twelve direct pointers, a single-indirect and a double-indirect block.
    Layout: superblock (fs block 0), inode area, block bitmap, data
    area. *)

val fs_block_bytes : int
(** 8192 — the block size SunOS 3.5 NFS used on the wire and on disk. *)

val pointers_per_block : int
(** 2048 four-byte block pointers per 8 KB block. *)

val direct_pointers : int
(** 12. *)

type inode = {
  used : bool;
  gen : int;  (** generation number, embedded in file handles *)
  size_bytes : int;
  direct : int array;  (** [direct_pointers] entries; 0 = hole *)
  indirect : int;  (** single-indirect block; 0 = none *)
  double : int;  (** double-indirect block; 0 = none *)
  inline : bytes option;
      (** "immediate file" (Mullender & Tanenbaum 1984, the paper's
          reference [1]): contents of a small file stored in the inode
          itself, saving every data-block access. [Some data] implies
          [size_bytes = Bytes.length data <= inline_capacity] and no
          blocks. *)
}

val inline_capacity : int
(** Spare bytes in the 128-byte inode record (60). *)

val free_inode : inode

val inode_bytes : int
(** 128 — 64 inodes per fs block. *)

val inodes_per_block : int

val encode_inode : inode -> bytes -> int -> unit

val decode_inode : bytes -> int -> inode

type superblock = {
  total_blocks : int;  (** fs blocks on the device *)
  inode_blocks : int;  (** fs blocks of inode area *)
  bitmap_blocks : int;  (** fs blocks of allocation bitmap *)
}

val encode_superblock : superblock -> bytes -> int -> unit

val decode_superblock : bytes -> int -> (superblock, string) result

val plan : Amoeba_disk.Geometry.t -> max_files:int -> superblock
(** Size the metadata areas for a drive. *)

val inode_area_start : int
(** First fs block of the inode area (1). *)

val bitmap_start : superblock -> int

val data_start : superblock -> int

val max_inode : superblock -> int

val sectors_per_block : Amoeba_disk.Geometry.t -> int

val max_file_bytes : superblock -> int
(** Largest representable file (direct + single + double indirect). *)

val get_u32 : bytes -> int -> int
(** Big-endian 32-bit load; used for block-pointer arrays in indirect
    blocks. *)

val set_u32 : bytes -> int -> int -> unit
(** Big-endian 32-bit store. *)
