(** The block-based baseline file server (SUN NFS stand-in).

    Everything the Bullet paper's comparison measures is here: files are
    scattered 8 KB blocks found through direct/indirect pointers, the
    server keeps a 3 MB write-through buffer cache, data travels one block
    per RPC, and every WRITE is synchronous — data block, inode and (when
    touched) indirect and bitmap blocks are each forced to the single data
    disk before the reply, which is why NFS-era write bandwidth was tens
    of KB/s.

    Handles are NFS-style: inode number + generation; a remove bumps the
    generation so stale handles are detected. *)

type t

type fhandle = { ino : int; gen : int }

type attr = { size : int; blocks : int; gen : int }

type config = {
  cache_bytes : int;  (** buffer cache size; the paper's server had 3 MB *)
  cpu_request_us : int;  (** per-RPC server CPU (SunOS path) *)
  indirect_cpu_us : int;  (** extra CPU per block-map traversal level *)
  immediate_files : bool;
      (** store files that fit in the inode's spare bytes inline — the
          "immediate files" optimisation of the paper's reference [1].
          Off by default: SunOS 3.5 did not have it (it is this research
          group's own earlier idea, benchmarked as ablation ABL3). *)
}

val default_config : config

val format : Amoeba_disk.Block_device.t -> max_files:int -> unit

val mount : ?config:config -> Amoeba_disk.Block_device.t -> (t, string) result
(** Reads superblock and bitmap, rebuilds the free list. *)

val port : t -> Amoeba_cap.Port.t

val clock : t -> Amoeba_sim.Clock.t

val create : t -> (fhandle, Amoeba_rpc.Status.t) result
(** Allocate an inode and write it through (the creat() RPC). *)

val write : t -> fhandle -> off:int -> bytes -> (unit, Amoeba_rpc.Status.t) result
(** One WRITE RPC: at most crossing a block boundary is handled, every
    touched data/metadata block is written synchronously. *)

val read : t -> fhandle -> off:int -> len:int -> (bytes, Amoeba_rpc.Status.t) result
(** One READ RPC: short reads at end of file; holes read as zeros. *)

val getattr : t -> fhandle -> (attr, Amoeba_rpc.Status.t) result

val remove : t -> fhandle -> (unit, Amoeba_rpc.Status.t) result
(** Free all blocks, bump the generation, zero the inode. *)

val age_cache : t -> unit
(** Drop the buffer cache contents, modelling the "normally loaded"
    production server whose cache has turned over between one test phase
    and the next. Used by the benchmark harness; costs no time. *)

val free_blocks : t -> int

val live_files : t -> int

val stats : t -> Amoeba_sim.Stats.t

val cache_stats : t -> Amoeba_sim.Stats.t
