type slot = { data : bytes; mutable age : int }

type t = {
  device : Amoeba_disk.Block_device.t;
  capacity : int; (* blocks *)
  blocks : (int, slot) Hashtbl.t;
  stats : Amoeba_sim.Stats.t;
  sectors_per_block : int;
  mutable tick : int;
}

let create ~capacity_bytes ~device =
  let capacity = max 1 (capacity_bytes / Ufs_layout.fs_block_bytes) in
  {
    device;
    capacity;
    blocks = Hashtbl.create 512;
    stats = Amoeba_sim.Stats.create "buffer_cache";
    sectors_per_block = Ufs_layout.sectors_per_block (Amoeba_disk.Block_device.geometry device);
    tick = 0;
  }

let capacity_blocks t = t.capacity

let resident_blocks t = Hashtbl.length t.blocks

let next_age t =
  t.tick <- t.tick + 1;
  t.tick

let evict_lru t =
  let victim = ref None in
  let consider bno slot =
    match !victim with
    | None -> victim := Some (bno, slot.age)
    | Some (_, age) -> if slot.age < age then victim := Some (bno, slot.age)
  in
  Hashtbl.iter consider t.blocks;
  match !victim with
  | None -> ()
  | Some (bno, _) ->
    Hashtbl.remove t.blocks bno;
    Amoeba_sim.Stats.incr t.stats "evictions"

let install t bno data =
  while Hashtbl.length t.blocks >= t.capacity do
    evict_lru t
  done;
  Hashtbl.replace t.blocks bno { data; age = next_age t }

let read t bno =
  match Hashtbl.find_opt t.blocks bno with
  | Some slot ->
    slot.age <- next_age t;
    Amoeba_sim.Stats.incr t.stats "hits";
    Bytes.copy slot.data
  | None ->
    Amoeba_sim.Stats.incr t.stats "misses";
    let data =
      Amoeba_disk.Block_device.read t.device ~sector:(bno * t.sectors_per_block)
        ~count:t.sectors_per_block
    in
    install t bno (Bytes.copy data);
    data

let write_through t bno data =
  if Bytes.length data <> Ufs_layout.fs_block_bytes then
    invalid_arg "Buffer_cache.write_through: data must be one fs block";
  install t bno (Bytes.copy data);
  Amoeba_sim.Stats.incr t.stats "writes";
  Amoeba_disk.Block_device.write t.device ~sector:(bno * t.sectors_per_block) data

let invalidate t bno = Hashtbl.remove t.blocks bno

let flush_all t = Hashtbl.reset t.blocks

let flush_matching t predicate =
  let victims = Hashtbl.fold (fun bno _ acc -> if predicate bno then bno :: acc else acc) t.blocks [] in
  List.iter (Hashtbl.remove t.blocks) victims

let stats t = t.stats
