module Message = Amoeba_rpc.Message
module Status = Amoeba_rpc.Status

let cmd_create = 1

let cmd_write = 2

let cmd_read = 3

let cmd_getattr = 4

let cmd_remove = 5

let fh_to_cap port fh =
  Amoeba_cap.Capability.v ~port ~obj:fh.Nfs_server.ino ~rights:Amoeba_cap.Rights.all
    ~check:(Int64.of_int fh.Nfs_server.gen)

let fh_of_cap cap =
  { Nfs_server.ino = cap.Amoeba_cap.Capability.obj; gen = Int64.to_int cap.Amoeba_cap.Capability.check }

let reply_of_result ~encode = function
  | Ok v -> encode v
  | Error status -> Message.error status

let with_fh request k =
  match request.Message.cap with
  | None -> Message.error Status.Bad_request
  | Some cap -> k (fh_of_cap cap)

let dispatch server request =
  let command = request.Message.command in
  if command = cmd_create then
    reply_of_result
      ~encode:(fun fh ->
        Message.reply ~status:Status.Ok ~cap:(fh_to_cap (Nfs_server.port server) fh) ())
      (Nfs_server.create server)
  else if command = cmd_write then
    with_fh request (fun fh ->
        reply_of_result
          ~encode:(fun () -> Message.reply ~status:Status.Ok ())
          (Nfs_server.write server fh ~off:request.Message.arg0 request.Message.body))
  else if command = cmd_read then
    with_fh request (fun fh ->
        reply_of_result
          ~encode:(fun body -> Message.reply ~status:Status.Ok ~body ())
          (Nfs_server.read server fh ~off:request.Message.arg0 ~len:request.Message.arg1))
  else if command = cmd_getattr then
    with_fh request (fun fh ->
        reply_of_result
          ~encode:(fun attr -> Message.reply ~status:Status.Ok ~arg0:attr.Nfs_server.size ())
          (Nfs_server.getattr server fh))
  else if command = cmd_remove then
    with_fh request (fun fh ->
        reply_of_result
          ~encode:(fun () -> Message.reply ~status:Status.Ok ())
          (Nfs_server.remove server fh))
  else Message.error Status.Bad_request

let serve server transport =
  Amoeba_rpc.Transport.register transport (Nfs_server.port server) (dispatch server)
