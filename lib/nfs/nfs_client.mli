(** Client of the baseline server, reproducing the paper's measurement
    procedure: the SUN 3/50 with local caching disabled by [lockf], so
    every 8 KB travels as its own RPC over the SunOS wire model.

    [write_file] is the paper's write test ([creat], [write], [close]);
    [read_file] is the read test ([lseek] + [read] per block). Stubs raise
    {!Amoeba_rpc.Status.Error} on failure. *)

type t

val connect :
  ?model:Amoeba_rpc.Net_model.t -> Amoeba_rpc.Transport.t -> Amoeba_cap.Port.t -> t
(** [model] defaults to {!Amoeba_rpc.Net_model.sunos_nfs}. *)

val block_bytes : int
(** Per-RPC transfer unit (8 KB). *)

val create : t -> Nfs_server.fhandle

val write_file : t -> Nfs_server.fhandle -> bytes -> unit
(** Sequential synchronous WRITE RPCs, one per 8 KB block. *)

val read_file : t -> Nfs_server.fhandle -> size:int -> bytes
(** Sequential READ RPCs, one per 8 KB block. *)

val write_at : t -> Nfs_server.fhandle -> off:int -> bytes -> unit
(** A single WRITE RPC (at most 8 KB). *)

val read_at : t -> Nfs_server.fhandle -> off:int -> len:int -> bytes
(** A single READ RPC (at most 8 KB). *)

val getattr_size : t -> Nfs_server.fhandle -> int

val remove : t -> Nfs_server.fhandle -> unit
