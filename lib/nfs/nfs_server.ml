module Status = Amoeba_rpc.Status
module L = Ufs_layout

type fhandle = { ino : int; gen : int }

type attr = { size : int; blocks : int; gen : int }

type config = {
  cache_bytes : int;
  cpu_request_us : int;
  indirect_cpu_us : int;
  immediate_files : bool;
}

let default_config =
  {
    cache_bytes = 3 * 1024 * 1024;
    cpu_request_us = 3_000;
    indirect_cpu_us = 400;
    immediate_files = false;
  }

type t = {
  config : config;
  device : Amoeba_disk.Block_device.t;
  clock : Amoeba_sim.Clock.t;
  cache : Buffer_cache.t;
  sb : L.superblock;
  bitmap : Bytes.t; (* RAM copy; one bit per fs block *)
  mutable free_blocks : int;
  mutable free_inos : int list;
  mutable rotor : int;
  prng : Amoeba_sim.Prng.t;
  service_port : Amoeba_cap.Port.t;
  stats : Amoeba_sim.Stats.t;
}

(* Consecutive allocations land this many blocks apart, modelling the
   scattered placement of an aged, shared production disk: consecutive
   file blocks are never physically adjacent, so every block access pays
   a seek — the behaviour the paper contrasts with contiguous files. *)
let scatter_stride = 17

let format device ~max_files =
  let geometry = Amoeba_disk.Block_device.geometry device in
  let sb = L.plan geometry ~max_files in
  let spb = L.sectors_per_block geometry in
  let block = Bytes.make L.fs_block_bytes '\000' in
  L.encode_superblock sb block 0;
  Amoeba_disk.Block_device.poke device ~sector:0 block;
  let zero = Bytes.make L.fs_block_bytes '\000' in
  for b = 1 to L.data_start sb - 1 do
    Amoeba_disk.Block_device.poke device ~sector:(b * spb) zero
  done;
  (* Mark the metadata area allocated in the on-disk bitmap. *)
  let bitmap = Bytes.make (sb.L.bitmap_blocks * L.fs_block_bytes) '\000' in
  for b = 0 to L.data_start sb - 1 do
    let byte = b / 8 and bit = b mod 8 in
    Bytes.set bitmap byte (Char.chr (Char.code (Bytes.get bitmap byte) lor (1 lsl bit)))
  done;
  for i = 0 to sb.L.bitmap_blocks - 1 do
    Amoeba_disk.Block_device.poke device
      ~sector:((L.bitmap_start sb + i) * spb)
      (Bytes.sub bitmap (i * L.fs_block_bytes) L.fs_block_bytes)
  done

let mount ?(config = default_config) device =
  let geometry = Amoeba_disk.Block_device.geometry device in
  let spb = L.sectors_per_block geometry in
  let first = Amoeba_disk.Block_device.read device ~sector:0 ~count:spb in
  match L.decode_superblock first 0 with
  | Error e -> Error e
  | Ok sb ->
    (* Sequential reads of bitmap and inode areas to rebuild RAM state. *)
    let bitmap_raw =
      Amoeba_disk.Block_device.read device ~sector:(L.bitmap_start sb * spb)
        ~count:(sb.L.bitmap_blocks * spb)
    in
    let free_blocks = ref 0 in
    for b = L.data_start sb to sb.L.total_blocks - 1 do
      let byte = b / 8 and bit = b mod 8 in
      if Char.code (Bytes.get bitmap_raw byte) land (1 lsl bit) = 0 then incr free_blocks
    done;
    let inode_raw =
      Amoeba_disk.Block_device.read device ~sector:(L.inode_area_start * spb)
        ~count:(sb.L.inode_blocks * spb)
    in
    let free_inos = ref [] in
    for i = L.max_inode sb downto 1 do
      let inode = L.decode_inode inode_raw (i * L.inode_bytes) in
      if not inode.L.used then free_inos := i :: !free_inos
    done;
    Ok
      {
        config;
        device;
        clock = Amoeba_disk.Block_device.clock device;
        cache = Buffer_cache.create ~capacity_bytes:config.cache_bytes ~device;
        sb;
        bitmap = bitmap_raw;
        free_blocks = !free_blocks;
        free_inos = !free_inos;
        rotor = L.data_start sb;
        prng = Amoeba_sim.Prng.create ~seed:0x4E46535FL (* "NFS_" *);
        service_port = Amoeba_cap.Port.random (Amoeba_sim.Prng.create ~seed:0x6E667370L);
        stats = Amoeba_sim.Stats.create "nfs";
      }

let port t = t.service_port

let clock t = t.clock

let stats t = t.stats

let cache_stats t = Buffer_cache.stats t.cache

let free_blocks t = t.free_blocks

let live_files t = L.max_inode t.sb - List.length t.free_inos

(* Drop cached *data* blocks but keep metadata (superblock, inodes,
   bitmap, indirect blocks live in the data area though — they go too).
   Models a production server whose cache has turned over under normal
   load: hot metadata survives, file data does not. *)
let age_cache t =
  let data_lo = L.data_start t.sb in
  Buffer_cache.flush_matching t.cache (fun bno -> bno >= data_lo)

let charge_cpu t = Amoeba_sim.Clock.advance t.clock t.config.cpu_request_us

let charge_indirect t levels =
  Amoeba_sim.Clock.advance t.clock (levels * t.config.indirect_cpu_us)

(* ---- bitmap ---- *)

let bit_get t b = Char.code (Bytes.get t.bitmap (b / 8)) land (1 lsl (b mod 8)) <> 0

let bit_write_through t b =
  (* Persist the bitmap block containing bit [b]. *)
  let bitmap_block = b / 8 / L.fs_block_bytes in
  Buffer_cache.write_through t.cache
    (L.bitmap_start t.sb + bitmap_block)
    (Bytes.sub t.bitmap (bitmap_block * L.fs_block_bytes) L.fs_block_bytes)

let bit_set t b v =
  let byte = b / 8 and bit = b mod 8 in
  let old = Char.code (Bytes.get t.bitmap byte) in
  let updated = if v then old lor (1 lsl bit) else old land lnot (1 lsl bit) in
  Bytes.set t.bitmap byte (Char.chr updated)

let alloc_block t =
  if t.free_blocks = 0 then None
  else begin
    let total = t.sb.L.total_blocks in
    let lo = L.data_start t.sb in
    let span = total - lo in
    let rec probe candidate remaining =
      if remaining = 0 then None
      else if not (bit_get t candidate) then Some candidate
      else probe (lo + ((candidate - lo + 1) mod span)) (remaining - 1)
    in
    match probe t.rotor span with
    | None -> None
    | Some b ->
      bit_set t b true;
      bit_write_through t b;
      t.free_blocks <- t.free_blocks - 1;
      t.rotor <- lo + ((b - lo + scatter_stride) mod span);
      Some b
  end

let free_block t b =
  bit_set t b false;
  t.free_blocks <- t.free_blocks + 1

(* ---- inodes ---- *)

let inode_block_of _t ino = L.inode_area_start + (ino / L.inodes_per_block)

let read_inode t ino =
  let block = Buffer_cache.read t.cache (inode_block_of t ino) in
  L.decode_inode block (ino mod L.inodes_per_block * L.inode_bytes)

let write_inode t ino inode =
  let bno = inode_block_of t ino in
  let block = Buffer_cache.read t.cache bno in
  L.encode_inode inode block (ino mod L.inodes_per_block * L.inode_bytes);
  Buffer_cache.write_through t.cache bno block

let verify t fh =
  if fh.ino < 1 || fh.ino > L.max_inode t.sb then Error Status.No_such_object
  else
    let inode = read_inode t fh.ino in
    if inode.L.used && inode.L.gen = fh.gen then Ok inode else Error Status.No_such_object

(* ---- block map ---- *)

let read_ptr block idx = L.get_u32 block (idx * 4)

let write_ptr block idx v = L.set_u32 block (idx * 4) v

(* Map file block [fbn] to a device block. With [alloc], missing blocks
   (including indirect blocks) are allocated and metadata written through
   synchronously; the possibly-updated inode is returned. *)
let bmap t inode fbn ~alloc =
  let ppb = L.pointers_per_block in
  let zero_block () = Bytes.make L.fs_block_bytes '\000' in
  let alloc_or_fail k =
    match alloc_block t with None -> Error Status.No_space | Some b -> k b
  in
  if fbn < L.direct_pointers then
    let current = inode.L.direct.(fbn) in
    if current <> 0 then Ok (current, inode, false)
    else if not alloc then Ok (0, inode, false)
    else
      alloc_or_fail (fun b ->
          let direct = Array.copy inode.L.direct in
          direct.(fbn) <- b;
          Ok (b, { inode with L.direct }, true))
  else if fbn < L.direct_pointers + ppb then begin
    charge_indirect t 1;
    let idx = fbn - L.direct_pointers in
    let with_indirect indirect_bno inode inode_dirty =
      let block = Buffer_cache.read t.cache indirect_bno in
      let current = read_ptr block idx in
      if current <> 0 then Ok (current, inode, inode_dirty)
      else if not alloc then Ok (0, inode, inode_dirty)
      else
        alloc_or_fail (fun b ->
            write_ptr block idx b;
            Buffer_cache.write_through t.cache indirect_bno block;
            Ok (b, inode, inode_dirty))
    in
    if inode.L.indirect <> 0 then with_indirect inode.L.indirect inode false
    else if not alloc then Ok (0, inode, false)
    else
      alloc_or_fail (fun ib ->
          Buffer_cache.write_through t.cache ib (zero_block ());
          with_indirect ib { inode with L.indirect = ib } true)
  end
  else begin
    charge_indirect t 2;
    let idx = fbn - L.direct_pointers - ppb in
    if idx >= ppb * ppb then Error Status.Bad_request
    else
      let outer_idx = idx / ppb and inner_idx = idx mod ppb in
      let with_inner inner_bno inode inode_dirty =
        let block = Buffer_cache.read t.cache inner_bno in
        let current = read_ptr block inner_idx in
        if current <> 0 then Ok (current, inode, inode_dirty)
        else if not alloc then Ok (0, inode, inode_dirty)
        else
          alloc_or_fail (fun b ->
              write_ptr block inner_idx b;
              Buffer_cache.write_through t.cache inner_bno block;
              Ok (b, inode, inode_dirty))
      in
      let with_outer outer_bno inode inode_dirty =
        let block = Buffer_cache.read t.cache outer_bno in
        let inner = read_ptr block outer_idx in
        if inner <> 0 then with_inner inner inode inode_dirty
        else if not alloc then Ok (0, inode, inode_dirty)
        else
          alloc_or_fail (fun ib ->
              Buffer_cache.write_through t.cache ib (zero_block ());
              write_ptr block outer_idx ib;
              Buffer_cache.write_through t.cache outer_bno block;
              with_inner ib inode inode_dirty)
      in
      if inode.L.double <> 0 then with_outer inode.L.double inode false
      else if not alloc then Ok (0, inode, false)
      else
        alloc_or_fail (fun ob ->
            Buffer_cache.write_through t.cache ob (zero_block ());
            with_outer ob { inode with L.double = ob } true)
  end

(* ---- operations ---- *)

let ( let* ) = Result.bind

let create t =
  charge_cpu t;
  match t.free_inos with
  | [] -> Error Status.No_space
  | ino :: rest ->
    t.free_inos <- rest;
    let gen = Amoeba_sim.Prng.int t.prng 0x3FFFFFFF + 1 in
    let inode = { L.free_inode with L.used = true; gen } in
    write_inode t ino inode;
    Amoeba_sim.Stats.incr t.stats "creates";
    Ok { ino; gen }

let getattr t fh =
  charge_cpu t;
  let* inode = verify t fh in
  let blocks = (inode.L.size_bytes + L.fs_block_bytes - 1) / L.fs_block_bytes in
  Ok { size = inode.L.size_bytes; blocks; gen = inode.L.gen }

(* an immediate file spills to blocks when it outgrows the inode *)
let spill_inline t fh inode =
  match inode.L.inline with
  | None -> Ok inode
  | Some data ->
    let spilled = { inode with L.inline = None; size_bytes = 0 } in
    write_inode t fh.ino spilled;
    if Bytes.length data = 0 then Ok { spilled with L.size_bytes = 0 }
    else begin
      let* bno, spilled, _dirty = bmap t spilled 0 ~alloc:true in
      let block = Bytes.make L.fs_block_bytes '\000' in
      Bytes.blit data 0 block 0 (Bytes.length data);
      Buffer_cache.write_through t.cache bno block;
      Ok { spilled with L.size_bytes = Bytes.length data }
    end

let write t fh ~off data =
  charge_cpu t;
  let* inode = verify t fh in
  let len = Bytes.length data in
  if off < 0 || len = 0 then Error Status.Bad_request
  else if off + len > L.max_file_bytes t.sb then Error Status.No_space
  else if
    t.config.immediate_files
    && off + len <= L.inline_capacity
    && (inode.L.inline <> None || inode.L.size_bytes = 0)
  then begin
    (* immediate file: the data lives in the inode; one synchronous
       metadata write covers everything *)
    Amoeba_sim.Stats.incr t.stats "writes";
    Amoeba_sim.Stats.incr t.stats "immediate_writes";
    let current = match inode.L.inline with Some d -> d | None -> Bytes.create 0 in
    let new_size = max (Bytes.length current) (off + len) in
    let contents = Bytes.make new_size '\000' in
    Bytes.blit current 0 contents 0 (Bytes.length current);
    Bytes.blit data 0 contents off len;
    write_inode t fh.ino { inode with L.inline = Some contents; size_bytes = new_size };
    Ok ()
  end
  else begin
    Amoeba_sim.Stats.incr t.stats "writes";
    let* inode = spill_inline t fh inode in
    let rec put inode pos =
      if pos >= len then Ok inode
      else begin
        let fbn = (off + pos) / L.fs_block_bytes in
        let in_block = (off + pos) mod L.fs_block_bytes in
        let chunk = min (len - pos) (L.fs_block_bytes - in_block) in
        let* bno, inode, _dirty = bmap t inode fbn ~alloc:true in
        let block =
          if chunk = L.fs_block_bytes then Bytes.make L.fs_block_bytes '\000'
          else Buffer_cache.read t.cache bno
        in
        Bytes.blit data pos block in_block chunk;
        (* Synchronous data write: the essence of NFS-era write cost. *)
        Buffer_cache.write_through t.cache bno block;
        put inode (pos + chunk)
      end
    in
    let* inode = put inode 0 in
    let new_size = max inode.L.size_bytes (off + len) in
    (* The inode (size, mtime) is forced to disk on every WRITE RPC. *)
    write_inode t fh.ino { inode with L.size_bytes = new_size };
    Ok ()
  end

let read t fh ~off ~len =
  charge_cpu t;
  let* inode = verify t fh in
  if off < 0 || len < 0 then Error Status.Bad_request
  else
    match inode.L.inline with
    | Some contents ->
      (* served straight from the (metadata-hot) inode: no data block *)
      Amoeba_sim.Stats.incr t.stats "reads";
      Amoeba_sim.Stats.incr t.stats "immediate_reads";
      let len = max 0 (min len (Bytes.length contents - off)) in
      Ok (Bytes.sub contents off len)
    | None ->
  begin
    Amoeba_sim.Stats.incr t.stats "reads";
    let len = max 0 (min len (inode.L.size_bytes - off)) in
    let out = Bytes.make len '\000' in
    let rec get pos =
      if pos >= len then Ok ()
      else begin
        let fbn = (off + pos) / L.fs_block_bytes in
        let in_block = (off + pos) mod L.fs_block_bytes in
        let chunk = min (len - pos) (L.fs_block_bytes - in_block) in
        let* bno, _inode, _dirty = bmap t inode fbn ~alloc:false in
        if bno <> 0 then begin
          let block = Buffer_cache.read t.cache bno in
          Bytes.blit block in_block out pos chunk
        end;
        get (pos + chunk)
      end
    in
    let* () = get 0 in
    Ok out
  end

let remove t fh =
  charge_cpu t;
  let* inode = verify t fh in
  (* Free the data blocks, walking the same structure. *)
  let touched_bitmap_blocks = Hashtbl.create 7 in
  let release b =
    if b <> 0 then begin
      free_block t b;
      Buffer_cache.invalidate t.cache b;
      Hashtbl.replace touched_bitmap_blocks (b / 8 / L.fs_block_bytes) ()
    end
  in
  Array.iter release inode.L.direct;
  let release_indirect ib =
    if ib <> 0 then begin
      let block = Buffer_cache.read t.cache ib in
      for i = 0 to L.pointers_per_block - 1 do
        release (read_ptr block i)
      done;
      release ib
    end
  in
  release_indirect inode.L.indirect;
  if inode.L.double <> 0 then begin
    let outer = Buffer_cache.read t.cache inode.L.double in
    for i = 0 to L.pointers_per_block - 1 do
      release_indirect (read_ptr outer i)
    done;
    release inode.L.double
  end;
  (* One synchronous write per touched bitmap block, then the inode. *)
  let flush_bitmap bitmap_block () =
    Buffer_cache.write_through t.cache
      (L.bitmap_start t.sb + bitmap_block)
      (Bytes.sub t.bitmap (bitmap_block * L.fs_block_bytes) L.fs_block_bytes)
  in
  Amoeba_sim.Tbl.sorted_iter Int.compare flush_bitmap touched_bitmap_blocks;
  write_inode t fh.ino L.free_inode;
  t.free_inos <- fh.ino :: t.free_inos;
  Amoeba_sim.Stats.incr t.stats "removes";
  Ok ()
