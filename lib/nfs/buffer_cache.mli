(** The baseline server's block buffer cache.

    An LRU cache of fixed-size fs blocks, like the SunOS buffer cache the
    paper's NFS server ran with (3 MB). Reads of cached blocks cost no
    disk time; writes go through to disk synchronously ("The SUN NFS file
    server uses a write-through cache"). *)

type t

val create : capacity_bytes:int -> device:Amoeba_disk.Block_device.t -> t
(** Capacity is rounded down to whole fs blocks (at least one). *)

val capacity_blocks : t -> int

val resident_blocks : t -> int

val read : t -> int -> bytes
(** [read t bno] returns fs block [bno], from cache or disk. The returned
    buffer is a copy. *)

val write_through : t -> int -> bytes -> unit
(** Install the block in cache and write it to disk synchronously. The
    data must be exactly one fs block. *)

val invalidate : t -> int -> unit
(** Drop a block from cache (file removal). *)

val flush_all : t -> unit
(** Drop everything (cache is clean, so nothing is written). *)

val flush_matching : t -> (int -> bool) -> unit
(** Drop every cached block whose number satisfies the predicate. *)

val stats : t -> Amoeba_sim.Stats.t
(** Counters: [hits], [misses], [writes], [evictions]. *)
