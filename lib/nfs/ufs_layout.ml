let fs_block_bytes = 8192

let pointers_per_block = fs_block_bytes / 4

let direct_pointers = 12

type inode = {
  used : bool;
  gen : int;
  size_bytes : int;
  direct : int array;
  indirect : int;
  double : int;
  inline : bytes option;
}

let free_inode =
  {
    used = false;
    gen = 0;
    size_bytes = 0;
    direct = Array.make direct_pointers 0;
    indirect = 0;
    double = 0;
    inline = None;
  }

let inode_bytes = 128

(* fixed fields end at 68: used 4 + gen 4 + size 4 + direct 48 +
   indirect 4 + double 4 *)
let inline_offset = 68

let inline_capacity = inode_bytes - inline_offset

let inodes_per_block = fs_block_bytes / inode_bytes

let set_u32 buf off v =
  for i = 0 to 3 do
    Bytes.set buf (off + i) (Char.chr ((v lsr (8 * (3 - i))) land 0xff))
  done

let get_u32 buf off =
  let acc = ref 0 in
  for i = 0 to 3 do
    acc := (!acc lsl 8) lor Char.code (Bytes.get buf (off + i))
  done;
  !acc

let encode_inode i buf off =
  let used_tag = if not i.used then 0 else match i.inline with None -> 1 | Some _ -> 2 in
  set_u32 buf off used_tag;
  set_u32 buf (off + 4) i.gen;
  set_u32 buf (off + 8) i.size_bytes;
  for d = 0 to direct_pointers - 1 do
    set_u32 buf (off + 12 + (4 * d)) i.direct.(d)
  done;
  set_u32 buf (off + 12 + (4 * direct_pointers)) i.indirect;
  set_u32 buf (off + 16 + (4 * direct_pointers)) i.double;
  match i.inline with
  | None -> ()
  | Some data ->
    if Bytes.length data > inline_capacity then invalid_arg "encode_inode: inline too large";
    Bytes.blit data 0 buf (off + inline_offset) (Bytes.length data)

let decode_inode buf off =
  let used_tag = get_u32 buf off in
  let size_bytes = get_u32 buf (off + 8) in
  {
    used = used_tag <> 0;
    gen = get_u32 buf (off + 4);
    size_bytes;
    direct = Array.init direct_pointers (fun d -> get_u32 buf (off + 12 + (4 * d)));
    indirect = get_u32 buf (off + 12 + (4 * direct_pointers));
    double = get_u32 buf (off + 16 + (4 * direct_pointers));
    inline =
      (if used_tag = 2 && size_bytes <= inline_capacity then
         Some (Bytes.sub buf (off + inline_offset) size_bytes)
       else None);
  }

type superblock = { total_blocks : int; inode_blocks : int; bitmap_blocks : int }

let magic = 0x55465321 (* "UFS!" *)

let encode_superblock s buf off =
  set_u32 buf off magic;
  set_u32 buf (off + 4) s.total_blocks;
  set_u32 buf (off + 8) s.inode_blocks;
  set_u32 buf (off + 12) s.bitmap_blocks

let decode_superblock buf off =
  if get_u32 buf off <> magic then Error "bad magic: not a UFS-baseline image"
  else
    let s =
      {
        total_blocks = get_u32 buf (off + 4);
        inode_blocks = get_u32 buf (off + 8);
        bitmap_blocks = get_u32 buf (off + 12);
      }
    in
    if s.total_blocks <= 0 || s.inode_blocks <= 0 || s.bitmap_blocks <= 0 then
      Error "bad superblock sizes"
    else Ok s

let sectors_per_block geometry = fs_block_bytes / geometry.Amoeba_disk.Geometry.sector_bytes

let inode_area_start = 1

let bitmap_start _s = inode_area_start + _s.inode_blocks

let data_start s = inode_area_start + s.inode_blocks + s.bitmap_blocks

let max_inode s = (s.inode_blocks * inodes_per_block) - 1

let plan geometry ~max_files =
  let total_bytes = Amoeba_disk.Geometry.capacity_bytes geometry in
  let total_blocks = total_bytes / fs_block_bytes in
  let inode_blocks = (max_files + 1 + inodes_per_block - 1) / inodes_per_block in
  let bitmap_blocks = (total_blocks + (fs_block_bytes * 8) - 1) / (fs_block_bytes * 8) in
  let s = { total_blocks; inode_blocks; bitmap_blocks } in
  if data_start s >= total_blocks then invalid_arg "Ufs_layout.plan: drive too small";
  s

let max_file_bytes _s =
  (direct_pointers + pointers_per_block + (pointers_per_block * pointers_per_block))
  * fs_block_bytes
