(** Binds a {!Plan.t} to a running rig and makes it happen.

    The injector installs itself as the transport's delivery hook and as
    each mirror drive's transient-fault hook. Scripted events fire when
    their virtual time has passed — checked at every RPC transaction and
    at explicit {!poll} calls — and fire {e off the measured path}: a
    whole-disk resync or a reboot's inode-table scan charges no client
    time, but its duration is recorded in {!stats} ([resync_us],
    [reboot_us] series) so experiments can still report it.

    A [Drive_rejoin] event is different in kind: it starts an {e online}
    resync. The failed drives come back fully dirty and the injector
    runs one bounded [Mirror.resync_step] per poll point, {e charged to
    the clock} — background copying steals slices of foreground disk
    time rather than happening for free, and no single foreground
    operation ever waits for more than one batch. When the mirror
    reaches [Clean] the wall-clock (virtual) duration of the whole
    online resync is recorded in the [online_resync_us] series.

    Link-scoped events ([Link_loss], [Link_partition], [Link_heal])
    apply only to transactions tagged with that link class (see
    [Amoeba_rpc.Transport.trans]'s [?link]); untagged traffic sees only
    the global rates.

    Crash and reboot are harness-supplied actions because the injector is
    generic over what is running on the transport: for a Bullet rig,
    [on_crash] typically unregisters the port and calls [Server.crash],
    and [on_reboot] restarts the server on the surviving image (same
    seed, so capabilities minted before the crash remain valid) and
    re-registers it.

    All probabilistic draws come from one PRNG seeded by the plan, and
    the draw order is fixed, so a given plan against a given workload is
    exactly reproducible. *)

type t

val attach :
  ?transport:Amoeba_rpc.Transport.t ->
  ?mirror:Amoeba_disk.Mirror.t ->
  ?on_crash:(unit -> unit) ->
  ?on_reboot:(unit -> unit) ->
  ?on_lease_skew:(int -> unit) ->
  ?on_txn_crash:(Plan.txn_edge -> unit) ->
  ?on_shard_kill:(string -> unit) ->
  clock:Amoeba_sim.Clock.t ->
  Plan.t ->
  t
(** Install the plan's hooks; events already due (at time 0) fire
    immediately. [Drive_fail]/[Drive_recover]/[Drive_rejoin] events
    require [mirror]; message-fault draws require [transport] (without
    it they never happen). [on_lease_skew] receives [Lease_clock_skew]
    offsets — typically [Amoeba_lease.Station.set_skew]; default
    ignores them. [on_txn_crash] is the crash action a {!txn_point}
    call fires when its edge is armed — typically it unregisters a
    port, drops a server's volatile state, or raises to unwind the
    coordinator mid-protocol; default ignores the edge.
    [on_shard_kill] receives [Shard_kill] server names — for a cluster
    rig, [Amoeba_cluster.Cluster.kill_server]; default ignores them. *)

val txn_point : t -> Plan.txn_edge -> unit
(** Declare that the harness's two-phase commit just reached [edge].
    Due scripted events fire first; then, if a [Txn_crash] for exactly
    this edge is armed, it is consumed and [on_txn_crash] runs (under
    the same atomicity as other event applications — the crash action
    itself draws no faults). The 2PC coordinator calls this at each of
    its protocol edges; an experiment's crash action decides what
    "crash" means for its rig. *)

val poll : t -> unit
(** Fire every scripted event whose time has passed, then run one
    resync step if an online resync is in flight. Call this from the
    experiment loop when no RPC traffic would otherwise trigger the
    check (e.g. to make a reboot happen during an idle period, or to
    let a resync drain during client think time). *)

val verdict :
  t -> link:Amoeba_rpc.Link.t option -> Amoeba_rpc.Message.t -> Amoeba_rpc.Transport.delivery
(** The delivery decision for one message, exactly as the installed
    transport hook computes it (due events fire first, then a resync
    step, then the fault draws). Exposed for carriers that deliver
    messages outside the simulated transport — [bulletd --fault-plan]
    consults this over the real-socket path. *)

val detach : t -> unit
(** Remove all hooks; remaining scheduled events never fire. *)

val pending : t -> int
(** Scripted events not yet fired. *)

val stats : t -> Amoeba_sim.Stats.t
(** Counters [drive_failures], [drive_recoveries], [drive_rejoins],
    [server_crashes], [server_reboots], [online_resyncs], [lease_skews],
    [link_partition_drops], [link_request_drops], [link_reply_drops],
    [txn_crashes_armed], [txn_crashes], [txn_drop_<leg>],
    [txn_dup_<leg>] (and [txn_dup_<leg>_discarded] for reply legs),
    [shard_kills]; series [resync_us], [reboot_us],
    [online_resync_us]. *)

val register_metrics : t -> Amoeba_metrics.Metrics.t -> unit
(** Register the injector's live surface: a [fault.pending_events] gauge
    (scripted events not yet fired) and every {!stats} counter under the
    [fault.] prefix. *)
