let doubling ~base_us ~attempt =
  if base_us < 0 then invalid_arg "Backoff.doubling: negative base_us";
  if attempt < 1 then invalid_arg "Backoff.doubling: attempt must be at least 1";
  base_us * (1 lsl (attempt - 1))

type policy = { attempts : int; timeout_us : int; backoff_us : int }

let policy ~attempts ~timeout_us ~backoff_us =
  if attempts < 1 then invalid_arg "Backoff.policy: attempts must be at least 1";
  if timeout_us < 0 then invalid_arg "Backoff.policy: negative timeout_us";
  if backoff_us < 0 then invalid_arg "Backoff.policy: negative backoff_us";
  { attempts; timeout_us; backoff_us }

let delay_us p ~attempt = doubling ~base_us:p.backoff_us ~attempt
