(** Client retry/backoff policy.

    The schedule is the one the Bullet client has always used: the wait
    before retry [n] is [backoff_us * 2^(n-1)].  It lives in [lib/fault]
    so both the real RPC client and the scheduler's synthetic closed-loop
    clients share one definition of "what a retrying client does". *)

val doubling : base_us:int -> attempt:int -> int
(** [doubling ~base_us ~attempt] is the wait (µs) after failed attempt
    [attempt] (1-based): [base_us * 2^(attempt-1)].  Raises
    [Invalid_argument] on a negative base or an attempt < 1. *)

type policy = {
  attempts : int;  (** total attempts, including the first (>= 1) *)
  timeout_us : int;  (** client-side patience per attempt; 0 = wait forever *)
  backoff_us : int;  (** base wait before the first retry *)
}

val policy : attempts:int -> timeout_us:int -> backoff_us:int -> policy
(** Validating constructor. *)

val delay_us : policy -> attempt:int -> int
(** Wait before the retry that follows failed attempt [attempt]. *)
