module Clock = Amoeba_sim.Clock
module Prng = Amoeba_sim.Prng
module Stats = Amoeba_sim.Stats
module Transport = Amoeba_rpc.Transport
module Link = Amoeba_rpc.Link
module Block_device = Amoeba_disk.Block_device
module Mirror = Amoeba_disk.Mirror
module Event_queue = Amoeba_sim.Event_queue

(* Per-link-class fault state, indexed by [link_index]. *)
type link_state = { mutable link_loss : float; mutable partitioned : bool }

type t = {
  clock : Clock.t;
  prng : Prng.t;
  queue : Plan.event Event_queue.t;
  transport : Transport.t option;
  mirror : Mirror.t option;
  on_crash : unit -> unit;
  on_reboot : unit -> unit;
  on_lease_skew : int -> unit;
  on_txn_crash : Plan.txn_edge -> unit;
  on_shard_kill : string -> unit;
  stats : Stats.t;
  mutable loss : float;
  mutable duplication : float;
  mutable corruption : float;
  mutable sector_errors : float;
  links : link_state array;
  mutable txn_armed : Plan.txn_edge option;
  txn_drops : int array; (* remaining targeted drops, indexed by [leg_index] *)
  txn_dups : int array; (* remaining targeted duplications, same index *)
  mutable resync_batch : int option;
  mutable resync_started_us : int;
  mutable firing : bool;
  mutable detached : bool;
}

let log_src = Logs.Src.create "amoeba.fault" ~doc:"Fault injection"

module Log = (val Logs.src_log log_src)

let link_index : Link.t -> int = function Local -> 0 | Regional -> 1 | Wide -> 2

let link_state t l = t.links.(link_index l)

let leg_index : Plan.txn_leg -> int = function
  | Prepare_request -> 0
  | Prepare_reply -> 1
  | Decision_request -> 2
  | Decision_reply -> 3

(* The txn wire commands, by number: Bullet prepare/commit/abort are
   20/21/22 ([Bullet_core.Proto]) and directory prepare/commit/abort
   are 25/26/27 ([Amoeba_dir.Dir_proto]).  Those ranges are disjoint
   from every other service's commands precisely so the injector can
   classify a message's 2PC exchange from the command number alone,
   without a dependency on either proto module. *)
let txn_exchange_of_command = function
  | 20 | 25 -> Some (Plan.Prepare_request, Plan.Prepare_reply)
  | 21 | 22 | 26 | 27 -> Some (Plan.Decision_request, Plan.Decision_reply)
  | _ -> None

(* Event work runs off the measured path — recovery and reboot proceed in
   the background of whichever client transaction happened to trigger the
   poll — but its duration is still recorded, so experiments can report
   resync and reboot times without distorting client latencies. *)
let record t key f =
  Clock.unobserved t.clock (fun () ->
      let (), duration = Clock.elapsed t.clock f in
      Stats.observe t.stats key (float_of_int duration))

let apply t event =
  Log.info (fun m -> m "t=%d us: %a" (Clock.now t.clock) Plan.pp_event event);
  match (event : Plan.event) with
  | Drive_fail i -> (
    match t.mirror with
    | None -> invalid_arg "Injector: Drive_fail in a plan attached without a mirror"
    | Some mirror ->
      Block_device.fail (List.nth (Mirror.drives mirror) i);
      Stats.incr t.stats "drive_failures")
  | Drive_recover -> (
    match t.mirror with
    | None -> invalid_arg "Injector: Drive_recover in a plan attached without a mirror"
    | Some mirror ->
      record t "resync_us" (fun () -> Mirror.recover mirror);
      Stats.incr t.stats "drive_recoveries")
  | Drive_rejoin batch -> (
    match t.mirror with
    | None -> invalid_arg "Injector: Drive_rejoin in a plan attached without a mirror"
    | Some mirror ->
      (* No bulk copy here: the drive comes back fully dirty and the
         backlog drains a bounded batch at a time, interleaved with the
         foreground traffic that keeps flowing meanwhile. *)
      Mirror.rejoin mirror;
      t.resync_batch <- Some batch;
      t.resync_started_us <- Clock.now t.clock;
      Stats.incr t.stats "drive_rejoins")
  | Server_crash ->
    t.on_crash ();
    Stats.incr t.stats "server_crashes"
  | Server_reboot ->
    record t "reboot_us" t.on_reboot;
    Stats.incr t.stats "server_reboots"
  | Message_loss p -> t.loss <- p
  | Message_duplication p -> t.duplication <- p
  | Message_corruption p -> t.corruption <- p
  | Sector_errors p -> t.sector_errors <- p
  | Link_loss (l, p) -> (link_state t l).link_loss <- p
  | Link_partition l -> (link_state t l).partitioned <- true
  | Link_heal l ->
    let s = link_state t l in
    s.link_loss <- 0.;
    s.partitioned <- false
  | Lease_clock_skew us ->
    t.on_lease_skew us;
    Stats.incr t.stats "lease_skews"
  | Txn_crash edge ->
    t.txn_armed <- Some edge;
    Stats.incr t.stats "txn_crashes_armed"
  | Txn_drop (leg, n) ->
    let i = leg_index leg in
    t.txn_drops.(i) <- t.txn_drops.(i) + n
  | Txn_dup leg ->
    let i = leg_index leg in
    t.txn_dups.(i) <- t.txn_dups.(i) + 1
  | Shard_kill name ->
    t.on_shard_kill name;
    Stats.incr t.stats "shard_kills"

(* The [firing] flag makes event application atomic from the hooks' point
   of view: a reboot's boot scan reads the disk and re-registers a port,
   and those inner operations must not recursively fire events or draw
   probabilistic faults. *)
let rec fire_due t =
  if not t.firing then
    match Event_queue.peek_time t.queue with
    | Some at when at <= Clock.now t.clock -> (
      match Event_queue.pop t.queue with
      | None -> ()
      | Some (_, event) ->
        t.firing <- true;
        Fun.protect ~finally:(fun () -> t.firing <- false) (fun () -> apply t event);
        fire_due t)
    | _ -> ()

(* One bounded slice of resync work, charged to the clock at a poll
   point: this is how background resync steals foreground disk time
   without ever blocking an operation for more than one batch. Runs
   under [firing] so the resync's own disk I/O draws no transient
   faults and fires no events mid-copy. *)
let step_resync t =
  if not t.firing then
    match (t.resync_batch, t.mirror) with
    | Some batch, Some mirror ->
      t.firing <- true;
      Fun.protect
        ~finally:(fun () -> t.firing <- false)
        (fun () -> ignore (Mirror.resync_step ~batch mirror : int));
      if Mirror.sync_state mirror = Mirror.Clean then begin
        t.resync_batch <- None;
        Stats.incr t.stats "online_resyncs";
        Stats.observe t.stats "online_resync_us"
          (float_of_int (Clock.now t.clock - t.resync_started_us))
      end
    | _ -> ()

let poll t =
  fire_due t;
  step_resync t

(* Called by the 2PC harness at each protocol edge.  An armed crash for
   this edge fires exactly once, through the harness's [on_txn_crash]
   action (which typically unregisters a port, drops volatile state, or
   raises to unwind the coordinator).  Runs under [firing] so the crash
   action itself draws no faults and fires no further events. *)
let txn_point t edge =
  if not t.firing then begin
    fire_due t;
    match t.txn_armed with
    | Some armed when armed = edge ->
      t.txn_armed <- None;
      Stats.incr t.stats "txn_crashes";
      t.firing <- true;
      Fun.protect ~finally:(fun () -> t.firing <- false) (fun () -> t.on_txn_crash edge)
    | _ -> ()
  end

(* Targeted per-leg transaction faults.  These are scripted counts, not
   rates: they consume no PRNG draw, so adding a txn_drop to a plan
   leaves every probabilistic fault sequence untouched.  Request-leg
   duplication re-executes the service (the transport runs the handler
   twice); a duplicated reply would be discarded by the client stub's
   transaction matching, so reply-leg duplication counts the discarded
   copy and delivers normally. *)
let txn_verdict t msg =
  match txn_exchange_of_command msg.Amoeba_rpc.Message.command with
  | None -> Transport.Deliver
  | Some (req_leg, rep_leg) ->
    let ri = leg_index req_leg and pi = leg_index rep_leg in
    if t.txn_drops.(ri) > 0 then begin
      t.txn_drops.(ri) <- t.txn_drops.(ri) - 1;
      Stats.incr t.stats ("txn_drop_" ^ Plan.txn_leg_name req_leg);
      Transport.Drop_request
    end
    else if t.txn_drops.(pi) > 0 then begin
      t.txn_drops.(pi) <- t.txn_drops.(pi) - 1;
      Stats.incr t.stats ("txn_drop_" ^ Plan.txn_leg_name rep_leg);
      Transport.Drop_reply
    end
    else if t.txn_dups.(ri) > 0 then begin
      t.txn_dups.(ri) <- t.txn_dups.(ri) - 1;
      Stats.incr t.stats ("txn_dup_" ^ Plan.txn_leg_name req_leg);
      Transport.Duplicate_request
    end
    else if t.txn_dups.(pi) > 0 then begin
      t.txn_dups.(pi) <- t.txn_dups.(pi) - 1;
      Stats.incr t.stats ("txn_dup_" ^ Plan.txn_leg_name rep_leg ^ "_discarded");
      Transport.Deliver
    end
    else Transport.Deliver

(* Draw order is fixed — link request loss, link reply loss, then the
   global request loss, reply loss, duplication, corruption — and a rate
   of zero consumes no draw, so plans stay deterministic under edits that
   only change when a rate switches on. A partition consumes no draw at
   all.  Targeted txn faults are consulted first (they are scripted
   counts, drawless by construction). *)
let delivery_verdict t ~link (msg : Amoeba_rpc.Message.t) =
  if t.firing then Transport.Deliver
  else begin
    fire_due t;
    step_resync t;
    let txn_faults = txn_verdict t msg in
    if txn_faults <> Transport.Deliver then txn_faults
    else
    let link_faults =
      match link with
      | None -> Transport.Deliver
      | Some l ->
        let s = link_state t l in
        if s.partitioned then begin
          Stats.incr t.stats "link_partition_drops";
          Transport.Drop_request
        end
        else if Prng.bernoulli t.prng s.link_loss then begin
          Stats.incr t.stats "link_request_drops";
          Transport.Drop_request
        end
        else if Prng.bernoulli t.prng s.link_loss then begin
          Stats.incr t.stats "link_reply_drops";
          Transport.Drop_reply
        end
        else Transport.Deliver
    in
    if link_faults <> Transport.Deliver then link_faults
    else if Prng.bernoulli t.prng t.loss then Transport.Drop_request
    else if Prng.bernoulli t.prng t.loss then Transport.Drop_reply
    else if Prng.bernoulli t.prng t.duplication then Transport.Duplicate_request
    else if Prng.bernoulli t.prng t.corruption then Transport.Corrupt_reply
    else Transport.Deliver
  end

let verdict = delivery_verdict

let disk_fault t ~sector:_ ~count:_ ~write =
  (* Transient errors hit reads only; scripted events do not fire from
     disk hooks (a drive failing halfway through another event's disk
     pass would make event application non-atomic). *)
  if t.firing || write then false else Prng.bernoulli t.prng t.sector_errors

let attach ?transport ?mirror ?(on_crash = fun () -> ()) ?(on_reboot = fun () -> ())
    ?(on_lease_skew = fun (_ : int) -> ())
    ?(on_txn_crash = fun (_ : Plan.txn_edge) -> ())
    ?(on_shard_kill = fun (_ : string) -> ()) ~clock plan =
  let queue = Event_queue.create () in
  (* the plan's own step order pins simultaneous steps *)
  List.iteri
    (fun i { Plan.at_us; event } ->
      Event_queue.push ~pin:i ~site:"injector.plan_step" queue ~time:at_us event)
    (Plan.steps plan);
  let t =
    {
      clock;
      prng = Prng.create ~seed:(Plan.seed plan);
      queue;
      transport;
      mirror;
      on_crash;
      on_reboot;
      on_lease_skew;
      on_txn_crash;
      on_shard_kill;
      stats = Stats.create "fault-injector";
      loss = 0.;
      duplication = 0.;
      corruption = 0.;
      sector_errors = 0.;
      links = Array.init 3 (fun _ -> { link_loss = 0.; partitioned = false });
      txn_armed = None;
      txn_drops = Array.make 4 0;
      txn_dups = Array.make 4 0;
      resync_batch = None;
      resync_started_us = 0;
      firing = false;
      detached = false;
    }
  in
  Option.iter (fun tr -> Transport.set_fault_hook tr (Some (delivery_verdict t))) transport;
  Option.iter
    (fun m -> List.iter (fun d -> Block_device.set_fault_hook d (Some (disk_fault t))) (Mirror.drives m))
    mirror;
  fire_due t;
  t

let detach t =
  if not t.detached then begin
    t.detached <- true;
    Option.iter (fun tr -> Transport.set_fault_hook tr None) t.transport;
    Option.iter
      (fun m -> List.iter (fun d -> Block_device.set_fault_hook d None) (Mirror.drives m))
      t.mirror
  end

let pending t = Event_queue.size t.queue

let stats t = t.stats

let register_metrics t reg =
  let module M = Amoeba_metrics.Metrics in
  M.gauge reg "fault.pending_events" (fun () -> pending t);
  M.stats_source reg ~prefix:"fault" t.stats
