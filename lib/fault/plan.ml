(* Which edge of the two-phase-commit protocol a scripted crash lands
   on.  The coordinator edges bracket its two durable records (begin and
   commit); the participant edge models a server that voted yes and then
   died holding prepared state. *)
type txn_edge =
  | Coord_before_prepare
  | Coord_after_prepare
  | Coord_after_commit_record
  | Coord_mid_decision
  | Participant_after_prepare

type txn_leg = Prepare_request | Prepare_reply | Decision_request | Decision_reply

let txn_edge_name = function
  | Coord_before_prepare -> "coord_before_prepare"
  | Coord_after_prepare -> "coord_after_prepare"
  | Coord_after_commit_record -> "coord_after_commit"
  | Coord_mid_decision -> "coord_mid_decision"
  | Participant_after_prepare -> "participant_after_prepare"

let txn_edge_of_name = function
  | "coord_before_prepare" -> Some Coord_before_prepare
  | "coord_after_prepare" -> Some Coord_after_prepare
  | "coord_after_commit" -> Some Coord_after_commit_record
  | "coord_mid_decision" -> Some Coord_mid_decision
  | "participant_after_prepare" -> Some Participant_after_prepare
  | _ -> None

let txn_leg_name = function
  | Prepare_request -> "prepare_req"
  | Prepare_reply -> "prepare_reply"
  | Decision_request -> "decision_req"
  | Decision_reply -> "decision_reply"

let txn_leg_of_name = function
  | "prepare_req" -> Some Prepare_request
  | "prepare_reply" -> Some Prepare_reply
  | "decision_req" -> Some Decision_request
  | "decision_reply" -> Some Decision_reply
  | _ -> None

type event =
  | Drive_fail of int
  | Drive_recover
  | Drive_rejoin of int
  | Server_crash
  | Server_reboot
  | Message_loss of float
  | Message_duplication of float
  | Message_corruption of float
  | Sector_errors of float
  | Link_loss of Amoeba_rpc.Link.t * float
  | Link_partition of Amoeba_rpc.Link.t
  | Link_heal of Amoeba_rpc.Link.t
  | Lease_clock_skew of int
  | Txn_crash of txn_edge
  | Txn_drop of txn_leg * int
  | Txn_dup of txn_leg
  | Shard_kill of string

type step = { at_us : int; event : event }

type t = { seed : int64; steps : step list (* reverse insertion order *) }

let create ~seed = { seed; steps = [] }

let at plan ~us event =
  if us < 0 then invalid_arg "Plan.at: negative time";
  { plan with steps = { at_us = us; event } :: plan.steps }

let seed plan = plan.seed

let steps plan = List.rev plan.steps

let pp_event ppf = function
  | Drive_fail i -> Format.fprintf ppf "drive %d fails" i
  | Drive_recover -> Format.fprintf ppf "failed drives repaired and resynced"
  | Drive_rejoin batch ->
    Format.fprintf ppf "failed drives rejoin; online resync, %d sectors/step" batch
  | Server_crash -> Format.fprintf ppf "server crashes"
  | Server_reboot -> Format.fprintf ppf "server reboots"
  | Message_loss p -> Format.fprintf ppf "message loss rate -> %g" p
  | Message_duplication p -> Format.fprintf ppf "message duplication rate -> %g" p
  | Message_corruption p -> Format.fprintf ppf "message corruption rate -> %g" p
  | Sector_errors p -> Format.fprintf ppf "transient sector error rate -> %g" p
  | Link_loss (l, p) ->
    Format.fprintf ppf "%s link loss rate -> %g" (Amoeba_rpc.Link.to_string l) p
  | Link_partition l ->
    Format.fprintf ppf "%s link partitioned" (Amoeba_rpc.Link.to_string l)
  | Link_heal l -> Format.fprintf ppf "%s link healed" (Amoeba_rpc.Link.to_string l)
  | Lease_clock_skew us -> Format.fprintf ppf "client lease clock skewed by %d us" us
  | Txn_crash edge -> Format.fprintf ppf "txn crash armed at %s" (txn_edge_name edge)
  | Txn_drop (leg, n) -> Format.fprintf ppf "drop next %d txn %s messages" n (txn_leg_name leg)
  | Txn_dup leg -> Format.fprintf ppf "duplicate next txn %s message" (txn_leg_name leg)
  | Shard_kill name -> Format.fprintf ppf "cluster server %s killed" name

(* ---- the plan file DSL ----

   One directive per line:

     seed <int64>
     at <us> drive_fail <i>
     at <us> drive_recover
     at <us> drive_rejoin <batch>
     at <us> server_crash
     at <us> server_reboot
     at <us> loss <p>
     at <us> dup <p>
     at <us> corrupt <p>
     at <us> sector_errors <p>
     at <us> link_loss <local|regional|wide> <p>
     at <us> link_partition <local|regional|wide>
     at <us> link_heal <local|regional|wide>
     at <us> lease_skew <offset_us>          (may be negative)
     at <us> txn_crash <edge>
     at <us> txn_drop <leg> <count>
     at <us> txn_dup <leg>
     at <us> shard_kill <server>

   with <edge> one of coord_before_prepare | coord_after_prepare |
   coord_after_commit | coord_mid_decision | participant_after_prepare
   and <leg> one of prepare_req | prepare_reply | decision_req |
   decision_reply.

   '#' starts a comment; blank lines are ignored.  Plain string
   processing, no dependence on the process environment, so a plan file
   parses to the same plan everywhere.  Parse errors carry the line,
   the 1-based column of the offending token, and the token itself. *)

(* Split a (comment-stripped) line into its words, each tagged with the
   1-based column where it starts — so errors can point at the exact
   token, not just the line. *)
let tokenize line =
  let n = String.length line in
  let rec go i acc =
    if i >= n then List.rev acc
    else if line.[i] = ' ' || line.[i] = '\t' then go (i + 1) acc
    else begin
      let j = ref i in
      while !j < n && line.[!j] <> ' ' && line.[!j] <> '\t' do
        incr j
      done;
      go !j ((i + 1, String.sub line i (!j - i)) :: acc)
    end
  in
  go 0 []

let parse text =
  let err lineno (col, token) msg =
    Error (Printf.sprintf "plan line %d, col %d: %s %S" lineno col msg token)
  in
  (* a token is missing: point one column past the last token present *)
  let missing lineno words what =
    let col =
      (* one past the end of the last token present *)
      match List.rev words with [] -> 1 | (c, w) :: _ -> c + String.length w
    in
    Error (Printf.sprintf "plan line %d, col %d: missing %s" lineno col what)
  in
  let int_of lineno (col, s) what k =
    match int_of_string_opt s with
    | Some n when n >= 0 -> k n
    | Some _ -> err lineno (col, s) (Printf.sprintf "%s must be non-negative:" what)
    | None -> err lineno (col, s) (Printf.sprintf "bad %s:" what)
  in
  let signed_int_of lineno (col, s) what k =
    (* lease skew is an offset, not a time: negative is meaningful *)
    match int_of_string_opt s with
    | Some n -> k n
    | None -> err lineno (col, s) (Printf.sprintf "bad %s:" what)
  in
  let float_of lineno (col, s) what k =
    match float_of_string_opt s with
    | Some p -> k p
    | None -> err lineno (col, s) (Printf.sprintf "bad %s:" what)
  in
  let link_of lineno (col, s) k =
    match Amoeba_rpc.Link.of_string s with
    | Some l -> k l
    | None -> err lineno (col, s) "unknown link class:"
  in
  let edge_of lineno (col, s) k =
    match txn_edge_of_name s with
    | Some e -> k e
    | None -> err lineno (col, s) "unknown txn crash edge:"
  in
  let leg_of lineno (col, s) k =
    match txn_leg_of_name s with
    | Some l -> k l
    | None -> err lineno (col, s) "unknown txn leg:"
  in
  let rec go plan lineno = function
    | [] -> Ok plan
    | line :: rest -> (
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let words = tokenize line in
      let next plan = go plan (lineno + 1) rest in
      let event us ev = next (at plan ~us ev) in
      match words with
      | [] -> next plan
      | [ (_, "seed"); (col, s) ] -> (
        match Int64.of_string_opt s with
        | Some seed -> next { plan with seed }
        | None -> err lineno (col, s) "bad seed:")
      | (_, "at") :: us :: op -> (
        int_of lineno us "time" @@ fun us ->
        match op with
        | [ (_, "drive_fail"); i ] ->
          int_of lineno i "drive index" @@ fun i -> event us (Drive_fail i)
        | [ (_, "drive_recover") ] -> event us Drive_recover
        | [ (_, "drive_rejoin"); b ] ->
          int_of lineno b "batch" @@ fun batch ->
          if batch = 0 then err lineno b "batch must be positive:"
          else event us (Drive_rejoin batch)
        | [ (_, "server_crash") ] -> event us Server_crash
        | [ (_, "server_reboot") ] -> event us Server_reboot
        | [ (_, "loss"); p ] -> float_of lineno p "rate" @@ fun p -> event us (Message_loss p)
        | [ (_, "dup"); p ] ->
          float_of lineno p "rate" @@ fun p -> event us (Message_duplication p)
        | [ (_, "corrupt"); p ] ->
          float_of lineno p "rate" @@ fun p -> event us (Message_corruption p)
        | [ (_, "sector_errors"); p ] ->
          float_of lineno p "rate" @@ fun p -> event us (Sector_errors p)
        | [ (_, "link_loss"); l; p ] ->
          link_of lineno l @@ fun l ->
          float_of lineno p "rate" @@ fun p -> event us (Link_loss (l, p))
        | [ (_, "link_partition"); l ] -> link_of lineno l @@ fun l -> event us (Link_partition l)
        | [ (_, "link_heal"); l ] -> link_of lineno l @@ fun l -> event us (Link_heal l)
        | [ (_, "lease_skew"); o ] ->
          signed_int_of lineno o "skew offset" @@ fun o -> event us (Lease_clock_skew o)
        | [ (_, "txn_crash"); e ] -> edge_of lineno e @@ fun e -> event us (Txn_crash e)
        | [ (_, "txn_drop"); l; n ] ->
          leg_of lineno l @@ fun leg ->
          int_of lineno n "count" @@ fun count ->
          if count = 0 then err lineno n "count must be positive:"
          else event us (Txn_drop (leg, count))
        | [ (_, "txn_dup"); l ] -> leg_of lineno l @@ fun l -> event us (Txn_dup l)
        | [ (_, "shard_kill"); (_, name) ] -> event us (Shard_kill name)
        | (col, op) :: args ->
          (* a known event name with the wrong operand count reads better
             as "missing/extra operand" than "unknown event" *)
          let known =
            List.mem op
              [ "drive_fail"; "drive_recover"; "drive_rejoin"; "server_crash"; "server_reboot";
                "loss"; "dup"; "corrupt"; "sector_errors"; "link_loss"; "link_partition";
                "link_heal"; "lease_skew"; "txn_crash"; "txn_drop"; "txn_dup"; "shard_kill" ]
          in
          if known then
            if args = [] then missing lineno words (Printf.sprintf "operand after %S" op)
            else err lineno (List.hd args) (Printf.sprintf "extra operand after %S:" op)
          else err lineno (col, op) "unknown event:"
        | [] -> missing lineno words "event after \"at <us>\"")
      | (col, w) :: _ -> err lineno (col, w) "unknown directive:")
  in
  go (create ~seed:1L) 1 (String.split_on_char '\n' text)
