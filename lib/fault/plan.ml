type event =
  | Drive_fail of int
  | Drive_recover
  | Drive_rejoin of int
  | Server_crash
  | Server_reboot
  | Message_loss of float
  | Message_duplication of float
  | Message_corruption of float
  | Sector_errors of float
  | Link_loss of Amoeba_rpc.Link.t * float
  | Link_partition of Amoeba_rpc.Link.t
  | Link_heal of Amoeba_rpc.Link.t
  | Lease_clock_skew of int

type step = { at_us : int; event : event }

type t = { seed : int64; steps : step list (* reverse insertion order *) }

let create ~seed = { seed; steps = [] }

let at plan ~us event =
  if us < 0 then invalid_arg "Plan.at: negative time";
  { plan with steps = { at_us = us; event } :: plan.steps }

let seed plan = plan.seed

let steps plan = List.rev plan.steps

let pp_event ppf = function
  | Drive_fail i -> Format.fprintf ppf "drive %d fails" i
  | Drive_recover -> Format.fprintf ppf "failed drives repaired and resynced"
  | Drive_rejoin batch ->
    Format.fprintf ppf "failed drives rejoin; online resync, %d sectors/step" batch
  | Server_crash -> Format.fprintf ppf "server crashes"
  | Server_reboot -> Format.fprintf ppf "server reboots"
  | Message_loss p -> Format.fprintf ppf "message loss rate -> %g" p
  | Message_duplication p -> Format.fprintf ppf "message duplication rate -> %g" p
  | Message_corruption p -> Format.fprintf ppf "message corruption rate -> %g" p
  | Sector_errors p -> Format.fprintf ppf "transient sector error rate -> %g" p
  | Link_loss (l, p) ->
    Format.fprintf ppf "%s link loss rate -> %g" (Amoeba_rpc.Link.to_string l) p
  | Link_partition l ->
    Format.fprintf ppf "%s link partitioned" (Amoeba_rpc.Link.to_string l)
  | Link_heal l -> Format.fprintf ppf "%s link healed" (Amoeba_rpc.Link.to_string l)
  | Lease_clock_skew us -> Format.fprintf ppf "client lease clock skewed by %d us" us

(* ---- the plan file DSL ----

   One directive per line:

     seed <int64>
     at <us> drive_fail <i>
     at <us> drive_recover
     at <us> drive_rejoin <batch>
     at <us> server_crash
     at <us> server_reboot
     at <us> loss <p>
     at <us> dup <p>
     at <us> corrupt <p>
     at <us> sector_errors <p>
     at <us> link_loss <local|regional|wide> <p>
     at <us> link_partition <local|regional|wide>
     at <us> link_heal <local|regional|wide>
     at <us> lease_skew <offset_us>          (may be negative)

   '#' starts a comment; blank lines are ignored.  Plain string
   processing, no dependence on the process environment, so a plan file
   parses to the same plan everywhere. *)

let parse text =
  let err lineno msg = Error (Printf.sprintf "plan line %d: %s" lineno msg) in
  let int_of lineno what s k =
    match int_of_string_opt s with
    | Some n when n >= 0 -> k n
    | Some _ -> err lineno (Printf.sprintf "%s must be non-negative: %s" what s)
    | None -> err lineno (Printf.sprintf "bad %s: %s" what s)
  in
  let signed_int_of lineno what s k =
    (* lease skew is an offset, not a time: negative is meaningful *)
    match int_of_string_opt s with
    | Some n -> k n
    | None -> err lineno (Printf.sprintf "bad %s: %s" what s)
  in
  let float_of lineno what s k =
    match float_of_string_opt s with
    | Some p -> k p
    | None -> err lineno (Printf.sprintf "bad %s: %s" what s)
  in
  let link_of lineno s k =
    match Amoeba_rpc.Link.of_string s with
    | Some l -> k l
    | None -> err lineno (Printf.sprintf "unknown link class: %s" s)
  in
  let rec go plan lineno = function
    | [] -> Ok plan
    | line :: rest -> (
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun w -> w <> "")
      in
      let next plan = go plan (lineno + 1) rest in
      let event us ev = next (at plan ~us ev) in
      match words with
      | [] -> next plan
      | [ "seed"; s ] -> (
        match Int64.of_string_opt s with
        | Some seed -> next { plan with seed }
        | None -> err lineno (Printf.sprintf "bad seed: %s" s))
      | "at" :: us :: op -> (
        int_of lineno "time" us @@ fun us ->
        match op with
        | [ "drive_fail"; i ] -> int_of lineno "drive index" i @@ fun i -> event us (Drive_fail i)
        | [ "drive_recover" ] -> event us Drive_recover
        | [ "drive_rejoin"; b ] ->
          int_of lineno "batch" b @@ fun b ->
          if b = 0 then err lineno "batch must be positive" else event us (Drive_rejoin b)
        | [ "server_crash" ] -> event us Server_crash
        | [ "server_reboot" ] -> event us Server_reboot
        | [ "loss"; p ] -> float_of lineno "rate" p @@ fun p -> event us (Message_loss p)
        | [ "dup"; p ] -> float_of lineno "rate" p @@ fun p -> event us (Message_duplication p)
        | [ "corrupt"; p ] -> float_of lineno "rate" p @@ fun p -> event us (Message_corruption p)
        | [ "sector_errors"; p ] ->
          float_of lineno "rate" p @@ fun p -> event us (Sector_errors p)
        | [ "link_loss"; l; p ] ->
          link_of lineno l @@ fun l ->
          float_of lineno "rate" p @@ fun p -> event us (Link_loss (l, p))
        | [ "link_partition"; l ] -> link_of lineno l @@ fun l -> event us (Link_partition l)
        | [ "link_heal"; l ] -> link_of lineno l @@ fun l -> event us (Link_heal l)
        | [ "lease_skew"; o ] ->
          signed_int_of lineno "skew offset" o @@ fun o -> event us (Lease_clock_skew o)
        | op :: _ -> err lineno (Printf.sprintf "unknown event: %s" op)
        | [] -> err lineno "missing event after 'at <us>'")
      | w :: _ -> err lineno (Printf.sprintf "unknown directive: %s" w))
  in
  go (create ~seed:1L) 1 (String.split_on_char '\n' text)
