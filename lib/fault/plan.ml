type event =
  | Drive_fail of int
  | Drive_recover
  | Server_crash
  | Server_reboot
  | Message_loss of float
  | Message_duplication of float
  | Message_corruption of float
  | Sector_errors of float

type step = { at_us : int; event : event }

type t = { seed : int64; steps : step list (* reverse insertion order *) }

let create ~seed = { seed; steps = [] }

let at plan ~us event =
  if us < 0 then invalid_arg "Plan.at: negative time";
  { plan with steps = { at_us = us; event } :: plan.steps }

let seed plan = plan.seed

let steps plan = List.rev plan.steps

let pp_event ppf = function
  | Drive_fail i -> Format.fprintf ppf "drive %d fails" i
  | Drive_recover -> Format.fprintf ppf "failed drives repaired and resynced"
  | Server_crash -> Format.fprintf ppf "server crashes"
  | Server_reboot -> Format.fprintf ppf "server reboots"
  | Message_loss p -> Format.fprintf ppf "message loss rate -> %g" p
  | Message_duplication p -> Format.fprintf ppf "message duplication rate -> %g" p
  | Message_corruption p -> Format.fprintf ppf "message corruption rate -> %g" p
  | Sector_errors p -> Format.fprintf ppf "transient sector error rate -> %g" p
