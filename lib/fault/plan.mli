(** A deterministic fault plan: what goes wrong, and when.

    A plan is pure data — a seed for the probabilistic faults and a
    schedule of scripted events on the virtual clock. The same plan
    attached to the same rig produces byte-identical behaviour, which is
    what makes fault experiments reportable: "availability through a
    drive failure" is a number, not a distribution over reruns.

    Scripted events cover the hard state changes (a drive dies at
    [T], the server crashes at [T'], …); rate events switch the
    probabilistic faults (message loss, duplication, corruption,
    transient sector errors) on and off, so one plan can express e.g.
    "5% loss between t=2s and t=10s". Link-scoped events target one
    {!Amoeba_rpc.Link.t} class, so a plan can degrade or partition the
    international line while local traffic is untouched. *)

(** Where a scripted two-phase-commit crash lands. The coordinator
    edges bracket its durable records: before any prepare is sent (the
    begin record is down, nothing else), after every participant voted
    yes but before the commit record, after the commit record but
    before any decision message, and in the middle of fanning the
    decision out (some participants have it, some do not). The
    participant edge crashes a server that voted yes and then died
    holding prepared state. *)
type txn_edge =
  | Coord_before_prepare
  | Coord_after_prepare
  | Coord_after_commit_record
  | Coord_mid_decision
  | Participant_after_prepare

(** One of the four message legs of the 2PC exchange: the prepare
    request, the vote carried on its reply, the decision
    (commit/abort) request, and the ack carried on its reply. *)
type txn_leg = Prepare_request | Prepare_reply | Decision_request | Decision_reply

val txn_edge_name : txn_edge -> string
(** The DSL spelling ([coord_before_prepare], …). *)

val txn_edge_of_name : string -> txn_edge option

val txn_leg_name : txn_leg -> string
(** The DSL spelling ([prepare_req], …). *)

val txn_leg_of_name : string -> txn_leg option

type event =
  | Drive_fail of int  (** take the [i]th mirror drive offline *)
  | Drive_recover
      (** repair every failed drive and resync it from the primary
          (whole-disk copy, the paper's recovery) *)
  | Drive_rejoin of int
      (** bring every failed drive back online fully dirty and start an
          online resync that copies at most this many sectors per step,
          interleaved with foreground I/O (see
          [Amoeba_disk.Mirror.rejoin]/[resync_step]) *)
  | Server_crash  (** invoke the harness's crash action *)
  | Server_reboot  (** invoke the harness's reboot action *)
  | Message_loss of float  (** per-direction drop probability *)
  | Message_duplication of float  (** request duplication probability *)
  | Message_corruption of float
      (** reply corruption probability (checksums detect it, so it
          behaves as a loss) *)
  | Sector_errors of float  (** per-read transient media error probability *)
  | Link_loss of Amoeba_rpc.Link.t * float
      (** per-direction drop probability for transactions tagged with
          this link class only *)
  | Link_partition of Amoeba_rpc.Link.t
      (** every transaction on this link class times out (no draw) *)
  | Link_heal of Amoeba_rpc.Link.t
      (** clear this link class's loss rate and partition *)
  | Lease_clock_skew of int
      (** offset (µs, may be negative) applied to the harness's client
          lease clock — models a station whose idea of "how long is my
          lease still good" drifts from the server's. Lease safety must
          hold regardless; only liveness (revalidation frequency) may
          degrade. See [Amoeba_lease.Station.set_skew]. *)
  | Txn_crash of txn_edge
      (** arm a crash at one protocol edge; it fires when the harness's
          transaction reaches that edge (see [Injector.txn_point]) and
          invokes the [on_txn_crash] action *)
  | Txn_drop of txn_leg * int
      (** drop the next [n] transaction messages on this leg — targeted
          loss, unlike the probabilistic [Message_loss] *)
  | Txn_dup of txn_leg
      (** duplicate the next transaction message on this leg. Request
          legs re-execute the service (exercising participant
          idempotence); a duplicated {e reply} is discarded by the
          client stub's transaction matching, so reply legs count the
          duplicate and deliver normally. *)
  | Shard_kill of string
      (** kill the named cluster server — permanently, mid-whatever the
          rebalancer is doing. The harness's [on_shard_kill] action
          receives the name; for a cluster rig it calls
          [Amoeba_cluster.Cluster.kill_server], which unregisters the
          port, crashes the server, drops its replicas and marks the
          ring-delta shards for re-replication on the survivors. *)

type step = { at_us : int; event : event }

type t

val create : seed:int64 -> t
(** An empty plan. [seed] drives every probabilistic draw. *)

val at : t -> us:int -> event -> t
(** Schedule [event] at virtual time [us]. Events at equal times fire in
    the order they were added. *)

val seed : t -> int64

val steps : t -> step list
(** In schedule-insertion order. *)

val pp_event : Format.formatter -> event -> unit

val parse : string -> (t, string) result
(** Parse the plan-file DSL, one directive per line ([#] comments and
    blank lines ignored):
    {v
    seed <int64>
    at <us> drive_fail <i>
    at <us> drive_recover
    at <us> drive_rejoin <batch>
    at <us> server_crash
    at <us> server_reboot
    at <us> loss <p>
    at <us> dup <p>
    at <us> corrupt <p>
    at <us> sector_errors <p>
    at <us> link_loss <local|regional|wide> <p>
    at <us> link_partition <local|regional|wide>
    at <us> link_heal <local|regional|wide>
    at <us> lease_skew <offset_us>
    at <us> txn_crash <edge>
    at <us> txn_drop <leg> <count>
    at <us> txn_dup <leg>
    at <us> shard_kill <server>
    v}
    [lease_skew]'s offset may be negative (a slow client clock).
    [<edge>] is a {!txn_edge} spelling and [<leg>] a {!txn_leg}
    spelling. The seed defaults to [1] when no [seed] line appears.
    Errors carry the line number, the 1-based column of the offending
    token, and the token itself, e.g.
    ["plan line 2, col 4: unknown directive: \"nonsense\""]. This is
    what [bulletd --fault-plan] loads. *)
