(** A deterministic fault plan: what goes wrong, and when.

    A plan is pure data — a seed for the probabilistic faults and a
    schedule of scripted events on the virtual clock. The same plan
    attached to the same rig produces byte-identical behaviour, which is
    what makes fault experiments reportable: "availability through a
    drive failure" is a number, not a distribution over reruns.

    Scripted events cover the hard state changes (a drive dies at
    [T], the server crashes at [T'], …); rate events switch the
    probabilistic faults (message loss, duplication, corruption,
    transient sector errors) on and off, so one plan can express e.g.
    "5% loss between t=2s and t=10s". Link-scoped events target one
    {!Amoeba_rpc.Link.t} class, so a plan can degrade or partition the
    international line while local traffic is untouched. *)

type event =
  | Drive_fail of int  (** take the [i]th mirror drive offline *)
  | Drive_recover
      (** repair every failed drive and resync it from the primary
          (whole-disk copy, the paper's recovery) *)
  | Drive_rejoin of int
      (** bring every failed drive back online fully dirty and start an
          online resync that copies at most this many sectors per step,
          interleaved with foreground I/O (see
          [Amoeba_disk.Mirror.rejoin]/[resync_step]) *)
  | Server_crash  (** invoke the harness's crash action *)
  | Server_reboot  (** invoke the harness's reboot action *)
  | Message_loss of float  (** per-direction drop probability *)
  | Message_duplication of float  (** request duplication probability *)
  | Message_corruption of float
      (** reply corruption probability (checksums detect it, so it
          behaves as a loss) *)
  | Sector_errors of float  (** per-read transient media error probability *)
  | Link_loss of Amoeba_rpc.Link.t * float
      (** per-direction drop probability for transactions tagged with
          this link class only *)
  | Link_partition of Amoeba_rpc.Link.t
      (** every transaction on this link class times out (no draw) *)
  | Link_heal of Amoeba_rpc.Link.t
      (** clear this link class's loss rate and partition *)
  | Lease_clock_skew of int
      (** offset (µs, may be negative) applied to the harness's client
          lease clock — models a station whose idea of "how long is my
          lease still good" drifts from the server's. Lease safety must
          hold regardless; only liveness (revalidation frequency) may
          degrade. See [Amoeba_lease.Station.set_skew]. *)

type step = { at_us : int; event : event }

type t

val create : seed:int64 -> t
(** An empty plan. [seed] drives every probabilistic draw. *)

val at : t -> us:int -> event -> t
(** Schedule [event] at virtual time [us]. Events at equal times fire in
    the order they were added. *)

val seed : t -> int64

val steps : t -> step list
(** In schedule-insertion order. *)

val pp_event : Format.formatter -> event -> unit

val parse : string -> (t, string) result
(** Parse the plan-file DSL, one directive per line ([#] comments and
    blank lines ignored):
    {v
    seed <int64>
    at <us> drive_fail <i>
    at <us> drive_recover
    at <us> drive_rejoin <batch>
    at <us> server_crash
    at <us> server_reboot
    at <us> loss <p>
    at <us> dup <p>
    at <us> corrupt <p>
    at <us> sector_errors <p>
    at <us> link_loss <local|regional|wide> <p>
    at <us> link_partition <local|regional|wide>
    at <us> link_heal <local|regional|wide>
    at <us> lease_skew <offset_us>
    v}
    [lease_skew]'s offset may be negative (a slow client clock).
    The seed defaults to [1] when no [seed] line appears. Errors carry
    the offending line number. This is what [bulletd --fault-plan]
    loads. *)
