(** A deterministic fault plan: what goes wrong, and when.

    A plan is pure data — a seed for the probabilistic faults and a
    schedule of scripted events on the virtual clock. The same plan
    attached to the same rig produces byte-identical behaviour, which is
    what makes fault experiments reportable: "availability through a
    drive failure" is a number, not a distribution over reruns.

    Scripted events cover the hard state changes (a drive dies at
    [T], the server crashes at [T'], …); rate events switch the
    probabilistic faults (message loss, duplication, corruption,
    transient sector errors) on and off, so one plan can express e.g.
    "5% loss between t=2s and t=10s". *)

type event =
  | Drive_fail of int  (** take the [i]th mirror drive offline *)
  | Drive_recover
      (** repair every failed drive and resync it from the primary
          (whole-disk copy, the paper's recovery) *)
  | Server_crash  (** invoke the harness's crash action *)
  | Server_reboot  (** invoke the harness's reboot action *)
  | Message_loss of float  (** per-direction drop probability *)
  | Message_duplication of float  (** request duplication probability *)
  | Message_corruption of float
      (** reply corruption probability (checksums detect it, so it
          behaves as a loss) *)
  | Sector_errors of float  (** per-read transient media error probability *)

type step = { at_us : int; event : event }

type t

val create : seed:int64 -> t
(** An empty plan. [seed] drives every probabilistic draw. *)

val at : t -> us:int -> event -> t
(** Schedule [event] at virtual time [us]. Events at equal times fire in
    the order they were added. *)

val seed : t -> int64

val steps : t -> step list
(** In schedule-insertion order. *)

val pp_event : Format.formatter -> event -> unit
