(* Deterministic metrics: registry + scrape + ring + codec. Everything
   here must be a pure function of the simulation — scrapes are stamped
   with virtual time and CI byte-diffs the encoded snapshots, so no
   wall clock, no unordered iteration. *)

module Stats = Amoeba_sim.Stats

exception Duplicate_metric of string

module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr c = c.v <- c.v + 1
  let add c n = c.v <- c.v + n
  let value c = c.v
end

type instrument =
  | I_counter of Counter.t
  | I_gauge of (unit -> int)
  | I_hist of Stats.Hist.t
  | I_source of Stats.t

type t = {
  reg_name : string;
  (* reverse registration order; scrapes sort by name, so order here only
     affects duplicate detection, which is order-independent *)
  mutable instruments : (string * instrument) list;
}

type registry = t

let create reg_name = { reg_name; instruments = [] }

let name t = t.reg_name

let register t key inst =
  if List.exists (fun (k, _) -> String.equal k key) t.instruments then
    raise (Duplicate_metric key);
  t.instruments <- (key, inst) :: t.instruments

let counter t key =
  let c = Counter.create () in
  register t key (I_counter c);
  c

let register_counter t key c = register t key (I_counter c)

let gauge t key f = register t key (I_gauge f)

let hist t key =
  let h = Stats.Hist.create () in
  register t key (I_hist h);
  h

let register_hist t key h = register t key (I_hist h)

let stats_source t ~prefix stats = register t prefix (I_source stats)

let metric_names t = List.sort String.compare (List.map fst t.instruments)

(* ---- snapshots ---- *)

type value =
  | Counter of int
  | Gauge of int
  | Hist of { count : int; sum : int; p50 : int; p95 : int; p99 : int; max_value : int }

type sample = { s_name : string; s_value : value }

type snapshot = { at_us : int; samples : sample list }

let hist_value h =
  Hist
    {
      count = Stats.Hist.count h;
      sum = Stats.Hist.sum h;
      p50 = Stats.Hist.percentile h 0.50;
      p95 = Stats.Hist.percentile h 0.95;
      p99 = Stats.Hist.percentile h 0.99;
      max_value = Stats.Hist.max_value h;
    }

let scrape t ~at_us =
  let expand (key, inst) =
    match inst with
    | I_counter c -> [ { s_name = key; s_value = Counter (Counter.value c) } ]
    | I_gauge f -> [ { s_name = key; s_value = Gauge (f ()) } ]
    | I_hist h -> [ { s_name = key; s_value = hist_value h } ]
    | I_source stats ->
      List.map
        (fun (k, v) -> { s_name = key ^ "." ^ k; s_value = Counter v })
        (Stats.counters stats)
      @ List.map
          (fun (k, h) -> { s_name = key ^ "." ^ k; s_value = hist_value h })
          (Stats.hists stats)
  in
  let samples =
    List.sort
      (fun a b -> String.compare a.s_name b.s_name)
      (List.concat_map expand t.instruments)
  in
  let rec check = function
    | a :: (b :: _ as rest) ->
      if String.equal a.s_name b.s_name then raise (Duplicate_metric a.s_name);
      check rest
    | [ _ ] | [] -> ()
  in
  check samples;
  { at_us; samples }

let find snap key =
  List.find_map
    (fun s -> if String.equal s.s_name key then Some s.s_value else None)
    snap.samples

let value_int = function Counter n | Gauge n -> n | Hist h -> h.count

let to_text snap =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "# at_us %d\n" snap.at_us);
  List.iter
    (fun s ->
      match s.s_value with
      | Counter n -> Buffer.add_string buf (Printf.sprintf "%s counter %d\n" s.s_name n)
      | Gauge n -> Buffer.add_string buf (Printf.sprintf "%s gauge %d\n" s.s_name n)
      | Hist h ->
        Buffer.add_string buf
          (Printf.sprintf "%s hist count %d sum %d p50 %d p95 %d p99 %d max %d\n" s.s_name
             h.count h.sum h.p50 h.p95 h.p99 h.max_value))
    snap.samples;
  Buffer.contents buf

(* ---- codec ----

   Big-endian: i64 at_us, u32 sample count, then per sample a u16 name
   length + name + kind byte (0 counter, 1 gauge, 2 hist) + payload
   (one i64, or six for a histogram). *)

let encode_snapshot snap =
  let buf = Buffer.create 256 in
  let i64 n = Buffer.add_int64_be buf (Int64.of_int n) in
  i64 snap.at_us;
  Buffer.add_int32_be buf (Int32.of_int (List.length snap.samples));
  List.iter
    (fun s ->
      Buffer.add_uint16_be buf (String.length s.s_name);
      Buffer.add_string buf s.s_name;
      match s.s_value with
      | Counter n ->
        Buffer.add_uint8 buf 0;
        i64 n
      | Gauge n ->
        Buffer.add_uint8 buf 1;
        i64 n
      | Hist h ->
        Buffer.add_uint8 buf 2;
        i64 h.count;
        i64 h.sum;
        i64 h.p50;
        i64 h.p95;
        i64 h.p99;
        i64 h.max_value)
    snap.samples;
  Buffer.to_bytes buf

let decode_snapshot b =
  let len = Bytes.length b in
  let pos = ref 0 in
  let need n k =
    if !pos + n > len then Error "snapshot truncated"
    else begin
      let at = !pos in
      pos := !pos + n;
      k at
    end
  in
  let i64 k = need 8 (fun at -> k (Int64.to_int (Bytes.get_int64_be b at))) in
  let ( let* ) = Result.bind in
  let* at_us = i64 (fun n -> Ok n) in
  let* count = need 4 (fun at -> Ok (Int32.to_int (Bytes.get_int32_be b at))) in
  if count < 0 then Error "snapshot: negative sample count"
  else begin
    let rec samples n acc =
      if n = 0 then Ok (List.rev acc)
      else
        let* nlen = need 2 (fun at -> Ok (Bytes.get_uint16_be b at)) in
        let* s_name = need nlen (fun at -> Ok (Bytes.sub_string b at nlen)) in
        let* kind = need 1 (fun at -> Ok (Bytes.get_uint8 b at)) in
        let* s_value =
          match kind with
          | 0 -> i64 (fun v -> Ok (Counter v))
          | 1 -> i64 (fun v -> Ok (Gauge v))
          | 2 ->
            let* count = i64 (fun v -> Ok v) in
            let* sum = i64 (fun v -> Ok v) in
            let* p50 = i64 (fun v -> Ok v) in
            let* p95 = i64 (fun v -> Ok v) in
            let* p99 = i64 (fun v -> Ok v) in
            let* max_value = i64 (fun v -> Ok v) in
            Ok (Hist { count; sum; p50; p95; p99; max_value })
          | k -> Error (Printf.sprintf "snapshot: unknown sample kind %d" k)
        in
        samples (n - 1) ({ s_name; s_value } :: acc)
    in
    let* samples = samples count [] in
    if !pos <> len then Error "snapshot: trailing bytes" else Ok { at_us; samples }
  end

(* ---- time series ---- *)

module Ring = struct
  type nonrec t = { capacity : int; mutable newest_first : snapshot list; mutable n : int }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Metrics.Ring.create: capacity must be positive";
    { capacity; newest_first = []; n = 0 }

  let push t snap =
    if t.n < t.capacity then begin
      t.newest_first <- snap :: t.newest_first;
      t.n <- t.n + 1
    end
    else
      (* drop the oldest: rebuild without the last element (rings are
         small — tens of snapshots — so the copy is irrelevant) *)
      t.newest_first <- snap :: List.filteri (fun i _ -> i < t.n - 1) t.newest_first

  let length t = t.n

  let latest t = match t.newest_first with [] -> None | s :: _ -> Some s

  let snapshots t = List.rev t.newest_first
end

module Scraper = struct
  module Clock = Amoeba_sim.Clock

  type nonrec t = {
    sc_registry : t;
    sc_ring : Ring.t;
    interval_us : int;
    clock : Clock.t;
    mutable next_due : int;
  }

  let create ~registry ~clock ~interval_us ~capacity =
    if interval_us <= 0 then invalid_arg "Metrics.Scraper.create: interval must be positive";
    {
      sc_registry = registry;
      sc_ring = Ring.create ~capacity;
      interval_us;
      clock;
      next_due = Clock.now clock;
    }

  let take t =
    let now = Clock.now t.clock in
    let snap = scrape t.sc_registry ~at_us:now in
    Ring.push t.sc_ring snap;
    t.next_due <- now + t.interval_us;
    snap

  let poll t = if Clock.now t.clock >= t.next_due then Some (take t) else None

  let force t = take t

  let ring t = t.sc_ring

  let registry t = t.sc_registry
end
