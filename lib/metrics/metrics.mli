(** Deterministic metrics registry, scrape loop and wire codec.

    Every subsystem already counts things ad hoc in its {!Amoeba_sim.Stats.t};
    this module gives those counts a single live surface.  A registry holds
    named {e instruments} — counters, sampled gauges, log2 histograms
    (reusing {!Amoeba_sim.Stats.Hist}) and whole [Stats.t] sources expanded
    under a prefix — and a {e scrape} folds every instrument into an
    immutable, name-sorted {!snapshot} stamped with virtual time.  A
    {!Scraper} polls the virtual clock and pushes snapshots into a bounded
    {!Ring}, giving each server a time series an operator (or the
    {!Health} evaluator) can fold over.

    Everything is driven by the simulation: no threads, no wall clock.  Two
    runs of the same workload scrape byte-identical snapshots — CI diffs
    the encoded bytes. *)

exception Duplicate_metric of string
(** Raised when two instruments are registered (or expand at scrape time)
    under the same name. *)

module Counter : sig
  (** A standalone counter cell: subsystems hold the cell and bump it on
      the hot path with no name lookup; registries reference it. *)

  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

type t
(** A registry: a named set of instruments belonging to one server. *)

type registry = t

val create : string -> t
(** [create name] is an empty registry labelled [name] in expositions. *)

val name : t -> string

val counter : t -> string -> Counter.t
(** Create a fresh counter cell and register it.  Raises
    {!Duplicate_metric} if the name is taken. *)

val register_counter : t -> string -> Counter.t -> unit
(** Register an existing cell — the subsystem keeps bumping its own
    handle; scrapes read it through the registry. *)

val gauge : t -> string -> (unit -> int) -> unit
(** Register a sampled gauge; the thunk runs at every scrape. *)

val hist : t -> string -> Amoeba_sim.Stats.Hist.t
(** Create and register a fresh log2 histogram. *)

val register_hist : t -> string -> Amoeba_sim.Stats.Hist.t -> unit

val stats_source : t -> prefix:string -> Amoeba_sim.Stats.t -> unit
(** Expand a whole {!Amoeba_sim.Stats.t} at scrape time: every counter
    [k] appears as [prefix ^ "." ^ k], every histogram likewise.  The
    prefix itself must be unique in the registry. *)

val metric_names : t -> string list
(** Registered names (sources by their prefix), sorted. *)

(** {2 Snapshots} *)

type value =
  | Counter of int
  | Gauge of int
  | Hist of { count : int; sum : int; p50 : int; p95 : int; p99 : int; max_value : int }

type sample = { s_name : string; s_value : value }

type snapshot = { at_us : int; samples : sample list  (** sorted by name *) }

val scrape : t -> at_us:int -> snapshot
(** Read every instrument now.  Raises {!Duplicate_metric} if a source
    expansion collides with another registered name. *)

val find : snapshot -> string -> value option

val value_int : value -> int
(** The headline integer of a value ([Hist] reports its count). *)

val to_text : snapshot -> string
(** Deterministic text exposition, one metric per line:
    [<name> counter <n>], [<name> gauge <n>],
    [<name> hist count <n> sum <n> p50 <n> p95 <n> p99 <n> max <n>],
    preceded by an [# at_us <t>] header. *)

val encode_snapshot : snapshot -> bytes
(** Big-endian wire form, suitable for a STD_STATUS reply body. *)

val decode_snapshot : bytes -> (snapshot, string) result
(** Inverse of {!encode_snapshot}; [Error] on truncation or an unknown
    sample kind. *)

(** {2 Time series} *)

module Ring : sig
  (** Bounded snapshot time series: pushing beyond capacity drops the
      oldest. *)

  type t

  val create : capacity:int -> t
  (** Raises [Invalid_argument] on a non-positive capacity. *)

  val push : t -> snapshot -> unit
  val length : t -> int
  val latest : t -> snapshot option

  val snapshots : t -> snapshot list
  (** Oldest first. *)
end

module Scraper : sig
  (** Virtual-clock scrape loop, poll-driven so it composes with any
      event loop: call {!poll} at convenient points; a snapshot is taken
      whenever at least [interval_us] of virtual time has passed since
      the previous one. *)

  type t

  val create :
    registry:registry -> clock:Amoeba_sim.Clock.t -> interval_us:int -> capacity:int -> t
  (** Raises [Invalid_argument] on a non-positive interval. *)

  val poll : t -> snapshot option
  (** Scrape if due ([Some snapshot], pushed into the ring), else
      [None]. *)

  val force : t -> snapshot
  (** Scrape unconditionally, push, and restart the interval. *)

  val ring : t -> Ring.t
  val registry : t -> registry
end
