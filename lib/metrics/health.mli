(** Health states and SLO burn-rate alerts folded from metric snapshots.

    The evaluator is a deterministic state machine over a snapshot
    stream: each {!observe} compares counters against the previous
    snapshot (rates are per-interval deltas, so cumulative counters work
    unchanged) and gauges against thresholds, picks the worst matching
    condition, and applies hysteresis on the way back to [Healthy] so a
    single quiet interval cannot flap the state.  The METRICS experiment
    asserts the exact transition sequence under scripted fault plans —
    there is no tolerance window, the sequence is part of the repo's
    byte-stable surface. *)

type state =
  | Healthy
  | Degraded of { resync_backlog : int }
      (** a mirror drive is offline or resyncing; the payload is the
          dirty-sector backlog at entry *)
  | Overloaded of { shed_rate : int }
      (** admission control is rejecting work; payload is the percentage
          of offered attempts shed in the entry interval *)
  | Lease_churning
      (** lease grants/renewals/expiries are spiking — clients are
          re-establishing state faster than steady reads explain *)
  | Txn_stuck of { in_doubt : int }
      (** in-doubt 2PC transactions are not draining — a coordinator
          died mid-decision and has not recovered; payload is the
          in-doubt gauge at entry *)
  | Rebalancing of { shards_remaining : int }
      (** the cluster is migrating shards after a membership change;
          payload is the dirty-shard backlog at entry. Planned data
          movement, so every incident state outranks it. *)

val state_label : state -> string
(** ["healthy"], ["degraded:<backlog>"], ["overloaded:<pct>"],
    ["lease_churning"], ["txn_stuck:<n>"], ["rebalancing:<n>"] — for
    reports and dumps. *)

val same_kind : state -> state -> bool
(** Constructor equality, ignoring payloads. *)

type config = {
  sync_state_gauge : string;  (** non-zero means a drive is off or catching up *)
  backlog_gauge : string;  (** dirty-sector backlog, reported in [Degraded] *)
  shed_counter : string;  (** cumulative sheds (admission rejections) *)
  offered_counter : string;  (** cumulative offered attempts *)
  shed_rate_pct : int;  (** enter [Overloaded] at this interval shed percentage *)
  churn_counter : string;  (** cumulative lease-churn events *)
  churn_per_interval : int;  (** enter [Lease_churning] at this interval delta *)
  in_doubt_gauge : string;  (** in-doubt 2PC transactions at the coordinator *)
  stuck_after : int;
      (** enter [Txn_stuck] once the gauge has been non-zero for this
          many consecutive snapshots — one snapshot of doubt is just a
          decision leg in flight *)
  rebal_gauge : string;  (** dirty-shard backlog, reported in [Rebalancing] *)
  rebal_after : int;
      (** enter [Rebalancing] once the backlog gauge has been non-zero
          for this many consecutive snapshots — entry hysteresis, so a
          membership blip the next step drains never shows *)
  exit_after : int;  (** consecutive clean snapshots before returning [Healthy] *)
}

val default_config : config
(** The standard Bullet wiring: [mirror.sync_state] / [mirror.sectors_remaining]
    gauges, [sched.sheds] over [sched.offered] at 10%, [lease.churn] at 3
    events per interval, [txn.in_doubt] stuck after 2 snapshots,
    [cluster.shards_remaining] rebalancing after 2 snapshots, exit
    after 2 clean snapshots. *)

type t

val create : ?config:config -> unit -> t
(** A fresh evaluator in [Healthy]. *)

val state : t -> state

val observe : t -> Metrics.snapshot -> state
(** Fold one snapshot; returns the (possibly new) state.  Missing
    metrics read as zero, so one evaluator works against any registry.
    Precedence when several conditions hold: [Overloaded] over
    [Degraded] over [Txn_stuck] over [Lease_churning] over
    [Rebalancing] — planned data movement never masks an incident. *)

val transitions : t -> (int * state) list
(** Every state change as [(at_us, new_state)], oldest first, including
    the initial [Healthy] at the first observed snapshot. *)

(** {2 SLO alerts} *)

module Slo : sig
  (** Burn-rate alerting: an objective is violated or met per snapshot;
      the burn rate is the percentage of violating snapshots over a
      sliding window, and an alert fires/clears with distinct enter and
      exit thresholds (hysteresis). *)

  type objective =
    | P99_below of { metric : string; limit : int }
        (** the histogram's p99 must stay under [limit] *)
    | Delta_at_least of { metric : string; floor : int }
        (** the counter must advance by at least [floor] per interval —
            a goodput floor.  The first observed snapshot is a baseline
            and never counts as a violation. *)

  type alert = {
    al_name : string;
    objective : objective;
    window : int;  (** snapshots considered *)
    enter_pct : int;  (** fire at this burn rate *)
    exit_pct : int;  (** clear at or under this burn rate *)
  }

  type t

  val create : alert list -> t
  (** Raises [Invalid_argument] on duplicate alert names, a non-positive
      window, or [exit_pct >= enter_pct]. *)

  val observe : t -> Metrics.snapshot -> unit

  val firing : t -> string list
  (** Names of currently-firing alerts, sorted. *)

  val burn_rate : t -> string -> int
  (** Current burn percentage for the named alert (0 if unknown). *)

  val transitions : t -> (int * string * bool) list
  (** Every fire ([true]) / clear ([false]) edge, oldest first. *)
end
