(* Health + SLO evaluation over snapshot streams. Pure folds — no clock
   reads, no randomness — so the transition lists asserted by the
   METRICS experiment are exactly reproducible. *)

type state =
  | Healthy
  | Degraded of { resync_backlog : int }
  | Overloaded of { shed_rate : int }
  | Lease_churning
  | Txn_stuck of { in_doubt : int }
  | Rebalancing of { shards_remaining : int }

let state_label = function
  | Healthy -> "healthy"
  | Degraded { resync_backlog } -> Printf.sprintf "degraded:%d" resync_backlog
  | Overloaded { shed_rate } -> Printf.sprintf "overloaded:%d" shed_rate
  | Lease_churning -> "lease_churning"
  | Txn_stuck { in_doubt } -> Printf.sprintf "txn_stuck:%d" in_doubt
  | Rebalancing { shards_remaining } -> Printf.sprintf "rebalancing:%d" shards_remaining

let same_kind a b =
  match (a, b) with
  | Healthy, Healthy -> true
  | Degraded _, Degraded _ -> true
  | Overloaded _, Overloaded _ -> true
  | Lease_churning, Lease_churning -> true
  | Txn_stuck _, Txn_stuck _ -> true
  | Rebalancing _, Rebalancing _ -> true
  | (Healthy | Degraded _ | Overloaded _ | Lease_churning | Txn_stuck _ | Rebalancing _), _ ->
    false

type config = {
  sync_state_gauge : string;
  backlog_gauge : string;
  shed_counter : string;
  offered_counter : string;
  shed_rate_pct : int;
  churn_counter : string;
  churn_per_interval : int;
  in_doubt_gauge : string;
  stuck_after : int;
  rebal_gauge : string;
  rebal_after : int;
  exit_after : int;
}

let default_config =
  {
    sync_state_gauge = "mirror.sync_state";
    backlog_gauge = "mirror.sectors_remaining";
    shed_counter = "sched.sheds";
    offered_counter = "sched.offered";
    shed_rate_pct = 10;
    churn_counter = "lease.churn";
    churn_per_interval = 3;
    in_doubt_gauge = "txn.in_doubt";
    stuck_after = 2;
    rebal_gauge = "cluster.shards_remaining";
    rebal_after = 2;
    exit_after = 2;
  }

type t = {
  config : config;
  mutable cur : state;
  mutable clean_streak : int;
  mutable doubt_streak : int;
  mutable rebal_streak : int;
  mutable prev : Metrics.snapshot option;
  mutable transitions_rev : (int * state) list;
}

let create ?(config = default_config) () =
  {
    config;
    cur = Healthy;
    clean_streak = 0;
    doubt_streak = 0;
    rebal_streak = 0;
    prev = None;
    transitions_rev = [];
  }

let state t = t.cur

let metric snap key =
  match Metrics.find snap key with None -> 0 | Some v -> Metrics.value_int v

let observe t snap =
  let c = t.config in
  let delta key =
    metric snap key - (match t.prev with None -> 0 | Some p -> metric p key)
  in
  (match t.prev with
  | None -> t.transitions_rev <- [ (snap.Metrics.at_us, t.cur) ]
  | Some _ -> ());
  let shed_d = delta c.shed_counter in
  let offered_d = delta c.offered_counter in
  let churn_d = delta c.churn_counter in
  let sync = metric snap c.sync_state_gauge in
  let in_doubt = metric snap c.in_doubt_gauge in
  let in_rebal = metric snap c.rebal_gauge in
  (* an in-doubt transaction is normal for one scrape (a decision leg in
     flight); one that PERSISTS is a coordinator that died mid-decision *)
  t.doubt_streak <- (if in_doubt > 0 then t.doubt_streak + 1 else 0);
  (* entry hysteresis for rebalancing too: one snapshot of dirty shards
     is a membership blip the very next step may drain — a BACKLOG that
     persists is a migration in progress *)
  t.rebal_streak <- (if in_rebal > 0 then t.rebal_streak + 1 else 0);
  let candidate =
    if shed_d > 0 && offered_d > 0 && shed_d * 100 >= c.shed_rate_pct * offered_d then
      Overloaded { shed_rate = shed_d * 100 / offered_d }
    else if sync <> 0 then Degraded { resync_backlog = metric snap c.backlog_gauge }
    else if t.doubt_streak >= c.stuck_after then Txn_stuck { in_doubt }
    else if churn_d >= c.churn_per_interval then Lease_churning
    else if t.rebal_streak >= c.rebal_after then Rebalancing { shards_remaining = in_rebal }
    else Healthy
  in
  let goto s =
    t.cur <- s;
    t.transitions_rev <- (snap.Metrics.at_us, s) :: t.transitions_rev
  in
  (match candidate with
  | Healthy ->
    (match t.cur with
    | Healthy -> ()
    | Degraded _ | Overloaded _ | Lease_churning | Txn_stuck _ | Rebalancing _ ->
      (* hysteresis: one quiet interval is not recovery *)
      t.clean_streak <- t.clean_streak + 1;
      if t.clean_streak >= c.exit_after then begin
        t.clean_streak <- 0;
        goto Healthy
      end)
  | Degraded _ | Overloaded _ | Lease_churning | Txn_stuck _ | Rebalancing _ ->
    t.clean_streak <- 0;
    (* entering a bad state is immediate; while the kind is unchanged the
       entry payload stands, so the transition list stays a sequence of
       edges rather than a per-snapshot log *)
    if not (same_kind t.cur candidate) then goto candidate);
  t.prev <- Some snap;
  t.cur

let transitions t = List.rev t.transitions_rev

module Slo = struct
  type objective =
    | P99_below of { metric : string; limit : int }
    | Delta_at_least of { metric : string; floor : int }

  type alert = {
    al_name : string;
    objective : objective;
    window : int;
    enter_pct : int;
    exit_pct : int;
  }

  type alert_state = {
    alert : alert;
    mutable violations : bool list;  (* newest first, at most [window] long *)
    mutable is_firing : bool;
  }

  type t = {
    alerts : alert_state list;
    mutable prev : Metrics.snapshot option;
    mutable edges_rev : (int * string * bool) list;
  }

  let create alerts =
    let seen = ref [] in
    List.iter
      (fun a ->
        if List.exists (String.equal a.al_name) !seen then
          invalid_arg ("Health.Slo.create: duplicate alert " ^ a.al_name);
        seen := a.al_name :: !seen;
        if a.window <= 0 then invalid_arg "Health.Slo.create: window must be positive";
        if a.exit_pct >= a.enter_pct then
          invalid_arg "Health.Slo.create: exit_pct must be below enter_pct")
      alerts;
    {
      alerts = List.map (fun alert -> { alert; violations = []; is_firing = false }) alerts;
      prev = None;
      edges_rev = [];
    }

  let p99_of snap key =
    match Metrics.find snap key with
    | Some (Metrics.Hist { p99; _ }) -> p99
    | Some (Metrics.Counter n) | Some (Metrics.Gauge n) -> n
    | None -> 0

  let burn st =
    match st.violations with
    | [] -> 0
    | vs ->
      let viol = List.length (List.filter Fun.id vs) in
      viol * 100 / List.length vs

  let observe t snap =
    List.iter
      (fun st ->
        let a = st.alert in
        let violated =
          match a.objective with
          | P99_below { metric = key; limit } -> p99_of snap key > limit
          | Delta_at_least { metric = key; floor } -> (
            (* a delta needs two snapshots: the first observation is a
               baseline, not a violation *)
            match t.prev with
            | None -> false
            | Some p -> metric snap key - metric p key < floor)
        in
        st.violations <-
          violated :: List.filteri (fun i _ -> i < a.window - 1) st.violations;
        let rate = burn st in
        if (not st.is_firing) && rate >= a.enter_pct then begin
          st.is_firing <- true;
          t.edges_rev <- (snap.Metrics.at_us, a.al_name, true) :: t.edges_rev
        end
        else if st.is_firing && rate <= a.exit_pct then begin
          st.is_firing <- false;
          t.edges_rev <- (snap.Metrics.at_us, a.al_name, false) :: t.edges_rev
        end)
      t.alerts;
    t.prev <- Some snap

  let firing t =
    List.sort String.compare
      (List.filter_map
         (fun st -> if st.is_firing then Some st.alert.al_name else None)
         t.alerts)

  let burn_rate t key =
    match List.find_opt (fun st -> String.equal st.alert.al_name key) t.alerts with
    | None -> 0
    | Some st -> burn st

  let transitions t = List.rev t.edges_rev
end
