(** A deterministic consistent-hash ring with virtual nodes.

    Each member contributes [vnodes] points on a 64-bit circle; a key
    hashes to a point and is owned by the next [r] {e distinct} members
    clockwise from it. Every position is {!position_of} the member name
    and vnode index, so the same member set always produces the same
    placement — byte-stable across machines and compiler versions,
    unlike anything derived from [Hashtbl.hash].

    The ring is immutable: {!add} and {!remove} return a new ring, which
    is what lets a rebalancer diff placement before and after a
    membership change and migrate {e only} the keys whose owner group
    changed ({!moved}). *)

type t

val position_of : string -> int64
(** The 64-bit circle position of a name: the
    {!Amoeba_sim.Prng.seed_of_string} FNV-1a fold pushed through one
    SplitMix64 step. FNV-1a alone has no trailing-byte avalanche —
    ["a#1"] and ["a#2"] land a fixed stride apart — and consistent
    hashing needs every bit mixed; the SplitMix64 finaliser provides
    that while staying compiler-stable. Exposed so shard spaces built
    over the ring hash keys the same way. *)

val create : ?vnodes:int -> unit -> t
(** An empty ring; every member added will contribute [vnodes] points
    (default 16). Raises [Invalid_argument] when [vnodes <= 0]. *)

val vnodes : t -> int

val add : t -> string -> t
(** Ring with one more member. Raises [Invalid_argument] if the member
    is already present or the name is empty. *)

val remove : t -> string -> t
(** Ring without the member. Raises [Invalid_argument] if absent. *)

val mem : t -> string -> bool

val members : t -> string list
(** Sorted. *)

val size : t -> int

val owners : t -> r:int -> string -> string list
(** The first [min r (size t)] distinct members clockwise from the
    key's position — the key's replica group, preference order first.
    [[]] on an empty ring. Raises [Invalid_argument] when [r <= 0]. *)

val moved : before:t -> after:t -> r:int -> string list -> string list
(** The subset of [keys] whose {!owners} group differs between the two
    rings (as a list — order and membership, since preference order is
    placement too). This is exactly the set a rebalancer must touch for
    the membership change [before -> after]. *)
