type t = {
  bits : Bytes.t; (* one bit per shard *)
  shards : int;
  mutable remaining : int;
  mutable cursor : int; (* where the rebalance scan resumes *)
}

let create ~shards =
  if shards <= 0 then invalid_arg "Shard_map.create: shards must be positive";
  { bits = Bytes.make ((shards + 7) / 8) '\000'; shards; remaining = 0; cursor = 0 }

let shards t = t.shards

let remaining t = t.remaining

let check t s op =
  if s < 0 || s >= t.shards then
    invalid_arg (Printf.sprintf "Shard_map.%s: shard %d out of bounds (%d shards)" op s t.shards)

let get t s = Char.code (Bytes.get t.bits (s lsr 3)) land (1 lsl (s land 7)) <> 0

let set t s v =
  let i = s lsr 3 in
  let mask = 1 lsl (s land 7) in
  let b = Char.code (Bytes.get t.bits i) in
  Bytes.set t.bits i (Char.chr (if v then b lor mask else b land lnot mask))

let mark t s =
  check t s "mark";
  if not (get t s) then begin
    set t s true;
    t.remaining <- t.remaining + 1
  end

let clear t s =
  check t s "clear";
  if get t s then begin
    set t s false;
    t.remaining <- t.remaining - 1
  end

let is_dirty t s =
  check t s "is_dirty";
  get t s

(* Scan circularly from the cursor; the wrap means shards marked behind
   an in-progress drain cannot starve the ones ahead of it. The cursor
   parks ON the found shard, so an interrupted drain resumes there. *)
let next t =
  if t.remaining = 0 then None
  else begin
    let rec find s steps =
      if steps >= t.shards then None
      else
        let s = if s >= t.shards then 0 else s in
        if get t s then Some s else find (s + 1) (steps + 1)
    in
    match find t.cursor 0 with
    | None -> None
    | Some s ->
      t.cursor <- s;
      Some s
  end
