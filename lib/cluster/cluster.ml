module Clock = Amoeba_sim.Clock
module Prng = Amoeba_sim.Prng
module Stats = Amoeba_sim.Stats
module Tbl = Amoeba_sim.Tbl
module Cap = Amoeba_cap.Capability
module Server = Bullet_core.Server
module Client = Bullet_core.Client
module Link = Amoeba_wan.Link
module Federation = Amoeba_wan.Federation
module Metrics = Amoeba_metrics.Metrics
module Trace = Amoeba_trace.Trace
module Sink = Amoeba_trace.Sink

type config = {
  shards : int;
  vnodes : int;
  replicas : int;
  server_sectors : int;
  max_files : int;
  migrate_batch : int;
  route_refresh_us : int;
}

let default_config =
  {
    shards = 64;
    vnodes = 64;
    replicas = 2;
    server_sectors = 4096;
    max_files = 255;
    migrate_batch = 4;
    route_refresh_us = 50_000;
  }

type node_status = Alive | Retired | Dead

type node = {
  name : string;
  region : string;
  server : Server.t;
  mirror : Amoeba_disk.Mirror.t;
  mutable status : node_status;
  mutable load_hint : int; (* server reads at the last hint refresh *)
  mutable routed_since : int; (* reads we routed there since the refresh *)
}

type entry = { mutable holds : (string * Cap.t) list (* sorted by server name *) }

type t = {
  config : config;
  clock : Clock.t;
  transport : Amoeba_rpc.Transport.t;
  nodes : (string, node) Hashtbl.t;
  mutable ring : Ring.t;
  dirty : Shard_map.t;
  directory : (string, entry) Hashtbl.t;
  clients : (string, Client.t) Hashtbl.t; (* keyed "<from>->'<server>" *)
  stats : Stats.t;
  mutable tracer : Trace.ctx option;
  mutable last_hint_us : int;
  mutable hinted_once : bool;
}

exception Unknown_server of string

let create ?(config = default_config) () =
  if config.shards <= 0 then invalid_arg "Cluster.create: shards must be positive";
  if config.replicas <= 0 then invalid_arg "Cluster.create: replicas must be positive";
  let clock = Clock.create () in
  {
    config;
    clock;
    transport = Amoeba_rpc.Transport.create ~clock;
    nodes = Hashtbl.create 8;
    ring = Ring.create ~vnodes:config.vnodes ();
    dirty = Shard_map.create ~shards:config.shards;
    directory = Hashtbl.create 64;
    clients = Hashtbl.create 16;
    stats = Stats.create "cluster";
    tracer = None;
    last_hint_us = 0;
    hinted_once = false;
  }

let config t = t.config

let clock t = t.clock

let transport t = t.transport

let node t name =
  match Hashtbl.find_opt t.nodes name with
  | Some n -> n
  | None -> raise (Unknown_server name)

let status_label = function Alive -> "alive" | Retired -> "retired" | Dead -> "dead"

let servers t =
  List.map
    (fun (name, n) -> (name, n.region, status_label n.status))
    (Tbl.sorted_bindings String.compare t.nodes)

let live_servers t = Ring.members t.ring

let server t name = (node t name).server

let server_mirror t name = (node t name).mirror

(* ---- placement ---- *)

let shard_key i = Printf.sprintf "shard-%03d" i

let shard_of t key =
  Int64.to_int (Int64.unsigned_rem (Ring.position_of key) (Int64.of_int t.config.shards))

let ring t = t.ring

let desired_of_shard t s = Ring.owners t.ring ~r:t.config.replicas (shard_key s)

let desired t key = desired_of_shard t (shard_of t key)

let entry t key =
  match Hashtbl.find_opt t.directory key with Some e -> e | None -> raise Not_found

let holders t key = List.map fst (entry t key).holds

let mem t key = Hashtbl.mem t.directory key

let keys t = Tbl.sorted_keys String.compare t.directory

let objects_total t = Hashtbl.length t.directory

(* ---- clients ---- *)

(* A reader in region [from] talking to [n]'s server: same region is a
   Regional hop, anything else crosses the Wide line. (A station is
   never on a server's own segment, so Local never applies here —
   server-local work is charged by the server itself.) *)
let link_to t ~from name =
  let n = node t name in
  Link.classify ~same_site:false ~same_region:(String.equal from n.region)

let client_for t ~from name =
  let id = from ^ "->" ^ name in
  match Hashtbl.find_opt t.clients id with
  | Some c -> c
  | None ->
    let n = node t name in
    let link = link_to t ~from name in
    let c = Client.connect ~model:(Link.model link) ~link t.transport (Server.port n.server) in
    Hashtbl.replace t.clients id c;
    c

(* ---- membership ---- *)

(* Mark every shard whose desired group changes across [before -> after]:
   the ring delta is by construction exactly the set of groups a
   membership change disturbs, so the rebalancer never touches anything
   else. *)
let mark_delta t ~before ~after =
  let r = t.config.replicas in
  for i = 0 to t.config.shards - 1 do
    let k = shard_key i in
    if Ring.owners before ~r k <> Ring.owners after ~r k then Shard_map.mark t.dirty i
  done

let valid_name name =
  name <> ""
  && String.for_all (fun c -> c <> ' ' && c <> '\t' && c <> '\n' && c <> '=') name

let add_server t ~name ~region =
  if not (valid_name name) then invalid_arg "Cluster.add_server: bad server name";
  if not (valid_name region) then invalid_arg "Cluster.add_server: bad region name";
  if Hashtbl.mem t.nodes name then
    invalid_arg (Printf.sprintf "Cluster.add_server: server %s exists" name);
  let geometry = Amoeba_disk.Geometry.small ~sectors:t.config.server_sectors in
  let d1 = Amoeba_disk.Block_device.create ~id:(name ^ "-1") ~geometry ~clock:t.clock in
  let d2 = Amoeba_disk.Block_device.create ~id:(name ^ "-2") ~geometry ~clock:t.clock in
  let mirror = Amoeba_disk.Mirror.create [ d1; d2 ] in
  Server.format mirror ~max_files:t.config.max_files;
  (* FNV-1a over the server name, as the federation does for sites: the
     same cluster build always mints the same capabilities. *)
  let seed = Prng.seed_of_string name in
  let server =
    match Server.start ~seed mirror with
    | Ok (server, _report) -> server
    | Error e -> failwith (Printf.sprintf "Cluster.add_server: %s: %s" name e)
  in
  Bullet_core.Proto.serve server t.transport;
  Hashtbl.replace t.nodes name
    { name; region; server; mirror; status = Alive; load_hint = 0; routed_since = 0 };
  let before = t.ring in
  t.ring <- Ring.add t.ring name;
  mark_delta t ~before ~after:t.ring;
  Stats.incr t.stats "server_joins"

let kill_server t name =
  let n = node t name in
  if n.status = Dead then raise (Unknown_server name);
  n.status <- Dead;
  Amoeba_rpc.Transport.unregister t.transport (Server.port n.server);
  Server.crash n.server;
  (* its replicas are gone for good: drop them from every entry so the
     directory only ever lists reachable copies *)
  List.iter
    (fun (_key, e) -> e.holds <- List.filter (fun (srv, _) -> srv <> name) e.holds)
    (Tbl.sorted_bindings String.compare t.directory);
  if Ring.mem t.ring name then begin
    let before = t.ring in
    t.ring <- Ring.remove t.ring name;
    mark_delta t ~before ~after:t.ring
  end;
  Stats.incr t.stats "server_kills"

let remove_server t name =
  let n = node t name in
  if n.status <> Alive then raise (Unknown_server name);
  if not (Ring.mem t.ring name) then raise (Unknown_server name);
  n.status <- Retired;
  let before = t.ring in
  t.ring <- Ring.remove t.ring name;
  mark_delta t ~before ~after:t.ring;
  Stats.incr t.stats "server_leaves"

(* ---- load hints ---- *)

let node_reads n =
  let snap = Metrics.scrape (Server.metrics n.server) ~at_us:0 in
  match Metrics.find snap "server.read_us" with
  | Some v -> Metrics.value_int v
  | None -> 0

(* Refresh the per-server hints from live metrics snapshots every
   [route_refresh_us] of virtual time; between refreshes the router adds
   its own routed count on top, so a burst of reads still spreads over
   equal-distance replicas deterministically. *)
let refresh_hints t =
  let now = Clock.now t.clock in
  if (not t.hinted_once) || now - t.last_hint_us >= t.config.route_refresh_us then begin
    t.hinted_once <- true;
    t.last_hint_us <- now;
    List.iter
      (fun (_, n) ->
        if n.status <> Dead then begin
          n.load_hint <- node_reads n;
          n.routed_since <- 0
        end)
      (Tbl.sorted_bindings String.compare t.nodes);
    Stats.incr t.stats "hint_refreshes"
  end

let load_of t name =
  let n = node t name in
  n.load_hint + n.routed_since

(* ---- objects ---- *)

let valid_key key =
  key <> ""
  && String.for_all (fun c -> c <> ' ' && c <> '\t' && c <> '\n' && c <> '=') key

let put t ?(from = "client") ~key data =
  if not (valid_key key) then invalid_arg "Cluster.put: bad key";
  if Hashtbl.mem t.directory key then
    invalid_arg (Printf.sprintf "Cluster.put: key %s exists" key);
  match desired t key with
  | [] -> failwith "Cluster.put: no servers"
  | group ->
    let create srv = (srv, Client.create (client_for t ~from srv) data) in
    let holds = List.sort (fun (a, _) (b, _) -> String.compare a b) (List.map create group) in
    Hashtbl.replace t.directory key { holds }

let alive t srv = (node t srv).status <> Dead

let rank t ~from candidates =
  Federation.rank_replicas
    ~load:(fun srv -> load_of t srv)
    ~link_to:(fun srv -> link_to t ~from srv)
    candidates

(* Copy one replica to [target], reading off the nearest live holder as
   seen from the target's region — the charged server-to-server leg —
   then creating locally at the target. The injector fires scripted
   events at RPC delivery points, so either end can die mid-copy: a
   source that dies under us fails over to the next-ranked holder, a
   target that dies aborts the copy (the kill re-marked every shard
   whose group it changed, so the drain revisits this object with fresh
   membership). Returns whether the copy landed. *)
let copy_to t ~key ~e ~target =
  let tn = node t target in
  let rec read_from = function
    | [] -> None
    | (src, src_cap) :: rest -> (
      match Client.read (client_for t ~from:tn.region src) src_cap with
      | data -> Some (src, data)
      | exception Amoeba_rpc.Status.Error _ when not (alive t src) -> read_from rest)
  in
  let do_copy () =
    if not (alive t target) then None
    else
      match read_from (rank t ~from:tn.region (List.filter (fun (srv, _) -> alive t srv) e.holds)) with
      | None -> None
      | Some (src, data) -> (
        match Client.create (client_for t ~from:tn.region target) data with
        | cap ->
          e.holds <-
            List.sort (fun (a, _) (b, _) -> String.compare a b) ((target, cap) :: e.holds);
          Some src
        | exception Amoeba_rpc.Status.Error _ when not (alive t target) -> None)
  in
  let outcome =
    match t.tracer with
    | None -> do_copy ()
    | Some tr ->
      Trace.in_span tr ~layer:Sink.Server ~name:"cluster.migrate" (fun () ->
          match do_copy () with
          | None -> None
          | Some src ->
            Trace.event tr ~layer:Sink.Server ~name:"cluster.migrate.copied"
              [ ("key", Sink.S key); ("from", Sink.S src); ("to", Sink.S target);
                ("shard", Sink.I (shard_of t key)) ];
            Some src)
  in
  match outcome with
  | None -> false
  | Some _ ->
    Stats.incr t.stats "migrated_objects";
    true

let get t ?(from = "client") key =
  let e = entry t key in
  refresh_hints t;
  (* a replica that dies mid-read (scripted kills fire at delivery
     points) is skipped and the read fails over down the ranking; when
     every candidate died under us, recompute against the shrunk live
     set *)
  let rec attempt () =
    let live = List.filter (fun (srv, _) -> alive t srv) e.holds in
    if live = [] then failwith (Printf.sprintf "Cluster.get: no live replica for %s" key);
    let group = desired t key in
    let preferred = List.filter (fun (srv, _) -> List.mem srv group) live in
    let fallthrough = preferred = [] in
    let rec try_ranked = function
      | [] -> attempt ()
      | (srv, cap) :: rest -> (
        match Client.read (client_for t ~from srv) cap with
        | data -> (srv, fallthrough, data)
        | exception Amoeba_rpc.Status.Error _ when not (alive t srv) -> try_ranked rest)
    in
    try_ranked (rank t ~from (if fallthrough then live else preferred))
  in
  let srv, fallthrough, data = attempt () in
  let n = node t srv in
  n.routed_since <- n.routed_since + 1;
  Stats.incr t.stats "routed_reads";
  (match t.tracer with
  | None -> ()
  | Some tr ->
    Trace.event tr ~layer:Sink.Client ~name:"cluster.route"
      [ ("key", Sink.S key); ("server", Sink.S srv);
        ("link", Sink.S (Link.to_string (link_to t ~from srv)));
        ("fallthrough", Sink.I (if fallthrough then 1 else 0)) ]);
  if fallthrough then begin
    Stats.incr t.stats "fallthroughs";
    (* read-repair one missing desired copy off the measured path, the
       mirror's fall-through discipline one level up: serving traffic
       shrinks the migration backlog instead of waiting behind it *)
    match
      List.filter
        (fun srv -> alive t srv && not (List.mem_assoc srv e.holds))
        (desired t key)
    with
    | [] -> ()
    | target :: _ ->
      if Clock.unobserved t.clock (fun () -> copy_to t ~key ~e ~target) then
        Stats.incr t.stats "read_repairs"
  end;
  data

let delete t ?(from = "client") key =
  let e = entry t key in
  List.iter
    (fun (srv, cap) ->
      if alive t srv then
        try Client.delete (client_for t ~from srv) cap with Amoeba_rpc.Status.Error _ -> ())
    e.holds;
  Hashtbl.remove t.directory key

(* ---- rebalancing ---- *)

let shards_remaining t = Shard_map.remaining t.dirty

let rebalancing t = shards_remaining t > 0

let shard_entries t s =
  List.filter (fun (key, _) -> shard_of t key = s) (Tbl.sorted_bindings String.compare t.directory)

let rebalance_step ?batch t =
  let batch = match batch with Some b -> b | None -> t.config.migrate_batch in
  if batch <= 0 then invalid_arg "Cluster.rebalance_step: batch must be positive";
  match Shard_map.next t.dirty with
  | None -> 0
  | Some s ->
    let group = desired_of_shard t s in
    let copied = ref 0 in
    let complete = ref true in
    let entries = shard_entries t s in
    List.iter
      (fun (key, e) ->
        if !complete then
          List.iter
            (fun target ->
              if not (List.mem_assoc target e.holds) then
                if !copied >= batch then complete := false
                else if copy_to t ~key ~e ~target then incr copied
                else complete := false)
            group)
      entries;
    (* a kill firing mid-step (events trigger at RPC delivery points)
       can change this shard's group under us; leave the bit set and
       drain it against fresh membership next step *)
    if !complete && desired_of_shard t s = group then begin
      (* the shard is wherever the ring wants it: drop surplus copies on
         servers no longer in its group (retired members drain to empty,
         join deltas release the superseded replica) *)
      List.iter
        (fun (_key, e) ->
          let surplus = List.filter (fun (srv, _) -> not (List.mem srv group)) e.holds in
          List.iter
            (fun (srv, cap) ->
              if alive t srv then begin
                let n = node t srv in
                (try Client.delete (client_for t ~from:n.region srv) cap
                 with Amoeba_rpc.Status.Error _ -> ());
                Stats.incr t.stats "surplus_deleted"
              end)
            surplus;
          e.holds <- List.filter (fun (srv, _) -> List.mem srv group) e.holds)
        entries;
      Shard_map.clear t.dirty s;
      Stats.incr t.stats "shards_migrated"
    end;
    !copied

let rebalance ?batch ?(max_steps = 10_000) t =
  let total = ref 0 in
  let steps = ref 0 in
  while rebalancing t && !steps < max_steps do
    total := !total + rebalance_step ?batch t;
    incr steps
  done;
  !total

let under_replicated t =
  let live_count = List.length (Ring.members t.ring) in
  let want = min t.config.replicas (max live_count 1) in
  List.filter_map
    (fun (key, e) ->
      let live = List.filter (fun (srv, _) -> alive t srv) e.holds in
      if List.length live < want then Some key else None)
    (Tbl.sorted_bindings String.compare t.directory)

(* ---- introspection ---- *)

let checkpoint t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# bullet cluster directory v1\n";
  Buffer.add_string buf (Printf.sprintf "shards %d\n" t.config.shards);
  Buffer.add_string buf (Printf.sprintf "replicas %d\n" t.config.replicas);
  List.iter
    (fun (name, region, status) ->
      Buffer.add_string buf (Printf.sprintf "server %s %s %s\n" name region status))
    (servers t);
  List.iter
    (fun (key, e) ->
      Buffer.add_string buf (Printf.sprintf "object %s" key);
      List.iter
        (fun (srv, cap) -> Buffer.add_string buf (Printf.sprintf " %s=%s" srv (Cap.to_string cap)))
        e.holds;
      Buffer.add_char buf '\n')
    (Tbl.sorted_bindings String.compare t.directory);
  Buffer.contents buf

type checkpoint_info = {
  ck_shards : int;
  ck_replicas : int;
  ck_servers : (string * string * string) list;
  ck_objects : (string * (string * Cap.t) list) list;
}

let parse_checkpoint text =
  let err lineno msg = Error (Printf.sprintf "checkpoint line %d: %s" lineno msg) in
  let parse_holder lineno w k =
    match String.index_opt w '=' with
    | None -> err lineno (Printf.sprintf "malformed holder %S" w)
    | Some i -> (
      let srv = String.sub w 0 i in
      let cap_s = String.sub w (i + 1) (String.length w - i - 1) in
      match Cap.of_string cap_s with
      | cap -> k (srv, cap)
      | exception Invalid_argument _ -> err lineno (Printf.sprintf "malformed capability %S" cap_s))
  in
  let rec holders lineno ws acc k =
    match ws with
    | [] -> k (List.rev acc)
    | w :: rest -> parse_holder lineno w @@ fun h -> holders lineno rest (h :: acc) k
  in
  let rec go info lineno = function
    | [] -> Ok { info with ck_objects = List.rev info.ck_objects }
    | line :: rest -> (
      let next info = go info (lineno + 1) rest in
      let words =
        List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.trim line))
      in
      match words with
      | [] -> next info
      | w :: _ when String.length w > 0 && w.[0] = '#' -> next info
      | [ "shards"; n ] -> (
        match int_of_string_opt n with
        | Some n when n > 0 -> next { info with ck_shards = n }
        | _ -> err lineno (Printf.sprintf "bad shard count %S" n))
      | [ "replicas"; n ] -> (
        match int_of_string_opt n with
        | Some n when n > 0 -> next { info with ck_replicas = n }
        | _ -> err lineno (Printf.sprintf "bad replica count %S" n))
      | [ "server"; name; region; status ] ->
        if List.mem status [ "alive"; "retired"; "dead" ] then
          next { info with ck_servers = info.ck_servers @ [ (name, region, status) ] }
        else err lineno (Printf.sprintf "bad server status %S" status)
      | "object" :: key :: hs ->
        holders lineno hs [] @@ fun holds ->
        next { info with ck_objects = (key, holds) :: info.ck_objects }
      | w :: _ -> err lineno (Printf.sprintf "unknown directive %S" w))
  in
  go
    { ck_shards = 0; ck_replicas = 0; ck_servers = []; ck_objects = [] }
    1
    (String.split_on_char '\n' text)

let stats t = t.stats

let register_metrics t reg =
  Metrics.gauge reg "cluster.objects_total" (fun () -> objects_total t);
  Metrics.gauge reg "cluster.under_replicated" (fun () -> List.length (under_replicated t));
  Metrics.gauge reg "cluster.migrations_active" (fun () -> if rebalancing t then 1 else 0);
  Metrics.gauge reg "cluster.shards_remaining" (fun () -> shards_remaining t);
  Metrics.gauge reg "cluster.servers_live" (fun () -> List.length (live_servers t));
  Metrics.stats_source reg ~prefix:"cluster" t.stats

let set_tracer t tr = t.tracer <- tr
