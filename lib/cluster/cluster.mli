(** A sharded multi-server Bullet cluster with replica groups and live
    rebalancing.

    One server scales to N: objects are placed by a deterministic
    consistent-hash {!Ring} over a {e fixed shard space} — the ring
    positions shard ids, an object's shard is a stable hash of its key —
    so a membership change moves exactly the ring-delta shards and
    nothing else. Every object lives on a replica group of R servers; a
    {e cluster directory} maps each key to the capabilities its holders
    minted, and is checkpointed with canonical ordering so dumps stay
    byte-comparable across runs.

    Reads are routed to the nearest, least-loaded replica: candidates
    are ranked with {!Amoeba_wan.Federation.rank_replicas} — link class
    between the reader's region and the server's region first, then a
    live load hint read from the server's {!Amoeba_metrics.Metrics}
    registry (refreshed every [route_refresh_us] of virtual time, with
    reads routed since the refresh added on top), then the name.

    Rebalancing reuses the online sectored-resync pattern one level up:
    a membership change marks the ring-delta shards in a {!Shard_map},
    and {!rebalance_step} drains one shard at a time in bounded object
    batches whose copy RPCs are charged on the virtual clock — stealing
    foreground time rather than happening for free. A foreground read
    whose ring-preferred replicas have not been migrated yet {e falls
    through} to a live holder and read-repairs one missing copy off the
    measured path, so serving traffic shrinks the backlog. A killed
    server's replicas are lost; the delta shards cover exactly the
    under-replicated groups and the same drain restores R copies on the
    survivors. *)

type t

type config = {
  shards : int;  (** fixed shard space the ring places (default 64) *)
  vnodes : int;  (** ring virtual nodes per server *)
  replicas : int;  (** R — copies per object *)
  server_sectors : int;  (** per-server mirrored-drive size *)
  max_files : int;  (** per-server inode table size *)
  migrate_batch : int;  (** object copies per {!rebalance_step} *)
  route_refresh_us : int;  (** load-hint refresh interval (virtual µs) *)
}

val default_config : config
(** 64 shards, 64 vnodes, R = 2, 4096-sector drives, 255 inodes, 4
    copies per step, 50 ms hint refresh. *)

val create : ?config:config -> unit -> t
(** An empty cluster with a fresh virtual clock and shared transport —
    no servers yet. *)

val config : t -> config

val clock : t -> Amoeba_sim.Clock.t

val transport : t -> Amoeba_rpc.Transport.t
(** The shared transport — where a fault injector attaches. *)

(** {1 Membership} *)

val add_server : t -> name:string -> region:string -> unit
(** Boot a Bullet server (two mirrored drives, seed =
    [Prng.seed_of_string name] so its capabilities are byte-stable) and
    join it to the ring; the ring-delta shards are marked dirty for the
    rebalancer. Raises [Invalid_argument] if the name is taken or
    contains whitespace. *)

val kill_server : t -> string -> unit
(** Permanent failure: the port is unregistered, the server crashed,
    the member removed from the ring and its replicas dropped from
    every directory entry (they are gone). The delta shards — exactly
    the groups the dead server belonged to — are marked for the
    rebalancer to re-replicate on the survivors. Raises
    {!Unknown_server}. *)

val remove_server : t -> string -> unit
(** Graceful leave: the member leaves the ring (so no new placement
    targets it) but keeps serving reads while the rebalancer drains its
    shards; once drained it holds nothing. Raises {!Unknown_server}. *)

exception Unknown_server of string

val servers : t -> (string * string * string) list
(** Every server ever added, sorted by name: [(name, region, status)]
    with status ["alive"], ["retired"] (left the ring, still serving)
    or ["dead"]. *)

val live_servers : t -> string list
(** Ring members, sorted. *)

val server : t -> string -> Bullet_core.Server.t
(** The named server — for fsck-style inspection and hand-seeding
    faults in tests. Raises {!Unknown_server}. *)

val server_mirror : t -> string -> Amoeba_disk.Mirror.t
(** The named server's replica drive set. Raises {!Unknown_server}. *)

(** {1 Objects} *)

val put : t -> ?from:string -> key:string -> bytes -> unit
(** Create the object on every server of its shard's replica group,
    charging each create at the link between the writer's region
    ([from], default ["client"]) and the server's. Raises
    [Invalid_argument] on an empty key, a key containing whitespace or
    ['='], or a key already present (objects are immutable). *)

val get : t -> ?from:string -> string -> bytes
(** Route the read: candidates are the live holders, preferring the
    ring-desired replicas; ranked nearest-first by link class from
    [from]'s region, then by live load hint, then by name. When no
    ring-desired replica holds the object yet (mid-migration) the read
    {e falls through} to a live holder and read-repairs one missing
    desired copy off the measured path. A replica that dies mid-read
    (scripted kills fire at RPC delivery points) is skipped and the
    read fails over down the ranking. Raises [Not_found] for an
    unknown key and [Failure] when no live replica remains (data
    loss — the fault experiments assert this never happens while any
    member of each group survives). *)

val delete : t -> ?from:string -> string -> unit
(** Delete every live replica and drop the directory entry. Raises
    [Not_found]. *)

val mem : t -> string -> bool

val keys : t -> string list
(** Sorted. *)

val objects_total : t -> int

val shard_of : t -> string -> int
(** The shard an object key hashes to. *)

val shard_key : int -> string
(** The ring key for a shard id — what the ring actually places;
    exposed so experiments can assert ring deltas exactly. *)

val ring : t -> Ring.t

val desired : t -> string -> string list
(** The ring-desired replica group of a key, preference order first. *)

val holders : t -> string -> string list
(** Servers currently holding a replica, sorted. Raises [Not_found]. *)

(** {1 Rebalancing} *)

val rebalance_step : ?batch:int -> t -> int
(** Drain one bounded slice of the dirty-shard backlog: take the next
    dirty shard, copy at most [batch] (default [migrate_batch]) missing
    replicas to their ring-desired servers — each copy a charged read
    off the nearest live holder plus a charged create on the target —
    and, once the shard needs nothing more, delete surplus copies on
    servers no longer in its groups and clear its bit. Returns the
    number of objects copied; [0] means nothing was dirty. An
    interrupted shard resumes exactly where it stopped. *)

val rebalance : ?batch:int -> ?max_steps:int -> t -> int
(** Run {!rebalance_step} until the backlog is empty (or [max_steps],
    default 10,000, a runaway guard). Returns total objects copied. *)

val rebalancing : t -> bool

val shards_remaining : t -> int
(** Dirty shards — the rebalance backlog, and the payload of the
    [Rebalancing] health state. *)

val under_replicated : t -> string list
(** Keys with fewer live replicas than [min replicas (live servers)],
    sorted — the fsck cross-check, zero after a completed heal. *)

(** {1 Introspection} *)

val checkpoint : t -> string
(** The cluster directory in canonical text form: header, then servers
    sorted by name, then objects sorted by key with holders sorted by
    server — byte-comparable across runs by construction. *)

type checkpoint_info = {
  ck_shards : int;
  ck_replicas : int;
  ck_servers : (string * string * string) list;  (** name, region, status *)
  ck_objects : (string * (string * Amoeba_cap.Capability.t) list) list;
      (** key, then (server, capability) holders *)
}

val parse_checkpoint : string -> (checkpoint_info, string) result
(** Inverse of {!checkpoint} — what [bullet_fsck --cluster] and
    [bullet_ctl cluster] load. *)

val stats : t -> Amoeba_sim.Stats.t
(** Counters: [server_joins], [server_kills], [server_leaves],
    [routed_reads], [fallthroughs], [read_repairs], [migrated_objects],
    [shards_migrated], [surplus_deleted], [hint_refreshes]. *)

val register_metrics : t -> Amoeba_metrics.Metrics.t -> unit
(** Register the cluster's live surface: [cluster.objects_total],
    [cluster.under_replicated], [cluster.migrations_active],
    [cluster.shards_remaining] and [cluster.servers_live] gauges plus
    every {!stats} counter under the [cluster.] prefix. The
    [cluster.shards_remaining] gauge is what drives the [Rebalancing]
    health state. *)

val set_tracer : t -> Amoeba_trace.Trace.ctx option -> unit
(** Install the tracer: routed reads emit [cluster.route] events (key,
    server, link, fallthrough flag) and each migrated object copy runs
    in a [cluster.migrate] span (key, source, target, shard). [None]
    restores the exact untraced paths. *)
