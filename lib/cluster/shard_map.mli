(** Dirty-shard tracking for cluster rebalancing.

    The cluster analogue of {!Amoeba_disk.Dirty}: one bit per shard of
    the fixed shard space plus a circular scan cursor. A shard is
    {e dirty} when its desired replica group (from the ring) may differ
    from where its objects actually sit — a membership change marks
    exactly the ring-delta shards, and the rebalancer drains them one
    bounded batch at a time while foreground reads fall through to live
    holders.

    Pure data, no clock, no randomness — a rebalance schedule is a
    deterministic function of the mark/clear history. *)

type t

val create : shards:int -> t
(** All-clean map over a shard space of [shards] shards. Raises
    [Invalid_argument] when [shards <= 0]. *)

val shards : t -> int

val remaining : t -> int
(** Number of dirty shards — the rebalance backlog. *)

val mark : t -> int -> unit
(** Mark one shard dirty (idempotent). Raises [Invalid_argument] when
    out of range. *)

val clear : t -> int -> unit
(** Mark one shard clean: its objects are where the ring says. *)

val is_dirty : t -> int -> bool

val next : t -> int option
(** The next dirty shard, scanning circularly from where the previous
    {!next} found one; [None] when nothing is dirty. Does {e not} clear
    it — the caller clears once the shard's objects have actually been
    migrated, and an uncleared shard is returned again so a rebalancer
    interrupted mid-shard resumes exactly where it stopped. *)
