module Prng = Amoeba_sim.Prng

(* Points are sorted by (unsigned position, member, vnode index): the
   two trailing components only break exact 64-bit collisions, but that
   tie-break is what keeps the walk order a pure function of the member
   set. *)
type point = { pos : int64; member : string; index : int }

type t = {
  vnodes : int;
  members : string list; (* sorted *)
  points : point array; (* sorted *)
}

let compare_point a b =
  match Int64.unsigned_compare a.pos b.pos with
  | 0 -> (
    match String.compare a.member b.member with
    | 0 -> Int.compare a.index b.index
    | c -> c)
  | c -> c

(* FNV-1a alone has no trailing-byte avalanche — "a#1" and "a#2" land a
   fixed FNV-prime stride apart, which would pile every similarly-named
   key on one arc — so positions push the name-derived seed through one
   SplitMix64 step, mixing every bit while staying compiler-stable. *)
let position_of s = Prng.next_int64 (Prng.of_name s)

let create ?(vnodes = 16) () =
  if vnodes <= 0 then invalid_arg "Ring.create: vnodes must be positive";
  { vnodes; members = []; points = [||] }

let vnodes t = t.vnodes

let mem t name = List.exists (String.equal name) t.members

let members t = t.members

let size t = List.length t.members

let rebuild vnodes members =
  let point member index =
    { pos = position_of (Printf.sprintf "%s#%d" member index); member; index }
  in
  let points =
    Array.of_list (List.concat_map (fun m -> List.init vnodes (point m)) members)
  in
  Array.sort compare_point points;
  { vnodes; members; points }

let add t name =
  if name = "" then invalid_arg "Ring.add: empty member name";
  if mem t name then invalid_arg (Printf.sprintf "Ring.add: member %s exists" name);
  rebuild t.vnodes (List.sort String.compare (name :: t.members))

let remove t name =
  if not (mem t name) then invalid_arg (Printf.sprintf "Ring.remove: unknown member %s" name);
  rebuild t.vnodes (List.filter (fun m -> not (String.equal m name)) t.members)

(* First point at or clockwise-after the key's position (wrapping). *)
let successor t pos =
  let n = Array.length t.points in
  let rec search lo hi =
    (* invariant: answer is in [lo, hi], where hi = n means "wraps to 0" *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Int64.unsigned_compare t.points.(mid).pos pos >= 0 then search lo mid
      else search (mid + 1) hi
  in
  let i = search 0 n in
  if i >= n then 0 else i

let owners t ~r key =
  if r <= 0 then invalid_arg "Ring.owners: r must be positive";
  let n = Array.length t.points in
  if n = 0 then []
  else begin
    let want = min r (size t) in
    let start = successor t (position_of key) in
    let rec walk i picked =
      if List.length picked >= want then List.rev picked
      else
        let m = t.points.((start + i) mod n).member in
        walk (i + 1) (if List.exists (String.equal m) picked then picked else m :: picked)
    in
    walk 0 []
  end

let moved ~before ~after ~r keys =
  List.filter (fun k -> owners before ~r k <> owners after ~r k) keys
