(** Operation counters and duration summaries.

    Each simulated component (disk, network, server) keeps a [Stats.t] so
    experiments can report how many physical operations an API call cost —
    e.g. that a cached Bullet read performs zero disk transfers. *)

type t
(** A named collection of counters and samples. *)

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
}
(** Summary of an observed sample series; [min]/[max]/[mean] are 0 when
    [count] is 0. *)

module Hist : sig
  (** Fixed-bucket log2 latency histogram: exact counts (no sampling),
      mergeable, integer-only on the record path so hot loops can record
      without boxing.  Bucket 0 holds values [<= 0]; bucket [k] holds
      [2^(k-1), 2^k). *)

  type t

  val create : unit -> t
  val record : t -> int -> unit

  val merge : into:t -> t -> unit
  (** Add [src]'s buckets and moments into [into]; exact (unlike merging
      two reservoirs). *)

  val count : t -> int
  val sum : t -> int
  val min_value : t -> int
  val max_value : t -> int
  val mean : t -> float

  val percentile : t -> float -> int
  (** Nearest-rank (same 0-based [q*(n-1)] convention as
      {!Stats.percentile}): the upper bound of the bucket holding that
      rank, clamped to the observed min/max.  Exact at the extremes,
      within 2x in between.  0 for an empty histogram. *)

  val buckets : t -> (int * int * int) list
  (** Non-empty buckets as [(lo, hi, count)], ascending. *)
end

val create : ?seed:int -> string -> t
(** [create name] is an empty collection labelled [name] in reports.
    [seed] (default a fixed constant) seeds the private xorshift that
    drives reservoir replacement once a series exceeds its retention cap;
    two collections built with the same seed and fed identical
    observations report identical percentiles.  A seed of 0 is replaced
    by the default (xorshift's fixed point). *)

val name : t -> string

val incr : t -> string -> unit
(** Bump the named counter by one. *)

val add : t -> string -> int -> unit
(** Bump the named counter by [n]. *)

val count : t -> string -> int
(** Current value of the named counter (0 if never bumped). *)

val observe : t -> string -> float -> unit
(** Record one sample of the named series. *)

val summary : t -> string -> summary
(** Summarise the named series (all-zero summary if never observed). *)

val percentile : t -> string -> float -> float
(** [percentile t key q] for [q] in [\[0, 1\]] (nearest-rank over the
    retained samples; series retain up to 65536 samples, after which new
    observations replace random earlier ones — reservoir sampling).
    Returns 0 for an empty series. *)

val hist : t -> string -> Hist.t
(** The named histogram, created empty on first use.  Hold on to the
    result when recording from a hot loop — the lookup allocates, the
    returned handle does not. *)

val record : t -> string -> int -> unit
(** Record one integer sample (e.g. a duration in µs) into the named
    histogram. *)

val hists : t -> (string * Hist.t) list
(** All histograms, sorted by name. *)

val reset : t -> unit
(** Clear all counters, samples and histograms. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val pp : Format.formatter -> t -> unit
(** Render counters one per line, for debug output. *)
