(** Operation counters and duration summaries.

    Each simulated component (disk, network, server) keeps a [Stats.t] so
    experiments can report how many physical operations an API call cost —
    e.g. that a cached Bullet read performs zero disk transfers. *)

type t
(** A named collection of counters and samples. *)

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
}
(** Summary of an observed sample series; [min]/[max]/[mean] are 0 when
    [count] is 0. *)

val create : string -> t
(** [create name] is an empty collection labelled [name] in reports. *)

val name : t -> string

val incr : t -> string -> unit
(** Bump the named counter by one. *)

val add : t -> string -> int -> unit
(** Bump the named counter by [n]. *)

val count : t -> string -> int
(** Current value of the named counter (0 if never bumped). *)

val observe : t -> string -> float -> unit
(** Record one sample of the named series. *)

val summary : t -> string -> summary
(** Summarise the named series (all-zero summary if never observed). *)

val percentile : t -> string -> float -> float
(** [percentile t key q] for [q] in [\[0, 1\]] (nearest-rank over the
    retained samples; series retain up to 65536 samples, after which new
    observations replace random earlier ones — reservoir sampling).
    Returns 0 for an empty series. *)

val reset : t -> unit
(** Clear all counters and samples. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val pp : Format.formatter -> t -> unit
(** Render counters one per line, for debug output. *)
