type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

(* FNV-1a, 64-bit. [Hashtbl.hash] is explicitly unspecified across
   compiler versions, so names must never be turned into seeds with it;
   this fold is the stable replacement. *)
let fnv_offset_basis = 0xCBF29CE484222325L

let fnv_prime = 0x100000001B3L

let seed_of_string name =
  let h = ref fnv_offset_basis in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    name;
  !h

let of_name name = create ~seed:(seed_of_string name)

(* SplitMix64 finalizer: Stafford's mix13 constants. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int. *)
  let raw = Int64.to_int (Int64.logand (next_int64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  raw mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. raw /. 9007199254740992. (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = if p <= 0. then false else if p >= 1. then true else float t 1. < p

let bytes t n =
  let buffer = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set buffer i (Char.unsafe_chr (int t 256))
  done;
  buffer

let split t = { state = next_int64 t }
