(** Deterministic pseudo-random numbers (SplitMix64).

    Capability check fields, workload generation and fault injection all
    need random numbers that are reproducible run-to-run; the stdlib
    [Random] state is global and easily perturbed, so each component owns
    a [Prng.t] seeded explicitly. *)

type t
(** A self-contained SplitMix64 generator state. *)

val create : seed:int64 -> t
(** A generator with the given seed; equal seeds yield equal streams. *)

val seed_of_string : string -> int64
(** FNV-1a (64-bit) fold over the string. Use this — never
    [Hashtbl.hash], whose output is unspecified across compiler
    versions — when a component derives its seed from a name. The empty
    string maps to the FNV offset basis [0xCBF29CE484222325]. *)

val of_name : string -> t
(** [of_name s] is [create ~seed:(seed_of_string s)]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. [p <= 0] never draws
    from the stream's tail cases deterministically: outside [(0, 1)] the
    result is decided without consuming a draw. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] random bytes. *)

val split : t -> t
(** An independent generator derived from [t]; advancing one does not
    perturb the other. *)
