type t = { mutable now_us : int }

let create () = { now_us = 0 }

let now clock = clock.now_us

let advance clock us =
  if us < 0 then invalid_arg "Clock.advance: negative duration";
  clock.now_us <- clock.now_us + us

let advance_to clock t = if t > clock.now_us then clock.now_us <- t

let reset clock = clock.now_us <- 0

let parallel clock fs =
  let start = clock.now_us in
  let run_from_start f =
    clock.now_us <- start;
    let result = f () in
    let finish = clock.now_us in
    (result, finish)
  in
  let results = List.map run_from_start fs in
  let latest = List.fold_left (fun acc (_, t) -> max acc t) start results in
  clock.now_us <- latest;
  List.map fst results

let unobserved clock f =
  let start = clock.now_us in
  let finish () = clock.now_us <- start in
  match f () with
  | result ->
    finish ();
    result
  | exception e ->
    finish ();
    raise e

let elapsed clock f =
  let start = clock.now_us in
  let result = f () in
  (result, clock.now_us - start)

let to_ms us = float_of_int us /. 1000.

let pp_us ppf us = Format.fprintf ppf "%.2f ms" (to_ms us)
