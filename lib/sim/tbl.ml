(* Hash tables hash with [Hashtbl.hash], so their iteration order is a
   function of the hash implementation and the insertion/resize history —
   never something a deterministic simulation may observe. These helpers
   are the blessed way to walk a table: materialise the bindings, sort by
   key under an explicit comparison, then iterate. *)

let sorted_bindings cmp table =
  (* lint: allow vet-taint-persist the fold feeds List.sort under an explicit comparison, so the hash order is never observable *)
  List.sort (fun (a, _) (b, _) -> cmp a b) (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])

let sorted_keys cmp table =
  (* lint: allow vet-taint-persist the fold feeds List.sort under an explicit comparison, so the hash order is never observable *)
  List.sort cmp (Hashtbl.fold (fun k _ acc -> k :: acc) table [])

let sorted_iter cmp f table = List.iter (fun (k, v) -> f k v) (sorted_bindings cmp table)
