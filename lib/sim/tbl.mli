(** Deterministic iteration over [Hashtbl.t].

    [Hashtbl]'s own [iter]/[fold] visit bindings in hash-bucket order,
    which depends on the unspecified [Hashtbl.hash] and on the table's
    resize history. Any code whose observable behaviour (persisted
    bytes, simulated event order, disk write order) depends on that
    order breaks the repo's same-plan ⇒ same-bytes invariant — the
    [no-hashtbl-iteration] lint rule flags it. Walk tables through these
    helpers instead: they snapshot the bindings and sort them under an
    explicit key comparison. *)

val sorted_bindings : ('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings, sorted by key under the given comparison. *)

val sorted_keys : ('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** All keys, sorted under the given comparison. *)

val sorted_iter : ('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [sorted_iter cmp f table] applies [f] to every binding in ascending
    key order. *)
