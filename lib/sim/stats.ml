(* tiny private xorshift for reservoir sampling, so Stats does not need
   a Prng instance threaded in *)
module Rng = struct
  type t = { mutable state : int }

  let default_seed = 0x9E3779B9

  let create ?(seed = default_seed) () =
    (* xorshift has a fixed point at 0; land max_int keeps the state in
       the positive range [next] expects *)
    let seed = seed land max_int in
    { state = (if seed = 0 then default_seed else seed) }

  let next t bound =
    let x = t.state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    t.state <- x land max_int;
    t.state mod bound
end

(* Fixed-bucket log2 histograms: exact bucket counts (no sampling), cheap
   to merge, and integer-only on the record path so a hot loop can record
   without boxing a float.  Bucket 0 holds values <= 0; bucket k holds
   [2^(k-1), 2^k).  Designed for microsecond latencies: 62 buckets cover
   the whole positive int range. *)
module Hist = struct
  let bucket_count = 63

  type t = {
    counts : int array;
    mutable h_count : int;
    mutable h_sum : int;
    mutable h_min : int;
    mutable h_max : int;
  }

  let create () =
    { counts = Array.make bucket_count 0; h_count = 0; h_sum = 0; h_min = max_int; h_max = min_int }

  let bucket_of v =
    if v <= 0 then 0
    else begin
      let k = ref 0 in
      while v lsr !k <> 0 do
        Stdlib.incr k
      done;
      min !k (bucket_count - 1)
    end

  let record t v =
    let b = t.counts.(bucket_of v) in
    t.counts.(bucket_of v) <- b + 1;
    t.h_count <- t.h_count + 1;
    t.h_sum <- t.h_sum + v;
    if v < t.h_min then t.h_min <- v;
    if v > t.h_max then t.h_max <- v

  let count t = t.h_count
  let sum t = t.h_sum
  let min_value t = if t.h_count = 0 then 0 else t.h_min
  let max_value t = if t.h_count = 0 then 0 else t.h_max
  let mean t = if t.h_count = 0 then 0. else float_of_int t.h_sum /. float_of_int t.h_count

  let merge ~into src =
    Array.iteri (fun i n -> into.counts.(i) <- into.counts.(i) + n) src.counts;
    into.h_count <- into.h_count + src.h_count;
    into.h_sum <- into.h_sum + src.h_sum;
    if src.h_count > 0 then begin
      if src.h_min < into.h_min then into.h_min <- src.h_min;
      if src.h_max > into.h_max then into.h_max <- src.h_max
    end

  (* Nearest-rank over the buckets, mirroring [percentile]'s convention on
     the reservoir: 0-based rank q*(n-1).  The answer is the upper bound
     of the bucket holding that rank, clamped to the observed [min, max] —
     exact for the extremes, within a factor of two in between. *)
  let percentile t q =
    if t.h_count = 0 then 0
    else begin
      let q = Float.max 0. (Float.min 1. q) in
      let rank = int_of_float (q *. float_of_int (t.h_count - 1)) in
      let bucket = ref 0 in
      let seen = ref 0 in
      (try
         for i = 0 to bucket_count - 1 do
           seen := !seen + t.counts.(i);
           if !seen > rank then begin
             bucket := i;
             raise Exit
           end
         done
       with Exit -> ());
      let upper = if !bucket = 0 then 0 else (1 lsl !bucket) - 1 in
      Stdlib.max t.h_min (Stdlib.min upper t.h_max)
    end

  let buckets t =
    let out = ref [] in
    for i = bucket_count - 1 downto 0 do
      if t.counts.(i) > 0 then begin
        let lo = if i = 0 then min_int else 1 lsl (i - 1) in
        let hi = if i = 0 then 0 else (1 lsl i) - 1 in
        out := (lo, hi, t.counts.(i)) :: !out
      end
    done;
    !out
end

type series = {
  mutable s_count : int;
  mutable s_sum : float;
  mutable s_min : float;
  mutable s_max : float;
  mutable samples : float array; (* reservoir, grows to [reservoir_cap] *)
  mutable sample_count : int; (* live entries in [samples] *)
}

type t = {
  label : string;
  counts : (string, int ref) Hashtbl.t;
  series_table : (string, series) Hashtbl.t;
  hist_table : (string, Hist.t) Hashtbl.t;
  reservoir_rng : Rng.t;
}

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
}

let reservoir_cap = 65_536

let create ?seed label =
  {
    label;
    counts = Hashtbl.create 16;
    series_table = Hashtbl.create 16;
    hist_table = Hashtbl.create 16;
    reservoir_rng = Rng.create ?seed ();
  }

let name t = t.label

let counter t key =
  match Hashtbl.find_opt t.counts key with
  | Some cell -> cell
  | None ->
    let cell = ref 0 in
    Hashtbl.add t.counts key cell;
    cell

let incr t key = Stdlib.incr (counter t key)

let add t key n =
  let cell = counter t key in
  cell := !cell + n

let count t key = match Hashtbl.find_opt t.counts key with Some c -> !c | None -> 0

let series t key =
  match Hashtbl.find_opt t.series_table key with
  | Some s -> s
  | None ->
    let s =
      {
        s_count = 0;
        s_sum = 0.;
        s_min = infinity;
        s_max = neg_infinity;
        samples = Array.make 64 0.;
        sample_count = 0;
      }
    in
    Hashtbl.add t.series_table key s;
    s

let observe t key v =
  let s = series t key in
  s.s_count <- s.s_count + 1;
  s.s_sum <- s.s_sum +. v;
  if v < s.s_min then s.s_min <- v;
  if v > s.s_max then s.s_max <- v;
  if s.sample_count < reservoir_cap then begin
    if s.sample_count = Array.length s.samples then begin
      let bigger = Array.make (min reservoir_cap (2 * Array.length s.samples)) 0. in
      Array.blit s.samples 0 bigger 0 s.sample_count;
      s.samples <- bigger
    end;
    s.samples.(s.sample_count) <- v;
    s.sample_count <- s.sample_count + 1
  end
  else begin
    (* reservoir sampling: replace a random slot with probability cap/n *)
    let slot = Rng.next t.reservoir_rng s.s_count in
    if slot < reservoir_cap then s.samples.(slot) <- v
  end

let summary t key =
  match Hashtbl.find_opt t.series_table key with
  | None -> { count = 0; sum = 0.; min = 0.; max = 0.; mean = 0. }
  | Some { s_count = 0; _ } -> { count = 0; sum = 0.; min = 0.; max = 0.; mean = 0. }
  | Some s ->
    {
      count = s.s_count;
      sum = s.s_sum;
      min = s.s_min;
      max = s.s_max;
      mean = s.s_sum /. float_of_int s.s_count;
    }

let percentile t key q =
  match Hashtbl.find_opt t.series_table key with
  | None -> 0.
  | Some s when s.sample_count = 0 -> 0.
  | Some s ->
    let sorted = Array.sub s.samples 0 s.sample_count in
    Array.sort Float.compare sorted;
    let q = Float.max 0. (Float.min 1. q) in
    let rank = int_of_float (q *. float_of_int (s.sample_count - 1)) in
    sorted.(rank)

let hist t key =
  match Hashtbl.find_opt t.hist_table key with
  | Some h -> h
  | None ->
    let h = Hist.create () in
    Hashtbl.add t.hist_table key h;
    h

let record t key v = Hist.record (hist t key) v

let hists t =
  Hashtbl.fold (fun key h acc -> (key, h) :: acc) t.hist_table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Hashtbl.reset t.counts;
  Hashtbl.reset t.series_table;
  Hashtbl.reset t.hist_table

let counters t =
  Hashtbl.fold (fun key cell acc -> (key, !cell) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  Format.fprintf ppf "@[<v>%s:" t.label;
  let pp_counter (key, v) = Format.fprintf ppf "@,  %-24s %d" key v in
  List.iter pp_counter (counters t);
  Format.fprintf ppf "@]"
