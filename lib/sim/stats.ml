(* tiny private xorshift for reservoir sampling, so Stats does not need
   a Prng instance threaded in *)
module Rng = struct
  type t = { mutable state : int }

  let create () = { state = 0x9E3779B9 }

  let next t bound =
    let x = t.state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    t.state <- x land max_int;
    t.state mod bound
end

type series = {
  mutable s_count : int;
  mutable s_sum : float;
  mutable s_min : float;
  mutable s_max : float;
  mutable samples : float array; (* reservoir, grows to [reservoir_cap] *)
  mutable sample_count : int; (* live entries in [samples] *)
}

type t = {
  label : string;
  counts : (string, int ref) Hashtbl.t;
  series_table : (string, series) Hashtbl.t;
  reservoir_rng : Rng.t;
}

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
}

let reservoir_cap = 65_536

let create label =
  {
    label;
    counts = Hashtbl.create 16;
    series_table = Hashtbl.create 16;
    reservoir_rng = Rng.create ();
  }

let name t = t.label

let counter t key =
  match Hashtbl.find_opt t.counts key with
  | Some cell -> cell
  | None ->
    let cell = ref 0 in
    Hashtbl.add t.counts key cell;
    cell

let incr t key = Stdlib.incr (counter t key)

let add t key n =
  let cell = counter t key in
  cell := !cell + n

let count t key = match Hashtbl.find_opt t.counts key with Some c -> !c | None -> 0

let series t key =
  match Hashtbl.find_opt t.series_table key with
  | Some s -> s
  | None ->
    let s =
      {
        s_count = 0;
        s_sum = 0.;
        s_min = infinity;
        s_max = neg_infinity;
        samples = Array.make 64 0.;
        sample_count = 0;
      }
    in
    Hashtbl.add t.series_table key s;
    s

let observe t key v =
  let s = series t key in
  s.s_count <- s.s_count + 1;
  s.s_sum <- s.s_sum +. v;
  if v < s.s_min then s.s_min <- v;
  if v > s.s_max then s.s_max <- v;
  if s.sample_count < reservoir_cap then begin
    if s.sample_count = Array.length s.samples then begin
      let bigger = Array.make (min reservoir_cap (2 * Array.length s.samples)) 0. in
      Array.blit s.samples 0 bigger 0 s.sample_count;
      s.samples <- bigger
    end;
    s.samples.(s.sample_count) <- v;
    s.sample_count <- s.sample_count + 1
  end
  else begin
    (* reservoir sampling: replace a random slot with probability cap/n *)
    let slot = Rng.next t.reservoir_rng s.s_count in
    if slot < reservoir_cap then s.samples.(slot) <- v
  end

let summary t key =
  match Hashtbl.find_opt t.series_table key with
  | None -> { count = 0; sum = 0.; min = 0.; max = 0.; mean = 0. }
  | Some { s_count = 0; _ } -> { count = 0; sum = 0.; min = 0.; max = 0.; mean = 0. }
  | Some s ->
    {
      count = s.s_count;
      sum = s.s_sum;
      min = s.s_min;
      max = s.s_max;
      mean = s.s_sum /. float_of_int s.s_count;
    }

let percentile t key q =
  match Hashtbl.find_opt t.series_table key with
  | None -> 0.
  | Some s when s.sample_count = 0 -> 0.
  | Some s ->
    let sorted = Array.sub s.samples 0 s.sample_count in
    Array.sort Float.compare sorted;
    let q = Float.max 0. (Float.min 1. q) in
    let rank = int_of_float (q *. float_of_int (s.sample_count - 1)) in
    sorted.(rank)

let reset t =
  Hashtbl.reset t.counts;
  Hashtbl.reset t.series_table

let counters t =
  Hashtbl.fold (fun key cell acc -> (key, !cell) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  Format.fprintf ppf "@[<v>%s:" t.label;
  let pp_counter (key, v) = Format.fprintf ppf "@,  %-24s %d" key v in
  List.iter pp_counter (counters t);
  Format.fprintf ppf "@]"
