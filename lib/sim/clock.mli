(** Virtual simulated time.

    All timing in the simulated Amoeba substrate flows through a [Clock.t]:
    components (network, disk, CPU models) charge elapsed time by calling
    {!advance}, and experiments read {!now} before and after an operation.
    Time is counted in integer microseconds, which keeps measurements exact
    and deterministic across runs. *)

type t
(** A mutable virtual clock. *)

val create : unit -> t
(** A fresh clock at time 0. *)

val now : t -> int
(** Current virtual time in microseconds. *)

val advance : t -> int -> unit
(** [advance clock us] moves the clock forward by [us] microseconds.
    Raises [Invalid_argument] if [us] is negative. *)

val advance_to : t -> int -> unit
(** [advance_to clock t] sets the clock to [max (now clock) t]; used when an
    operation completes at an absolute time (e.g. the end of a parallel
    batch). *)

val reset : t -> unit
(** Set the clock back to 0. *)

val parallel : t -> (unit -> 'a) list -> 'a list
(** [parallel clock fs] runs each thunk starting from the same instant and
    sets the clock to the *latest* completion time, modelling operations
    that proceed concurrently (e.g. mirrored disk writes issued together).
    Results are returned in order. *)

val unobserved : t -> (unit -> 'a) -> 'a
(** [unobserved clock f] runs [f] and then restores the clock to its prior
    value: the work happens (state changes, statistics accrue) but its
    duration is off the measured critical path. Models background activity
    such as write-behind to replicas beyond the P-FACTOR. *)

val elapsed : t -> (unit -> 'a) -> 'a * int
(** [elapsed clock f] runs [f] and returns its result together with the
    virtual time it consumed. *)

val pp_us : Format.formatter -> int -> unit
(** Pretty-print a duration in microseconds as milliseconds,
    e.g. [12.3 ms]. *)

val to_ms : int -> float
(** Microseconds to (floating-point) milliseconds. *)
