(** A binary-heap event queue for discrete-event simulation.

    Events order by (time, priority, sequence); the sequence number is
    the insertion order and breaks every remaining tie, so simultaneous
    events pop in insertion order and the simulation stays
    deterministic. [prio] defaults to 0, making the order identical to
    the historical (time, sequence) heap unless a caller opts in.

    {2 The tie-race sanitizer}

    Deterministic is not the same as meant: two events at the same
    (time, priority) pop in whatever order the code happened to push
    them, which is a latent race against refactorings. With the
    sanitizer enabled ([AMOEBA_TIE_CHECK=1] in the environment, or
    [set_tie_check true] — dune runtest and the CI determinism jobs do)
    every such collision must carry an explicit [?pin] sequence number,
    strictly increasing in insertion order; violations are accumulated
    as {!tie} reports naming the [?site] of both events. The check is
    purely observational — it never changes the pop order — so enabling
    it cannot change a simulation's bytes. *)

type 'a t

val create : unit -> 'a t

val push : ?prio:int -> ?pin:int -> ?site:string -> 'a t -> time:int -> 'a -> unit
(** Schedule a payload at an absolute time (µs). [prio] breaks same-time
    ties ahead of insertion order (lower pops first; default 0). [pin]
    asserts this event's place among same-(time, prio) events: within a
    collision set, pins must be strictly increasing in insertion order.
    [site] names the scheduling site in tie reports. *)

val pop : 'a t -> (int * 'a) option
(** Earliest event, or [None] when empty. *)

val peek_time : 'a t -> int option

val size : 'a t -> int

val is_empty : 'a t -> bool

(** {2 Sanitizer state (process-global)} *)

type tie = {
  tie_at : int;
  tie_prio : int;
  tie_first : string;  (** earlier-queued site, or ["<unpinned>"] *)
  tie_second : string;
  tie_reason : string;
}

val set_tie_check : bool -> unit
(** Also enabled at startup when [AMOEBA_TIE_CHECK] is [1]/[true]/[yes]. *)

val tie_check_enabled : unit -> bool

val ties : unit -> tie list
(** Every violation recorded since the last [clear_ties], oldest first. *)

val clear_ties : unit -> unit

val tie_to_string : tie -> string
