(** A binary-heap event queue for discrete-event simulation.

    Events are (time, sequence, payload); the sequence number breaks
    ties so simultaneous events pop in insertion order, keeping the
    simulation deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:int -> 'a -> unit
(** Schedule a payload at an absolute time (µs). *)

val pop : 'a t -> (int * 'a) option
(** Earliest event, or [None] when empty. *)

val peek_time : 'a t -> int option

val size : 'a t -> int

val is_empty : 'a t -> bool
