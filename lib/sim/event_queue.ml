type 'a entry = { at : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* min-heap on (at, seq); slot 0 unused *)
  mutable count : int;
  mutable next_seq : int;
}

let create () = { heap = Array.make 16 (Obj.magic 0); count = 0; next_seq = 0 }

let less a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 1 then begin
    let parent = i / 2 in
    if less t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = 2 * i and right = (2 * i) + 1 in
  let smallest = ref i in
  if left <= t.count && less t.heap.(left) t.heap.(!smallest) then smallest := left;
  if right <= t.count && less t.heap.(right) t.heap.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time payload =
  if time < 0 then invalid_arg "Event_queue.push: negative time";
  let entry = { at = time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.count + 1 >= Array.length t.heap then begin
    let bigger = Array.make (2 * Array.length t.heap) entry in
    Array.blit t.heap 0 bigger 0 (t.count + 1);
    t.heap <- bigger
  end;
  t.count <- t.count + 1;
  t.heap.(t.count) <- entry;
  sift_up t t.count

let pop t =
  if t.count = 0 then None
  else begin
    let top = t.heap.(1) in
    t.heap.(1) <- t.heap.(t.count);
    t.count <- t.count - 1;
    if t.count > 0 then sift_down t 1;
    Some (top.at, top.payload)
  end

let peek_time t = if t.count = 0 then None else Some t.heap.(1).at

let size t = t.count

let is_empty t = t.count = 0
