type 'a entry = { at : int; prio : int; seq : int; pin : int option; site : string option; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* min-heap on (at, prio, seq); slot 0 unused *)
  mutable count : int;
  mutable next_seq : int;
  (* tie-sanitizer side state: pending entries bucketed by (at, prio),
     maintained only while the check is enabled so the normal path stays
     allocation-free *)
  pending : (int * int, (int * int option * string option) list ref) Hashtbl.t;
}

(* ---- the tie-race sanitizer ----

   Opt-in (AMOEBA_TIE_CHECK=1 or [set_tie_check true]); purely
   observational: ordering is ALWAYS (at, prio, seq) with seq the
   insertion order, exactly as before this mode existed, so enabling the
   check can never change a simulation's bytes. What it adds is a
   discipline: when two events land on the same (time, priority), their
   relative order is decided by insertion order alone — a race the
   scheduler author may not have meant. The check demands that every
   member of such a collision carry an explicit [?pin] sequence number,
   strictly increasing in insertion order (so the annotation and the
   executed order agree), and reports the scheduling [?site]s of any
   unpinned or contradictory pair. *)

type tie = {
  tie_at : int;
  tie_prio : int;
  tie_first : string; (* earlier-queued site, or "<unpinned>" *)
  tie_second : string;
  tie_reason : string;
}

let tie_enabled = ref false
let all_ties : tie list ref = ref []

let set_tie_check on = tie_enabled := on
let tie_check_enabled () = !tie_enabled
let ties () = List.rev !all_ties
let clear_ties () = all_ties := []

let () =
  match Sys.getenv_opt "AMOEBA_TIE_CHECK" with
  | Some ("1" | "true" | "yes") -> tie_enabled := true
  | _ -> ()

let site_name = function Some s -> s | None -> "<unpinned>"

let tie_to_string t =
  Printf.sprintf "tie at t=%d prio=%d between %s and %s (%s)" t.tie_at t.tie_prio t.tie_first
    t.tie_second t.tie_reason

let record_tie ~at ~prio ~first ~second ~reason =
  all_ties :=
    { tie_at = at; tie_prio = prio; tie_first = first; tie_second = second; tie_reason = reason }
    :: !all_ties

let check_collision t (e : 'a entry) =
  let key = (e.at, e.prio) in
  let bucket =
    match Hashtbl.find_opt t.pending key with
    | Some b -> b
    | None ->
      let b = ref [] in
      Hashtbl.replace t.pending key b;
      b
  in
  List.iter
    (fun (_, pin, site) ->
      match (pin, e.pin) with
      | Some p, Some q when q > p -> ()
      | Some p, Some q ->
        record_tie ~at:e.at ~prio:e.prio ~first:(site_name site) ~second:(site_name e.site)
          ~reason:
            (Printf.sprintf "pins %d then %d do not agree with the insertion order that decides it"
               p q)
      | _ ->
        record_tie ~at:e.at ~prio:e.prio ~first:(site_name site) ~second:(site_name e.site)
          ~reason:"relative order decided only by insertion order; pass ~pin to make it explicit")
    !bucket;
  bucket := (e.seq, e.pin, e.site) :: !bucket

let uncheck_collision t (e : 'a entry) =
  let key = (e.at, e.prio) in
  match Hashtbl.find_opt t.pending key with
  | None -> ()
  | Some b ->
    b := List.filter (fun (seq, _, _) -> seq <> e.seq) !b;
    if !b = [] then Hashtbl.remove t.pending key

(* ---- the heap ---- *)

let create () =
  { heap = Array.make 16 (Obj.magic 0); count = 0; next_seq = 0; pending = Hashtbl.create 8 }

let less a b =
  a.at < b.at
  || (a.at = b.at && (a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)))

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 1 then begin
    let parent = i / 2 in
    if less t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = 2 * i and right = (2 * i) + 1 in
  let smallest = ref i in
  if left <= t.count && less t.heap.(left) t.heap.(!smallest) then smallest := left;
  if right <= t.count && less t.heap.(right) t.heap.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push ?(prio = 0) ?pin ?site t ~time payload =
  if time < 0 then invalid_arg "Event_queue.push: negative time";
  let entry = { at = time; prio; seq = t.next_seq; pin; site; payload } in
  t.next_seq <- t.next_seq + 1;
  if !tie_enabled then check_collision t entry;
  if t.count + 1 >= Array.length t.heap then begin
    let bigger = Array.make (2 * Array.length t.heap) entry in
    Array.blit t.heap 0 bigger 0 (t.count + 1);
    t.heap <- bigger
  end;
  t.count <- t.count + 1;
  t.heap.(t.count) <- entry;
  sift_up t t.count

let pop t =
  if t.count = 0 then None
  else begin
    let top = t.heap.(1) in
    t.heap.(1) <- t.heap.(t.count);
    t.count <- t.count - 1;
    if t.count > 0 then sift_down t 1;
    if !tie_enabled then uncheck_collision t top;
    Some (top.at, top.payload)
  end

let peek_time t = if t.count = 0 then None else Some t.heap.(1).at

let size t = t.count

let is_empty t = t.count = 0
