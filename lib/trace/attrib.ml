(* Time attribution: charge every simulated microsecond of a trace to
   exactly one layer.

   The sweep walks the elementary segments between span boundaries and
   charges each segment to the deepest span covering it (ties broken by
   the later-begun span).  Only segments inside the union of the trace's
   root intervals count, which keeps the books balanced in two awkward
   cases: work replayed under [Clock.unobserved] (its spans can end after
   the enclosing span's rewound end) and branches run under
   [Clock.parallel] (sibling spans overlap in simulated time).  With that
   clipping, the per-layer sums partition the end-to-end duration exactly:
   total = net + cpu + cache + disk + alloc + other. *)

type totals = {
  total_us : int;
  net_us : int;
  cpu_us : int;
  cache_us : int;
  disk_us : int;
  alloc_us : int;
  other_us : int; (* Server/Client self-time not claimed by a deeper span *)
}

let zero =
  { total_us = 0; net_us = 0; cpu_us = 0; cache_us = 0; disk_us = 0; alloc_us = 0; other_us = 0 }

let add a b =
  {
    total_us = a.total_us + b.total_us;
    net_us = a.net_us + b.net_us;
    cpu_us = a.cpu_us + b.cpu_us;
    cache_us = a.cache_us + b.cache_us;
    disk_us = a.disk_us + b.disk_us;
    alloc_us = a.alloc_us + b.alloc_us;
    other_us = a.other_us + b.other_us;
  }

let charge t layer us =
  match (layer : Sink.layer) with
  | Sink.Net -> { t with total_us = t.total_us + us; net_us = t.net_us + us }
  | Sink.Cpu -> { t with total_us = t.total_us + us; cpu_us = t.cpu_us + us }
  | Sink.Cache -> { t with total_us = t.total_us + us; cache_us = t.cache_us + us }
  | Sink.Disk -> { t with total_us = t.total_us + us; disk_us = t.disk_us + us }
  | Sink.Alloc -> { t with total_us = t.total_us + us; alloc_us = t.alloc_us + us }
  | Sink.Server | Sink.Client ->
    { t with total_us = t.total_us + us; other_us = t.other_us + us }

(* Preserves first-appearance order so reports are deterministic. *)
let by_trace spans =
  let groups =
    List.fold_left
      (fun acc (s : Sink.span) ->
        match List.assoc_opt s.Sink.trace_id acc with
        | Some bucket ->
          bucket := s :: !bucket;
          acc
        | None -> (s.Sink.trace_id, ref [ s ]) :: acc)
      [] spans
  in
  List.rev_map (fun (id, bucket) -> (id, List.rev !bucket)) groups

let root_duration_us spans =
  List.fold_left
    (fun acc (s : Sink.span) ->
      if s.Sink.parent_id = 0 then acc + (s.Sink.end_us - s.Sink.begin_us) else acc)
    0 spans

(* The op class of a trace: the name of its earliest server-side dispatch
   span ("serve.read", ...), falling back to the first root's name. *)
let op_class spans =
  let best =
    List.fold_left
      (fun acc (s : Sink.span) ->
        match (s.Sink.layer : Sink.layer) with
        | Sink.Server -> (
          match acc with
          | Some (b, _) when b <= s.Sink.begin_us -> acc
          | _ -> Some (s.Sink.begin_us, s.Sink.name))
        | _ -> acc)
      None spans
  in
  match best with
  | Some (_, name) -> name
  | None -> (
    match List.find_opt (fun (s : Sink.span) -> s.Sink.parent_id = 0) spans with
    | Some root -> root.Sink.name
    | None -> "?")

(* Fold [f] over the elementary intervals of one trace in time order,
   passing the layer each interval is charged to.  Shared by {!sweep}
   (which sums per layer) and {!segments} (which keeps the order). *)
let fold_intervals spans ~init ~f =
  let roots = List.filter (fun (s : Sink.span) -> s.Sink.parent_id = 0) spans in
  let bounds =
    List.sort_uniq Int.compare
      (List.concat_map (fun (s : Sink.span) -> [ s.Sink.begin_us; s.Sink.end_us ]) spans)
  in
  let in_root a b =
    List.exists (fun (r : Sink.span) -> r.Sink.begin_us <= a && b <= r.Sink.end_us) roots
  in
  let winner a b =
    List.fold_left
      (fun acc (s : Sink.span) ->
        if s.Sink.begin_us <= a && b <= s.Sink.end_us && s.Sink.end_us > s.Sink.begin_us then
          match acc with
          | Some (w : Sink.span)
            when w.Sink.depth > s.Sink.depth
                 || (w.Sink.depth = s.Sink.depth && w.Sink.span_id > s.Sink.span_id) ->
            acc
          | _ -> Some s
        else acc)
      None spans
  in
  let rec go acc = function
    | a :: (b :: _ as rest) ->
      let acc =
        if b > a && in_root a b then
          match winner a b with
          | Some (s : Sink.span) -> f acc s.Sink.layer (b - a)
          | None -> acc
        else acc
      in
      go acc rest
    | _ -> acc
  in
  go init bounds

let sweep spans = fold_intervals spans ~init:zero ~f:charge

let segments spans =
  let rev =
    fold_intervals spans ~init:[] ~f:(fun acc layer us ->
        match acc with
        | (l, sum) :: tl when l = layer -> (l, sum + us) :: tl
        | _ -> (layer, us) :: acc)
  in
  List.rev rev

(* RPC transactions show up as the transport's "rpc" root spans (retries
   of one logical operation rejoin their trace, so each transaction is
   its own "rpc" span). Counting them per trace/class is what makes the
   zero-RPC claim of the leased read path checkable from a dump alone. *)
let rpc_count spans =
  List.fold_left
    (fun acc (s : Sink.span) -> if String.equal s.Sink.name "rpc" then acc + 1 else acc)
    0 spans

let of_spans spans =
  List.fold_left (fun acc (_, trace) -> add acc (sweep trace)) zero (by_trace spans)

let by_class spans =
  List.fold_left
    (fun acc (_, trace) ->
      let cls = op_class trace in
      let t = sweep trace in
      match List.assoc_opt cls acc with
      | Some cell ->
        let count, sum = !cell in
        cell := (count + 1, add sum t);
        acc
      | None -> acc @ [ (cls, ref (1, t)) ])
    [] (by_trace spans)
  |> List.map (fun (cls, cell) ->
         let count, sum = !cell in
         (cls, count, sum))
