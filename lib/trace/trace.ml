(* The tracing context: a span stack over the simulated clock.

   Trace ids never come from wall clock or OS entropy.  A root span opened
   for an RPC derives its trace id by interning the message xid: the first
   distinct xid seen by this context becomes trace 1, the next trace 2,
   and retries of the same xid rejoin the same trace.  Interning (rather
   than using the raw xid) keeps dumps independent of how many xids the
   process handed out before this context was created, which is what makes
   an in-process double run byte-identical.  Roots with no xid (client
   backoff, ad-hoc spans) get synthetic ids counting down from -1.

   Zero-cost-when-off is a call-site discipline, not a property of this
   module: instrumented code holds a [ctx option] and must match on it
   before allocating names, attributes or closures.  With [None] the hot
   path runs the exact pre-trace code. *)

type frame = {
  f_trace : int;
  f_span : int;
  f_parent : int;
  f_depth : int;
  f_layer : Sink.layer;
  f_name : string;
  f_begin : int;
}

type ctx = {
  clock : Amoeba_sim.Clock.t;
  sink : Sink.t;
  mutable stack : frame list;
  mutable next_span_id : int;
  mutable next_synthetic : int;
  xid_trace : (int, int) Hashtbl.t; (* xid -> interned trace id *)
  mutable next_trace : int;
}

let create ?capacity ~clock () =
  {
    clock;
    sink = Sink.create ?capacity ();
    stack = [];
    next_span_id = 1;
    next_synthetic = -1;
    xid_trace = Hashtbl.create 64;
    next_trace = 1;
  }

let sink t = t.sink
let clock t = t.clock
let open_spans t = List.length t.stack

let fresh_synthetic t =
  let id = t.next_synthetic in
  t.next_synthetic <- id - 1;
  id

let intern_xid t xid =
  match Hashtbl.find_opt t.xid_trace xid with
  | Some id -> id
  | None ->
    let id = t.next_trace in
    t.next_trace <- id + 1;
    Hashtbl.replace t.xid_trace xid id;
    id

let push t ~trace ~layer ~name =
  let span_id = t.next_span_id in
  t.next_span_id <- span_id + 1;
  let parent, depth =
    match t.stack with
    | [] -> (0, 0)
    | top :: _ -> (top.f_span, top.f_depth + 1)
  in
  t.stack <-
    {
      f_trace = trace;
      f_span = span_id;
      f_parent = parent;
      f_depth = depth;
      f_layer = layer;
      f_name = name;
      f_begin = Amoeba_sim.Clock.now t.clock;
    }
    :: t.stack

let begin_root t ~xid ~layer ~name =
  let trace =
    match t.stack with
    | top :: _ -> top.f_trace (* nested RPC: stay inside the caller's trace *)
    | [] -> if xid <> 0 then intern_xid t xid else fresh_synthetic t
  in
  push t ~trace ~layer ~name

let begin_span t ~layer ~name =
  let trace =
    match t.stack with
    | top :: _ -> top.f_trace
    | [] -> fresh_synthetic t
  in
  push t ~trace ~layer ~name

let end_span_attrs t attrs =
  match t.stack with
  | [] -> invalid_arg "Trace.end_span: no open span"
  | top :: rest ->
    t.stack <- rest;
    Sink.emit t.sink
      {
        Sink.trace_id = top.f_trace;
        span_id = top.f_span;
        parent_id = top.f_parent;
        depth = top.f_depth;
        layer = top.f_layer;
        name = top.f_name;
        begin_us = top.f_begin;
        end_us = Amoeba_sim.Clock.now t.clock;
        attrs;
      }

let end_span t = end_span_attrs t []

let event t ~layer ~name attrs =
  let span_id = t.next_span_id in
  t.next_span_id <- span_id + 1;
  let trace, parent, depth =
    match t.stack with
    | [] -> (fresh_synthetic t, 0, 0)
    | top :: _ -> (top.f_trace, top.f_span, top.f_depth + 1)
  in
  let now = Amoeba_sim.Clock.now t.clock in
  Sink.emit t.sink
    {
      Sink.trace_id = trace;
      span_id;
      parent_id = parent;
      depth;
      layer;
      name;
      begin_us = now;
      end_us = now;
      attrs;
    }

let in_span t ~layer ~name f =
  begin_span t ~layer ~name;
  match f () with
  | v ->
    end_span t;
    v
  | exception e ->
    end_span_attrs t [ ("raised", Sink.S (Printexc.to_string e)) ];
    raise e
