(** Time attribution over recorded spans.

    Every simulated microsecond inside a trace's root interval(s) is
    charged to exactly one layer — the deepest span covering it — so the
    per-layer sums partition the end-to-end duration with no residue.
    Time the root covers but no deeper span claims lands in [other_us]
    (server/client self-time). *)

type totals = {
  total_us : int;
  net_us : int;
  cpu_us : int;
  cache_us : int;
  disk_us : int;
  alloc_us : int;
  other_us : int;
}

val zero : totals
val add : totals -> totals -> totals

val sweep : Sink.span list -> totals
(** Attribute one trace's spans.  [total_us] equals the length of the
    union of root intervals; for sequential roots that is the sum of root
    durations (see {!root_duration_us}). *)

val of_spans : Sink.span list -> totals
(** Group by trace id, sweep each trace, and sum. *)

val segments : Sink.span list -> (Sink.layer * int) list
(** The same attribution as {!sweep}, kept in temporal order: the
    ordered per-layer decomposition of one trace, adjacent intervals of
    the same layer coalesced.  The durations sum to [(sweep spans).total_us]
    exactly, which makes the result directly usable as a scheduler
    demand profile. *)

val by_trace : Sink.span list -> (int * Sink.span list) list
(** Group spans by trace id, first-appearance order preserved. *)

val by_class : Sink.span list -> (string * int * totals) list
(** Per op class: (class, number of traces, summed totals). *)

val rpc_count : Sink.span list -> int
(** Number of RPC transactions among these spans — the transport's
    ["rpc"] spans. A leased client's hot read has none. *)

val op_class : Sink.span list -> string
(** The op class of one trace: the name of its earliest [Server]-layer
    span (e.g. ["serve.read"]), else the first root's name. *)

val root_duration_us : Sink.span list -> int
(** Sum of root-span durations in the list. *)
