(** The tracing context: an open-span stack over the simulated clock.

    Trace ids are derived from RPC xids by per-context interning — the
    first distinct xid becomes trace 1, retries of the same xid rejoin
    their trace — so a dump depends only on the traced scenario, never on
    global process state or wall clock.  Roots without an xid get
    synthetic ids counting down from -1.

    Instrumented modules hold a [ctx option] and must match on it before
    building names, attributes or closures; the [None] arm must be the
    exact untraced code path.  That discipline, not this module, is what
    makes tracing allocation-free when off. *)

type ctx

val create : ?capacity:int -> clock:Amoeba_sim.Clock.t -> unit -> ctx
(** [capacity] sizes the span ring buffer (default 65536 spans). *)

val sink : ctx -> Sink.t
val clock : ctx -> Amoeba_sim.Clock.t

val open_spans : ctx -> int
(** Depth of the open-span stack (0 between requests). *)

val begin_root : ctx -> xid:int -> layer:Sink.layer -> name:string -> unit
(** Open a root span.  With an empty stack, [xid <> 0] interns the xid as
    the trace id and [xid = 0] mints a synthetic negative id; with spans
    already open (a nested RPC) the span joins the enclosing trace. *)

val begin_span : ctx -> layer:Sink.layer -> name:string -> unit
(** Open a child of the innermost open span (or a synthetic root). *)

val end_span : ctx -> unit
(** Close the innermost span at the clock's current simulated time and
    emit it.  Raises [Invalid_argument] if no span is open. *)

val end_span_attrs : ctx -> (string * Sink.value) list -> unit
(** {!end_span} with attributes attached to the emitted span. *)

val event : ctx -> layer:Sink.layer -> name:string -> (string * Sink.value) list -> unit
(** Emit a zero-length span at the current time under the innermost open
    span. *)

val in_span : ctx -> layer:Sink.layer -> name:string -> (unit -> 'a) -> 'a
(** Run [f] inside a span; exception-safe (a raise closes the span with a
    ["raised"] attribute and re-raises). *)
