(** Span records and the fixed-capacity ring-buffer collector.

    Spans carry simulated-time stamps only; nothing in this module may
    observe host time.  The JSONL rendering emits fields in a fixed order
    with no whitespace so identical runs dump byte-identical traces. *)

(** Which layer of the stack a span's time belongs to.  [Cpu] is the
    server's per-request CPU charge, [Cache] covers cache memcpy traffic,
    [Disk] the seek/rotation/transfer components of device access. *)
type layer = Net | Server | Cpu | Cache | Disk | Alloc | Client

type value = I of int | S of string

type span = {
  trace_id : int;  (** interned RPC xid, or negative for synthetic roots *)
  span_id : int;  (** unique per context, in begin order *)
  parent_id : int;  (** 0 when the span is a root of its trace *)
  depth : int;  (** 0 for roots; children are parent depth + 1 *)
  layer : layer;
  name : string;
  begin_us : int;  (** simulated time *)
  end_us : int;  (** simulated time; equal to [begin_us] for events *)
  attrs : (string * value) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer holding the most recent [capacity] spans (default 65536). *)

val emit : t -> span -> unit
(** Append a span; once full, each emit overwrites the oldest span and
    increments {!dropped}. *)

val spans : t -> span list
(** Retained spans, oldest first (emission order when not wrapped). *)

val iter : t -> (span -> unit) -> unit
val clear : t -> unit
val capacity : t -> int
val length : t -> int
val dropped : t -> int

val layer_name : layer -> string
val layer_of_name : string -> layer option

val line_of_span : span -> string
(** One JSONL line, fixed field order, no trailing newline. *)

val to_jsonl : t -> string
(** All retained spans as newline-terminated JSONL lines. *)

val span_of_line : string -> (span, string) result
(** Parse a line produced by {!line_of_span}. *)
