(* Span records and the ring-buffer collector.

   A span is a closed interval of simulated time attributed to one layer
   of the stack; zero-length spans double as point events.  The sink is a
   fixed-capacity ring: when it wraps, the oldest spans are discarded and
   counted in [dropped], so a long traced run degrades gracefully instead
   of growing without bound.

   The JSONL rendering is part of the determinism contract: fields are
   emitted in a fixed order with no whitespace, so two identical runs
   produce byte-identical dumps. *)

type layer = Net | Server | Cpu | Cache | Disk | Alloc | Client

type value = I of int | S of string

type span = {
  trace_id : int;
  span_id : int;
  parent_id : int; (* 0 = root of its trace *)
  depth : int;
  layer : layer;
  name : string;
  begin_us : int;
  end_us : int;
  attrs : (string * value) list;
}

type t = {
  ring : span option array;
  mutable next : int; (* index of the next write *)
  mutable stored : int; (* live spans, <= capacity *)
  mutable dropped : int;
}

let create ?(capacity = 65_536) () =
  if capacity <= 0 then invalid_arg "Sink.create: capacity must be positive";
  { ring = Array.make capacity None; next = 0; stored = 0; dropped = 0 }

let capacity t = Array.length t.ring
let length t = t.stored
let dropped t = t.dropped

let emit t span =
  let cap = Array.length t.ring in
  if t.stored = cap then t.dropped <- t.dropped + 1
  else t.stored <- t.stored + 1;
  t.ring.(t.next) <- Some span;
  t.next <- (t.next + 1) mod cap

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0;
  t.stored <- 0;
  t.dropped <- 0

(* Oldest-first, which for a non-wrapped ring is emission order. *)
let spans t =
  let cap = Array.length t.ring in
  let first = (t.next - t.stored + cap) mod cap in
  List.init t.stored (fun i ->
      match t.ring.((first + i) mod cap) with
      | Some s -> s
      | None -> assert false)

let iter t f = List.iter f (spans t)

let layer_name = function
  | Net -> "net"
  | Server -> "server"
  | Cpu -> "cpu"
  | Cache -> "cache"
  | Disk -> "disk"
  | Alloc -> "alloc"
  | Client -> "client"

let layer_of_name = function
  | "net" -> Some Net
  | "server" -> Some Server
  | "cpu" -> Some Cpu
  | "cache" -> Some Cache
  | "disk" -> Some Disk
  | "alloc" -> Some Alloc
  | "client" -> Some Client
  | _ -> None

(* ---- JSONL ---- *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let line_of_span s =
  let buf = Buffer.create 160 in
  Buffer.add_string buf "{\"t\":";
  Buffer.add_string buf (string_of_int s.trace_id);
  Buffer.add_string buf ",\"s\":";
  Buffer.add_string buf (string_of_int s.span_id);
  Buffer.add_string buf ",\"p\":";
  Buffer.add_string buf (string_of_int s.parent_id);
  Buffer.add_string buf ",\"d\":";
  Buffer.add_string buf (string_of_int s.depth);
  Buffer.add_string buf ",\"l\":";
  add_json_string buf (layer_name s.layer);
  Buffer.add_string buf ",\"n\":";
  add_json_string buf s.name;
  Buffer.add_string buf ",\"b\":";
  Buffer.add_string buf (string_of_int s.begin_us);
  Buffer.add_string buf ",\"e\":";
  Buffer.add_string buf (string_of_int s.end_us);
  Buffer.add_string buf ",\"a\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_json_string buf k;
      Buffer.add_char buf ':';
      match v with
      | I n -> Buffer.add_string buf (string_of_int n)
      | S str -> add_json_string buf str)
    s.attrs;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let to_jsonl t =
  let buf = Buffer.create 4096 in
  iter t (fun s ->
      Buffer.add_string buf (line_of_span s);
      Buffer.add_char buf '\n');
  Buffer.contents buf

(* Minimal parser for the subset of JSON [line_of_span] emits.  Tolerates
   nothing fancier — it exists so bullet_trace can reload its own dumps. *)

exception Parse of string

let span_of_line line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then line.[!pos] else fail "unexpected end" in
  let next () =
    let c = peek () in
    incr pos;
    c
  in
  let expect c = if next () <> c then fail (Printf.sprintf "expected %c" c) in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        match next () with
        | '"' -> Buffer.add_char buf '"'; go ()
        | '\\' -> Buffer.add_char buf '\\'; go ()
        | 'n' -> Buffer.add_char buf '\n'; go ()
        | 't' -> Buffer.add_char buf '\t'; go ()
        | 'u' ->
          let hex = String.sub line !pos 4 in
          pos := !pos + 4;
          Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ hex) land 0xff));
          go ()
        | _ -> fail "bad escape")
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_int () =
    let start = !pos in
    if peek () = '-' then incr pos;
    while !pos < n && (match line.[!pos] with '0' .. '9' -> true | _ -> false) do
      incr pos
    done;
    if !pos = start then fail "expected integer";
    int_of_string (String.sub line start (!pos - start))
  in
  let parse_attrs () =
    expect '{';
    if peek () = '}' then (incr pos; [])
    else begin
      let rec go acc =
        let k = parse_string () in
        expect ':';
        let v = if peek () = '"' then S (parse_string ()) else I (parse_int ()) in
        match next () with
        | ',' -> go ((k, v) :: acc)
        | '}' -> List.rev ((k, v) :: acc)
        | _ -> fail "expected , or } in attrs"
      in
      go []
    end
  in
  let field key =
    let k = parse_string () in
    if String.compare k key <> 0 then fail (Printf.sprintf "expected field %S" key);
    expect ':'
  in
  match
    expect '{';
    field "t";
    let trace_id = parse_int () in
    expect ','; field "s";
    let span_id = parse_int () in
    expect ','; field "p";
    let parent_id = parse_int () in
    expect ','; field "d";
    let depth = parse_int () in
    expect ','; field "l";
    let layer =
      let name = parse_string () in
      match layer_of_name name with
      | Some l -> l
      | None -> fail (Printf.sprintf "unknown layer %S" name)
    in
    expect ','; field "n";
    let name = parse_string () in
    expect ','; field "b";
    let begin_us = parse_int () in
    expect ','; field "e";
    let end_us = parse_int () in
    expect ','; field "a";
    let attrs = parse_attrs () in
    expect '}';
    { trace_id; span_id; parent_id; depth; layer; name; begin_us; end_us; attrs }
  with
  | span -> Ok span
  | exception Parse msg -> Error msg
  | exception _ -> Error "malformed span line"
