(** The paper's evaluation, as reusable experiment drivers.

    Each driver builds a fresh simulated 1989 testbed (16.7 MHz servers,
    10 Mbit/s Ethernet, late-80s drives), runs one of the paper's
    measurements, and returns the data. The benchmark executable prints
    them in the paper's table format; the integration tests assert the
    paper's quantitative claims on them. Virtual time makes every number
    deterministic. *)

type row = {
  size : int;  (** file size in bytes *)
  read_us : int;  (** read delay, µs *)
  write_us : int;  (** Bullet: CREATE+DELETE delay; NFS: CREATE delay *)
}

val bandwidth_kbs : size:int -> us:int -> float
(** KB/s given a transfer size and delay. *)

val paper_sizes : int list
(** The Fig. 2/Fig. 3 rows. *)

(** {1 Main tables} *)

val fig2_bullet : ?sizes:int list -> unit -> row list
(** The paper's Fig. 2: Bullet READ (file fully in server cache, as the
    paper states) and CREATE+DELETE with the file written to both disks. *)

type attrib_breakdown = {
  at_total_us : int;  (** end-to-end duration; equals the sum of the rest *)
  at_net_us : int;  (** wire latency/transmit and timeout waits *)
  at_cpu_us : int;  (** per-request server CPU charge *)
  at_cache_us : int;  (** cache memcpy traffic *)
  at_disk_us : int;  (** seek + rotation + transfer *)
  at_other_us : int;  (** server/client self-time no deeper span claims *)
}

type attrib_row = {
  at_size : int;
  at_read : attrib_breakdown;  (** cached SIZE+READ pair *)
  at_write : attrib_breakdown;  (** CREATE+DELETE pair *)
}

val fig2_attrib : ?sizes:int list -> unit -> attrib_row list
(** Fig. 2 re-measured with the tracer on: every simulated microsecond of
    each row charged to a layer by {!Amoeba_trace.Attrib}.  The cached
    READ rows show only net + cpu (+ memcpy) time — the paper's §4 claim
    as measured output — while CREATE+DELETE is dominated by the
    synchronous disk writes. *)

val fig3_nfs : ?sizes:int list -> unit -> row list
(** The paper's Fig. 3: SUN NFS READ and CREATE, client caching disabled
    ([lockf]), one data disk, 3 MB server buffer cache aged between the
    create and read phases (normally loaded server). *)

type comparison = {
  size : int;
  read_ratio : float;  (** NFS read delay / Bullet read delay (claim: 3–6×) *)
  bullet_write_kbs : float;
  nfs_write_kbs : float;
  nfs_read_kbs : float;
  write_ratio : float;  (** Bullet/NFS write bandwidth (claim: ~10× at 1 MB) *)
}

val compare_servers : ?sizes:int list -> unit -> comparison list
(** Fig. 2 vs Fig. 3, aligned by size — the §4 prose claims. *)

(** {1 Secondary experiments} *)

val pfactor_sweep : ?size:int -> unit -> (int * int) list
(** [(p_factor, create_delay_us)] for P-FACTOR 0, 1, 2 (claim C5). *)

type frag_report = {
  files_written : int;
  disk_utilisation : float;  (** fraction of the data area holding files *)
  fragmentation_before : float;
  largest_hole_before : int;
  compaction_moved_blocks : int;
  compaction_us : int;
  fragmentation_after : float;
}

val fragmentation_experiment : ?churn_ops:int -> ?seed:int64 -> unit -> frag_report
(** Drive a create/delete churn against a small disk until allocation
    pressure shows, then run the 3 a.m. compaction (paper §3's trade-off:
    an 800 MB disk storing ~500 MB of files). *)

type cache_report = {
  hit_us : int;
  miss_us : int;
  cold_us : int;  (** read straight after restart (inode table in RAM, file on disk) *)
  hit_rate_working_set : float;  (** LRU hit rate when the working set fits *)
  hit_rate_thrash : float;  (** and when it exceeds the cache *)
}

val cache_experiment : unit -> cache_report

type ablation_report = {
  first_fit_frag : float;
  best_fit_frag : float;
  first_fit_failures : int;  (** creates refused under churn *)
  best_fit_failures : int;
}

val allocation_ablation : ?churn_ops:int -> unit -> ablation_report
(** First-fit (the paper's choice) vs best-fit under identical churn. *)

type trace_report = {
  ops : int;
  bullet_total_us : int;
  nfs_total_us : int;
  speedup : float;
  bullet_p50_ms : float;  (** median per-operation latency *)
  bullet_p99_ms : float;
  nfs_p50_ms : float;
  nfs_p99_ms : float;
}

val trace_replay : ?ops:int -> ?seed:int64 -> ?mix:Workload.Trace.mix -> unit -> trace_report
(** Replay the same BSD-style trace (1984 size distribution, 75 %
    whole-file reads by default) against both servers end to end. *)

val mix_sweep : ?ops:int -> unit -> (float * float) list
(** [(update_fraction, bullet_speedup)] as the workload shifts from the
    read-dominated BSD mix toward small in-place updates — the regime
    where immutability pays a whole-file copy per update and the
    baseline merely rewrites one block. Honest about where the design
    loses: the speedup falls toward (and can cross) 1 as updates
    dominate, which is exactly why §2 concedes logs and databases to
    other mechanisms. *)

type append_report = {
  appends : int;
  log_server_us : int;  (** via the log server *)
  modify_us : int;  (** via BULLET.MODIFY (server-side copy) *)
  naive_us : int;  (** read + whole-file re-create from the client *)
}

val append_ablation : ?appends:int -> ?record_bytes:int -> ?base_bytes:int -> unit -> append_report
(** The log-file problem of §2: three ways to append under the immutable
    model. *)

type immediate_report = {
  plain_write_us : int;  (** 60 B create+write, stock baseline *)
  immediate_write_us : int;  (** same with inode-inline small files *)
  plain_read_us : int;  (** 60 B read, aged cache *)
  immediate_read_us : int;
  bullet_read_us : int;  (** Bullet, same file size, for scale *)
}

val immediate_ablation : unit -> immediate_report
(** ABL3 — reference [1]'s "immediate files" retrofitted onto the block
    baseline: small-file operations touch only the inode. Narrows the
    small-file gap; leaves the large-file gap untouched (that one is the
    Bullet design itself). *)

type geo_report = {
  file_bytes : int;
  local_read_us : int;  (** replica at the reader's site *)
  regional_read_us : int;  (** replica one gateway away *)
  wide_read_us : int;  (** replica across the international line *)
  nearest_pick : string;  (** which site [fetch] chose for the remote reader *)
  publish_local_us : int;
  publish_replicated_us : int;  (** publish + ship one replica abroad *)
}

val geo_experiment : ?file_bytes:int -> unit -> geo_report
(** Geographic scalability (paper §2.1): a federation spanning
    Amsterdam, a regional site and Norway; read one file from replicas
    at each distance and show nearest-replica selection. *)

type naming_report = {
  depth : int;  (** path components resolved *)
  local_resolve_us : int;  (** server-side walk, one RPC, same Ethernet *)
  local_stepwise_us : int;  (** one lookup RPC per component *)
  wide_resolve_us : int;  (** same, with the directory server abroad *)
  wide_stepwise_us : int;
}

val naming_experiment : ?depth:int -> unit -> naming_report
(** Path resolution cost: the directory server walks "a/b/.../leaf" in
    one RPC vs the client looking up each component. On the local
    Ethernet the difference is small; across a gateway it is the
    difference between one and N wide-area round trips — why Amoeba
    resolved paths server-side. *)

type scale_point = {
  clients : int;
  throughput_per_sec : float;
  mean_response_ms : float;
  utilisation : float;
}

type scale_report = {
  bullet_service_us : int;  (** measured per-request server demand (4 KB read) *)
  nfs_service_us : int;
  bullet_knee : float;  (** analytic saturation population *)
  nfs_knee : float;
  bullet_points : scale_point list;
  nfs_points : scale_point list;
}

val scale_experiment : ?client_counts:int list -> ?think_ms:int -> unit -> scale_report
(** Quantitative scalability (paper §2: "there may be thousands of
    processors accessing files"): a closed loop of pool processors
    reading 4 KB files. Server demands are measured on the real
    implementations (Bullet: RAM-cache hit; NFS: per-block path on a
    normally-loaded server); contention comes from discrete-event
    simulation of the FIFO server queue. *)

type cache_sweep_point = {
  cache_mb : int;
  hit_rate : float;
  mean_read_ms : float;
}

val cache_size_sweep : ?working_set_mb:int -> ?cache_mbs:int list -> unit -> cache_sweep_point list
(** Scan a fixed working set (64 KB files, three passes, LRU) under
    different server cache sizes; the knee sits where the cache stops
    covering the working set — the sizing argument behind "all of the
    server's remaining memory will be used for file caching". *)

val pfactor_matrix :
  ?sizes:int list -> unit -> (int * (int * int) list) list
(** [(size, [(p, create_us); ...]); ...] — how the P-FACTOR trade moves
    with file size (the network term grows, the disk term is what p
    removes). *)

(** {1 FAULTS — behaviour under failures}

    Driven by [Amoeba_fault] plans: deterministic schedules of drive
    failures, server crashes and probabilistic message faults against a
    live rig. Same plan, same seed — byte-identical results. *)

type availability_report = {
  avail_ops : int;  (** client reads issued over the 10 s run *)
  avail_failed : int;  (** reads that surfaced an error (claim: 0) *)
  normal_p99_ms : float;  (** tail latency, both drives live *)
  degraded_p99_ms : float;  (** tail latency during the drive outage *)
  degraded_reads : int;  (** mirror reads served with a drive down *)
  resync_ms : float;  (** whole-disk copy when the drive returns *)
}

val fault_availability : unit -> availability_report
(** Drive 0 fails at t=2 s and is repaired + resynced at t=6 s under a
    steady uncached read load: "the file server can proceed
    uninterruptedly by using the other disk". *)

type resync_point = { disk_mb : int; resync_ms : float }

val resync_sweep : ?sector_counts:int list -> unit -> resync_point list
(** Mirror resync ("copying the complete disk") time against disk
    capacity — linear, independent of live data. *)

type reboot_point = { table_files : int; reboot_ms : float }

val reboot_sweep : ?max_files_list:int list -> unit -> reboot_point list
(** Crash-then-reboot time against inode-table size: boot is one
    sequential scan of the table. *)

type loss_point = {
  loss_pct : float;
  loss_ops : int;
  loss_completed : int;  (** ops that succeeded within the retry bound *)
  loss_retries : int;  (** resends the client stats recorded *)
  loss_timeouts : int;
  duplicate_executions : int;  (** retried CREATEs run twice (claim: 0) *)
  goodput_kbs : float;
  loss_p50_ms : float;  (** per-transaction latency percentiles, retries *)
  loss_p95_ms : float;  (** and backoff included, from the client's log2 *)
  loss_p99_ms : float;  (** histogram — the tail the goodput mean hides *)
}

val loss_sweep : ?loss_rates:float list -> unit -> loss_point list
(** Create+read goodput under 1–10% per-direction message loss, with
    timeout + bounded exponential retry and xid dedup on mutations. *)

type crash_report = {
  crash_ops : int;
  crash_failed : int;  (** ops lost to the crash (claim: 0 — retries span it) *)
  outage_ms : float;  (** scripted crash-to-reboot gap *)
  crash_reboot_ms : float;  (** measured boot-scan duration *)
  crash_retries : int;
  pre_crash_file_ok : bool;
      (** a capability minted before the crash still reads correctly
          after reboot (same seed, same sealer) *)
}

val crash_recovery : unit -> crash_report
(** Server crashes mid-workload at t=2 s (port unbound, cache and
    write-behind lost), reboots at t=2.5 s from the surviving image;
    clients retry across the outage. *)

(** {1 RESYNC: degraded-but-improving operation} *)

type resync_window = {
  w_start_ms : int;
  w_state : string;  (** mirror state at the end of the window *)
  w_remaining : int;  (** resync backlog (sectors) at the end of the window *)
  w_ops : int;
  w_p50_ms : float;
  w_p95_ms : float;
  w_p99_ms : float;
}

type resync_report = {
  rw_windows : resync_window list;
  rw_ops : int;
  rw_failed : int;
  rw_read_repairs : int;
  rw_fallthroughs : int;
  rw_resync_steps : int;
  rw_resync_sectors : int;
  rw_online_resync_ms : float;  (** virtual wall time from rejoin to clean *)
  rw_step_cost_ms : float;  (** worst-case disk cost of one resync batch *)
  rw_normal_max_ms : float;  (** slowest op before the failure *)
  rw_max_op_ms : float;  (** slowest op anywhere, resync included *)
  rw_clean_at_end : bool;
}

val resync_experiment : ?sectors:int -> ?batch:int -> unit -> resync_report
(** The online-resync story across fail → rejoin → clean: drive 1 dies
    at t=2 s and rejoins fully dirty at t=4 s; the backlog drains one
    [batch]-sector step per poll point, charged against the foreground
    read workload. The windowed percentiles show latency rising during
    the resync and recovering after, with zero failed operations; the
    resync backlog shrinks monotonically; and no single op ever costs
    more than its own I/O plus a bounded number of batches
    ([rw_max_op_ms] vs [rw_step_cost_ms]). *)

type wan_fault_report = {
  wf_wide_ops : int;
  wf_wide_failed : int;  (** during the loss phase, after retries *)
  wf_partition_ops : int;
  wf_partition_failed : int;  (** must equal [wf_partition_ops] *)
  wf_healed_ok : bool;
  wf_local_ops : int;
  wf_local_failed : int;
  wf_link_request_drops : int;
  wf_link_reply_drops : int;
  wf_partition_drops : int;
  wf_retries : int;
  wf_quiet_local_us : int;  (** one warm local fetch before any fault *)
  wf_faulted_local_us : int;  (** the same fetch while the wide line is down *)
}

val wan_fault_experiment : ?file_bytes:int -> unit -> wan_fault_report
(** Fault the international line, not the network: [Link_loss 0.25] then
    [Link_partition] then [Link_heal], all scoped to [Wide]. Cross-border
    fetches ride retries through the loss phase and fail during the
    partition; local traffic never fails and — because link-scoped
    faults on other links consume no random draw — the faulted local
    fetch costs exactly as much as the quiet one. *)

type pair_report = {
  pr_ops : int;
  pr_failed : int;
  pr_outage_ops : int;  (** mutations applied while the primary was down *)
  pr_diverged : string option;
  pr_state_match : bool;  (** replica state dumps byte-identical *)
  pr_healed : bool;
}

val dir_pair_recovery : unit -> pair_report
(** The replicated directory pair under a plan: the primary dies at
    t=1 s in the middle of a mutation stream, the backup serves alone,
    and the heal at t=3 s replays the backup's state onto the primary
    via a checkpoint copy. Afterwards the replicas must show no
    divergence and their canonical state dumps
    ({!Amoeba_dir.Dir_pair.replica_dumps}) must be byte-identical. *)

(** {2 LOAD: multi-station concurrency and overload} *)

type load_profile = {
  lpr_class : string;  (** operation class, e.g. ["read64k"] *)
  lpr_segments : (string * int) list;
      (** scheduler demand: (station name, µs) in request order; sums to
          [lpr_traced_us] exactly *)
  lpr_traced_us : int;  (** attributed end-to-end time of the traced op *)
}

type load_point = {
  lp_clients : int;
  lp_throughput : float;
  lp_mean_ms : float;
  lp_p50_ms : float;
  lp_p95_ms : float;
  lp_p99_ms : float;
  lp_util : (string * float) list;  (** per-station utilisation *)
}

type overload_point = {
  ov_policy : string;  (** ["block"], ["shed"] or ["deadline"] *)
  ov_goodput : float;  (** completions that reached a waiting client, per second *)
  ov_p99_ms : float;
  ov_offered : int;
  ov_completed : int;
  ov_failed : int;
  ov_shed : int;
  ov_deadline_misses : int;
  ov_abandoned : int;
  ov_retried : int;
  ov_late : int;  (** completions the server wasted on departed clients *)
}

type server_load = {
  sl_name : string;
  sl_profiles : load_profile list;
  sl_knee : float;  (** analytic saturation population *)
  sl_serial_cap_per_sec : float;  (** one-request-at-a-time throughput bound *)
  sl_knee_throughput : float;  (** measured at [ceil sl_knee] clients *)
  sl_points : load_point list;
}

type load_report = {
  lr_bullet : server_load;
  lr_nfs : server_load;
  lr_overload_clients : int;
      (** 2x the measured saturation population (smallest swept client
          count within 5% of peak) *)
  lr_peak_goodput : float;  (** best throughput over the plain sweep *)
  lr_overload : overload_point list;
}

val load_experiment :
  ?client_counts:int list -> ?think_ms:int -> ?requests_per_client:int -> unit -> load_report
(** The concurrent-server scaling story.  Demand profiles are measured
    by tracing the real Bullet and NFS servers once per operation class
    and converting the attribution sweep into per-station segments (the
    sums are asserted to match the traced time exactly); the scheduler
    then sweeps client counts over a CPU + wire + drive-arm station
    network, and drives the Bullet configuration at twice its measured
    saturation population under
    [Block]/[Shed]/[Deadline] with retrying clients.  Raises [Failure]
    if any acceptance invariant is violated: knee throughput must beat
    the serial bound, shedding must hold goodput within 10% of peak, and
    blocking must collapse below it. *)

val load_sched_trace : unit -> Amoeba_trace.Sink.t * Amoeba_sched.Sched.report
(** A small overloaded deterministic run with [sched.*] spans collected
    in the returned sink — the trace the CI double-run diffs and
    [bullet_trace --sched] renders. *)

(** {2 LEASE: the zero-RPC read fast path} *)

type lease_fault = {
  lf_plan : string;
  lf_reads : int;
  lf_failed : int;  (** liveness losses: [Not_found] after removal, exhausted retries *)
  lf_stale : int;  (** reads returning old bytes after the mutation completed — must be 0 *)
  lf_revalidations : int;  (** renew + grant RPCs the station issued *)
  lf_consistent : bool;  (** pair replicas byte-identical (and epoch agreed) at the end *)
}

type lease_report = {
  le_cold_rpcs : int;  (** first read: lease grant + SIZE + READ *)
  le_warm_reads : int;
  le_warm_rpcs : int;  (** across all warm reads — must be 0 *)
  le_warm_read_us : int;  (** one warm read: local verify + memcpy only *)
  le_trusted_hit_us : int;
  le_untrusted_hit_us : int;
  le_untrusted_hit_rpcs : int;  (** the verification round trip *)
  le_renew_rpcs : int;  (** read after expiry: the one cheap epoch check *)
  le_forged_rejected : bool;  (** forged check field fails local verification *)
  le_faults : lease_fault list;
  le_hot_profile : load_profile;  (** hot-read demand as leased stations see it *)
  le_hot_rpc_count : int;  (** "rpc" spans in the traced warm read — must be 0 *)
  le_baseline_hot : load_profile;  (** the same hot read through plain RPC *)
  le_baseline_knee : float;
  le_baseline_knee_throughput : float;
  le_leased_knee : float;
  le_leased_knee_throughput : float;
  le_server_evicted_bytes : int;  (** under pressure, from the server RAM cache *)
  le_client_evicted_bytes : int;  (** same counter, client side *)
}

val lease_experiment : unit -> lease_report
(** The zero-RPC read fast path, end to end.  A trusted station (holding
    the Bullet server's sealer out of band) reads a hot file through
    {!Amoeba_lease.Station}: the first read pays the lease grant plus
    the fetch, every repeat read under the lease issues {e zero} RPCs
    and finishes in local-verify + memcpy time.  The untrusted path
    still pays exactly one verification round trip.  Four fault plans —
    a replace racing lease expiry, the directory primary crashing on the
    epoch bump, message loss across revalidations, and a skewed client
    lease clock (scripted via the [lease_skew] plan grammar) — must all
    show zero stale serves.  Finally the LOAD machinery re-derives the
    hot-read demand profile from a traced leased read and shows the
    saturation knee moving right of the plain-RPC baseline.  Raises
    [Failure] if any of these invariants is violated. *)

val lease_trace : unit -> Amoeba_trace.Sink.t
(** A small scripted lease scenario with the tracer on — grant, zero-RPC
    cache hits, expiry and renewal, revocation after a replace, and a
    failed read after removal.  Deterministic; the CI double-run diffs
    its dump and [bullet_trace --lease] renders it. *)

(** {2 METRICS: live health over scripted fault plans} *)

type metrics_scenario = {
  ms_name : string;
  ms_interval_us : int;
  ms_snapshots : Amoeba_metrics.Metrics.snapshot list;  (** the scrape ring, oldest first *)
  ms_transitions : (int * Amoeba_metrics.Health.state) list;
  ms_alerts : (int * string * bool) list;  (** SLO fire/clear edges *)
  ms_final : Amoeba_metrics.Health.state;
}

type metrics_report = {
  mx_scenarios : metrics_scenario list;
  mx_status_metrics : int;  (** samples in the STD_STATUS snapshot *)
  mx_status_bytes : int;  (** its binary encoding *)
  mx_roundtrip_ok : bool;  (** encode -> decode -> encode is byte-identical *)
}

val metrics_experiment : unit -> metrics_report
(** The observability tentpole, end to end.  Three scripted fault plans
    run against live registries with a virtual-clock scraper and the
    {!Amoeba_metrics.Health} evaluator folding every snapshot:

    - {b drive-rejoin}: a mirror drive fails at 2 s and rejoins fully
      dirty at 4 s under a read-plus-create workload.  The transition
      sequence must be exactly Healthy -> Degraded (positive backlog) ->
      Healthy, and the p99 read-latency SLO must burn through its window
      while the resync drains.
    - {b overload-storm}: a twice-saturated shedding scheduler.  The
      interval shed rate must flip the state to Overloaded, and the
      response-p99, goodput-floor and shed-budget alerts must all fire.
    - {b lease-skew}: the lease clock jumps forward then steps back
      under the plan DSL.  The churn counter must read Lease_churning —
      never Degraded or Overloaded — and the warm-hit SLO stays quiet.

    Also exercises the STD_STATUS surface off the drive-rejoin server:
    the binary snapshot must decode and re-encode byte-identically.
    Raises [Failure] if any transition sequence or alert edge deviates. *)

val metrics_dump : metrics_report -> string
(** Deterministic text dump — every snapshot, transition and alert edge.
    The CI double-run diffs it byte for byte; [bullet_top --replay]
    renders the same data. *)

(**/**)

val metrics_drive_rejoin : unit -> metrics_scenario * (int * int * bool) * bool
val metrics_overload_storm : unit -> metrics_scenario * Amoeba_sched.Sched.report
val metrics_lease_skew : unit -> metrics_scenario

(**/**)

(** {2 TXN: atomic multi-object operations under fault plans} *)

type txn_fault = {
  tf_plan : string;
  tf_scenario : string;  (** which of the three scenarios the plan was driven against *)
  tf_expected : string;  (** the outcome the plan must resolve to *)
  tf_outcome : string;  (** the post-recovery outcome: ["committed"] or ["aborted"] *)
  tf_crashed : bool;  (** a crash directive actually fired mid-protocol *)
  tf_in_doubt_before : int;  (** WAL in-doubt count when recovery starts *)
  tf_resolved_commits : int;
  tf_resolved_aborts : int;
  tf_atomic : bool;  (** visible state matches the outcome everywhere — never mixed *)
  tf_orphans : int;  (** fsck orphans on the file server after recovery — must be 0 *)
  tf_pending : int;  (** prepared residue anywhere after recovery — must be 0 *)
  tf_dumps_equal : bool;  (** both pairs byte-identical across replicas *)
  tf_stable : bool;  (** a second recovery pass finds nothing to do *)
}

type txn_report = {
  tx_quiet : (string * string) list;  (** scenario name, outcome of the unfaulted run *)
  tx_quiet_wal : int;  (** WAL records after the three quiet commits *)
  tx_quiet_clean : bool;  (** quiet runs atomic, residue-free, orphan-free *)
  tx_faults : txn_fault list;
  tx_health : (int * string) list;  (** health transitions of the stuck-coordinator run *)
  tx_stuck_label : string;  (** the state while the coordinator stayed dead *)
  tx_status_has_gauges : bool;  (** STD_STATUS carries the [txn.*] surface *)
}

val txn_experiment : unit -> txn_report
(** The atomic-commitment tentpole, end to end.  Three multi-object
    scenarios — create-and-bind, a rename spanning two directory pairs,
    replace-with-delete — run through the {!Amoeba_txn.Txn} coordinator
    against a Bullet file server and two replicated directory pairs.
    After the quiet baseline (all three commit, no residue), every
    protocol edge gets a named fault plan scripted through the plan DSL:
    the five [txn_crash] points (coordinator before/after prepare, after
    the commit record, between decision legs; participant primary after
    prepare) and [txn_drop]/[txn_dup] on each of the four message legs.
    Each faulted run is resolved by {!Amoeba_txn.Txn.recover} and must
    end committed-everywhere or aborted-everywhere — exactly as the plan
    pins it — with zero fsck orphans, zero prepared residue, both pairs'
    replica dumps byte-identical, and a second recovery pass finding
    nothing.  A separate stuck-coordinator run asserts the metrics
    surface: the [txn.in_doubt] gauge flips the health state to
    [Txn_stuck] after two doubtful scrapes and hysteresis walks it back
    to Healthy once recovery drains the WAL.  Raises [Failure] if any
    invariant is violated. *)

val txn_dump : txn_report -> string
(** Deterministic text dump — one line per quiet run, fault plan and
    health transition.  The CI double-run diffs it byte for byte. *)

(** {2 CLUSTER: a sharded multi-server Bullet with live rebalancing} *)

type cluster_report = {
  cl_scenario : metrics_scenario;
      (** health over the cluster gauges — Healthy -> Rebalancing -> Healthy *)
  cl_objects : int;
  cl_live_servers : int;
  cl_join_delta : int;  (** dirty shards right after the two joins *)
  cl_join_expected : int;  (** ring-computed delta — must match exactly *)
  cl_untouched : int;  (** keys whose shard the whole episode never disturbed *)
  cl_untouched_moved : int;  (** of those, holders changed — must be 0 *)
  cl_kill_fired : bool;  (** the scripted [shard_kill] fired while rebalancing *)
  cl_polled_reads : int;  (** foreground reads issued during the episode *)
  cl_unreadable : int;  (** reads that failed or returned wrong bytes — must be 0 *)
  cl_fallthroughs : int;
  cl_read_repairs : int;
  cl_migrated : int;  (** objects copied by the rebalancer *)
  cl_under_peak : int;  (** worst under-replication seen after the kill *)
  cl_under_final : int;  (** must be 0 after the heal *)
  cl_spread : int * int;  (** min/max live copies per key at the end — must be (R, R) *)
  cl_checkpoint : string;  (** canonical cluster-directory dump *)
  cl_checkpoint_parses : bool;
  cl_double_run_identical : bool;  (** second full run, byte-identical checkpoint *)
  cl_status_has_gauges : bool;  (** STD_STATUS carries the [cluster.*] surface *)
}

val cluster_experiment : unit -> cluster_report
(** The sharded-cluster tentpole, end to end.  Three servers in two
    regions carry 48 objects at R = 2; two more servers join and the
    membership change must mark {e exactly} the ring-delta shards
    (computed independently off {!Amoeba_cluster.Ring.owners} and
    compared shard for shard).  Two joins can replace {e both} members
    of a group — one join alone always keeps an old owner — so some
    reads are forced to fall through to a live holder and read-repair
    off the measured path.  The rebalancer drains the backlog in
    bounded batches charged on the virtual clock while foreground reads
    keep flowing — every read must return the right bytes throughout —
    and a [shard_kill] scripted through the fault-plan DSL fells one of
    the original servers mid-migration, leaving four servers live.  At the end: zero under-replicated keys, exactly
    R live copies of every object, shards outside the deltas never
    moved, and the health evaluator (watching [cluster.shards_remaining]
    off the same registry STD_STATUS serves) walked exactly
    Healthy -> Rebalancing -> Healthy.  The whole episode runs twice
    and the canonical checkpoints must be byte-identical.  Raises
    [Failure] if any invariant is violated. *)

val cluster_dump : cluster_report -> string
(** Deterministic text dump — scenario snapshots, transitions, alert
    edges, episode scalars and the canonical checkpoint.  The CI
    double-run diffs it byte for byte; [bullet_top --replay] renders
    the scenario. *)

type cluster_bench_point = {
  cb_objects : int;
  cb_delta_shards : int;  (** shards the fourth join disturbs *)
  cb_steps : int;  (** bounded rebalance steps to drain *)
  cb_copied : int;  (** objects copied *)
  cb_rebalance_us : int;  (** virtual time the drain charged *)
}

type cluster_bench = {
  cb_points : cluster_bench_point list;  (** rebalance cost vs object count *)
  cb_quiet_reads : int;
  cb_quiet_us : int;  (** virtual time the quiet reads charged *)
  cb_migrate_reads : int;
  cb_migrate_us : int;  (** the same read mix interleaved with the drain *)
}

val cluster_bench : unit -> cluster_bench
(** The bench sweep behind the [cluster] section: full-drain rebalance
    cost as the object count grows (the delta-shard count stays
    ring-determined, so time scales with the objects living in the
    delta), and goodput — the same read mix — against a quiet cluster
    versus one draining a join one bounded step per read.  All times
    are virtual, so the numbers are byte-stable across runs. *)
