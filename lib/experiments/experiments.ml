module Clock = Amoeba_sim.Clock
module Prng = Amoeba_sim.Prng
module Geometry = Amoeba_disk.Geometry
module Dev = Amoeba_disk.Block_device
module Mirror = Amoeba_disk.Mirror
module Server = Bullet_core.Server
module Client = Bullet_core.Client
module Nfs = Nfs_baseline.Nfs_server
module Nfs_client = Nfs_baseline.Nfs_client
module Status = Amoeba_rpc.Status

type row = { size : int; read_us : int; write_us : int }

let bandwidth_kbs ~size ~us =
  if us = 0 then 0. else float_of_int size /. 1024. /. (float_of_int us /. 1_000_000.)

let paper_sizes = Workload.Sizes.paper_sweep

(* ---- testbeds ---- *)

(* 64 MB drives keep the simulated images small; every timing parameter
   (seek, rotation, media rate) is the 1989 drive, so per-operation costs
   match the paper's 800 MB drives. *)
let testbed_sectors = 131_072

type bullet_bed = {
  b_clock : Clock.t;
  b_server : Server.t;
  b_client : Client.t;
  b_mirror : Mirror.t;
}

let make_bullet_bed ?(sectors = testbed_sectors) ?(config = Server.default_config) () =
  let clock = Clock.create () in
  let geometry = Geometry.small ~sectors in
  let d1 = Dev.create ~id:"bullet-1" ~geometry ~clock in
  let d2 = Dev.create ~id:"bullet-2" ~geometry ~clock in
  let mirror = Mirror.create [ d1; d2 ] in
  Server.format mirror ~max_files:2048;
  let server, _report = Result.get_ok (Server.start ~config mirror) in
  let transport = Amoeba_rpc.Transport.create ~clock in
  Bullet_core.Proto.serve server transport;
  let client = Client.connect transport (Server.port server) in
  { b_clock = clock; b_server = server; b_client = client; b_mirror = mirror }

type nfs_bed = { n_clock : Clock.t; n_server : Nfs.t; n_client : Nfs_client.t }

let make_nfs_bed ?(sectors = testbed_sectors) () =
  let clock = Clock.create () in
  let geometry = Geometry.small ~sectors in
  let dev = Dev.create ~id:"nfs-1" ~geometry ~clock in
  Nfs.format dev ~max_files:2048;
  let server = Result.get_ok (Nfs.mount dev) in
  let transport = Amoeba_rpc.Transport.create ~clock in
  Nfs_baseline.Nfs_proto.serve server transport;
  let client = Nfs_client.connect transport (Nfs.port server) in
  { n_clock = clock; n_server = server; n_client = client }

let time clock f =
  let _, us = Clock.elapsed clock f in
  us

(* ---- Fig. 2: the Bullet server ---- *)

(* ---- ATTRIB: where the microseconds of a Fig. 2 row go ---- *)

type attrib_breakdown = {
  at_total_us : int;
  at_net_us : int;
  at_cpu_us : int;
  at_cache_us : int;
  at_disk_us : int;
  at_other_us : int;
}

type attrib_row = {
  at_size : int;
  at_read : attrib_breakdown; (* cached SIZE+READ pair *)
  at_write : attrib_breakdown; (* CREATE+DELETE pair *)
}

let breakdown_of_totals (t : Amoeba_trace.Attrib.totals) =
  {
    at_total_us = t.Amoeba_trace.Attrib.total_us;
    at_net_us = t.Amoeba_trace.Attrib.net_us;
    at_cpu_us = t.Amoeba_trace.Attrib.cpu_us;
    at_cache_us = t.Amoeba_trace.Attrib.cache_us;
    at_disk_us = t.Amoeba_trace.Attrib.disk_us;
    (* extent bookkeeping is instantaneous, so alloc time folds into the
       server's self-time bucket *)
    at_other_us = t.Amoeba_trace.Attrib.other_us + t.Amoeba_trace.Attrib.alloc_us;
  }

(* Rebuild Fig. 2's measurements with the tracer on and attribute every
   simulated microsecond to a layer.  The paper's claim becomes a
   measured table: a cached READ is network + server CPU (+ memcpy),
   while CREATE+DELETE is dominated by the synchronous disk writes. *)
let fig2_attrib ?(sizes = paper_sizes) () =
  let run size =
    let bed = make_bullet_bed () in
    let tracer = Amoeba_trace.Trace.create ~clock:bed.b_clock () in
    let sink = Amoeba_trace.Trace.sink tracer in
    let attributed f =
      Amoeba_trace.Sink.clear sink;
      Amoeba_rpc.Transport.set_tracer (Client.transport bed.b_client) (Some tracer);
      Server.set_tracer bed.b_server (Some tracer);
      f ();
      Amoeba_rpc.Transport.set_tracer (Client.transport bed.b_client) None;
      Server.set_tracer bed.b_server None;
      breakdown_of_totals (Amoeba_trace.Attrib.of_spans (Amoeba_trace.Sink.spans sink))
    in
    let data = Bytes.make size 'b' in
    (* Same protocol as [fig2_bullet]: the read test runs against a file
       already in cache; the write test is a traced create+delete. *)
    let cap = Client.create bed.b_client ~p_factor:2 data in
    let at_read = attributed (fun () -> ignore (Client.read bed.b_client cap)) in
    Client.delete bed.b_client cap;
    let at_write =
      attributed (fun () ->
          let cap = Client.create bed.b_client ~p_factor:2 data in
          Client.delete bed.b_client cap)
    in
    { at_size = size; at_read; at_write }
  in
  List.map run sizes

let fig2_bullet ?(sizes = paper_sizes) () =
  let bed = make_bullet_bed () in
  let run size =
    let data = Bytes.make size 'b' in
    (* Read test: "In all cases the test file will be completely in
       memory" — create first, then measure the SIZE+READ pair. *)
    let cap = Client.create bed.b_client ~p_factor:2 data in
    let read_us = time bed.b_clock (fun () -> ignore (Client.read bed.b_client cap)) in
    Client.delete bed.b_client cap;
    (* Create+delete test, "the file is written to both disks". *)
    let write_us =
      time bed.b_clock (fun () ->
          let cap = Client.create bed.b_client ~p_factor:2 data in
          Client.delete bed.b_client cap)
    in
    { size; read_us; write_us }
  in
  List.map run sizes

(* ---- Fig. 3: SUN NFS ---- *)

let fig3_nfs ?(sizes = paper_sizes) () =
  let bed = make_nfs_bed () in
  let run size =
    let data = Bytes.make size 'n' in
    (* Write test: "consecutively executing creat, write, and close". *)
    let fh = ref None in
    let write_us =
      time bed.n_clock (fun () ->
          let handle = Nfs_client.create bed.n_client in
          Nfs_client.write_file bed.n_client handle data;
          fh := Some handle)
    in
    let handle = Option.get !fh in
    (* The production server's cache has turned over by the time the read
       test runs; metadata stays hot. *)
    Nfs.age_cache bed.n_server;
    (* Read test: "an lseek followed by a read system call" per block;
       client caching disabled with lockf. *)
    let read_us =
      time bed.n_clock (fun () -> ignore (Nfs_client.read_file bed.n_client handle ~size))
    in
    Nfs_client.remove bed.n_client handle;
    { size; read_us; write_us }
  in
  List.map run sizes

(* ---- comparison (§4 prose) ---- *)

type comparison = {
  size : int;
  read_ratio : float;
  bullet_write_kbs : float;
  nfs_write_kbs : float;
  nfs_read_kbs : float;
  write_ratio : float;
}

let compare_servers ?(sizes = paper_sizes) () =
  let bullet = fig2_bullet ~sizes () in
  let nfs = fig3_nfs ~sizes () in
  let combine (b : row) (n : row) =
    let bullet_write_kbs = bandwidth_kbs ~size:b.size ~us:b.write_us in
    let nfs_write_kbs = bandwidth_kbs ~size:n.size ~us:n.write_us in
    {
      size = b.size;
      read_ratio = float_of_int n.read_us /. float_of_int b.read_us;
      bullet_write_kbs;
      nfs_write_kbs;
      nfs_read_kbs = bandwidth_kbs ~size:n.size ~us:n.read_us;
      write_ratio = (if nfs_write_kbs = 0. then 0. else bullet_write_kbs /. nfs_write_kbs);
    }
  in
  List.map2 combine bullet nfs

(* ---- P-FACTOR ---- *)

let pfactor_sweep ?(size = 65_536) () =
  let bed = make_bullet_bed () in
  let data = Bytes.make size 'p' in
  let run p =
    let cap = ref None in
    let us = time bed.b_clock (fun () -> cap := Some (Client.create bed.b_client ~p_factor:p data)) in
    (match !cap with Some c -> Client.delete bed.b_client c | None -> ());
    (p, us)
  in
  List.map run [ 0; 1; 2 ]

(* ---- fragmentation and the 3 a.m. compaction ---- *)

type frag_report = {
  files_written : int;
  disk_utilisation : float;
  fragmentation_before : float;
  largest_hole_before : int;
  compaction_moved_blocks : int;
  compaction_us : int;
  fragmentation_after : float;
}

let fragmentation_experiment ?(churn_ops = 1_500) ?(seed = 0xF4A6L) () =
  (* A deliberately small disk (8 MB) so the fill phases reach real
     allocation pressure — the paper's trade-off in miniature: "buying,
     say, an 800 MB disk to store 500 MB worth of files". *)
  let bed = make_bullet_bed ~sectors:16_384 () in
  let server = bed.b_server in
  let prng = Prng.create ~seed in
  let live = ref [] in
  let written = ref 0 in
  let sample_size () = min 200_000 (4_096 + (8 * Workload.Sizes.sample prng)) in
  let create_one () =
    match Server.create server (Bytes.make (sample_size ()) 'f') with
    | Ok cap ->
      incr written;
      live := cap :: !live;
      true
    | Error _ -> false
  in
  (* phase 1: fill until the first allocation failure *)
  let rec fill budget = if budget > 0 && create_one () then fill (budget - 1) in
  fill churn_ops;
  (* phase 2: punch holes — delete roughly every third file *)
  let keep, doomed = List.partition (fun _ -> Prng.int prng 3 <> 0) !live in
  List.iter (fun cap -> ignore (Server.delete server cap)) doomed;
  live := keep;
  (* phase 3: refill; first-fit reuses what holes it can *)
  fill (churn_ops / 4);
  let data = float_of_int (Server.data_blocks server) in
  let used = data -. float_of_int (Server.free_blocks server) in
  let fragmentation_before = Server.disk_fragmentation server in
  let largest_hole_before = Server.largest_hole_blocks server in
  let moved = ref 0 in
  let compaction_us = time bed.b_clock (fun () -> moved := Server.compact_disk server) in
  {
    files_written = !written;
    disk_utilisation = used /. data;
    fragmentation_before;
    largest_hole_before;
    compaction_moved_blocks = !moved;
    compaction_us;
    fragmentation_after = Server.disk_fragmentation server;
  }

(* ---- cache behaviour ---- *)

type cache_report = {
  hit_us : int;
  miss_us : int;
  cold_us : int;
  hit_rate_working_set : float;
  hit_rate_thrash : float;
}

let cache_experiment () =
  (* 2 MB cache so misses are easy to force *)
  let config = { Server.default_config with Server.cache_bytes = 2 * 1024 * 1024 } in
  let bed = make_bullet_bed ~config () in
  let client = bed.b_client in
  let subject = Client.create client (Bytes.make 262_144 'c') in
  let hit_us = time bed.b_clock (fun () -> ignore (Client.read client subject)) in
  (* flood the cache to evict the subject *)
  let rec flood n = if n > 0 then (ignore (Client.create client (Bytes.make 262_144 'x')); flood (n - 1)) in
  flood 10;
  let miss_us = time bed.b_clock (fun () -> ignore (Client.read client subject)) in
  (* cold: fresh server incarnation, empty cache *)
  Server.crash bed.b_server;
  let server2, _ = Result.get_ok (Server.start ~config bed.b_mirror) in
  let transport2 = Amoeba_rpc.Transport.create ~clock:bed.b_clock in
  Bullet_core.Proto.serve server2 transport2;
  let client2 = Client.connect transport2 (Server.port server2) in
  let cold_us = time bed.b_clock (fun () -> ignore (Client.read client2 subject)) in
  (* LRU hit rates: 64 KB files, working set inside / beyond the cache *)
  let hit_rate file_count =
    let stats = Server.stats server2 in
    let files =
      let rec make n acc =
        if n = 0 then acc else make (n - 1) (Client.create client2 (Bytes.make 65_536 'w') :: acc)
      in
      make file_count []
    in
    let h0 = Amoeba_sim.Stats.count stats "cache_hits" in
    let m0 = Amoeba_sim.Stats.count stats "cache_misses" in
    for _ = 1 to 3 do
      List.iter (fun cap -> ignore (Client.read client2 cap)) files
    done;
    let hits = Amoeba_sim.Stats.count stats "cache_hits" - h0 in
    let misses = Amoeba_sim.Stats.count stats "cache_misses" - m0 in
    List.iter (fun cap -> Client.delete client2 cap) files;
    float_of_int hits /. float_of_int (hits + misses)
  in
  let hit_rate_working_set = hit_rate 16 (* 1 MB inside the 2 MB cache *) in
  let hit_rate_thrash = hit_rate 64 (* 4 MB: twice the cache *) in
  { hit_us; miss_us; cold_us; hit_rate_working_set; hit_rate_thrash }

(* ---- allocation-policy ablation ---- *)

type ablation_report = {
  first_fit_frag : float;
  best_fit_frag : float;
  first_fit_failures : int;
  best_fit_failures : int;
}

let churn_run ~policy ~churn_ops =
  let config = { Server.default_config with Server.alloc_policy = policy } in
  let bed = make_bullet_bed ~sectors:16_384 ~config () in
  let server = bed.b_server in
  let prng = Prng.create ~seed:0xAB1AL in
  let live = ref [] in
  let failures = ref 0 in
  for _ = 1 to churn_ops do
    if !live = [] || Prng.int prng 100 < 55 then begin
      let size = min 200_000 (Workload.Sizes.sample prng) in
      match Server.create server (Bytes.make size 'a') with
      | Ok cap -> live := cap :: !live
      | Error _ -> incr failures
    end
    else begin
      let idx = Prng.int prng (List.length !live) in
      let cap = List.nth !live idx in
      live := List.filteri (fun i _ -> i <> idx) !live;
      ignore (Server.delete server cap)
    end
  done;
  (Server.disk_fragmentation server, !failures)

let allocation_ablation ?(churn_ops = 1_500) () =
  let first_fit_frag, first_fit_failures =
    churn_run ~policy:Bullet_core.Extent_alloc.First_fit ~churn_ops
  in
  let best_fit_frag, best_fit_failures =
    churn_run ~policy:Bullet_core.Extent_alloc.Best_fit ~churn_ops
  in
  { first_fit_frag; best_fit_frag; first_fit_failures; best_fit_failures }

(* ---- whole-trace replay ---- *)

type trace_report = {
  ops : int;
  bullet_total_us : int;
  nfs_total_us : int;
  speedup : float;
  bullet_p50_ms : float;
  bullet_p99_ms : float;
  nfs_p50_ms : float;
  nfs_p99_ms : float;
}

let trace_replay ?(ops = 400) ?(seed = 0x7ACEL) ?mix () =
  let trace =
    Workload.Trace.generate ?mix ~prng:(Prng.create ~seed) ~warmup_files:20 ~ops ()
  in
  (* cap sizes so every file fits both servers comfortably *)
  let clamp n = min n 500_000 in
  let bullet_lat = Amoeba_sim.Stats.create "trace-bullet" in
  let nfs_lat = Amoeba_sim.Stats.create "trace-nfs" in
  (* Bullet interpretation: immutable files, updates create new versions *)
  let bullet_us =
    let bed = make_bullet_bed () in
    let client = bed.b_client in
    let live = ref [||] in
    let push cap size = live := Array.append !live [| (cap, size) |] in
    let drop idx = live := Array.of_list (List.filteri (fun i _ -> i <> idx) (Array.to_list !live)) in
    let interpret op =
      match (op : Workload.Trace.op) with
      | Create { size } ->
        let size = clamp size in
        push (Client.create client (Bytes.make size 'z')) size
      | Read_whole { victim } ->
        let cap, _ = !live.(victim) in
        ignore (Client.read client cap)
      | Read_part { victim; frac_pos; len } ->
        let cap, size = !live.(victim) in
        let pos = int_of_float (frac_pos *. float_of_int (max 0 (size - len))) in
        let len = min len (size - pos) in
        if len > 0 then ignore (Client.read_range client cap ~pos ~len)
      | Rewrite { victim; size } ->
        let old, _ = !live.(victim) in
        let size = clamp size in
        let fresh = Client.create client (Bytes.make size 'r') in
        Client.delete client old;
        !live.(victim) <- (fresh, size)
      | Update { victim; frac_pos; len } ->
        let old, size = !live.(victim) in
        let pos = int_of_float (frac_pos *. float_of_int size) in
        let fresh = Client.modify client old ~pos (Bytes.make len 'u') in
        Client.delete client old;
        !live.(victim) <- (fresh, max size (pos + len))
      | Delete { victim } ->
        let cap, _ = !live.(victim) in
        Client.delete client cap;
        drop victim
    in
    let timed op =
      let us = time bed.b_clock (fun () -> interpret op) in
      Amoeba_sim.Stats.observe bullet_lat "op_ms" (float_of_int us /. 1000.)
    in
    time bed.b_clock (fun () -> List.iter timed trace)
  in
  (* NFS interpretation: update in place, rewrite = remove + recreate *)
  let nfs_us =
    let bed = make_nfs_bed () in
    let client = bed.n_client in
    let live = ref [||] in
    let push fh size = live := Array.append !live [| (fh, size) |] in
    let drop idx = live := Array.of_list (List.filteri (fun i _ -> i <> idx) (Array.to_list !live)) in
    let interpret op =
      match (op : Workload.Trace.op) with
      | Create { size } ->
        let size = clamp size in
        let fh = Nfs_client.create client in
        Nfs_client.write_file client fh (Bytes.make size 'z');
        push fh size
      | Read_whole { victim } ->
        let fh, size = !live.(victim) in
        ignore (Nfs_client.read_file client fh ~size)
      | Read_part { victim; frac_pos; len } ->
        let fh, size = !live.(victim) in
        let len = min len Nfs_client.block_bytes in
        let pos = int_of_float (frac_pos *. float_of_int (max 0 (size - len))) in
        let len = min len (size - pos) in
        if len > 0 then ignore (Nfs_client.read_at client fh ~off:pos ~len)
      | Rewrite { victim; size } ->
        let old, _ = !live.(victim) in
        Nfs_client.remove client old;
        let size = clamp size in
        let fh = Nfs_client.create client in
        Nfs_client.write_file client fh (Bytes.make size 'r');
        !live.(victim) <- (fh, size)
      | Update { victim; frac_pos; len } ->
        let fh, size = !live.(victim) in
        let len = min len Nfs_client.block_bytes in
        let pos = int_of_float (frac_pos *. float_of_int size) in
        Nfs_client.write_at client fh ~off:pos (Bytes.make len 'u');
        !live.(victim) <- (fh, max size (pos + len))
      | Delete { victim } ->
        let fh, _ = !live.(victim) in
        Nfs_client.remove client fh;
        drop victim
    in
    let timed op =
      let us = time bed.n_clock (fun () -> interpret op) in
      Amoeba_sim.Stats.observe nfs_lat "op_ms" (float_of_int us /. 1000.)
    in
    time bed.n_clock (fun () -> List.iter timed trace)
  in
  {
    ops = List.length trace;
    bullet_total_us = bullet_us;
    nfs_total_us = nfs_us;
    speedup = float_of_int nfs_us /. float_of_int bullet_us;
    bullet_p50_ms = Amoeba_sim.Stats.percentile bullet_lat "op_ms" 0.5;
    bullet_p99_ms = Amoeba_sim.Stats.percentile bullet_lat "op_ms" 0.99;
    nfs_p50_ms = Amoeba_sim.Stats.percentile nfs_lat "op_ms" 0.5;
    nfs_p99_ms = Amoeba_sim.Stats.percentile nfs_lat "op_ms" 0.99;
  }

let mix_sweep ?(ops = 250) () =
  let base = Workload.Trace.bsd_mix in
  let with_updates fraction =
    (* shift probability mass from whole-file reads into small updates *)
    {
      base with
      Workload.Trace.p_update = fraction;
      p_read_whole = Float.max 0.05 (base.Workload.Trace.p_read_whole -. fraction);
    }
  in
  let run fraction =
    let report = trace_replay ~ops ~mix:(with_updates fraction) () in
    (fraction, report.speedup)
  in
  List.map run [ 0.05; 0.2; 0.4; 0.6; 0.8 ]

(* ---- the append problem (§2) ---- *)

type append_report = { appends : int; log_server_us : int; modify_us : int; naive_us : int }

let append_ablation ?(appends = 50) ?(record_bytes = 120) ?(base_bytes = 65_536) () =
  let record = Bytes.make record_bytes 'l' in
  (* via the log server *)
  let log_server_us =
    let bed = make_bullet_bed () in
    let log = Log_server.Log_store.create ~store:bed.b_client () in
    let cap = Log_server.Log_store.create_log log in
    (match Log_server.Log_store.append log cap (Bytes.make base_bytes 'b') with
    | Ok _ -> ()
    | Error _ -> ());
    (match Log_server.Log_store.sync log cap with Ok () -> () | Error _ -> ());
    time bed.b_clock (fun () ->
        for _ = 1 to appends do
          ignore (Log_server.Log_store.append log cap record)
        done;
        ignore (Log_server.Log_store.sync log cap))
  in
  (* via BULLET.MODIFY: server-side copy, only the record on the wire *)
  let modify_us =
    let bed = make_bullet_bed () in
    let cap = ref (Client.create bed.b_client (Bytes.make base_bytes 'b')) in
    time bed.b_clock (fun () ->
        for _ = 1 to appends do
          let fresh = Client.append bed.b_client !cap record in
          Client.delete bed.b_client !cap;
          cap := fresh
        done)
  in
  (* naive: the client reads the whole file, appends locally, re-creates *)
  let naive_us =
    let bed = make_bullet_bed () in
    let cap = ref (Client.create bed.b_client (Bytes.make base_bytes 'b')) in
    time bed.b_clock (fun () ->
        for _ = 1 to appends do
          let contents = Client.read bed.b_client !cap in
          let bigger = Bytes.cat contents record in
          let fresh = Client.create bed.b_client bigger in
          Client.delete bed.b_client !cap;
          cap := fresh
        done)
  in
  { appends; log_server_us; modify_us; naive_us }

(* ---- immediate files (reference [1]) ---- *)

type immediate_report = {
  plain_write_us : int;
  immediate_write_us : int;
  plain_read_us : int;
  immediate_read_us : int;
  bullet_read_us : int;
}

let immediate_ablation () =
  let measure config =
    let clock = Clock.create () in
    let geometry = Geometry.small ~sectors:testbed_sectors in
    let dev = Dev.create ~id:"imm" ~geometry ~clock in
    Nfs.format dev ~max_files:2048;
    let server = Result.get_ok (Nfs.mount ~config dev) in
    let transport = Amoeba_rpc.Transport.create ~clock in
    Nfs_baseline.Nfs_proto.serve server transport;
    let client = Nfs_client.connect transport (Nfs.port server) in
    let data = Bytes.make 60 'i' in
    let fh = ref None in
    let write_us =
      time clock (fun () ->
          let handle = Nfs_client.create client in
          Nfs_client.write_file client handle data;
          fh := Some handle)
    in
    Nfs.age_cache server;
    let handle = Option.get !fh in
    let read_us = time clock (fun () -> ignore (Nfs_client.read_file client handle ~size:60)) in
    (write_us, read_us)
  in
  let plain_write_us, plain_read_us = measure Nfs.default_config in
  let immediate_write_us, immediate_read_us =
    measure { Nfs.default_config with Nfs.immediate_files = true }
  in
  let bullet_read_us =
    let bed = make_bullet_bed () in
    let cap = Client.create bed.b_client (Bytes.make 60 'b') in
    time bed.b_clock (fun () -> ignore (Client.read bed.b_client cap))
  in
  { plain_write_us; immediate_write_us; plain_read_us; immediate_read_us; bullet_read_us }

(* ---- geographic scalability (paper 2.1) ---- *)

type geo_report = {
  file_bytes : int;
  local_read_us : int;
  regional_read_us : int;
  wide_read_us : int;
  nearest_pick : string;
  publish_local_us : int;
  publish_replicated_us : int;
}

let geo_experiment ?(file_bytes = 65_536) () =
  let fed = Amoeba_wan.Federation.create ~home_region:"nl" () in
  Amoeba_wan.Federation.add_site fed ~name:"cwi" ~region:"nl";
  Amoeba_wan.Federation.add_site fed ~name:"tromso" ~region:"no";
  let clock = Amoeba_wan.Federation.clock fed in
  let data = Bytes.make file_bytes 'g' in
  let publish_local_us =
    time clock (fun () ->
        ignore (Amoeba_wan.Federation.publish fed ~from:"home" ~name:"plain" data))
  in
  let publish_replicated_us =
    time clock (fun () ->
        ignore
          (Amoeba_wan.Federation.publish fed ~from:"home" ~name:"mirrored"
             ~replicate_to:[ "tromso" ] data))
  in
  let read_via replica from =
    time clock (fun () ->
        ignore (Amoeba_wan.Federation.fetch_from_replica fed ~from "mirrored" ~replica))
  in
  (* warm both replica caches so the comparison isolates the wire *)
  ignore (Amoeba_wan.Federation.fetch_from_replica fed ~from:"home" "mirrored" ~replica:"home");
  ignore (Amoeba_wan.Federation.fetch_from_replica fed ~from:"tromso" "mirrored" ~replica:"tromso");
  let local_read_us = read_via "home" "home" in
  let regional_read_us = read_via "home" "cwi" in
  let wide_read_us = read_via "home" "tromso" in
  let _, nearest_pick = Amoeba_wan.Federation.fetch fed ~from:"tromso" "mirrored" in
  {
    file_bytes;
    local_read_us;
    regional_read_us;
    wide_read_us;
    nearest_pick;
    publish_local_us;
    publish_replicated_us;
  }

(* ---- naming: server-side resolve vs component-wise lookups ---- *)

type naming_report = {
  depth : int;
  local_resolve_us : int;
  local_stepwise_us : int;
  wide_resolve_us : int;
  wide_stepwise_us : int;
}

let naming_experiment ?(depth = 5) () =
  let bed = make_bullet_bed () in
  let dirs = Amoeba_dir.Dir_server.create ~store:bed.b_client () in
  let transport = Bullet_core.Client.transport bed.b_client in
  Amoeba_dir.Dir_proto.serve dirs transport;
  let local =
    Amoeba_dir.Dir_client.connect transport (Amoeba_dir.Dir_server.port dirs)
  in
  let wide =
    Amoeba_dir.Dir_client.connect
      ~model:(Amoeba_wan.Link.model Amoeba_wan.Link.Wide)
      transport (Amoeba_dir.Dir_server.port dirs)
  in
  let root = Amoeba_dir.Dir_client.get_root local in
  let path = String.concat "/" (List.init depth (Printf.sprintf "d%d")) in
  let leaf_dir = Amoeba_dir.Dir_client.mkdir_path local root path in
  Amoeba_dir.Dir_client.enter local leaf_dir "leaf"
    (Client.create bed.b_client (Bytes.of_string "x"));
  let full_path = path ^ "/leaf" in
  let timed client resolve =
    time bed.b_clock (fun () ->
        ignore
          (if resolve then Amoeba_dir.Dir_client.resolve client root full_path
           else Amoeba_dir.Dir_client.resolve_stepwise client root full_path))
  in
  {
    depth = depth + 1;
    local_resolve_us = timed local true;
    local_stepwise_us = timed local false;
    wide_resolve_us = timed wide true;
    wide_stepwise_us = timed wide false;
  }

(* ---- quantitative scalability (closed-loop pool processors) ---- *)

type scale_point = {
  clients : int;
  throughput_per_sec : float;
  mean_response_ms : float;
  utilisation : float;
}

type scale_report = {
  bullet_service_us : int;
  nfs_service_us : int;
  bullet_knee : float;
  nfs_knee : float;
  bullet_points : scale_point list;
  nfs_points : scale_point list;
}

let scale_experiment ?(client_counts = [ 1; 2; 4; 8; 16; 32; 64; 128 ]) ?(think_ms = 100) () =
  let size = 4_096 in
  (* measured server-side demand: what actually queues at the one
     dedicated server machine *)
  let bullet_service_us =
    let bed = make_bullet_bed () in
    let cap =
      match Server.create bed.b_server (Bytes.make size 's') with
      | Ok cap -> cap
      | Error e -> failwith (Status.to_string e)
    in
    (* warm, then measure the direct (no-wire) server path *)
    ignore (Server.read bed.b_server cap);
    time bed.b_clock (fun () -> ignore (Server.read bed.b_server cap))
  in
  let nfs_service_us =
    let bed = make_nfs_bed () in
    let fh = match Nfs.create bed.n_server with Ok fh -> fh | Error e -> failwith (Status.to_string e) in
    (match Nfs.write bed.n_server fh ~off:0 (Bytes.make size 's') with
    | Ok () -> ()
    | Error e -> failwith (Status.to_string e));
    Nfs.age_cache bed.n_server;
    time bed.n_clock (fun () -> ignore (Nfs.read bed.n_server fh ~off:0 ~len:size))
  in
  let wire model =
    Amoeba_rpc.Net_model.transaction_us model
      ~request_bytes:Amoeba_rpc.Message.header_bytes
      ~reply_bytes:(Amoeba_rpc.Message.header_bytes + size)
  in
  let bullet_wire = wire Amoeba_rpc.Net_model.amoeba in
  let nfs_wire = wire Amoeba_rpc.Net_model.sunos_nfs in
  let think_us = think_ms * 1000 in
  let points ~server_us ~wire_us =
    let run clients =
      let report =
        Amoeba_pool.Closed_loop.run
          {
            Amoeba_pool.Closed_loop.clients;
            think_us;
            server_us;
            wire_us;
            requests_per_client = 50;
          }
      in
      {
        clients;
        throughput_per_sec = report.Amoeba_pool.Closed_loop.throughput_per_sec;
        mean_response_ms = report.Amoeba_pool.Closed_loop.mean_response_ms;
        utilisation = report.Amoeba_pool.Closed_loop.server_utilisation;
      }
    in
    List.map run client_counts
  in
  {
    bullet_service_us;
    nfs_service_us;
    bullet_knee =
      Amoeba_pool.Closed_loop.saturation_clients ~server_us:bullet_service_us ~think_us
        ~wire_us:bullet_wire;
    nfs_knee =
      Amoeba_pool.Closed_loop.saturation_clients ~server_us:nfs_service_us ~think_us
        ~wire_us:nfs_wire;
    bullet_points = points ~server_us:bullet_service_us ~wire_us:bullet_wire;
    nfs_points = points ~server_us:nfs_service_us ~wire_us:nfs_wire;
  }

(* ---- cache-size sweep ---- *)

type cache_sweep_point = { cache_mb : int; hit_rate : float; mean_read_ms : float }

let cache_size_sweep ?(working_set_mb = 4) ?(cache_mbs = [ 1; 2; 4; 8 ]) () =
  let file_bytes = 65_536 in
  let file_count = working_set_mb * 1024 * 1024 / file_bytes in
  let run cache_mb =
    let config = { Server.default_config with Server.cache_bytes = cache_mb * 1024 * 1024 } in
    let bed = make_bullet_bed ~config () in
    let rec make n acc =
      if n = 0 then acc
      else make (n - 1) (Client.create bed.b_client (Bytes.make file_bytes 'w') :: acc)
    in
    let files = make file_count [] in
    let stats = Server.stats bed.b_server in
    let h0 = Amoeba_sim.Stats.count stats "cache_hits" in
    let m0 = Amoeba_sim.Stats.count stats "cache_misses" in
    let reads = ref 0 in
    let total_us =
      time bed.b_clock (fun () ->
          for _ = 1 to 3 do
            List.iter
              (fun cap ->
                incr reads;
                ignore (Client.read bed.b_client cap))
              files
          done)
    in
    let hits = Amoeba_sim.Stats.count stats "cache_hits" - h0 in
    let misses = Amoeba_sim.Stats.count stats "cache_misses" - m0 in
    {
      cache_mb;
      hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses));
      mean_read_ms = float_of_int total_us /. float_of_int !reads /. 1000.;
    }
  in
  List.map run cache_mbs

(* ---- P-FACTOR x size matrix ---- *)

let pfactor_matrix ?(sizes = [ 4_096; 65_536; 1_048_576 ]) () =
  let bed = make_bullet_bed () in
  let row size =
    let data = Bytes.make size 'p' in
    let cell p =
      let cap = ref None in
      let us =
        time bed.b_clock (fun () -> cap := Some (Client.create bed.b_client ~p_factor:p data))
      in
      (match !cap with Some c -> Client.delete bed.b_client c | None -> ());
      (p, us)
    in
    (size, List.map cell [ 0; 1; 2 ])
  in
  List.map row sizes

(* ---- FAULTS: behaviour under failures (lib/fault plans) ---- *)

module Plan = Amoeba_fault.Plan
module Injector = Amoeba_fault.Injector
module Transport = Amoeba_rpc.Transport

type availability_report = {
  avail_ops : int;
  avail_failed : int;
  normal_p99_ms : float;
  degraded_p99_ms : float;
  degraded_reads : int;
  resync_ms : float;
}

(* The paper's dual-disk promise: "if the main disk fails, the file
   server can proceed uninterruptedly by using the other disk". A read
   workload runs for 10 virtual seconds against a cache too small for the
   working set (so reads really touch disk); drive 0 dies at t=2s and is
   repaired + resynced at t=6s. Every client op must succeed, and the
   degraded-phase tail latency should match the healthy phase — the
   surviving replica is an identical drive. *)
let fault_availability () =
  let clock = Clock.create () in
  let geometry = Geometry.small ~sectors:131_072 in
  let d1 = Dev.create ~id:"av-1" ~geometry ~clock in
  let d2 = Dev.create ~id:"av-2" ~geometry ~clock in
  let mirror = Mirror.create [ d1; d2 ] in
  Server.format mirror ~max_files:2048;
  let config =
    { Server.default_config with cache_bytes = 512 * 1024; max_cached_files = 128 }
  in
  let server, _ = Result.get_ok (Server.start ~config mirror) in
  let transport = Transport.create ~clock in
  Bullet_core.Proto.serve server transport;
  let client = Client.connect ~attempts:4 ~backoff_us:25_000 transport (Server.port server) in
  let file_bytes = 65_536 in
  let files =
    Array.init 48 (fun i ->
        Client.create client ~p_factor:2 (Bytes.make file_bytes (Char.chr (65 + (i mod 26)))))
  in
  (* Measure from t=0: setup time is not part of the run. *)
  Clock.reset clock;
  let fail_at = 2_000_000 and recover_at = 6_000_000 and run_until = 10_000_000 in
  let plan =
    Plan.create ~seed:0xF001L
    |> fun p -> Plan.at p ~us:fail_at (Plan.Drive_fail 0)
    |> fun p -> Plan.at p ~us:recover_at Plan.Drive_recover
  in
  let injector = Injector.attach ~transport ~mirror ~clock plan in
  let lat = Amoeba_sim.Stats.create "availability" in
  let ops = ref 0 and failed = ref 0 and i = ref 0 in
  while Clock.now clock < run_until do
    let started = Clock.now clock in
    (try ignore (Client.read client files.(!i mod Array.length files))
     with Status.Error _ -> incr failed);
    incr ops;
    incr i;
    let phase = if started >= fail_at && started < recover_at then "degraded_us" else "normal_us" in
    Amoeba_sim.Stats.observe lat phase (float_of_int (Clock.now clock - started));
    Clock.advance clock 10_000 (* client think time *)
  done;
  Injector.poll injector;
  let resync = Amoeba_sim.Stats.summary (Injector.stats injector) "resync_us" in
  Injector.detach injector;
  {
    avail_ops = !ops;
    avail_failed = !failed;
    normal_p99_ms = Amoeba_sim.Stats.percentile lat "normal_us" 0.99 /. 1000.;
    degraded_p99_ms = Amoeba_sim.Stats.percentile lat "degraded_us" 0.99 /. 1000.;
    degraded_reads = Amoeba_sim.Stats.count (Mirror.stats mirror) "degraded_reads";
    resync_ms = resync.Amoeba_sim.Stats.mean /. 1000.;
  }

type resync_point = { disk_mb : int; resync_ms : float }

(* "Recovery is simply done by copying the complete disk": resync cost is
   one full-disk sequential pass, so it scales with capacity, not with
   how much of the disk holds live files. *)
let resync_sweep ?(sector_counts = [ 16_384; 32_768; 65_536; 131_072 ]) () =
  let run sectors =
    let clock = Clock.create () in
    let geometry = Geometry.small ~sectors in
    let d1 = Dev.create ~id:"rs-1" ~geometry ~clock in
    let d2 = Dev.create ~id:"rs-2" ~geometry ~clock in
    let mirror = Mirror.create [ d1; d2 ] in
    let plan =
      Plan.create ~seed:1L
      |> fun p -> Plan.at p ~us:0 (Plan.Drive_fail 1)
      |> fun p -> Plan.at p ~us:1 Plan.Drive_recover
    in
    let injector = Injector.attach ~mirror ~clock plan in
    Clock.advance clock 1;
    Injector.poll injector;
    let resync = Amoeba_sim.Stats.summary (Injector.stats injector) "resync_us" in
    Injector.detach injector;
    {
      disk_mb = Geometry.capacity_bytes geometry / (1024 * 1024);
      resync_ms = resync.Amoeba_sim.Stats.mean /. 1000.;
    }
  in
  List.map run sector_counts

type reboot_point = { table_files : int; reboot_ms : float }

(* Crash-reboot time is dominated by the boot scan reading the whole
   inode table back into RAM, so it grows with the table size chosen at
   format time, independent of live data. *)
let reboot_sweep ?(max_files_list = [ 512; 2_048; 8_192; 32_768 ]) () =
  let run max_files =
    let clock = Clock.create () in
    let geometry = Geometry.small ~sectors:131_072 in
    let d1 = Dev.create ~id:"rb-1" ~geometry ~clock in
    let d2 = Dev.create ~id:"rb-2" ~geometry ~clock in
    let mirror = Mirror.create [ d1; d2 ] in
    Server.format mirror ~max_files;
    let server, _ = Result.get_ok (Server.start ~seed:7L mirror) in
    let (_ : Amoeba_cap.Capability.t) =
      Result.get_ok (Server.create server ~p_factor:2 (Bytes.make 4_096 'r'))
    in
    Server.crash server;
    let booted, us = Clock.elapsed clock (fun () -> Server.start ~seed:7L mirror) in
    let (_ : Server.t * Bullet_core.Inode_table.scan_report) = Result.get_ok booted in
    { table_files = max_files; reboot_ms = float_of_int us /. 1000. }
  in
  List.map run max_files_list

type loss_point = {
  loss_pct : float;
  loss_ops : int;
  loss_completed : int;
  loss_retries : int;
  loss_timeouts : int;
  duplicate_executions : int;
  goodput_kbs : float;
  loss_p50_ms : float;
  loss_p95_ms : float;
  loss_p99_ms : float;
}

(* Goodput of a create+read workload as the network degrades. Bounded
   retry with backoff rides out each lost message; xid dedup keeps
   retried CREATEs at-most-once (duplicate_executions counts server-side
   creates beyond the client's successful ones — it should stay 0). *)
let loss_sweep ?(loss_rates = [ 0.01; 0.02; 0.05; 0.10 ]) () =
  let file_bytes = 16_384 in
  let pairs = 60 in
  let run loss =
    let clock = Clock.create () in
    let geometry = Geometry.small ~sectors:131_072 in
    let d1 = Dev.create ~id:"ls-1" ~geometry ~clock in
    let d2 = Dev.create ~id:"ls-2" ~geometry ~clock in
    let mirror = Mirror.create [ d1; d2 ] in
    Server.format mirror ~max_files:2048;
    let server, _ = Result.get_ok (Server.start mirror) in
    let transport = Transport.create ~clock in
    Bullet_core.Proto.serve server transport;
    let client = Client.connect ~attempts:10 ~backoff_us:20_000 transport (Server.port server) in
    let plan = Plan.create ~seed:0x10055L |> fun p -> Plan.at p ~us:0 (Plan.Message_loss loss) in
    let injector = Injector.attach ~transport ~mirror ~clock plan in
    let completed = ref 0 and ops = ref 0 and read_bytes = ref 0 in
    let start = Clock.now clock in
    for i = 1 to pairs do
      incr ops;
      match Client.create client ~p_factor:2 (Bytes.make file_bytes (Char.chr (97 + (i mod 26)))) with
      | cap -> (
        incr completed;
        incr ops;
        try
          let data = Client.read client cap in
          incr completed;
          read_bytes := !read_bytes + Bytes.length data
        with Status.Error _ -> ())
      | exception Status.Error _ -> ()
    done;
    let elapsed_us = Clock.now clock - start in
    let client_stats = Client.stats client in
    let creates_done = Amoeba_sim.Stats.count (Server.stats server) "creates" in
    Injector.detach injector;
    (* Per-transaction latency (retries and backoff included) from the
       client's log2 histogram, the tail the goodput number hides. *)
    let latency = Amoeba_sim.Stats.hist client_stats "trans_us" in
    let pct q = float_of_int (Amoeba_sim.Stats.Hist.percentile latency q) /. 1000. in
    {
      loss_pct = loss *. 100.;
      loss_ops = !ops;
      loss_completed = !completed;
      loss_retries = Amoeba_sim.Stats.count client_stats "retries";
      loss_timeouts = Amoeba_sim.Stats.count client_stats "timeouts";
      duplicate_executions = max 0 (creates_done - Server.live_files server);
      goodput_kbs =
        (if elapsed_us = 0 then 0.
         else float_of_int !read_bytes /. 1024. /. (float_of_int elapsed_us /. 1_000_000.));
      loss_p50_ms = pct 0.50;
      loss_p95_ms = pct 0.95;
      loss_p99_ms = pct 0.99;
    }
  in
  List.map run loss_rates

type crash_report = {
  crash_ops : int;
  crash_failed : int;
  outage_ms : float;
  crash_reboot_ms : float;
  crash_retries : int;
  pre_crash_file_ok : bool;
}

(* The full crash story: the server dies mid-workload (port unbound, RAM
   cache and pending writes gone), reboots 500 virtual ms later off the
   surviving disks with the same seed — so capabilities minted before the
   crash still verify — and clients ride the outage out on timeout +
   retry without a single failed operation. *)
let crash_recovery () =
  let clock = Clock.create () in
  let geometry = Geometry.small ~sectors:131_072 in
  let d1 = Dev.create ~id:"cr-1" ~geometry ~clock in
  let d2 = Dev.create ~id:"cr-2" ~geometry ~clock in
  let mirror = Mirror.create [ d1; d2 ] in
  Server.format mirror ~max_files:2048;
  let seed = 0xBEE5L in
  let config =
    { Server.default_config with cache_bytes = 512 * 1024; max_cached_files = 128 }
  in
  let first, _ = Result.get_ok (Server.start ~config ~seed mirror) in
  let server = ref first in
  let port = Server.port first in
  let transport = Transport.create ~clock in
  Bullet_core.Proto.serve first transport;
  let client = Client.connect ~attempts:8 ~backoff_us:100_000 transport port in
  let file_bytes = 32_768 in
  let files =
    Array.init 20 (fun i ->
        Client.create client ~p_factor:2 (Bytes.make file_bytes (Char.chr (48 + (i mod 10)))))
  in
  Clock.reset clock;
  let crash_at = 2_000_000 and reboot_at = 2_500_000 and run_until = 5_000_000 in
  let plan =
    Plan.create ~seed:0xCAFEL
    |> fun p -> Plan.at p ~us:crash_at Plan.Server_crash
    |> fun p -> Plan.at p ~us:reboot_at Plan.Server_reboot
  in
  let on_crash () =
    Transport.unregister transport port;
    Server.crash !server
  in
  let on_reboot () =
    let booted, _ = Result.get_ok (Server.start ~config ~seed mirror) in
    server := booted;
    Bullet_core.Proto.serve booted transport
  in
  let injector = Injector.attach ~transport ~mirror ~on_crash ~on_reboot ~clock plan in
  let ops = ref 0 and failed = ref 0 and i = ref 0 in
  while Clock.now clock < run_until do
    (try ignore (Client.read client files.(!i mod Array.length files))
     with Status.Error _ -> incr failed);
    incr ops;
    incr i;
    Clock.advance clock 50_000
  done;
  Injector.poll injector;
  let reboot = Amoeba_sim.Stats.summary (Injector.stats injector) "reboot_us" in
  let pre_crash_file_ok =
    match Client.read client files.(0) with
    | data -> Bytes.length data = file_bytes && Bytes.get data 0 = '0'
    | exception Status.Error _ -> false
  in
  Injector.detach injector;
  {
    crash_ops = !ops;
    crash_failed = !failed;
    outage_ms = float_of_int (reboot_at - crash_at) /. 1000.;
    crash_reboot_ms = reboot.Amoeba_sim.Stats.mean /. 1000.;
    crash_retries = Amoeba_sim.Stats.count (Client.stats client) "retries";
    pre_crash_file_ok;
  }

(* ---- RESYNC: degraded-but-improving operation ---- *)

module Link = Amoeba_rpc.Link
module Federation = Amoeba_wan.Federation
module Dir_client = Amoeba_dir.Dir_client
module Pair = Amoeba_dir.Dir_pair

type resync_window = {
  w_start_ms : int;
  w_state : string;  (** mirror state at the end of the window *)
  w_remaining : int;  (** resync backlog (sectors) at the end of the window *)
  w_ops : int;
  w_p50_ms : float;
  w_p95_ms : float;
  w_p99_ms : float;
}

type resync_report = {
  rw_windows : resync_window list;
  rw_ops : int;
  rw_failed : int;
  rw_read_repairs : int;
  rw_fallthroughs : int;
  rw_resync_steps : int;
  rw_resync_sectors : int;
  rw_online_resync_ms : float;  (** fail-free wall time from rejoin to clean *)
  rw_step_cost_ms : float;  (** worst-case disk cost of one resync batch *)
  rw_normal_max_ms : float;  (** slowest op before the failure *)
  rw_max_op_ms : float;  (** slowest op anywhere, resync included *)
  rw_clean_at_end : bool;
}

(* The tentpole experiment: a drive dies at 2s and REJOINS at 4s — no
   stop-the-world whole-disk copy; instead the drive comes back fully
   dirty and the backlog drains one bounded batch per poll point,
   interleaved with (and charged against) the foreground read workload.
   The windowed percentiles show the shape the paper's recovery story
   cannot: latency rises while the resync runs, but every single op
   completes, and no op ever pays more than its own I/O plus a couple of
   batches. *)
let resync_experiment ?(sectors = 16_384) ?(batch = 256) () =
  let clock = Clock.create () in
  let geometry = Geometry.small ~sectors in
  let d1 = Dev.create ~id:"rj-1" ~geometry ~clock in
  let d2 = Dev.create ~id:"rj-2" ~geometry ~clock in
  let mirror = Mirror.create [ d1; d2 ] in
  Server.format mirror ~max_files:512;
  let config =
    { Server.default_config with cache_bytes = 256 * 1024; max_cached_files = 32 }
  in
  let server, _ = Result.get_ok (Server.start ~config mirror) in
  let transport = Transport.create ~clock in
  Bullet_core.Proto.serve server transport;
  let client = Client.connect ~attempts:4 ~backoff_us:25_000 transport (Server.port server) in
  let file_bytes = 32_768 in
  let files =
    Array.init 32 (fun i ->
        Client.create client ~p_factor:2 (Bytes.make file_bytes (Char.chr (65 + (i mod 26)))))
  in
  Clock.reset clock;
  let fail_at = 2_000_000 and rejoin_at = 4_000_000 and run_until = 30_000_000 in
  let window_us = 2_000_000 in
  let n_windows = run_until / window_us in
  let plan =
    (* drive 0 — the read primary — so foreground reads during the
       resync hit dirty ranges, fall through to the survivor and
       read-repair what they touch *)
    Plan.create ~seed:0x5E5CL
    |> fun p -> Plan.at p ~us:fail_at (Plan.Drive_fail 0)
    |> fun p -> Plan.at p ~us:rejoin_at (Plan.Drive_rejoin batch)
  in
  let injector = Injector.attach ~transport ~mirror ~clock plan in
  let lat = Amoeba_sim.Stats.create "resync-windows" in
  let snapshots = Array.make n_windows ("", 0) in
  let ops = ref 0 and failed = ref 0 and i = ref 0 in
  let normal_max = ref 0 and overall_max = ref 0 in
  while Clock.now clock < run_until do
    let started = Clock.now clock in
    (* stride through the files (11 is coprime to 32) instead of scanning
       them in address order: right after the rejoin some reads land on
       high addresses the resync cursor has not reached yet, exercising
       the fall-through-and-repair path rather than trailing the scan *)
    (try ignore (Client.read client files.(!i * 11 mod Array.length files))
     with Status.Error _ -> incr failed);
    incr ops;
    incr i;
    let took = Clock.now clock - started in
    if started < fail_at then normal_max := max !normal_max took;
    overall_max := max !overall_max took;
    let w = min (n_windows - 1) (started / window_us) in
    Amoeba_sim.Stats.observe lat (Printf.sprintf "w%02d" w) (float_of_int took);
    let remaining =
      match Mirror.sync_state mirror with
      | Mirror.Resyncing { sectors_remaining } -> sectors_remaining
      | Mirror.Clean | Mirror.Degraded -> 0
    in
    snapshots.(w) <- (Mirror.sync_state_label mirror, remaining);
    Clock.advance clock 10_000;
    Injector.poll injector
  done;
  (* carry the last observed state into windows the workload skipped *)
  for w = 1 to n_windows - 1 do
    if fst snapshots.(w) = "" then snapshots.(w) <- snapshots.(w - 1)
  done;
  let online = Amoeba_sim.Stats.summary (Injector.stats injector) "online_resync_us" in
  let mstats = Mirror.stats mirror in
  Injector.detach injector;
  let window w =
    let key = Printf.sprintf "w%02d" w in
    let state, remaining = snapshots.(w) in
    let pct q = Amoeba_sim.Stats.percentile lat key q /. 1000. in
    {
      w_start_ms = w * window_us / 1000;
      w_state = (if state = "" then "clean" else state);
      w_remaining = remaining;
      w_ops = (Amoeba_sim.Stats.summary lat key).Amoeba_sim.Stats.count;
      w_p50_ms = pct 0.50;
      w_p95_ms = pct 0.95;
      w_p99_ms = pct 0.99;
    }
  in
  let batch_bytes = batch * geometry.Geometry.sector_bytes in
  let step_cost =
    Geometry.access_us geometry ~sequential:false ~write:false batch_bytes
    + Geometry.access_us geometry ~sequential:false ~write:true batch_bytes
  in
  {
    rw_windows = List.init n_windows window;
    rw_ops = !ops;
    rw_failed = !failed;
    rw_read_repairs = Amoeba_sim.Stats.count mstats "read_repairs";
    rw_fallthroughs = Amoeba_sim.Stats.count mstats "resync_fallthroughs";
    rw_resync_steps = Amoeba_sim.Stats.count mstats "resync_steps";
    rw_resync_sectors = Amoeba_sim.Stats.count mstats "resync_sectors";
    rw_online_resync_ms = online.Amoeba_sim.Stats.mean /. 1000.;
    rw_step_cost_ms = float_of_int step_cost /. 1000.;
    rw_normal_max_ms = float_of_int !normal_max /. 1000.;
    rw_max_op_ms = float_of_int !overall_max /. 1000.;
    rw_clean_at_end = Mirror.sync_state mirror = Mirror.Clean;
  }

type wan_fault_report = {
  wf_wide_ops : int;
  wf_wide_failed : int;  (** during the loss phase, after retries *)
  wf_partition_ops : int;
  wf_partition_failed : int;  (** must equal [wf_partition_ops] *)
  wf_healed_ok : bool;
  wf_local_ops : int;
  wf_local_failed : int;
  wf_link_request_drops : int;
  wf_link_reply_drops : int;
  wf_partition_drops : int;
  wf_retries : int;
  wf_quiet_local_us : int;  (** one warm local fetch before any fault *)
  wf_faulted_local_us : int;  (** the same fetch while the wide line is down *)
}

(* Fault the international line, not the network: a [Link_loss]/
   [Link_partition] plan applies only to transactions tagged Wide, so
   cross-border fetches degrade (and, with retries, mostly survive)
   while local traffic at either end never even consumes a random draw —
   the quiet and faulted local fetch times must be identical. *)
let wan_fault_experiment ?(file_bytes = 65_536) () =
  let f = Federation.create ~attempts:6 ~backoff_us:100_000 () in
  let clock = Federation.clock f in
  Federation.add_site f ~name:"tokyo" ~region:"jp";
  let data = Bytes.make file_bytes 'w' in
  let (_ : Amoeba_cap.Capability.t) =
    Federation.publish f ~from:"home" ~name:"wan-file" ~replicate_to:[ "tokyo" ] data
  in
  let wide_fetch () = Federation.fetch_from_replica f ~from:"home" "wan-file" ~replica:"tokyo" in
  let local_fetch () = Federation.fetch_from_replica f ~from:"home" "wan-file" ~replica:"home" in
  (* warm every cache so later fetches are byte-for-byte comparable *)
  ignore (wide_fetch ());
  ignore (local_fetch ());
  Clock.reset clock;
  (* Phase boundaries leave generous virtual headroom: a fully-retried
     wide op against a dead line costs minutes of virtual time (6
     attempts x 10 s timeout per transaction), and a phase's ops must
     not run the clock past the next phase's event. *)
  let loss_at = 1_000_000 and partition_at = 10_000_000_000 and heal_at = 20_000_000_000 in
  let plan =
    Plan.create ~seed:0x3A9L
    |> fun p -> Plan.at p ~us:loss_at (Plan.Link_loss (Link.Wide, 0.25))
    |> fun p -> Plan.at p ~us:partition_at (Plan.Link_partition Link.Wide)
    |> fun p -> Plan.at p ~us:heal_at (Plan.Link_heal Link.Wide)
  in
  let injector = Injector.attach ~transport:(Federation.transport f) ~clock plan in
  let wide_ops = ref 0 and wide_failed = ref 0 in
  let local_ops = ref 0 and local_failed = ref 0 in
  let timed_local () =
    incr local_ops;
    match Clock.elapsed clock (fun () -> local_fetch ()) with
    | _, us -> us
    | exception Status.Error _ ->
      incr local_failed;
      0
  in
  let quiet_local_us = timed_local () in
  (* --- loss phase: 25% per-direction drop on the wide line only --- *)
  Clock.advance_to clock loss_at;
  Injector.poll injector;
  for _ = 1 to 12 do
    incr wide_ops;
    (try ignore (wide_fetch ()) with Status.Error _ -> incr wide_failed);
    ignore (timed_local ())
  done;
  (* --- partition phase: the line is cut; every wide op fails --- *)
  Clock.advance_to clock partition_at;
  Injector.poll injector;
  let partition_ops = ref 0 and partition_failed = ref 0 in
  for _ = 1 to 3 do
    incr partition_ops;
    (try ignore (wide_fetch ()) with Status.Error _ -> incr partition_failed)
  done;
  let faulted_local_us = timed_local () in
  (* --- heal: loss rate and partition both clear --- *)
  Clock.advance_to clock heal_at;
  Injector.poll injector;
  let healed_ok = match wide_fetch () with _ -> true | exception Status.Error _ -> false in
  let istats = Injector.stats injector in
  Injector.detach injector;
  {
    wf_wide_ops = !wide_ops;
    wf_wide_failed = !wide_failed;
    wf_partition_ops = !partition_ops;
    wf_partition_failed = !partition_failed;
    wf_healed_ok = healed_ok;
    wf_local_ops = !local_ops;
    wf_local_failed = !local_failed;
    wf_link_request_drops = Amoeba_sim.Stats.count istats "link_request_drops";
    wf_link_reply_drops = Amoeba_sim.Stats.count istats "link_reply_drops";
    wf_partition_drops = Amoeba_sim.Stats.count istats "link_partition_drops";
    wf_retries = Amoeba_sim.Stats.count istats "link_request_drops";
    wf_quiet_local_us = quiet_local_us;
    wf_faulted_local_us = faulted_local_us;
  }

type pair_report = {
  pr_ops : int;
  pr_failed : int;
  pr_outage_ops : int;  (** mutations applied while the primary was down *)
  pr_diverged : string option;
  pr_state_match : bool;
  pr_healed : bool;
}

(* The directory pair under a plan: the primary replica dies in the
   middle of a stream of mutations, the backup serves alone, and the
   heal replays the backup's state onto the primary through a lockstep
   checkpoint copy. Afterwards the two replicas must agree not just
   structurally (no divergence) but byte-for-byte in their checkpoints —
   same object numbers, same capabilities, same serialisation. *)
let dir_pair_recovery () =
  let clock = Clock.create () in
  let geometry = Geometry.small ~sectors:testbed_sectors in
  let transport = Transport.create ~clock in
  let boot name seed =
    let d1 = Dev.create ~id:(name ^ "-1") ~geometry ~clock in
    let d2 = Dev.create ~id:(name ^ "-2") ~geometry ~clock in
    let mirror = Mirror.create [ d1; d2 ] in
    Server.format mirror ~max_files:1024;
    let server, _ = Result.get_ok (Server.start ~seed mirror) in
    Bullet_core.Proto.serve server transport;
    Client.connect transport (Server.port server)
  in
  let primary_store = boot "pairx-p" 11L in
  let backup_store = boot "pairx-b" 22L in
  let pair = Pair.create ~primary_store ~backup_store () in
  Pair.serve pair transport;
  let dirs = Dir_client.connect transport (Pair.port pair) in
  let root = Pair.root pair in
  Clock.reset clock;
  let crash_at = 1_000_000 and heal_at = 3_000_000 and run_until = 5_000_000 in
  let plan =
    Plan.create ~seed:0xD1BL
    |> fun p -> Plan.at p ~us:crash_at Plan.Server_crash
    |> fun p -> Plan.at p ~us:heal_at Plan.Server_reboot
  in
  let injector =
    Injector.attach ~transport
      ~on_crash:(fun () -> Pair.fail_primary pair)
      ~on_reboot:(fun () -> Pair.heal_primary pair)
      ~clock plan
  in
  let ops = ref 0 and failed = ref 0 and outage_ops = ref 0 in
  let i = ref 0 in
  while Clock.now clock < run_until do
    let during_outage = not (Pair.primary_alive pair) in
    (try
       let d = Dir_client.make_dir dirs in
       Dir_client.enter dirs root (Printf.sprintf "entry-%03d" !i) d;
       if during_outage then incr outage_ops
     with Status.Error _ -> incr failed);
    incr ops;
    incr i;
    Clock.advance clock 40_000;
    Injector.poll injector
  done;
  Injector.poll injector;
  Injector.detach injector;
  let dump_p, dump_b = Pair.replica_dumps pair in
  {
    pr_ops = !ops;
    pr_failed = !failed;
    pr_outage_ops = !outage_ops;
    pr_diverged = Pair.divergence pair;
    pr_state_match = String.equal dump_p dump_b;
    pr_healed = Pair.primary_alive pair;
  }

(* ---- LOAD: multi-station concurrency and overload control ---- *)

module Sched = Amoeba_sched.Sched
module Backoff = Amoeba_fault.Backoff

(* Station indexes shared by both server models; the NFS model simply
   never routes work to the second arm. *)
let st_cpu = 0

let st_net = 1

let st_arm0 = 2

let st_arm1 = 3

let load_station_names = [| "cpu"; "net"; "arm0"; "arm1" |]

(* The CPU round-robins between requests (the real server is threaded);
   the wire and each mirrored drive arm serve one transfer at a time. *)
let load_stations ~arms =
  [
    Sched.station "cpu" ~layer:Amoeba_trace.Sink.Cpu (Sched.Round_robin 1_000);
    Sched.station "net" ~layer:Amoeba_trace.Sink.Net Sched.Fifo;
  ]
  @ List.init arms (fun i ->
        Sched.station load_station_names.(st_arm0 + i) ~layer:Amoeba_trace.Sink.Disk Sched.Fifo)

type load_profile = {
  lpr_class : string;
  lpr_segments : (string * int) list;  (** (station name, µs), in request order *)
  lpr_traced_us : int;  (** attributed end-to-end time of the traced op *)
}

type load_point = {
  lp_clients : int;
  lp_throughput : float;
  lp_mean_ms : float;
  lp_p50_ms : float;
  lp_p95_ms : float;
  lp_p99_ms : float;
  lp_util : (string * float) list;
}

type overload_point = {
  ov_policy : string;
  ov_goodput : float;
  ov_p99_ms : float;
  ov_offered : int;
  ov_completed : int;
  ov_failed : int;
  ov_shed : int;
  ov_deadline_misses : int;
  ov_abandoned : int;
  ov_retried : int;
  ov_late : int;
}

type server_load = {
  sl_name : string;
  sl_profiles : load_profile list;
  sl_knee : float;
  sl_serial_cap_per_sec : float;  (** one-at-a-time upper bound *)
  sl_knee_throughput : float;  (** measured, clients = ceil knee *)
  sl_points : load_point list;
}

type load_report = {
  lr_bullet : server_load;
  lr_nfs : server_load;
  lr_overload_clients : int;
  lr_peak_goodput : float;
  lr_overload : overload_point list;
}

(* Convert one traced operation's attribution segments into scheduler
   demands.  Net time goes to the wire station, disk time to a drive arm
   (a fixed arm for reads, alternating for the mirrored writes of
   create), and everything else — CPU, cache memcpy, alloc, server and
   client self-time — to the CPU station.  Every microsecond of the
   trace lands on exactly one station, so the segment sum equals the
   attributed end-to-end time by construction. *)
let profile_of_segments ~disk segs =
  let next_arm = ref st_arm0 in
  let station_of = function
    | Amoeba_trace.Sink.Net -> st_net
    | Amoeba_trace.Sink.Disk -> (
      match disk with
      | `Arm i -> st_arm0 + i
      | `Alternate ->
        let a = !next_arm in
        next_arm := if a = st_arm0 then st_arm1 else st_arm0;
        a)
    | Amoeba_trace.Sink.Cpu | Amoeba_trace.Sink.Cache | Amoeba_trace.Sink.Alloc
    | Amoeba_trace.Sink.Server | Amoeba_trace.Sink.Client ->
      st_cpu
  in
  List.fold_left
    (fun acc (layer, us) ->
      let st = station_of layer in
      match acc with
      | (prev, sum) :: tl when prev = st -> (prev, sum + us) :: tl
      | _ -> (st, us) :: acc)
    [] segs
  |> List.rev

let load_profile_of_spans ~cls ~disk spans =
  let traced_us = (Amoeba_trace.Attrib.of_spans spans).Amoeba_trace.Attrib.total_us in
  let segments = profile_of_segments ~disk (Amoeba_trace.Attrib.segments spans) in
  let segment_sum = List.fold_left (fun acc (_, us) -> acc + us) 0 segments in
  if segment_sum <> traced_us then
    failwith
      (Printf.sprintf "load: %s profile sums to %d us but the trace attributes %d us" cls
         segment_sum traced_us);
  ( { Sched.pr_name = cls; pr_segments = segments },
    {
      lpr_class = cls;
      lpr_segments = List.map (fun (st, us) -> (load_station_names.(st), us)) segments;
      lpr_traced_us = traced_us;
    } )

(* Trace the real Bullet server once per operation class.  A small cache
   makes the cold-read class honest: two 64 KB fillers evict the target
   between create and read. *)
let bullet_load_profiles () =
  let config = { Server.default_config with Server.cache_bytes = 160 * 1024; max_cached_files = 8 } in
  let traced ~cls ~disk f =
    let bed = make_bullet_bed ~config () in
    let tracer = Amoeba_trace.Trace.create ~clock:bed.b_clock () in
    let sink = Amoeba_trace.Trace.sink tracer in
    let measured = f bed in
    Amoeba_rpc.Transport.set_tracer (Client.transport bed.b_client) (Some tracer);
    Server.set_tracer bed.b_server (Some tracer);
    measured ();
    Amoeba_rpc.Transport.set_tracer (Client.transport bed.b_client) None;
    Server.set_tracer bed.b_server None;
    load_profile_of_spans ~cls ~disk (Amoeba_trace.Sink.spans sink)
  in
  let hot =
    traced ~cls:"read4k" ~disk:(`Arm 0) (fun bed ->
        let cap = Client.create bed.b_client (Bytes.make 4_096 'h') in
        ignore (Client.read bed.b_client cap);
        fun () -> ignore (Client.read bed.b_client cap))
  in
  let cold =
    traced ~cls:"read64k" ~disk:(`Arm 0) (fun bed ->
        let target = Client.create bed.b_client (Bytes.make 65_536 'c') in
        (* evict the target so the traced read pays the disk *)
        let f1 = Client.create bed.b_client (Bytes.make 65_536 '1') in
        let f2 = Client.create bed.b_client (Bytes.make 65_536 '2') in
        ignore (Client.read bed.b_client f1);
        ignore (Client.read bed.b_client f2);
        fun () -> ignore (Client.read bed.b_client target))
  in
  let create =
    traced ~cls:"create64k" ~disk:`Alternate (fun bed ->
        let data = Bytes.make 65_536 'w' in
        fun () -> ignore (Client.create bed.b_client data))
  in
  (hot, cold, create)

(* Same protocol against the NFS baseline.  The NFS server itself emits
   no spans, so its CPU shows up as root self-time ([Server] layer); the
   transport and the traced block device supply the net and disk
   segments. *)
let nfs_load_profiles () =
  let traced ~cls ~disk f =
    let clock = Clock.create () in
    let geometry = Geometry.small ~sectors:testbed_sectors in
    let dev = Dev.create ~id:"nfs-load" ~geometry ~clock in
    Nfs.format dev ~max_files:2048;
    let server = Result.get_ok (Nfs.mount dev) in
    let transport = Amoeba_rpc.Transport.create ~clock in
    Nfs_baseline.Nfs_proto.serve server transport;
    let client = Nfs_client.connect transport (Nfs.port server) in
    let tracer = Amoeba_trace.Trace.create ~clock () in
    let sink = Amoeba_trace.Trace.sink tracer in
    let measured = f server client in
    Amoeba_rpc.Transport.set_tracer transport (Some tracer);
    Dev.set_tracer dev (Some tracer);
    measured ();
    Amoeba_rpc.Transport.set_tracer transport None;
    Dev.set_tracer dev None;
    load_profile_of_spans ~cls ~disk (Amoeba_trace.Sink.spans sink)
  in
  let hot =
    traced ~cls:"read4k" ~disk:(`Arm 0) (fun _server client ->
        let fh = Nfs_client.create client in
        Nfs_client.write_file client fh (Bytes.make 4_096 'h');
        ignore (Nfs_client.read_at client fh ~off:0 ~len:4_096);
        fun () -> ignore (Nfs_client.read_at client fh ~off:0 ~len:4_096))
  in
  let cold =
    traced ~cls:"read64k" ~disk:(`Arm 0) (fun server client ->
        let fh = Nfs_client.create client in
        Nfs_client.write_file client fh (Bytes.make 65_536 'c');
        Nfs.age_cache server;
        Nfs.age_cache server;
        fun () -> ignore (Nfs_client.read_file client fh ~size:65_536))
  in
  let create =
    traced ~cls:"create64k" ~disk:(`Arm 0) (fun _server client ->
        let data = Bytes.make 65_536 'w' in
        fun () ->
          let fh = Nfs_client.create client in
          Nfs_client.write_file client fh data)
  in
  (hot, cold, create)

let load_config ~arms ~profiles ~clients ~think_us ~requests_per_client ~overload =
  {
    Sched.stations = load_stations ~arms;
    profiles;
    clients;
    think_us;
    requests_per_client;
    overload;
  }

(* The client mix: hot reads, cold reads against each arm, creates.
   Duplicating the cold-read profile with its disk demand on the other
   arm is how the simulation spreads mirrored-read traffic the way the
   real server's balanced mirror does. *)
let bullet_mix (hot, cold, create) =
  let on_other_arm p =
    {
      Sched.pr_name = p.Sched.pr_name ^ "-arm1";
      pr_segments =
        List.map
          (fun (st, us) -> ((if st = st_arm0 then st_arm1 else st), us))
          p.Sched.pr_segments;
    }
  in
  [ hot; cold; on_other_arm cold; create ]

let nfs_mix (hot, cold, create) = [ hot; cold; create ]

let run_load_point config clients =
  let r = Sched.run { config with Sched.clients } in
  {
    lp_clients = clients;
    lp_throughput = r.Sched.throughput_per_sec;
    lp_mean_ms = r.Sched.mean_response_ms;
    lp_p50_ms = r.Sched.p50_response_ms;
    lp_p95_ms = r.Sched.p95_response_ms;
    lp_p99_ms = r.Sched.p99_response_ms;
    lp_util =
      List.map (fun s -> (s.Sched.sr_name, s.Sched.utilisation)) r.Sched.station_reports;
  }

let load_overload_policies = [ ("block", Sched.Block); ("shed", Sched.Shed) ]

(* The acceptance checks live in the experiment itself so every bench or
   CI run enforces them, not just the test suite. *)
let assert_load_invariants r =
  let check name cond =
    if not cond then failwith ("load experiment invariant violated: " ^ name)
  in
  List.iter
    (fun sl ->
      List.iter
        (fun p ->
          let sum = List.fold_left (fun acc (_, us) -> acc + us) 0 p.lpr_segments in
          check
            (Printf.sprintf "%s/%s profile sum = traced time" sl.sl_name p.lpr_class)
            (sum = p.lpr_traced_us))
        sl.sl_profiles)
    [ r.lr_bullet; r.lr_nfs ];
  (* (a) concurrency: at the knee the multi-station runtime beats the
     serial one-request-at-a-time bound *)
  check "bullet knee throughput exceeds the serial bound"
    (r.lr_bullet.sl_knee_throughput > r.lr_bullet.sl_serial_cap_per_sec);
  let find name = List.find (fun p -> String.equal p.ov_policy name) r.lr_overload in
  let block = find "block" and shed = find "shed" and deadline = find "deadline" in
  (* (b) overload: shedding keeps goodput at the peak, blocking collapses *)
  check "shed goodput within 10% of peak" (shed.ov_goodput >= 0.9 *. r.lr_peak_goodput);
  check "deadline goodput within 10% of peak"
    (deadline.ov_goodput >= 0.9 *. r.lr_peak_goodput);
  check "block goodput degrades below 90% of peak"
    (block.ov_goodput < 0.9 *. r.lr_peak_goodput);
  check "block goodput below shed goodput" (block.ov_goodput < shed.ov_goodput)

let load_experiment ?(client_counts = [ 1; 2; 4; 8; 16; 32; 64 ]) ?(think_ms = 50)
    ?(requests_per_client = 40) () =
  let think_us = think_ms * 1000 in
  let bullet_parts = bullet_load_profiles () in
  let nfs_parts = nfs_load_profiles () in
  let describe (a, b, c) = [ a; b; c ] in
  let server name ~arms mix parts =
    let profiles = mix (let (a, _), (b, _), (c, _) = parts in (a, b, c)) in
    let config =
      load_config ~arms ~profiles ~clients:1 ~think_us ~requests_per_client
        ~overload:Sched.no_overload
    in
    let knee = Sched.saturation_clients config in
    let knee_clients = max 1 (int_of_float (ceil knee)) in
    {
      sl_name = name;
      sl_profiles = List.map snd (describe parts);
      sl_knee = knee;
      sl_serial_cap_per_sec = Sched.serial_throughput_per_sec config;
      sl_knee_throughput = (run_load_point config knee_clients).lp_throughput;
      sl_points = List.map (run_load_point config) client_counts;
    }
  in
  let bullet = server "bullet" ~arms:2 bullet_mix bullet_parts in
  let nfs = server "nfs" ~arms:1 nfs_mix nfs_parts in
  (* Overload: drive the Bullet configuration at twice its saturation
     population with a bounded accept queue and retrying clients.  Under
     Block the abandoned-but-still-queued work turns into late
     completions and goodput collapses; Shed and Deadline keep goodput at
     the admitted-work ceiling. *)
  let bullet_profiles =
    bullet_mix (let (a, _), (b, _), (c, _) = bullet_parts in (a, b, c))
  in
  let peak_goodput =
    List.fold_left (fun acc p -> Float.max acc p.lp_throughput) 0. bullet.sl_points
  in
  (* Saturation in the measured curve, not the analytic knee: the
     smallest swept population within 5% of peak.  The analytic knee uses
     mean demands, so with a mixed workload the curve keeps climbing for
     a while past it. *)
  let saturation_pop =
    match
      List.find_opt (fun p -> p.lp_throughput >= 0.95 *. peak_goodput) bullet.sl_points
    with
    | Some p -> p.lp_clients
    | None -> List.length client_counts
  in
  let overload_clients = max 2 (2 * saturation_pop) in
  (* The accept limit is the concurrency that reaches peak throughput,
     so admission control binds without starving the bottleneck.  Client
     patience must then exceed the in-service response at that
     concurrency (~8 x the 78 ms bottleneck demand) or admitted requests
     abandon too; 2 s is comfortably above it and far below the
     unbounded queue waits Block builds up. *)
  let retry = Backoff.policy ~attempts:4 ~timeout_us:2_000_000 ~backoff_us:50_000 in
  let overload_point (name, policy) =
    let overload = { Sched.accept_limit = 8; policy; retry = Some retry } in
    let r =
      Sched.run
        (load_config ~arms:2 ~profiles:bullet_profiles ~clients:overload_clients ~think_us
           ~requests_per_client ~overload)
    in
    {
      ov_policy = name;
      ov_goodput = r.Sched.throughput_per_sec;
      ov_p99_ms = r.Sched.p99_response_ms;
      ov_offered = r.Sched.offered;
      ov_completed = r.Sched.completed;
      ov_failed = r.Sched.failed;
      ov_shed = r.Sched.shed_count;
      ov_deadline_misses = r.Sched.deadline_misses;
      ov_abandoned = r.Sched.abandoned;
      ov_retried = r.Sched.retried;
      ov_late = r.Sched.late;
    }
  in
  let overload =
    List.map overload_point
      (load_overload_policies @ [ ("deadline", Sched.Deadline 300_000) ])
  in
  let report =
    {
      lr_bullet = bullet;
      lr_nfs = nfs;
      lr_overload_clients = overload_clients;
      lr_peak_goodput = peak_goodput;
      lr_overload = overload;
    }
  in
  assert_load_invariants report;
  report

(* A small overloaded run with the tracer on: the deterministic trace
   the CI double-run diffs, and the input for [bullet_trace --sched]. *)
let load_sched_trace () =
  let (hot, _), (cold, _), (create, _) = bullet_load_profiles () in
  let profiles = bullet_mix (hot, cold, create) in
  (* Patience must clear the 233 ms create profile or only the 4 KB reads
     could ever complete; the tight deadline still drops plenty, so the
     trace shows ok, late, deadline and abandon outcomes side by side. *)
  let retry = Backoff.policy ~attempts:3 ~timeout_us:500_000 ~backoff_us:20_000 in
  let config =
    load_config ~arms:2 ~profiles ~clients:12 ~think_us:20_000 ~requests_per_client:6
      ~overload:{ Sched.accept_limit = 4; policy = Sched.Deadline 150_000; retry = Some retry }
  in
  let sink = Amoeba_trace.Sink.create () in
  let report = Sched.run ~sink config in
  (sink, report)

(* ---- LEASE: the zero-RPC read fast path ---- *)

module Dir_server = Amoeba_dir.Dir_server
module Station = Amoeba_lease.Station
module Cap = Amoeba_cap.Capability
module Sealer = Amoeba_cap.Sealer

(* One transport, three Bullet servers (file storage plus the two
   directory-pair stores), the replicated directory pair on top.  This is
   the full stack a leased station talks to: names and leases from the
   pair, bytes from the file server. *)
type lease_rig = {
  lz_clock : Clock.t;
  lz_transport : Transport.t;
  lz_files : Server.t;
  lz_files_client : Client.t;
  lz_pair : Pair.t;
  lz_dirs : Dir_client.t;
  lz_root : Cap.t;
}

(* Short leases keep the experiment clock small; every timing below is
   stated relative to this. *)
let lease_dir_config = { Dir_server.default_config with Dir_server.lease_us = 200_000 }

let make_lease_rig () =
  let clock = Clock.create () in
  let transport = Transport.create ~clock in
  let geometry = Geometry.small ~sectors:testbed_sectors in
  let boot name seed =
    let d1 = Dev.create ~id:(name ^ "-1") ~geometry ~clock in
    let d2 = Dev.create ~id:(name ^ "-2") ~geometry ~clock in
    let mirror = Mirror.create [ d1; d2 ] in
    Server.format mirror ~max_files:1024;
    let server, _report = Result.get_ok (Server.start ~seed mirror) in
    Bullet_core.Proto.serve server transport;
    (server, Client.connect transport (Server.port server))
  in
  let files, files_client = boot "lease-files" 5L in
  let _, primary_store = boot "lease-dirp" 11L in
  let _, backup_store = boot "lease-dirb" 22L in
  let pair = Pair.create ~config:lease_dir_config ~primary_store ~backup_store () in
  Pair.serve pair transport;
  let dirs = Dir_client.connect transport (Pair.port pair) in
  {
    lz_clock = clock;
    lz_transport = transport;
    lz_files = files;
    lz_files_client = files_client;
    lz_pair = pair;
    lz_dirs = dirs;
    lz_root = Pair.root pair;
  }

let trusted_station ?config rig =
  Station.create ?config ~sealer:(Server.sealer rig.lz_files) ~store:rig.lz_files_client
    ~dirs:rig.lz_dirs ()

let untrusted_station ?config rig =
  Station.create ?config ~store:rig.lz_files_client ~dirs:rig.lz_dirs ()

let transactions rig = Amoeba_sim.Stats.count (Transport.stats rig.lz_transport) "transactions"

(* Run [f] and count the RPC transactions it issued. *)
let counting_rpcs rig f =
  let before = transactions rig in
  let v = f () in
  (v, transactions rig - before)

(* ---- no-stale-byte scenarios under fault plans ---- *)

type lease_fault = {
  lf_plan : string;
  lf_reads : int;
  lf_failed : int;  (** liveness losses: Not_found after removal, exhausted retries *)
  lf_stale : int;  (** reads returning old bytes after the mutation completed — must be 0 *)
  lf_revalidations : int;  (** renew + grant RPCs the station issued *)
  lf_consistent : bool;  (** pair replicas byte-identical at the end *)
}

(* The common reader loop: a station reads [name] every [step_us]; the
   writer replaces the binding at [mutate_at] (on the shared clock).  A
   read that completes at or after the replace completed and still
   returns the old bytes is a stale serve — the protocol's one forbidden
   outcome.  [mutate] performs the mutation and returns the completion
   time; reads that raise count as liveness failures only. *)
let stale_read_loop ~rig ~station ~name ~old_data ~step_us ~until_us ~mutate_at ~mutate
    ~(poll : unit -> unit) () =
  let reads = ref 0 and failed = ref 0 and stale = ref 0 in
  let mutated_at = ref max_int in
  while Clock.now rig.lz_clock < until_us do
    poll ();
    if Clock.now rig.lz_clock >= mutate_at && !mutated_at = max_int then
      mutated_at := mutate ();
    (match Station.read station ~dir:rig.lz_root name with
    | data ->
      incr reads;
      if Bytes.equal data old_data && Clock.now rig.lz_clock >= !mutated_at then incr stale
    | exception Status.Error _ -> incr failed);
    Clock.advance rig.lz_clock step_us
  done;
  (!reads, !failed, !stale)

let revalidations station =
  let s = Station.stats station in
  Amoeba_sim.Stats.count s "lease_renewals" + Amoeba_sim.Stats.count s "lease_grants"

(* Scenario 1: a replace racing lease expiry.  Reads are spaced so the
   mutation lands exactly while a granted lease is still outstanding —
   the directory pair must wait the horizon out before bumping. *)
let lease_fault_expiry_race () =
  let rig = make_lease_rig () in
  let station = trusted_station rig in
  let data_a = Bytes.make 4_096 'A' and data_b = Bytes.make 4_096 'B' in
  let cap_a = Client.create rig.lz_files_client data_a in
  Dir_client.enter rig.lz_dirs rig.lz_root "f" cap_a;
  ignore (Station.read station ~dir:rig.lz_root "f");
  let mutate () =
    let cap_b = Client.create rig.lz_files_client data_b in
    ignore (Dir_client.replace rig.lz_dirs rig.lz_root "f" cap_b);
    Clock.now rig.lz_clock
  in
  let start = Clock.now rig.lz_clock in
  let reads, failed, stale =
    stale_read_loop ~rig ~station ~name:"f" ~old_data:data_a ~step_us:60_000
      ~until_us:(start + 1_500_000) ~mutate_at:(start + 130_000) ~mutate
      ~poll:(fun () -> ())
      ()
  in
  {
    lf_plan = "expiry-races-replace";
    lf_reads = reads;
    lf_failed = failed;
    lf_stale = stale;
    lf_revalidations = revalidations station;
    lf_consistent = Option.is_none (Pair.divergence rig.lz_pair);
  }

(* Scenario 2: the directory primary crashes on the epoch-bumping
   mutation and heals later from the backup's checkpoint — which must
   carry the epoch, or healed clients could trust stale leases. *)
let lease_fault_primary_crash () =
  let rig = make_lease_rig () in
  let station = trusted_station rig in
  let data_a = Bytes.make 4_096 'A' and data_b = Bytes.make 4_096 'B' in
  let cap_a = Client.create rig.lz_files_client data_a in
  Dir_client.enter rig.lz_dirs rig.lz_root "f" cap_a;
  ignore (Station.read station ~dir:rig.lz_root "f");
  let start = Clock.now rig.lz_clock in
  let crash_at = start + 125_000 and heal_at = start + 900_000 in
  let plan =
    Plan.create ~seed:0x1EA5EL
    |> fun p -> Plan.at p ~us:crash_at Plan.Server_crash
    |> fun p -> Plan.at p ~us:heal_at Plan.Server_reboot
  in
  let injector =
    Injector.attach ~transport:rig.lz_transport
      ~on_crash:(fun () -> Pair.fail_primary rig.lz_pair)
      ~on_reboot:(fun () -> Pair.heal_primary rig.lz_pair)
      ~clock:rig.lz_clock plan
  in
  let mutate () =
    let cap_b = Client.create rig.lz_files_client data_b in
    ignore (Dir_client.replace rig.lz_dirs rig.lz_root "f" cap_b);
    Clock.now rig.lz_clock
  in
  let reads, failed, stale =
    stale_read_loop ~rig ~station ~name:"f" ~old_data:data_a ~step_us:60_000
      ~until_us:(start + 1_500_000)
      ~mutate_at:crash_at (* the bump lands in the crash window *)
      ~mutate
      ~poll:(fun () -> Injector.poll injector)
      ()
  in
  Injector.poll injector;
  Injector.detach injector;
  let dump_p, dump_b = Pair.replica_dumps rig.lz_pair in
  let epochs_agree =
    match
      ( Dir_server.epoch (Pair.primary rig.lz_pair) (Dir_server.root (Pair.primary rig.lz_pair)),
        Dir_server.epoch (Pair.backup rig.lz_pair) (Dir_server.root (Pair.backup rig.lz_pair)) )
    with
    | Ok a, Ok b -> a = b
    | _ -> false
  in
  {
    lf_plan = "dir-primary-crash";
    lf_reads = reads;
    lf_failed = failed;
    lf_stale = stale;
    lf_revalidations = revalidations station;
    lf_consistent =
      Pair.primary_alive rig.lz_pair
      && Option.is_none (Pair.divergence rig.lz_pair)
      && String.equal dump_p dump_b && epochs_agree;
  }

(* Scenario 3: message loss while leases are being revalidated.  Reads
   are spaced past the lease term so every read needs a renewal RPC, and
   30% of messages vanish; the station's retries carry it through (or
   fail the read — a liveness loss, never a stale serve). *)
let lease_fault_loss_on_revalidate () =
  let rig = make_lease_rig () in
  let station = trusted_station rig in
  let data_a = Bytes.make 4_096 'A' and data_b = Bytes.make 4_096 'B' in
  let cap_a = Client.create rig.lz_files_client data_a in
  Dir_client.enter rig.lz_dirs rig.lz_root "f" cap_a;
  ignore (Station.read station ~dir:rig.lz_root "f");
  let start = Clock.now rig.lz_clock in
  let plan =
    Plan.create ~seed:0x10FFL
    |> fun p -> Plan.at p ~us:(start + 200_000) (Plan.Message_loss 0.3)
    |> fun p -> Plan.at p ~us:(start + 2_200_000) (Plan.Message_loss 0.)
  in
  let injector = Injector.attach ~transport:rig.lz_transport ~clock:rig.lz_clock plan in
  let mutate () =
    let cap_b = Client.create rig.lz_files_client data_b in
    ignore (Dir_client.replace rig.lz_dirs rig.lz_root "f" cap_b);
    Clock.now rig.lz_clock
  in
  let reads, failed, stale =
    stale_read_loop ~rig ~station ~name:"f" ~old_data:data_a ~step_us:250_000
      ~until_us:(start + 3_200_000)
      ~mutate_at:(start + 2_400_000) (* after the loss window clears *)
      ~mutate
      ~poll:(fun () -> Injector.poll injector)
      ()
  in
  Injector.detach injector;
  {
    lf_plan = "loss-on-revalidation";
    lf_reads = reads;
    lf_failed = failed;
    lf_stale = stale;
    lf_revalidations = revalidations station;
    lf_consistent = Option.is_none (Pair.divergence rig.lz_pair);
  }

(* Scenario 4: a skewed client lease clock, scripted through the plan
   DSL (this also exercises the lease_skew grammar).  The clock jumps
   forward mid-lease, then steps backwards — the backward step must drop
   every lease.  The binding is removed after the skewing; a skewed
   client may fail reads early (liveness) but never serves after the
   removal completed. *)
let lease_fault_clock_skew () =
  let rig = make_lease_rig () in
  let station = trusted_station rig in
  let data_a = Bytes.make 4_096 'A' in
  let cap_a = Client.create rig.lz_files_client data_a in
  Dir_client.enter rig.lz_dirs rig.lz_root "f" cap_a;
  ignore (Station.read station ~dir:rig.lz_root "f");
  let start = Clock.now rig.lz_clock in
  let plan_text =
    Printf.sprintf "seed 77\nat %d lease_skew 150000\nat %d lease_skew -50000\n"
      (start + 200_000) (start + 700_000)
  in
  let plan = match Plan.parse plan_text with Ok p -> p | Error e -> failwith e in
  let injector =
    Injector.attach ~transport:rig.lz_transport ~on_lease_skew:(Station.set_skew station)
      ~clock:rig.lz_clock plan
  in
  let mutate () =
    Dir_client.remove_name rig.lz_dirs rig.lz_root "f";
    Clock.now rig.lz_clock
  in
  let reads, failed, stale =
    stale_read_loop ~rig ~station ~name:"f" ~old_data:data_a ~step_us:60_000
      ~until_us:(start + 1_800_000) ~mutate_at:(start + 900_000) ~mutate
      ~poll:(fun () -> Injector.poll injector)
      ()
  in
  Injector.detach injector;
  let steps_back = Amoeba_sim.Stats.count (Station.stats station) "lease_clock_steps_back" in
  {
    lf_plan = "lease-clock-skew";
    lf_reads = reads;
    lf_failed = failed;
    lf_stale = stale;
    lf_revalidations = revalidations station;
    lf_consistent = steps_back >= 1 && Option.is_none (Pair.divergence rig.lz_pair);
  }

(* ---- the leased LOAD profile: what the scheduler sees ---- *)

(* Trace one warm leased read.  No transport tracer is attached, and
   none is needed: the fast path never touches the transport, which is
   the point — the trace must contain zero "rpc" spans. *)
let leased_hot_profile () =
  let rig = make_lease_rig () in
  let station = trusted_station rig in
  let cap = Client.create rig.lz_files_client (Bytes.make 4_096 'h') in
  Dir_client.enter rig.lz_dirs rig.lz_root "hot" cap;
  ignore (Station.read station ~dir:rig.lz_root "hot");
  ignore (Station.read station ~dir:rig.lz_root "hot");
  let tracer = Amoeba_trace.Trace.create ~clock:rig.lz_clock () in
  let sink = Amoeba_trace.Trace.sink tracer in
  Amoeba_rpc.Transport.set_tracer rig.lz_transport (Some tracer);
  Station.set_tracer station (Some tracer);
  ignore (Station.read station ~dir:rig.lz_root "hot");
  Station.set_tracer station None;
  Amoeba_rpc.Transport.set_tracer rig.lz_transport None;
  let spans = Amoeba_trace.Sink.spans sink in
  let profile, lpr = load_profile_of_spans ~cls:"leased.read" ~disk:(`Arm 0) spans in
  (profile, lpr, Amoeba_trace.Attrib.rpc_count spans)

type lease_report = {
  le_cold_rpcs : int;  (** first read: lease grant + SIZE + READ *)
  le_warm_reads : int;
  le_warm_rpcs : int;  (** across all warm reads — must be 0 *)
  le_warm_read_us : int;  (** one warm read: local verify + memcpy only *)
  le_trusted_hit_us : int;
  le_untrusted_hit_us : int;
  le_untrusted_hit_rpcs : int;  (** the verification round trip *)
  le_renew_rpcs : int;  (** read after expiry: the one cheap epoch check *)
  le_forged_rejected : bool;  (** forged check field fails local verification *)
  le_faults : lease_fault list;
  le_hot_profile : load_profile;
  le_hot_rpc_count : int;  (** "rpc" spans in the traced warm read — must be 0 *)
  le_baseline_hot : load_profile;
  le_baseline_knee : float;
  le_baseline_knee_throughput : float;
  le_leased_knee : float;
  le_leased_knee_throughput : float;
  le_server_evicted_bytes : int;  (** under pressure, from the server RAM cache *)
  le_client_evicted_bytes : int;  (** same counter, client side *)
}

(* Memory pressure on both ends: small server and client caches, a
   working set that fits in neither. Both caches evict, and both account
   the displaced data under the same [bytes_evicted] counter, so a bench
   can put the two eviction streams side by side. *)
let lease_cache_pressure () =
  let clock = Clock.create () in
  let transport = Transport.create ~clock in
  let geometry = Geometry.small ~sectors:testbed_sectors in
  let d1 = Dev.create ~id:"lp-1" ~geometry ~clock in
  let d2 = Dev.create ~id:"lp-2" ~geometry ~clock in
  let mirror = Mirror.create [ d1; d2 ] in
  Server.format mirror ~max_files:256;
  let config =
    { Server.default_config with Server.cache_bytes = 96 * 1024; max_cached_files = 4 }
  in
  let server, _report = Result.get_ok (Server.start ~config ~seed:33L mirror) in
  Bullet_core.Proto.serve server transport;
  let store = Client.connect transport (Server.port server) in
  let dirs = Dir_server.create ~config:lease_dir_config ~store () in
  Amoeba_dir.Dir_proto.serve dirs transport;
  let dclient = Dir_client.connect transport (Dir_server.port dirs) in
  let station =
    Station.create
      ~config:{ Station.default_config with Station.cache_bytes = 96 * 1024 }
      ~sealer:(Server.sealer server) ~store ~dirs:dclient ()
  in
  let root = Dir_server.root dirs in
  for i = 0 to 9 do
    let cap = Client.create store (Bytes.make 16_384 (Char.chr (Char.code 'a' + i))) in
    Dir_client.enter dclient root (Printf.sprintf "f%d" i) cap
  done;
  for _round = 1 to 2 do
    for i = 0 to 9 do
      ignore (Station.read station ~dir:root (Printf.sprintf "f%d" i))
    done
  done;
  ( Server.cache_bytes_evicted server,
    Amoeba_lease.File_cache.bytes_evicted (Station.cache station) )

let assert_lease_invariants r =
  let check name cond =
    if not cond then failwith ("lease experiment invariant violated: " ^ name)
  in
  check "warm leased reads issue zero RPCs" (r.le_warm_rpcs = 0 && r.le_warm_reads > 0);
  check "warm leased read spends no network time (sub-millisecond)" (r.le_warm_read_us < 1_000);
  check "traced leased read contains zero rpc spans" (r.le_hot_rpc_count = 0);
  check "cold read pays the lease grant and the fetch" (r.le_cold_rpcs >= 3);
  check "untrusted hit pays exactly one verification RPC" (r.le_untrusted_hit_rpcs = 1);
  check "trusted hit is faster than untrusted hit" (r.le_trusted_hit_us < r.le_untrusted_hit_us);
  check "expired lease revalidates with one RPC" (r.le_renew_rpcs = 1);
  check "forged capability rejected locally" r.le_forged_rejected;
  check "at least three fault scenarios" (List.length r.le_faults >= 3);
  List.iter
    (fun f ->
      check (f.lf_plan ^ ": no stale serve, ever") (f.lf_stale = 0);
      check (f.lf_plan ^ ": reads actually ran") (f.lf_reads > 0);
      check (f.lf_plan ^ ": replicas consistent") f.lf_consistent)
    r.le_faults;
  check "dir-primary crash scenario present"
    (List.exists (fun f -> String.equal f.lf_plan "dir-primary-crash") r.le_faults);
  check "leased clients move the LOAD knee right"
    (r.le_leased_knee_throughput > r.le_baseline_knee_throughput);
  check "server cache evicted bytes under pressure" (r.le_server_evicted_bytes > 0);
  check "client cache evicted bytes under pressure" (r.le_client_evicted_bytes > 0)

let lease_experiment () =
  (* phase A: zero-RPC warm reads on a trusted station *)
  let rig = make_lease_rig () in
  let station = trusted_station rig in
  let data = Bytes.make 4_096 'h' in
  let cap = Client.create rig.lz_files_client data in
  Dir_client.enter rig.lz_dirs rig.lz_root "hot" cap;
  let _, cold_rpcs = counting_rpcs rig (fun () -> Station.read station ~dir:rig.lz_root "hot") in
  let warm_reads = 10 in
  let warm_t0 = Clock.now rig.lz_clock in
  let _, warm_rpcs =
    counting_rpcs rig (fun () ->
        for _ = 1 to warm_reads do
          ignore (Station.read station ~dir:rig.lz_root "hot")
        done)
  in
  let warm_read_us = (Clock.now rig.lz_clock - warm_t0) / warm_reads in
  let trusted_hit_us = time rig.lz_clock (fun () -> ignore (Station.read station ~dir:rig.lz_root "hot")) in
  (* phase B: the untrusted path is unchanged — one verification RPC *)
  let ustation = untrusted_station rig in
  ignore (Station.read ustation ~dir:rig.lz_root "hot");
  let (_, untrusted_hit_rpcs), untrusted_hit_us =
    let r = ref (Bytes.empty, 0) in
    let us =
      time rig.lz_clock (fun () ->
          r := counting_rpcs rig (fun () -> Station.read ustation ~dir:rig.lz_root "hot"))
    in
    (!r, us)
  in
  let forged =
    let sealer = Server.sealer rig.lz_files in
    let bad = Cap.v ~port:cap.Cap.port ~obj:cap.Cap.obj ~rights:cap.Cap.rights
        ~check:(Int64.add cap.Cap.check 1L)
    in
    Sealer.verify_local sealer ~cap && not (Sealer.verify_local sealer ~cap:bad)
  in
  (* a lapsed lease costs exactly one renewal RPC before the cached serve *)
  Clock.advance rig.lz_clock (2 * lease_dir_config.Dir_server.lease_us);
  let _, renew_rpcs = counting_rpcs rig (fun () -> Station.read station ~dir:rig.lz_root "hot") in
  (* phase C: fault plans *)
  let faults =
    [
      lease_fault_expiry_race ();
      lease_fault_primary_crash ();
      lease_fault_loss_on_revalidate ();
      lease_fault_clock_skew ();
    ]
  in
  (* phase D: the LOAD knee with leased clients *)
  let (hot, hot_lpr), (cold, _), (create, _) = bullet_load_profiles () in
  let leased_hot, leased_lpr, hot_rpc_count = leased_hot_profile () in
  let knee_of profiles =
    let config =
      load_config ~arms:2 ~profiles ~clients:1 ~think_us:50_000 ~requests_per_client:40
        ~overload:Sched.no_overload
    in
    let knee = Sched.saturation_clients config in
    let knee_clients = max 1 (int_of_float (ceil knee)) in
    (knee, (run_load_point config knee_clients).lp_throughput)
  in
  let baseline_knee, baseline_tp = knee_of (bullet_mix (hot, cold, create)) in
  let leased_knee, leased_tp = knee_of (bullet_mix (leased_hot, cold, create)) in
  let server_evicted, client_evicted = lease_cache_pressure () in
  let report =
    {
      le_cold_rpcs = cold_rpcs;
      le_warm_reads = warm_reads;
      le_warm_rpcs = warm_rpcs;
      le_warm_read_us = warm_read_us;
      le_trusted_hit_us = trusted_hit_us;
      le_untrusted_hit_us = untrusted_hit_us;
      le_untrusted_hit_rpcs = untrusted_hit_rpcs;
      le_renew_rpcs = renew_rpcs;
      le_forged_rejected = forged;
      le_faults = faults;
      le_hot_profile = leased_lpr;
      le_hot_rpc_count = hot_rpc_count;
      le_baseline_hot = hot_lpr;
      le_baseline_knee = baseline_knee;
      le_baseline_knee_throughput = baseline_tp;
      le_leased_knee = leased_knee;
      le_leased_knee_throughput = leased_tp;
      le_server_evicted_bytes = server_evicted;
      le_client_evicted_bytes = client_evicted;
    }
  in
  assert_lease_invariants report;
  report

(* A small scripted scenario with the tracer on: grant, zero-RPC hits,
   expiry + renewal, revocation after a replace, and a failed read after
   removal.  Deterministic — the CI double-run diffs its dump, and
   [bullet_trace --lease] renders it. *)
let lease_trace () =
  let rig = make_lease_rig () in
  let station = trusted_station rig in
  let tracer = Amoeba_trace.Trace.create ~clock:rig.lz_clock () in
  let sink = Amoeba_trace.Trace.sink tracer in
  Amoeba_rpc.Transport.set_tracer rig.lz_transport (Some tracer);
  Server.set_tracer rig.lz_files (Some tracer);
  Station.set_tracer station (Some tracer);
  let data_a = Bytes.make 4_096 'A' and data_b = Bytes.make 4_096 'B' in
  let cap_a = Client.create rig.lz_files_client data_a in
  Dir_client.enter rig.lz_dirs rig.lz_root "f" cap_a;
  ignore (Station.read station ~dir:rig.lz_root "f");
  (* two zero-RPC hits *)
  ignore (Station.read station ~dir:rig.lz_root "f");
  ignore (Station.read station ~dir:rig.lz_root "f");
  (* lapse the lease: expire + renew, then serve from cache *)
  Clock.advance rig.lz_clock (2 * lease_dir_config.Dir_server.lease_us);
  ignore (Station.read station ~dir:rig.lz_root "f");
  (* replace: next revalidation sees the epoch move and revokes *)
  let cap_b = Client.create rig.lz_files_client data_b in
  ignore (Dir_client.replace rig.lz_dirs rig.lz_root "f" cap_b);
  Clock.advance rig.lz_clock (2 * lease_dir_config.Dir_server.lease_us);
  ignore (Station.read station ~dir:rig.lz_root "f");
  (* removal: the read fails after revalidation, leaving a raised span *)
  Dir_client.remove_name rig.lz_dirs rig.lz_root "f";
  Clock.advance rig.lz_clock (2 * lease_dir_config.Dir_server.lease_us);
  (try ignore (Station.read station ~dir:rig.lz_root "f")
   with Status.Error _ -> ());
  Station.set_tracer station None;
  Server.set_tracer rig.lz_files None;
  Amoeba_rpc.Transport.set_tracer rig.lz_transport None;
  sink

(* ---- METRICS: live health over scripted fault plans ---- *)

module Metrics = Amoeba_metrics.Metrics
module Health = Amoeba_metrics.Health

type metrics_scenario = {
  ms_name : string;
  ms_interval_us : int;
  ms_snapshots : Metrics.snapshot list;  (** the scrape ring, oldest first *)
  ms_transitions : (int * Health.state) list;
  ms_alerts : (int * string * bool) list;  (** SLO fire/clear edges *)
  ms_final : Health.state;
}

type metrics_report = {
  mx_scenarios : metrics_scenario list;
  mx_status_metrics : int;  (** samples in the STD_STATUS snapshot *)
  mx_status_bytes : int;  (** its binary encoding *)
  mx_roundtrip_ok : bool;  (** encode -> decode -> encode is byte-identical *)
}

let scenario_of ~name ~interval_us ~scraper ~health ~slo =
  {
    ms_name = name;
    ms_interval_us = interval_us;
    ms_snapshots = Metrics.Ring.snapshots (Metrics.Scraper.ring scraper);
    ms_transitions = Health.transitions health;
    ms_alerts = Health.Slo.transitions slo;
    ms_final = Health.state health;
  }

(* Scenario 1: the resync story as the health layer sees it.  A drive
   dies at 2 s and rejoins fully dirty at 4 s while a read workload
   (with a trickle of creates exercising the degraded write path) keeps
   running.  The server's own registry carries the mirror
   gauges, so the scraper reads exactly what STD_STATUS serves; the
   transition sequence must be Healthy -> Degraded -> Healthy with no
   flapping while the resync drains. *)
let metrics_drive_rejoin () =
  let interval_us = 500_000 in
  let clock = Clock.create () in
  let geometry = Geometry.small ~sectors:8_192 in
  let d1 = Dev.create ~id:"mx-1" ~geometry ~clock in
  let d2 = Dev.create ~id:"mx-2" ~geometry ~clock in
  let mirror = Mirror.create [ d1; d2 ] in
  Server.format mirror ~max_files:1024;
  let config =
    { Server.default_config with cache_bytes = 128 * 1024; max_cached_files = 16 }
  in
  let server, _ = Result.get_ok (Server.start ~config mirror) in
  let transport = Transport.create ~clock in
  Bullet_core.Proto.serve server transport;
  let client = Client.connect ~attempts:4 ~backoff_us:25_000 transport (Server.port server) in
  let files =
    Array.init 16 (fun i ->
        Client.create client ~p_factor:2 (Bytes.make 32_768 (Char.chr (65 + i))))
  in
  Clock.reset clock;
  (* the Degraded entry payload is the prospective backlog: a rejoining
     drive starts fully dirty, so the gauge reports the offline drive's
     whole capacity until the resync cursor takes over *)
  let fail_at = 2_150_000 and rejoin_at = 4_000_000 and run_until = 16_000_000 in
  let plan =
    Plan.create ~seed:0xBEADL
    |> fun p -> Plan.at p ~us:fail_at (Plan.Drive_fail 0)
    |> fun p -> Plan.at p ~us:rejoin_at (Plan.Drive_rejoin 256)
  in
  let injector = Injector.attach ~transport ~mirror ~clock plan in
  let reg = Server.metrics server in
  Transport.register_metrics transport reg;
  Injector.register_metrics injector reg;
  let scraper = Metrics.Scraper.create ~registry:reg ~clock ~interval_us ~capacity:64 in
  let health = Health.create () in
  let slo =
    Health.Slo.create
      [
        {
          (* this workload is disk-bound from the first cold read: the
             latency SLO burns immediately and never recovers — the
             always-on alert STD_STATUS consumers see *)
          Health.Slo.al_name = "read-p99";
          objective = Health.Slo.P99_below { metric = "server.read_us"; limit = 25_000 };
          window = 6;
          enter_pct = 50;
          exit_pct = 16;
        };
        {
          (* the hysteresis demo: burns while the dirty backlog is
             non-zero, fires a few intervals into the resync and clears
             a few intervals after the mirror is clean *)
          Health.Slo.al_name = "resync-backlog";
          objective =
            Health.Slo.P99_below { metric = "mirror.sectors_remaining"; limit = 0 };
          window = 6;
          enter_pct = 50;
          exit_pct = 16;
        };
      ]
  in
  let i = ref 0 in
  while Clock.now clock < run_until do
    (try ignore (Client.read client files.(!i * 5 mod Array.length files))
     with Status.Error _ -> ());
    if !i mod 16 = 0 then ignore (Client.create client ~p_factor:2 (Bytes.make 8_192 'x'));
    incr i;
    Clock.advance clock 10_000;
    Injector.poll injector;
    match Metrics.Scraper.poll scraper with
    | None -> ()
    | Some snap ->
      ignore (Health.observe health snap);
      Health.Slo.observe slo snap
  done;
  Injector.detach injector;
  (* the STD_STATUS surface, exercised off the same live registry *)
  let status = Bullet_core.Proto.encode_status server in
  let roundtrip =
    match Bullet_core.Proto.decode_status status with
    | Error _ -> false
    | Ok snap -> Bytes.equal (Metrics.encode_snapshot snap) status
  in
  let n_samples =
    match Bullet_core.Proto.decode_status status with
    | Error _ -> 0
    | Ok snap -> List.length snap.Metrics.samples
  in
  ( scenario_of ~name:"drive-rejoin" ~interval_us ~scraper ~health ~slo,
    (n_samples, Bytes.length status, roundtrip),
    Mirror.sync_state mirror = Mirror.Clean )

(* Scenario 2: an overload storm through the scheduler.  Twice-saturated
   shedding admission: the health layer must call it Overloaded from the
   interval shed rate, the p99 SLO must burn through its window, and the
   goodput floor must fire when the storm drains and per-interval
   completions collapse. *)
let metrics_overload_storm () =
  let interval_us = 100_000 in
  let mclock = Clock.create () in
  let reg = Metrics.create "storm" in
  let scraper = Metrics.Scraper.create ~registry:reg ~clock:mclock ~interval_us ~capacity:128 in
  let health = Health.create () in
  let slo =
    Health.Slo.create
      [
        {
          Health.Slo.al_name = "response-p99";
          objective = Health.Slo.P99_below { metric = "sched.response_us"; limit = 8_000 };
          window = 5;
          enter_pct = 60;
          exit_pct = 20;
        };
        {
          Health.Slo.al_name = "goodput-floor";
          objective = Health.Slo.Delta_at_least { metric = "sched.completed"; floor = 10 };
          window = 5;
          enter_pct = 60;
          exit_pct = 20;
        };
        {
          (* error budget on shed work: fires once the run has rejected
             more attempts than the budget allows, never clears *)
          Health.Slo.al_name = "shed-budget";
          objective = Health.Slo.P99_below { metric = "sched.sheds"; limit = 100 };
          window = 5;
          enter_pct = 60;
          exit_pct = 20;
        };
      ]
  in
  let observer at =
    if at > Clock.now mclock then Clock.advance_to mclock at;
    match Metrics.Scraper.poll scraper with
    | None -> ()
    | Some snap ->
      ignore (Health.observe health snap);
      Health.Slo.observe slo snap
  in
  let retry = Backoff.policy ~attempts:3 ~timeout_us:500_000 ~backoff_us:20_000 in
  let config =
    {
      Sched.stations =
        [
          Sched.station "cpu" ~layer:Amoeba_trace.Sink.Cpu (Sched.Round_robin 1_000);
          Sched.station "net" ~layer:Amoeba_trace.Sink.Net Sched.Delay;
        ];
      profiles = [ { Sched.pr_name = "read4k"; pr_segments = [ (0, 3_000); (1, 1_000) ] } ];
      clients = 64;
      think_us = 10_000;
      requests_per_client = 40;
      overload = { Sched.accept_limit = 4; policy = Sched.Shed; retry = Some retry };
    }
  in
  let report = Sched.run ~metrics:reg ~observer config in
  (scenario_of ~name:"overload-storm" ~interval_us ~scraper ~health ~slo, report)

(* Scenario 3: lease churn under scripted clock skew.  A station reads a
   hot binding under short leases; the plan DSL jumps its lease clock
   forward (every read now renews) and then steps it backwards (drop all
   leases, re-grant).  The churn counter spikes and the evaluator must
   call it Lease_churning — never Degraded or Overloaded, which is what
   separates the three fault signatures. *)
let metrics_lease_skew () =
  let interval_us = 200_000 in
  let rig = make_lease_rig () in
  let station = trusted_station rig in
  let reg = Metrics.create "lease-skew" in
  Station.register_metrics station reg;
  Transport.register_metrics rig.lz_transport reg;
  let data = Bytes.make 4_096 'L' in
  let cap = Client.create rig.lz_files_client data in
  Dir_client.enter rig.lz_dirs rig.lz_root "hot" cap;
  ignore (Station.read station ~dir:rig.lz_root "hot");
  let start = Clock.now rig.lz_clock in
  let scraper =
    Metrics.Scraper.create ~registry:reg ~clock:rig.lz_clock ~interval_us ~capacity:64
  in
  (* the default threshold (3 events per interval) sits above the normal
     renewal cadence — one expiry + grant per lease horizon — so only
     the skew phases read as churn *)
  let health = Health.create () in
  let slo =
    Health.Slo.create
      [
        {
          (* the skew must cost lease traffic, not reads: the station
             keeps serving warm hits every interval, so this floor never
             burns — asserted below as an empty alert-edge list *)
          Health.Slo.al_name = "hit-floor";
          objective = Health.Slo.Delta_at_least { metric = "client_cache.hits"; floor = 1 };
          window = 4;
          enter_pct = 75;
          exit_pct = 25;
        };
      ]
  in
  let plan_text =
    Printf.sprintf "seed 41\nat %d lease_skew 150000\nat %d lease_skew -50000\n"
      (start + 300_000) (start + 900_000)
  in
  let plan = match Plan.parse plan_text with Ok p -> p | Error e -> failwith e in
  let injector =
    Injector.attach ~transport:rig.lz_transport ~on_lease_skew:(Station.set_skew station)
      ~clock:rig.lz_clock plan
  in
  while Clock.now rig.lz_clock < start + 2_400_000 do
    Injector.poll injector;
    (try ignore (Station.read station ~dir:rig.lz_root "hot") with Status.Error _ -> ());
    (match Metrics.Scraper.poll scraper with
    | None -> ()
    | Some snap ->
      ignore (Health.observe health snap);
      Health.Slo.observe slo snap);
    Clock.advance rig.lz_clock 60_000
  done;
  Injector.detach injector;
  scenario_of ~name:"lease-skew" ~interval_us ~scraper ~health ~slo

(* The acceptance checks live in the experiment so every bench or CI run
   enforces the exact transition shapes, not just the test suite. *)
let assert_metrics_invariants r =
  let check name cond =
    if not cond then failwith ("metrics experiment invariant violated: " ^ name)
  in
  let find name = List.find (fun s -> String.equal s.ms_name name) r.mx_scenarios in
  let kinds s = List.map snd s.ms_transitions in
  let fired s name = List.exists (fun (_, n, f) -> f && String.equal n name) s.ms_alerts in
  let rejoin = find "drive-rejoin" in
  (match kinds rejoin with
  | [ Health.Healthy; Health.Degraded { resync_backlog }; Health.Healthy ] ->
    check "drive-rejoin backlog positive at entry" (resync_backlog > 0)
  | _ -> check "drive-rejoin transitions are healthy -> degraded -> healthy" false);
  check "drive-rejoin ends healthy" (rejoin.ms_final = Health.Healthy);
  check "drive-rejoin read-p99 alert fired" (fired rejoin "read-p99");
  check "drive-rejoin resync-backlog alert fired" (fired rejoin "resync-backlog");
  check "drive-rejoin resync-backlog alert cleared"
    (List.exists
       (fun (_, n, f) -> (not f) && String.equal n "resync-backlog")
       rejoin.ms_alerts);
  check "drive-rejoin scraped through the run" (List.length rejoin.ms_snapshots >= 20);
  let storm = find "overload-storm" in
  (match kinds storm with
  | Health.Healthy :: Health.Overloaded { shed_rate } :: rest ->
    check "overload-storm shed rate positive" (shed_rate > 0);
    check "overload-storm never leaves overloaded except to healthy"
      (List.for_all (fun st -> st = Health.Healthy) rest)
  | _ -> check "overload-storm transitions enter overloaded" false);
  check "overload-storm shed-budget alert fired" (fired storm "shed-budget");
  check "overload-storm response-p99 alert fired" (fired storm "response-p99");
  check "overload-storm goodput-floor alert fired" (fired storm "goodput-floor");
  let skew = find "lease-skew" in
  check "lease-skew transitions are healthy -> lease_churning -> healthy"
    (match kinds skew with
    | [ Health.Healthy; Health.Lease_churning; Health.Healthy ] -> true
    | _ -> false);
  check "lease-skew hit-floor stays quiet" (skew.ms_alerts = []);
  check "status snapshot roundtrip is byte-identical" r.mx_roundtrip_ok;
  check "status snapshot carries the whole registry" (r.mx_status_metrics >= 20)

let metrics_experiment () =
  let rejoin, (status_metrics, status_bytes, roundtrip), clean = metrics_drive_rejoin () in
  let storm, _sched_report = metrics_overload_storm () in
  let skew = metrics_lease_skew () in
  let report =
    {
      mx_scenarios = [ rejoin; storm; skew ];
      mx_status_metrics = status_metrics;
      mx_status_bytes = status_bytes;
      mx_roundtrip_ok = roundtrip && clean;
    }
  in
  assert_metrics_invariants report;
  report

(* Deterministic text dump of the whole run — every snapshot, every
   transition, every alert edge.  The CI double-run diffs it byte for
   byte, and [bullet_top --replay] renders the same data as a
   dashboard. *)
let metrics_dump r =
  let buf = Buffer.create 65_536 in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "== scenario %s interval_us %d\n" s.ms_name s.ms_interval_us);
      List.iter (fun snap -> Buffer.add_string buf (Metrics.to_text snap)) s.ms_snapshots;
      Buffer.add_string buf "-- transitions\n";
      List.iter
        (fun (at, st) ->
          Buffer.add_string buf (Printf.sprintf "%d %s\n" at (Health.state_label st)))
        s.ms_transitions;
      Buffer.add_string buf "-- alerts\n";
      List.iter
        (fun (at, name, firing) ->
          Buffer.add_string buf
            (Printf.sprintf "%d %s %s\n" at name (if firing then "fire" else "clear")))
        s.ms_alerts;
      Buffer.add_string buf
        (Printf.sprintf "-- final %s\n" (Health.state_label s.ms_final)))
    r.mx_scenarios;
  Buffer.add_string buf
    (Printf.sprintf "status metrics %d bytes %d roundtrip %b\n" r.mx_status_metrics
       r.mx_status_bytes r.mx_roundtrip_ok);
  Buffer.contents buf

(* ---- TXN: atomic multi-object operations under fault plans ---- *)

module Txn = Amoeba_txn.Txn
module Txn_wal = Amoeba_txn.Wal
module Bullet_fsck = Bullet_core.Fsck

(* One transport, a Bullet file server and TWO replicated directory
   pairs (each on its own pair of stores) — the smallest stack on which
   all three multi-object scenarios run, including a rename whose two
   participants live on different pairs.  Everything hangs off one
   virtual clock, so every run is exactly reproducible. *)
type txn_rig = {
  tx_clock : Clock.t;
  tx_transport : Transport.t;
  tx_files : Server.t;
  tx_files_client : Client.t;
  tx_pair_a : Pair.t;
  tx_dirs_a : Dir_client.t;
  tx_pair_b : Pair.t;
  tx_dirs_b : Dir_client.t;
}

let make_txn_rig () =
  let clock = Clock.create () in
  let transport = Transport.create ~clock in
  let geometry = Geometry.small ~sectors:testbed_sectors in
  let boot name seed =
    let d1 = Dev.create ~id:(name ^ "-1") ~geometry ~clock in
    let d2 = Dev.create ~id:(name ^ "-2") ~geometry ~clock in
    let mirror = Mirror.create [ d1; d2 ] in
    Server.format mirror ~max_files:1024;
    let server, _report = Result.get_ok (Server.start ~seed mirror) in
    Bullet_core.Proto.serve server transport;
    (server, Client.connect transport (Server.port server))
  in
  let files, files_client = boot "txn-files" 5L in
  let _, store_ap = boot "txn-dir-ap" 11L in
  let _, store_ab = boot "txn-dir-ab" 22L in
  let _, store_bp = boot "txn-dir-bp" 33L in
  let _, store_bb = boot "txn-dir-bb" 44L in
  (* distinct seeds: each pair mints its own service port and seals *)
  let pair_a = Pair.create ~seed:0xA11CEL ~primary_store:store_ap ~backup_store:store_ab () in
  let pair_b = Pair.create ~seed:0xB0BCA7L ~primary_store:store_bp ~backup_store:store_bb () in
  Pair.serve pair_a transport;
  Pair.serve pair_b transport;
  {
    tx_clock = clock;
    tx_transport = transport;
    tx_files = files;
    tx_files_client = files_client;
    tx_pair_a = pair_a;
    tx_dirs_a = Dir_client.connect transport (Pair.port pair_a);
    tx_pair_b = pair_b;
    tx_dirs_b = Dir_client.connect transport (Pair.port pair_b);
  }

let txn_bound dirs root name =
  match Dir_client.lookup dirs root name with
  | cap -> Some cap
  | exception Status.Error _ -> None

(* The reference roots for the orphan check: every capability the naming
   layer can still reach, including the older entries of each version
   stack.  The directory servers persist into their own stores, so the
   file server's live set must be covered by the listings alone. *)
let txn_reachable rig =
  let from_pair dirs pair =
    let root = Pair.root pair in
    List.concat_map
      (fun (name, _) -> Dir_client.versions dirs root name)
      (Dir_client.list dirs root)
  in
  from_pair rig.tx_dirs_a rig.tx_pair_a @ from_pair rig.tx_dirs_b rig.tx_pair_b

(* Prepared residue left anywhere after resolution — must be zero. *)
let txn_residue rig =
  Server.txn_pending_count rig.tx_files
  + Server.txn_condemned_count rig.tx_files
  + Dir_server.txn_pending_count (Pair.primary rig.tx_pair_a)
  + Dir_server.txn_pending_count (Pair.backup rig.tx_pair_a)
  + Dir_server.txn_pending_count (Pair.primary rig.tx_pair_b)
  + Dir_server.txn_pending_count (Pair.backup rig.tx_pair_b)

let txn_dumps_equal rig =
  let pa, ba = Pair.replica_dumps rig.tx_pair_a in
  let pb, bb = Pair.replica_dumps rig.tx_pair_b in
  String.equal pa ba && String.equal pb bb

(* Each scenario sets up its own initial state against the rig and
   returns its name, a driver (None = the coordinator crashed mid-run)
   and an atomicity oracle: given the resolved outcome, is the visible
   state exactly the committed state or exactly the initial state —
   never a mixture. *)
let txn_scenario_create rig =
  let data = Bytes.make 2_048 'N' in
  let root = Pair.root rig.tx_pair_a in
  let run txn =
    match
      Txn.create_and_bind txn ~bullet:rig.tx_files_client ~dir:rig.tx_dirs_a ~dir_cap:root
        ~name:"fresh" data
    with
    | outcome, _cap -> Some outcome
    | exception Txn.Crashed _ -> None
  in
  let atomic outcome =
    match txn_bound rig.tx_dirs_a root "fresh" with
    | Some cap ->
      String.equal outcome "committed"
      && (match Client.read rig.tx_files_client cap with
         | bytes -> Bytes.equal bytes data
         | exception Status.Error _ -> false)
    | None -> String.equal outcome "aborted"
  in
  ("create_and_bind", run, atomic)

let txn_scenario_rename rig =
  let data = Bytes.make 2_048 'R' in
  let cap = Client.create rig.tx_files_client data in
  let root_a = Pair.root rig.tx_pair_a and root_b = Pair.root rig.tx_pair_b in
  Dir_client.enter rig.tx_dirs_a root_a "from" cap;
  let run txn =
    match
      Txn.rename txn
        ~from:(rig.tx_dirs_a, root_a, "from")
        ~into:(rig.tx_dirs_b, root_b, "into")
    with
    | outcome -> Some outcome
    | exception Txn.Crashed _ -> None
  in
  let atomic outcome =
    match
      (outcome, txn_bound rig.tx_dirs_a root_a "from", txn_bound rig.tx_dirs_b root_b "into")
    with
    | "committed", None, Some c -> Cap.equal c cap
    | "aborted", Some c, None -> Cap.equal c cap
    | _ -> false
  in
  ("rename", run, atomic)

let txn_scenario_replace rig =
  let old_data = Bytes.make 2_048 'O' and new_data = Bytes.make 2_048 'W' in
  let old_cap = Client.create rig.tx_files_client old_data in
  let root = Pair.root rig.tx_pair_a in
  Dir_client.enter rig.tx_dirs_a root "doc" old_cap;
  let run txn =
    match
      Txn.replace_with_delete txn ~bullet:rig.tx_files_client ~dir:rig.tx_dirs_a ~dir_cap:root
        ~name:"doc" new_data
    with
    | outcome, _cap -> Some outcome
    | exception Txn.Crashed _ -> None
  in
  let atomic outcome =
    match txn_bound rig.tx_dirs_a root "doc" with
    | None -> false
    | Some now -> (
      let read cap =
        match Client.read rig.tx_files_client cap with
        | bytes -> Some bytes
        | exception Status.Error _ -> None
      in
      match (outcome, read now, read old_cap) with
      | "committed", Some bytes, None ->
        (not (Cap.equal now old_cap)) && Bytes.equal bytes new_data
      | "aborted", Some bytes, Some _ -> Cap.equal now old_cap && Bytes.equal bytes old_data
      | _ -> false)
  in
  ("replace_with_delete", run, atomic)

type txn_fault = {
  tf_plan : string;
  tf_scenario : string;
  tf_expected : string;  (** the outcome the plan must resolve to *)
  tf_outcome : string;  (** the post-recovery outcome: committed or aborted *)
  tf_crashed : bool;  (** a crash directive actually fired mid-protocol *)
  tf_in_doubt_before : int;  (** WAL in-doubt count when recovery starts *)
  tf_resolved_commits : int;
  tf_resolved_aborts : int;
  tf_atomic : bool;  (** visible state matches the outcome everywhere — never mixed *)
  tf_orphans : int;  (** fsck orphans on the file server after recovery — must be 0 *)
  tf_pending : int;  (** prepared residue anywhere after recovery — must be 0 *)
  tf_dumps_equal : bool;  (** both pairs byte-identical across replicas *)
  tf_stable : bool;  (** a second recovery pass finds nothing to do *)
}

(* Every edge of the protocol, one named plan each: the five crash
   points (scripted as [txn_crash] directives through the plan DSL) and
   loss / duplication on each of the four message legs.  The expected
   outcome is pinned per plan: a fault before the commit record must
   resolve to aborted-everywhere, after it to committed-everywhere. *)
let txn_fault_table =
  [
    ("coord-crash-before-prepare", "txn_crash coord_before_prepare", `Create, "aborted", 1);
    ("coord-crash-after-prepare", "txn_crash coord_after_prepare", `Create, "aborted", 1);
    ("coord-crash-after-commit-record", "txn_crash coord_after_commit", `Rename, "committed", 1);
    ("coord-crash-mid-decision", "txn_crash coord_mid_decision", `Replace, "committed", 1);
    ("participant-crash-after-prepare", "txn_crash participant_after_prepare", `Create,
      "committed", 0);
    ("drop-prepare-req", "txn_drop prepare_req 1", `Create, "aborted", 0);
    ("drop-prepare-reply", "txn_drop prepare_reply 1", `Rename, "aborted", 0);
    ("drop-decision-req", "txn_drop decision_req 1", `Create, "committed", 1);
    ("drop-decision-reply", "txn_drop decision_reply 1", `Replace, "committed", 1);
    ("dup-prepare-req", "txn_dup prepare_req", `Rename, "committed", 0);
    ("dup-prepare-reply", "txn_dup prepare_reply", `Create, "committed", 0);
    ("dup-decision-req", "txn_dup decision_req", `Replace, "committed", 0);
    ("dup-decision-reply", "txn_dup decision_reply", `Rename, "committed", 0);
  ]

let txn_run_case (plan_name, directive, which, expected, _expected_doubt) =
  let rig = make_txn_rig () in
  let scenario =
    match which with
    | `Create -> txn_scenario_create
    | `Rename -> txn_scenario_rename
    | `Replace -> txn_scenario_replace
  in
  let sc_name, run, atomic = scenario rig in
  let plan_text = Printf.sprintf "seed 424242\nat 0 %s\n" directive in
  let plan = match Plan.parse plan_text with Ok p -> p | Error e -> failwith e in
  (* the crash action defines what "crash" means per edge: coordinator
     edges unwind the coordinator (the WAL survives); the participant
     edge kills the directory pair's primary replica instead *)
  let injector =
    Injector.attach ~transport:rig.tx_transport
      ~on_txn_crash:(fun edge ->
        match edge with
        | Plan.Participant_after_prepare -> Pair.fail_primary rig.tx_pair_a
        | edge -> raise (Txn.Crashed edge))
      ~clock:rig.tx_clock plan
  in
  let txn =
    Txn.create ~injector ~metrics:(Server.metrics rig.tx_files)
      ~bullets:[ rig.tx_files_client ]
      ~dirs:[ rig.tx_dirs_a; rig.tx_dirs_b ]
      ()
  in
  let ran = run txn in
  let participant_down = not (Pair.primary_alive rig.tx_pair_a) in
  let in_doubt_before = Txn.in_doubt_count txn in
  (* recovery: heal the crashed replica first (it restores from the
     surviving checkpoint, intents and all), then resolve the WAL *)
  if participant_down then Pair.heal_primary rig.tx_pair_a;
  let resolved = Txn.recover txn in
  let again = Txn.recover txn in
  Injector.detach injector;
  let outcome =
    match ran with
    | Some o -> Txn.outcome_name o
    | None -> if resolved.Txn.resolved_commits > 0 then "committed" else "aborted"
  in
  {
    tf_plan = plan_name;
    tf_scenario = sc_name;
    tf_expected = expected;
    tf_outcome = outcome;
    tf_crashed = ran = None || participant_down;
    tf_in_doubt_before = in_doubt_before;
    tf_resolved_commits = resolved.Txn.resolved_commits;
    tf_resolved_aborts = resolved.Txn.resolved_aborts;
    tf_atomic = atomic outcome;
    tf_orphans = List.length (Bullet_fsck.orphans rig.tx_files ~reachable:(txn_reachable rig));
    tf_pending = txn_residue rig;
    tf_dumps_equal = txn_dumps_equal rig;
    tf_stable = again.Txn.resolved_commits = 0 && again.Txn.resolved_aborts = 0;
  }

(* The unfaulted baseline: all three scenarios through one coordinator,
   every one committing cleanly. *)
let txn_quiet_run () =
  let rig = make_txn_rig () in
  let scenarios = [ txn_scenario_create rig; txn_scenario_rename rig; txn_scenario_replace rig ] in
  let txn =
    Txn.create
      ~bullets:[ rig.tx_files_client ]
      ~dirs:[ rig.tx_dirs_a; rig.tx_dirs_b ]
      ()
  in
  let outcomes =
    List.map
      (fun (name, run, atomic) ->
        let outcome =
          match run txn with Some o -> Txn.outcome_name o | None -> "crashed"
        in
        (name, outcome, atomic outcome))
      scenarios
  in
  let clean =
    List.for_all (fun (_, _, ok) -> ok) outcomes
    && Txn.in_doubt_count txn = 0
    && txn_residue rig = 0
    && txn_dumps_equal rig
    && Bullet_fsck.orphans rig.tx_files ~reachable:(txn_reachable rig) = []
  in
  (List.map (fun (n, o, _) -> (n, o)) outcomes, Txn_wal.length (Txn.wal txn), clean)

(* The health story: a coordinator dies between two decision legs and
   stays dead.  The [txn.in_doubt] gauge (mounted on the file server's
   registry, so STD_STATUS serves it) reads 1; one scrape of doubt is a
   decision leg in flight, two consecutive flips the health state to
   Txn_stuck; recovery drains the gauge and hysteresis walks the state
   back to Healthy. *)
let txn_health_story () =
  let rig = make_txn_rig () in
  let plan =
    match Plan.parse "seed 9\nat 0 txn_crash coord_mid_decision\n" with
    | Ok p -> p
    | Error e -> failwith e
  in
  let injector =
    Injector.attach ~transport:rig.tx_transport
      ~on_txn_crash:(fun edge -> raise (Txn.Crashed edge))
      ~clock:rig.tx_clock plan
  in
  let registry = Server.metrics rig.tx_files in
  let txn =
    Txn.create ~injector ~metrics:registry
      ~bullets:[ rig.tx_files_client ]
      ~dirs:[ rig.tx_dirs_a; rig.tx_dirs_b ]
      ()
  in
  let _, run, _ = txn_scenario_create rig in
  (match run txn with
  | None -> ()
  | Some _ -> failwith "txn health story: the armed crash did not fire");
  Injector.detach injector;
  let interval_us = 500_000 in
  let scraper =
    Metrics.Scraper.create ~registry ~clock:rig.tx_clock ~interval_us ~capacity:32
  in
  let health = Health.create () in
  let scrape n =
    for _ = 1 to n do
      Clock.advance rig.tx_clock interval_us;
      match Metrics.Scraper.poll scraper with
      | Some snap -> ignore (Health.observe health snap)
      | None -> ()
    done
  in
  scrape 3;
  let stuck = Health.state health in
  let (_ : Txn.recovery) = Txn.recover txn in
  scrape 3;
  let status = Bullet_core.Proto.encode_status rig.tx_files in
  let has_gauges =
    match Bullet_core.Proto.decode_status status with
    | Error _ -> false
    | Ok snap ->
      Option.is_some (Metrics.find snap "txn.in_doubt")
      && Option.is_some (Metrics.find snap "txn.committed")
      && Option.is_some (Metrics.find snap "txn.aborted")
      && Option.is_some (Metrics.find snap "txn.prepared")
  in
  let transitions =
    List.map (fun (at, st) -> (at, Health.state_label st)) (Health.transitions health)
  in
  (transitions, Health.state_label stuck, has_gauges)

type txn_report = {
  tx_quiet : (string * string) list;  (** scenario name, outcome of the unfaulted run *)
  tx_quiet_wal : int;  (** WAL records after the three quiet commits *)
  tx_quiet_clean : bool;  (** quiet runs atomic, residue-free, orphan-free *)
  tx_faults : txn_fault list;
  tx_health : (int * string) list;  (** health transitions of the stuck-coordinator run *)
  tx_stuck_label : string;  (** the state while the coordinator stayed dead *)
  tx_status_has_gauges : bool;  (** STD_STATUS carries the [txn.*] surface *)
}

let assert_txn_invariants r =
  let check name cond =
    if not cond then failwith (Printf.sprintf "TXN invariant violated: %s" name)
  in
  check "quiet runs all commit"
    (List.for_all (fun (_, o) -> String.equal o "committed") r.tx_quiet);
  check "quiet runs leave no residue and full WAL coverage"
    (r.tx_quiet_clean && r.tx_quiet_wal = 16);
  List.iter
    (fun f ->
      let ck what cond = check (Printf.sprintf "%s: %s" f.tf_plan what) cond in
      ck (Printf.sprintf "resolves to %s" f.tf_expected)
        (String.equal f.tf_outcome f.tf_expected);
      ck "atomic (never mixed)" f.tf_atomic;
      ck "no orphaned objects" (f.tf_orphans = 0);
      ck "no prepared residue" (f.tf_pending = 0);
      ck "replica dumps byte-identical" f.tf_dumps_equal;
      ck "recovery idempotent" f.tf_stable)
    r.tx_faults;
  check "every crash plan actually crashed"
    (List.for_all
       (fun f ->
         (not (String.length f.tf_plan > 4 && String.sub f.tf_plan 0 4 = "coor"))
         && not (String.length f.tf_plan > 4 && String.sub f.tf_plan 0 4 = "part")
         || f.tf_crashed)
       r.tx_faults);
  check "stuck coordinator reads txn_stuck:1" (String.equal r.tx_stuck_label "txn_stuck:1");
  check "health walks healthy -> txn_stuck -> healthy"
    (match List.map snd r.tx_health with
    | [ "healthy"; "txn_stuck:1"; "healthy" ] -> true
    | _ -> false);
  check "STD_STATUS carries the txn gauges" r.tx_status_has_gauges

let txn_experiment () =
  let quiet, quiet_wal, quiet_clean = txn_quiet_run () in
  let faults = List.map txn_run_case txn_fault_table in
  let health, stuck_label, has_gauges = txn_health_story () in
  let report =
    {
      tx_quiet = quiet;
      tx_quiet_wal = quiet_wal;
      tx_quiet_clean = quiet_clean;
      tx_faults = faults;
      tx_health = health;
      tx_stuck_label = stuck_label;
      tx_status_has_gauges = has_gauges;
    }
  in
  assert_txn_invariants report;
  report

(* Deterministic text dump — one line per quiet run, per fault plan and
   per health transition.  The CI double-run diffs it byte for byte. *)
let txn_dump r =
  let buf = Buffer.create 4_096 in
  List.iter
    (fun (name, outcome) -> Buffer.add_string buf (Printf.sprintf "quiet %s %s\n" name outcome))
    r.tx_quiet;
  Buffer.add_string buf
    (Printf.sprintf "quiet wal_records %d clean %b\n" r.tx_quiet_wal r.tx_quiet_clean);
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf
           "plan %s scenario %s outcome %s crashed %b in_doubt %d resolved %d/%d atomic %b \
            orphans %d pending %d dumps_equal %b stable %b\n"
           f.tf_plan f.tf_scenario f.tf_outcome f.tf_crashed f.tf_in_doubt_before
           f.tf_resolved_commits f.tf_resolved_aborts f.tf_atomic f.tf_orphans f.tf_pending
           f.tf_dumps_equal f.tf_stable))
    r.tx_faults;
  List.iter
    (fun (at, label) -> Buffer.add_string buf (Printf.sprintf "health %d %s\n" at label))
    r.tx_health;
  Buffer.add_string buf
    (Printf.sprintf "stuck %s status_gauges %b\n" r.tx_stuck_label r.tx_status_has_gauges);
  Buffer.contents buf

(* ---- CLUSTER: a sharded multi-server Bullet with live rebalancing ---- *)

module Cluster = Amoeba_cluster.Cluster
module Cluster_ring = Amoeba_cluster.Ring

(* The episode's fixed cast: 48 objects over the default 64-shard space,
   three servers in two regions, two more joining mid-run (two joins can
   replace BOTH members of a group, which is what forces fall-through
   routing — a single membership change always keeps one old owner, so
   one join alone can never orphan a group) and one of the originals
   scripted to die mid-migration, leaving N = 4 live. *)
let cluster_keys = List.init 48 (fun i -> Printf.sprintf "obj-%03d" i)

let cluster_payload i =
  Bytes.make (512 + (97 * i mod 1_536)) (Char.chr (Char.code 'a' + (i mod 26)))

(* Virtual time after the join at which the plan kills [bee] — tuned to
   land while the join delta is still draining, which the invariants
   then pin. *)
let cluster_kill_offset = 4_000_000

type cluster_report = {
  cl_scenario : metrics_scenario;
  cl_objects : int;
  cl_live_servers : int;
  cl_join_delta : int;  (** dirty shards right after the two joins *)
  cl_join_expected : int;  (** ring-computed delta — must match exactly *)
  cl_untouched : int;  (** keys whose shard the whole episode never disturbed *)
  cl_untouched_moved : int;  (** of those, holders changed — must be 0 *)
  cl_kill_fired : bool;  (** the scripted [shard_kill] fired while rebalancing *)
  cl_polled_reads : int;  (** foreground reads issued during the episode *)
  cl_unreadable : int;  (** reads that failed or returned wrong bytes — must be 0 *)
  cl_fallthroughs : int;
  cl_read_repairs : int;
  cl_migrated : int;  (** objects copied by the rebalancer *)
  cl_under_peak : int;  (** worst under-replication seen after the kill *)
  cl_under_final : int;  (** must be 0 after the heal *)
  cl_spread : int * int;  (** min/max live copies per key at the end — must be (R, R) *)
  cl_checkpoint : string;  (** canonical cluster-directory dump *)
  cl_checkpoint_parses : bool;
  cl_double_run_identical : bool;  (** second full run, byte-identical checkpoint *)
  cl_status_has_gauges : bool;  (** STD_STATUS carries the [cluster.*] surface *)
}

(* One full episode: boot three servers, load the keyspace, join two
   more (marking exactly the ring-delta shards), then drain the backlog
   in bounded steps while foreground reads keep flowing and a scripted
   shard_kill fells [bee] mid-migration.  The health layer watches the
   cluster gauges off [ant]'s registry — the same registry STD_STATUS
   serves. *)
let cluster_run () =
  let c = Cluster.create () in
  let clock = Cluster.clock c in
  List.iter
    (fun (name, region) -> Cluster.add_server c ~name ~region)
    [ ("ant", "west"); ("bee", "west"); ("cow", "east") ];
  (* bootstrap deltas cover only empty shards — drain them so the join
     below starts from a clean map *)
  ignore (Cluster.rebalance c);
  let contents = List.mapi (fun i key -> (key, cluster_payload i)) cluster_keys in
  List.iter (fun (key, data) -> Cluster.put c ~from:"west" ~key data) contents;
  let hold0 = List.map (fun key -> (key, Cluster.holders c key)) cluster_keys in
  let ring0 = Cluster.ring c in
  let cfg = Cluster.config c in
  let reg = Server.metrics (Cluster.server c "ant") in
  Cluster.register_metrics c reg;
  let interval_us = 500_000 in
  let scraper = Metrics.Scraper.create ~registry:reg ~clock ~interval_us ~capacity:192 in
  let health = Health.create () in
  let slo =
    Health.Slo.create
      [
        {
          (* migration must not starve foreground traffic: at least one
             routed read per scrape interval, asserted quiet below *)
          Health.Slo.al_name = "route-floor";
          objective = Health.Slo.Delta_at_least { metric = "cluster.routed_reads"; floor = 1 };
          window = 4;
          enter_pct = 75;
          exit_pct = 25;
        };
      ]
  in
  let start = Clock.now clock in
  let plan_text =
    Printf.sprintf "seed 7\nat %d shard_kill bee\n" (start + cluster_kill_offset)
  in
  let plan = match Plan.parse plan_text with Ok p -> p | Error e -> failwith e in
  let kill_mid = ref false in
  let injector =
    Injector.attach ~transport:(Cluster.transport c)
      ~on_shard_kill:(fun name ->
        kill_mid := Cluster.rebalancing c;
        Cluster.kill_server c name)
      ~clock plan
  in
  let shard_moved ~before ~after i =
    Cluster_ring.owners before ~r:cfg.Cluster.replicas (Cluster.shard_key i)
    <> Cluster_ring.owners after ~r:cfg.Cluster.replicas (Cluster.shard_key i)
  in
  Cluster.add_server c ~name:"dog" ~region:"east";
  Cluster.add_server c ~name:"emu" ~region:"west";
  let join_delta = Cluster.shards_remaining c in
  let join_expected =
    List.length
      (List.filter
         (shard_moved ~before:ring0 ~after:(Cluster.ring c))
         (List.init cfg.Cluster.shards Fun.id))
  in
  let polled = ref 0 and unreadable = ref 0 and under_peak = ref 0 and idx = ref 0 in
  let read key =
    incr polled;
    match Cluster.get c ~from:"west" key with
    | data -> if not (Bytes.equal data (List.assoc key contents)) then incr unreadable
    | exception (Failure _ | Not_found | Status.Error _) -> incr unreadable
  in
  (* the double join replaced BOTH owners of some groups; read those
     keys before the rebalancer reaches their shards — each read must
     fall through to an old holder and read-repair, which is the
     migration fast path the invariants pin *)
  List.iter
    (fun key ->
      let holders = Cluster.holders c key in
      let group = Cluster.desired c key in
      if holders <> [] && List.for_all (fun srv -> not (List.mem srv group)) holders then
        read key)
    cluster_keys;
  let step () =
    Injector.poll injector;
    let key = List.nth cluster_keys (!idx mod List.length cluster_keys) in
    incr idx;
    read key;
    ignore (Cluster.rebalance_step c);
    under_peak := max !under_peak (List.length (Cluster.under_replicated c));
    (match Metrics.Scraper.poll scraper with
    | None -> ()
    | Some snap ->
      ignore (Health.observe health snap);
      Health.Slo.observe slo snap);
    Clock.advance clock 10_000
  in
  while Cluster.rebalancing c || Injector.pending injector > 0 do
    step ()
  done;
  (* tail: enough clean scrapes for hysteresis to walk the state home *)
  let tail_until = Clock.now clock + (3 * interval_us) + 10_000 in
  while Clock.now clock < tail_until do
    step ()
  done;
  Injector.detach injector;
  (* the oracle sweep: every object readable with the right bytes *)
  List.iter
    (fun (key, data) ->
      match Cluster.get c ~from:"east" key with
      | got -> if not (Bytes.equal got data) then incr unreadable
      | exception (Failure _ | Not_found | Status.Error _) -> incr unreadable)
    contents;
  let ring_final = Cluster.ring c in
  let untouched =
    List.filter
      (fun key -> not (shard_moved ~before:ring0 ~after:ring_final (Cluster.shard_of c key)))
      cluster_keys
  in
  let untouched_moved =
    List.length
      (List.filter (fun key -> Cluster.holders c key <> List.assoc key hold0) untouched)
  in
  let spread =
    List.fold_left
      (fun (lo, hi) key ->
        let n = List.length (Cluster.holders c key) in
        (min lo n, max hi n))
      (max_int, 0) cluster_keys
  in
  let ck = Cluster.checkpoint c in
  let parses =
    match Cluster.parse_checkpoint ck with
    | Ok info ->
      info.Cluster.ck_shards = cfg.Cluster.shards
      && info.Cluster.ck_replicas = cfg.Cluster.replicas
      && List.length info.Cluster.ck_servers = 5
      && List.length info.Cluster.ck_objects = List.length cluster_keys
    | Error _ -> false
  in
  let status = Bullet_core.Proto.encode_status (Cluster.server c "ant") in
  let has_gauges =
    match Bullet_core.Proto.decode_status status with
    | Error _ -> false
    | Ok snap ->
      Option.is_some (Metrics.find snap "cluster.shards_remaining")
      && Option.is_some (Metrics.find snap "cluster.objects_total")
      && Option.is_some (Metrics.find snap "cluster.under_replicated")
      && Option.is_some (Metrics.find snap "cluster.migrations_active")
  in
  let st = Cluster.stats c in
  {
    cl_scenario = scenario_of ~name:"cluster-rebalance" ~interval_us ~scraper ~health ~slo;
    cl_objects = Cluster.objects_total c;
    cl_live_servers = List.length (Cluster.live_servers c);
    cl_join_delta = join_delta;
    cl_join_expected = join_expected;
    cl_untouched = List.length untouched;
    cl_untouched_moved = untouched_moved;
    cl_kill_fired = !kill_mid && List.mem ("bee", "west", "dead") (Cluster.servers c);
    cl_polled_reads = !polled;
    cl_unreadable = !unreadable;
    cl_fallthroughs = Amoeba_sim.Stats.count st "fallthroughs";
    cl_read_repairs = Amoeba_sim.Stats.count st "read_repairs";
    cl_migrated = Amoeba_sim.Stats.count st "migrated_objects";
    cl_under_peak = !under_peak;
    cl_under_final = List.length (Cluster.under_replicated c);
    cl_spread = spread;
    cl_checkpoint = ck;
    cl_checkpoint_parses = parses;
    cl_double_run_identical = false;
    cl_status_has_gauges = has_gauges;
  }

let assert_cluster_invariants r =
  let check name cond =
    if not cond then failwith ("CLUSTER invariant violated: " ^ name)
  in
  check "join marks exactly the ring-delta shards" (r.cl_join_delta = r.cl_join_expected);
  check "join delta is a strict subset of the shard space"
    (r.cl_join_delta > 0 && r.cl_join_delta < Cluster.default_config.Cluster.shards);
  check "some shards lie outside every delta" (r.cl_untouched > 0);
  check "untouched shards never moved" (r.cl_untouched_moved = 0);
  check "the scripted kill fired mid-migration" r.cl_kill_fired;
  check "every foreground read readable throughout" (r.cl_unreadable = 0);
  check "migration ran under foreground traffic"
    (r.cl_polled_reads > List.length cluster_keys);
  check "fallthrough reads happened and were repaired"
    (r.cl_fallthroughs > 0 && r.cl_read_repairs > 0);
  check "the kill cost replicas" (r.cl_under_peak > 0);
  check "healed: zero under-replicated" (r.cl_under_final = 0);
  check "healed: exactly R live copies everywhere"
    (r.cl_spread = (Cluster.default_config.Cluster.replicas, Cluster.default_config.Cluster.replicas));
  check "all objects survive" (r.cl_objects = List.length cluster_keys);
  check "four servers remain live" (r.cl_live_servers = 4);
  (match List.map snd r.cl_scenario.ms_transitions with
  | [ Health.Healthy; Health.Rebalancing { shards_remaining }; Health.Healthy ] ->
    check "rebalancing backlog positive at entry" (shards_remaining > 0)
  | _ -> check "transitions are healthy -> rebalancing -> healthy" false);
  check "ends healthy" (r.cl_scenario.ms_final = Health.Healthy);
  check "route floor stays quiet" (r.cl_scenario.ms_alerts = []);
  check "checkpoint parses back" r.cl_checkpoint_parses;
  check "double run byte-identical" r.cl_double_run_identical;
  check "STD_STATUS carries the cluster gauges" r.cl_status_has_gauges

let cluster_experiment () =
  let first = cluster_run () in
  let second = cluster_run () in
  let report =
    {
      first with
      cl_double_run_identical = String.equal first.cl_checkpoint second.cl_checkpoint;
    }
  in
  assert_cluster_invariants report;
  report

(* Deterministic text dump — the scenario's snapshots, transitions and
   alert edges, the episode scalars, then the canonical checkpoint.
   The CI double-run diffs it byte for byte. *)
let cluster_dump r =
  let buf = Buffer.create 65_536 in
  let s = r.cl_scenario in
  Buffer.add_string buf
    (Printf.sprintf "== scenario %s interval_us %d\n" s.ms_name s.ms_interval_us);
  List.iter (fun snap -> Buffer.add_string buf (Metrics.to_text snap)) s.ms_snapshots;
  Buffer.add_string buf "-- transitions\n";
  List.iter
    (fun (at, st) ->
      Buffer.add_string buf (Printf.sprintf "%d %s\n" at (Health.state_label st)))
    s.ms_transitions;
  Buffer.add_string buf "-- alerts\n";
  List.iter
    (fun (at, name, firing) ->
      Buffer.add_string buf
        (Printf.sprintf "%d %s %s\n" at name (if firing then "fire" else "clear")))
    s.ms_alerts;
  Buffer.add_string buf (Printf.sprintf "-- final %s\n" (Health.state_label s.ms_final));
  let lo, hi = r.cl_spread in
  Buffer.add_string buf
    (Printf.sprintf
       "objects %d live %d join_delta %d expected %d untouched %d moved %d kill %b polled %d \
        unreadable %d fallthroughs %d repairs %d migrated %d under_peak %d under_final %d \
        spread %d..%d\n"
       r.cl_objects r.cl_live_servers r.cl_join_delta r.cl_join_expected r.cl_untouched
       r.cl_untouched_moved r.cl_kill_fired r.cl_polled_reads r.cl_unreadable r.cl_fallthroughs
       r.cl_read_repairs r.cl_migrated r.cl_under_peak r.cl_under_final lo hi);
  Buffer.add_string buf
    (Printf.sprintf "parses %b double_run %b status_gauges %b\n" r.cl_checkpoint_parses
       r.cl_double_run_identical r.cl_status_has_gauges);
  Buffer.add_string buf "-- checkpoint\n";
  Buffer.add_string buf r.cl_checkpoint;
  Buffer.contents buf

(* ---- CLUSTER bench: rebalance cost and goodput under migration ---- *)

type cluster_bench_point = {
  cb_objects : int;
  cb_delta_shards : int;  (** shards the fourth join disturbs *)
  cb_steps : int;  (** bounded rebalance steps to drain *)
  cb_copied : int;  (** objects copied *)
  cb_rebalance_us : int;  (** virtual time the drain charged *)
}

type cluster_bench = {
  cb_points : cluster_bench_point list;  (** rebalance cost vs object count *)
  cb_quiet_reads : int;
  cb_quiet_us : int;  (** virtual time the quiet reads charged *)
  cb_migrate_reads : int;
  cb_migrate_us : int;  (** the same read mix interleaved with the drain *)
}

let cluster_bench_rig n =
  let c = Cluster.create () in
  List.iter
    (fun (name, region) -> Cluster.add_server c ~name ~region)
    [ ("ant", "west"); ("bee", "west"); ("cow", "east") ];
  ignore (Cluster.rebalance c);
  for i = 0 to n - 1 do
    Cluster.put c ~from:"west" ~key:(Printf.sprintf "obj-%03d" i)
      (Bytes.make (512 + (97 * i mod 1_536)) 'b')
  done;
  c

let cluster_bench_join c =
  let before = Cluster.ring c in
  Cluster.add_server c ~name:"dog" ~region:"east";
  let r = (Cluster.config c).Cluster.replicas in
  let shards = (Cluster.config c).Cluster.shards in
  List.length
    (List.filter
       (fun i ->
         Cluster_ring.owners before ~r (Cluster.shard_key i)
         <> Cluster_ring.owners (Cluster.ring c) ~r (Cluster.shard_key i))
       (List.init shards Fun.id))

let cluster_bench () =
  let clock_of c = Cluster.clock c in
  let point n =
    let c = cluster_bench_rig n in
    let delta = cluster_bench_join c in
    let t0 = Clock.now (clock_of c) in
    let steps = ref 0 and copied = ref 0 in
    while Cluster.rebalancing c do
      copied := !copied + Cluster.rebalance_step c;
      incr steps
    done;
    {
      cb_objects = n;
      cb_delta_shards = delta;
      cb_steps = !steps;
      cb_copied = !copied;
      cb_rebalance_us = Clock.now (clock_of c) - t0;
    }
  in
  let points = List.map point [ 16; 32; 64; 128 ] in
  (* goodput: the same 96-read mix against a quiet cluster and against
     one draining a join, reads interleaved one per rebalance step *)
  let reads = 96 in
  let key i = Printf.sprintf "obj-%03d" (i mod 64) in
  let quiet =
    let c = cluster_bench_rig 64 in
    let t0 = Clock.now (clock_of c) in
    for i = 0 to reads - 1 do
      ignore (Cluster.get c ~from:"west" (key i))
    done;
    Clock.now (clock_of c) - t0
  in
  let migrating =
    let c = cluster_bench_rig 64 in
    ignore (cluster_bench_join c);
    let t0 = Clock.now (clock_of c) in
    for i = 0 to reads - 1 do
      ignore (Cluster.get c ~from:"west" (key i));
      ignore (Cluster.rebalance_step c)
    done;
    ignore (Cluster.rebalance c);
    Clock.now (clock_of c) - t0
  in
  {
    cb_points = points;
    cb_quiet_reads = reads;
    cb_quiet_us = quiet;
    cb_migrate_reads = reads;
    cb_migrate_us = migrating;
  }
