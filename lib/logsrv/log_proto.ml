module Message = Amoeba_rpc.Message
module Status = Amoeba_rpc.Status

let cmd_create_log = 1

let cmd_append = 2

let cmd_sync = 3

let cmd_length = 4

let cmd_durable_length = 5

let cmd_read = 6

let cmd_compact = 7

let cmd_delete = 8

let reply_of_result ~encode = function
  | Ok v -> encode v
  | Error status -> Message.error status

let with_cap request k =
  match request.Message.cap with
  | None -> Message.error Status.Bad_request
  | Some cap -> k cap

let dispatch server request =
  let command = request.Message.command in
  let ok_unit () = Message.reply ~status:Status.Ok () in
  let ok_int n = Message.reply ~status:Status.Ok ~arg0:n () in
  if command = cmd_create_log then
    Message.reply ~status:Status.Ok ~cap:(Log_store.create_log server) ()
  else if command = cmd_append then
    with_cap request (fun cap ->
        reply_of_result ~encode:ok_int (Log_store.append server cap request.Message.body))
  else if command = cmd_sync then
    with_cap request (fun cap -> reply_of_result ~encode:ok_unit (Log_store.sync server cap))
  else if command = cmd_length then
    with_cap request (fun cap -> reply_of_result ~encode:ok_int (Log_store.length server cap))
  else if command = cmd_durable_length then
    with_cap request (fun cap ->
        reply_of_result ~encode:ok_int (Log_store.durable_length server cap))
  else if command = cmd_read then
    with_cap request (fun cap ->
        reply_of_result
          ~encode:(fun body -> Message.reply ~status:Status.Ok ~body ())
          (Log_store.read_log server cap))
  else if command = cmd_compact then
    with_cap request (fun cap -> reply_of_result ~encode:ok_unit (Log_store.compact_log server cap))
  else if command = cmd_delete then
    with_cap request (fun cap -> reply_of_result ~encode:ok_unit (Log_store.delete_log server cap))
  else Message.error Status.Bad_request

let serve server transport =
  Amoeba_rpc.Transport.register transport (Log_store.port server) (dispatch server)

(* ---- client ---- *)

type client = {
  transport : Amoeba_rpc.Transport.t;
  model : Amoeba_rpc.Net_model.t;
  service : Amoeba_cap.Port.t;
}

let connect ?(model = Amoeba_rpc.Net_model.amoeba) transport service =
  { transport; model; service }

let checked t request =
  let reply = Amoeba_rpc.Transport.trans t.transport ~model:t.model request in
  Status.check reply.Message.status;
  reply

let create_log t =
  let reply = checked t (Message.request ~port:t.service ~command:cmd_create_log ()) in
  match reply.Message.cap with
  | Some cap -> cap
  | None -> raise (Status.Error Status.Server_failure)

let append t cap data =
  (checked t (Message.request ~port:t.service ~command:cmd_append ~cap ~body:data ())).Message.arg0

let sync t cap =
  let (_ : Message.t) = checked t (Message.request ~port:t.service ~command:cmd_sync ~cap ()) in
  ()

let length t cap =
  (checked t (Message.request ~port:t.service ~command:cmd_length ~cap ())).Message.arg0

let durable_length t cap =
  (checked t (Message.request ~port:t.service ~command:cmd_durable_length ~cap ())).Message.arg0

let read_log t cap =
  (checked t (Message.request ~port:t.service ~command:cmd_read ~cap ())).Message.body

let compact_log t cap =
  let (_ : Message.t) = checked t (Message.request ~port:t.service ~command:cmd_compact ~cap ()) in
  ()

let delete_log t cap =
  let (_ : Message.t) = checked t (Message.request ~port:t.service ~command:cmd_delete ~cap ()) in
  ()
