(** Wire protocol and client stubs for the log server.

    Appends carry only the new record — the point of having a separate
    server for logs (paper §2). *)

val cmd_create_log : int

val cmd_append : int

val cmd_sync : int

val cmd_length : int

val cmd_durable_length : int

val cmd_read : int

val cmd_compact : int

val cmd_delete : int

val dispatch : Log_store.t -> Amoeba_rpc.Message.t -> Amoeba_rpc.Message.t

val serve : Log_store.t -> Amoeba_rpc.Transport.t -> unit

(** {1 Client} *)

type client

val connect :
  ?model:Amoeba_rpc.Net_model.t -> Amoeba_rpc.Transport.t -> Amoeba_cap.Port.t -> client
(** Stubs raise {!Amoeba_rpc.Status.Error} on failure. *)

val create_log : client -> Amoeba_cap.Capability.t

val append : client -> Amoeba_cap.Capability.t -> bytes -> int
(** Returns the log length after the append. *)

val sync : client -> Amoeba_cap.Capability.t -> unit

val length : client -> Amoeba_cap.Capability.t -> int

val durable_length : client -> Amoeba_cap.Capability.t -> int

val read_log : client -> Amoeba_cap.Capability.t -> bytes

val compact_log : client -> Amoeba_cap.Capability.t -> unit

val delete_log : client -> Amoeba_cap.Capability.t -> unit
