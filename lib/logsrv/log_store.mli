(** The log server.

    The paper concedes that immutable whole files are wrong for logs:
    "Each append to a log file ... would require the whole file to be
    copied. ... For log files we have implemented a separate server."

    This server gives logs an append-cheap representation while keeping
    the Bullet server as its only storage: a log is a {e chain of
    immutable Bullet segment files} plus a RAM tail buffer. Appends go to
    the tail; when the tail reaches the segment size (or {!sync} is
    called) it is sealed into a fresh Bullet file. Appending is therefore
    O(delta), not O(log), and everything durable is still immutable.
    Unsynced tail bytes are lost on a crash — the usual group-commit
    trade, surfaced in the API. *)

type t

type config = {
  cpu_request_us : int;
  segment_bytes : int;  (** tail size that triggers a segment seal *)
  p_factor : int;  (** paranoia factor for segment writes *)
}

val default_config : config
(** 800 µs CPU, 64 KB segments, P-FACTOR 1. *)

val create : ?config:config -> ?seed:int64 -> store:Bullet_core.Client.t -> unit -> t

val port : t -> Amoeba_cap.Port.t

val stats : t -> Amoeba_sim.Stats.t

val create_log : t -> Amoeba_cap.Capability.t
(** A new, empty log; the capability carries all rights. *)

val append : t -> Amoeba_cap.Capability.t -> bytes -> (int, Amoeba_rpc.Status.t) result
(** Append bytes; returns the log length after the append. Needs the
    modify right. Seals a segment automatically when the tail fills. *)

val sync : t -> Amoeba_cap.Capability.t -> (unit, Amoeba_rpc.Status.t) result
(** Seal the current tail (if non-empty) into a durable segment. *)

val length : t -> Amoeba_cap.Capability.t -> (int, Amoeba_rpc.Status.t) result

val durable_length : t -> Amoeba_cap.Capability.t -> (int, Amoeba_rpc.Status.t) result
(** Bytes that would survive a log-server crash (sealed segments only). *)

val read_log : t -> Amoeba_cap.Capability.t -> (bytes, Amoeba_rpc.Status.t) result
(** The whole log: sealed segments (fetched from the Bullet server) plus
    the RAM tail. Needs the read right. *)

val segments : t -> Amoeba_cap.Capability.t -> (Amoeba_cap.Capability.t list, Amoeba_rpc.Status.t) result
(** Capabilities of the sealed segments, oldest first. *)

val compact_log : t -> Amoeba_cap.Capability.t -> (unit, Amoeba_rpc.Status.t) result
(** Merge all sealed segments into one Bullet file (log rotation /
    truncating readers' cost); the tail is synced first. *)

val delete_log : t -> Amoeba_cap.Capability.t -> (unit, Amoeba_rpc.Status.t) result
(** Delete all segments and the log object. Needs the delete right. *)

val crash : t -> unit
(** Drop every RAM tail, as a server crash would; sealed segments
    survive. The server object stays usable (it restarts instantly). *)
