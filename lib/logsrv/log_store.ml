module Status = Amoeba_rpc.Status
module Cap = Amoeba_cap.Capability

type config = { cpu_request_us : int; segment_bytes : int; p_factor : int }

let default_config = { cpu_request_us = 800; segment_bytes = 64 * 1024; p_factor = 1 }

type log = {
  random : int64;
  mutable sealed : (Cap.t * int) list; (* (segment, length), oldest first *)
  mutable tail : Buffer.t;
}

type t = {
  config : config;
  store : Bullet_core.Client.t;
  sealer : Amoeba_cap.Sealer.t;
  prng : Amoeba_sim.Prng.t;
  service_port : Amoeba_cap.Port.t;
  clock : Amoeba_sim.Clock.t;
  logs : (int, log) Hashtbl.t;
  stats : Amoeba_sim.Stats.t;
  mutable next_obj : int;
}

let create ?(config = default_config) ?(seed = 0x4C4F475356L) ~store () =
  {
    config;
    store;
    sealer = Amoeba_cap.Sealer.of_passphrase (Printf.sprintf "log-%Ld" seed);
    prng = Amoeba_sim.Prng.create ~seed;
    service_port = Amoeba_cap.Port.random (Amoeba_sim.Prng.create ~seed:(Int64.add seed 7L));
    clock = Amoeba_rpc.Transport.clock (Bullet_core.Client.transport store);
    logs = Hashtbl.create 16;
    stats = Amoeba_sim.Stats.create "logsrv";
    next_obj = 1;
  }

let port t = t.service_port

let stats t = t.stats

let charge_cpu t = Amoeba_sim.Clock.advance t.clock t.config.cpu_request_us

let create_log t =
  charge_cpu t;
  Amoeba_sim.Stats.incr t.stats "create_log";
  let obj = t.next_obj in
  t.next_obj <- obj + 1;
  let random = Amoeba_cap.Sealer.fresh_random t.sealer t.prng in
  Hashtbl.replace t.logs obj { random; sealed = []; tail = Buffer.create 256 };
  let rights = Amoeba_cap.Rights.all in
  Cap.v ~port:t.service_port ~obj ~rights
    ~check:(Amoeba_cap.Sealer.seal t.sealer ~random ~rights)

let verify t cap ~need =
  if not (Amoeba_cap.Port.equal cap.Cap.port t.service_port) then Error Status.No_such_object
  else
    match Hashtbl.find_opt t.logs cap.Cap.obj with
    | None -> Error Status.No_such_object
    | Some log ->
      if not (Amoeba_cap.Sealer.verify t.sealer ~random:log.random ~cap) then
        Error Status.Bad_capability
      else if not (Amoeba_cap.Rights.subset need cap.Cap.rights) then Error Status.Bad_capability
      else Ok log

let ( let* ) = Result.bind

let seal_tail t log =
  if Buffer.length log.tail > 0 then begin
    let data = Buffer.to_bytes log.tail in
    let segment = Bullet_core.Client.create t.store ~p_factor:t.config.p_factor data in
    log.sealed <- log.sealed @ [ (segment, Bytes.length data) ];
    Buffer.clear log.tail;
    Amoeba_sim.Stats.incr t.stats "segments_sealed"
  end

let append t cap data =
  charge_cpu t;
  Amoeba_sim.Stats.incr t.stats "appends";
  let* log = verify t cap ~need:Amoeba_cap.Rights.modify in
  Buffer.add_bytes log.tail data;
  if Buffer.length log.tail >= t.config.segment_bytes then seal_tail t log;
  let sealed_len = List.fold_left (fun acc (_, n) -> acc + n) 0 log.sealed in
  Ok (sealed_len + Buffer.length log.tail)

let sync t cap =
  charge_cpu t;
  let* log = verify t cap ~need:Amoeba_cap.Rights.modify in
  seal_tail t log;
  Ok ()

let length t cap =
  charge_cpu t;
  let* log = verify t cap ~need:Amoeba_cap.Rights.read in
  let sealed_len = List.fold_left (fun acc (_, n) -> acc + n) 0 log.sealed in
  Ok (sealed_len + Buffer.length log.tail)

let durable_length t cap =
  charge_cpu t;
  let* log = verify t cap ~need:Amoeba_cap.Rights.read in
  Ok (List.fold_left (fun acc (_, n) -> acc + n) 0 log.sealed)

let read_log t cap =
  charge_cpu t;
  Amoeba_sim.Stats.incr t.stats "reads";
  let* log = verify t cap ~need:Amoeba_cap.Rights.read in
  let buf = Buffer.create 1024 in
  match
    List.iter
      (fun (segment, _) -> Buffer.add_bytes buf (Bullet_core.Client.read t.store segment))
      log.sealed
  with
  | () ->
    Buffer.add_buffer buf log.tail;
    Ok (Buffer.to_bytes buf)
  | exception Status.Error e -> Error e

let segments t cap =
  charge_cpu t;
  let* log = verify t cap ~need:Amoeba_cap.Rights.read in
  Ok (List.map fst log.sealed)

let compact_log t cap =
  charge_cpu t;
  Amoeba_sim.Stats.incr t.stats "compactions";
  let* log = verify t cap ~need:Amoeba_cap.Rights.modify in
  seal_tail t log;
  match log.sealed with
  | [] | [ _ ] -> Ok ()
  | pieces -> (
    let buf = Buffer.create 1024 in
    match
      List.iter
        (fun (segment, _) -> Buffer.add_bytes buf (Bullet_core.Client.read t.store segment))
        pieces
    with
    | exception Status.Error e -> Error e
    | () -> (
      let merged = Buffer.to_bytes buf in
      match Bullet_core.Client.create t.store ~p_factor:t.config.p_factor merged with
      | exception Status.Error e -> Error e
      | fresh ->
        let delete_quietly (segment, _) =
          try Bullet_core.Client.delete t.store segment with Status.Error _ -> ()
        in
        List.iter delete_quietly pieces;
        log.sealed <- [ (fresh, Bytes.length merged) ];
        Ok ()))

let delete_log t cap =
  charge_cpu t;
  let* log = verify t cap ~need:Amoeba_cap.Rights.delete in
  let delete_quietly (segment, _) =
    try Bullet_core.Client.delete t.store segment with Status.Error _ -> ()
  in
  List.iter delete_quietly log.sealed;
  Hashtbl.remove t.logs cap.Cap.obj;
  Ok ()

let crash t =
  (* lint: allow no-hashtbl-iteration clearing every tail is order-independent *)
  Hashtbl.iter (fun _ log -> Buffer.clear log.tail) t.logs;
  Amoeba_sim.Stats.incr t.stats "crashes"
