(** Client stubs for the directory service, including client-side path
    resolution ("/"-separated walks over directory capabilities).

    Stubs raise {!Amoeba_rpc.Status.Error} on non-[Ok] replies. *)

type t

val connect :
  ?model:Amoeba_rpc.Net_model.t ->
  ?link:Amoeba_rpc.Link.t ->
  Amoeba_rpc.Transport.t ->
  Amoeba_cap.Port.t ->
  t
(** [link] tags every transaction with a link class so link-scoped fault
    plans can target it; see {!Amoeba_rpc.Transport.trans}. *)

val get_root : t -> Amoeba_cap.Capability.t

val make_dir : t -> Amoeba_cap.Capability.t

val lookup : t -> Amoeba_cap.Capability.t -> string -> Amoeba_cap.Capability.t

val lookup_lease : t -> Amoeba_cap.Capability.t -> string -> Amoeba_cap.Capability.t * int * int
(** Lookup plus a lease grant: [(newest, epoch, lease_us)]. Callers must
    date the lease from the time they {e sent} the request; see
    {!Dir_server.lookup_lease}. *)

val renew_lease : t -> Amoeba_cap.Capability.t -> int * int
(** Cheap revalidation of a directory's bindings: [(epoch, lease_us)]. *)

val enter : t -> Amoeba_cap.Capability.t -> string -> Amoeba_cap.Capability.t -> unit

val replace :
  t -> Amoeba_cap.Capability.t -> string -> Amoeba_cap.Capability.t -> Amoeba_cap.Capability.t option
(** Returns the displaced newest version, if the name was bound. *)

val remove_name : t -> Amoeba_cap.Capability.t -> string -> unit

val list : t -> Amoeba_cap.Capability.t -> (string * Amoeba_cap.Capability.t) list

val delete_dir : t -> Amoeba_cap.Capability.t -> unit

val versions : t -> Amoeba_cap.Capability.t -> string -> Amoeba_cap.Capability.t list

val restrict : t -> Amoeba_cap.Capability.t -> Amoeba_cap.Rights.t -> Amoeba_cap.Capability.t

val checkpoint : t -> Amoeba_cap.Capability.t

val resolve : t -> Amoeba_cap.Capability.t -> string -> Amoeba_cap.Capability.t
(** [resolve t dir "a/b/c"] resolves the whole path server-side in one
    RPC; empty components are ignored, so absolute-looking paths work. *)

val resolve_stepwise : t -> Amoeba_cap.Capability.t -> string -> Amoeba_cap.Capability.t
(** The naive client-side walk, one lookup RPC per component; kept for
    comparison (the WAN benchmark shows why the one-RPC form exists). *)

val mkdir_path : t -> Amoeba_cap.Capability.t -> string -> Amoeba_cap.Capability.t
(** Create (or reuse) each directory along the path, returning the last
    one. *)
