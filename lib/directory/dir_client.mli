(** Client stubs for the directory service, including client-side path
    resolution ("/"-separated walks over directory capabilities).

    Stubs raise {!Amoeba_rpc.Status.Error} on non-[Ok] replies. *)

type t

val connect :
  ?model:Amoeba_rpc.Net_model.t ->
  ?link:Amoeba_rpc.Link.t ->
  Amoeba_rpc.Transport.t ->
  Amoeba_cap.Port.t ->
  t
(** [link] tags every transaction with a link class so link-scoped fault
    plans can target it; see {!Amoeba_rpc.Transport.trans}. *)

val port : t -> Amoeba_cap.Port.t

val get_root : t -> Amoeba_cap.Capability.t

val make_dir : t -> Amoeba_cap.Capability.t

val lookup : t -> Amoeba_cap.Capability.t -> string -> Amoeba_cap.Capability.t

val lookup_lease : t -> Amoeba_cap.Capability.t -> string -> Amoeba_cap.Capability.t * int * int
(** Lookup plus a lease grant: [(newest, epoch, lease_us)]. Callers must
    date the lease from the time they {e sent} the request; see
    {!Dir_server.lookup_lease}. *)

val renew_lease : t -> Amoeba_cap.Capability.t -> int * int
(** Cheap revalidation of a directory's bindings: [(epoch, lease_us)]. *)

val enter : t -> Amoeba_cap.Capability.t -> string -> Amoeba_cap.Capability.t -> unit

val replace :
  t -> Amoeba_cap.Capability.t -> string -> Amoeba_cap.Capability.t -> Amoeba_cap.Capability.t option
(** Returns the displaced newest version, if the name was bound. *)

val remove_name : t -> Amoeba_cap.Capability.t -> string -> unit

val list : t -> Amoeba_cap.Capability.t -> (string * Amoeba_cap.Capability.t) list

val delete_dir : t -> Amoeba_cap.Capability.t -> unit

val versions : t -> Amoeba_cap.Capability.t -> string -> Amoeba_cap.Capability.t list

val restrict : t -> Amoeba_cap.Capability.t -> Amoeba_cap.Rights.t -> Amoeba_cap.Capability.t

val checkpoint : t -> Amoeba_cap.Capability.t

(** {1 Two-phase commit legs}

    Result-typed rather than raising: a no-vote and a decision-leg
    timeout are outcomes the {!Amoeba_txn} coordinator branches on.
    Each leg carries a fresh xid, which the pair's serve-side dedup
    cache uses to absorb injected duplicates. *)

val txn_prepare :
  t ->
  txn:int ->
  Amoeba_cap.Capability.t ->
  string ->
  Dir_server.intent_op ->
  (unit, Amoeba_rpc.Status.t) result

val txn_commit :
  t ->
  txn:int ->
  Amoeba_cap.Capability.t ->
  string ->
  Dir_server.intent_op ->
  (unit, Amoeba_rpc.Status.t) result

val txn_abort : t -> txn:int -> (unit, Amoeba_rpc.Status.t) result

val resolve : t -> Amoeba_cap.Capability.t -> string -> Amoeba_cap.Capability.t
(** [resolve t dir "a/b/c"] resolves the whole path server-side in one
    RPC; empty components are ignored, so absolute-looking paths work. *)

val resolve_stepwise : t -> Amoeba_cap.Capability.t -> string -> Amoeba_cap.Capability.t
(** The naive client-side walk, one lookup RPC per component; kept for
    comparison (the WAN benchmark shows why the one-RPC form exists). *)

val mkdir_path : t -> Amoeba_cap.Capability.t -> string -> Amoeba_cap.Capability.t
(** Create (or reuse) each directory along the path, returning the last
    one. *)
